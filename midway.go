// Package midway is a software distributed shared memory (DSM) system with
// pluggable write detection, reproducing "Software Write Detection for a
// Distributed Shared Memory" (Zekauskas, Sawdon & Bershad, OSDI 1994).
//
// Midway provides entry consistency: shared data is bound to
// synchronization objects (locks and barriers), and a processor's view of
// that data is made consistent exactly when it acquires the guarding
// object.  The system detects writes to shared memory with one of four
// strategies:
//
//   - RT: compiler/runtime detection.  Every store sets a per-cache-line
//     dirtybit that is really a Lamport timestamp, giving an exact update
//     history and minimal data transfer (the paper's contribution).
//   - VM: virtual-memory detection.  The first store to a page faults and
//     twins the page; synchronization diffs dirty pages and manages
//     per-lock incarnation histories (the conventional approach).
//   - Blast: no detection; all bound data ships at every transfer.
//   - TwinDiff: no detection; all bound data is twinned and diffed at
//     every transfer.
//   - Hybrid: per-region dispatch between the RT and VM mechanisms, driven
//     by each allocation's granularity class (WithGranularity) or, for
//     untagged allocations, by the measured write density.
//
// A program allocates shared memory from a System, creates locks and
// barriers bound to ranges of it, and then calls Run, which executes the
// supplied function once per processor.  All shared loads and stores go
// through the per-processor Proc handle — the software analogue of the
// instrumented stores Midway's modified GCC emits — and the system
// maintains per-processor statistics (dirtybits set, faults taken, pages
// diffed, bytes transferred, ...) and a simulated execution clock
// calibrated to the paper's 25 MHz MIPS R3000 testbed.
//
// A minimal program:
//
//	sys, _ := midway.NewSystem(midway.Config{Nodes: 4, Strategy: midway.RT})
//	counter := sys.MustAlloc("counter", 8, 8)
//	lock := sys.NewLock("counter", counter.Range(8))
//	sys.Run(func(p *midway.Proc) {
//		p.Acquire(lock)
//		p.WriteU64(counter, p.ReadU64(counter)+1)
//		p.Release(lock)
//	})
package midway

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"midway/internal/core"
	"midway/internal/cost"
	"midway/internal/detect"
	"midway/internal/health"
	"midway/internal/member"
	"midway/internal/memory"
	"midway/internal/obs"
	"midway/internal/race"
	"midway/internal/sched"
	"midway/internal/stats"
	"midway/internal/transport"
)

// ObjectProfile aggregates per-synchronization-object event counts from a
// profiled run (Config.ProfileObjects).
type ObjectProfile = obs.ObjectProfile

// RegionProfile aggregates per-region detection activity from a profiled
// run (Config.ProfileObjects).
type RegionProfile = obs.RegionProfile

// Addr is an address in the shared virtual address space.
type Addr = memory.Addr

// Range is a contiguous span of shared memory, used to bind data to
// synchronization objects.
type Range = memory.Range

// Strategy selects a write-detection mechanism.
type Strategy = core.Strategy

// Write-detection strategies.
const (
	// RT is compiler/runtime write detection with dirtybit timestamps.
	RT = core.RT
	// VM is virtual-memory write detection with twins, diffs and
	// incarnation numbers.
	VM = core.VM
	// Blast ships all bound data at every transfer (no detection).
	Blast = core.Blast
	// TwinDiff twins and diffs all bound data at every transfer.
	TwinDiff = core.TwinDiff
	// Standalone disables detection entirely (single-node baseline).
	Standalone = core.None
	// Hybrid dispatches between the RT and VM mechanisms per region,
	// selected by each allocation's granularity class (or, for untagged
	// allocations, by the measured write density).
	Hybrid = core.Hybrid
)

// ParseStrategy converts a name ("rt", "vm", "blast", "twin", "none",
// "hybrid") to a Strategy.
func ParseStrategy(s string) (Strategy, error) { return core.ParseStrategy(s) }

// SchemeNames returns the registered write-detection scheme names, sorted.
func SchemeNames() []string { return detect.Names() }

// Gran is an allocation's granularity class, the Hybrid strategy's routing
// tag: Fine regions use the RT mechanism, Coarse regions the VM mechanism,
// and Auto regions are classified at runtime from the measured write
// density.  Other strategies ignore the tag.
type Gran = memory.Gran

// Granularity classes.
const (
	// GranAuto defers the routing decision to a runtime measurement.
	GranAuto = memory.GranAuto
	// GranFine routes the allocation to dirtybit (RT) detection.
	GranFine = memory.GranFine
	// GranCoarse routes the allocation to page-twin (VM) detection.
	GranCoarse = memory.GranCoarse
)

// LockID names a lock.
type LockID = core.LockID

// BarrierID names a barrier.
type BarrierID = core.BarrierID

// CrashPolicy selects how the system reacts when a node is declared dead
// (see Config.OnCrash).
type CrashPolicy = core.CrashPolicy

// Crash policies.
const (
	// CrashAbort fails the whole run with a *CrashError as soon as any
	// node is declared dead (the default).
	CrashAbort = core.CrashAbort
	// CrashDegrade recovers and continues with the surviving nodes:
	// lock tokens lost with the crashed node are reclaimed at their
	// last-released state, barriers re-form over the survivors, and Run
	// returns the survivor-only result together with a CrashReport.
	CrashDegrade = core.CrashDegrade
)

// CrashError is the run error reported under CrashAbort when a node dies.
type CrashError = core.CrashError

// PartitionPolicy selects how the system reacts when a network partition
// is declared (see Config.OnPartition).
type PartitionPolicy = core.PartitionPolicy

// Partition policies.
const (
	// PartitionFence (the default) keeps every node alive: the minority
	// side is fenced — it parks until the cut heals — and rejoins when
	// connectivity returns, so a healed run's final contents equal the
	// partition-free run's.
	PartitionFence = core.PartitionFence
	// PartitionAbort fails the run with a *PartitionError as soon as a
	// partition is declared.
	PartitionAbort = core.PartitionAbort
	// PartitionDegrade declares the minority side dead and recovers with
	// the majority (requires OnCrash == CrashDegrade).
	PartitionDegrade = core.PartitionDegrade
)

// ParsePartitionPolicy converts a name ("fence", "abort", "degrade") to a
// PartitionPolicy, as accepted by the midway-run and midway-bench
// -on-partition flags.
func ParsePartitionPolicy(s string) (PartitionPolicy, error) {
	return core.ParsePartitionPolicy(s)
}

// PartitionError is the run error reported under PartitionAbort when a
// partition is declared.  Use errors.As on Run's (or Err's) result to
// inspect it.
type PartitionError = core.PartitionError

// ProtocolError is the run error reported when an application misuses
// the entry-consistency API (double release, release without acquire,
// recursive acquire, rebind without exclusive ownership, write after
// leave).  Use errors.As on Run's (or Err's) result to inspect it.
type ProtocolError = core.ProtocolError

// RaceFinding is one race-detector finding (Config.RaceDetect).
type RaceFinding = race.Finding

// CrashReport summarizes recovery actions after a CrashDegrade run.
type CrashReport = core.CrashReport

// ReclaimedLock records one lock-token reclamation in a CrashReport.
type ReclaimedLock = core.ReclaimedLock

// ReformedBarrier records one barrier-membership reform in a CrashReport.
type ReformedBarrier = core.ReformedBarrier

// MemberAction is one kind of committed membership transition.
type MemberAction = member.Action

// Membership transitions.
const (
	// MemberJoined records a committed runtime join.
	MemberJoined = member.Joined
	// MemberDeparted records a completed graceful leave.
	MemberDeparted = member.Departed
	// MemberDied records a crash declaration.
	MemberDied = member.Died
)

// MembershipEvent is one committed membership transition: the epoch it
// established, the node, the action, and the simulated instant.
type MembershipEvent = member.Event

// MemberState is one node id's standing in an elastic membership.
type MemberState = member.Status

// Member states, as reported by System.MemberStatus.
const (
	// MemberAbsent ids are provisioned capacity that has never joined.
	MemberAbsent = member.Absent
	// MemberLive ids are full members.
	MemberLive = member.Live
	// MemberDraining ids are members with a pending graceful leave.
	MemberDraining = member.Draining
	// MemberLeft ids departed gracefully; their state was handed off.
	MemberLeft = member.Left
	// MemberDead ids crashed and were declared; their state was reclaimed.
	MemberDead = member.Dead
)

// ParseMemberSchedule parses a churn schedule of the form
// "NODE@ROUND,NODE@ROUND,..." (e.g. "4@2,5@3"), as accepted by the
// midway-run -join and -drain flags.
func ParseMemberSchedule(s string) ([]member.ScheduleEntry, error) {
	return member.ParseSchedule(s)
}

// Config describes a DSM system.  The zero value of every optional field
// selects the paper's testbed parameters: Mach 3.0 exception costs, 4 KB
// pages, a 140 Mbit/s ATM interconnect, and 1 MiB regions.
type Config struct {
	// Nodes is the number of processors (required, >= 1).
	Nodes int
	// MaxNodes, when set above Nodes, enables elastic membership: the
	// system provisions capacity for MaxNodes processors but starts the
	// run with only the founding Nodes.  Ids in [Nodes, MaxNodes) are
	// absent until admitted at runtime with Proc.Join, and any member may
	// depart gracefully with Proc.Leave (or be asked to via
	// System.DrainNode).  Setting MaxNodes == Nodes enables the membership
	// machinery (graceful leaves, the member table) at fixed capacity.
	// Manager placement hashes over the founding ids only, so a
	// fixed-membership run's results are unchanged by provisioning spare
	// capacity.  Elastic membership requires the all-hosted configuration:
	// multi-process deployments (TCPAddrs) are rejected.
	MaxNodes int
	// Strategy selects the write-detection mechanism.
	Strategy Strategy
	// Scheme optionally selects the write-detection scheme by registry
	// name (see SchemeNames), overriding Strategy.
	Scheme string
	// DefaultGranularity is the granularity class given to allocations
	// that do not specify one with WithGranularity.  The zero value is
	// GranAuto: the Hybrid strategy classifies such regions at runtime.
	DefaultGranularity Gran
	// PageFaultMicros overrides the cost of fielding a VM write fault
	// (exception + twin copy + protection), in microseconds.  The paper
	// uses 1200 µs (Mach external pager) and 122 µs (fast exceptions).
	// Zero selects 1200 µs.
	PageFaultMicros float64
	// NetLatencyMicros is the fixed one-way message cost in microseconds.
	// Zero selects 500 µs.
	NetLatencyMicros float64
	// NetBandwidthMbps is the interconnect bandwidth in megabits per
	// second.  Zero selects 140 Mbit/s.
	NetBandwidthMbps float64
	// UseTCP routes protocol messages through real loopback TCP sockets
	// instead of in-process channels (all nodes still hosted in this
	// process).
	UseTCP bool
	// TCPAddrs, when non-empty, deploys the system across processes: this
	// process hosts only node TCPNodeID and connects to the other nodes
	// at the listed host:port addresses (indexed by node id).  Every
	// process must perform the identical setup — allocations, presets and
	// synchronization-object creation in the same order — before Run, as
	// in any SPMD program.
	TCPAddrs []string
	// TCPNodeID is this process's node id when TCPAddrs is set.
	TCPNodeID int
	// FaultSpec, when non-empty, injects deterministic transport faults
	// below the protocol, in transport.ParseFaultSpec format, e.g.
	// "drop=0.05,dup=0.02,reorder=0.1,seed=7".  An active spec implies
	// Reliable, so the protocol still sees exactly-once in-order delivery;
	// the injected faults exercise the retransmission machinery without
	// perturbing the simulated cost model.
	FaultSpec string
	// Reliable interposes the sequencing/ACK/retransmission layer even
	// without fault injection (it is always on when FaultSpec is active).
	Reliable bool
	// ReliableSpec tunes the reliability layer's retransmission machinery
	// in transport.ParseReliableSpec format, e.g.
	// "initial=10ms,max=200ms,giveup=10,jitter=0.2,seed=7".  A non-empty
	// spec implies Reliable.
	ReliableSpec string
	// Heartbeat enables transport-level failure detection: every endpoint
	// beats all peers at this period, and a peer silent for SuspectAfter
	// on every surviving endpoint is declared dead.  Zero disables the
	// monitor unless FaultSpec arms a crash event, which auto-enables it
	// at a 10 ms period.  Heartbeats travel below the reliability layer,
	// carry no simulated timestamps and charge nothing, so a fault-free
	// heartbeat-enabled run reports statistics byte-identical to a
	// monitor-less one.
	Heartbeat time.Duration
	// SuspectAfter is the silence window before a peer is suspected.
	// Zero selects six heartbeat periods.  Setting it without an active
	// heartbeat monitor is an error.
	SuspectAfter time.Duration
	// OnCrash selects the reaction to a node crash: CrashAbort (default)
	// fails the run, CrashDegrade recovers and continues with the
	// survivors.  Multi-process deployments (TCPAddrs) always abort:
	// release-boundary recovery needs the global all-hosted view.
	OnCrash CrashPolicy
	// Partition, when non-empty, injects a deterministic network
	// partition in core.ParsePartitionSpec format, e.g.
	// "minority=2+3,at=40000,healat=90000": at simulated time at (in
	// cycles) the minority side is cut from the rest of the membership in
	// both directions, and under the fence policy the cut heals at
	// healat.  The schedule is purely simulated-time, so it composes
	// with Sched=lockstep and replays byte-identically; it also arms the
	// split-brain oracle (System.MaxExclusiveHolders).  For wall-clock
	// partitions driven through the transport instead, use FaultSpec's
	// part/partafter/partat/heal keys with Heartbeat, and the quorum
	// detector declares the cut.  Empty disables the schedule; such runs
	// are byte-identical to pre-partition builds.
	Partition string
	// OnPartition selects the reaction when a partition is declared,
	// whether by the deterministic schedule (Partition) or the
	// wall-clock quorum detector (Heartbeat + a FaultSpec partition):
	// PartitionFence (default) fences the minority until heal and
	// rejoins it, PartitionAbort fails the run with a *PartitionError,
	// and PartitionDegrade declares the minority dead (requires
	// OnCrash == CrashDegrade).
	OnPartition PartitionPolicy
	// CrashDetectCycles is the simulated-time cost charged for crash
	// detection when a node is declared dead through the program-point
	// API (Proc.Crash, System.KillNode).  Zero selects 25 000 cycles
	// (1 ms at 25 MHz), a plausible heartbeat-timeout bound.
	CrashDetectCycles uint64
	// EagerTimestamps stamps dirtybits with the current logical time on
	// every store, instead of the cheap pending marker that is lazily
	// timestamped at transfer (the paper's footnote 1 default).
	EagerTimestamps bool
	// CombineIncarnations makes VM-DSM releasers merge multi-incarnation
	// histories so each address is sent once — the §3.4 alternative the
	// paper's Midway deliberately omits.  Off by default to match the
	// paper's measured system.
	CombineIncarnations bool
	// Trace, when non-nil, receives one record per protocol event
	// (acquisitions, transfers, rebindings, barrier crossings), stamped
	// with the processor's simulated time — a debugging aid for
	// entry-consistency programs.  TraceFormat selects the encoding.
	// Tracing never perturbs the simulated cost model: a traced run
	// reports statistics byte-identical to an untraced one.
	Trace io.Writer
	// TraceFormat selects the Trace encoding: "text" (default; the
	// legacy one-line-per-event format, streamed live), "jsonl" (one
	// JSON object per event, sorted by simulated time at shutdown —
	// the input format of the midway-trace analyzer), or "chrome" (a
	// Chrome trace_event JSON document for chrome://tracing/Perfetto).
	// Setting it without Trace is an error.
	TraceFormat string
	// ProfileObjects aggregates per-lock/barrier and per-region event
	// profiles during the run, readable afterwards with ObjectProfiles,
	// RegionProfiles, or WriteProfiles ("hot objects" tables).
	ProfileObjects bool
	// Sched selects the execution engine: "goroutine" (the default; one OS
	// goroutine per node, wall-clock message delivery) or "lockstep" (the
	// conservative parallel discrete-event engine: nodes execute
	// message-free stretches concurrently and all messages are delivered
	// in a deterministic total order at simulated-time quiescence points,
	// so results are byte-identical regardless of GOMAXPROCS).  Lockstep
	// is incompatible with the wall-clock transport layers: UseTCP,
	// TCPAddrs, FaultSpec, Reliable, ReliableSpec and Heartbeat all
	// require real time to elapse and are rejected.
	Sched string
	// SchedThreads caps the number of nodes the lockstep engine runs
	// concurrently (0 = no cap).  Results are identical at any setting;
	// the knob exists so benchmark harnesses can keep cells × engine
	// threads within GOMAXPROCS.
	SchedThreads int
	// CompatCodec disables the zero-allocation codec fast paths: every
	// message is encoded into a fresh owned buffer and decoded with
	// copying decoders.  Simulated results are identical either way; the
	// knob exists so the invariance tests can run the slow reference
	// paths against the default fast ones.
	CompatCodec bool
	// Migrate enables dynamic lock ownership: hash-sharded lock/barrier
	// homes (no node-0 hot spot in the directory), profile-driven
	// lock-home migration (a per-lock acquire census travels with the
	// token; when one node's share of the recent acquires crosses
	// MigrateThreshold, the lock's home moves to that node at a release
	// boundary, making its steady-state acquire a zero-message local
	// operation), and token-forwarding for contended locks (an exclusive
	// grant carries the remaining waiter queue with the token, so each
	// contended handoff is one message instead of a bounce through the
	// home).  Off by default; disabled runs are byte-identical to the
	// static-directory protocol.  Requires the all-hosted configuration
	// (no TCPAddrs): the home table is shared simulator state.
	Migrate bool
	// MigrateThreshold is the dominance fraction in (0, 1] of a lock's
	// recent-acquire census that triggers a home migration.  Zero
	// selects 0.6.
	MigrateThreshold float64
	// MigrateWindow is the census decay window: when a lock's total
	// recent-acquire count reaches it, the per-node counts halve, so
	// the dominance signal tracks the current phase of the program
	// instead of averaging over its whole history.  Zero selects 32.
	MigrateWindow int
	// RaceDetect enables the entry-consistency race detector: stores to
	// lock-bound shared data are flagged when the writer does not hold
	// the guarding lock, and transfer/barrier-merge update sets are
	// cross-checked for unordered same-line accesses (the RT scheme's
	// per-line Lamport timestamps make this exact; VM-routed regions
	// fall back to the unguarded-store and merge checks).  Findings are
	// available from System.RaceFindings and, when tracing is on, appear
	// as "unguarded-write" / "unordered-conflict" trace events feeding
	// midway-trace's race report.  The detector charges no simulated
	// cycles, so results and statistics are identical either way; off
	// (the default), the hot paths pay a single nil check.
	RaceDetect bool
}

// System is one DSM instance.  Allocate shared memory and create
// synchronization objects first, then call Run.
type System struct {
	inner *core.System
	// net is a transport created on the caller's behalf, closed when Run
	// completes.
	net transport.Network
	// obs is the tracer built from Trace/TraceFormat/ProfileObjects, kept
	// for the profile accessors (nil when tracing is off).
	obs *obs.Tracer
	// defaultGran is applied to allocations without an explicit
	// granularity option.
	defaultGran Gran
}

// newTracer builds the observability tracer from the configuration, or
// returns nil when tracing and profiling are both off.
func newTracer(cfg Config) (*obs.Tracer, error) {
	switch cfg.TraceFormat {
	case "", "text", "jsonl", "chrome":
	default:
		return nil, fmt.Errorf("midway: unknown trace format %q (want text, jsonl or chrome)", cfg.TraceFormat)
	}
	if cfg.TraceFormat != "" && cfg.Trace == nil {
		return nil, fmt.Errorf("midway: TraceFormat %q set without a Trace writer", cfg.TraceFormat)
	}
	oc := obs.Config{Profile: cfg.ProfileObjects}
	switch cfg.TraceFormat {
	case "", "text":
		oc.Text = cfg.Trace
	case "jsonl":
		oc.JSONL = cfg.Trace
	case "chrome":
		oc.Chrome = cfg.Trace
	}
	return obs.New(oc), nil
}

// NewSystem creates a DSM system from the configuration.
func NewSystem(cfg Config) (*System, error) {
	lockstep := false
	switch cfg.Sched {
	case "", "goroutine":
	case "lockstep":
		lockstep = true
	default:
		return nil, fmt.Errorf("midway: unknown scheduler %q (want goroutine or lockstep)", cfg.Sched)
	}
	if lockstep {
		switch {
		case len(cfg.TCPAddrs) > 0:
			return nil, fmt.Errorf("midway: Sched=lockstep requires the in-process stepped transport; it cannot drive a multi-process TCP deployment (TCPAddrs)")
		case cfg.UseTCP:
			return nil, fmt.Errorf("midway: Sched=lockstep requires the in-process stepped transport; it cannot drive real TCP sockets (UseTCP)")
		case cfg.FaultSpec != "":
			return nil, fmt.Errorf("midway: Sched=lockstep cannot compose with transport fault injection (FaultSpec): the fault and retransmission layers are wall-clock driven")
		case cfg.Reliable || cfg.ReliableSpec != "":
			return nil, fmt.Errorf("midway: Sched=lockstep cannot compose with the reliability layer (Reliable/ReliableSpec): retransmission timers are wall-clock driven")
		case cfg.Heartbeat > 0 || cfg.SuspectAfter > 0:
			return nil, fmt.Errorf("midway: Sched=lockstep cannot compose with heartbeat failure detection (Heartbeat/SuspectAfter): silence windows are wall-clock driven; inject crashes with KillNode or Proc.Crash instead")
		}
	} else if cfg.SchedThreads != 0 {
		return nil, fmt.Errorf("midway: SchedThreads set without Sched=lockstep")
	}
	if cfg.MaxNodes != 0 {
		if cfg.MaxNodes < cfg.Nodes {
			return nil, fmt.Errorf("midway: MaxNodes %d below Nodes %d", cfg.MaxNodes, cfg.Nodes)
		}
		if len(cfg.TCPAddrs) > 0 {
			return nil, fmt.Errorf("midway: elastic membership (MaxNodes) requires the all-hosted configuration; it cannot drive a multi-process TCP deployment (TCPAddrs)")
		}
	}
	if cfg.OnPartition == PartitionDegrade && cfg.OnCrash != CrashDegrade {
		return nil, fmt.Errorf("midway: OnPartition=degrade declares the minority dead and needs OnCrash=CrashDegrade to recover")
	}
	if cfg.Migrate && len(cfg.TCPAddrs) > 0 {
		return nil, fmt.Errorf("midway: dynamic lock-home migration (Migrate) requires the all-hosted configuration; it cannot drive a multi-process TCP deployment (TCPAddrs)")
	}
	tr, err := newTracer(cfg)
	if err != nil {
		return nil, err
	}
	cc := core.Config{
		Nodes:               cfg.Nodes,
		Strategy:            cfg.Strategy,
		Scheme:              cfg.Scheme,
		Cost:                cost.Default(),
		Network:             cost.DefaultNetwork(),
		LocalNode:           -1,
		EagerTimestamps:     cfg.EagerTimestamps,
		CombineIncarnations: cfg.CombineIncarnations,
		Obs:                 tr,
		CompatCodec:         cfg.CompatCodec,
		Lockstep:            lockstep,
		SchedThreads:        cfg.SchedThreads,
		MaxNodes:            cfg.MaxNodes,
		Partition:           cfg.Partition,
		OnPartition:         cfg.OnPartition,
		Migrate:             cfg.Migrate,
		MigrateThreshold:    cfg.MigrateThreshold,
		MigrateWindow:       cfg.MigrateWindow,
		RaceDetect:          cfg.RaceDetect,
	}
	if cfg.PageFaultMicros > 0 {
		cc.Cost = cc.Cost.WithFaultMicros(cfg.PageFaultMicros)
	}
	if cfg.NetLatencyMicros > 0 {
		cc.Network.LatencyCycles = cost.Micros(cfg.NetLatencyMicros)
	}
	if cfg.NetBandwidthMbps > 0 {
		// bytes/µs = Mbit/s / 8; cycles per KB = 1024 / (bytes/µs) µs.
		cc.Network.CyclesPerKB = cost.Micros(1024 / (cfg.NetBandwidthMbps / 8))
	}
	fc, err := transport.ParseFaultSpec(cfg.FaultSpec)
	if err != nil {
		return nil, fmt.Errorf("midway: %w", err)
	}
	ro, err := transport.ParseReliableSpec(cfg.ReliableSpec)
	if err != nil {
		return nil, fmt.Errorf("midway: %w", err)
	}
	ro.Trace = tr
	hb := cfg.Heartbeat
	if hb == 0 && (fc.CrashArmed() || fc.PartitionArmed()) {
		// An armed crash event without a detector would never be noticed,
		// and an armed partition without the quorum detector would never
		// be declared; default to a fast testing period.
		hb = 10 * time.Millisecond
	}
	if cfg.SuspectAfter > 0 && hb == 0 {
		return nil, fmt.Errorf("midway: SuspectAfter set without Heartbeat")
	}
	reliable := cfg.Reliable || cfg.ReliableSpec != "" || fc.Active() || hb > 0
	// Elastic membership provisions transport endpoints for the full
	// capacity up front; absent nodes' endpoints idle until a join.
	total := cfg.Nodes
	if cfg.MaxNodes > total {
		total = cfg.MaxNodes
	}
	switch {
	case len(cfg.TCPAddrs) > 0:
		net, err := transport.DialTCPNode(cfg.TCPNodeID, cfg.Nodes, cfg.TCPAddrs)
		if err != nil {
			return nil, fmt.Errorf("midway: %w", err)
		}
		cc.Transport = net
		cc.LocalNode = cfg.TCPNodeID
	case cfg.UseTCP:
		net, err := transport.NewLoopbackTCPNetwork(total)
		if err != nil {
			return nil, fmt.Errorf("midway: %w", err)
		}
		cc.Transport = net
	case reliable:
		// Wrapping requires owning the base network core would otherwise
		// create for itself.
		cc.Transport = transport.NewChannelNetwork(total)
	}
	var fn *transport.FaultNetwork
	if fc.Active() {
		fn = transport.NewFaultNetwork(cc.Transport, fc)
		fn.SetTrace(tr)
		cc.Transport = fn
	}
	var mon *health.Monitor
	if hb > 0 {
		// The monitor sits below the reliability layer: heartbeats are
		// fire-and-forget (never retransmitted), and protocol envelopes
		// passing through double as liveness evidence.
		var hp health.PartitionPolicy
		switch cfg.OnPartition {
		case PartitionAbort:
			hp = health.PartitionAbort
		case PartitionDegrade:
			hp = health.PartitionDegrade
		default:
			hp = health.PartitionFence
		}
		mon = health.NewMonitor(cc.Transport, health.Options{
			Period:       hb,
			SuspectAfter: cfg.SuspectAfter,
			Partition:    hp,
			Trace:        tr,
		})
		cc.Transport = mon
		// Provisioned-but-absent ids must not be suspected for their
		// pre-join silence; a committed join reactivates them below.
		for i := cfg.Nodes; i < cfg.MaxNodes; i++ {
			mon.SetActive(i, false)
		}
	}
	var rel *transport.ReliableNetwork
	if reliable {
		rel = transport.NewReliableNetwork(cc.Transport, ro)
		cc.Transport = rel
	}
	if cfg.MaxNodes > 0 && (mon != nil || rel != nil) {
		// Keep the wall-clock transport layers in step with committed
		// membership transitions: a joiner starts with fresh sequencing
		// state and liveness expectations; a departed node is neither
		// suspected nor retransmitted to.
		cc.OnMembership = func(node int, action member.Action, epoch uint64) {
			switch action {
			case member.Joined:
				if rel != nil {
					rel.ResetPeer(node)
				}
				if mon != nil {
					mon.SetActive(node, true)
				}
			case member.Departed:
				if rel != nil {
					rel.ForgetPeer(node)
				}
				if mon != nil {
					mon.SetActive(node, false)
				}
			case member.Died:
				// OnDeath already forgets unacked traffic; just silence
				// the monitor so the corpse is not re-suspected.
				if mon != nil {
					mon.SetActive(node, false)
				}
			}
		}
	}
	cc.OnCrash = cfg.OnCrash
	cc.CrashDetectCycles = cfg.CrashDetectCycles
	if mon != nil {
		// Stop beating and checking before the nodes tear their
		// endpoints down, so shutdown is not mistaken for death.
		cc.PreStop = mon.Quiesce
	}
	inner, err := core.NewSystem(cc)
	if err != nil {
		if cc.Transport != nil {
			cc.Transport.Close()
		}
		return nil, err
	}
	if mon != nil {
		mon.OnDeath(func(node int, cycles uint64) {
			if rel != nil {
				// Unacked traffic to the dead peer will never be
				// acknowledged; drop it so retransmission cannot give up
				// and fail an otherwise recoverable run.
				rel.ForgetPeer(node)
			}
			inner.PeerDead(node, cycles)
		})
		// Quorum fencing: a node that can no longer reach a majority of
		// the live membership self-fences (the member table stops
		// sponsoring it) and rejoins when connectivity returns; the heal
		// also resets retransmission backoff so recovery is not stalled
		// by timers that grew during the cut.
		mon.OnFence(func(node int) { inner.FenceNode(node) })
		mon.OnHeal(func(node int) {
			inner.UnfenceNode(node)
			if rel != nil {
				rel.ResetBackoff()
			}
		})
		mon.OnPartition(func(unreachable []int) { inner.PartitionDetected(unreachable) })
	}
	if fn != nil {
		// A healed transport cut must not leave recovery stalled behind
		// exponential backoff or stale silence windows: retransmit
		// immediately and restart every liveness clock.
		fn.OnHeal(func() {
			if rel != nil {
				rel.ResetBackoff()
			}
			if mon != nil {
				mon.ResetSilence()
			}
		})
	}
	return &System{inner: inner, net: cc.Transport, obs: tr, defaultGran: cfg.DefaultGranularity}, nil
}

// AllocOption customizes an allocation.
type AllocOption func(*allocConfig)

type allocConfig struct {
	gran Gran
}

// WithGranularity tags the allocation with a granularity class, which the
// Hybrid strategy uses to route its regions to the RT (fine) or VM
// (coarse) mechanism.  Without this option, Config.DefaultGranularity
// applies.
func WithGranularity(g Gran) AllocOption {
	return func(c *allocConfig) { c.gran = g }
}

// Alloc reserves size bytes of shared memory with the given software cache
// line size in bytes (a power of two between 4 and 65536).  The line size
// is the unit of coherency for RT-DSM detection over this data.
func (s *System) Alloc(name string, size uint32, lineSize uint32, opts ...AllocOption) (Addr, error) {
	shift, err := lineShift(lineSize)
	if err != nil {
		return 0, err
	}
	ac := allocConfig{gran: s.defaultGran}
	for _, o := range opts {
		o(&ac)
	}
	return s.inner.AllocTagged(name, size, shift, ac.gran)
}

// MustAlloc is Alloc, panicking on error.
func (s *System) MustAlloc(name string, size uint32, lineSize uint32, opts ...AllocOption) Addr {
	a, err := s.Alloc(name, size, lineSize, opts...)
	if err != nil {
		panic(err)
	}
	return a
}

// AllocPrivate reserves private (per-processor) memory.  Instrumented
// stores that reach it pay only the misclassification penalty.
func (s *System) AllocPrivate(name string, size uint32) (Addr, error) {
	return s.inner.AllocPrivate(name, size)
}

// lineShift validates a cache line size and returns its log2.
func lineShift(lineSize uint32) (uint, error) {
	if lineSize == 0 || lineSize&(lineSize-1) != 0 {
		return 0, fmt.Errorf("midway: line size %d is not a power of two", lineSize)
	}
	shift := uint(0)
	for v := lineSize; v > 1; v >>= 1 {
		shift++
	}
	if shift < memory.MinLineShift || shift > memory.MaxLineShift {
		return 0, fmt.Errorf("midway: line size %d out of range [4, 65536]", lineSize)
	}
	return shift, nil
}

// NewLock creates a lock bound to the given data.
func (s *System) NewLock(name string, binding ...Range) LockID {
	return s.inner.NewLock(name, binding...)
}

// NewBarrier creates a barrier over all processors, optionally bound to
// data that is made consistent at every crossing.
func (s *System) NewBarrier(name string, binding ...Range) BarrierID {
	return s.inner.NewBarrier(name, 0, binding...)
}

// SetBarrierParts declares, per processor, the sub-ranges of the barrier's
// bound data that the processor writes between episodes.  Only the Blast
// strategy requires it (it has no detection to discover writers).
func (s *System) SetBarrierParts(b BarrierID, parts [][]Range) {
	s.inner.SetBarrierParts(b, parts)
}

// Preset installs initial contents into every processor's copy of shared
// memory before the run, modelling input each process loads at startup.
// The writes are neither trapped nor counted.
func (s *System) Preset(a Addr, data []byte) { s.inner.Preset(a, data) }

// PresetF64 presets a float64 value.
func (s *System) PresetF64(a Addr, v float64) {
	var buf [8]byte
	putF64(buf[:], v)
	s.inner.Preset(a, buf[:])
}

// PresetU64 presets a uint64 value.
func (s *System) PresetU64(a Addr, v uint64) {
	var buf [8]byte
	putU64(buf[:], v)
	s.inner.Preset(a, buf[:])
}

// PresetU32 presets a uint32 value.
func (s *System) PresetU32(a Addr, v uint32) {
	var buf [4]byte
	putU32(buf[:], v)
	s.inner.Preset(a, buf[:])
}

// Run executes fn once per processor, concurrently.  It returns after all
// instances finish; a panic in any instance is returned as an error.
// Run may be called once per System.
func (s *System) Run(fn func(p *Proc)) error {
	err := s.inner.Run(func(p *core.Proc) { fn(&Proc{inner: p}) })
	if s.net != nil {
		s.net.Close()
	}
	return err
}

// Err returns the first transport or protocol failure recorded during the
// run, or nil.  Run returns the same error.
func (s *System) Err() error { return s.inner.Err() }

// ErrShutdown is the failure Run returns when Close tears the system down
// mid-run (e.g. from a signal handler).
var ErrShutdown = errors.New("midway: system closed during run")

// Close tears down the system immediately.  It is safe to call
// concurrently with Run: every blocked application goroutine is released
// (a reply parked on a dead transport would otherwise never arrive), Run
// returns ErrShutdown, and the transport is closed — which makes Close
// the shutdown path for a signal handler.  Redundant after Run, which
// closes the transport itself; then it is a no-op.
func (s *System) Close() {
	s.inner.Abort(ErrShutdown)
	if s.net != nil {
		s.net.Close()
	}
}

// KillNode declares node k dead at its current program point, from outside
// the run function (chaos-test driver API).  Under CrashDegrade the
// survivors recover and continue; under CrashAbort the run fails with a
// *CrashError.  Unlike transport-level crash injection, no in-flight
// messages are lost, so recovery is fully deterministic.
func (s *System) KillNode(k int) { s.inner.KillNode(k) }

// CrashReport returns the recovery summary after a run in which nodes were
// declared dead, or nil if none were.
func (s *System) CrashReport() *CrashReport { return s.inner.CrashReport() }

// MaxExclusiveHolders returns the split-brain oracle's verdict for the
// lock: the high-water mark of nodes concurrently holding its token in
// exclusive mode during the run.  Any value above one is a protocol
// failure (two sides of a partition both granted the lock).  The oracle
// is armed only when Config.Partition is set; it returns zero otherwise.
func (s *System) MaxExclusiveHolders(l LockID) int { return s.inner.MaxExclusiveHolders(l) }

// DrainNode asks node k to leave gracefully: the member table marks it
// draining, and its application observes the request through
// Proc.Draining and departs with Proc.Leave at a release boundary of its
// choosing.  Returns false when membership is off (Config.MaxNodes zero)
// or k is not currently a live member.  The request is protocol-invisible
// until the node acts on it, so issuing it from outside the run (or from
// another node's application, which keeps lockstep runs deterministic) is
// safe at any time.
func (s *System) DrainNode(k int) bool { return s.inner.DrainNode(k) }

// Members returns the current member ids (live and draining), sorted.
// Before Run it is the founding set; afterwards it reflects every
// committed join and departure.  Nil when membership is off.
func (s *System) Members() []int { return s.inner.Members() }

// MemberStatus reports node k's standing in the membership.
// Fixed-membership systems report every hosted node as MemberLive.
func (s *System) MemberStatus(k int) MemberState { return s.inner.MemberStatus(k) }

// MembershipEpoch returns the current membership epoch: zero for the
// founding membership, incremented by every committed join, graceful
// departure and crash declaration.
func (s *System) MembershipEpoch() uint64 { return s.inner.MembershipEpoch() }

// MembershipEvents returns the committed membership transitions in commit
// order, each with the epoch it established and the simulated instant.
// Nil when membership is off or the membership never changed.
func (s *System) MembershipEvents() []MembershipEvent { return s.inner.MembershipEvents() }

// Stats returns per-processor counters of the primitive write-detection
// operations.
// RaceFindings returns the race detector's findings in a deterministic
// order, or nil when Config.RaceDetect is off.  Valid after Run.
func (s *System) RaceFindings() []RaceFinding { return s.inner.RaceFindings() }

func (s *System) Stats() []stats.Snapshot { return s.inner.Stats() }

// TotalStats returns the sum of all processors' counters.
func (s *System) TotalStats() stats.Snapshot { return s.inner.TotalStats() }

// MeanStats returns the per-processor average of the counters, the form
// the paper's Table 2 reports.
func (s *System) MeanStats() stats.Snapshot { return s.inner.MeanStats() }

// ExecutionSeconds returns the simulated execution time in seconds on the
// reference 25 MHz processor: the maximum final cycle clock across
// processors.
func (s *System) ExecutionSeconds() float64 { return s.inner.ExecutionSeconds() }

// ExecutionCycles returns the simulated execution time in cycles.
func (s *System) ExecutionCycles() uint64 { return s.inner.ExecutionCycles() }

// ObjectProfiles returns per-lock/barrier profiles sorted hottest-first,
// after a run with Config.ProfileObjects.  Nil when profiling was off.
func (s *System) ObjectProfiles() []ObjectProfile { return s.obs.ObjectProfiles() }

// RegionProfiles returns per-region detection profiles sorted
// hottest-first, after a run with Config.ProfileObjects.  Nil when
// profiling was off.
func (s *System) RegionProfiles() []RegionProfile { return s.obs.RegionProfiles() }

// WriteProfiles renders the "hot objects" and "hot regions" tables to w,
// after a run with Config.ProfileObjects.  A no-op when profiling was off.
func (s *System) WriteProfiles(w io.Writer) {
	if s.obs != nil {
		s.obs.WriteProfiles(w)
	}
}

// Turns is a deterministic round scheduler for applications whose workers
// proceed one at a time in a seeded random permutation per round (see
// internal/sched).  Obtain one from System.NewTurns.
type Turns = sched.Turns

// NewTurns builds a round scheduler over procs workers whose permutation
// stream is seeded with seed.  Under the lockstep engine waiting workers
// park through the engine so quiescence detection stays sound; under the
// goroutine engine they park on a condition variable.  Either way the
// permutation stream, and therefore the application schedule, is identical.
func (s *System) NewTurns(procs int, seed int64) *Turns {
	return sched.NewTurns(s.inner.Engine(), procs, seed)
}

// ReadFinal copies processor 0's copy of the range into dst after Run has
// returned.  End the program with a barrier or lock acquisition that makes
// the result consistent at processor 0, then extract it here.
func (s *System) ReadFinal(rg Range, dst []byte) { s.inner.ReadFinal(rg, dst) }

// ReadFinalAt is ReadFinal against an arbitrary processor's copy, for
// results whose authoritative copy is distributed (e.g. per-worker output
// partitions).
func (s *System) ReadFinalAt(node int, rg Range, dst []byte) {
	s.inner.ReadFinalAt(node, rg, dst)
}

// ReadFinalF64 reads one float64 from processor 0's copy after Run.
func (s *System) ReadFinalF64(a Addr) float64 {
	var buf [8]byte
	s.inner.ReadFinal(Range{Addr: a, Size: 8}, buf[:])
	return math.Float64frombits(getU64(buf[:]))
}

// ReadFinalU64 reads one uint64 from processor 0's copy after Run.
func (s *System) ReadFinalU64(a Addr) uint64 {
	var buf [8]byte
	s.inner.ReadFinal(Range{Addr: a, Size: 8}, buf[:])
	return getU64(buf[:])
}

// ReadFinalU32 reads one uint32 from processor 0's copy after Run.
func (s *System) ReadFinalU32(a Addr) uint32 {
	var buf [4]byte
	s.inner.ReadFinal(Range{Addr: a, Size: 4}, buf[:])
	return getU32(buf[:])
}

// Proc is the per-processor handle passed to the Run function.  All
// shared-memory access and synchronization goes through it.  A Proc must
// not be shared between goroutines.
type Proc struct {
	inner *core.Proc
}

// ID returns the processor number, in [0, Nodes).
func (p *Proc) ID() int { return p.inner.ID() }

// Nodes returns the number of processors.
func (p *Proc) Nodes() int { return p.inner.Nodes() }

// Compute charges n cycles of local computation to the simulated clock.
func (p *Proc) Compute(n uint64) { p.inner.Compute(n) }

// Cycles returns the processor's simulated time in cycles.
func (p *Proc) Cycles() uint64 { return p.inner.Cycles() }

// ReadU32 loads a 32-bit word.
func (p *Proc) ReadU32(a Addr) uint32 { return p.inner.ReadU32(a) }

// ReadU64 loads a 64-bit doubleword.
func (p *Proc) ReadU64(a Addr) uint64 { return p.inner.ReadU64(a) }

// ReadF64 loads a float64.
func (p *Proc) ReadF64(a Addr) float64 { return p.inner.ReadF64(a) }

// WriteU32 stores a 32-bit word (an instrumented shared store).
func (p *Proc) WriteU32(a Addr, v uint32) { p.inner.WriteU32(a, v) }

// WriteU64 stores a 64-bit doubleword (an instrumented shared store).
func (p *Proc) WriteU64(a Addr, v uint64) { p.inner.WriteU64(a, v) }

// WriteF64 stores a float64 (an instrumented shared store).
func (p *Proc) WriteF64(a Addr, v float64) { p.inner.WriteF64(a, v) }

// WriteU32s stores len(vs) consecutive 32-bit words starting at a — the
// instrumented form of a dense typed-array store loop.  Semantics and
// simulated costs are identical to element-wise WriteU32 calls; only the
// per-store dispatch overhead is fused.
func (p *Proc) WriteU32s(a Addr, vs []uint32) { p.inner.WriteU32s(a, vs) }

// WriteU64s stores len(vs) consecutive doublewords starting at a.
func (p *Proc) WriteU64s(a Addr, vs []uint64) { p.inner.WriteU64s(a, vs) }

// WriteF64s stores len(vs) consecutive float64s starting at a.
func (p *Proc) WriteF64s(a Addr, vs []float64) { p.inner.WriteF64s(a, vs) }

// ReadBytes copies rg.Size bytes of shared memory into dst.
func (p *Proc) ReadBytes(rg Range, dst []byte) { p.inner.ReadBytes(rg, dst) }

// WriteBytes performs an area store (structure assignment / bcopy into
// shared memory), trapped through the area template entry point.
func (p *Proc) WriteBytes(rg Range, src []byte) { p.inner.WriteBytes(rg, src) }

// Acquire obtains the lock in exclusive (write) mode.
func (p *Proc) Acquire(l LockID) { p.inner.Acquire(l) }

// AcquireShared obtains the lock in non-exclusive (read) mode, receiving a
// consistent snapshot of the bound data.
func (p *Proc) AcquireShared(l LockID) { p.inner.AcquireShared(l) }

// Release releases the lock (local under the lazy protocol).
func (p *Proc) Release(l LockID) { p.inner.Release(l) }

// Rebind replaces the lock's data binding; the caller must hold the lock
// exclusively.
func (p *Proc) Rebind(l LockID, ranges ...Range) { p.inner.Rebind(l, ranges...) }

// Barrier enters the barrier and blocks until all processors arrive; data
// bound to the barrier is made consistent across all of them.
func (p *Proc) Barrier(b BarrierID) { p.inner.Barrier(b) }

// Crash kills this processor's node at the current program point and does
// not return: unreleased writes are discarded (they were never observable
// under entry consistency), lock tokens held here are reclaimed at their
// last-released state, and barriers re-form over the survivors.  The
// run's fate is decided by Config.OnCrash.
func (p *Proc) Crash() { p.inner.Crash() }

// Join sponsors the runtime admission of node id (an absent or previously
// departed id below Config.MaxNodes) and blocks until the join commits:
// the joiner receives the synchronization directory and the barrier-bound
// data from this node, is announced to every member, and starts executing
// the run function.  The caller must not hold any lock (the sponsor's
// quiescence is what makes the transferred state a consistent release
// boundary).  Returns an error if the id is already a member, out of
// range, mid-admission, or if the joiner dies before committing.
func (p *Proc) Join(id int) error { return p.inner.Join(id) }

// Leave departs this node gracefully at the current release boundary and
// does not return: held lock tokens must already be released (holding one
// panics), the node's authoritative copies and manager roles are handed
// to a successor, its barrier membership is dissolved, and the departure
// is announced to every member.  After Leave the id may be re-admitted
// with Join.  Requires elastic membership (Config.MaxNodes).
func (p *Proc) Leave() { p.inner.Leave() }

// Draining reports whether this node has a pending graceful-leave request
// (System.DrainNode): the application should finish its current unit of
// work, release everything, and call Leave.
func (p *Proc) Draining() bool { return p.inner.Draining() }

// Members returns the current member ids (live and draining), sorted.
// Nil when membership is off.
func (p *Proc) Members() []int { return p.inner.Members() }

// RangeAt returns the range [a, a+size).
func RangeAt(a Addr, size uint32) Range { return Range{Addr: a, Size: size} }

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
