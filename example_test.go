package midway_test

import (
	"fmt"

	"midway"
)

// The canonical program: a lock-guarded counter incremented by every
// processor.
func Example() {
	sys, _ := midway.NewSystem(midway.Config{Nodes: 4, Strategy: midway.RT})
	counter := sys.MustAlloc("counter", 8, 8)
	lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
	done := sys.NewBarrier("done")

	_ = sys.Run(func(p *midway.Proc) {
		for i := 0; i < 100; i++ {
			p.Acquire(lock)
			p.WriteU64(counter, p.ReadU64(counter)+1)
			p.Release(lock)
		}
		p.Barrier(done)
		p.AcquireShared(lock) // pull the final value to every processor
		p.Release(lock)
	})

	fmt.Println(sys.ReadFinalU64(counter))
	// Output: 400
}

// Barrier-bound data: every processor publishes into its own slot, and
// the barrier makes all slots consistent everywhere.
func ExampleSystem_NewBarrier() {
	sys, _ := midway.NewSystem(midway.Config{Nodes: 3, Strategy: midway.VM})
	slots := sys.AllocU64("slots", 3, 8)
	bar := sys.NewBarrier("exchange", slots.Range())

	_ = sys.Run(func(p *midway.Proc) {
		slots.Set(p, p.ID(), uint64(10*(p.ID()+1)))
		p.Barrier(bar)
		sum := uint64(0)
		for i := 0; i < 3; i++ {
			sum += slots.Get(p, i)
		}
		if sum != 60 {
			panic("inconsistent view")
		}
	})

	fmt.Println(sys.ReadFinalU64(slots.At(2)))
	// Output: 30
}

// Rebinding moves a lock's protection to a new address range, the pattern
// behind dynamic task queues.
func ExampleProc_Rebind() {
	sys, _ := midway.NewSystem(midway.Config{Nodes: 2, Strategy: midway.RT})
	arr := sys.AllocU64("arr", 8, 8)
	task := sys.NewLock("task", arr.Slice(0, 4))
	handoff := sys.NewBarrier("handoff")

	_ = sys.Run(func(p *midway.Proc) {
		if p.ID() == 0 {
			p.Acquire(task)
			arr.Set(p, 1, 11)               // guarded by the current binding
			p.Rebind(task, arr.Slice(4, 8)) // the lock now guards the upper half
			for i := 4; i < 8; i++ {
				arr.Set(p, i, uint64(i*100))
			}
			p.Release(task)
		}
		p.Barrier(handoff)
		if p.ID() == 1 {
			p.Acquire(task) // receives the upper half with the rebound lock
			fmt.Println(arr.Get(p, 4), arr.Get(p, 7))
			p.Release(task)
		}
	})
	// Output: 400 700
}
