package midway_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"midway"
	"midway/internal/obs"
)

// partRounds is the partition workload's per-node round count: long
// enough that a cut bracketing the middle third of the clean run
// straddles live lock traffic on every scheme and engine.
const partRounds = 8

// partRun is one partition-workload execution: the final memory read at
// node 0, the system for oracle queries (split-brain census, crash
// report, cycle clock), the counter lock's id, and the run error.
type partRun struct {
	mem  []byte
	sys  *midway.System
	lock midway.LockID
	err  error
}

// partitionWorkload runs the crash suite's lock-counter + barrier-slot
// workload with no planted failures: every node increments a shared
// counter under the lock each round, publishes a slot value, and meets
// the round barrier.  Failure behavior comes entirely from cfg — a
// deterministic partition schedule (Config.Partition) or a wall-clock
// fault spec — so the same function serves as both the partition-free
// baseline and the partitioned run.
func partitionWorkload(cfg midway.Config) partRun {
	nodes := cfg.Nodes
	sys, err := midway.NewSystem(cfg)
	if err != nil {
		return partRun{err: err}
	}
	counter := sys.MustAlloc("counter", 8, 8)
	slots := sys.AllocU64("slots", nodes, 8)
	lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
	bar := sys.NewBarrier("round", slots.Range())
	parts := make([][]midway.Range, nodes)
	for i := range parts {
		parts[i] = []midway.Range{slots.Slice(i, i+1)}
	}
	sys.SetBarrierParts(bar, parts)

	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		for r := 1; r <= partRounds; r++ {
			p.Acquire(lock)
			p.WriteU64(counter, p.ReadU64(counter)+uint64(me+1))
			p.Release(lock)
			slots.Set(p, me, uint64(me*1000+r))
			p.Barrier(bar)
		}
		p.AcquireShared(lock)
		p.Release(lock)
	})
	if err != nil {
		return partRun{sys: sys, lock: lock, err: err}
	}
	mem := make([]byte, 8+8*nodes)
	sys.ReadFinalAt(0, midway.RangeAt(counter, 8), mem[:8])
	sys.ReadFinalAt(0, slots.Range(), mem[8:])
	return partRun{mem: mem, sys: sys, lock: lock}
}

// fenceWindow builds a deterministic fence schedule for node 3 whose cut
// and heal bracket the middle third of the clean run's cycle count.
func fenceWindow(t *testing.T, cycles uint64) string {
	t.Helper()
	if cycles < 3 {
		t.Fatalf("clean probe run too short to partition: %d cycles", cycles)
	}
	return fmt.Sprintf("minority=3,at=%d,healat=%d", cycles/3, 2*cycles/3)
}

// TestPartitionFenceGoldenMatrix is the tentpole acceptance test: a
// deterministic partition straddling live lock traffic, under every
// write-detection scheme and both execution engines.  The fence policy
// must (a) never produce two concurrent exclusive holders of the counter
// lock — the split-brain oracle, (b) declare no deaths, (c) heal into a
// final memory byte-identical to the partition-free run (nothing is
// discarded across the cut), and (d) replay byte-identically.
func TestPartitionFenceGoldenMatrix(t *testing.T) {
	const nodes = 4
	for _, scheme := range []string{"rt", "vm", "hybrid"} {
		for _, sched := range []string{"goroutine", "lockstep"} {
			t.Run(scheme+"/"+sched, func(t *testing.T) {
				cfg := midway.Config{Nodes: nodes, Scheme: scheme, Sched: sched}
				clean := partitionWorkload(cfg)
				if clean.err != nil {
					t.Fatalf("clean run: %v", clean.err)
				}

				cfg.Partition = fenceWindow(t, clean.sys.ExecutionCycles())
				fenced := partitionWorkload(cfg)
				if fenced.err != nil {
					t.Fatalf("fenced run: %v", fenced.err)
				}
				if got := fenced.sys.MaxExclusiveHolders(fenced.lock); got != 1 {
					t.Errorf("max concurrent exclusive holders = %d, want 1 (split brain)", got)
				}
				if rep := fenced.sys.CrashReport(); rep != nil {
					t.Errorf("fence policy declared deaths: %+v", rep)
				}
				if !bytes.Equal(fenced.mem, clean.mem) {
					t.Errorf("healed final memory differs from the partition-free run:\nclean:  %x\nhealed: %x",
						clean.mem, fenced.mem)
				}

				again := partitionWorkload(cfg)
				if again.err != nil {
					t.Fatalf("repeat fenced run: %v", again.err)
				}
				if !bytes.Equal(again.mem, fenced.mem) {
					t.Errorf("repeated fenced runs diverged:\n1: %x\n2: %x", fenced.mem, again.mem)
				}
			})
		}
	}
}

// TestPartitionDormantScheduleIsInert pins the configured-but-dormant
// invariant: a partition schedule whose cut instant lies beyond the end
// of the run must leave final memory, the cycle clock and every
// statistic byte-identical to a never-configured run — the feature costs
// nothing until it fires.
func TestPartitionDormantScheduleIsInert(t *testing.T) {
	for _, sched := range []string{"goroutine", "lockstep"} {
		t.Run(sched, func(t *testing.T) {
			cfg := midway.Config{Nodes: 4, Scheme: "rt", Sched: sched}
			clean := partitionWorkload(cfg)
			if clean.err != nil {
				t.Fatalf("clean run: %v", clean.err)
			}
			c := clean.sys.ExecutionCycles()
			cfg.Partition = fmt.Sprintf("minority=3,at=%d,healat=%d", 100*c, 100*c+1)
			dormant := partitionWorkload(cfg)
			if dormant.err != nil {
				t.Fatalf("dormant run: %v", dormant.err)
			}
			if !bytes.Equal(dormant.mem, clean.mem) {
				t.Errorf("final memory differs:\nclean:   %x\ndormant: %x", clean.mem, dormant.mem)
			}
			if a, b := clean.sys.ExecutionCycles(), dormant.sys.ExecutionCycles(); a != b {
				t.Errorf("execution cycles differ: clean %d, dormant %d", a, b)
			}
			if a, b := clean.sys.TotalStats(), dormant.sys.TotalStats(); a != b {
				t.Errorf("statistics differ:\nclean:   %+v\ndormant: %+v", a, b)
			}
		})
	}
}

// TestPartitionAbortTypedError checks the abort policy: the run fails
// with a *PartitionError naming the minority side and the cut instant.
func TestPartitionAbortTypedError(t *testing.T) {
	cfg := midway.Config{Nodes: 4, Scheme: "rt", Sched: "lockstep"}
	clean := partitionWorkload(cfg)
	if clean.err != nil {
		t.Fatalf("clean run: %v", clean.err)
	}
	at := clean.sys.ExecutionCycles() / 2
	cfg.Partition = fmt.Sprintf("minority=3,at=%d", at)
	cfg.OnPartition = midway.PartitionAbort
	r := partitionWorkload(cfg)
	if r.err == nil {
		t.Fatal("run across an aborting partition succeeded")
	}
	var pe *midway.PartitionError
	if !errors.As(r.err, &pe) {
		t.Fatalf("run error = %v, want *PartitionError", r.err)
	}
	if len(pe.Minority) != 1 || pe.Minority[0] != 3 {
		t.Errorf("PartitionError.Minority = %v, want [3]", pe.Minority)
	}
	if pe.Cycles != at {
		t.Errorf("PartitionError.Cycles = %d, want %d", pe.Cycles, at)
	}
}

// TestPartitionDegradeDuringMigration composes the degrade policy with
// dynamic lock ownership: node 3 dominates the hot lock's acquire
// profile so its home migrates there, then the partition declares node 3
// dead mid-run.  The survivors' next acquires must resolve through the
// re-pointed home (recovery moves the brokering role off the corpse),
// the census must never see two exclusive holders, and the lockstep
// schedule must replay byte-identically.
func TestPartitionDegradeDuringMigration(t *testing.T) {
	const (
		nodes    = 4
		rounds   = 6
		hotBoost = 8 // node 3's acquires per round; others do one
	)
	run := func(partition string, trace *bytes.Buffer) (uint64, *midway.System, midway.LockID, error) {
		cfg := midway.Config{
			Nodes: nodes, Strategy: midway.RT, Sched: "lockstep",
			Migrate: true, OnCrash: midway.CrashDegrade,
			Partition: partition,
		}
		if partition != "" {
			cfg.OnPartition = midway.PartitionDegrade
		}
		if trace != nil {
			cfg.Trace = trace
			cfg.TraceFormat = "jsonl"
		}
		sys, err := midway.NewSystem(cfg)
		if err != nil {
			return 0, nil, 0, err
		}
		counter := sys.MustAlloc("counter", 8, 8)
		slots := sys.AllocU64("slots", nodes, 8)
		// Migration-on systems hash sync-object ids to homes, and object
		// id 0 lands on node 3 — the hot node.  Burn id 0 on an unused
		// lock so the contended lock's static home (node 1) differs from
		// its dominant acquirer and the home actually moves.
		sys.NewLock("pad")
		lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
		bar := sys.NewBarrier("round", slots.Range())
		parts := make([][]midway.Range, nodes)
		for i := range parts {
			parts[i] = []midway.Range{slots.Slice(i, i+1)}
		}
		sys.SetBarrierParts(bar, parts)
		err = sys.Run(func(p *midway.Proc) {
			me := p.ID()
			for r := 1; r <= rounds; r++ {
				n := 1
				if me == 3 {
					n = hotBoost // node 3 dominates: the home migrates to it
				}
				for i := 0; i < n; i++ {
					p.Acquire(lock)
					p.WriteU64(counter, p.ReadU64(counter)+1)
					p.Release(lock)
				}
				slots.Set(p, me, uint64(r))
				p.Barrier(bar)
			}
			p.AcquireShared(lock)
			p.Release(lock)
		})
		if err != nil {
			return 0, sys, lock, err
		}
		var buf [8]byte
		sys.ReadFinalAt(0, midway.RangeAt(counter, 8), buf[:])
		return leU64(buf[:]), sys, lock, nil
	}

	// Probe the clean schedule for its length, then cut at the midpoint.
	_, probe, _, err := run("", nil)
	if err != nil {
		t.Fatalf("clean probe run: %v", err)
	}
	spec := fmt.Sprintf("minority=3,at=%d", probe.ExecutionCycles()/2)

	var trace bytes.Buffer
	counter, sys, lock, err := run(spec, &trace)
	if err != nil {
		t.Fatalf("degraded run failed instead of recovering: %v", err)
	}
	rep := sys.CrashReport()
	if rep == nil || len(rep.Nodes) != 1 || rep.Nodes[0] != 3 {
		t.Fatalf("crash report = %+v, want nodes [3]", rep)
	}
	if got := sys.MaxExclusiveHolders(lock); got != 1 {
		t.Errorf("max concurrent exclusive holders = %d, want 1 (split brain)", got)
	}
	// Survivors contribute one increment per round for all rounds; the
	// victim's committed increments may survive reclamation, its
	// unreleased one never does.
	survivors := uint64((nodes - 1) * rounds)
	victimMax := uint64(hotBoost * rounds)
	if counter < survivors || counter > survivors+victimMax {
		t.Errorf("survivor counter = %d, want in [%d, %d]", counter, survivors, survivors+victimMax)
	}

	// The composition is only exercised if the home really migrated to
	// the victim before the cut.
	a, err := obs.Analyze(&trace)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ownership == nil || len(a.Ownership.Moves) == 0 {
		t.Fatal("no home migration before the cut; the workload skew is too weak to exercise the composition")
	}
	migratedToVictim := false
	for _, mv := range a.Ownership.Moves {
		if mv.To == 3 {
			migratedToVictim = true
		}
	}
	if !migratedToVictim {
		t.Errorf("home moves %+v never targeted the victim node 3", a.Ownership.Moves)
	}

	counter2, _, _, err := run(spec, nil)
	if err != nil {
		t.Fatalf("repeat degraded run: %v", err)
	}
	if counter2 != counter {
		t.Errorf("repeated degraded runs diverged: %d vs %d", counter, counter2)
	}
}

// TestPartitionDegradeDuringDrain composes the degrade policy with a
// graceful drain: node 2's drain request lands but the node keeps
// working (its leave never commits), and the partition then declares it
// dead mid-drain.  Death must supersede the drain — status Dead, tokens
// reclaimed once through the crash path, survivors complete — with no
// deadlock between the two departure protocols.
func TestPartitionDegradeDuringDrain(t *testing.T) {
	const (
		nodes          = 3
		survivorRounds = 6
		draineeRounds  = 120 // churns far past the cut so the leave stays pending
	)
	run := func(partition string) (uint64, *midway.System, error) {
		cfg := midway.Config{
			Nodes: nodes, MaxNodes: nodes, Strategy: midway.RT, Sched: "lockstep",
			OnCrash: midway.CrashDegrade, Partition: partition,
		}
		if partition != "" {
			cfg.OnPartition = midway.PartitionDegrade
		}
		sys, err := midway.NewSystem(cfg)
		if err != nil {
			return 0, nil, err
		}
		counter := sys.MustAlloc("counter", 8, 8)
		lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
		done := sys.NewBarrier("done")
		err = sys.Run(func(p *midway.Proc) {
			id := p.ID()
			rounds := survivorRounds
			if id == 2 {
				rounds = draineeRounds
			}
			for i := 0; i < rounds; i++ {
				if id == 2 && i == 1 {
					// The drain request lands; the app never honors it, so
					// the node is still Draining when the cut declares it.
					sys.DrainNode(2)
				}
				p.Acquire(lock)
				p.WriteU64(counter, p.ReadU64(counter)+1)
				p.Release(lock)
			}
			// Rendezvous (the barrier re-forms over the survivors), then
			// node 0 pulls the token so ReadFinal sees the final counter.
			p.Barrier(done)
			if id == 0 {
				p.Acquire(lock)
				p.Release(lock)
			}
		})
		if err != nil {
			return 0, sys, err
		}
		return sys.ReadFinalU64(counter), sys, nil
	}

	_, probe, err := run("")
	if err != nil {
		t.Fatalf("clean probe run: %v", err)
	}
	spec := fmt.Sprintf("minority=2,at=%d", probe.ExecutionCycles()/2)

	counter, sys, err := run(spec)
	if err != nil {
		t.Fatalf("degraded run failed instead of recovering: %v", err)
	}
	if st := sys.MemberStatus(2); st != midway.MemberDead {
		t.Errorf("node 2 status = %v, want dead (death supersedes the pending drain)", st)
	}
	rep := sys.CrashReport()
	if rep == nil || len(rep.Nodes) != 1 || rep.Nodes[0] != 2 {
		t.Errorf("crash report = %+v, want nodes [2]", rep)
	}
	survivors := uint64((nodes - 1) * survivorRounds)
	if counter < survivors || counter > survivors+draineeRounds {
		t.Errorf("survivor counter = %d, want in [%d, %d]", counter, survivors, survivors+uint64(draineeRounds))
	}

	counter2, _, err := run(spec)
	if err != nil {
		t.Fatalf("repeat degraded run: %v", err)
	}
	if counter2 != counter {
		t.Errorf("repeated degraded runs diverged: %d vs %d", counter, counter2)
	}
}

// TestPartitionWallClockFenceHeals drives the wall-clock path end to
// end: a fault-injected cut severs nodes 2 and 3 mid-run (heartbeats
// included), the quorum detector fences the minority without declaring
// anyone dead, and the heal — retransmission backoff reset, silence
// re-armed — lets the run complete with final memory identical to the
// partition-free run's.
func TestPartitionWallClockFenceHeals(t *testing.T) {
	cfg := midway.Config{Nodes: 4, Scheme: "rt"}
	clean := partitionWorkload(cfg)
	if clean.err != nil {
		t.Fatalf("clean run: %v", clean.err)
	}
	cfg.FaultSpec = "part=2+3,partafter=30,heal=300ms,seed=1"
	fenced := partitionWorkload(cfg)
	if fenced.err != nil {
		t.Fatalf("fenced run: %v", fenced.err)
	}
	if rep := fenced.sys.CrashReport(); rep != nil {
		t.Errorf("fence policy declared deaths across a healing cut: %+v", rep)
	}
	if !bytes.Equal(fenced.mem, clean.mem) {
		t.Errorf("healed final memory differs from the partition-free run:\nclean:  %x\nhealed: %x",
			clean.mem, fenced.mem)
	}
}

// TestPartitionTraceTimeline checks that a traced fenced run yields the
// partition timeline: the analyzer reports the quorum loss, the fence
// and the heal with their scheduled instants, and the text report
// renders the section.
func TestPartitionTraceTimeline(t *testing.T) {
	cfg := midway.Config{Nodes: 4, Scheme: "rt", Sched: "lockstep"}
	clean := partitionWorkload(cfg)
	if clean.err != nil {
		t.Fatalf("clean run: %v", clean.err)
	}
	c := clean.sys.ExecutionCycles()
	at, healAt := c/3, 2*c/3
	var buf bytes.Buffer
	cfg.Partition = fmt.Sprintf("minority=3,at=%d,healat=%d", at, healAt)
	cfg.Trace = &buf
	cfg.TraceFormat = "jsonl"
	if r := partitionWorkload(cfg); r.err != nil {
		t.Fatalf("fenced run: %v", r.err)
	}
	a, err := obs.Analyze(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := a.Partition
	if p == nil {
		t.Fatal("fenced run traced no partition events")
	}
	if len(p.QuorumLosses) != 1 || p.QuorumLosses[0].Node != 3 {
		t.Errorf("quorum losses = %+v, want one for node 3", p.QuorumLosses)
	}
	if len(p.Fences) != 1 || p.Fences[0].Node != 3 || p.Fences[0].Cycles != at {
		t.Errorf("fences = %+v, want node 3 at cycle %d", p.Fences, at)
	}
	if len(p.Heals) != 1 || p.Heals[0].Node != 3 || p.Heals[0].Cycles != healAt {
		t.Errorf("heals = %+v, want node 3 at cycle %d", p.Heals, healAt)
	}
	var rep strings.Builder
	a.WriteReport(&rep)
	if !strings.Contains(rep.String(), "partition timeline") {
		t.Error("text report lacks the partition timeline section")
	}
}

// TestPartitionConfigValidation pins the construction-time rejections:
// malformed schedules, policy/spec mismatches, and minorities the quorum
// rule could never fence.
func TestPartitionConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  midway.Config
		want string
	}{
		{"missing-at", midway.Config{Nodes: 4, Partition: "minority=3"}, "required"},
		{"missing-minority", midway.Config{Nodes: 4, Partition: "at=100,healat=200"}, "required"},
		{"fence-needs-healat", midway.Config{Nodes: 4, Partition: "minority=3,at=100"}, "healat"},
		{"healat-under-abort", midway.Config{
			Nodes: 4, Partition: "minority=3,at=100,healat=200",
			OnPartition: midway.PartitionAbort,
		}, "healat"},
		{"degrade-needs-crash-degrade", midway.Config{
			Nodes: 4, Partition: "minority=3,at=100",
			OnPartition: midway.PartitionDegrade,
		}, "OnCrash"},
		{"whole-membership", midway.Config{Nodes: 2, Partition: "minority=0+1,at=10,healat=20"}, "majority"},
		{"majority-side", midway.Config{Nodes: 4, Partition: "minority=1+2+3,at=10,healat=20"}, "majority"},
		{"tie-break-side", midway.Config{Nodes: 4, Partition: "minority=0+1,at=10,healat=20"}, "tie-break"},
		{"out-of-range", midway.Config{Nodes: 4, Partition: "minority=9,at=10,healat=20"}, "range"},
		{"duplicate-node", midway.Config{Nodes: 4, Partition: "minority=3+3,at=10,healat=20"}, "duplicate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := midway.NewSystem(c.cfg)
			if err == nil {
				t.Fatalf("config %+v accepted", c.cfg)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
