package midway_test

import (
	"fmt"
	"strings"
	"testing"

	"midway"
)

func TestQuickstartCounter(t *testing.T) {
	sys, err := midway.NewSystem(midway.Config{Nodes: 4, Strategy: midway.RT})
	if err != nil {
		t.Fatal(err)
	}
	counter := sys.MustAlloc("counter", 8, 8)
	lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
	done := sys.NewBarrier("done")
	const perNode = 10
	err = sys.Run(func(p *midway.Proc) {
		for i := 0; i < perNode; i++ {
			p.Acquire(lock)
			p.WriteU64(counter, p.ReadU64(counter)+1)
			p.Release(lock)
		}
		p.Barrier(done)
		// Pull the final value to every node so ReadFinal sees it at
		// processor 0.
		p.AcquireShared(lock)
		p.Release(lock)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ReadFinalU64(counter); got != 4*perNode {
		t.Errorf("counter = %d, want %d", got, 4*perNode)
	}
	if sys.ExecutionSeconds() <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := midway.NewSystem(midway.Config{Nodes: 0}); err == nil {
		t.Error("zero nodes accepted")
	}
	sys, err := midway.NewSystem(midway.Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Alloc("bad", 8, 3); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
	if _, err := sys.Alloc("bad", 8, 2); err == nil {
		t.Error("line size below minimum accepted")
	}
	if _, err := sys.Alloc("ok", 8, 4); err != nil {
		t.Errorf("valid line size rejected: %v", err)
	}
}

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]midway.Strategy{
		"rt": midway.RT, "vm": midway.VM, "blast": midway.Blast,
		"twin": midway.TwinDiff, "none": midway.Standalone,
	} {
		got, err := midway.ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := midway.ParseStrategy("nonsense"); err == nil {
		t.Error("bad strategy name accepted")
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	// The same exchange workload, but over real loopback sockets.
	sys, err := midway.NewSystem(midway.Config{Nodes: 3, Strategy: midway.VM, UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	slots := sys.AllocU64("slots", 3, 8)
	bar := sys.NewBarrier("xch", slots.Range())
	const rounds = 5
	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		for r := 1; r <= rounds; r++ {
			slots.Set(p, me, uint64(100*me+r))
			p.Barrier(bar)
			for j := 0; j < 3; j++ {
				if got := slots.Get(p, j); got != uint64(100*j+r) {
					panic(fmt.Sprintf("node %d round %d: slot %d = %d", me, r, j, got))
				}
			}
			p.Barrier(bar)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultCostKnob(t *testing.T) {
	// The same VM workload under 1200 µs and 122 µs fault costs: the
	// simulated time must shrink accordingly.
	run := func(faultUS float64) float64 {
		sys, err := midway.NewSystem(midway.Config{
			Nodes: 1, Strategy: midway.VM, PageFaultMicros: faultUS,
		})
		if err != nil {
			t.Fatal(err)
		}
		arr := sys.AllocU64("arr", 8192, 8) // 16 pages
		err = sys.Run(func(p *midway.Proc) {
			for i := 0; i < arr.Len(); i++ {
				arr.Set(p, i, uint64(i))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys.ExecutionSeconds()
	}
	slow := run(1200)
	fast := run(122)
	if fast >= slow {
		t.Errorf("fast exceptions (%g s) not faster than Mach pager (%g s)", fast, slow)
	}
}

func TestNetworkKnobs(t *testing.T) {
	run := func(latencyUS float64) float64 {
		sys, err := midway.NewSystem(midway.Config{
			Nodes: 2, Strategy: midway.RT, NetLatencyMicros: latencyUS,
		})
		if err != nil {
			t.Fatal(err)
		}
		x := sys.MustAlloc("x", 8, 8)
		l := sys.NewLock("x", midway.RangeAt(x, 8))
		done := sys.NewBarrier("done")
		err = sys.Run(func(p *midway.Proc) {
			for i := 0; i < 10; i++ {
				p.Acquire(l)
				p.WriteU64(x, p.ReadU64(x)+1)
				p.Release(l)
			}
			p.Barrier(done)
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys.ExecutionSeconds()
	}
	if slow, fast := run(2000), run(100); fast >= slow {
		t.Errorf("lower latency did not lower simulated time: %g vs %g", fast, slow)
	}
}

func TestPresetVisibleEverywhere(t *testing.T) {
	sys, err := midway.NewSystem(midway.Config{Nodes: 3, Strategy: midway.RT})
	if err != nil {
		t.Fatal(err)
	}
	arr := sys.AllocF64("arr", 4, 8)
	arr.Preset(sys, 2, 6.5)
	err = sys.Run(func(p *midway.Proc) {
		if got := arr.Get(p, 2); got != 6.5 {
			panic(fmt.Sprintf("node %d: preset = %g", p.ID(), got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceOutput(t *testing.T) {
	var buf strings.Builder
	sys, err := midway.NewSystem(midway.Config{Nodes: 2, Strategy: midway.RT, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	x := sys.MustAlloc("x", 8, 8)
	l := sys.NewLock("hotlock", midway.RangeAt(x, 8))
	bar := sys.NewBarrier("endbar")
	err = sys.Run(func(p *midway.Proc) {
		p.Acquire(l)
		p.WriteU64(x, 1)
		p.Rebind(l, midway.RangeAt(x, 8))
		p.Release(l)
		p.Barrier(bar)
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"acquire hotlock", "rebind hotlock", "barrier endbar enter", "barrier endbar resume"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q in:\n%s", want, out)
		}
	}
}

func TestStatsSurface(t *testing.T) {
	sys, err := midway.NewSystem(midway.Config{Nodes: 2, Strategy: midway.RT})
	if err != nil {
		t.Fatal(err)
	}
	arr := sys.AllocU64("arr", 16, 8)
	l := sys.NewLock("arr", arr.Range())
	done := sys.NewBarrier("done")
	err = sys.Run(func(p *midway.Proc) {
		p.Acquire(l)
		for i := 0; i < 16; i++ {
			arr.Set(p, i, 1)
		}
		p.Release(l)
		p.Barrier(done)
	})
	if err != nil {
		t.Fatal(err)
	}
	per := sys.Stats()
	if len(per) != 2 {
		t.Fatalf("Stats returned %d nodes", len(per))
	}
	total := sys.TotalStats()
	if total.DirtybitsSet != per[0].DirtybitsSet+per[1].DirtybitsSet {
		t.Error("TotalStats does not sum per-node stats")
	}
	mean := sys.MeanStats()
	if mean.DirtybitsSet != total.DirtybitsSet/2 {
		t.Error("MeanStats is not the per-processor average")
	}
	if total.DirtybitsSet != 32 {
		t.Errorf("dirtybits set = %d, want 32", total.DirtybitsSet)
	}
}
