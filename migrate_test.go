package midway_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"midway"
	"midway/internal/apps/churn"
	"midway/internal/apps/skew"
)

// skewCfg is the shared workload for the migration acceptance tests:
// small enough for the test suite, large enough that every node's
// dominant locks see a steady state after their homes migrate.
func skewCfg() skew.Config {
	return skew.Config{Locks: 16, Ops: 96, WorkCycles: 2000, HotMillis: 900, Seed: 1}
}

// TestMigrateChecksumInvariance is the headline correctness check: the
// skewed-lock workload computes the same verified checksum with dynamic
// lock-home migration off and on, under every detection scheme and both
// execution engines.  Migration changes where protocol messages go, never
// what the application computes.
func TestMigrateChecksumInvariance(t *testing.T) {
	for _, scheme := range []string{"rt", "vm", "hybrid"} {
		for _, sched := range []string{"goroutine", "lockstep"} {
			t.Run(scheme+"/"+sched, func(t *testing.T) {
				var sums [2]float64
				for i, migrate := range []bool{false, true} {
					res, err := skew.Run(midway.Config{
						Nodes: 4, Scheme: scheme, Sched: sched, Migrate: migrate,
					}, skewCfg())
					if err != nil {
						t.Fatalf("migrate=%v: %v", migrate, err)
					}
					sums[i] = res.Checksum
				}
				if sums[0] != sums[1] {
					t.Errorf("checksum diverged: off %g, on %g", sums[0], sums[1])
				}
			})
		}
	}
}

// TestMigrateOffIsInert pins the byte-identity contract: with Migrate
// unset, a traced run must contain no home-migrate and no token-forward
// events — the new protocol paths are never entered.  The same run with
// Migrate set must contain home-migrate events, proving the policy
// actually engages on this workload rather than passing vacuously.
func TestMigrateOffIsInert(t *testing.T) {
	trace := func(migrate bool) string {
		var buf bytes.Buffer
		_, err := skew.Run(midway.Config{
			Nodes: 4, Strategy: midway.RT, Sched: "lockstep",
			Migrate: migrate, Trace: &buf, TraceFormat: "jsonl",
		}, skewCfg())
		if err != nil {
			t.Fatalf("migrate=%v: %v", migrate, err)
		}
		return buf.String()
	}
	off := trace(false)
	for _, ev := range []string{"home-migrate", "token-forward"} {
		if strings.Contains(off, ev) {
			t.Errorf("migrate-off trace contains %q events", ev)
		}
	}
	if on := trace(true); !strings.Contains(on, "home-migrate") {
		t.Error("migrate-on trace contains no home-migrate events; the policy never engaged")
	}
}

// TestLockstepMigrateByteIdentical runs the skewed workload twice under
// the lockstep engine with migration on: checksum, simulated time and the
// full per-node message vector must be byte-identical — home moves and
// token-forwarding stay inside the deterministic simulation contract.
func TestLockstepMigrateByteIdentical(t *testing.T) {
	run := func() (float64, float64, []uint64) {
		res, st, err := skew.RunDetail(midway.Config{
			Nodes: 4, Strategy: midway.RT, Sched: "lockstep", Migrate: true,
		}, skewCfg())
		if err != nil {
			t.Fatalf("RunDetail: %v", err)
		}
		msgs := make([]uint64, len(st))
		for i, s := range st {
			msgs[i] = s.Messages
		}
		return res.Checksum, res.Seconds, msgs
	}
	c1, s1, m1 := run()
	c2, s2, m2 := run()
	if c1 != c2 || s1 != s2 || fmt.Sprint(m1) != fmt.Sprint(m2) {
		t.Fatalf("lockstep migrate runs diverged:\n1: %g %g %v\n2: %g %g %v",
			c1, s1, m1, c2, s2, m2)
	}
}

// migrateCrashWorkload gives one node a dominant claim on the counter
// lock (so its home migrates there), then crashes that node, holding the
// lock or idle.  The survivors keep working: crash recovery must re-point
// the migrated home at a live node and reclaim the token.  Returns the
// final counter and the crash report.
func migrateCrashWorkload(t *testing.T, cfg midway.Config, mode string) (uint64, *midway.CrashReport) {
	t.Helper()
	const (
		rounds      = 6
		victim      = 2
		die         = 4 // the round in which the victim dies
		hotPerRound = 8 // victim acquires per hot round; enough for dominance
	)
	sys, err := midway.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counter := sys.MustAlloc("counter", 8, 8)
	lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
	bar := sys.NewBarrier("round")
	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		for r := 1; r <= rounds; r++ {
			if me == victim && r == die {
				switch mode {
				case "lock":
					p.Acquire(lock)
					p.Crash() // dies holding the migrated-home lock
				case "idle":
					p.Crash()
				default:
					panic("unknown crash mode " + mode)
				}
			}
			if me == victim {
				// The hot phase that makes the victim dominant ends one
				// round early, so the barrier below guarantees its last
				// released increment left the node before it dies.
				if r < die-1 {
					for i := 0; i < hotPerRound; i++ {
						p.Acquire(lock)
						p.WriteU64(counter, p.ReadU64(counter)+1)
						p.Release(lock)
					}
				}
			} else {
				p.Acquire(lock)
				p.WriteU64(counter, p.ReadU64(counter)+1)
				p.Release(lock)
			}
			p.Barrier(bar)
		}
		p.AcquireShared(lock)
		p.Release(lock)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return sys.ReadFinalU64(counter), sys.CrashReport()
}

// migrateCrashOracle is the survivor-only expected counter.
func migrateCrashOracle(nodes int) uint64 {
	return uint64(nodes-1)*6 + 2*8 // survivors all rounds + victim's hot rounds
}

// TestMigrateCrashGoldenMatrix crashes the node a lock's home migrated
// to, at two program points under every detection scheme: the survivors
// must complete with the oracle counter, repeated runs must agree, and
// the summary must match the committed goldens (UPDATE_GOLDEN=1
// regenerates).  This pins the recovery interplay: the migrated home
// override is re-pointed at a live node and the token reclaimed exactly
// once.
func TestMigrateCrashGoldenMatrix(t *testing.T) {
	const nodes = 4
	for _, scheme := range []string{"rt", "vm", "hybrid"} {
		for _, mode := range []string{"lock", "idle"} {
			t.Run(scheme+"/"+mode, func(t *testing.T) {
				cfg := midway.Config{
					Nodes: nodes, Scheme: scheme,
					OnCrash: midway.CrashDegrade, Migrate: true,
				}
				counter, rep := migrateCrashWorkload(t, cfg, mode)
				if want := migrateCrashOracle(nodes); counter != want {
					t.Errorf("survivor counter = %d, want %d", counter, want)
				}
				if rep == nil {
					t.Fatal("no crash report after a crashed run")
				}
				if len(rep.Nodes) != 1 || rep.Nodes[0] != 2 {
					t.Errorf("report.Nodes = %v, want [2]", rep.Nodes)
				}

				counter2, _ := migrateCrashWorkload(t, cfg, mode)
				if counter != counter2 {
					t.Errorf("repeated crashed runs diverged: %d vs %d", counter, counter2)
				}

				got := fmt.Sprintf("counter %d\nreport dead=%v reclaims=%d reforms=%d\n",
					counter, rep.Nodes, len(rep.ReclaimedLocks), len(rep.ReformedBarriers))
				golden := filepath.Join("testdata", "migrate", scheme+"_crash_"+mode+".golden")
				if os.Getenv("UPDATE_GOLDEN") != "" {
					if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
				}
				if got != string(want) {
					t.Errorf("golden mismatch:\ngot:\n%swant:\n%s", got, want)
				}
			})
		}
	}
}

// TestMigrateDrainMatchesFixed runs the elastic churn schedule — two
// runtime joins, two graceful drains — with migration on: the verified
// checksum must match the fixed-membership, migration-off run.  A drained
// node that had become a lock's migrated home must hand the brokering
// role on with the token.
func TestMigrateDrainMatchesFixed(t *testing.T) {
	for _, sched := range []string{"goroutine", "lockstep"} {
		fixed, err := churn.Run(
			midway.Config{Nodes: 2, Strategy: midway.RT, Sched: sched},
			churn.Config{Tasks: 96, WorkCycles: 2000})
		if err != nil {
			t.Fatalf("fixed/%s: %v", sched, err)
		}
		elastic, err := churn.Run(
			midway.Config{Nodes: 2, MaxNodes: 4, Strategy: midway.RT, Sched: sched, Migrate: true},
			churnSchedule())
		if err != nil {
			t.Fatalf("elastic+migrate/%s: %v", sched, err)
		}
		if elastic.Checksum != fixed.Checksum {
			t.Errorf("%s: elastic+migrate checksum %g != fixed checksum %g",
				sched, elastic.Checksum, fixed.Checksum)
		}
	}
}

// TestMigrateDrainGolden pins the full migrate × drain trajectory under
// the lockstep engine: checksum, simulated time and message totals must
// be byte-identical run to run and match the committed golden.
func TestMigrateDrainGolden(t *testing.T) {
	run := func() string {
		r, err := churn.Run(
			midway.Config{Nodes: 2, MaxNodes: 4, Strategy: midway.VM, Sched: "lockstep", Migrate: true},
			churnSchedule())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return fmt.Sprintf("checksum %g\nseconds %.6f\nmessages %d\nbytes %d\n",
			r.Checksum, r.Seconds, r.Total.Messages, r.Total.BytesTransferred)
	}
	got := run()
	if again := run(); got != again {
		t.Fatalf("lockstep migrate+drain runs diverged:\n1: %s2: %s", got, again)
	}
	golden := filepath.Join("testdata", "migrate", "drain_lockstep.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestMigrateFlattensSkewedLoad is the perf acceptance check, pinned on
// the deterministic engine: on the skewed-lock workload, migration must
// strictly reduce the total protocol message count and the busiest node's
// count — the dominant acquirer's steady-state acquires go local.
func TestMigrateFlattensSkewedLoad(t *testing.T) {
	load := func(migrate bool) (total, max uint64) {
		_, st, err := skew.RunDetail(midway.Config{
			Nodes: 8, Strategy: midway.RT, Sched: "lockstep", Migrate: migrate,
		}, skew.Config{Locks: 32, Ops: 256, WorkCycles: 2000, HotMillis: 900, Seed: 1})
		if err != nil {
			t.Fatalf("migrate=%v: %v", migrate, err)
		}
		for _, s := range st {
			total += s.Messages
			if s.Messages > max {
				max = s.Messages
			}
		}
		return total, max
	}
	offTotal, offMax := load(false)
	onTotal, onMax := load(true)
	t.Logf("messages off: total=%d max=%d; on: total=%d max=%d", offTotal, offMax, onTotal, onMax)
	if onTotal >= offTotal {
		t.Errorf("migration did not reduce total messages: %d >= %d", onTotal, offTotal)
	}
	if onMax >= offMax {
		t.Errorf("migration did not flatten the busiest node: %d >= %d", onMax, offMax)
	}
}
