package midway_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"midway"
	"midway/internal/obs"
)

// crashPoison is the unreleased write the crashed node makes inside its
// final critical section.  Recovery must discard it: under entry
// consistency no survivor ever observed it, so rolling the lock back to
// its last-released state is indistinguishable from the node having
// crashed before the acquire.
const crashPoison = uint64(1) << 40

const (
	crashRounds = 6
	crashRound  = 4 // the round in which the victim dies
	crashVictim = 1
)

// crashOracle is the survivor-only expected counter: every survivor
// contributes me+1 per round for all rounds; the victim contributes only
// for the rounds before it stops acquiring (it sits out from round
// crashRound-1 so its last released increment provably propagates before
// the crash, keeping the final state independent of grant order).
func crashOracle(nodes int) uint64 {
	want := uint64(0)
	for i := 0; i < nodes; i++ {
		if i == crashVictim {
			want += uint64(crashRound-2) * uint64(i+1)
		} else {
			want += uint64(crashRounds) * uint64(i+1)
		}
	}
	return want
}

// crashWorkload runs the lock-counter + barrier-slot oracle workload and
// kills crashVictim at a fixed program point in round crashRound:
//
//	lock:    holding the counter lock, after an unreleased poison write
//	barrier: between the lock section and the round barrier
//	idle:    at the top of the round, touching nothing
//
// It returns the final survivor memory (counter then slots, read at node
// 0) and the run's crash report.
func crashWorkload(t *testing.T, cfg midway.Config, mode string) ([]byte, *midway.CrashReport) {
	t.Helper()
	nodes := cfg.Nodes
	sys, err := midway.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counter := sys.MustAlloc("counter", 8, 8)
	slots := sys.AllocU64("slots", nodes, 8)
	lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
	bar := sys.NewBarrier("round", slots.Range())
	parts := make([][]midway.Range, nodes)
	for i := range parts {
		parts[i] = []midway.Range{slots.Slice(i, i+1)}
	}
	sys.SetBarrierParts(bar, parts)

	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		for r := 1; r <= crashRounds; r++ {
			if me == crashVictim && r == crashRound {
				switch mode {
				case "lock":
					p.Acquire(lock)
					p.WriteU64(counter, p.ReadU64(counter)+crashPoison)
					p.Crash() // dies holding the lock; does not return
				case "barrier":
					p.Crash() // dies while survivors head into the barrier
				case "idle":
					p.Crash()
				default:
					panic("unknown crash mode " + mode)
				}
			}
			// The victim stops acquiring one round before it dies, so the
			// barrier below guarantees its last increment left the node.
			if me != crashVictim || r < crashRound-1 {
				p.Acquire(lock)
				p.WriteU64(counter, p.ReadU64(counter)+uint64(me+1))
				p.Release(lock)
			}
			slots.Set(p, me, uint64(me*1000+r))
			p.Barrier(bar)
			p.Barrier(bar)
		}
		p.AcquireShared(lock)
		p.Release(lock)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	mem := make([]byte, 8+8*nodes)
	sys.ReadFinalAt(0, midway.RangeAt(counter, 8), mem[:8])
	sys.ReadFinalAt(0, slots.Range(), mem[8:])
	return mem, sys.CrashReport()
}

// crashSummary renders the survivor memory and report in the committed
// golden format.
func crashSummary(nodes int, mem []byte, rep *midway.CrashReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "counter %d\n", leU64(mem[:8]))
	for i := 0; i < nodes; i++ {
		fmt.Fprintf(&b, "slot%d %d\n", i, leU64(mem[8+8*i:]))
	}
	if rep == nil {
		b.WriteString("report none\n")
	} else {
		fmt.Fprintf(&b, "report dead=%v reclaims=%d reforms=%d\n",
			rep.Nodes, len(rep.ReclaimedLocks), len(rep.ReformedBarriers))
	}
	return b.String()
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// TestCrashGoldenMatrix kills a node mid-run at three program points under
// every write-detection scheme and checks the survivor-only result is (a)
// the oracle value with the victim's unreleased poison provably absent,
// (b) byte-identical across repeated runs, and (c) byte-identical to the
// committed goldens (regenerate with UPDATE_GOLDEN=1).
func TestCrashGoldenMatrix(t *testing.T) {
	const nodes = 4
	for _, scheme := range []string{"rt", "vm", "hybrid"} {
		for _, mode := range []string{"lock", "barrier", "idle"} {
			t.Run(scheme+"/"+mode, func(t *testing.T) {
				cfg := midway.Config{Nodes: nodes, Scheme: scheme, OnCrash: midway.CrashDegrade}
				mem, rep := crashWorkload(t, cfg, mode)
				if got, want := leU64(mem[:8]), crashOracle(nodes); got != want {
					t.Errorf("survivor counter = %d, want %d", got, want)
				}
				if leU64(mem[:8])&crashPoison != 0 {
					t.Errorf("unreleased poison write leaked into survivor state")
				}
				if rep == nil {
					t.Fatal("no crash report after a crashed run")
				}
				if len(rep.Nodes) != 1 || rep.Nodes[0] != crashVictim {
					t.Errorf("report.Nodes = %v, want [%d]", rep.Nodes, crashVictim)
				}
				if mode == "lock" && len(rep.ReclaimedLocks) != 1 {
					t.Errorf("reclaimed %d locks, want 1: %+v", len(rep.ReclaimedLocks), rep.ReclaimedLocks)
				}

				mem2, _ := crashWorkload(t, cfg, mode)
				if string(mem) != string(mem2) {
					t.Errorf("repeated crashed runs diverged:\n1: %x\n2: %x", mem, mem2)
				}

				got := crashSummary(nodes, mem, rep)
				golden := filepath.Join("testdata", "crash", scheme+"_"+mode+".golden")
				if os.Getenv("UPDATE_GOLDEN") != "" {
					if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
				}
				if got != string(want) {
					t.Errorf("golden mismatch:\ngot:\n%swant:\n%s", got, want)
				}
			})
		}
	}
}

// TestCrashRecoveryTrace checks that a traced crashed run yields a
// recovery timeline: the analyzer reports the death, the token
// reclamation and the barrier reform, and the text report renders them.
func TestCrashRecoveryTrace(t *testing.T) {
	var buf bytes.Buffer
	cfg := midway.Config{
		Nodes: 4, Scheme: "rt", OnCrash: midway.CrashDegrade,
		Trace: &buf, TraceFormat: "jsonl",
	}
	crashWorkload(t, cfg, "lock")
	a, err := obs.Analyze(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := a.Recovery
	if r == nil {
		t.Fatal("crashed run traced no recovery events")
	}
	if len(r.Deaths) != 1 || r.Deaths[0].Node != crashVictim {
		t.Errorf("deaths = %+v, want one for node %d", r.Deaths, crashVictim)
	}
	if len(r.Reclaims) != 1 || r.Reclaims[0].Name != "counter" || int(r.Reclaims[0].From) != crashVictim {
		t.Errorf("reclaims = %+v, want counter from node %d", r.Reclaims, crashVictim)
	}
	if len(r.Reforms) != 1 || r.Reforms[0].Name != "round" || r.Reforms[0].Parties != 3 {
		t.Errorf("reforms = %+v, want round over 3 parties", r.Reforms)
	}
	var rep strings.Builder
	a.WriteReport(&rep)
	if !strings.Contains(rep.String(), "crash recovery timeline") {
		t.Error("text report lacks the recovery timeline section")
	}
}

// TestCrashAbortDefault checks the default policy: a node death fails the
// whole run with a *CrashError naming the node.
func TestCrashAbortDefault(t *testing.T) {
	sys, err := midway.NewSystem(midway.Config{Nodes: 2, Scheme: "rt"})
	if err != nil {
		t.Fatal(err)
	}
	slots := sys.AllocU64("slots", 2, 8)
	bar := sys.NewBarrier("round", slots.Range())
	err = sys.Run(func(p *midway.Proc) {
		if p.ID() == 1 {
			p.Crash()
		}
		p.Barrier(bar)
	})
	var ce *midway.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("run error = %v, want *CrashError", err)
	}
	if ce.Node != 1 {
		t.Errorf("CrashError.Node = %d, want 1", ce.Node)
	}
}

// TestCrashHeartbeatDetection crashes a node at the transport level (its
// endpoints are hard-killed mid-run by fault injection) and relies on the
// heartbeat monitor — auto-enabled by the armed crash — to notice, declare
// the death, and trigger degrade-mode recovery.  Unlike Proc.Crash, the
// victim's exact program point depends on wall-clock delivery order, so
// the assertions cover the survivor invariants only: the run completes,
// the report names the victim, and every survivor published its final
// round.
func TestCrashHeartbeatDetection(t *testing.T) {
	const nodes, rounds = 4, 12
	for _, scheme := range []string{"rt", "vm"} {
		t.Run(scheme, func(t *testing.T) {
			sys, err := midway.NewSystem(midway.Config{
				Nodes:     nodes,
				Scheme:    scheme,
				OnCrash:   midway.CrashDegrade,
				FaultSpec: "crash=1,crashafter=10,seed=3",
			})
			if err != nil {
				t.Fatal(err)
			}
			slots := sys.AllocU64("slots", nodes, 8)
			bar := sys.NewBarrier("round", slots.Range())
			parts := make([][]midway.Range, nodes)
			for i := range parts {
				parts[i] = []midway.Range{slots.Slice(i, i+1)}
			}
			sys.SetBarrierParts(bar, parts)
			err = sys.Run(func(p *midway.Proc) {
				me := p.ID()
				for r := 1; r <= rounds; r++ {
					slots.Set(p, me, uint64(me*1000+r))
					p.Barrier(bar)
				}
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			rep := sys.CrashReport()
			if rep == nil {
				t.Fatal("no crash report: the injected crash never fired")
			}
			if len(rep.Nodes) != 1 || rep.Nodes[0] != 1 {
				t.Errorf("report.Nodes = %v, want [1]", rep.Nodes)
			}
			var buf [8]byte
			for _, n := range []int{0, 2, 3} {
				sys.ReadFinalAt(n, slots.Slice(n, n+1), buf[:])
				if got, want := leU64(buf[:]), uint64(n*1000+rounds); got != want {
					t.Errorf("survivor %d final slot = %d, want %d", n, got, want)
				}
			}
		})
	}
}

// TestHeartbeatStatsInvariance checks that an idle heartbeat monitor is
// invisible to the simulated machine: liveness traffic lives below the
// cost model, so a fault-free heartbeat-enabled run reports statistics and
// a cycle clock byte-identical to a monitor-less one.
func TestHeartbeatStatsInvariance(t *testing.T) {
	for _, scheme := range []string{"rt", "vm"} {
		t.Run(scheme, func(t *testing.T) {
			clean, cleanCycles := barrierWorkload(t, midway.Config{Nodes: 4, Scheme: scheme})
			beat, beatCycles := barrierWorkload(t, midway.Config{
				Nodes: 4, Scheme: scheme, Heartbeat: 2 * time.Millisecond,
			})
			if clean != beat {
				t.Errorf("stats differ under heartbeats:\nclean: %+v\nbeat:  %+v", clean, beat)
			}
			if cleanCycles != beatCycles {
				t.Errorf("execution cycles differ: clean %d, heartbeat %d", cleanCycles, beatCycles)
			}
		})
	}
}

// TestReliableGiveUpTCP partitions a two-node loopback-TCP system (every
// message delayed far past the retransmission budget) and checks the
// reliability layer gives up, the diagnostic names the unreachable peer,
// and the failure surfaces through both System.Run and System.Err.
func TestReliableGiveUpTCP(t *testing.T) {
	sys, err := midway.NewSystem(midway.Config{
		Nodes:        2,
		Scheme:       "rt",
		UseTCP:       true,
		FaultSpec:    "delay=1s,seed=1",
		ReliableSpec: "initial=2ms,max=8ms,giveup=6",
	})
	if err != nil {
		t.Fatal(err)
	}
	slots := sys.AllocU64("slots", 2, 8)
	bar := sys.NewBarrier("round", slots.Range())
	err = sys.Run(func(p *midway.Proc) {
		slots.Set(p, p.ID(), 1)
		p.Barrier(bar)
	})
	if err == nil {
		t.Fatal("run succeeded across a partition that outlives the retransmission budget")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("run error %q does not carry the give-up diagnostic", err)
	}
	if sys.Err() == nil {
		t.Error("System.Err() lost the transport failure")
	}
}

// TestCloseReleasesRun pins the operator-shutdown path: closing the system
// while Run is live must release application goroutines parked on protocol
// replies (a barrier whose peer never arrives) and surface ErrShutdown,
// not strand them on a dead transport.  This is the SIGINT path in
// cmd/midway-server.
func TestCloseReleasesRun(t *testing.T) {
	sys, err := midway.NewSystem(midway.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	slots := sys.AllocU64("slots", 2, 8)
	bar := sys.NewBarrier("b", slots.Range())
	gate := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Run(func(p *midway.Proc) {
			if p.ID() == 0 {
				p.Barrier(bar) // parks: proc 1 never enters
				return
			}
			<-gate
		})
	}()
	time.Sleep(20 * time.Millisecond) // let proc 0 park in the barrier
	sys.Close()
	close(gate)
	select {
	case err := <-done:
		if !errors.Is(err, midway.ErrShutdown) {
			t.Fatalf("Run returned %v, want ErrShutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not unwind after Close")
	}
}

// TestCloseAfterRunIsClean pins the other half of Close's contract: after a
// completed run it must not retroactively fail the system.
func TestCloseAfterRunIsClean(t *testing.T) {
	sys, err := midway.NewSystem(midway.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	slots := sys.AllocU64("slots", 2, 8)
	bar := sys.NewBarrier("b", slots.Range())
	if err := sys.Run(func(p *midway.Proc) {
		slots.Set(p, p.ID(), uint64(p.ID()))
		p.Barrier(bar)
	}); err != nil {
		t.Fatal(err)
	}
	sys.Close()
	if err := sys.Err(); err != nil {
		t.Fatalf("Close after a completed run failed the system: %v", err)
	}
}
