package midway_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"midway"
	"midway/internal/bench"
	"midway/internal/stats"
)

// chaosWorkload is the shared oracle workload for the chaos tests: a
// lock-guarded counter plus a barrier-exchanged slot array, verified on
// every node each round.  It returns node 0's total counters and the
// simulated execution time for invariance checks.
func chaosWorkload(t *testing.T, cfg midway.Config) (stats.Snapshot, uint64) {
	t.Helper()
	const rounds = 4
	nodes := cfg.Nodes
	sys, err := midway.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counter := sys.MustAlloc("counter", 8, 8)
	slots := sys.AllocU64("slots", nodes, 8)
	lock := sys.NewLock("counter", midway.RangeAt(counter, 8))
	bar := sys.NewBarrier("round", slots.Range())
	parts := make([][]midway.Range, nodes)
	for i := range parts {
		parts[i] = []midway.Range{slots.Slice(i, i+1)}
	}
	sys.SetBarrierParts(bar, parts)

	wantCounter := uint64(rounds * nodes * (nodes + 1) / 2)
	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		for r := 1; r <= rounds; r++ {
			p.Acquire(lock)
			p.WriteU64(counter, p.ReadU64(counter)+uint64(me+1))
			p.Release(lock)

			slots.Set(p, me, uint64(me*1000+r))
			p.Barrier(bar)
			for j := 0; j < nodes; j++ {
				if got := slots.Get(p, j); got != uint64(j*1000+r) {
					panic(fmt.Sprintf("node %d round %d: slot %d = %d", me, r, j, got))
				}
			}
			p.Barrier(bar)
		}
		p.AcquireShared(lock)
		if got := p.ReadU64(counter); got != wantCounter {
			panic(fmt.Sprintf("node %d: counter = %d, want %d", me, got, wantCounter))
		}
		p.Release(lock)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ReadFinalU64(counter); got != wantCounter {
		t.Fatalf("final counter = %d, want %d", got, wantCounter)
	}
	return sys.TotalStats(), sys.ExecutionCycles()
}

// TestChaosMatrix runs the oracle workload for every registered scheme at
// 2 and 4 processors under deterministic drop/duplicate/reorder/delay
// injection at several seeds.  The reliable delivery layer must hide every
// fault: all runs verify against the oracle.  Afterwards, no goroutines
// may be left behind by the injection or retransmission machinery.
func TestChaosMatrix(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, scheme := range midway.SchemeNames() {
		if scheme == "none" {
			continue // standalone is single-node only
		}
		for _, nodes := range []int{2, 4} {
			for _, seed := range []int64{1, 7, 42} {
				spec := fmt.Sprintf("drop=0.05,dup=0.02,reorder=0.1,delay=200us,seed=%d", seed)
				t.Run(fmt.Sprintf("%s/%dp/seed%d", scheme, nodes, seed), func(t *testing.T) {
					chaosWorkload(t, midway.Config{Nodes: nodes, Scheme: scheme, FaultSpec: spec})
				})
			}
		}
	}
	// Delayed deliveries and retransmit loops must all have exited with
	// their networks; give stragglers a moment to unwind.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak: %d before, %d after\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}
}

// barrierWorkload is a barrier-structured (and therefore deterministic)
// workload: each node publishes into its own slot and reads everyone
// else's after the barrier, as the paper's applications do.  Unlike the
// lock-contended chaosWorkload, its protocol decisions do not depend on
// real-time message arrival order, so its statistics and simulated clock
// are exactly reproducible run to run.
func barrierWorkload(t *testing.T, cfg midway.Config) (stats.Snapshot, uint64) {
	t.Helper()
	const rounds = 5
	nodes := cfg.Nodes
	sys, err := midway.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slots := sys.AllocU64("slots", nodes, 8)
	bar := sys.NewBarrier("round", slots.Range())
	parts := make([][]midway.Range, nodes)
	for i := range parts {
		parts[i] = []midway.Range{slots.Slice(i, i+1)}
	}
	sys.SetBarrierParts(bar, parts)
	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		for r := 1; r <= rounds; r++ {
			slots.Set(p, me, uint64(me*1000+r))
			p.Barrier(bar)
			for j := 0; j < nodes; j++ {
				if got := slots.Get(p, j); got != uint64(j*1000+r) {
					panic(fmt.Sprintf("node %d round %d: slot %d = %d", me, r, j, got))
				}
			}
			p.Barrier(bar)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys.TotalStats(), sys.ExecutionCycles()
}

// TestChaosApps runs every benchmark application at 2 and 4 processors
// under fault injection; each app verifies its result against its
// sequential oracle inside RunApp.
func TestChaosApps(t *testing.T) {
	const spec = "drop=0.05,dup=0.02,reorder=0.1,seed=5"
	for _, app := range bench.AppNames {
		for _, nodes := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/%dp", app, nodes), func(t *testing.T) {
				cfg := midway.Config{Nodes: nodes, Strategy: midway.RT, FaultSpec: spec}
				if _, err := bench.RunApp(app, cfg, bench.ScaleSmall); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestChaosStatsInvariance checks that fault injection is invisible to the
// simulated machine: message counts, transfer bytes and the cycle clock of
// a faulted run are identical to the fault-free run, because retransmits,
// duplicates and ACKs all live below the cost model.  The workload is
// barrier-structured, so its protocol decisions — unlike a contended
// lock's grant order — do not depend on real-time arrival order.
func TestChaosStatsInvariance(t *testing.T) {
	for _, scheme := range []string{"rt", "vm"} {
		t.Run(scheme, func(t *testing.T) {
			clean, cleanCycles := barrierWorkload(t, midway.Config{Nodes: 4, Scheme: scheme})
			// The reliable connection copies payloads synchronously, so this
			// arm sends through recycled pooled encoder buffers; the faulted
			// arm's injection layer retains payload references and therefore
			// falls back to owned buffers.  Equality across all three pins
			// both the fault machinery and the pooled path.
			reliable, reliableCycles := barrierWorkload(t, midway.Config{Nodes: 4, Scheme: scheme, Reliable: true})
			faulted, faultedCycles := barrierWorkload(t, midway.Config{
				Nodes: 4, Scheme: scheme,
				FaultSpec: "drop=0.1,dup=0.05,reorder=0.2,delay=300us,seed=9",
			})
			if clean != reliable {
				t.Errorf("stats differ under reliable layer:\nplain:    %+v\nreliable: %+v", clean, reliable)
			}
			if clean != faulted {
				t.Errorf("stats differ under faults:\nclean:   %+v\nfaulted: %+v", clean, faulted)
			}
			if cleanCycles != reliableCycles || cleanCycles != faultedCycles {
				t.Errorf("execution cycles differ: clean %d, reliable %d, faulted %d",
					cleanCycles, reliableCycles, faultedCycles)
			}
		})
	}
}

// TestChaosDeterminism checks that two runs at the same seed make the same
// injection decisions end to end (same stats, same simulated time), so a
// failing chaos run can be replayed exactly.
func TestChaosDeterminism(t *testing.T) {
	const spec = "drop=0.1,dup=0.05,reorder=0.2,seed=13"
	s1, c1 := barrierWorkload(t, midway.Config{Nodes: 4, Scheme: "rt", FaultSpec: spec})
	s2, c2 := barrierWorkload(t, midway.Config{Nodes: 4, Scheme: "rt", FaultSpec: spec})
	if s1 != s2 || c1 != c2 {
		t.Errorf("same seed diverged: %+v/%d vs %+v/%d", s1, c1, s2, c2)
	}
}
