// Package vmem simulates the virtual-memory interface a VM-DSM relies on:
// a per-node page table with protection bits, write faults on stores to
// read-only pages, and twin management.
//
// Midway's VM-DSM uses Mach's external pager to receive write-fault
// notifications.  Initially all shared pages are mapped read-only and
// marked clean; the first store to a page faults, the runtime saves a copy
// of the page (its twin), marks it dirty and grants write access.
// Subsequent writes proceed at full speed.  This package reproduces that
// state machine in software: the DSM write path asks the table whether the
// target pages are writable, and the table reports "faults" that the
// strategy layer turns into cost and statistics charges.
package vmem

import (
	"fmt"
	"sync"

	"midway/internal/memory"
)

// PageShift is log2 of the page size.  The paper's DECstations use 4 KB
// pages.
const PageShift = 12

// PageSize is the virtual memory page size in bytes.
const PageSize = 1 << PageShift

// WordsPerPage is the number of diff-granularity words in a page.
const WordsPerPage = PageSize / 4

// Prot is a page protection value.
type Prot uint8

const (
	// ReadOnly pages trap the next store.
	ReadOnly Prot = iota
	// ReadWrite pages absorb stores silently.
	ReadWrite
)

// String returns "ro" or "rw".
func (p Prot) String() string {
	if p == ReadWrite {
		return "rw"
	}
	return "ro"
}

// PageIndex returns the global page index for an address.
func PageIndex(a memory.Addr) int { return int(uint32(a) >> PageShift) }

// PageBase returns the first address of the page with the given index.
func PageBase(idx int) memory.Addr { return memory.Addr(uint32(idx) << PageShift) }

// PageRange returns the address range covered by the page.
func PageRange(idx int) memory.Range {
	return memory.Range{Addr: PageBase(idx), Size: PageSize}
}

// PagesIn returns the inclusive page index bounds covering the range.
func PagesIn(rg memory.Range) (first, last int) {
	first = PageIndex(rg.Addr)
	last = PageIndex(rg.End() - 1)
	return first, last
}

// page holds the VM state of one shared page.
type page struct {
	prot  Prot
	dirty bool
	twin  []byte
}

// Table is one node's simulated page table over the shared portions of the
// address space.  Private regions are not managed: their pages never fault,
// matching Midway's arrangement in which only the shared segment is mapped
// through the external pager.
//
// Table methods are safe for concurrent use by the application write path
// and the protocol handler's collection path.
type Table struct {
	inst *memory.Instance

	mu    sync.Mutex
	pages map[int]*page
}

// NewTable returns a page table over the node's memory instance.  All
// shared pages start read-only and clean.
func NewTable(inst *memory.Instance) *Table {
	return &Table{inst: inst, pages: make(map[int]*page)}
}

// pageState returns (creating if needed) the state record for a page.
// Caller holds t.mu.
func (t *Table) pageState(idx int) *page {
	p := t.pages[idx]
	if p == nil {
		p = &page{prot: ReadOnly}
		t.pages[idx] = p
	}
	return p
}

// regionForPage returns the shared region containing the page, or nil if
// the page belongs to a private or unmapped region.
func (t *Table) regionForPage(idx int) *memory.Region {
	r := t.inst.Layout().RegionFor(PageBase(idx))
	if r == nil || r.Class != memory.Shared {
		return nil
	}
	return r
}

// EnsureWritable prepares every shared page overlapping the scalar or area
// store [a, a+size) to accept the write, fielding a write fault (twin
// creation, dirty marking, protection upgrade) for each page that was
// read-only.  It returns the number of faults taken.  Stores to private
// pages never fault.
func (t *Table) EnsureWritable(a memory.Addr, size uint32) int {
	if size == 0 {
		return 0
	}
	first, last := PagesIn(memory.Range{Addr: a, Size: size})
	faults := 0
	t.mu.Lock()
	defer t.mu.Unlock()
	for idx := first; idx <= last; idx++ {
		r := t.regionForPage(idx)
		if r == nil {
			continue
		}
		p := t.pageState(idx)
		if p.prot == ReadWrite {
			continue
		}
		// Write fault: twin the page, mark dirty, grant write access.
		p.twin = t.copyPage(idx, r)
		p.dirty = true
		p.prot = ReadWrite
		faults++
	}
	return faults
}

// copyPage returns a copy of the page's current contents.  Caller holds
// t.mu.
func (t *Table) copyPage(idx int, r *memory.Region) []byte {
	d := t.inst.Data(r)
	off := uint32(PageBase(idx) - r.Base)
	tw := make([]byte, PageSize)
	copy(tw, d[off:off+PageSize])
	return tw
}

// DirtyPagesIn returns the indices of dirty pages overlapping the range,
// in ascending order.
func (t *Table) DirtyPagesIn(rg memory.Range) []int {
	if rg.Size == 0 {
		return nil
	}
	first, last := PagesIn(rg)
	var out []int
	t.mu.Lock()
	defer t.mu.Unlock()
	for idx := first; idx <= last; idx++ {
		if p := t.pages[idx]; p != nil && p.dirty {
			out = append(out, idx)
		}
	}
	return out
}

// Snapshot returns copies of the page's current contents and its twin.  It
// panics if the page is not dirty (no twin exists).
func (t *Table) Snapshot(idx int) (cur, twin []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.pages[idx]
	if p == nil || !p.dirty {
		panic(fmt.Sprintf("vmem: snapshot of clean page %d", idx))
	}
	r := t.regionForPage(idx)
	if r == nil {
		panic(fmt.Sprintf("vmem: snapshot of unmanaged page %d", idx))
	}
	return t.copyPage(idx, r), p.twin
}

// Clean marks the page clean after its modifications have been shipped:
// the twin is deallocated and the page write-protected so the next store
// faults again.  It is a no-op if the page is already clean.  It reports
// whether a protection call was made.
func (t *Table) Clean(idx int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.pages[idx]
	if p == nil || !p.dirty {
		return false
	}
	p.twin = nil
	p.dirty = false
	p.prot = ReadOnly
	return true
}

// IsDirty reports whether the page currently has unshipped modifications.
func (t *Table) IsDirty(idx int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.pages[idx]
	return p != nil && p.dirty
}

// Prot returns the page's current protection.
func (t *Table) Prot(idx int) Prot {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.pages[idx]
	if p == nil {
		return ReadOnly
	}
	return p.prot
}

// ApplyToTwin copies incoming update data into the page's twin, if the page
// is currently dirty.  Applying a remote update to the twin as well as the
// page ensures the update is not later mistaken for a local modification
// when the page is diffed.  It returns the number of twin bytes written.
func (t *Table) ApplyToTwin(a memory.Addr, data []byte) int {
	if len(data) == 0 {
		return 0
	}
	written := 0
	t.mu.Lock()
	defer t.mu.Unlock()
	first, last := PagesIn(memory.Range{Addr: a, Size: uint32(len(data))})
	for idx := first; idx <= last; idx++ {
		p := t.pages[idx]
		if p == nil || !p.dirty {
			continue
		}
		pr := PageRange(idx)
		lo := max(a, pr.Addr)
		hi := min(a+memory.Addr(len(data)), pr.End())
		n := copy(p.twin[lo-pr.Addr:hi-pr.Addr], data[lo-a:hi-a])
		written += n
	}
	return written
}

// DirtyPageCount returns the number of currently dirty pages (twins held),
// used by tests and memory accounting.
func (t *Table) DirtyPageCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, p := range t.pages {
		if p.dirty {
			n++
		}
	}
	return n
}
