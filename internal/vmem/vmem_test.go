package vmem

import (
	"testing"

	"midway/internal/memory"
)

// setup maps one shared and one private allocation and returns the table.
func setup(t *testing.T) (*memory.Layout, *memory.Instance, *Table, memory.Addr, memory.Addr) {
	t.Helper()
	l := memory.NewLayout(16)
	shared, err := l.Alloc("s", 4*PageSize, memory.Shared, 3)
	if err != nil {
		t.Fatal(err)
	}
	private, err := l.Alloc("p", PageSize, memory.Private, 0)
	if err != nil {
		t.Fatal(err)
	}
	inst := memory.NewInstance(l)
	return l, inst, NewTable(inst), shared, private
}

func TestPageIndexing(t *testing.T) {
	if PageIndex(0) != 0 || PageIndex(PageSize) != 1 || PageIndex(PageSize-1) != 0 {
		t.Error("PageIndex boundaries wrong")
	}
	if PageBase(3) != 3*PageSize {
		t.Error("PageBase wrong")
	}
	first, last := PagesIn(memory.Range{Addr: PageSize - 4, Size: 8})
	if first != 0 || last != 1 {
		t.Errorf("PagesIn straddle = %d,%d", first, last)
	}
}

func TestFaultStateMachine(t *testing.T) {
	_, inst, tbl, shared, _ := setup(t)
	pg := PageIndex(shared)

	if tbl.Prot(pg) != ReadOnly {
		t.Fatal("page not initially read-only")
	}
	// First store faults once.
	if got := tbl.EnsureWritable(shared, 8); got != 1 {
		t.Fatalf("first store took %d faults, want 1", got)
	}
	if tbl.Prot(pg) != ReadWrite || !tbl.IsDirty(pg) {
		t.Error("page not writable+dirty after fault")
	}
	// Subsequent stores are free.
	if got := tbl.EnsureWritable(shared+16, 8); got != 0 {
		t.Errorf("second store took %d faults, want 0", got)
	}
	// The twin holds pre-store contents.
	inst.WriteU64(shared, 0xFFFF)
	cur, twin := tbl.Snapshot(pg)
	if cur[0] == twin[0] {
		t.Error("twin tracked the store; it must hold pre-store contents")
	}
}

func TestFaultStraddlesPages(t *testing.T) {
	_, _, tbl, shared, _ := setup(t)
	// An area store spanning two clean pages takes two faults.
	if got := tbl.EnsureWritable(shared+memory.Addr(PageSize-8), 16); got != 2 {
		t.Errorf("straddling store took %d faults, want 2", got)
	}
}

func TestPrivateNeverFaults(t *testing.T) {
	_, _, tbl, _, private := setup(t)
	if got := tbl.EnsureWritable(private, 8); got != 0 {
		t.Errorf("private store took %d faults", got)
	}
}

func TestDirtyPagesIn(t *testing.T) {
	_, _, tbl, shared, _ := setup(t)
	tbl.EnsureWritable(shared, 8)
	tbl.EnsureWritable(shared+memory.Addr(2*PageSize), 8)

	dirty := tbl.DirtyPagesIn(memory.Range{Addr: shared, Size: 4 * PageSize})
	if len(dirty) != 2 {
		t.Fatalf("dirty pages = %v, want 2 entries", dirty)
	}
	if dirty[0] != PageIndex(shared) || dirty[1] != PageIndex(shared)+2 {
		t.Errorf("dirty pages = %v", dirty)
	}
	// A range over only the clean middle page sees nothing.
	if got := tbl.DirtyPagesIn(memory.Range{Addr: shared + memory.Addr(PageSize), Size: PageSize}); len(got) != 0 {
		t.Errorf("clean page reported dirty: %v", got)
	}
}

func TestCleanResetsProtection(t *testing.T) {
	_, _, tbl, shared, _ := setup(t)
	pg := PageIndex(shared)
	tbl.EnsureWritable(shared, 8)
	if !tbl.Clean(pg) {
		t.Fatal("Clean on dirty page reported no protection call")
	}
	if tbl.Prot(pg) != ReadOnly || tbl.IsDirty(pg) {
		t.Error("page not clean+protected after Clean")
	}
	if tbl.DirtyPageCount() != 0 {
		t.Error("twin not released")
	}
	// Cleaning again is a no-op.
	if tbl.Clean(pg) {
		t.Error("Clean on clean page reported a protection call")
	}
	// The next store faults again (and re-twins).
	if got := tbl.EnsureWritable(shared, 8); got != 1 {
		t.Errorf("store after clean took %d faults, want 1", got)
	}
}

func TestSnapshotCleanPanics(t *testing.T) {
	_, _, tbl, shared, _ := setup(t)
	defer func() {
		if recover() == nil {
			t.Error("Snapshot of clean page did not panic")
		}
	}()
	tbl.Snapshot(PageIndex(shared))
}

func TestApplyToTwin(t *testing.T) {
	_, inst, tbl, shared, _ := setup(t)
	pg := PageIndex(shared)
	tbl.EnsureWritable(shared, 8)
	inst.WriteU64(shared, 1) // local modification

	// A remote update to a different address on the dirty page must land
	// in the twin so it is not mistaken for a local modification.
	update := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	if got := tbl.ApplyToTwin(shared+16, update); got != 8 {
		t.Fatalf("ApplyToTwin wrote %d bytes, want 8", got)
	}
	inst.WriteBytes(memory.Range{Addr: shared + 16, Size: 8}, update)

	cur, twin := tbl.Snapshot(pg)
	// Offset 16 now matches between page and twin (remote data), while
	// offset 0 differs (local modification).
	for i := 16; i < 24; i++ {
		if cur[i] != twin[i] {
			t.Error("remote update not reflected in twin")
			break
		}
	}
	if cur[0] == twin[0] {
		t.Error("local modification leaked into twin")
	}

	// Updates to clean pages do not touch any twin.
	if got := tbl.ApplyToTwin(shared+memory.Addr(PageSize), update); got != 0 {
		t.Errorf("ApplyToTwin on clean page wrote %d bytes", got)
	}
}

func TestApplyToTwinSpanningPages(t *testing.T) {
	_, _, tbl, shared, _ := setup(t)
	tbl.EnsureWritable(shared, 8)                       // page 0 dirty
	tbl.EnsureWritable(shared+memory.Addr(PageSize), 8) // page 1 dirty
	data := make([]byte, 64)
	for i := range data {
		data[i] = 7
	}
	got := tbl.ApplyToTwin(shared+memory.Addr(PageSize-32), data)
	if got != 64 {
		t.Errorf("spanning ApplyToTwin wrote %d bytes, want 64", got)
	}
}
