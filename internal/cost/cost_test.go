package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMicrosRoundTrip(t *testing.T) {
	cases := []struct {
		us     float64
		cycles Cycles
	}{
		{0, 0},
		{1, 25},
		{122, 3050},
		{1200, 30000},
		{0.36, 9},
	}
	for _, c := range cases {
		if got := Micros(c.us); got != c.cycles {
			t.Errorf("Micros(%g) = %d, want %d", c.us, got, c.cycles)
		}
	}
}

func TestSecondsMillis(t *testing.T) {
	// One simulated second is 25 million cycles at 25 MHz.
	if got := Seconds(25_000_000); got != 1.0 {
		t.Errorf("Seconds(25e6) = %g, want 1", got)
	}
	if got := Millis(25_000); got != 1.0 {
		t.Errorf("Millis(25000) = %g, want 1", got)
	}
}

func TestDefaultMatchesPaperTable1(t *testing.T) {
	m := Default()
	cases := []struct {
		name string
		got  Cycles
		want Cycles
	}{
		{"word dirtybit set", m.DirtybitSetWord, 9},
		{"doubleword dirtybit set", m.DirtybitSetDouble, 9},
		{"private dirtybit set", m.DirtybitSetPrivate, 6},
		{"clean dirtybit read", m.DirtybitReadClean, 5},
		{"dirty dirtybit read", m.DirtybitReadDirty, 4},
		{"dirtybit update", m.DirtybitUpdate, 2},
		{"page write fault", m.PageWriteFault, 30000},
		{"page diff clean", m.PageDiffClean, 6500},
		{"page diff worst", m.PageDiffWorst, 46750},
		{"protect rw", m.PageProtectRW, 3125},
		{"protect ro", m.PageProtectRO, 3175},
		{"copy cold per KB", m.CopyColdPerKB, 2100},
		{"copy warm per KB", m.CopyWarmPerKB, 650},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d cycles, want %d", c.name, c.got, c.want)
		}
	}
}

func TestFastException(t *testing.T) {
	m := FastException()
	if m.PageWriteFault != Micros(122) {
		t.Errorf("fast exception fault = %d, want %d", m.PageWriteFault, Micros(122))
	}
	// All other fields unchanged.
	d := Default()
	m.PageWriteFault = d.PageWriteFault
	if m != d {
		t.Error("FastException changed fields other than the fault cost")
	}
}

func TestWithFaultMicrosDoesNotMutate(t *testing.T) {
	m := Default()
	m2 := m.WithFaultMicros(400)
	if m.PageWriteFault != Micros(1200) {
		t.Error("WithFaultMicros mutated the receiver")
	}
	if m2.PageWriteFault != Micros(400) {
		t.Errorf("WithFaultMicros = %d, want %d", m2.PageWriteFault, Micros(400))
	}
}

func TestDiffCostEndpoints(t *testing.T) {
	m := Default()
	const words = 1024
	if got := m.DiffCost(0, words); got != m.PageDiffClean {
		t.Errorf("DiffCost(0) = %d, want clean %d", got, m.PageDiffClean)
	}
	if got := m.DiffCost(1, words); got != m.PageDiffClean {
		t.Errorf("DiffCost(1) = %d, want clean %d", got, m.PageDiffClean)
	}
	if got := m.DiffCost(words/2, words); got != m.PageDiffWorst {
		t.Errorf("DiffCost(max runs) = %d, want worst %d", got, m.PageDiffWorst)
	}
	if got := m.DiffCost(words, words); got != m.PageDiffWorst {
		t.Errorf("DiffCost(beyond max) = %d, want worst %d", got, m.PageDiffWorst)
	}
}

func TestDiffCostMonotonic(t *testing.T) {
	m := Default()
	const words = 1024
	prev := Cycles(0)
	for runs := 0; runs <= words/2; runs++ {
		c := m.DiffCost(runs, words)
		if c < prev {
			t.Fatalf("DiffCost not monotonic at %d runs: %d < %d", runs, c, prev)
		}
		prev = c
	}
}

func TestDiffCostBounded(t *testing.T) {
	m := Default()
	f := func(runs uint16, words uint16) bool {
		w := int(words)%4096 + 2
		c := m.DiffCost(int(runs), w)
		return c >= m.PageDiffClean && c <= m.PageDiffWorst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCopyCost(t *testing.T) {
	if got := CopyCost(650, 1024); got != 650 {
		t.Errorf("CopyCost(650, 1KB) = %d, want 650", got)
	}
	if got := CopyCost(650, 512); got != 325 {
		t.Errorf("CopyCost(650, 512B) = %d, want 325", got)
	}
	if got := CopyCost(650, 0); got != 0 {
		t.Errorf("CopyCost(650, 0) = %d, want 0", got)
	}
}

func TestNetworkParams(t *testing.T) {
	p := DefaultNetwork()
	// A zero-byte message costs exactly the latency.
	if got := p.MessageCycles(0); got != p.LatencyCycles {
		t.Errorf("MessageCycles(0) = %d, want %d", got, p.LatencyCycles)
	}
	// One KB adds one CyclesPerKB.
	if got := p.MessageCycles(1024); got != p.LatencyCycles+p.CyclesPerKB {
		t.Errorf("MessageCycles(1024) = %d, want %d", got, p.LatencyCycles+p.CyclesPerKB)
	}
	// 140 Mbit/s is about 58.5 µs per KB.
	wantPerKB := Micros(58.5)
	if math.Abs(float64(p.CyclesPerKB)-float64(wantPerKB)) > 1 {
		t.Errorf("CyclesPerKB = %d, want about %d", p.CyclesPerKB, wantPerKB)
	}
}

func TestMessageCyclesMonotonicInSize(t *testing.T) {
	p := DefaultNetwork()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return p.MessageCycles(x) <= p.MessageCycles(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
