// Package cost models the execution cost of the primitive operations that
// make up write trapping and write collection in a software DSM.
//
// The paper (Zekauskas, Sawdon & Bershad, OSDI '94) computes its headline
// tables by measuring each primitive operation on a 25 MHz MIPS R3000
// running Mach 3.0 (their Table 1) and multiplying by per-application
// invocation counts (their Table 2).  This package holds those per-primitive
// constants and converts between cycles and microseconds, so that the rest
// of the system can charge costs onto a simulated cycle clock as the real
// protocol executes.
//
// All times are expressed in processor cycles.  The reference processor runs
// at 25 MHz, so one microsecond is 25 cycles.  A Model is a plain value and
// may be copied freely; the zero value is not useful — start from Default or
// FastException.
package cost

// CyclesPerMicrosecond is the clock rate of the reference processor
// (25 MHz MIPS R3000), used to convert between the paper's microsecond
// figures and simulated cycles.
const CyclesPerMicrosecond = 25

// Cycles is a quantity of simulated processor cycles.
type Cycles = uint64

// Micros converts microseconds to cycles on the reference processor.
func Micros(us float64) Cycles {
	return Cycles(us * CyclesPerMicrosecond)
}

// Seconds converts a cycle count to seconds on the reference processor.
func Seconds(c Cycles) float64 {
	return float64(c) / (CyclesPerMicrosecond * 1e6)
}

// Millis converts a cycle count to milliseconds on the reference processor.
func Millis(c Cycles) float64 {
	return float64(c) / (CyclesPerMicrosecond * 1e3)
}

// Model holds the cost, in cycles, of every primitive operation charged by
// the write trapping and write collection paths of both DSM configurations.
// The defaults reproduce the paper's Table 1.
type Model struct {
	// RT-DSM write trapping.

	// DirtybitSetWord is the cost of the inline sequence plus the region
	// template for a word store to shared memory (9 cycles, 0.360 µs).
	DirtybitSetWord Cycles
	// DirtybitSetDouble is the cost for a doubleword store (9 cycles).
	DirtybitSetDouble Cycles
	// DirtybitSetPrivate is the penalty for a store the compiler
	// misclassified as shared but that actually hit private memory: the
	// private region's template simply returns (6 cycles, 0.240 µs).
	DirtybitSetPrivate Cycles
	// DirtybitSetArea is the per-call cost of the out-of-line "area" entry
	// point used for unaligned stores and structure assignments.  The paper
	// describes this path as rarely invoked and significantly more
	// expensive (stack frame, register saves, call to a higher-level
	// routine); we charge a measured-plausible constant plus a per-line
	// DirtybitSetWord charge applied by the caller.
	DirtybitSetArea Cycles

	// RT-DSM write collection.

	// DirtybitReadClean is the cost of scanning one dirtybit that does not
	// require its line to be sent (5 cycles, 0.217 µs).
	DirtybitReadClean Cycles
	// DirtybitReadDirty is the cost of scanning one dirtybit whose line
	// must be sent (4 cycles, 0.187 µs).
	DirtybitReadDirty Cycles
	// DirtybitUpdate is the cost of storing a new timestamp into one
	// dirtybit at the requesting processor (2 cycles, 0.067 µs).
	DirtybitUpdate Cycles

	// VM-DSM write trapping.

	// PageWriteFault is the full cost of fielding a write fault: exception
	// delivery, copying the 4 KB page to its twin, and the protection call
	// to re-enable writes (1200 µs under the Mach external pager).  This is
	// the knob swept by the paper's Figures 3 and 4.
	PageWriteFault Cycles

	// VM-DSM write collection.

	// PageDiffClean is the cost of diffing one page when none (or all) of
	// the words changed (260 µs): a straight-line pass over page and twin.
	PageDiffClean Cycles
	// PageDiffWorst is the cost of diffing one page when every other word
	// changed (1870 µs), the worst case for the run-length encoder.  The
	// simulator interpolates between PageDiffClean and PageDiffWorst based
	// on the observed number of runs in the diff.
	PageDiffWorst Cycles
	// PageProtectRW is the cost of a protection call granting read-write
	// access (125 µs).
	PageProtectRW Cycles
	// PageProtectRO is the cost of a protection call revoking write access
	// (127 µs).
	PageProtectRO Cycles
	// CopyColdPerKB is the cost of copying 1 KB of data through a cold
	// cache (84 µs); used for twin creation accounting when the fault cost
	// is modeled separately.
	CopyColdPerKB Cycles
	// CopyWarmPerKB is the cost of copying 1 KB of data through a warm
	// cache (26 µs); used when applying incoming updates to pages and
	// twins.
	CopyWarmPerKB Cycles

	// Plain memory access, charged on every shared load and store so that
	// the standalone (uninstrumented) configuration also accumulates
	// simulated time.
	Load  Cycles
	Store Cycles
}

// Default returns the paper's Table 1 cost model: Mach 3.0 external-pager
// exception handling on a 25 MHz MIPS R3000 with 4 KB pages.
func Default() Model {
	return Model{
		DirtybitSetWord:    9,
		DirtybitSetDouble:  9,
		DirtybitSetPrivate: 6,
		DirtybitSetArea:    40,

		DirtybitReadClean: 5,
		DirtybitReadDirty: 4,
		DirtybitUpdate:    2,

		PageWriteFault: Micros(1200),

		PageDiffClean: Micros(260),
		PageDiffWorst: Micros(1870),
		PageProtectRW: Micros(125),
		PageProtectRO: Micros(127),
		CopyColdPerKB: Micros(84),
		CopyWarmPerKB: Micros(26),

		Load:  1,
		Store: 1,
	}
}

// FastException returns the Table 1 model with the page write fault cost
// replaced by the 122 µs figure the paper derives for Thekkath & Levy's fast
// exception path (18 µs exception delivery plus the unavoidable 4 KB twin
// copy).  This is the left endpoint of the Figure 3/4 sweeps.
func FastException() Model {
	m := Default()
	m.PageWriteFault = Micros(122)
	return m
}

// WithFaultMicros returns a copy of the model with the page write fault cost
// set to the given number of microseconds.  Figures 3 and 4 sweep this value
// between 122 µs and 1200 µs.
func (m Model) WithFaultMicros(us float64) Model {
	m.PageWriteFault = Micros(us)
	return m
}

// DiffCost returns the cost of diffing one page given the number of
// distinct runs the diff produced and the number of words per page.  A diff
// with zero or one run costs PageDiffClean (straight-line scan); the
// pathological alternating pattern, which produces wordsPerPage/2 runs,
// costs PageDiffWorst.  Costs for intermediate run counts are linearly
// interpolated, reflecting that the encoder's overhead grows with the
// number of run boundaries it must record.
func (m Model) DiffCost(runs, wordsPerPage int) Cycles {
	if runs <= 1 {
		return m.PageDiffClean
	}
	maxRuns := wordsPerPage / 2
	if runs >= maxRuns {
		return m.PageDiffWorst
	}
	span := float64(m.PageDiffWorst - m.PageDiffClean)
	frac := float64(runs-1) / float64(maxRuns-1)
	return m.PageDiffClean + Cycles(span*frac)
}

// CopyCost returns the cost of copying n bytes at the given per-KB rate.
// Partial kilobytes are charged proportionally.
func CopyCost(perKB Cycles, n int) Cycles {
	return Cycles(float64(perKB) * float64(n) / 1024)
}

// NetworkParams models the cluster interconnect: a 140 Mbit/s ForeRunner
// ASX-100 ATM switch accessed through a thin AAL3/4 layer.  Message time is
// Latency plus Size/Bandwidth, charged in cycles on the simulated clock.
type NetworkParams struct {
	// LatencyCycles is the fixed one-way cost of a message: protocol
	// processing on both ends plus wire latency.
	LatencyCycles Cycles
	// CyclesPerKB is the transmission cost per kilobyte of payload.
	CyclesPerKB Cycles
}

// DefaultNetwork returns network parameters for the paper's testbed:
// a one-way small-message cost of 500 µs through the user-level AAL3/4
// protocol stack, and 140 Mbit/s of bandwidth (≈ 58.5 µs per KB).
func DefaultNetwork() NetworkParams {
	return NetworkParams{
		LatencyCycles: Micros(500),
		CyclesPerKB:   Micros(58.5),
	}
}

// MessageCycles returns the simulated time for one message of n payload
// bytes to cross the network.
func (p NetworkParams) MessageCycles(n int) Cycles {
	return p.LatencyCycles + Cycles(float64(p.CyclesPerKB)*float64(n)/1024)
}
