package detect

import (
	"sort"

	"midway/internal/cost"
	"midway/internal/memory"
	"midway/internal/proto"
)

// combineEntries merges several incarnations' updates so that each address
// appears once, carrying the value of the most recent incarnation that
// wrote it — the §3.4 alternative to sending histories in their entirety.
// Entries must be in ascending incarnation order (as histories are kept).
// The result is stamped with the newest incarnation present.
//
// The returned cycles charge one warm-copy pass over the merged bytes,
// modelling the reply-buffer merge.
func combineEntries(entries []proto.HistoryEntry, m cost.Model) ([]proto.Update, cost.Cycles) {
	switch len(entries) {
	case 0:
		return nil, 0
	case 1:
		return entries[0].Updates, 0
	}

	// Paint spans in incarnation order; later entries overwrite earlier
	// ones.  Work over the bounding interval of all updates.
	type span struct {
		lo, hi uint32 // absolute addresses
		data   []byte
	}
	var spans []span
	lo, hi := ^uint32(0), uint32(0)
	newest := entries[len(entries)-1].Incarnation
	for _, e := range entries {
		for _, u := range e.Updates {
			s := span{lo: uint32(u.Addr), hi: uint32(u.Addr) + uint32(len(u.Data)), data: u.Data}
			if s.lo == s.hi {
				continue
			}
			spans = append(spans, s)
			if s.lo < lo {
				lo = s.lo
			}
			if s.hi > hi {
				hi = s.hi
			}
		}
	}
	if len(spans) == 0 {
		return nil, 0
	}

	// Dense painting over [lo, hi): histories are bounded by the binding
	// size (the full-data rule), so this buffer is small.
	buf := make([]byte, hi-lo)
	covered := make([]bool, hi-lo)
	var painted int
	for _, s := range spans {
		copy(buf[s.lo-lo:s.hi-lo], s.data)
		for i := s.lo - lo; i < s.hi-lo; i++ {
			if !covered[i] {
				covered[i] = true
				painted++
			}
		}
	}

	// Re-extract maximal covered runs as updates.
	var out []proto.Update
	i := uint32(0)
	n := uint32(len(buf))
	for i < n {
		for i < n && !covered[i] {
			i++
		}
		if i >= n {
			break
		}
		start := i
		for i < n && covered[i] {
			i++
		}
		out = append(out, proto.Update{
			Addr: memory.Addr(lo + start),
			TS:   int64(newest),
			Data: append([]byte(nil), buf[start:i]...),
		})
	}
	// Keep output deterministic (already in address order by construction).
	sort.Slice(out, func(a, b int) bool { return out[a].Addr < out[b].Addr })
	return out, cost.CopyCost(m.CopyWarmPerKB, painted)
}
