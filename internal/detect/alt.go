package detect

import (
	"fmt"

	"midway/internal/cost"
	"midway/internal/diff"
	"midway/internal/memory"
	"midway/internal/proto"
	"midway/internal/vmem"
)

// blastDetector implements the paper's simplest alternative (Section 3.5):
// no write detection at all.  Every transfer "blasts" all data bound to
// the synchronization object.  Writes are free, but sparse writers pay for
// shipping untouched data at every synchronization point — the redundancy
// the dirtybit history exists to eliminate.
type blastDetector struct {
	e Engine
}

func init() {
	Register("blast", func(e Engine, opt Options) Detector {
		return &blastDetector{e: e}
	})
	Register("twindiff", func(e Engine, opt Options) Detector {
		return &twinDetector{e: e, opt: opt}
	})
}

// blastLockState is the blast scheme's per-lock slot: the transfer count
// reported as the grant's incarnation.
type blastLockState struct {
	inc uint64
}

func blastStateOf(lk LockView) *blastLockState {
	if s, ok := lk.State().(*blastLockState); ok {
		return s
	}
	s := &blastLockState{}
	lk.SetState(s)
	return s
}

func (d *blastDetector) TrapWrite(memory.Addr, uint32, *memory.Region) {}

func (d *blastDetector) FillAcquire(lk LockView, req *proto.LockAcquire) {
	req.LastIncarnation = blastStateOf(lk).inc
}

func (d *blastDetector) CollectLock(lk LockView, req *proto.LockAcquire, exclusive bool) (*proto.LockGrant, cost.Cycles) {
	e := d.e
	t := e.Tick()
	s := blastStateOf(lk)
	if exclusive {
		s.inc++
	}
	ups := readBoundUpdates(e, lk.Binding(), int64(s.inc))
	cycles := cost.CopyCost(e.Cost().CopyWarmPerKB, int(RangesBytes(lk.Binding())))
	lk.ClearRebound()
	return &proto.LockGrant{
		Time:        t,
		Incarnation: s.inc,
		Base:        s.inc,
		Updates:     ups,
		Full:        true,
	}, cycles
}

func (d *blastDetector) ApplyLock(lk LockView, g *proto.LockGrant) cost.Cycles {
	e := d.e
	var cycles cost.Cycles
	for _, u := range g.Updates {
		e.Inst().WriteBytes(u.Range(), u.Data)
		cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, len(u.Data))
	}
	blastStateOf(lk).inc = g.Incarnation
	return cycles
}

func (d *blastDetector) CollectBarrier(b BarrierView) ([]proto.Update, cost.Cycles) {
	e := d.e
	if len(b.Binding()) == 0 {
		return nil, 0
	}
	// With no detection, a node cannot know which bound data it modified.
	// The program must declare each node's write partition with
	// SetBarrierParts; the node then blasts exactly its own part.
	part, declared := b.Parts(e.NodeID())
	if !declared {
		panic(fmt.Sprintf("detect: blast scheme requires SetBarrierParts for bound barrier %s", b.Name()))
	}
	ups := readBoundUpdates(e, part, int64(b.Epoch()+1))
	cycles := cost.CopyCost(e.Cost().CopyWarmPerKB, int(RangesBytes(part)))
	return ups, cycles
}

func (d *blastDetector) ApplyBarrier(b BarrierView, rel *proto.BarrierRelease) cost.Cycles {
	e := d.e
	var cycles cost.Cycles
	for _, u := range rel.Updates {
		e.Inst().WriteBytes(u.Range(), u.Data)
		cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, len(u.Data))
	}
	return cycles
}

func (d *blastDetector) NotifyRebind(LockView) {}

// twinDetector implements the paper's second alternative (Section 3.5):
// twinning and differencing without write detection.  Every shared datum
// bound to a synchronization object is twinned on the processor that
// writes it; at each synchronization point all bound data is compared
// against its twin, modified and unmodified alike.  Writes are free and
// only modified data is shipped, but collection cost is proportional to
// the amount of bound data rather than the amount of dirty data, and the
// twins double the storage requirement.  Incarnation histories are still
// required to propagate chains of updates, exactly as the paper notes.
type twinDetector struct {
	e   Engine
	opt Options
}

// twinLockState is the twindiff scheme's per-lock slot: incarnation
// history plus the bound-data snapshot.
type twinLockState struct {
	incState
	twin []byte
}

// twinBarrierState is the per-barrier snapshot.
type twinBarrierState struct {
	twin []byte
}

func twinLockStateOf(lk LockView) *twinLockState {
	if s, ok := lk.State().(*twinLockState); ok {
		return s
	}
	s := &twinLockState{}
	lk.SetState(s)
	return s
}

func twinBarrierStateOf(b BarrierView) *twinBarrierState {
	if s, ok := b.State().(*twinBarrierState); ok {
		return s
	}
	s := &twinBarrierState{}
	b.SetState(s)
	return s
}

func (d *twinDetector) TrapWrite(memory.Addr, uint32, *memory.Region) {}

// diffBound compares the current bound data against the twin (a zero
// buffer stands in when no twin exists yet, matching the all-zero initial
// contents of shared memory) and returns the modified spans as updates.
func (d *twinDetector) diffBound(binding []memory.Range, twin []byte, ts int64) ([]proto.Update, []byte, cost.Cycles) {
	e := d.e
	st := e.Stats()
	cur := concatBound(e, binding)
	if twin == nil {
		// First synchronization over this binding: the last-synchronized
		// state is the pristine pre-run image every node started from.
		twin = e.PristineBound(binding)
	}
	if len(twin) != len(cur) {
		panic(fmt.Sprintf("detect: twin size %d does not match bound data size %d", len(twin), len(cur)))
	}
	df := diff.Compute(cur, twin)

	// Cost: one diffing pass over the bound data (charged at the page
	// diff rate, interpolated by run count as for VM-DSM) plus twin
	// maintenance for the modified bytes.
	pages := (len(cur) + vmem.PageSize - 1) / vmem.PageSize
	var cycles cost.Cycles
	if pages > 0 {
		perPage := e.Cost().DiffCost(len(df.Runs)/pages+1, vmem.WordsPerPage)
		cycles = cost.Cycles(pages) * perPage
		cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, df.Bytes())
	}
	st.PagesDiffed.Add(uint64(pages))
	st.DiffRuns.Add(uint64(len(df.Runs)))
	st.BytesScanned.Add(uint64(len(cur)))
	st.DirtyBytes.Add(uint64(df.Bytes()))

	// Translate buffer-relative runs back to addresses.
	var ups []proto.Update
	for _, run := range df.Runs {
		off := run.Off
		// A run may straddle consecutive binding ranges in the
		// concatenated buffer; split it per range.
		rem := run.Data
		base := uint32(0)
		for _, rg := range binding {
			if len(rem) == 0 {
				break
			}
			if off >= base+rg.Size {
				base += rg.Size
				continue
			}
			inRange := min(uint32(len(rem)), base+rg.Size-off)
			ups = append(ups, proto.Update{
				Addr: rg.Addr + memory.Addr(off-base),
				TS:   ts,
				Data: rem[:inRange],
			})
			rem = rem[inRange:]
			off += inRange
			base += rg.Size
		}
	}
	return ups, cur, cycles
}

func (d *twinDetector) FillAcquire(lk LockView, req *proto.LockAcquire) {
	req.LastIncarnation = twinLockStateOf(lk).lastInc
}

func (d *twinDetector) CollectLock(lk LockView, req *proto.LockAcquire, exclusive bool) (*proto.LockGrant, cost.Cycles) {
	e := d.e
	t := e.Tick()
	binding := lk.Binding()
	s := twinLockStateOf(lk)
	boundBytes := RangesBytes(binding)

	if lk.Rebound() {
		// A rebinding invalidates the twin (NotifyRebind already dropped
		// it) and the history: ship full data.
		newInc := s.inc + 1
		s.inc = newInc
		s.history = nil
		s.baseInc = newInc
		s.lastInc = newInc
		lk.ClearRebound()
		s.twin = concatBound(e, binding)
		ups := readBoundUpdates(e, binding, int64(newInc))
		cycles := cost.CopyCost(e.Cost().CopyWarmPerKB, int(boundBytes))
		return &proto.LockGrant{
			Time:        t,
			Incarnation: newInc,
			Base:        newInc,
			Updates:     ups,
			Full:        true,
		}, cycles
	}

	// Shared and exclusive grants share the twinning machinery; every
	// exclusive transfer increments the incarnation, while a shared grant
	// advances it only when the diff found fresh modifications.
	ups, cur, cycles := d.diffBound(binding, s.twin, 0)
	s.twin = cur
	newInc := s.inc
	if exclusive {
		newInc++
	}
	if len(ups) > 0 {
		if !exclusive {
			newInc++
		}
		for i := range ups {
			ups[i].TS = int64(newInc)
		}
		s.history = append(s.history, proto.HistoryEntry{Incarnation: newInc, Updates: ups})
	}
	s.inc = newInc
	s.lastInc = newInc

	full := req.LastIncarnation < s.baseInc
	var entries []proto.HistoryEntry
	if !full {
		var total int
		entries, total = s.entriesAfter(req.LastIncarnation)
		if d.opt.CombineIncarnations && len(entries) > 1 {
			combined, c := combineEntries(entries, e.Cost())
			cycles += c
			g := &proto.LockGrant{
				Time:        t,
				Incarnation: newInc,
				Base:        s.baseInc,
				Updates:     combined,
			}
			s.trim(boundBytes)
			return g, cycles
		}
		if uint32(total) > boundBytes {
			full = true
		}
	}
	if full {
		fullUps := readBoundUpdates(e, binding, int64(newInc))
		cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, int(boundBytes))
		s.history = nil
		s.baseInc = newInc
		return &proto.LockGrant{
			Time:        t,
			Incarnation: newInc,
			Base:        newInc,
			Updates:     fullUps,
			Full:        true,
		}, cycles
	}
	g := &proto.LockGrant{
		Time:        t,
		Incarnation: newInc,
		Base:        s.baseInc,
		History:     entries,
	}
	s.trim(boundBytes)
	return g, cycles
}

func (d *twinDetector) ApplyLock(lk LockView, g *proto.LockGrant) cost.Cycles {
	e := d.e
	s := twinLockStateOf(lk)
	var cycles cost.Cycles
	if g.Full {
		for _, u := range g.Updates {
			e.Inst().WriteBytes(u.Range(), u.Data)
			cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, len(u.Data))
		}
		s.history = nil
		s.baseInc = g.Base
	} else {
		if len(g.Updates) > 0 { // combined incremental grant
			for _, u := range g.Updates {
				e.Inst().WriteBytes(u.Range(), u.Data)
				cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, len(u.Data))
			}
			s.history = append(s.history,
				proto.HistoryEntry{Incarnation: g.Incarnation, Updates: g.Updates})
		}
		for _, h := range g.History {
			for _, u := range h.Updates {
				e.Inst().WriteBytes(u.Range(), u.Data)
				cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, len(u.Data))
			}
		}
		s.history = append(s.history, g.History...)
		s.trim(RangesBytes(g.Binding))
	}
	// The local copy now matches the synchronized state: refresh the twin
	// so the next diff reports only genuinely local modifications.
	s.twin = concatBound(e, g.Binding)
	cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, len(s.twin))
	s.inc = g.Incarnation
	s.lastInc = g.Incarnation
	return cycles
}

func (d *twinDetector) CollectBarrier(b BarrierView) ([]proto.Update, cost.Cycles) {
	if len(b.Binding()) == 0 {
		return nil, 0
	}
	s := twinBarrierStateOf(b)
	ups, cur, cycles := d.diffBound(b.Binding(), s.twin, int64(b.Epoch()+1))
	s.twin = cur
	return ups, cycles
}

func (d *twinDetector) ApplyBarrier(b BarrierView, rel *proto.BarrierRelease) cost.Cycles {
	e := d.e
	var cycles cost.Cycles
	for _, u := range rel.Updates {
		e.Inst().WriteBytes(u.Range(), u.Data)
		cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, len(u.Data))
	}
	if len(b.Binding()) > 0 {
		s := twinBarrierStateOf(b)
		s.twin = concatBound(e, b.Binding())
		cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, len(s.twin))
	}
	return cycles
}

func (d *twinDetector) NotifyRebind(lk LockView) {
	// The old snapshot no longer matches the binding.
	twinLockStateOf(lk).twin = nil
}
