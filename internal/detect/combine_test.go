package detect

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"midway/internal/cost"
	"midway/internal/memory"
	"midway/internal/proto"
)

func TestCombineEntriesBasics(t *testing.T) {
	m := cost.Default()
	// Empty and singleton pass through.
	if ups, c := combineEntries(nil, m); ups != nil || c != 0 {
		t.Error("empty combine not a no-op")
	}
	one := []proto.HistoryEntry{{Incarnation: 3, Updates: []proto.Update{{Addr: 8, TS: 3, Data: []byte{1}}}}}
	if ups, _ := combineEntries(one, m); len(ups) != 1 {
		t.Error("singleton combine changed the entry")
	}

	// Overlapping incarnations: the newer value wins, adjacent spans
	// coalesce.
	entries := []proto.HistoryEntry{
		{Incarnation: 1, Updates: []proto.Update{{Addr: 100, TS: 1, Data: []byte{1, 1, 1, 1}}}},
		{Incarnation: 2, Updates: []proto.Update{{Addr: 102, TS: 2, Data: []byte{2, 2, 2, 2}}}},
	}
	ups, cycles := combineEntries(entries, m)
	if len(ups) != 1 {
		t.Fatalf("combined into %d updates, want 1", len(ups))
	}
	if ups[0].Addr != 100 || !bytes.Equal(ups[0].Data, []byte{1, 1, 2, 2, 2, 2}) {
		t.Errorf("combined update = %+v", ups[0])
	}
	if ups[0].TS != 2 {
		t.Errorf("combined TS = %d, want newest incarnation 2", ups[0].TS)
	}
	if cycles == 0 {
		t.Error("combining charged nothing")
	}
}

// TestCombineEquivalence: applying the combined set yields the same memory
// as applying the entries in incarnation order.
func TestCombineEquivalence(t *testing.T) {
	m := cost.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const base = 1000
		const size = 256
		var entries []proto.HistoryEntry
		for inc := 1; inc <= rng.Intn(5)+2; inc++ {
			var ups []proto.Update
			for k := 0; k < rng.Intn(4); k++ {
				off := rng.Intn(size - 8)
				ln := rng.Intn(8) + 1
				data := make([]byte, ln)
				rng.Read(data)
				ups = append(ups, proto.Update{Addr: memory.Addr(base + off), TS: int64(inc), Data: data})
			}
			entries = append(entries, proto.HistoryEntry{Incarnation: uint64(inc), Updates: ups})
		}

		sequential := make([]byte, size)
		for _, e := range entries {
			for _, u := range e.Updates {
				copy(sequential[int(u.Addr)-base:], u.Data)
			}
		}
		combined := make([]byte, size)
		ups, _ := combineEntries(entries, m)
		for _, u := range ups {
			copy(combined[int(u.Addr)-base:], u.Data)
		}
		if !bytes.Equal(sequential, combined) {
			return false
		}
		// Combined updates are disjoint and sorted.
		for i := 1; i < len(ups); i++ {
			if ups[i].Addr < ups[i-1].Range().End() {
				return false
			}
		}
		// Combined size never exceeds the union of addresses written.
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// System-level combining tests (transfer reduction, cross-app
// correctness) live in internal/core, which hosts the protocol.
