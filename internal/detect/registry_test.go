package detect

import (
	"math"
	"strings"
	"testing"

	"midway/internal/memory"
	"midway/internal/proto"
)

func TestNewUnknownScheme(t *testing.T) {
	e, _ := newFakeEngine(t, 64)
	d, err := New("no-such-scheme", e, Options{})
	if err == nil {
		t.Fatalf("New accepted an unknown scheme: %T", d)
	}
	// The error names the registered schemes so a typo is self-diagnosing.
	for _, name := range []string{"rt", "vm", "blast", "twindiff", "none", "hybrid"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention registered scheme %q", err, name)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	factory := func(Engine, Options) Detector { return noneDetector{} }
	mustPanic("duplicate Register", func() { Register("rt", factory) })
	mustPanic("empty name", func() { Register("", factory) })
	mustPanic("nil factory", func() { Register("fresh-name", nil) })
}

func TestRegisteredAndNames(t *testing.T) {
	for _, name := range []string{"rt", "vm", "blast", "twindiff", "none", "hybrid"} {
		if !Registered(name) {
			t.Errorf("built-in scheme %q not registered", name)
		}
	}
	if Registered("bogus") {
		t.Error("Registered(bogus) = true")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

func TestRangesBytes(t *testing.T) {
	rs := []memory.Range{{Addr: 0, Size: 10}, {Addr: 100, Size: 22}}
	if got := RangesBytes(rs); got != 32 {
		t.Errorf("RangesBytes = %d", got)
	}
	if got := RangesBytes(nil); got != 0 {
		t.Errorf("RangesBytes(nil) = %d", got)
	}
}

// TestRangesBytesOverflowPanics: a binding whose total size exceeds the
// 32-bit address space cannot describe real data; summing it must panic
// rather than wrap around and corrupt buffer arithmetic.
func TestRangesBytesOverflowPanics(t *testing.T) {
	huge := []memory.Range{
		{Addr: 0, Size: math.MaxUint32},
		{Addr: 0, Size: math.MaxUint32},
	}
	defer func() {
		if recover() == nil {
			t.Error("RangesBytes did not panic on uint32 overflow")
		}
	}()
	RangesBytes(huge)
}

// TestConcatBoundOverflowPanics: the twin-building path hits the same
// guard before allocating anything.
func TestConcatBoundOverflowPanics(t *testing.T) {
	e, _ := newFakeEngine(t, 64)
	huge := []memory.Range{
		{Addr: 0, Size: math.MaxUint32},
		{Addr: 0, Size: 2},
	}
	defer func() {
		if recover() == nil {
			t.Error("concatBound did not panic on uint32 overflow")
		}
	}()
	concatBound(e, huge)
}

func TestFilterUpdates(t *testing.T) {
	us := []proto.Update{
		{Addr: 100, TS: 1, Data: make([]byte, 20)}, // spans [100,120)
		{Addr: 200, TS: 2, Data: make([]byte, 8)},  // outside
	}
	binding := []memory.Range{{Addr: 110, Size: 50}}
	out := filterUpdates(us, binding)
	if len(out) != 1 {
		t.Fatalf("filtered to %d updates, want 1", len(out))
	}
	if out[0].Addr != 110 || len(out[0].Data) != 10 || out[0].TS != 1 {
		t.Errorf("clipped update = %+v", out[0])
	}
}

// TestFilterUpdatesBindingOrder: an update spanning two bound ranges is
// emitted once per range, in binding order (not update order), and
// zero-size ranges contribute nothing.
func TestFilterUpdatesBindingOrder(t *testing.T) {
	data := make([]byte, 40)
	for i := range data {
		data[i] = byte(i)
	}
	us := []proto.Update{{Addr: 100, TS: 9, Data: data}} // spans [100,140)
	binding := []memory.Range{
		{Addr: 130, Size: 8},  // second half of the update, listed first
		{Addr: 120, Size: 0},  // zero-size: skipped entirely
		{Addr: 104, Size: 12}, // first half, listed last
	}
	out := filterUpdates(us, binding)
	if len(out) != 2 {
		t.Fatalf("filtered to %d updates, want 2 (one per non-empty bound range)", len(out))
	}
	// Binding order, not address order.
	if out[0].Addr != 130 || len(out[0].Data) != 8 {
		t.Errorf("first emitted update = %+v, want the 130..138 clip", out[0])
	}
	if out[1].Addr != 104 || len(out[1].Data) != 12 {
		t.Errorf("second emitted update = %+v, want the 104..116 clip", out[1])
	}
	// Clipping picked the right bytes out of the update's buffer.
	if out[0].Data[0] != 30 {
		t.Errorf("clip at 130 starts with byte %d, want 30", out[0].Data[0])
	}
	if out[1].Data[0] != 4 {
		t.Errorf("clip at 104 starts with byte %d, want 4", out[1].Data[0])
	}

	// A zero-size intersection (range abutting the update) emits nothing.
	abut := []memory.Range{{Addr: 140, Size: 16}}
	if got := filterUpdates(us, abut); len(got) != 0 {
		t.Errorf("abutting range produced %d updates, want 0", len(got))
	}
}
