// Package detect defines Midway's pluggable write-detection layer.
//
// A Detector is one write-detection scheme: it traps instrumented stores on
// the application path and collects/applies updates at synchronization
// points.  The consistency protocol itself (ownership transfer, forwarding,
// barrier management) lives in internal/core; a detector sees only the
// narrow Engine facade plus per-object views whose detector-specific
// bookkeeping is an opaque state slot.
//
// Schemes register themselves by name; core resolves the configured scheme
// through New.  The built-in schemes are:
//
//	rt        dirtybit Lamport timestamps (the paper's contribution)
//	vm        page twins, diffs and incarnation histories (Sections 3.3-3.4)
//	blast     no detection: ship all bound data (Section 3.5)
//	twindiff  no detection: twin and diff all bound data (Section 3.5)
//	none      no detection or collection (standalone baseline)
//	hybrid    per-region dispatch between the rt and vm mechanisms
package detect

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"midway/internal/cost"
	"midway/internal/memory"
	"midway/internal/obs"
	"midway/internal/proto"
	"midway/internal/stats"
	"midway/internal/vmem"
)

// Options carries the detector-relevant configuration switches.
type Options struct {
	// EagerTimestamps selects the eager dirtybit scheme: every store
	// records the current Lamport time instead of the cheap pending marker.
	EagerTimestamps bool
	// CombineIncarnations enables the §3.4 alternative: a releaser merges
	// several incarnations' updates before replying.
	CombineIncarnations bool
}

// ObjectView is a detector's view of one synchronization object at one
// node: its identity, current binding, and an opaque slot for the
// detector's own per-object state.
type ObjectView interface {
	// Name returns the object's diagnostic name.
	Name() string
	// Binding returns the object's current data binding.  The slice must
	// not be modified.
	Binding() []memory.Range
	// State returns the detector state stored with SetState, or nil.
	State() any
	// SetState stores detector-private per-object state.
	SetState(s any)
}

// LockView is a detector's view of a lock.
type LockView interface {
	ObjectView
	// Rebound reports whether the binding changed since the last transfer.
	Rebound() bool
	// ClearRebound acknowledges a rebinding once the detector has handled
	// it (typically by shipping full data).
	ClearRebound()
	// BindGen returns the lock's rebinding generation counter.
	BindGen() uint64
}

// BarrierView is a detector's view of a barrier.
type BarrierView interface {
	ObjectView
	// Epoch returns the barrier's current episode number.
	Epoch() uint64
	// Parts returns the declared write partition for the given node and
	// whether any partition was declared at all (only the blast scheme
	// requires one).
	Parts(node int) ([]memory.Range, bool)
}

// Engine is the narrow facade through which a detector reaches its node's
// runtime: instrumented memory, statistics counters, cost model, clocks.
// Collection and application entry points run under the node's mutex; the
// same discipline extends to ForEachObject's callbacks.
type Engine interface {
	// NodeID returns the hosting node's processor number.
	NodeID() int
	// Inst returns the node's local memory instance (data and dirtybits).
	Inst() *memory.Instance
	// Layout returns the shared address-space layout.
	Layout() *memory.Layout
	// VM returns the node's page table for fault-based detection, creating
	// it on first use.
	VM() *vmem.Table
	// Stats returns the node's statistics counters.
	Stats() *stats.Node
	// Cost returns the primitive-operation cost model.
	Cost() cost.Model
	// Charge adds cycles to the node's simulated clock (the trap path
	// charges time directly; collection returns cycles to the caller).
	Charge(c cost.Cycles)
	// Tick advances the node's Lamport clock and returns the new time.
	Tick() int64
	// Now returns the Lamport clock without advancing it.
	Now() int64
	// PristineBound reconstructs the pre-run contents of the bound ranges
	// (zeros overlaid with presets) as a contiguous buffer.
	PristineBound(binding []memory.Range) []byte
	// Trace returns the system tracer, or nil when tracing is disabled.
	// Emission sites must nil-check before building an event (the
	// zero-cost-when-disabled contract).
	Trace() *obs.Tracer
	// TraceAt returns the deterministic simulated timestamp for events
	// emitted from inside a collection or apply entry point (the protocol
	// sets it before calling in).  Meaningless when Trace() is nil.
	TraceAt() uint64
	// CycleNow returns the node's live cycle clock, for events emitted on
	// the application's trap path.
	CycleNow() uint64
	// ForEachObject visits every synchronization object's view at this
	// node, creating per-object state on first touch.  Caller must already
	// hold the node's mutex (true inside collection entry points).
	ForEachObject(fn func(ObjectView))
}

// Detector is one write-detection scheme, instantiated per node.
// Implementations charge primitive-operation costs and update the node's
// counters; returned cycle figures time-stamp the resulting protocol
// messages.
type Detector interface {
	// TrapWrite runs after every instrumented store of size bytes at a
	// within region r.  It is called from the application goroutine
	// without the node's mutex.
	TrapWrite(a memory.Addr, size uint32, r *memory.Region)

	// FillAcquire records the requester's consistency point (timestamp,
	// incarnation) in an outgoing acquire request.
	FillAcquire(lk LockView, req *proto.LockAcquire)

	// CollectLock gathers the updates a requester needs, given the
	// requester's last consistency point, and advances the lock's local
	// bookkeeping.  exclusive reports whether ownership transfers.
	CollectLock(lk LockView, req *proto.LockAcquire, exclusive bool) (*proto.LockGrant, cost.Cycles)

	// ApplyLock incorporates a received grant at the requesting node.
	ApplyLock(lk LockView, g *proto.LockGrant) cost.Cycles

	// CollectBarrier gathers this node's modifications to the barrier's
	// bound data since the last episode.
	CollectBarrier(b BarrierView) ([]proto.Update, cost.Cycles)

	// ApplyBarrier incorporates the merged updates from other nodes.
	ApplyBarrier(b BarrierView, rel *proto.BarrierRelease) cost.Cycles

	// NotifyRebind runs when the application rebinds a lock it holds, so
	// schemes with binding-shaped bookkeeping (twins) can invalidate it.
	NotifyRebind(lk LockView)
}

// BatchTrapper is an optional Detector extension for dense typed-array
// stores: one call is exactly equivalent to count consecutive
// TrapWrite(a + i*elem, elem, r) calls for i in [0, count).  Schemes
// implement it to fuse the per-store dispatch, table lookups and
// statistics updates; the charges and counters produced must be exactly
// the sum the per-element calls would produce, so simulated results are
// identical whichever entry point runs.
type BatchTrapper interface {
	TrapWriteBatch(a memory.Addr, elem uint32, count int, r *memory.Region)
}

// TrapWrites dispatches count consecutive elem-sized stores starting at a
// through d, using the fused batch entry point when the scheme provides
// one and falling back to per-element traps otherwise.
func TrapWrites(d Detector, a memory.Addr, elem uint32, count int, r *memory.Region) {
	if bt, ok := d.(BatchTrapper); ok {
		bt.TrapWriteBatch(a, elem, count, r)
		return
	}
	for i := 0; i < count; i++ {
		d.TrapWrite(a+memory.Addr(uint32(i)*elem), elem, r)
	}
}

// Factory constructs a scheme's detector for one node.
type Factory func(e Engine, opt Options) Detector

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register makes a detector scheme available under the given name.  It
// panics if the name is empty or already taken: scheme names are a global
// namespace and a silent overwrite would swap detection mechanisms behind
// the configuration's back.
func Register(name string, f Factory) {
	if name == "" {
		panic("detect: Register with empty scheme name")
	}
	if f == nil {
		panic(fmt.Sprintf("detect: Register(%q) with nil factory", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("detect: duplicate Register of scheme %q", name))
	}
	registry[name] = f
}

// New instantiates the named scheme's detector for one node.
func New(name string, e Engine, opt Options) (Detector, error) {
	registryMu.RLock()
	f := registry[name]
	registryMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("detect: unknown scheme %q (registered: %v)", name, Names())
	}
	return f(e, opt), nil
}

// Registered reports whether a scheme name is known.
func Registered(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered scheme names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RangesBytes returns the total size of a binding in bytes.  It panics if
// the total overflows the 32-bit address space: such a binding cannot
// describe real data and would otherwise corrupt buffer arithmetic
// silently.
func RangesBytes(rs []memory.Range) uint32 {
	var n uint64
	for _, r := range rs {
		n += uint64(r.Size)
		if n > math.MaxUint32 {
			panic(fmt.Sprintf("detect: binding size overflows uint32 (%d ranges, >= %d bytes)", len(rs), n))
		}
	}
	return uint32(n)
}

// readBoundUpdates reads the current contents of every bound range into
// one update per range, stamped with ts.
func readBoundUpdates(e Engine, binding []memory.Range, ts int64) []proto.Update {
	ups := make([]proto.Update, 0, len(binding))
	for _, rg := range binding {
		if rg.Size == 0 {
			continue
		}
		buf := make([]byte, rg.Size)
		e.Inst().ReadBytes(rg, buf)
		ups = append(ups, proto.Update{Addr: rg.Addr, TS: ts, Data: buf})
	}
	return ups
}

// filterUpdates keeps only the portions of the updates that intersect the
// binding.  Output is emitted in binding order (outer loop over the bound
// ranges), so the result is deterministic in the binding's terms regardless
// of the updates' arrival order; zero-size ranges and intersections are
// skipped.
func filterUpdates(us []proto.Update, binding []memory.Range) []proto.Update {
	var out []proto.Update
	for _, brg := range binding {
		if brg.Size == 0 {
			continue
		}
		for _, u := range us {
			urg := u.Range()
			inter, ok := urg.Intersect(brg)
			if !ok || inter.Size == 0 {
				continue
			}
			lo := inter.Addr - urg.Addr
			out = append(out, proto.Update{
				Addr: inter.Addr,
				TS:   u.TS,
				Data: u.Data[lo : uint32(lo)+inter.Size],
			})
		}
	}
	return out
}

// concatBound copies the current contents of the bound ranges into one
// contiguous buffer (the twin-diff schemes' twin layout).
func concatBound(e Engine, binding []memory.Range) []byte {
	buf := make([]byte, RangesBytes(binding))
	off := uint32(0)
	for _, rg := range binding {
		e.Inst().ReadBytes(rg, buf[off:off+rg.Size])
		off += rg.Size
	}
	return buf
}

// rangesEqual reports whether two range lists are identical.
func rangesEqual(a, b []memory.Range) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// noneDetector disables detection and collection entirely; it backs the
// standalone (uninstrumented, single-node) baseline configuration.
type noneDetector struct{}

func init() {
	Register("none", func(Engine, Options) Detector { return noneDetector{} })
}

func (noneDetector) TrapWrite(memory.Addr, uint32, *memory.Region) {}

func (noneDetector) FillAcquire(LockView, *proto.LockAcquire) {}

func (noneDetector) CollectLock(LockView, *proto.LockAcquire, bool) (*proto.LockGrant, cost.Cycles) {
	return &proto.LockGrant{}, 0
}

func (noneDetector) ApplyLock(LockView, *proto.LockGrant) cost.Cycles { return 0 }

func (noneDetector) CollectBarrier(BarrierView) ([]proto.Update, cost.Cycles) {
	return nil, 0
}

func (noneDetector) ApplyBarrier(BarrierView, *proto.BarrierRelease) cost.Cycles { return 0 }

func (noneDetector) NotifyRebind(LockView) {}
