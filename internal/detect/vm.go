package detect

import (
	"fmt"

	"midway/internal/cost"
	"midway/internal/diff"
	"midway/internal/memory"
	"midway/internal/obs"
	"midway/internal/proto"
	"midway/internal/vmem"
)

// incState is the incarnation-number and update-history bookkeeping shared
// by the vm, twindiff and hybrid schemes (Section 3.4).
type incState struct {
	// lastInc is this node's last-seen incarnation for the object.
	lastInc uint64
	// inc is the object's current incarnation (meaningful at the owner).
	inc uint64
	// baseInc is the incarnation preceding the oldest retained history
	// entry; requesters whose lastInc is below it receive full data.
	baseInc uint64
	// history holds prior incarnations' updates, newest last, trimmed by
	// the full-data rule.
	history []proto.HistoryEntry
}

// trim enforces the full-data rule's memory bound: once the retained
// history exceeds the bound data's size, the oldest entries are dropped —
// any requester that would have needed them receives full data instead.
func (s *incState) trim(boundBytes uint32) {
	total := 0
	for _, h := range s.history {
		total += proto.UpdateBytes(h.Updates)
	}
	for len(s.history) > 0 && uint32(total) > boundBytes {
		total -= proto.UpdateBytes(s.history[0].Updates)
		s.baseInc = s.history[0].Incarnation
		s.history = s.history[1:]
	}
}

// entriesAfter returns the retained entries newer than lastInc and their
// total update bytes.
func (s *incState) entriesAfter(lastInc uint64) ([]proto.HistoryEntry, int) {
	var entries []proto.HistoryEntry
	total := 0
	for _, h := range s.history {
		if h.Incarnation > lastInc {
			entries = append(entries, h)
			total += proto.UpdateBytes(h.Updates)
		}
	}
	return entries, total
}

// historyBytes returns the total bytes of retained history.
func (s *incState) historyBytes() int {
	total := 0
	for _, h := range s.history {
		total += proto.UpdateBytes(h.Updates)
	}
	return total
}

// vmObjState is the vm scheme's per-object slot: incarnation history for
// locks plus the pending-update accumulator page diffs feed (locks and
// barriers alike).
type vmObjState struct {
	incState
	// accum holds updates discovered by page diffs that belong to this
	// object but have not yet been folded into an incarnation or shipped.
	accum []proto.Update
}

func vmStateOf(o ObjectView) *vmObjState {
	if s, ok := o.State().(*vmObjState); ok {
		return s
	}
	s := &vmObjState{}
	o.SetState(s)
	return s
}

// RetainedHistoryBytes reports the total bytes of incarnation history a
// detector retains for the object: an introspection hook for tests and
// diagnostics that keeps the state representation itself opaque.
func RetainedHistoryBytes(o ObjectView) int {
	switch s := o.State().(type) {
	case *vmObjState:
		return s.historyBytes()
	case *twinLockState:
		return s.historyBytes()
	case *hybridObjState:
		return s.historyBytes()
	}
	return 0
}

// vmDetector implements the conventional page-protection write detection
// (Sections 3.3–3.4).
//
// Write trapping: shared pages start read-only; the first store to a page
// write-faults, the handler saves a twin, marks the page dirty and grants
// write access.  Subsequent stores are free.
//
// Write collection: at a transfer, pages containing bound data are diffed
// against their twins.  A page's diff is distributed to the pending-update
// accumulator of every synchronization object whose binding overlaps it
// (the paper's diff reuse), after which the page is cleaned and
// write-protected again.  Each transfer increments the lock's incarnation
// number and folds the lock's accumulated updates into a per-incarnation
// history entry; a requester receives every entry newer than its last-seen
// incarnation.  If the concatenated entries would exceed the size of the
// bound data, or the requester predates the retained history, full data is
// sent instead.  A rebinding invalidates the history and forces a full
// send without diffing, exactly the quicksort fast path the paper
// describes.
type vmDetector struct {
	e   Engine
	opt Options
}

func init() {
	Register("vm", func(e Engine, opt Options) Detector {
		return &vmDetector{e: e, opt: opt}
	})
}

// vmTrap upgrades the stored-to pages to writable, twinning them on first
// touch.  Shared by the vm and hybrid schemes.
func vmTrap(e Engine, a memory.Addr, size uint32, r *memory.Region) {
	if r.Class == memory.Private {
		return // private pages are not managed by the external pager
	}
	faults := e.VM().EnsureWritable(a, size)
	if faults > 0 {
		e.Stats().WriteFaults.Add(uint64(faults))
		e.Charge(uint64(faults) * e.Cost().PageWriteFault)
		emitFault(e, r, faults, size)
	}
}

// emitFault traces a write fault (or batch of them) on the application's
// trap path.
func emitFault(e Engine, r *memory.Region, faults int, span uint32) {
	if tr := e.Trace(); tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvFault, Cycles: e.CycleNow(), Node: int32(e.NodeID()),
			Obj: -1, Peer: -1, Name: r.Name,
			A: int64(faults), Bytes: uint64(span),
		})
	}
}

func (d *vmDetector) TrapWrite(a memory.Addr, size uint32, r *memory.Region) {
	vmTrap(d.e, a, size, r)
}

// vmTrapBatch is count consecutive vmTrap calls for elem-sized stores.
// A page faults at most once per batch either way, so one EnsureWritable
// over the whole span produces exactly the per-element fault count and
// charge.
func vmTrapBatch(e Engine, a memory.Addr, elem uint32, count int, r *memory.Region) {
	if r.Class == memory.Private || count == 0 {
		return
	}
	faults := e.VM().EnsureWritable(a, uint32(count)*elem)
	if faults > 0 {
		e.Stats().WriteFaults.Add(uint64(faults))
		e.Charge(uint64(faults) * e.Cost().PageWriteFault)
		emitFault(e, r, faults, uint32(count)*elem)
	}
}

func (d *vmDetector) TrapWriteBatch(a memory.Addr, elem uint32, count int, r *memory.Region) {
	vmTrapBatch(d.e, a, elem, count, r)
}

// diffAndDistribute diffs every dirty page holding data of the given
// binding, distributes the discovered modifications to the accumulator of
// every object whose binding overlaps them, and cleans the pages.  accumOf
// maps an object's view to the scheme's accumulator slot.  Caller holds
// the node's mutex (collection entry points do).
func diffAndDistribute(e Engine, binding []memory.Range, accumOf func(ObjectView) *[]proto.Update) cost.Cycles {
	st := e.Stats()
	m := e.Cost()
	vm := e.VM()
	var cycles cost.Cycles
	seen := make(map[int]bool)
	for _, rg := range binding {
		for _, pg := range vm.DirtyPagesIn(rg) {
			if seen[pg] {
				continue
			}
			seen[pg] = true
			cur, twin := vm.Snapshot(pg)
			df := diff.Compute(cur, twin)
			st.PagesDiffed.Add(1)
			st.DiffRuns.Add(uint64(len(df.Runs)))
			cycles += m.DiffCost(len(df.Runs), vmem.WordsPerPage)
			if tr := e.Trace(); tr != nil {
				changed := 0
				for _, run := range df.Runs {
					changed += len(run.Data)
				}
				name := ""
				if r := e.Layout().RegionFor(vmem.PageBase(pg)); r != nil {
					name = r.Name
				}
				tr.Emit(obs.Event{
					Kind: obs.EvDiff, Cycles: e.TraceAt(), Node: int32(e.NodeID()),
					Obj: -1, Peer: -1, Name: name,
					A: int64(pg), B: int64(len(df.Runs)), Bytes: uint64(changed),
				})
			}
			if !df.Empty() {
				distribute(e, pg, df, accumOf)
			}
			if vm.Clean(pg) {
				st.PagesWriteProtected.Add(1)
				cycles += m.PageProtectRO
			}
		}
	}
	return cycles
}

// distribute appends the page diff's runs to the pending-update
// accumulator of every synchronization object whose binding they
// intersect.  Caller holds the node's mutex.
func distribute(e Engine, pg int, df diff.Diff, accumOf func(ObjectView) *[]proto.Update) {
	base := vmem.PageBase(pg)
	for _, run := range df.Runs {
		runRg := memory.Range{Addr: base + memory.Addr(run.Off), Size: uint32(len(run.Data))}
		e.ForEachObject(func(o ObjectView) {
			appendTo := accumOf(o)
			for _, brg := range o.Binding() {
				inter, ok := runRg.Intersect(brg)
				if !ok {
					continue
				}
				lo := inter.Addr - runRg.Addr
				*appendTo = append(*appendTo, proto.Update{
					Addr: inter.Addr,
					Data: run.Data[lo : uint32(lo)+inter.Size],
				})
			}
		})
	}
}

func vmAccumOf(o ObjectView) *[]proto.Update { return &vmStateOf(o).accum }

func (d *vmDetector) FillAcquire(lk LockView, req *proto.LockAcquire) {
	req.LastIncarnation = vmStateOf(lk).lastInc
}

func (d *vmDetector) CollectLock(lk LockView, req *proto.LockAcquire, exclusive bool) (*proto.LockGrant, cost.Cycles) {
	e := d.e
	t := e.Tick()
	binding := lk.Binding()
	s := vmStateOf(lk)
	boundBytes := RangesBytes(binding)

	if lk.Rebound() {
		// Rebinding: the incarnation history describes the old binding;
		// increment the incarnation and ship all (new) bound data without
		// performing a diff.  Pages stay dirty for the benefit of other
		// objects sharing them.
		newInc := s.inc + 1
		s.inc = newInc
		s.history = nil
		s.baseInc = newInc
		s.accum = filterUpdates(s.accum, binding)
		s.lastInc = newInc
		lk.ClearRebound()
		ups := readBoundUpdates(e, binding, int64(newInc))
		cycles := cost.CopyCost(e.Cost().CopyWarmPerKB, int(boundBytes))
		return &proto.LockGrant{
			Time:        t,
			Incarnation: newInc,
			Base:        newInc,
			Updates:     ups,
			Full:        true,
		}, cycles
	}

	// Shared and exclusive grants share the diff/incarnation machinery;
	// only ownership (handled by the caller) differs.  Every exclusive
	// transfer increments the incarnation number, as in the paper; a
	// shared grant advances it only when it folds in fresh modifications,
	// so a train of readers does not inflate the history.
	cycles := diffAndDistribute(e, binding, vmAccumOf)
	newInc := s.inc
	if exclusive {
		newInc++
	}
	if len(s.accum) > 0 {
		if !exclusive {
			newInc++
		}
		ups := s.accum
		s.accum = nil
		for i := range ups {
			ups[i].TS = int64(newInc)
		}
		s.history = append(s.history, proto.HistoryEntry{Incarnation: newInc, Updates: ups})
	}
	s.inc = newInc
	s.lastInc = newInc

	// Assemble the reply: history entries newer than the requester's
	// last-seen incarnation, or full data if the history does not reach
	// back far enough or would exceed the bound data's size.
	full := req.LastIncarnation < s.baseInc
	var entries []proto.HistoryEntry
	if !full {
		var total int
		entries, total = s.entriesAfter(req.LastIncarnation)
		if d.opt.CombineIncarnations && len(entries) > 1 {
			// §3.4 alternative: merge the entries so each address
			// reflects its most recent incarnation.  The combined set
			// never exceeds the bound data, so the full-data rule cannot
			// trigger.
			combined, c := combineEntries(entries, e.Cost())
			cycles += c
			g := &proto.LockGrant{
				Time:        t,
				Incarnation: newInc,
				Base:        s.baseInc,
				Updates:     combined,
			}
			s.trim(boundBytes)
			return g, cycles
		}
		if uint32(total) > boundBytes {
			full = true
		}
	}
	if full {
		ups := readBoundUpdates(e, binding, int64(newInc))
		cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, int(boundBytes))
		s.history = nil
		s.baseInc = newInc
		return &proto.LockGrant{
			Time:        t,
			Incarnation: newInc,
			Base:        newInc,
			Updates:     ups,
			Full:        true,
		}, cycles
	}
	g := &proto.LockGrant{
		Time:        t,
		Incarnation: newInc,
		Base:        s.baseInc,
		History:     entries,
	}
	s.trim(boundBytes)
	return g, cycles
}

// vmApplyUpdates installs incoming updates into the local pages and, where
// pages are dirty, into their twins, so remote data is never mistaken for
// a local modification.  Shared by the vm and hybrid schemes.
func vmApplyUpdates(e Engine, us []proto.Update) cost.Cycles {
	if tr := e.Trace(); tr != nil && len(us) > 0 {
		tr.Emit(obs.Event{
			Kind: obs.EvApply, Cycles: e.TraceAt(), Node: int32(e.NodeID()),
			Obj: -1, Peer: -1, Bytes: uint64(proto.UpdateBytes(us)),
		})
	}
	var cycles cost.Cycles
	for _, u := range us {
		e.Inst().WriteBytes(u.Range(), u.Data)
		tb := e.VM().ApplyToTwin(u.Addr, u.Data)
		if tb > 0 {
			e.Stats().TwinBytesUpdated.Add(uint64(tb))
			cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, tb)
		}
	}
	return cycles
}

func (d *vmDetector) ApplyLock(lk LockView, g *proto.LockGrant) cost.Cycles {
	s := vmStateOf(lk)
	var cycles cost.Cycles
	switch {
	case g.Full:
		cycles = vmApplyUpdates(d.e, g.Updates)
		// Full data subsumes any retained history; future requesters
		// older than Base get a fresh full read.
		s.history = nil
		s.baseInc = g.Base
	default:
		// A combined incremental grant carries its merged updates in
		// Updates; retained as a single history entry they remain a
		// valid (superset) answer for future requesters.
		if len(g.Updates) > 0 {
			cycles += vmApplyUpdates(d.e, g.Updates)
			s.history = append(s.history,
				proto.HistoryEntry{Incarnation: g.Incarnation, Updates: g.Updates})
		}
		for i, h := range g.History {
			if i > 0 && h.Incarnation <= g.History[i-1].Incarnation {
				panic(fmt.Sprintf("detect: node %d: history out of order for lock %d", d.e.NodeID(), g.Lock))
			}
			cycles += vmApplyUpdates(d.e, h.Updates)
		}
		// Retain the new entries so we can serve future requesters; our
		// own older entries remain valid and contiguous below them.
		s.history = append(s.history, g.History...)
		s.trim(RangesBytes(g.Binding))
	}
	s.inc = g.Incarnation
	s.lastInc = g.Incarnation
	return cycles
}

func (d *vmDetector) CollectBarrier(b BarrierView) ([]proto.Update, cost.Cycles) {
	if len(b.Binding()) == 0 {
		return nil, 0
	}
	cycles := diffAndDistribute(d.e, b.Binding(), vmAccumOf)
	s := vmStateOf(b)
	ups := s.accum
	s.accum = nil
	for i := range ups {
		ups[i].TS = int64(b.Epoch() + 1)
	}
	return ups, cycles
}

func (d *vmDetector) ApplyBarrier(b BarrierView, rel *proto.BarrierRelease) cost.Cycles {
	return vmApplyUpdates(d.e, rel.Updates)
}

func (d *vmDetector) NotifyRebind(LockView) {}
