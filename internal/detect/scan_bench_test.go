package detect

import (
	"testing"

	"midway/internal/memory"
)

// Scan benchmarks: a 64 KB shared region of 8-byte lines (8192 lines),
// scanned as one binding.  The all-clean case is the paper's "scan cost is
// proportional to bound data" tax that every synchronization pays; the
// dirty cases add collection.  Lines are marked through rtTrap — the real
// instrumented-store path — so the benchmarks stay valid however the
// dirtybit representation evolves.

const benchRegion = 64 * 1024

func benchScanEngine(b *testing.B) (*fakeEngine, memory.Addr, *memory.Region) {
	e, addrs := newFakeEngine(b, benchRegion)
	r := e.layout.RegionFor(addrs[0])
	return e, addrs[0], r
}

var sinkScan scanOutcome

func BenchmarkRTTrapWord(b *testing.B) {
	e, addr, r := benchScanEngine(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rtTrap(e, false, addr+memory.Addr((i%512)*8), 8, r)
	}
}

func BenchmarkScanAllClean(b *testing.B) {
	e, addr, _ := benchScanEngine(b)
	binding := []memory.Range{{Addr: addr, Size: benchRegion}}
	b.SetBytes(benchRegion)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkScan = scanBinding(e, binding, 0, int64(i+1))
	}
}

// BenchmarkScanSparseDirty: one eagerly-stamped line per 64, the rest
// clean.  since=0 ships the stamped lines on every iteration without
// mutating them, so iterations are identical.
func BenchmarkScanSparseDirty(b *testing.B) {
	e, addr, _ := benchScanEngine(b)
	e.lamport.Tick()
	for off := memory.Addr(0); off < benchRegion; off += 64 * 8 {
		rtTrap(e, true, addr+off, 8, e.layout.RegionFor(addr))
	}
	binding := []memory.Range{{Addr: addr, Size: benchRegion}}
	b.SetBytes(benchRegion)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkScan = scanBinding(e, binding, 0, 100)
	}
}

// BenchmarkScanAllDirty: every line eagerly stamped; the scan collects the
// full 64 KB each iteration.
func BenchmarkScanAllDirty(b *testing.B) {
	e, addr, _ := benchScanEngine(b)
	e.lamport.Tick()
	r := e.layout.RegionFor(addr)
	for off := memory.Addr(0); off < benchRegion; off += 8 {
		rtTrap(e, true, addr+off, 8, r)
	}
	binding := []memory.Range{{Addr: addr, Size: benchRegion}}
	b.SetBytes(benchRegion)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkScan = scanBinding(e, binding, 0, 100)
	}
}
