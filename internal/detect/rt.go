package detect

import (
	"midway/internal/cost"
	"midway/internal/memory"
	"midway/internal/obs"
	"midway/internal/proto"
)

// rtDetector implements the paper's contribution: compiler/runtime write
// detection with per-cache-line dirtybit timestamps.
//
// Write trapping (Section 3.1): after each store to shared memory, the
// instrumented code jumps through the region's template and marks the
// stored line's dirtybit.  Under the default lazy scheme (footnote 1) the
// mark is a cheap pending sentinel; the Lamport timestamp is assigned when
// the guarding synchronization object is transferred.
//
// Write collection (Section 3.2): at a transfer, the releaser scans the
// dirtybits of the lines bound to the object.  Pending lines are stamped
// with the transfer's logical time; any line whose timestamp exceeds the
// requester's last consistency time is shipped.  The requester installs the
// incoming timestamps, so an update is applied at most once per processor.
type rtDetector struct {
	e     Engine
	eager bool
}

func init() {
	Register("rt", func(e Engine, opt Options) Detector {
		return &rtDetector{e: e, eager: opt.EagerTimestamps}
	})
}

// rtLockState is the rt scheme's per-lock slot: the logical time at which
// this node's copy of the bound data was last known complete.
type rtLockState struct {
	lastTime int64
}

// rtBarrierState is the per-barrier analogue, used by the eager scheme.
type rtBarrierState struct {
	lastTime int64
}

func rtLockStateOf(lk LockView) *rtLockState {
	if s, ok := lk.State().(*rtLockState); ok {
		return s
	}
	s := &rtLockState{}
	lk.SetState(s)
	return s
}

func rtBarrierStateOf(b BarrierView) *rtBarrierState {
	if s, ok := b.State().(*rtBarrierState); ok {
		return s
	}
	s := &rtBarrierState{}
	b.SetState(s)
	return s
}

// rtTrap marks the dirtybits of every line covered by an instrumented
// store, charging the matching template entry point.  Shared by the rt and
// hybrid schemes.
func rtTrap(e Engine, eager bool, a memory.Addr, size uint32, r *memory.Region) {
	st := e.Stats()
	m := e.Cost()
	if r.Class == memory.Private {
		// The compiler classified this store as shared, but it reached a
		// private region: the region's template simply returns.
		st.DirtybitsMisclassified.Add(1)
		e.Charge(m.DirtybitSetPrivate)
		return
	}
	bits := e.Inst().Dirtybits(r)
	first := r.LineIndex(a)
	last := r.LineIndex(a + memory.Addr(size) - 1)

	// Charge the template entry point matching the store kind.
	switch {
	case size <= 4:
		e.Charge(m.DirtybitSetWord)
	case size <= 8 && first == last:
		e.Charge(m.DirtybitSetDouble)
	default:
		// Area entry point: unaligned or multi-line store, handled by the
		// out-of-line routine that marks every covered line.
		e.Charge(m.DirtybitSetArea + cost.Cycles(last-first)*m.DirtybitUpdate)
	}

	mark := memory.DirtyPending
	if eager {
		// Eager scheme: stamp the processor's local time directly.  The
		// +1 orders these writes after the most recent synchronization
		// point, whose transfer time equals the current clock value.
		mark = e.Now() + 1
	}
	sum := e.Inst().Summary(r)
	for i := first; i <= last; i++ {
		if mark == memory.DirtyPending {
			if bits[i] != memory.DirtyPending {
				sum.Pending.Add(1)
			}
		} else if bits[i] == memory.DirtyPending {
			sum.Pending.Add(-1)
		}
		bits[i] = mark
		st.DirtybitsSet.Add(1)
	}
	if mark != memory.DirtyPending {
		sum.NoteTime(mark)
	}
}

func (d *rtDetector) TrapWrite(a memory.Addr, size uint32, r *memory.Region) {
	rtTrap(d.e, d.eager, a, size, r)
}

// rtTrapBatch is count consecutive rtTrap calls for elem-sized stores,
// fused: the dirtybit array, region summary and statistics counters are
// touched once per batch instead of once per store.  Charges and counts
// are exactly the per-element sums.
func rtTrapBatch(e Engine, eager bool, a memory.Addr, elem uint32, count int, r *memory.Region) {
	st := e.Stats()
	m := e.Cost()
	if r.Class == memory.Private {
		st.DirtybitsMisclassified.Add(uint64(count))
		e.Charge(cost.Cycles(count) * m.DirtybitSetPrivate)
		return
	}
	bits := e.Inst().Dirtybits(r)
	sum := e.Inst().Summary(r)
	mark := memory.DirtyPending
	if eager {
		mark = e.Now() + 1
	}
	var cycles cost.Cycles
	var set uint64
	var pendDelta int64
	for k := 0; k < count; k++ {
		sa := a + memory.Addr(uint32(k)*elem)
		first := r.LineIndex(sa)
		last := r.LineIndex(sa + memory.Addr(elem) - 1)
		switch {
		case elem <= 4:
			cycles += m.DirtybitSetWord
		case elem <= 8 && first == last:
			cycles += m.DirtybitSetDouble
		default:
			cycles += m.DirtybitSetArea + cost.Cycles(last-first)*m.DirtybitUpdate
		}
		for i := first; i <= last; i++ {
			if mark == memory.DirtyPending {
				if bits[i] != memory.DirtyPending {
					pendDelta++
				}
			} else if bits[i] == memory.DirtyPending {
				pendDelta--
			}
			bits[i] = mark
			set++
		}
	}
	st.DirtybitsSet.Add(set)
	if pendDelta != 0 {
		sum.Pending.Add(pendDelta)
	}
	if mark != memory.DirtyPending {
		sum.NoteTime(mark)
	}
	e.Charge(cycles)
}

func (d *rtDetector) TrapWriteBatch(a memory.Addr, elem uint32, count int, r *memory.Region) {
	rtTrapBatch(d.e, d.eager, a, elem, count, r)
}

// scanOutcome is the per-line result of a collection scan.
type scanOutcome struct {
	updates []proto.Update
	cycles  cost.Cycles
}

// scanBinding walks every cache line overlapping the binding, stamping
// pending lines with stamp and collecting lines newer than since.  Line
// data is clipped to the bound range, so adjacent data guarded by other
// objects is never shipped.  Shared by the rt and hybrid schemes.
func scanBinding(e Engine, binding []memory.Range, since int64, stamp int64) scanOutcome {
	st := e.Stats()
	tr := e.Trace()
	var out scanOutcome
	for _, rg := range binding {
		segs, err := e.Layout().Segments(rg)
		if err != nil {
			panic(err)
		}
		for _, seg := range segs {
			if seg.Region.Class != memory.Shared {
				continue
			}
			if tr == nil {
				scanSegment(e, seg, since, stamp, &out)
				continue
			}
			// Bracket the segment scan with counter reads so the event can
			// report bytes examined and dirty bytes found.  Safe: the
			// counters are only advanced under the node mutex during
			// collection, which the caller holds.
			preScanned := st.BytesScanned.Load()
			preDirty := st.DirtyBytes.Load()
			scanSegment(e, seg, since, stamp, &out)
			tr.Emit(obs.Event{
				Kind: obs.EvScan, Cycles: e.TraceAt(), Node: int32(e.NodeID()),
				Obj: -1, Peer: -1, Name: seg.Region.Name,
				Bytes: st.BytesScanned.Load() - preScanned,
				A:     int64(st.DirtyBytes.Load() - preDirty),
			})
		}
	}
	return out
}

// restampBinding marks every shared line of a binding as written at the
// given time, as if the whole image had just been stored locally.  Used
// when a rebinding or recovery import leaves current data under Clean or
// stale dirtybits: the fresh stamp makes later incremental scans ship the
// lines and stops rtApplyUpdates at other nodes from discarding them as
// old.  Charged at the dirtybit-update rate per line.
func restampBinding(e Engine, binding []memory.Range, t int64) cost.Cycles {
	st := e.Stats()
	m := e.Cost()
	inst := e.Inst()
	var cycles cost.Cycles
	for _, rg := range binding {
		if rg.Size == 0 {
			continue
		}
		segs, err := e.Layout().Segments(rg)
		if err != nil {
			panic(err)
		}
		for _, seg := range segs {
			r := seg.Region
			if r.Class != memory.Shared {
				continue
			}
			bits := inst.Dirtybits(r)
			sum := inst.Summary(r)
			first := int(seg.Off) >> r.LineShift
			last := int(seg.Off+seg.Len-1) >> r.LineShift
			for i := first; i <= last; i++ {
				if bits[i] == memory.DirtyPending {
					sum.Pending.Add(-1)
				}
				bits[i] = t
				cycles += m.DirtybitUpdate
				st.DirtybitsUpdated.Add(1)
			}
			sum.NoteTime(t)
		}
	}
	return cycles
}

// scanSegment scans one shared segment of a binding, appending collected
// updates and cycle charges to out.
func scanSegment(e Engine, seg memory.Segment, since int64, stamp int64, out *scanOutcome) {
	st := e.Stats()
	m := e.Cost()
	inst := e.Inst()
	r := seg.Region
	first := int(seg.Off) >> r.LineShift
	last := int(seg.Off+seg.Len-1) >> r.LineShift
	sum := inst.Summary(r)
	if sum.Pending.Load() == 0 && sum.MaxTS.Load() <= since {
		// Region-level fast path: no line is pending and no line
		// carries a stamp newer than the requester's consistency
		// time, so every line of this segment reads clean.  Charge
		// exactly what the per-line walk would: the clipped line
		// sizes sum to the segment length, and each line costs one
		// clean dirtybit read.
		lines := uint64(last - first + 1)
		st.BytesScanned.Add(uint64(seg.Len))
		st.CleanDirtybitsRead.Add(lines)
		out.cycles += cost.Cycles(lines) * m.DirtybitReadClean
		return
	}
	bits := inst.Dirtybits(r)
	data := inst.Data(r)
	stamped := false
	for i := first; i <= last; i++ {
		ts := bits[i]
		if ts == memory.DirtyPending {
			ts = stamp
			bits[i] = stamp
			sum.Pending.Add(-1)
			stamped = true
		}
		lineRg := r.LineRange(i)
		clipped, ok := lineRg.Intersect(memory.Range{Addr: seg.Addr(), Size: seg.Len})
		if !ok {
			continue
		}
		st.BytesScanned.Add(uint64(clipped.Size))
		if ts > since && ts != memory.Clean {
			off := uint32(clipped.Addr - r.Base)
			// Pack contiguous equal-timestamp lines into one
			// update record, as the runtime packs a reply buffer.
			if k := len(out.updates); k > 0 {
				last := &out.updates[k-1]
				if last.TS == ts && last.Range().End() == clipped.Addr {
					last.Data = append(last.Data, data[off:off+clipped.Size]...)
					out.cycles += m.DirtybitReadDirty
					st.DirtyDirtybitsRead.Add(1)
					st.DirtyBytes.Add(uint64(clipped.Size))
					continue
				}
			}
			out.updates = append(out.updates, proto.Update{
				Addr: clipped.Addr,
				TS:   ts,
				Data: append([]byte(nil), data[off:off+clipped.Size]...),
			})
			out.cycles += m.DirtybitReadDirty
			st.DirtyDirtybitsRead.Add(1)
			st.DirtyBytes.Add(uint64(clipped.Size))
		} else {
			out.cycles += m.DirtybitReadClean
			st.CleanDirtybitsRead.Add(1)
		}
	}
	if stamped {
		sum.NoteTime(stamp)
	}
}

func (d *rtDetector) FillAcquire(lk LockView, req *proto.LockAcquire) {
	req.LastTime = rtLockStateOf(lk).lastTime
}

func (d *rtDetector) CollectLock(lk LockView, req *proto.LockAcquire, exclusive bool) (*proto.LockGrant, cost.Cycles) {
	// The transfer is a synchronization event: advance the Lamport clock
	// and stamp all pending lines with the new time.
	t := d.e.Tick()
	if lk.Rebound() {
		// A rebinding (or a recovery import that installed bound data
		// behind the detector's back) invalidates the per-line stamps:
		// lines of the new image may sit under Clean or stale dirtybits,
		// so an incremental scan would skip them and receivers would
		// discard them as old.  Restamp the whole binding at the new
		// time and ship it in full.
		binding := lk.Binding()
		cycles := restampBinding(d.e, binding, t)
		cycles += cost.CopyCost(d.e.Cost().CopyWarmPerKB, int(RangesBytes(binding)))
		lk.ClearRebound()
		rtLockStateOf(lk).lastTime = t
		return &proto.LockGrant{
			Time:    t,
			Updates: readBoundUpdates(d.e, binding, t),
			Full:    true,
		}, cycles
	}
	since := req.LastTime
	if req.BindGen != lk.BindGen() {
		// The requester's consistency timestamp certifies data of an
		// older binding; for the current binding it has no history.
		since = 0
	}
	sc := scanBinding(d.e, lk.Binding(), since, t)
	lk.ClearRebound()
	// The releaser's copy is complete through t; record that as its own
	// consistency point so a later reacquire fetches only newer data.
	rtLockStateOf(lk).lastTime = t
	return &proto.LockGrant{
		Time:    t,
		Updates: sc.updates,
	}, sc.cycles
}

func (d *rtDetector) ApplyLock(lk LockView, g *proto.LockGrant) cost.Cycles {
	cycles := rtApplyUpdates(d.e, g.Updates)
	rtLockStateOf(lk).lastTime = g.Time
	return cycles
}

// rtApplyUpdates installs incoming line updates: data plus dirtybit
// timestamps, each charged at the dirtybit-update rate.  Shared by the rt
// and hybrid schemes.
//
// The dirtybit timestamps make application exactly-once and ordered: a
// line is written only when the incoming stamp is strictly newer than the
// local one, and never when the line carries pending local modifications
// (which were produced after any update the sender could know about).
// This is what lets stale data ride along in a wide grant — e.g. when a
// recycled lock still carries an old binding — without regressing newer
// local state.
func rtApplyUpdates(e Engine, us []proto.Update) cost.Cycles {
	st := e.Stats()
	m := e.Cost()
	inst := e.Inst()
	if tr := e.Trace(); tr != nil && len(us) > 0 {
		tr.Emit(obs.Event{
			Kind: obs.EvApply, Cycles: e.TraceAt(), Node: int32(e.NodeID()),
			Obj: -1, Peer: -1, Bytes: uint64(proto.UpdateBytes(us)),
		})
	}
	var cycles cost.Cycles
	for _, u := range us {
		rg := u.Range()
		segs, err := e.Layout().Segments(rg)
		if err != nil {
			panic(err)
		}
		segBase := uint32(0)
		for _, seg := range segs {
			r := seg.Region
			if r.Class != memory.Shared {
				segBase += seg.Len
				continue
			}
			bits := inst.Dirtybits(r)
			data := inst.Data(r)
			sum := inst.Summary(r)
			first := int(seg.Off) >> r.LineShift
			last := int(seg.Off+seg.Len-1) >> r.LineShift
			installed := false
			for i := first; i <= last; i++ {
				cycles += m.DirtybitUpdate
				st.DirtybitsUpdated.Add(1)
				if bits[i] == memory.DirtyPending || u.TS <= bits[i] {
					continue // local copy is as new or newer
				}
				installed = true
				// Copy the portion of the update covering this line.
				lineRg := r.LineRange(i)
				inter, ok := lineRg.Intersect(memory.Range{Addr: seg.Addr(), Size: seg.Len})
				if !ok {
					continue
				}
				srcOff := segBase + uint32(inter.Addr-seg.Addr())
				dstOff := uint32(inter.Addr - r.Base)
				copy(data[dstOff:dstOff+inter.Size], u.Data[srcOff:srcOff+inter.Size])
				bits[i] = u.TS
			}
			if installed {
				sum.NoteTime(u.TS)
			}
			segBase += seg.Len
		}
	}
	return cycles
}

func (d *rtDetector) CollectBarrier(b BarrierView) ([]proto.Update, cost.Cycles) {
	binding := b.Binding()
	if len(binding) == 0 {
		return nil, 0
	}
	t := d.e.Tick()
	since := t - 1
	if d.eager {
		// Eager stamps carry the write-time clock, so "modified since the
		// last episode" is everything newer than the barrier's last
		// consistency time.
		since = rtBarrierStateOf(b).lastTime
	}
	// Under the lazy scheme only freshly-stamped pending lines can carry
	// timestamp t, and every party already received all earlier episodes'
	// updates at the preceding release, so since = t-1 selects exactly
	// this node's new modifications.
	sc := scanBinding(d.e, binding, since, t)
	return sc.updates, sc.cycles
}

func (d *rtDetector) ApplyBarrier(b BarrierView, rel *proto.BarrierRelease) cost.Cycles {
	cycles := rtApplyUpdates(d.e, rel.Updates)
	rtBarrierStateOf(b).lastTime = rel.Time
	return cycles
}

func (d *rtDetector) NotifyRebind(LockView) {}
