package detect

import (
	"sync"

	"midway/internal/cost"
	"midway/internal/memory"
	"midway/internal/proto"
)

// hybridDetector dispatches write detection per region: fine-grained
// regions use the rt mechanism (dirtybit timestamps), coarse-grained or
// rebind-heavy regions use the vm mechanism (page twins, diffs and
// incarnation histories).  The paper's central result is that neither
// scheme dominates — RT-DSM wins for medium/fine sharing, VM-DSM when
// coarse granularity or lock rebinding amortizes faults — so choosing per
// region captures the better of the two on mixed workloads.
//
// Regions declare their class at allocation (memory.Gran); GranAuto
// regions are classified at the first collection with enough evidence,
// from the measured write density: bulk-dominated stores route to vm,
// scalar-dominated stores to rt, and a region bound to a rebound lock
// routes to vm (the quicksort fast path).  Until classified, an auto
// region is handled by the rt mechanism, which is always correct; the
// transition to vm is handled by a one-time full send (locks) or a final
// dirtybit sweep (barriers).
//
// A lock whose binding spans both classes merges the two collections into
// one grant: the rt-routed ranges are scanned since the requester's last
// timestamp, the vm-routed ranges ship incarnation history since the
// requester's last incarnation, and both halves share the transfer's
// Lamport time — vm incarnation numbers are drawn from the Lamport clock,
// so the grant's update stamps form one coherent timestamp domain even
// when two nodes classify an auto region differently.
type hybridDetector struct {
	e   Engine
	opt Options

	// mu guards the auto-region classification shared between the
	// application's trap path and the handler's collection path.
	mu    sync.Mutex
	modes map[int]regionMode    // frozen decisions for auto regions
	meas  map[int]*writeMeasure // per-region write-density evidence
}

type regionMode uint8

const (
	// modeUndecided: an auto region without enough evidence; handled by
	// the rt mechanism until classified.
	modeUndecided regionMode = iota
	// modeRT routes the region to dirtybit-timestamp detection.
	modeRT
	// modeVM routes the region to twin-diff detection.
	modeVM
)

// writeMeasure accumulates trap-path evidence for one auto region.
type writeMeasure struct {
	stores uint64
	bytes  uint64
}

const (
	// hybridDecideStores is the minimum number of observed stores before
	// an auto region's classification freezes.
	hybridDecideStores = 64
	// hybridBulkBytes is the mean store size at or above which a region's
	// writes count as bulk (dense area writes amortize page faults, so the
	// region routes to vm).
	hybridBulkBytes = 32
)

func init() {
	Register("hybrid", func(e Engine, opt Options) Detector {
		return &hybridDetector{
			e:     e,
			opt:   opt,
			modes: make(map[int]regionMode),
			meas:  make(map[int]*writeMeasure),
		}
	})
}

// hybridObjState is the hybrid scheme's per-object slot: the rt timestamp
// and the vm incarnation bookkeeping side by side, plus the vm-routed
// portion of the binding as of the last collection (a change forces the
// one-time transition send).
type hybridObjState struct {
	lastTime int64
	incState
	accum []proto.Update
	// vmParts is the vm-routed split of the binding at the last
	// collection or application.
	vmParts []memory.Range
	// seenBindGen tracks rebindings observed through grants, so rebound
	// locks' auto regions can be routed to vm on every node.
	seenBindGen uint64
}

func hybridStateOf(o ObjectView) *hybridObjState {
	if s, ok := o.State().(*hybridObjState); ok {
		return s
	}
	s := &hybridObjState{}
	o.SetState(s)
	return s
}

func hybridAccumOf(o ObjectView) *[]proto.Update { return &hybridStateOf(o).accum }

// modeOfTagged returns the mode fixed by an explicit allocation tag, or
// modeUndecided for auto regions.
func modeOfTagged(r *memory.Region) regionMode {
	switch r.Gran {
	case memory.GranFine:
		return modeRT
	case memory.GranCoarse:
		return modeVM
	}
	return modeUndecided
}

// trapMode returns the region's current mode on the store path, recording
// write-density evidence while the region is unclassified.
func (d *hybridDetector) trapMode(r *memory.Region, size uint32) regionMode {
	if m := modeOfTagged(r); m != modeUndecided {
		return m
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.modes[r.Index]; ok {
		return m
	}
	ms := d.meas[r.Index]
	if ms == nil {
		ms = &writeMeasure{}
		d.meas[r.Index] = ms
	}
	ms.stores++
	ms.bytes += uint64(size)
	return modeUndecided
}

// trapModeBatch is trapMode for a batch of count elem-sized stores: the
// same per-store evidence totals are recorded with one lock acquisition.
// If the batch straddles the decision threshold the freeze happens at the
// batch boundary instead of mid-batch, which can only occur under
// concurrent unsynchronized writers — an ordering the simulation already
// treats as nondeterministic.
func (d *hybridDetector) trapModeBatch(r *memory.Region, elem uint32, count int) regionMode {
	if m := modeOfTagged(r); m != modeUndecided {
		return m
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.modes[r.Index]; ok {
		return m
	}
	ms := d.meas[r.Index]
	if ms == nil {
		ms = &writeMeasure{}
		d.meas[r.Index] = ms
	}
	ms.stores += uint64(count)
	ms.bytes += uint64(count) * uint64(elem)
	return modeUndecided
}

// currentMode returns the region's mode without recording evidence or
// freezing a decision (the application side of updates).
func (d *hybridDetector) currentMode(r *memory.Region) regionMode {
	if r.Class == memory.Private {
		return modeRT
	}
	if m := modeOfTagged(r); m != modeUndecided {
		return m
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.modes[r.Index]
}

// classify returns the region's mode for a collection, freezing an auto
// region's decision once enough write-density evidence has accumulated.
func (d *hybridDetector) classify(r *memory.Region) regionMode {
	if r.Class == memory.Private {
		return modeRT
	}
	if m := modeOfTagged(r); m != modeUndecided {
		return m
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.modes[r.Index]; ok {
		return m
	}
	ms := d.meas[r.Index]
	if ms == nil || ms.stores < hybridDecideStores {
		return modeUndecided
	}
	m := modeRT
	if ms.bytes/ms.stores >= hybridBulkBytes {
		m = modeVM
	}
	d.modes[r.Index] = m
	return m
}

// markReboundVM routes the binding's auto regions to vm: rebinding is the
// access pattern the vm scheme's full-send fast path exists for.
func (d *hybridDetector) markReboundVM(binding []memory.Range) {
	for _, rg := range binding {
		segs, err := d.e.Layout().Segments(rg)
		if err != nil {
			panic(err)
		}
		for _, seg := range segs {
			r := seg.Region
			if r.Class != memory.Shared || modeOfTagged(r) != modeUndecided {
				continue
			}
			d.mu.Lock()
			if _, decided := d.modes[r.Index]; !decided {
				d.modes[r.Index] = modeVM
			}
			d.mu.Unlock()
		}
	}
}

// splitBinding partitions the binding at region boundaries into rt-routed
// and vm-routed pieces, classifying auto regions as a side effect.
// Undecided regions stay on the rt side, which is always correct.
func (d *hybridDetector) splitBinding(binding []memory.Range) (rtParts, vmParts []memory.Range) {
	for _, rg := range binding {
		if rg.Size == 0 {
			continue
		}
		segs, err := d.e.Layout().Segments(rg)
		if err != nil {
			panic(err)
		}
		for _, seg := range segs {
			piece := memory.Range{Addr: seg.Addr(), Size: seg.Len}
			if d.classify(seg.Region) == modeVM {
				vmParts = append(vmParts, piece)
			} else {
				rtParts = append(rtParts, piece)
			}
		}
	}
	return rtParts, vmParts
}

func (d *hybridDetector) TrapWrite(a memory.Addr, size uint32, r *memory.Region) {
	if r.Class == memory.Private {
		// The misclassification path is the rt template's (the hybrid
		// instrumentation is rt-style dirtybit code).
		rtTrap(d.e, d.opt.EagerTimestamps, a, size, r)
		return
	}
	if d.trapMode(r, size) == modeVM {
		vmTrap(d.e, a, size, r)
		return
	}
	rtTrap(d.e, d.opt.EagerTimestamps, a, size, r)
}

func (d *hybridDetector) TrapWriteBatch(a memory.Addr, elem uint32, count int, r *memory.Region) {
	if r.Class == memory.Private {
		rtTrapBatch(d.e, d.opt.EagerTimestamps, a, elem, count, r)
		return
	}
	if d.trapModeBatch(r, elem, count) == modeVM {
		vmTrapBatch(d.e, a, elem, count, r)
		return
	}
	rtTrapBatch(d.e, d.opt.EagerTimestamps, a, elem, count, r)
}

func (d *hybridDetector) FillAcquire(lk LockView, req *proto.LockAcquire) {
	s := hybridStateOf(lk)
	req.LastTime = s.lastTime
	req.LastIncarnation = s.lastInc
}

func (d *hybridDetector) CollectLock(lk LockView, req *proto.LockAcquire, exclusive bool) (*proto.LockGrant, cost.Cycles) {
	e := d.e
	t := e.Tick()
	s := hybridStateOf(lk)
	binding := lk.Binding()
	if lk.Rebound() {
		d.markReboundVM(binding)
	}
	s.seenBindGen = lk.BindGen()
	rtParts, vmParts := d.splitBinding(binding)
	vmBytes := RangesBytes(vmParts)

	// RT half: scan the rt-routed ranges since the requester's last
	// consistency time.
	since := req.LastTime
	if req.BindGen != lk.BindGen() {
		since = 0
	}
	var cycles cost.Cycles
	g := &proto.LockGrant{Time: t}
	if len(rtParts) > 0 {
		sc := scanBinding(e, rtParts, since, t)
		g.Updates = sc.updates
		cycles += sc.cycles
	}
	s.lastTime = t

	// VM half: incarnation numbers are drawn from the Lamport clock, so
	// both halves of the grant share one strictly-increasing timestamp
	// domain (ticks only move forward along the ownership chain).
	newInc := uint64(t)
	g.Incarnation = newInc

	if len(vmParts) == 0 {
		// Pure-rt binding: the incarnation machinery carries no data.
		lk.ClearRebound()
		s.vmParts = nil
		s.history = nil
		s.inc, s.lastInc, s.baseInc = newInc, newInc, newInc
		g.Base = newInc
		return g, cycles
	}

	fullSend := lk.Rebound() || !rangesEqual(vmParts, s.vmParts) ||
		req.LastIncarnation < s.baseInc
	if fullSend {
		// Rebinding, a region's transition to vm, or a requester that
		// predates the retained history: ship the vm-routed data in full,
		// without diffing.  Any pending dirtybit state from the region's
		// rt phase is subsumed by the full contents.
		s.inc, s.lastInc, s.baseInc = newInc, newInc, newInc
		s.history = nil
		s.accum = filterUpdates(s.accum, vmParts)
		s.vmParts = vmParts
		lk.ClearRebound()
		g.Updates = append(g.Updates, readBoundUpdates(e, vmParts, int64(newInc))...)
		cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, int(vmBytes))
		g.Base = newInc
		g.Full = true
		return g, cycles
	}

	// Incremental: diff the vm-routed pages, fold the accumulator into a
	// history entry stamped with this transfer's time, and reply with the
	// entries the requester has not seen — or full data when the history
	// would exceed the vm-routed portion's size.
	cycles += diffAndDistribute(e, vmParts, hybridAccumOf)
	if len(s.accum) > 0 {
		ups := s.accum
		s.accum = nil
		for i := range ups {
			ups[i].TS = int64(newInc)
		}
		s.history = append(s.history, proto.HistoryEntry{Incarnation: newInc, Updates: ups})
	}
	s.inc, s.lastInc = newInc, newInc
	entries, total := s.entriesAfter(req.LastIncarnation)
	if uint32(total) > vmBytes {
		s.history = nil
		s.baseInc = newInc
		g.Updates = append(g.Updates, readBoundUpdates(e, vmParts, int64(newInc))...)
		cycles += cost.CopyCost(e.Cost().CopyWarmPerKB, int(vmBytes))
		g.Base = newInc
		g.Full = true
		return g, cycles
	}
	g.Base = s.baseInc
	g.History = entries
	s.trim(vmBytes)
	return g, cycles
}

// applyUpdates installs a batch of incoming updates, dispatching each
// piece by the local region mode: guarded timestamp application for
// rt-routed (and still-undecided) regions, blind write plus twin
// maintenance for vm-routed regions.  The two batches touch disjoint
// addresses (modes partition the address space), so per-batch order is
// preserved where it matters.
func (d *hybridDetector) applyUpdates(us []proto.Update) cost.Cycles {
	var rtUs, vmUs []proto.Update
	for _, u := range us {
		segs, err := d.e.Layout().Segments(u.Range())
		if err != nil {
			panic(err)
		}
		off := uint32(0)
		for _, seg := range segs {
			sub := proto.Update{
				Addr: seg.Addr(),
				TS:   u.TS,
				Data: u.Data[off : off+seg.Len],
			}
			if d.currentMode(seg.Region) == modeVM {
				vmUs = append(vmUs, sub)
			} else {
				rtUs = append(rtUs, sub)
			}
			off += seg.Len
		}
	}
	var cycles cost.Cycles
	if len(rtUs) > 0 {
		cycles += rtApplyUpdates(d.e, rtUs)
	}
	if len(vmUs) > 0 {
		cycles += vmApplyUpdates(d.e, vmUs)
	}
	return cycles
}

func (d *hybridDetector) ApplyLock(lk LockView, g *proto.LockGrant) cost.Cycles {
	s := hybridStateOf(lk)
	if g.BindGen != s.seenBindGen {
		// The lock was rebound elsewhere: adopt the vm routing for its
		// auto regions, as the collecting side did.
		d.markReboundVM(g.Binding)
		s.seenBindGen = g.BindGen
	}
	cycles := d.applyUpdates(g.Updates)
	_, vmParts := d.splitBinding(g.Binding)
	if g.Full {
		s.history = nil
		s.baseInc = g.Base
	} else {
		for i, h := range g.History {
			if i > 0 && h.Incarnation <= g.History[i-1].Incarnation {
				panic("detect: hybrid history out of order")
			}
			cycles += d.applyUpdates(h.Updates)
		}
		s.history = append(s.history, g.History...)
		s.trim(RangesBytes(vmParts))
	}
	s.vmParts = vmParts
	s.inc = g.Incarnation
	s.lastInc = g.Incarnation
	s.lastTime = g.Time
	return cycles
}

func (d *hybridDetector) CollectBarrier(b BarrierView) ([]proto.Update, cost.Cycles) {
	binding := b.Binding()
	if len(binding) == 0 {
		return nil, 0
	}
	e := d.e
	t := e.Tick()
	s := hybridStateOf(b)
	rtParts, vmParts := d.splitBinding(binding)

	// Ranges that transitioned to vm since the last episode still carry
	// this node's modifications in their dirtybits (the region's rt
	// phase); sweep them rt-style one last time.  New writes have been
	// faulting since the transition, so the vm machinery owns them from
	// here on.
	scanParts := rtParts
	for _, rg := range vmParts {
		if !rangesContain(s.vmParts, rg) {
			scanParts = append(scanParts, rg)
		}
	}
	s.vmParts = vmParts

	var ups []proto.Update
	var cycles cost.Cycles
	if len(scanParts) > 0 {
		since := t - 1
		if d.opt.EagerTimestamps {
			since = s.lastTime
		}
		sc := scanBinding(e, scanParts, since, t)
		ups = sc.updates
		cycles += sc.cycles
	}
	if len(vmParts) > 0 {
		cycles += diffAndDistribute(e, vmParts, hybridAccumOf)
		acc := s.accum
		s.accum = nil
		for i := range acc {
			// Stamp with the episode's Lamport time so rt-classifying
			// receivers apply these exactly once.
			acc[i].TS = t
		}
		ups = append(ups, acc...)
	}
	return ups, cycles
}

func (d *hybridDetector) ApplyBarrier(b BarrierView, rel *proto.BarrierRelease) cost.Cycles {
	cycles := d.applyUpdates(rel.Updates)
	hybridStateOf(b).lastTime = rel.Time
	return cycles
}

func (d *hybridDetector) NotifyRebind(lk LockView) {
	// The vm half's transition machinery handles rebinding at the next
	// collection (full send); nothing to invalidate eagerly.
}

// rangesContain reports whether rg appears in the list.  Binding splits
// are deterministic piece-by-piece, so a transitioned piece is detected by
// exact comparison.
func rangesContain(list []memory.Range, rg memory.Range) bool {
	for _, o := range list {
		if o == rg {
			return true
		}
	}
	return false
}
