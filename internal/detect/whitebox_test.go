package detect

import (
	"testing"

	"midway/internal/clock"
	"midway/internal/cost"
	"midway/internal/memory"
	"midway/internal/obs"
	"midway/internal/proto"
	"midway/internal/stats"
	"midway/internal/vmem"
)

// fakeEngine is a minimal Engine over a standalone layout and instance,
// for exercising the detection mechanics without a protocol stack.
type fakeEngine struct {
	layout  *memory.Layout
	inst    *memory.Instance
	vm      *vmem.Table
	st      stats.Node
	m       cost.Model
	lamport clock.Lamport
	cycles  clock.Cycle
	objs    []ObjectView
}

func newFakeEngine(t testing.TB, allocs ...uint32) (*fakeEngine, []memory.Addr) {
	t.Helper()
	e := &fakeEngine{layout: memory.NewLayout(memory.DefaultRegionShift), m: cost.Default()}
	addrs := make([]memory.Addr, len(allocs))
	for i, size := range allocs {
		a, err := e.layout.Alloc("data", size, memory.Shared, 3)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
	}
	e.layout.Freeze()
	e.inst = memory.NewInstance(e.layout)
	return e, addrs
}

func (e *fakeEngine) NodeID() int            { return 0 }
func (e *fakeEngine) Inst() *memory.Instance { return e.inst }
func (e *fakeEngine) Layout() *memory.Layout { return e.layout }
func (e *fakeEngine) Stats() *stats.Node     { return &e.st }
func (e *fakeEngine) Cost() cost.Model       { return e.m }
func (e *fakeEngine) Charge(c cost.Cycles)   { e.cycles.Charge(c) }
func (e *fakeEngine) Tick() int64            { return e.lamport.Tick() }
func (e *fakeEngine) Now() int64             { return e.lamport.Now() }
func (e *fakeEngine) Trace() *obs.Tracer     { return nil }
func (e *fakeEngine) TraceAt() uint64        { return 0 }
func (e *fakeEngine) CycleNow() uint64       { return e.cycles.Now() }

func (e *fakeEngine) VM() *vmem.Table {
	if e.vm == nil {
		e.vm = vmem.NewTable(e.inst)
	}
	return e.vm
}

func (e *fakeEngine) PristineBound(binding []memory.Range) []byte {
	return make([]byte, RangesBytes(binding))
}

func (e *fakeEngine) ForEachObject(fn func(ObjectView)) {
	for _, o := range e.objs {
		fn(o)
	}
}

// fakeLock is a standalone LockView.
type fakeLock struct {
	name    string
	binding []memory.Range
	state   any
	rebound bool
	bindGen uint64
}

func (l *fakeLock) Name() string            { return l.name }
func (l *fakeLock) Binding() []memory.Range { return l.binding }
func (l *fakeLock) State() any              { return l.state }
func (l *fakeLock) SetState(s any)          { l.state = s }
func (l *fakeLock) Rebound() bool           { return l.rebound }
func (l *fakeLock) ClearRebound()           { l.rebound = false }
func (l *fakeLock) BindGen() uint64         { return l.bindGen }

func TestReadBoundUpdates(t *testing.T) {
	e, addrs := newFakeEngine(t, 4096)
	addr := addrs[0]
	e.inst.WriteU64(addr+16, 0xAABB)
	ups := readBoundUpdates(e, []memory.Range{
		{Addr: addr, Size: 32},
		{Addr: addr + 64, Size: 0}, // empty ranges are skipped
	}, 7)
	if len(ups) != 1 {
		t.Fatalf("%d updates", len(ups))
	}
	if ups[0].TS != 7 || len(ups[0].Data) != 32 {
		t.Errorf("update = %+v", ups[0])
	}
	if ups[0].Data[16] != 0xBB {
		t.Errorf("data not read from instance: %x", ups[0].Data[16])
	}
}

// setLine writes a dirtybit directly while keeping the region summary
// coherent, standing in for the trap path in whitebox tests.
func setLine(e *fakeEngine, r *memory.Region, i int, ts int64) {
	bits := e.inst.Dirtybits(r)
	sum := e.inst.Summary(r)
	wasPending := bits[i] == memory.DirtyPending
	isPending := ts == memory.DirtyPending
	if isPending && !wasPending {
		sum.Pending.Add(1)
	} else if !isPending && wasPending {
		sum.Pending.Add(-1)
	}
	bits[i] = ts
	if !isPending {
		sum.NoteTime(ts)
	}
}

// TestScanBindingStampsPending checks the lazy-timestamp mechanics at the
// dirtybit level: pending lines get the transfer's stamp and are shipped;
// already-stamped lines older than the requester's time are skipped.
func TestScanBindingStampsPending(t *testing.T) {
	e, addrs := newFakeEngine(t, 4096)
	addr := addrs[0]
	r := e.layout.RegionFor(addr)
	bits := e.inst.Dirtybits(r)

	// Three lines: one pending, one stamped at time 5, one clean.
	setLine(e, r, r.LineIndex(addr), memory.DirtyPending)
	setLine(e, r, r.LineIndex(addr+8), 5)
	binding := []memory.Range{{Addr: addr, Size: 24}}

	// Requester last saw time 5: only the pending line ships.
	sc := scanBinding(e, binding, 5, 9)
	if len(sc.updates) != 1 {
		t.Fatalf("%d updates, want 1", len(sc.updates))
	}
	if sc.updates[0].Addr != addr || sc.updates[0].TS != 9 {
		t.Errorf("update = %+v", sc.updates[0])
	}
	if bits[r.LineIndex(addr)] != 9 {
		t.Errorf("pending line not stamped: %d", bits[r.LineIndex(addr)])
	}

	// Requester last saw time 2: the stamped line (5 > 2) ships too, and
	// contiguity does not merge across differing timestamps.
	setLine(e, r, r.LineIndex(addr), memory.DirtyPending)
	sc = scanBinding(e, binding, 2, 11)
	if len(sc.updates) != 2 {
		t.Fatalf("%d updates, want 2 (differing stamps must not merge)", len(sc.updates))
	}
}

// TestScanBindingCoalesces: contiguous lines with equal stamps pack into
// one update record.
func TestScanBindingCoalesces(t *testing.T) {
	e, addrs := newFakeEngine(t, 4096)
	addr := addrs[0]
	r := e.layout.RegionFor(addr)
	for i := 0; i < 8; i++ {
		setLine(e, r, r.LineIndex(addr+memory.Addr(8*i)), memory.DirtyPending)
	}
	sc := scanBinding(e, []memory.Range{{Addr: addr, Size: 64}}, 0, 3)
	if len(sc.updates) != 1 {
		t.Fatalf("8 contiguous pending lines produced %d updates, want 1", len(sc.updates))
	}
	if len(sc.updates[0].Data) != 64 {
		t.Errorf("coalesced update carries %d bytes, want 64", len(sc.updates[0].Data))
	}
}

// TestVMTrimHistory: the owner's retained history honors the full-data
// bound and advances baseInc past dropped entries.
func TestVMTrimHistory(t *testing.T) {
	mk := func(inc uint64, bytes int) proto.HistoryEntry {
		return proto.HistoryEntry{Incarnation: inc,
			Updates: []proto.Update{{Addr: 0, TS: int64(inc), Data: make([]byte, bytes)}}}
	}
	s := &incState{history: []proto.HistoryEntry{mk(1, 40), mk(2, 40), mk(3, 40)}}
	s.trim(64)
	if len(s.history) != 1 || s.history[0].Incarnation != 3 {
		t.Fatalf("history after trim: %d entries", len(s.history))
	}
	if s.baseInc != 2 {
		t.Errorf("baseInc = %d, want 2 (the newest dropped incarnation)", s.baseInc)
	}
}

// TestVMDistributeAcrossObjects: a page diff's runs land in the
// accumulator of every object whose binding overlaps them — the false
// sharing case of two locks on one page.
func TestVMDistributeAcrossObjects(t *testing.T) {
	e, addrs := newFakeEngine(t, 4096)
	addr := addrs[0]
	lockA := &fakeLock{name: "A", binding: []memory.Range{{Addr: addr, Size: 64}}}
	lockB := &fakeLock{name: "B", binding: []memory.Range{{Addr: addr + 64, Size: 64}}}
	e.objs = []ObjectView{lockA, lockB}

	// Dirty both locks' data on the same page.
	r := e.layout.RegionFor(addr)
	vmTrap(e, addr, 8, r)
	e.inst.WriteU64(addr, 1)
	vmTrap(e, addr+64, 8, r)
	e.inst.WriteU64(addr+64, 2)

	// Collect for lock A only: the diff of the shared page must deposit
	// B's modification into B's accumulator rather than dropping it.
	diffAndDistribute(e, lockA.binding, vmAccumOf)
	a := vmStateOf(lockA)
	b := vmStateOf(lockB)
	if len(a.accum) != 1 || a.accum[0].Addr != addr {
		t.Errorf("lock A accumulated %+v", a.accum)
	}
	if len(b.accum) != 1 || b.accum[0].Addr != addr+64 {
		t.Errorf("lock B accumulated %+v (diff reuse lost the false-sharing data)", b.accum)
	}
	// The page is clean afterwards.
	if e.VM().DirtyPageCount() != 0 {
		t.Error("page not cleaned after diff")
	}
}
