package transport

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"midway/internal/obs"
	"midway/internal/proto"
)

// FaultConfig parameterizes deterministic fault injection.  Probabilities
// are in [0, 1); the zero value injects nothing.
type FaultConfig struct {
	// Seed seeds the per-pair PRNG streams.  Runs with the same seed make
	// the same drop/duplicate/reorder decisions for each directed node
	// pair's message sequence.
	Seed int64
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Dup is the probability a message is delivered twice.
	Dup float64
	// Reorder is the probability a message is held back by ReorderDelay,
	// letting later messages overtake it.
	Reorder float64
	// Delay is the maximum uniform random extra latency added to every
	// message (0 disables).
	Delay time.Duration
	// ReorderDelay is how long a reordered message is held back.  Zero
	// selects 3ms.
	ReorderDelay time.Duration
	// Crash selects a node whose endpoints are severed mid-run: once the
	// trigger below fires, every message from or to it is dropped, as if
	// the process died.  Armed only when a trigger is set.
	Crash int
	// CrashAfterMsgs triggers the crash once the node has sent this many
	// protocol messages (health traffic is not counted).  Zero disables.
	CrashAfterMsgs int
	// CrashAtCycles triggers the crash at the first protocol message the
	// node sends with a simulated send time at or past this cycle count.
	// Zero disables.
	CrashAtCycles uint64
	// PartitionNodes selects the minority side of an injected network
	// partition: once the trigger below fires, every message between a
	// listed node and the rest of the system is dropped — in both
	// directions, heartbeats included — until the partition heals.
	PartitionNodes []int
	// PartitionAfterMsgs triggers the partition once this many protocol
	// messages have crossed the network (health traffic is not counted).
	// Zero disables.
	PartitionAfterMsgs int
	// PartitionAtCycles triggers the partition at the first protocol
	// message sent with a simulated send time at or past this cycle
	// count.  Zero disables.
	PartitionAtCycles uint64
	// HealAfter heals the injected partition this long (wall clock) after
	// it triggered, restoring connectivity and firing the OnHeal hook.
	// Zero means the partition never heals.
	HealAfter time.Duration
}

// Active reports whether any fault injection is configured.
func (c FaultConfig) Active() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Reorder > 0 || c.Delay > 0 || c.CrashArmed() || c.PartitionArmed()
}

// CrashArmed reports whether a crash trigger is configured.
func (c FaultConfig) CrashArmed() bool {
	return c.CrashAfterMsgs > 0 || c.CrashAtCycles > 0
}

// PartitionArmed reports whether a partition trigger is configured.
func (c FaultConfig) PartitionArmed() bool {
	return len(c.PartitionNodes) > 0 && (c.PartitionAfterMsgs > 0 || c.PartitionAtCycles > 0)
}

// String renders the configuration in ParseFaultSpec's format.
func (c FaultConfig) String() string {
	parts := []string{}
	if c.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", c.Drop))
	}
	if c.Dup > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", c.Dup))
	}
	if c.Reorder > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%g", c.Reorder))
	}
	if c.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%s", c.Delay))
	}
	if c.CrashArmed() {
		parts = append(parts, fmt.Sprintf("crash=%d", c.Crash))
		if c.CrashAfterMsgs > 0 {
			parts = append(parts, fmt.Sprintf("crashafter=%d", c.CrashAfterMsgs))
		}
		if c.CrashAtCycles > 0 {
			parts = append(parts, fmt.Sprintf("crashat=%d", c.CrashAtCycles))
		}
	}
	if c.PartitionArmed() {
		ids := make([]string, len(c.PartitionNodes))
		for i, n := range c.PartitionNodes {
			ids[i] = strconv.Itoa(n)
		}
		parts = append(parts, "part="+strings.Join(ids, "+"))
		if c.PartitionAfterMsgs > 0 {
			parts = append(parts, fmt.Sprintf("partafter=%d", c.PartitionAfterMsgs))
		}
		if c.PartitionAtCycles > 0 {
			parts = append(parts, fmt.Sprintf("partat=%d", c.PartitionAtCycles))
		}
		if c.HealAfter > 0 {
			parts = append(parts, fmt.Sprintf("heal=%s", c.HealAfter))
		}
	}
	parts = append(parts, fmt.Sprintf("seed=%d", c.Seed))
	return strings.Join(parts, ",")
}

// ParseFaultSpec parses a comma-separated fault specification like
//
//	drop=0.05,dup=0.02,reorder=0.1,delay=1ms,seed=7
//	crash=1,crashafter=40,seed=7
//	part=3,partafter=60,heal=80ms,seed=7
//
// Unknown keys, probabilities outside [0, 1) and malformed values are
// errors; crash= requires one of crashafter= (message count) or crashat=
// (simulated cycles), and part= (a +-separated minority node list)
// likewise requires partafter= or partat=.  An empty spec returns the
// zero (inactive) config.
func ParseFaultSpec(spec string) (FaultConfig, error) {
	var c FaultConfig
	crashNode := -1
	if spec == "" {
		return c, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return c, fmt.Errorf("transport: fault spec %q: field %q is not key=value", spec, field)
		}
		switch key {
		case "drop", "dup", "reorder":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p >= 1 {
				return c, fmt.Errorf("transport: fault spec: %s=%q is not a probability in [0,1)", key, val)
			}
			switch key {
			case "drop":
				c.Drop = p
			case "dup":
				c.Dup = p
			case "reorder":
				c.Reorder = p
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return c, fmt.Errorf("transport: fault spec: delay=%q is not a duration", val)
			}
			c.Delay = d
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return c, fmt.Errorf("transport: fault spec: seed=%q is not an integer", val)
			}
			c.Seed = s
		case "crash":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return c, fmt.Errorf("transport: fault spec: crash=%q is not a node id", val)
			}
			crashNode = n
		case "crashafter":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return c, fmt.Errorf("transport: fault spec: crashafter=%q is not a positive message count", val)
			}
			c.CrashAfterMsgs = n
		case "crashat":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return c, fmt.Errorf("transport: fault spec: crashat=%q is not a positive cycle count", val)
			}
			c.CrashAtCycles = n
		case "part":
			seen := map[int]bool{}
			for _, field := range strings.Split(val, "+") {
				n, err := strconv.Atoi(field)
				if err != nil || n < 0 {
					return c, fmt.Errorf("transport: fault spec: part=%q is not a +-separated node id list", val)
				}
				if seen[n] {
					return c, fmt.Errorf("transport: fault spec: part=%q lists node %d twice", val, n)
				}
				seen[n] = true
				c.PartitionNodes = append(c.PartitionNodes, n)
			}
		case "partafter":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return c, fmt.Errorf("transport: fault spec: partafter=%q is not a positive message count", val)
			}
			c.PartitionAfterMsgs = n
		case "partat":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return c, fmt.Errorf("transport: fault spec: partat=%q is not a positive cycle count", val)
			}
			c.PartitionAtCycles = n
		case "heal":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return c, fmt.Errorf("transport: fault spec: heal=%q is not a positive duration", val)
			}
			c.HealAfter = d
		default:
			return c, fmt.Errorf("transport: fault spec: unknown key %q (want drop, dup, reorder, delay, crash, crashafter, crashat, part, partafter, partat, heal, seed)", key)
		}
	}
	if crashNode >= 0 && !c.CrashArmed() {
		return c, fmt.Errorf("transport: fault spec: crash=%d needs crashafter= or crashat=", crashNode)
	}
	if crashNode < 0 && c.CrashArmed() {
		return c, fmt.Errorf("transport: fault spec: crashafter/crashat need crash=<node>")
	}
	if crashNode >= 0 {
		c.Crash = crashNode
	}
	if len(c.PartitionNodes) > 0 && !c.PartitionArmed() {
		return c, fmt.Errorf("transport: fault spec: part= needs partafter= or partat=")
	}
	if len(c.PartitionNodes) == 0 && (c.PartitionAfterMsgs > 0 || c.PartitionAtCycles > 0) {
		return c, fmt.Errorf("transport: fault spec: partafter/partat need part=<nodes>")
	}
	if (c.HealAfter > 0) && len(c.PartitionNodes) == 0 {
		return c, fmt.Errorf("transport: fault spec: heal= needs part=<nodes>")
	}
	return c, nil
}

// FaultNetwork wraps a Network and injects faults on the send path:
// message drops, duplicates, random delays, reorders, and full partitions
// between node pairs.  Fate decisions come from a per-directed-pair seeded
// PRNG, so the decision sequence for each pair's message stream is
// reproducible.  Self-addressed messages (used for shutdown) are never
// faulted, and faults apply only between distinct nodes.
//
// FaultNetwork models a lossy datagram network; the protocol cannot run
// over it directly.  Stack a Reliable wrapper on top.
type FaultNetwork struct {
	inner Network
	cfg   FaultConfig
	pairs []*faultPair // directed pair state, indexed from*n+to

	mu          sync.Mutex
	partitioned map[[2]int]bool
	crashSent   int          // protocol messages the crash-armed node has sent
	dead        map[int]bool // nodes whose endpoints are severed
	partSent    int          // protocol messages counted toward the partition trigger
	partActive  bool         // the armed partition is currently installed
	partDone    bool         // the armed partition has fired (and possibly healed)
	healTimer   *time.Timer  // pending heal of the armed partition
	onHeal      func()       // heal notification hook

	// closeMu orders delayed-delivery registration against Close: Send
	// registers with wg under the read lock, Close flips closing under the
	// write lock before waiting, so wg.Add never races wg.Wait.
	closeMu   sync.RWMutex
	closing   bool
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	// trace, when non-nil, receives one structured event per injected
	// fault, stamped with the faulted message's simulated send time.
	trace *obs.Tracer
}

// SetTrace attaches a tracer receiving one event per injected fault.
// Call before the system runs.
func (f *FaultNetwork) SetTrace(tr *obs.Tracer) { f.trace = tr }

// emitFault traces one injected fault against the message it hit.
func (f *FaultNetwork) emitFault(kind string, m Message) {
	if tr := f.trace; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvNetFault, Cycles: m.Time, Node: int32(m.From),
			Obj: -1, Peer: int32(m.To), Name: kind,
		})
	}
}

// healthKind reports whether k is liveness machinery rather than protocol
// traffic.  Health messages are still dropped once a node is dead or a
// partition cut is installed (that is how death and partitions are
// observed), but they never advance a crash or partition trigger: their
// timing is real time, and counting them would make the trigger point
// depend on wall-clock scheduling.
func healthKind(k proto.Kind) bool {
	return k == proto.KindHeartbeat || k == proto.KindCrashNotice ||
		k == proto.KindPartitionFence || k == proto.KindPartitionHeal
}

// faultPair is the PRNG stream for one directed node pair.
type faultPair struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewFaultNetwork wraps inner with fault injection.
func NewFaultNetwork(inner Network, cfg FaultConfig) *FaultNetwork {
	if cfg.ReorderDelay == 0 {
		cfg.ReorderDelay = 3 * time.Millisecond
	}
	n := inner.Nodes()
	f := &FaultNetwork{
		inner:       inner,
		cfg:         cfg,
		pairs:       make([]*faultPair, n*n),
		partitioned: make(map[[2]int]bool),
		dead:        make(map[int]bool),
		closed:      make(chan struct{}),
	}
	for i := range f.pairs {
		// Distinct deterministic stream per directed pair.
		f.pairs[i] = &faultPair{rng: rand.New(rand.NewSource(cfg.Seed<<20 ^ int64(i+1)))}
	}
	return f
}

// Nodes returns the node count.
func (f *FaultNetwork) Nodes() int { return f.inner.Nodes() }

// Err returns the underlying network's first recorded failure.
func (f *FaultNetwork) Err() error { return f.inner.Err() }

// Conn returns node i's fault-injecting endpoint.
func (f *FaultNetwork) Conn(i int) Conn { return &faultConn{id: i, net: f, inner: f.inner.Conn(i)} }

// Partition severs both directions between nodes a and b: every message
// between them is dropped until Heal.
func (f *FaultNetwork) Partition(a, b int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitioned[[2]int{a, b}] = true
	f.partitioned[[2]int{b, a}] = true
}

// Heal restores connectivity between nodes a and b.
func (f *FaultNetwork) Heal(a, b int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.partitioned, [2]int{a, b})
	delete(f.partitioned, [2]int{b, a})
}

// OnHeal registers a hook fired (once, on its own goroutine) when the
// armed partition heals.  The stack above uses it to reset retransmission
// backoff and re-arm heartbeat observation, so recovery starts on the
// first post-heal timer tick instead of a maxed-out backoff.  Call before
// the system runs.
func (f *FaultNetwork) OnHeal(fn func()) {
	f.mu.Lock()
	f.onHeal = fn
	f.mu.Unlock()
}

// triggerPartition installs the armed partition: every pair crossing the
// minority/rest cut is severed.  Caller holds f.mu.
func (f *FaultNetwork) triggerPartition() {
	minority := make(map[int]bool, len(f.cfg.PartitionNodes))
	for _, k := range f.cfg.PartitionNodes {
		minority[k] = true
	}
	n := f.inner.Nodes()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && minority[a] != minority[b] {
				f.partitioned[[2]int{a, b}] = true
			}
		}
	}
	f.partActive, f.partDone = true, true
	if f.cfg.HealAfter > 0 {
		f.healTimer = time.AfterFunc(f.cfg.HealAfter, f.healPartition)
	}
}

// healPartition removes the armed partition's cuts and fires the heal
// hook.
func (f *FaultNetwork) healPartition() {
	f.mu.Lock()
	if !f.partActive {
		f.mu.Unlock()
		return
	}
	f.partActive = false
	minority := make(map[int]bool, len(f.cfg.PartitionNodes))
	for _, k := range f.cfg.PartitionNodes {
		minority[k] = true
	}
	for pair := range f.partitioned {
		if minority[pair[0]] != minority[pair[1]] {
			delete(f.partitioned, pair)
		}
	}
	fn := f.onHeal
	f.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Kill severs node k's endpoints immediately: every subsequent message
// from or to it is dropped.  Crashes injected by a CrashAfterMsgs or
// CrashAtCycles trigger go through the same state.
func (f *FaultNetwork) Kill(k int) {
	f.mu.Lock()
	f.dead[k] = true
	f.mu.Unlock()
}

// Crashed reports whether node k's endpoints have been severed.
func (f *FaultNetwork) Crashed(k int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead[k]
}

// Close aborts pending delayed deliveries and closes the inner network.
func (f *FaultNetwork) Close() error {
	f.closeOnce.Do(func() {
		f.closeMu.Lock()
		f.closing = true
		f.closeMu.Unlock()
		close(f.closed)
		f.mu.Lock()
		if f.healTimer != nil {
			f.healTimer.Stop()
		}
		f.mu.Unlock()
	})
	f.wg.Wait()
	return f.inner.Close()
}

// faultConn is one node's fault-injecting endpoint.
type faultConn struct {
	id    int
	net   *FaultNetwork
	inner Conn
}

func (c *faultConn) Recv() (Message, error) { return c.inner.Recv() }
func (c *faultConn) Close() error           { return c.inner.Close() }

func (c *faultConn) Send(m Message) error {
	f := c.net
	if m.From == m.To {
		// Self-sends (shutdown) bypass injection entirely, even on a
		// crashed node: the local handler must stay stoppable.
		return c.inner.Send(m)
	}
	f.mu.Lock()
	if f.cfg.CrashArmed() && m.From == f.cfg.Crash && !f.dead[m.From] && !healthKind(m.Kind) {
		if f.cfg.CrashAtCycles > 0 && m.Time >= f.cfg.CrashAtCycles {
			f.dead[m.From] = true // died before reaching this simulated time
		} else if f.cfg.CrashAfterMsgs > 0 {
			f.crashSent++
			if f.crashSent > f.cfg.CrashAfterMsgs {
				f.dead[m.From] = true
			}
		}
	}
	if f.cfg.PartitionArmed() && !f.partDone && !healthKind(m.Kind) {
		if f.cfg.PartitionAtCycles > 0 && m.Time >= f.cfg.PartitionAtCycles {
			f.triggerPartition()
		} else if f.cfg.PartitionAfterMsgs > 0 {
			f.partSent++
			if f.partSent > f.cfg.PartitionAfterMsgs {
				f.triggerPartition()
			}
		}
	}
	dead := f.dead[m.From] || f.dead[m.To]
	cut := f.partitioned[[2]int{m.From, m.To}]
	f.mu.Unlock()
	if dead {
		f.emitFault("crash", m)
		return nil // severed endpoint: the process is gone
	}
	if cut {
		f.emitFault("partition", m)
		return nil // silently dropped, as a partition would
	}

	p := f.pairs[m.From*f.inner.Nodes()+m.To]
	p.mu.Lock()
	drop := p.rng.Float64() < f.cfg.Drop
	dup := p.rng.Float64() < f.cfg.Dup
	reorder := p.rng.Float64() < f.cfg.Reorder
	var delay time.Duration
	if f.cfg.Delay > 0 {
		delay = time.Duration(p.rng.Int63n(int64(f.cfg.Delay) + 1))
	}
	p.mu.Unlock()

	if drop {
		f.emitFault("drop", m)
		return nil
	}
	if dup {
		f.emitFault("dup", m)
	}
	if reorder {
		f.emitFault("reorder", m)
		delay += f.cfg.ReorderDelay
	} else if delay > 0 {
		f.emitFault("delay", m)
	}
	copies := 1
	if dup {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		if delay == 0 {
			if err := c.inner.Send(m); err != nil {
				return err
			}
			continue
		}
		f.closeMu.RLock()
		if f.closing {
			f.closeMu.RUnlock()
			return nil // shutting down: this layer is lossy by design
		}
		f.wg.Add(1)
		f.closeMu.RUnlock()
		go func(d time.Duration) {
			defer f.wg.Done()
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				_ = c.inner.Send(m) // best effort: this layer is lossy by design
			case <-f.closed:
			}
		}(delay + time.Duration(i)*time.Millisecond)
	}
	return nil
}
