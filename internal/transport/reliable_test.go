package transport

import (
	"strings"
	"sync"
	"testing"
	"time"

	"midway/internal/proto"
)

// TestReliableCleanNetwork checks that the reliable wrapper over a
// fault-free channel network preserves the base delivery contract.
func TestReliableCleanNetwork(t *testing.T) {
	net := NewReliableNetwork(NewChannelNetwork(4), ReliableOptions{})
	defer net.Close()
	exerciseNetwork(t, net)
	if err := net.Err(); err != nil {
		t.Errorf("clean run recorded error: %v", err)
	}
}

// TestReliableOverFaults is the core exactly-once guarantee: heavy drop,
// duplication, reordering and delay below the reliable layer must still
// yield in-order, exactly-once per-pair delivery above it.
func TestReliableOverFaults(t *testing.T) {
	const (
		nodes = 3
		msgs  = 120
	)
	fc := FaultConfig{Seed: 7, Drop: 0.25, Dup: 0.2, Reorder: 0.3, Delay: 500 * time.Microsecond}
	net := NewReliableNetwork(NewFaultNetwork(NewChannelNetwork(nodes), fc),
		ReliableOptions{RetransmitInitial: 2 * time.Millisecond, GiveUp: 200})
	defer net.Close()

	var wg sync.WaitGroup
	for to := 0; to < nodes; to++ {
		wg.Add(1)
		go func(to int) {
			defer wg.Done()
			conn := net.Conn(to)
			next := make([]uint64, nodes)
			for i := 0; i < msgs*(nodes-1); i++ {
				m, err := conn.Recv()
				if err != nil {
					t.Errorf("node %d recv: %v", to, err)
					return
				}
				if m.Time != next[m.From] {
					t.Errorf("node %d: from %d got seq %d, want %d", to, m.From, m.Time, next[m.From])
					return
				}
				next[m.From]++
			}
		}(to)
	}
	for from := 0; from < nodes; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			conn := net.Conn(from)
			for seq := 0; seq < msgs; seq++ {
				for to := 0; to < nodes; to++ {
					if to == from {
						continue
					}
					if err := conn.Send(Message{From: from, To: to, Kind: proto.KindLockAcquire, Time: uint64(seq)}); err != nil {
						t.Errorf("send %d->%d: %v", from, to, err)
						return
					}
				}
			}
		}(from)
	}
	wg.Wait()
	if err := net.Err(); err != nil {
		t.Errorf("recovered run recorded error: %v", err)
	}
}

// TestReliableGiveUp partitions a pair permanently and checks that the
// sender's endpoint fails with a diagnostic instead of retrying forever.
func TestReliableGiveUp(t *testing.T) {
	fault := NewFaultNetwork(NewChannelNetwork(2), FaultConfig{})
	fault.Partition(0, 1)
	net := NewReliableNetwork(fault, ReliableOptions{
		RetransmitInitial: time.Millisecond,
		RetransmitMax:     2 * time.Millisecond,
		GiveUp:            5,
	})
	defer net.Close()
	conn := net.Conn(0)
	if err := conn.Send(Message{From: 0, To: 1, Kind: proto.KindLockAcquire}); err != nil {
		t.Fatal(err)
	}
	_, err := conn.Recv()
	if err == nil {
		t.Fatal("Recv returned without error despite unreachable peer")
	}
	for _, want := range []string{"node 0", "peer 1", "unreachable", "LockAcquire"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic %q missing %q", err, want)
		}
	}
	if net.Err() == nil {
		t.Error("network Err() is nil after give-up")
	}
}

// TestReliableResetPeerRejoin is the departed-then-rejoined regression:
// after a node id leaves (its peers call ForgetPeer) and the same id
// rejoins, both directions must restart from sequence zero.  Without
// ResetPeer the survivor's sendSeq toward the id keeps counting and the
// rejoined endpoint's stale recvSeq discards the survivor's next message
// as a duplicate — the exchange below then times out.
func TestReliableResetPeerRejoin(t *testing.T) {
	net := NewReliableNetwork(NewChannelNetwork(2), ReliableOptions{
		RetransmitInitial: time.Millisecond,
		RetransmitMax:     2 * time.Millisecond,
		GiveUp:            10,
	})
	defer net.Close()
	c0, c1 := net.Conn(0), net.Conn(1)

	exchange := func(tag string, seq uint64) {
		t.Helper()
		if err := c0.Send(Message{From: 0, To: 1, Kind: proto.KindLockAcquire, Time: seq}); err != nil {
			t.Fatalf("%s: send: %v", tag, err)
		}
		done := make(chan Message, 1)
		go func() {
			m, err := c1.Recv()
			if err != nil {
				t.Errorf("%s: recv: %v", tag, err)
			}
			done <- m
		}()
		select {
		case m := <-done:
			if m.Time != seq {
				t.Fatalf("%s: got message stamped %d, want %d", tag, m.Time, seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: delivery timed out (stale seq/ACK state)", tag)
		}
	}

	exchange("before departure", 1)

	// Node 1 departs: peers forget it, then the same id rejoins with a
	// fresh sequencing history on its side (simulated by resetting it).
	net.ForgetPeer(1)
	net.ResetPeer(1)

	// The survivor's first message to the rejoined id must carry seq 1
	// again and be accepted, not discarded as a duplicate of the old
	// conversation.
	exchange("after rejoin", 2)

	c0.(*reliableConn).mu.Lock()
	sentSeq := c0.(*reliableConn).sendSeq[1]
	c0.(*reliableConn).mu.Unlock()
	if sentSeq != 1 {
		t.Errorf("survivor sendSeq toward rejoined peer = %d, want 1 (fresh window)", sentSeq)
	}
	if err := net.Err(); err != nil {
		t.Errorf("rejoin exchange recorded error: %v", err)
	}
}

// TestReliableSelfSendPassthrough checks that self-addressed messages
// (shutdown) bypass sequencing and still arrive.
func TestReliableSelfSendPassthrough(t *testing.T) {
	net := NewReliableNetwork(NewChannelNetwork(2), ReliableOptions{})
	defer net.Close()
	c := net.Conn(0)
	if err := c.Send(Message{From: 0, To: 0, Kind: proto.KindShutdown, Payload: []byte("bye")}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil || m.Kind != proto.KindShutdown || string(m.Payload) != "bye" {
		t.Fatalf("self send: %v, %+v", err, m)
	}
}
