package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"midway/internal/proto"
)

// TCPNetwork connects nodes through a full mesh of TCP connections.  Every
// node listens on its own address; node i dials every node j > i, and the
// two directions of each socket carry the two directions of traffic.
//
// A TCPNetwork can host all nodes in one process (NewLoopbackTCPNetwork,
// used by tests and the single-binary runner) or a single node of a
// multi-process deployment (DialTCPNode, used by cmd/midway-run's
// distributed mode).
type TCPNetwork struct {
	conns []*tcpConn
	mu    sync.Mutex
	close []io.Closer
	done  bool
}

// maxFrame bounds a single message frame; larger frames indicate
// corruption.
const maxFrame = 64 << 20

// writeFrame serializes a message onto w.
func writeFrame(w *bufio.Writer, m Message) error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(headerSize-4+len(m.Payload)))
	binary.LittleEndian.PutUint16(hdr[4:], uint16(m.From))
	binary.LittleEndian.PutUint16(hdr[6:], uint16(m.To))
	hdr[8] = byte(m.Kind)
	binary.LittleEndian.PutUint64(hdr[12:], m.Time)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(m.Payload); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame parses one message from r.
func readFrame(r *bufio.Reader) (Message, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n < headerSize-4 || n > maxFrame {
		return Message{}, fmt.Errorf("transport: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, err
	}
	m := Message{
		From:    int(binary.LittleEndian.Uint16(body[0:])),
		To:      int(binary.LittleEndian.Uint16(body[2:])),
		Kind:    proto.Kind(body[4]),
		Time:    binary.LittleEndian.Uint64(body[8:16]),
		Payload: body[16:],
	}
	return m, nil
}

// tcpConn is one node's endpoint in a TCP mesh.
type tcpConn struct {
	id    int
	peers []*peer // indexed by node id; peers[id] is nil (loopback shortcut)
	inbox chan Message
	self  chan Message // loopback messages bypass the sockets

	closeOnce sync.Once
	closed    chan struct{}
}

// peer is one socket to a remote node.
type peer struct {
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
}

func (c *tcpConn) Send(m Message) error {
	if m.From != c.id {
		return fmt.Errorf("transport: node %d sending as %d", c.id, m.From)
	}
	if m.To == c.id {
		select {
		case c.inbox <- m:
			return nil
		case <-c.closed:
			return ErrClosed
		}
	}
	if m.To < 0 || m.To >= len(c.peers) || c.peers[m.To] == nil {
		return fmt.Errorf("transport: no route from %d to %d", c.id, m.To)
	}
	p := c.peers[m.To]
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := writeFrame(p.w, m); err != nil {
		return fmt.Errorf("transport: send %d->%d: %w", c.id, m.To, err)
	}
	return nil
}

func (c *tcpConn) Recv() (Message, error) {
	select {
	case m, ok := <-c.inbox:
		if !ok {
			return Message{}, ErrClosed
		}
		return m, nil
	case <-c.closed:
		return Message{}, ErrClosed
	}
}

func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// readLoop pumps messages from one socket into the node's inbox.
func (c *tcpConn) readLoop(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		m, err := readFrame(r)
		if err != nil {
			return // socket closed or corrupt; Recv unblocks via c.closed
		}
		select {
		case c.inbox <- m:
		case <-c.closed:
			return
		}
	}
}

// Nodes returns the node count.
func (n *TCPNetwork) Nodes() int { return len(n.conns) }

// Conn returns node i's endpoint.  In a multi-process deployment only the
// local node's endpoint is non-nil.
func (n *TCPNetwork) Conn(i int) Conn {
	if n.conns[i] == nil {
		panic(fmt.Sprintf("transport: node %d is not hosted by this process", i))
	}
	return n.conns[i]
}

// Close shuts down every hosted endpoint and socket.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.done {
		return nil
	}
	n.done = true
	for _, c := range n.conns {
		if c != nil {
			c.Close()
		}
	}
	for _, cl := range n.close {
		cl.Close()
	}
	return nil
}

// NewLoopbackTCPNetwork creates an n-node mesh over OS loopback sockets,
// all hosted in the calling process.  It exists so tests and single-binary
// runs exercise the genuine wire path.
func NewLoopbackTCPNetwork(n int) (*TCPNetwork, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: invalid node count %d", n)
	}
	net1 := &TCPNetwork{conns: make([]*tcpConn, n)}
	for i := range net1.conns {
		net1.conns[i] = &tcpConn{
			id:     i,
			peers:  make([]*peer, n),
			inbox:  make(chan Message, inboxCap),
			closed: make(chan struct{}),
		}
	}
	// Pairwise pipes: for each i<j, one socket pair.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b, err := socketPair()
			if err != nil {
				net1.Close()
				return nil, err
			}
			net1.close = append(net1.close, a, b)
			net1.conns[i].peers[j] = &peer{conn: a, w: bufio.NewWriterSize(a, 64<<10)}
			net1.conns[j].peers[i] = &peer{conn: b, w: bufio.NewWriterSize(b, 64<<10)}
			go net1.conns[i].readLoop(a)
			go net1.conns[j].readLoop(b)
		}
	}
	return net1, nil
}

// socketPair returns two connected TCP sockets over loopback.
func socketPair() (net.Conn, net.Conn, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("transport: listen: %w", err)
	}
	defer l.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := l.Accept()
		ch <- accepted{c, err}
	}()
	a, err := net.DialTimeout("tcp", l.Addr().String(), 5*time.Second)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: dial: %w", err)
	}
	acc := <-ch
	if acc.err != nil {
		a.Close()
		return nil, nil, fmt.Errorf("transport: accept: %w", acc.err)
	}
	return a, acc.c, nil
}

// DialTCPNode joins a multi-process mesh as node id of n nodes.  addrs
// lists every node's listen address (host:port), indexed by node id.  The
// function listens on addrs[id], dials every lower-numbered node, accepts
// connections from every higher-numbered node, and returns once the mesh
// is complete.  Peers identify themselves with a 4-byte hello frame.
func DialTCPNode(id, n int, addrs []string) (*TCPNetwork, error) {
	if len(addrs) != n {
		return nil, fmt.Errorf("transport: %d addresses for %d nodes", len(addrs), n)
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("transport: node id %d out of range", id)
	}
	c := &tcpConn{
		id:     id,
		peers:  make([]*peer, n),
		inbox:  make(chan Message, inboxCap),
		closed: make(chan struct{}),
	}
	tn := &TCPNetwork{conns: make([]*tcpConn, n)}
	tn.conns[id] = c

	l, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: node %d listen on %s: %w", id, addrs[id], err)
	}
	tn.close = append(tn.close, l)

	// Accept from higher-numbered peers.
	expected := n - 1 - id
	type hello struct {
		peerID int
		conn   net.Conn
		err    error
	}
	acceptCh := make(chan hello, expected)
	if expected > 0 {
		go func() {
			for k := 0; k < expected; k++ {
				conn, err := l.Accept()
				if err != nil {
					acceptCh <- hello{err: err}
					return
				}
				var idb [4]byte
				if _, err := io.ReadFull(conn, idb[:]); err != nil {
					acceptCh <- hello{err: err}
					return
				}
				acceptCh <- hello{peerID: int(binary.LittleEndian.Uint32(idb[:])), conn: conn}
			}
		}()
	}

	// Dial lower-numbered peers, retrying while they come up.
	for j := 0; j < id; j++ {
		var conn net.Conn
		deadline := time.Now().Add(30 * time.Second)
		for {
			conn, err = net.DialTimeout("tcp", addrs[j], 2*time.Second)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				tn.Close()
				return nil, fmt.Errorf("transport: node %d dial node %d at %s: %w", id, j, addrs[j], err)
			}
			time.Sleep(100 * time.Millisecond)
		}
		var idb [4]byte
		binary.LittleEndian.PutUint32(idb[:], uint32(id))
		if _, err := conn.Write(idb[:]); err != nil {
			tn.Close()
			return nil, fmt.Errorf("transport: node %d hello to %d: %w", id, j, err)
		}
		tn.close = append(tn.close, conn)
		c.peers[j] = &peer{conn: conn, w: bufio.NewWriterSize(conn, 64<<10)}
		go c.readLoop(conn)
	}

	for k := 0; k < expected; k++ {
		h := <-acceptCh
		if h.err != nil {
			tn.Close()
			return nil, fmt.Errorf("transport: node %d accept: %w", id, h.err)
		}
		if h.peerID <= id || h.peerID >= n || c.peers[h.peerID] != nil {
			tn.Close()
			return nil, fmt.Errorf("transport: node %d bad hello from peer %d", id, h.peerID)
		}
		tn.close = append(tn.close, h.conn)
		c.peers[h.peerID] = &peer{conn: h.conn, w: bufio.NewWriterSize(h.conn, 64<<10)}
		go c.readLoop(h.conn)
	}
	return tn, nil
}
