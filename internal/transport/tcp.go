package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"midway/internal/proto"
)

// TCPNetwork connects nodes through a full mesh of TCP connections.  Every
// node listens on its own address; node i dials every node j < i, and the
// two directions of each socket carry the two directions of traffic.
//
// A TCPNetwork can host all nodes in one process (NewLoopbackTCPNetwork,
// used by tests and the single-binary runner) or a single node of a
// multi-process deployment (DialTCPNode, used by cmd/midway-run's
// distributed mode).
//
// Hardening: every frame carries a CRC-32C trailer, writes run under a
// deadline, and hello exchanges time out instead of hanging.  In a
// DialTCPNode mesh a socket that breaks mid-run is re-established with
// exponential backoff (the higher-numbered node re-dials; the lower's
// listener keeps accepting), so a Reliable wrapper above can retransmit
// across the outage.  An unrecoverable break marks the endpoint broken:
// Recv returns a diagnostic error and Err exposes it to the system.
type TCPNetwork struct {
	conns []*tcpConn
	mu    sync.Mutex
	close []io.Closer
	done  bool

	errMu  sync.Mutex
	errVal error
}

// MeshOptions tunes a DialTCPNode mesh.  The zero value selects the
// defaults noted on each field.
type MeshOptions struct {
	// HelloTimeout bounds mesh formation: how long to wait for each
	// lower-numbered peer to answer our dial, and for all higher-numbered
	// peers to dial in (default 30s).
	HelloTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 10s).
	WriteTimeout time.Duration
	// RedialTimeout bounds mid-run reconnection after a socket breaks
	// (default 15s); exhausting it marks the endpoint broken.
	RedialTimeout time.Duration
}

func (o MeshOptions) withDefaults() MeshOptions {
	if o.HelloTimeout == 0 {
		o.HelloTimeout = 30 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.RedialTimeout == 0 {
		o.RedialTimeout = 15 * time.Second
	}
	return o
}

// maxFrame bounds a single message frame; larger frames indicate
// corruption.
const maxFrame = 64 << 20

// writeFrame serializes a message onto p's socket under the write
// deadline, appending a CRC-32C of the frame body.  Caller holds p.mu.
func (p *peer) writeFrame(m Message, timeout time.Duration) error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(headerSize-4+len(m.Payload)))
	binary.LittleEndian.PutUint16(hdr[4:], uint16(m.From))
	binary.LittleEndian.PutUint16(hdr[6:], uint16(m.To))
	hdr[8] = byte(m.Kind)
	binary.LittleEndian.PutUint16(hdr[10:], m.Epoch)
	binary.LittleEndian.PutUint64(hdr[12:], m.Time)
	var sum [4]byte
	crc := proto.Checksum(hdr[4:])
	crc = proto.ChecksumAdd(crc, m.Payload)
	binary.LittleEndian.PutUint32(sum[:], crc)
	if timeout > 0 {
		p.conn.SetWriteDeadline(time.Now().Add(timeout))
		defer p.conn.SetWriteDeadline(time.Time{})
	}
	if _, err := p.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := p.w.Write(m.Payload); err != nil {
		return err
	}
	if _, err := p.w.Write(sum[:]); err != nil {
		return err
	}
	return p.w.Flush()
}

// readFrame parses one message from r, verifying the CRC-32C trailer.
func readFrame(r *bufio.Reader) (Message, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n < headerSize-4 || n > maxFrame {
		return Message{}, fmt.Errorf("transport: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, err
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return Message{}, err
	}
	if got, want := proto.Checksum(body), binary.LittleEndian.Uint32(sum[:]); got != want {
		return Message{}, fmt.Errorf("transport: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	m := Message{
		From:    int(binary.LittleEndian.Uint16(body[0:])),
		To:      int(binary.LittleEndian.Uint16(body[2:])),
		Kind:    proto.Kind(body[4]),
		Epoch:   binary.LittleEndian.Uint16(body[6:8]),
		Time:    binary.LittleEndian.Uint64(body[8:16]),
		Payload: body[16:],
	}
	return m, nil
}

// tcpConn is one node's endpoint in a TCP mesh.
type tcpConn struct {
	id    int
	owner *TCPNetwork
	peers []*peer // indexed by node id; peers[id] is nil (loopback shortcut)
	inbox chan Message

	closeOnce sync.Once
	closed    chan struct{}

	// broken is closed (with brokenErr set first) when the endpoint hits
	// an unrecoverable transport failure.
	brokenOnce sync.Once
	broken     chan struct{}
	brokenErr  error

	// mesh is non-nil in a DialTCPNode deployment, where broken sockets
	// can be re-established.
	mesh *meshState
}

// meshState is the reconnection context of a DialTCPNode endpoint.
type meshState struct {
	addrs  []string
	opts   MeshOptions
	joined chan int // handleHello reports each installed higher peer
}

// peer is one socket to a remote node.
type peer struct {
	mu   sync.Mutex
	conn net.Conn // nil while disconnected (awaiting redial)
	w    *bufio.Writer
	// redialing guards against concurrent redial loops.
	redialing bool
}

// install points the peer at a new socket, closing any previous one.
func (p *peer) install(conn net.Conn) {
	p.mu.Lock()
	if p.conn != nil {
		p.conn.Close()
	}
	p.conn = conn
	p.w = bufio.NewWriterSize(conn, 64<<10)
	p.redialing = false
	p.mu.Unlock()
}

func (c *tcpConn) Send(m Message) error {
	if m.From != c.id {
		return fmt.Errorf("transport: node %d sending as %d", c.id, m.From)
	}
	if m.To == c.id {
		select {
		case c.inbox <- m:
			return nil
		case <-c.closed:
			return ErrClosed
		}
	}
	if m.To < 0 || m.To >= len(c.peers) || c.peers[m.To] == nil {
		return fmt.Errorf("transport: no route from %d to %d", c.id, m.To)
	}
	p := c.peers[m.To]
	p.mu.Lock()
	if p.conn == nil {
		p.mu.Unlock()
		return fmt.Errorf("transport: send %d->%d: peer disconnected", c.id, m.To)
	}
	conn := p.conn
	err := p.writeFrame(m, c.writeTimeout())
	p.mu.Unlock()
	if err != nil {
		err = fmt.Errorf("transport: send %d->%d: %w", c.id, m.To, err)
		c.socketBroken(m.To, conn, err)
		return err
	}
	return nil
}

// CopiesPayload reports that remote sends copy the payload into the
// socket before Send returns; self-sends deliver the Message by reference
// through the inbox and so retain the slice.
func (c *tcpConn) CopiesPayload(to int) bool { return to != c.id }

// writeTimeout returns the per-frame write deadline.
func (c *tcpConn) writeTimeout() time.Duration {
	if c.mesh != nil {
		return c.mesh.opts.WriteTimeout
	}
	return 10 * time.Second
}

func (c *tcpConn) Recv() (Message, error) {
	// Prefer draining delivered messages over reporting a failure.
	select {
	case m := <-c.inbox:
		return m, nil
	default:
	}
	select {
	case m := <-c.inbox:
		return m, nil
	case <-c.closed:
		return Message{}, ErrClosed
	case <-c.broken:
		return Message{}, c.brokenErr
	}
}

func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// fail marks the endpoint unrecoverably broken.
func (c *tcpConn) fail(err error) {
	c.brokenOnce.Do(func() {
		c.brokenErr = err
		c.owner.recordErr(err)
		close(c.broken)
	})
}

// shuttingDown reports whether the endpoint or network is closing, in
// which case socket errors are expected and not failures.
func (c *tcpConn) shuttingDown() bool {
	select {
	case <-c.closed:
		return true
	default:
	}
	c.owner.mu.Lock()
	done := c.owner.done
	c.owner.mu.Unlock()
	return done
}

// socketBroken handles a read or write failure on the socket to peerID.
// In a mesh the dialer side re-dials with backoff and the acceptor side
// waits for the peer to dial back in; elsewhere the endpoint fails.
func (c *tcpConn) socketBroken(peerID int, conn net.Conn, cause error) {
	if c.shuttingDown() {
		return
	}
	p := c.peers[peerID]
	p.mu.Lock()
	if p.conn != conn {
		// Already replaced by a reconnect; nothing to do.
		p.mu.Unlock()
		return
	}
	p.conn.Close()
	p.conn = nil
	p.w = nil
	startRedial := false
	if c.mesh != nil && c.id > peerID && !p.redialing {
		p.redialing = true
		startRedial = true
	}
	p.mu.Unlock()

	switch {
	case startRedial:
		go c.redialLoop(peerID, cause)
	case c.mesh == nil:
		// Loopback sockets cannot be re-established.
		c.fail(cause)
	}
	// Acceptor side of a mesh: wait for the dialer to reconnect.  If it
	// never does, sends keep failing and the layer above reports it.
}

// redialLoop re-establishes the socket to a lower-numbered peer.
func (c *tcpConn) redialLoop(peerID int, cause error) {
	opts := c.mesh.opts
	deadline := time.Now().Add(opts.RedialTimeout)
	backoff := 50 * time.Millisecond
	for {
		if c.shuttingDown() {
			return
		}
		conn, err := net.DialTimeout("tcp", c.mesh.addrs[peerID], 2*time.Second)
		if err == nil {
			if err = writeHello(conn, c.id, opts.WriteTimeout); err == nil {
				c.owner.addCloser(conn)
				c.peers[peerID].install(conn)
				go c.readLoop(conn, peerID)
				return
			}
			conn.Close()
		}
		if time.Now().After(deadline) {
			c.fail(fmt.Errorf("transport: node %d: reconnect to peer %d failed after %s (%v; originally %v)",
				c.id, peerID, opts.RedialTimeout, err, cause))
			return
		}
		select {
		case <-c.closed:
			return
		case <-time.After(backoff):
		}
		backoff = min(backoff*2, 2*time.Second)
	}
}

// writeHello identifies this node on a fresh socket.
func writeHello(conn net.Conn, id int, timeout time.Duration) error {
	var idb [4]byte
	binary.LittleEndian.PutUint32(idb[:], uint32(id))
	if timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	_, err := conn.Write(idb[:])
	return err
}

// readLoop pumps messages from one socket into the node's inbox.
func (c *tcpConn) readLoop(conn net.Conn, peerID int) {
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		m, err := readFrame(r)
		if err != nil {
			if !c.shuttingDown() {
				c.socketBroken(peerID, conn,
					fmt.Errorf("transport: node %d: read from peer %d: %w", c.id, peerID, err))
			}
			return
		}
		select {
		case c.inbox <- m:
		case <-c.closed:
			return
		}
	}
}

// Nodes returns the node count.
func (n *TCPNetwork) Nodes() int { return len(n.conns) }

// Conn returns node i's endpoint.  In a multi-process deployment only the
// local node's endpoint is non-nil.
func (n *TCPNetwork) Conn(i int) Conn {
	if n.conns[i] == nil {
		panic(fmt.Sprintf("transport: node %d is not hosted by this process", i))
	}
	return n.conns[i]
}

// Err returns the first unrecoverable transport failure, or nil.
func (n *TCPNetwork) Err() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return n.errVal
}

// recordErr keeps the first failure for Err.
func (n *TCPNetwork) recordErr(err error) {
	n.errMu.Lock()
	if n.errVal == nil {
		n.errVal = err
	}
	n.errMu.Unlock()
}

// addCloser registers a socket for closing on shutdown.  If the network
// is already closed the socket is closed immediately.
func (n *TCPNetwork) addCloser(cl io.Closer) {
	n.mu.Lock()
	if n.done {
		n.mu.Unlock()
		cl.Close()
		return
	}
	n.close = append(n.close, cl)
	n.mu.Unlock()
}

// Close shuts down every hosted endpoint and socket.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	if n.done {
		n.mu.Unlock()
		return nil
	}
	n.done = true
	closers := n.close
	n.mu.Unlock()
	for _, c := range n.conns {
		if c != nil {
			c.Close()
		}
	}
	for _, cl := range closers {
		cl.Close()
	}
	return nil
}

// NewLoopbackTCPNetwork creates an n-node mesh over OS loopback sockets,
// all hosted in the calling process.  It exists so tests and single-binary
// runs exercise the genuine wire path.
func NewLoopbackTCPNetwork(n int) (*TCPNetwork, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: invalid node count %d", n)
	}
	net1 := &TCPNetwork{conns: make([]*tcpConn, n)}
	for i := range net1.conns {
		net1.conns[i] = &tcpConn{
			id:     i,
			owner:  net1,
			peers:  make([]*peer, n),
			inbox:  make(chan Message, inboxCap),
			closed: make(chan struct{}),
			broken: make(chan struct{}),
		}
	}
	// Pairwise pipes: for each i<j, one socket pair.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b, err := socketPair()
			if err != nil {
				net1.Close()
				return nil, err
			}
			net1.close = append(net1.close, a, b)
			net1.conns[i].peers[j] = &peer{conn: a, w: bufio.NewWriterSize(a, 64<<10)}
			net1.conns[j].peers[i] = &peer{conn: b, w: bufio.NewWriterSize(b, 64<<10)}
			go net1.conns[i].readLoop(a, j)
			go net1.conns[j].readLoop(b, i)
		}
	}
	return net1, nil
}

// socketPair returns two connected TCP sockets over loopback.
func socketPair() (net.Conn, net.Conn, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("transport: listen: %w", err)
	}
	defer l.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := l.Accept()
		ch <- accepted{c, err}
	}()
	a, err := net.DialTimeout("tcp", l.Addr().String(), 5*time.Second)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: dial: %w", err)
	}
	acc := <-ch
	if acc.err != nil {
		a.Close()
		return nil, nil, fmt.Errorf("transport: accept: %w", acc.err)
	}
	return a, acc.c, nil
}

// DialTCPNode joins a multi-process mesh as node id of n nodes with
// default MeshOptions.  addrs lists every node's listen address
// (host:port), indexed by node id.
func DialTCPNode(id, n int, addrs []string) (*TCPNetwork, error) {
	return DialTCPNodeOpts(id, n, addrs, MeshOptions{})
}

// DialTCPNodeOpts joins a multi-process mesh as node id of n nodes.  The
// function listens on addrs[id], dials every lower-numbered node, accepts
// connections from every higher-numbered node, and returns once the mesh
// is complete or opts.HelloTimeout elapses.  Peers identify themselves
// with a 4-byte hello frame.  The listener stays open after the mesh
// forms so peers whose sockets break mid-run can reconnect.
func DialTCPNodeOpts(id, n int, addrs []string, opts MeshOptions) (*TCPNetwork, error) {
	if len(addrs) != n {
		return nil, fmt.Errorf("transport: %d addresses for %d nodes", len(addrs), n)
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("transport: node id %d out of range", id)
	}
	opts = opts.withDefaults()
	c := &tcpConn{
		id:     id,
		peers:  make([]*peer, n),
		inbox:  make(chan Message, inboxCap),
		closed: make(chan struct{}),
		broken: make(chan struct{}),
		mesh: &meshState{
			addrs:  addrs,
			opts:   opts,
			joined: make(chan int, n),
		},
	}
	for j := 0; j < n; j++ {
		if j != id {
			c.peers[j] = &peer{}
		}
	}
	tn := &TCPNetwork{conns: make([]*tcpConn, n)}
	tn.conns[id] = c
	c.owner = tn

	l, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: node %d listen on %s: %w", id, addrs[id], err)
	}
	tn.close = append(tn.close, l)

	// Accept hellos from higher-numbered peers — during mesh formation and,
	// after it, from peers reconnecting a broken socket.  The loop exits
	// when Close closes the listener.
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go c.handleHello(conn)
		}
	}()

	// Dial lower-numbered peers, retrying while they come up.
	for j := 0; j < id; j++ {
		var conn net.Conn
		deadline := time.Now().Add(opts.HelloTimeout)
		for {
			conn, err = net.DialTimeout("tcp", addrs[j], 2*time.Second)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				tn.Close()
				return nil, fmt.Errorf("transport: node %d dial node %d at %s: %w", id, j, addrs[j], err)
			}
			time.Sleep(100 * time.Millisecond)
		}
		if err := writeHello(conn, id, opts.WriteTimeout); err != nil {
			conn.Close()
			tn.Close()
			return nil, fmt.Errorf("transport: node %d hello to %d: %w", id, j, err)
		}
		tn.addCloser(conn)
		c.peers[j].install(conn)
		go c.readLoop(conn, j)
	}

	// Wait for every higher-numbered peer to dial in, under the deadline
	// (a peer that never starts must fail startup, not hang it).
	expected := n - 1 - id
	joined := make(map[int]bool, expected)
	timeout := time.NewTimer(opts.HelloTimeout)
	defer timeout.Stop()
	for len(joined) < expected {
		select {
		case peerID := <-c.mesh.joined:
			joined[peerID] = true
		case <-timeout.C:
			tn.Close()
			missing := []int{}
			for j := id + 1; j < n; j++ {
				if !joined[j] {
					missing = append(missing, j)
				}
			}
			return nil, fmt.Errorf("transport: node %d: timed out after %s waiting for peer(s) %v to connect",
				id, opts.HelloTimeout, missing)
		}
	}
	return tn, nil
}

// handleHello validates a freshly accepted socket and installs it as the
// peer's connection (replacing a broken one on reconnect).
func (c *tcpConn) handleHello(conn net.Conn) {
	opts := c.mesh.opts
	var idb [4]byte
	conn.SetReadDeadline(time.Now().Add(opts.HelloTimeout))
	if _, err := io.ReadFull(conn, idb[:]); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	peerID := int(binary.LittleEndian.Uint32(idb[:]))
	if peerID <= c.id || peerID >= len(c.peers) {
		conn.Close()
		c.owner.recordErr(fmt.Errorf("transport: node %d: bad hello from peer %d", c.id, peerID))
		return
	}
	c.owner.addCloser(conn)
	c.peers[peerID].install(conn)
	go c.readLoop(conn, peerID)
	select {
	case c.mesh.joined <- peerID:
	default:
	}
}
