package transport

import (
	"testing"
	"time"

	"midway/internal/proto"
)

func TestParseFaultSpecCrash(t *testing.T) {
	c, err := ParseFaultSpec("crash=2,crashafter=10,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if c.Crash != 2 || c.CrashAfterMsgs != 10 {
		t.Errorf("parsed %+v", c)
	}
	if !c.CrashArmed() || !c.Active() {
		t.Error("armed crash reports unarmed or inactive")
	}
	c, err = ParseFaultSpec("crash=1,crashat=5000")
	if err != nil {
		t.Fatal(err)
	}
	if c.Crash != 1 || c.CrashAtCycles != 5000 || !c.CrashArmed() {
		t.Errorf("parsed %+v", c)
	}
	if c := (FaultConfig{Drop: 0.1}); c.CrashArmed() {
		t.Error("drop-only config reports an armed crash")
	}
	for _, bad := range []string{"crash=x", "crashafter=x", "crashafter=0", "crashat=x"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestFaultNetworkCrashAfterMsgs checks the seeded crash trigger: health
// traffic never advances the countdown, the Nth protocol send severs the
// node, and from then on traffic both from and to it disappears.
func TestFaultNetworkCrashAfterMsgs(t *testing.T) {
	f := NewFaultNetwork(NewChannelNetwork(2), FaultConfig{Crash: 1, CrashAfterMsgs: 2})
	defer f.Close()
	victim, peer := f.Conn(1), f.Conn(0)

	// A heartbeat before the countdown runs out must pass and not count.
	steps := []struct {
		kind proto.Kind
		time uint64
	}{
		{proto.KindHeartbeat, 0},
		{proto.KindLockAcquire, 1},
		{proto.KindLockAcquire, 2},
		{proto.KindLockAcquire, 3}, // third protocol message: severed
		{proto.KindHeartbeat, 4},   // dead node beats no more
	}
	for _, s := range steps {
		if err := victim.Send(Message{From: 1, To: 0, Kind: s.kind, Time: s.time}); err != nil {
			t.Fatal(err)
		}
	}
	if err := peer.Send(Message{From: 0, To: 0, Kind: proto.KindShutdown}); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for {
		m, err := peer.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind == proto.KindShutdown {
			break
		}
		got = append(got, m.Time)
	}
	want := []uint64{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
	if !f.Crashed(1) || f.Crashed(0) {
		t.Errorf("Crashed: node1=%v node0=%v, want true/false", f.Crashed(1), f.Crashed(0))
	}

	// Traffic toward the corpse is severed too.
	if err := peer.Send(Message{From: 0, To: 1, Kind: proto.KindLockGrant, Time: 9}); err != nil {
		t.Fatal(err)
	}
	if err := victim.Send(Message{From: 1, To: 1, Kind: proto.KindShutdown}); err != nil {
		t.Fatal(err)
	}
	m, err := victim.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != proto.KindShutdown {
		t.Errorf("message reached a crashed node: %+v", m)
	}
}

func TestParseReliableSpec(t *testing.T) {
	o, err := ParseReliableSpec("initial=10ms,max=200ms,giveup=10,jitter=0.2,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if o.RetransmitInitial != 10*time.Millisecond || o.RetransmitMax != 200*time.Millisecond ||
		o.GiveUp != 10 || o.Jitter != 0.2 || o.Seed != 7 {
		t.Errorf("parsed %+v", o)
	}
	if o, err := ParseReliableSpec(""); err != nil || o.GiveUp != 0 {
		t.Errorf("empty spec: %v, %+v", err, o)
	}
	for _, bad := range []string{
		"initial", "initial=x", "giveup=0", "giveup=x", "jitter=2", "jitter=-0.1", "seed=x", "mystery=1",
	} {
		if _, err := ParseReliableSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestReliableForgetPeer checks that dropping a dead peer's unacked
// traffic stops the retransmission machinery from giving up on it: the
// forgetting endpoint stays healthy while an identical endpoint that keeps
// retransmitting into the void fails.
func TestReliableForgetPeer(t *testing.T) {
	opts := ReliableOptions{
		RetransmitInitial: 2 * time.Millisecond,
		RetransmitMax:     5 * time.Millisecond,
		GiveUp:            4,
	}
	send := func(forget bool) error {
		r := NewReliableNetwork(NewChannelNetwork(2), opts)
		defer r.Close()
		// Node 1's endpoint is never created: like a crashed process, it
		// acknowledges nothing.
		c := r.Conn(0)
		if err := c.Send(Message{From: 0, To: 1, Kind: proto.KindLockAcquire}); err != nil {
			return err
		}
		if forget {
			r.ForgetPeer(1)
		}
		deadline := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(deadline) {
			if err := r.Err(); err != nil {
				return err
			}
			time.Sleep(5 * time.Millisecond)
		}
		return nil
	}
	if err := send(false); err == nil {
		t.Error("unacked peer never drove the layer past give-up")
	}
	if err := send(true); err != nil {
		t.Errorf("give-up fired despite ForgetPeer: %v", err)
	}
}
