package transport

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"midway/internal/obs"
	"midway/internal/proto"
)

// ReliableOptions tunes the retransmission machinery.  The zero value
// selects the defaults noted on each field.
type ReliableOptions struct {
	// RetransmitInitial is the first retransmission timeout (default 20ms);
	// it doubles on every retry up to RetransmitMax (default 500ms).
	RetransmitInitial time.Duration
	RetransmitMax     time.Duration
	// GiveUp is the number of retransmissions of a single envelope after
	// which the peer is declared unreachable and the connection fails
	// (default 25 — about 12 seconds of backoff).
	GiveUp int
	// Jitter spreads each retransmission deadline uniformly over
	// [backoff*(1-Jitter), backoff*(1+Jitter)], desynchronizing the
	// retransmit storm after a partition heals.  Must be in [0, 1);
	// zero disables (pure exponential backoff).
	Jitter float64
	// Seed seeds the per-endpoint jitter PRNG, so a given endpoint draws
	// the same jitter sequence across runs.
	Seed int64
	// Trace, when non-nil, receives a structured event per retransmission.
	// Retransmissions are host-timing artifacts, so these events carry the
	// envelope's original simulated send time, not a new timestamp.
	Trace *obs.Tracer
}

func (o ReliableOptions) withDefaults() ReliableOptions {
	if o.RetransmitInitial == 0 {
		o.RetransmitInitial = 20 * time.Millisecond
	}
	if o.RetransmitMax == 0 {
		o.RetransmitMax = 500 * time.Millisecond
	}
	if o.GiveUp == 0 {
		o.GiveUp = 25
	}
	return o
}

// ParseReliableSpec parses a comma-separated reliability specification like
//
//	initial=10ms,max=200ms,giveup=10,jitter=0.2,seed=7
//
// Every key is optional; unset keys keep the package defaults.  An empty
// spec returns the zero options (all defaults).
func ParseReliableSpec(spec string) (ReliableOptions, error) {
	var o ReliableOptions
	if spec == "" {
		return o, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return o, fmt.Errorf("transport: reliable spec %q: field %q is not key=value", spec, field)
		}
		switch key {
		case "initial", "max":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return o, fmt.Errorf("transport: reliable spec: %s=%q is not a positive duration", key, val)
			}
			if key == "initial" {
				o.RetransmitInitial = d
			} else {
				o.RetransmitMax = d
			}
		case "giveup":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return o, fmt.Errorf("transport: reliable spec: giveup=%q is not a positive count", val)
			}
			o.GiveUp = n
		case "jitter":
			j, err := strconv.ParseFloat(val, 64)
			if err != nil || j < 0 || j >= 1 {
				return o, fmt.Errorf("transport: reliable spec: jitter=%q is not a fraction in [0,1)", val)
			}
			o.Jitter = j
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return o, fmt.Errorf("transport: reliable spec: seed=%q is not an integer", val)
			}
			o.Seed = s
		default:
			return o, fmt.Errorf("transport: reliable spec: unknown key %q (want initial, max, giveup, jitter, seed)", key)
		}
	}
	return o, nil
}

// ReliableNetwork wraps a Network so that the protocol above it sees
// exactly-once, in-order delivery per directed node pair, even when the
// network below drops, duplicates, delays or reorders messages.
//
// Every inter-node message is wrapped in a proto.ReliableData envelope
// carrying a per-pair sequence number.  Receivers deliver envelopes in
// sequence order (holding back early arrivals, discarding duplicates) and
// return cumulative proto.ReliableAck acknowledgements; senders retransmit
// unacknowledged envelopes on a real-time exponential-backoff timer.  A
// retransmitted envelope carries the original simulated send time, so the
// cost model charges each logical message exactly once, on first delivery.
// Self-addressed messages bypass the machinery.
//
// If an envelope remains unacknowledged after GiveUp retransmissions the
// peer is declared unreachable: the sender's endpoint fails, Recv returns
// a diagnostic error, and Err exposes it to the system.
type ReliableNetwork struct {
	inner Network
	opts  ReliableOptions
	conns []*reliableConn

	errMu  sync.Mutex
	errVal error
}

// NewReliableNetwork wraps inner with the reliable-delivery layer.
func NewReliableNetwork(inner Network, opts ReliableOptions) *ReliableNetwork {
	r := &ReliableNetwork{inner: inner, opts: opts.withDefaults()}
	r.conns = make([]*reliableConn, inner.Nodes())
	return r
}

// Nodes returns the node count.
func (r *ReliableNetwork) Nodes() int { return r.inner.Nodes() }

// Err returns the first failure recorded by this layer or the one below.
func (r *ReliableNetwork) Err() error {
	r.errMu.Lock()
	err := r.errVal
	r.errMu.Unlock()
	if err != nil {
		return err
	}
	return r.inner.Err()
}

// recordErr keeps the first failure for Err.
func (r *ReliableNetwork) recordErr(err error) {
	r.errMu.Lock()
	if r.errVal == nil {
		r.errVal = err
	}
	r.errMu.Unlock()
}

// Conn returns node i's reliable endpoint.  Endpoints are created once and
// cached: the sequencing state must be shared by every caller.
func (r *ReliableNetwork) Conn(i int) Conn {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	if r.conns[i] == nil {
		r.conns[i] = newReliableConn(r, i)
	}
	return r.conns[i]
}

// ForgetPeer discards all delivery state toward node k on every endpoint:
// in-flight envelopes stop retransmitting (so a declared-dead peer cannot
// drive a healthy endpoint past GiveUp) and held-back early arrivals from
// it are dropped.  Call when k has been declared crashed.
func (r *ReliableNetwork) ForgetPeer(k int) {
	r.errMu.Lock()
	conns := append([]*reliableConn(nil), r.conns...)
	r.errMu.Unlock()
	for _, c := range conns {
		if c == nil || c.id == k {
			continue
		}
		c.mu.Lock()
		if k >= 0 && k < len(c.unacked) {
			c.unacked[k] = make(map[uint64]*unackedMsg)
			c.heldBack[k] = make(map[uint64]Message)
		}
		c.mu.Unlock()
	}
}

// ResetBackoff makes every unacknowledged envelope on every endpoint
// immediately eligible for retransmission with its exponential backoff
// rewound to RetransmitInitial.  Call on a partition-heal notification:
// envelopes that spent the outage retransmitting have backed off toward
// RetransmitMax, and without the reset the first post-heal retransmit —
// and therefore recovery — can stall for up to the give-up window even
// though the path is healthy again.  Attempt counts are preserved so a
// peer that is genuinely gone still hits GiveUp.
func (r *ReliableNetwork) ResetBackoff() {
	r.errMu.Lock()
	conns := append([]*reliableConn(nil), r.conns...)
	r.errMu.Unlock()
	now := time.Now()
	for _, c := range conns {
		if c == nil {
			continue
		}
		c.mu.Lock()
		for peer := range c.unacked {
			for _, u := range c.unacked[peer] {
				u.backoff = c.net.opts.RetransmitInitial
				u.nextSend = now
			}
		}
		c.mu.Unlock()
	}
}

// ResetPeer erases the sequencing relationship with node k in both
// directions, on every endpoint including k's own.  ForgetPeer alone is
// not enough for a node id that departs and later rejoins: the survivors'
// sendSeq/recvSeq counters toward k and k's whole per-peer state survive
// it, so the rejoined node's first envelope (seq 1) would be discarded as
// a stale duplicate and every conversation with it would deadlock in the
// retransmit window.  After ResetPeer both sides restart from sequence
// zero, as if the pair had never spoken.
func (r *ReliableNetwork) ResetPeer(k int) {
	r.errMu.Lock()
	conns := append([]*reliableConn(nil), r.conns...)
	r.errMu.Unlock()
	for _, c := range conns {
		if c == nil {
			continue
		}
		c.mu.Lock()
		if c.id == k {
			// The departed endpoint itself: drop every per-peer counter and
			// window, so a rejoin starts fresh toward all peers.
			for i := range c.sendSeq {
				c.sendSeq[i], c.recvSeq[i] = 0, 0
				c.unacked[i] = make(map[uint64]*unackedMsg)
				c.heldBack[i] = make(map[uint64]Message)
			}
		} else if k >= 0 && k < len(c.sendSeq) {
			c.sendSeq[k], c.recvSeq[k] = 0, 0
			c.unacked[k] = make(map[uint64]*unackedMsg)
			c.heldBack[k] = make(map[uint64]Message)
		}
		c.mu.Unlock()
	}
}

// Close shuts down every endpoint and the inner network.
func (r *ReliableNetwork) Close() error {
	r.errMu.Lock()
	conns := append([]*reliableConn(nil), r.conns...)
	r.errMu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
	return r.inner.Close()
}

// unackedMsg is one envelope awaiting acknowledgement.
type unackedMsg struct {
	m        Message // the wrapped envelope, resent verbatim
	kind     proto.Kind
	nextSend time.Time
	backoff  time.Duration
	attempts int
}

// reliableConn is one node's reliable endpoint.
type reliableConn struct {
	net   *ReliableNetwork
	inner Conn
	id    int

	mu       sync.Mutex
	sendSeq  []uint64                 // per peer: last assigned sequence number
	unacked  []map[uint64]*unackedMsg // per peer: in-flight envelopes
	recvSeq  []uint64                 // per peer: highest delivered sequence number
	heldBack []map[uint64]Message     // per peer: early arrivals awaiting the gap

	jitter *rand.Rand // jitter stream; guarded by mu, nil when Jitter == 0

	out chan Message // decoded messages ready for Recv

	closed    chan struct{}
	closeOnce sync.Once
	failed    chan struct{}
	failOnce  sync.Once
	failErr   error

	pumpDone chan struct{}
	pumpErr  error
}

func newReliableConn(r *ReliableNetwork, id int) *reliableConn {
	n := r.inner.Nodes()
	c := &reliableConn{
		net:      r,
		inner:    r.inner.Conn(id),
		id:       id,
		sendSeq:  make([]uint64, n),
		unacked:  make([]map[uint64]*unackedMsg, n),
		recvSeq:  make([]uint64, n),
		heldBack: make([]map[uint64]Message, n),
		out:      make(chan Message, inboxCap),
		closed:   make(chan struct{}),
		failed:   make(chan struct{}),
		pumpDone: make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		c.unacked[i] = make(map[uint64]*unackedMsg)
		c.heldBack[i] = make(map[uint64]Message)
	}
	if r.opts.Jitter > 0 {
		// Distinct deterministic stream per endpoint.
		c.jitter = rand.New(rand.NewSource(r.opts.Seed<<16 ^ int64(id+1)))
	}
	go c.pumpLoop()
	go c.retransmitLoop()
	return c
}

// fail marks the endpoint broken and records the diagnostic.
func (c *reliableConn) fail(err error) {
	c.failOnce.Do(func() {
		c.failErr = err
		c.net.recordErr(err)
		close(c.failed)
	})
}

func (c *reliableConn) Send(m Message) error {
	if m.From == m.To {
		return c.inner.Send(m)
	}
	env := proto.ReliableData{Kind: m.Kind, Payload: m.Payload}
	c.mu.Lock()
	c.sendSeq[m.To]++
	env.Seq = c.sendSeq[m.To]
	wrapped := Message{
		From:    m.From,
		To:      m.To,
		Kind:    proto.KindReliableData,
		Epoch:   m.Epoch,
		Time:    m.Time,
		Payload: env.Encode(),
	}
	c.unacked[m.To][env.Seq] = &unackedMsg{
		m:        wrapped,
		kind:     m.Kind,
		nextSend: time.Now().Add(c.net.opts.RetransmitInitial),
		backoff:  c.net.opts.RetransmitInitial,
	}
	c.mu.Unlock()

	select {
	case <-c.failed:
		return c.failErr
	case <-c.closed:
		return ErrClosed
	default:
	}
	// Transient send failures (a TCP socket mid-reconnect) are left to the
	// retransmission timer; only a closed network is terminal.
	if err := c.inner.Send(wrapped); err == ErrClosed {
		return err
	}
	return nil
}

// CopiesPayload reports that remote sends copy the payload into the
// reliable envelope (env.Encode) before Send returns; self-sends delegate
// to the inner connection by reference and so retain the slice.
func (c *reliableConn) CopiesPayload(to int) bool { return to != c.id }

func (c *reliableConn) Recv() (Message, error) {
	select {
	case m := <-c.out:
		return m, nil
	default:
	}
	select {
	case m := <-c.out:
		return m, nil
	case <-c.failed:
		return Message{}, c.failErr
	case <-c.pumpDone:
		if c.pumpErr != nil {
			return Message{}, c.pumpErr
		}
		return Message{}, ErrClosed
	}
}

func (c *reliableConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.inner.Close()
}

// pumpLoop drains the inner endpoint: it strips envelopes, enforces
// per-peer ordering, suppresses duplicates, emits acknowledgements, and
// forwards everything else untouched.
func (c *reliableConn) pumpLoop() {
	defer close(c.pumpDone)
	for {
		m, err := c.inner.Recv()
		if err != nil {
			c.pumpErr = err
			return
		}
		switch m.Kind {
		case proto.KindReliableAck:
			ack, err := proto.DecodeReliableAck(m.Payload)
			if err != nil {
				continue // a corrupt ack is harmless: retransmission re-elicits it
			}
			c.mu.Lock()
			for seq := range c.unacked[m.From] {
				if seq <= ack.Seq {
					delete(c.unacked[m.From], seq)
				}
			}
			c.mu.Unlock()
		case proto.KindReliableData:
			env, err := proto.DecodeReliableData(m.Payload)
			if err != nil {
				continue // corrupt envelope: drop; the sender will retransmit
			}
			c.handleData(m, env)
		default:
			// Unwrapped traffic (self-sends) passes through.
			select {
			case c.out <- m:
			case <-c.closed:
				return
			}
		}
	}
}

// handleData delivers one envelope in sequence order.
func (c *reliableConn) handleData(m Message, env *proto.ReliableData) {
	from := m.From
	c.mu.Lock()
	switch {
	case env.Seq <= c.recvSeq[from]:
		// Duplicate of an already-delivered envelope: re-ack so the sender
		// stops retransmitting.
	case env.Seq == c.recvSeq[from]+1:
		c.recvSeq[from] = env.Seq
		deliver := []Message{unwrap(m, env)}
		// An early arrival may have filled the next gap(s).
		for {
			held, ok := c.heldBack[from][c.recvSeq[from]+1]
			if !ok {
				break
			}
			delete(c.heldBack[from], c.recvSeq[from]+1)
			c.recvSeq[from]++
			deliver = append(deliver, held)
		}
		c.mu.Unlock()
		for _, d := range deliver {
			select {
			case c.out <- d:
			case <-c.closed:
				return
			}
		}
		c.mu.Lock()
	default:
		// Early arrival: hold until the gap fills.  Overwriting on a
		// duplicate is harmless.
		c.heldBack[from][env.Seq] = unwrap(m, env)
	}
	ackSeq := c.recvSeq[from]
	c.mu.Unlock()
	ack := proto.ReliableAck{Seq: ackSeq}
	_ = c.inner.Send(Message{
		From:    c.id,
		To:      from,
		Kind:    proto.KindReliableAck,
		Payload: ack.Encode(),
	})
}

// unwrap reconstructs the original message from its envelope.  The
// membership epoch rides the outer header, so it survives the wrapping.
func unwrap(m Message, env *proto.ReliableData) Message {
	return Message{From: m.From, To: m.To, Kind: env.Kind, Epoch: m.Epoch, Time: m.Time, Payload: env.Payload}
}

// retransmitLoop resends unacknowledged envelopes with exponential
// backoff, and fails the endpoint when a peer stays unreachable.
func (c *reliableConn) retransmitLoop() {
	tick := time.NewTicker(c.net.opts.RetransmitInitial / 2)
	defer tick.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-c.failed:
			return
		case <-tick.C:
		}
		now := time.Now()
		var resend []*unackedMsg
		c.mu.Lock()
		for peer := range c.unacked {
			for _, u := range c.unacked[peer] {
				if now.Before(u.nextSend) {
					continue
				}
				u.attempts++
				if u.attempts > c.net.opts.GiveUp {
					c.mu.Unlock()
					c.fail(fmt.Errorf("transport: node %d: peer %d unreachable: %s (seq %d) undelivered after %d retransmits",
						c.id, u.m.To, u.kind, envSeq(u.m.Payload), u.attempts-1))
					return
				}
				u.backoff = min(u.backoff*2, c.net.opts.RetransmitMax)
				wait := u.backoff
				if c.jitter != nil {
					spread := 1 + c.net.opts.Jitter*(2*c.jitter.Float64()-1)
					wait = time.Duration(float64(wait) * spread)
				}
				u.nextSend = now.Add(wait)
				resend = append(resend, u)
			}
		}
		c.mu.Unlock()
		for _, u := range resend {
			if tr := c.net.opts.Trace; tr != nil {
				tr.Emit(obs.Event{
					Kind: obs.EvRetransmit, Cycles: u.m.Time, Node: int32(c.id),
					Obj: -1, Peer: int32(u.m.To),
					A: int64(envSeq(u.m.Payload)), B: int64(u.attempts),
				})
			}
			if err := c.inner.Send(u.m); err == ErrClosed {
				return
			}
		}
	}
}

// envSeq extracts the sequence number from an encoded envelope for
// diagnostics.
func envSeq(payload []byte) uint64 {
	env, err := proto.DecodeReliableData(payload)
	if err != nil {
		return 0
	}
	return env.Seq
}
