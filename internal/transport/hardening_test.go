package transport

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"midway/internal/proto"
)

// freeAddrs reserves n distinct loopback ports and returns them as
// listen addresses.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

// TestTCPChecksumDetectsCorruption injects garbage directly into a peer
// socket and checks that the receiver's endpoint breaks with a frame
// error instead of delivering corrupt data or hanging.
func TestTCPChecksumDetectsCorruption(t *testing.T) {
	tn, err := NewLoopbackTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	// Write a plausible-length frame with a corrupt body straight onto
	// node 0's socket to node 1, bypassing writeFrame.
	raw := tn.conns[0].peers[1].conn
	frame := make([]byte, 4+20)
	frame[0] = 16 // body length = headerSize-4
	for i := 4; i < len(frame); i++ {
		frame[i] = 0xAB
	}
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	_, err = tn.Conn(1).Recv()
	if err == nil {
		t.Fatal("corrupt frame was delivered")
	}
	if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "frame") {
		t.Errorf("error %q does not identify frame corruption", err)
	}
	if tn.Err() == nil {
		t.Error("network Err() is nil after corruption")
	}
}

// TestTCPBrokenSocketSurfaces kills a loopback socket mid-run and checks
// that the reader's endpoint reports the break instead of blocking
// forever.
func TestTCPBrokenSocketSurfaces(t *testing.T) {
	tn, err := NewLoopbackTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	tn.conns[0].peers[1].conn.Close()
	_, err = tn.Conn(1).Recv()
	if err == nil {
		t.Fatal("Recv returned no error after socket break")
	}
	if !strings.Contains(err.Error(), "read from peer") {
		t.Errorf("error %q does not identify the broken read", err)
	}
}

// TestDialTCPNodeHelloTimeout starts only node 0 of a 2-node mesh and
// checks that mesh formation fails with a diagnostic within the hello
// deadline instead of hanging on the accept side.
func TestDialTCPNodeHelloTimeout(t *testing.T) {
	addrs := freeAddrs(t, 2)
	start := time.Now()
	_, err := DialTCPNodeOpts(0, 2, addrs, MeshOptions{HelloTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("mesh formation succeeded without peer 1")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %s", elapsed)
	}
	for _, want := range []string{"node 0", "timed out", "[1]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic %q missing %q", err, want)
		}
	}
}

// TestMeshReconnect breaks the socket of a two-process-style mesh mid-run
// and checks that, with the Reliable wrapper above, traffic resumes after
// the automatic re-dial.
func TestMeshReconnect(t *testing.T) {
	addrs := freeAddrs(t, 2)
	opts := MeshOptions{HelloTimeout: 5 * time.Second, RedialTimeout: 5 * time.Second}
	var tns [2]*TCPNetwork
	var errs [2]error
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tns[i], errs[i] = DialTCPNodeOpts(i, 2, addrs, opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d join: %v", i, err)
		}
	}
	ropts := ReliableOptions{RetransmitInitial: 5 * time.Millisecond, GiveUp: 400}
	rn0 := NewReliableNetwork(tns[0], ropts)
	rn1 := NewReliableNetwork(tns[1], ropts)
	defer rn0.Close()
	defer rn1.Close()
	c0, c1 := rn0.Conn(0), rn1.Conn(1)

	send := func(seq uint64) {
		if err := c0.Send(Message{From: 0, To: 1, Kind: proto.KindLockAcquire, Time: seq}); err != nil {
			t.Fatalf("send %d: %v", seq, err)
		}
	}
	expect := func(seq uint64) {
		m, err := c1.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", seq, err)
		}
		if m.Time != seq {
			t.Fatalf("got seq %d, want %d", m.Time, seq)
		}
	}
	send(0)
	expect(0)

	// Sever the socket out from under both endpoints.  Node 1 (the
	// dialer) re-dials; node 0's listener accepts the fresh hello.
	tns[1].conns[1].peers[0].mu.Lock()
	raw := tns[1].conns[1].peers[0].conn
	tns[1].conns[1].peers[0].mu.Unlock()
	raw.Close()

	for seq := uint64(1); seq <= 5; seq++ {
		send(seq)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		expect(seq)
	}
	if err := rn0.Err(); err != nil {
		t.Errorf("node 0 recorded error despite successful reconnect: %v", err)
	}
	if err := rn1.Err(); err != nil {
		t.Errorf("node 1 recorded error despite successful reconnect: %v", err)
	}
}

// TestReliableOverLoopbackTCPFaults runs the reliable layer over a fault
// injector over real sockets: the full production stack under adversity.
func TestReliableOverLoopbackTCPFaults(t *testing.T) {
	base, err := NewLoopbackTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	fc := FaultConfig{Seed: 3, Drop: 0.2, Dup: 0.1, Reorder: 0.2}
	net := NewReliableNetwork(NewFaultNetwork(base, fc),
		ReliableOptions{RetransmitInitial: 2 * time.Millisecond, GiveUp: 300})
	defer net.Close()
	const msgs = 60
	done := make(chan error, 1)
	go func() {
		conn := net.Conn(1)
		for i := 0; i < msgs; i++ {
			m, err := conn.Recv()
			if err != nil {
				done <- err
				return
			}
			if m.Time != uint64(i) {
				done <- fmt.Errorf("got seq %d, want %d", m.Time, i)
				return
			}
		}
		done <- nil
	}()
	conn := net.Conn(0)
	for i := 0; i < msgs; i++ {
		if err := conn.Send(Message{From: 0, To: 1, Kind: proto.KindBarrierEnter, Time: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
