package transport

import (
	"fmt"
	"sync"
)

// SteppedNetwork is the lockstep engine's in-memory transport.  Send does
// not deliver: it stamps the message with a simulated arrival time (via
// the cost callback installed by SetArrival) and a per-sender sequence
// number, then parks it in a priority queue.  The engine drains the queue
// at quiescence points with PopMin, which yields messages in the total
// delivery order
//
//	(arrival cycles, send-time cycles, sender id, per-sender sequence)
//
// Every component is a pure function of the simulation: the stamps come
// from the simulated clocks and the sequence numbers follow each sender's
// program order, so the pop order — and therefore the whole run — is
// independent of host scheduling.
//
// There is no Recv path: SteppedNetwork does not satisfy blocking
// consumers, so it composes with neither the Reliable layer nor
// FaultNetwork (both are driven by wall-clock goroutines, which a
// virtual-time engine cannot admit).  The system layer rejects those
// combinations at configuration time.
type SteppedNetwork struct {
	n       int
	arrival func(m Message) uint64

	mu     sync.Mutex
	heap   []stepMsg
	seq    []uint64
	closed bool
	// closedCh unblocks any stray Recv caller.
	closedCh  chan struct{}
	closeOnce sync.Once
}

// stepMsg is one queued message with its delivery-order key.
type stepMsg struct {
	m   Message
	at  uint64 // simulated arrival cycles
	seq uint64 // per-sender sequence number
}

// NewSteppedNetwork creates a stepped network for n nodes.  SetArrival
// must be called before the first Send.
func NewSteppedNetwork(n int) *SteppedNetwork {
	if n <= 0 {
		panic(fmt.Sprintf("transport: invalid node count %d", n))
	}
	return &SteppedNetwork{
		n:        n,
		seq:      make([]uint64, n),
		closedCh: make(chan struct{}),
	}
}

// SetArrival installs the cost model: f maps a message to its simulated
// arrival time in cycles (the sender's send stamp plus transit cost;
// self-sends arrive at their send stamp).
func (sn *SteppedNetwork) SetArrival(f func(m Message) uint64) { sn.arrival = f }

// Nodes returns the node count.
func (sn *SteppedNetwork) Nodes() int { return sn.n }

// Conn returns node i's endpoint.
func (sn *SteppedNetwork) Conn(i int) Conn { return &steppedConn{id: i, net: sn} }

// Err reports no failures: the stepped queue cannot break.
func (sn *SteppedNetwork) Err() error { return nil }

// Close marks the network closed; subsequent Sends fail with ErrClosed.
func (sn *SteppedNetwork) Close() error {
	sn.closeOnce.Do(func() {
		sn.mu.Lock()
		sn.closed = true
		sn.mu.Unlock()
		close(sn.closedCh)
	})
	return nil
}

// Pending returns the number of queued messages.
func (sn *SteppedNetwork) Pending() int {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return len(sn.heap)
}

// PopMin removes and returns the queued message that is minimal in
// delivery order, with its arrival time.  ok is false when the queue is
// empty.
func (sn *SteppedNetwork) PopMin() (m Message, arrival uint64, ok bool) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if len(sn.heap) == 0 {
		return Message{}, 0, false
	}
	top := sn.heap[0]
	last := len(sn.heap) - 1
	sn.heap[0] = sn.heap[last]
	sn.heap[last] = stepMsg{} // release the payload reference
	sn.heap = sn.heap[:last]
	if len(sn.heap) > 0 {
		sn.siftDown(0)
	}
	return top.m, top.at, true
}

// less orders the heap by (arrival, send time, sender, sender sequence).
func (sn *SteppedNetwork) less(a, b stepMsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.m.Time != b.m.Time {
		return a.m.Time < b.m.Time
	}
	if a.m.From != b.m.From {
		return a.m.From < b.m.From
	}
	return a.seq < b.seq
}

func (sn *SteppedNetwork) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !sn.less(sn.heap[i], sn.heap[parent]) {
			return
		}
		sn.heap[i], sn.heap[parent] = sn.heap[parent], sn.heap[i]
		i = parent
	}
}

func (sn *SteppedNetwork) siftDown(i int) {
	n := len(sn.heap)
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < n && sn.less(sn.heap[l], sn.heap[min]) {
			min = l
		}
		if r < n && sn.less(sn.heap[r], sn.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		sn.heap[i], sn.heap[min] = sn.heap[min], sn.heap[i]
		i = min
	}
}

// steppedConn is one endpoint of a stepped network.
type steppedConn struct {
	id  int
	net *SteppedNetwork
}

func (c *steppedConn) Send(m Message) error {
	sn := c.net
	if m.From != c.id {
		return fmt.Errorf("transport: node %d sending as %d", c.id, m.From)
	}
	if m.To < 0 || m.To >= sn.n {
		return fmt.Errorf("transport: destination %d out of range", m.To)
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.closed {
		return ErrClosed
	}
	sn.heap = append(sn.heap, stepMsg{m: m, at: sn.arrival(m), seq: sn.seq[m.From]})
	sn.seq[m.From]++
	sn.siftUp(len(sn.heap) - 1)
	return nil
}

// Recv is not part of the lockstep delivery path (the engine dispatches
// synchronously); it blocks until the network closes so a stray handler
// loop would terminate cleanly rather than spin.
func (c *steppedConn) Recv() (Message, error) {
	<-c.net.closedCh
	return Message{}, ErrClosed
}

func (c *steppedConn) Close() error { return nil }
