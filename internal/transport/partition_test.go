package transport

import (
	"strings"
	"testing"
	"time"

	"midway/internal/proto"
)

// TestParseFaultSpecPartition covers the partition arm of the fault
// grammar: the valid forms round-trip through String, and each
// ill-formed combination is rejected with a diagnostic naming the
// offending key.
func TestParseFaultSpecPartition(t *testing.T) {
	c, err := ParseFaultSpec("part=2+3,partafter=60,heal=80ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PartitionNodes) != 2 || c.PartitionNodes[0] != 2 || c.PartitionNodes[1] != 3 {
		t.Errorf("PartitionNodes = %v, want [2 3]", c.PartitionNodes)
	}
	if c.PartitionAfterMsgs != 60 || c.HealAfter != 80*time.Millisecond || c.Seed != 7 {
		t.Errorf("parsed %+v, want partafter=60 heal=80ms seed=7", c)
	}
	if !c.PartitionArmed() {
		t.Error("PartitionArmed() = false for an armed spec")
	}
	round, err := ParseFaultSpec(c.String())
	if err != nil {
		t.Fatalf("re-parsing String() %q: %v", c.String(), err)
	}
	if round.String() != c.String() {
		t.Errorf("round trip changed the spec: %q -> %q", c.String(), round.String())
	}

	if c, err := ParseFaultSpec("part=1,partat=40000"); err != nil {
		t.Errorf("cycle-triggered partition rejected: %v", err)
	} else if c.PartitionAtCycles != 40000 {
		t.Errorf("PartitionAtCycles = %d, want 40000", c.PartitionAtCycles)
	}

	bad := []struct {
		spec, want string
	}{
		{"part=2", "partafter"},                                    // armed with no trigger
		{"partafter=10", "part="},                                  // trigger with no minority
		{"partat=500", "part="},                                    // ditto, cycle trigger
		{"heal=50ms", "part="},                                     // heal with no partition
		{"part=2+2,partafter=10", "twice"},                         // duplicate minority node
		{"part=x,partafter=10", "node id"},                         // malformed id
		{"part=2,partafter=0", "positive"},                         // zero trigger
		{"part=2,partat=40000,heal=0s", "not a positive duration"}, // zero heal
	}
	for _, tc := range bad {
		if _, err := ParseFaultSpec(tc.spec); err == nil {
			t.Errorf("ParseFaultSpec(%q) accepted an invalid spec", tc.spec)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseFaultSpec(%q) error %q missing %q", tc.spec, err, tc.want)
		}
	}
}

// TestFaultNetworkArmedPartitionHeal drives the message-count trigger end
// to end: protocol messages before the trigger pass, the triggering
// message is the first one the cut swallows, liveness traffic never
// advances the countdown, and after HealAfter the cut lifts and the
// OnHeal hook fires.
func TestFaultNetworkArmedPartitionHeal(t *testing.T) {
	fault := NewFaultNetwork(NewChannelNetwork(2), FaultConfig{
		PartitionNodes:     []int{1},
		PartitionAfterMsgs: 2,
		HealAfter:          30 * time.Millisecond,
	})
	defer fault.Close()
	healed := make(chan struct{})
	fault.OnHeal(func() { close(healed) })

	got := make(chan Message, 16)
	go func() {
		c := fault.Conn(1)
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			got <- m
		}
	}()
	c0 := fault.Conn(0)

	recv := func(tag string) Message {
		t.Helper()
		select {
		case m := <-got:
			return m
		case <-time.After(5 * time.Second):
			t.Fatalf("%s never delivered", tag)
			return Message{}
		}
	}

	// Heartbeats are exempt from the countdown: burn a handful first.
	for i := 0; i < 5; i++ {
		if err := c0.Send(Message{From: 0, To: 1, Kind: proto.KindHeartbeat}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		recv("heartbeat")
	}

	// Two protocol messages pass; the third trips the trigger and is
	// itself dropped by the just-installed cut.
	for seq := uint64(1); seq <= 3; seq++ {
		if err := c0.Send(Message{From: 0, To: 1, Kind: proto.KindLockAcquire, Time: seq}); err != nil {
			t.Fatal(err)
		}
	}
	if m := recv("pre-cut message 1"); m.Time != 1 {
		t.Fatalf("first delivery Time = %d, want 1", m.Time)
	}
	if m := recv("pre-cut message 2"); m.Time != 2 {
		t.Fatalf("second delivery Time = %d, want 2", m.Time)
	}
	select {
	case m := <-got:
		t.Fatalf("message crossed the installed cut: %+v", m)
	case <-time.After(20 * time.Millisecond):
	}

	// The heal timer lifts the cut and fires the hook; traffic flows again.
	select {
	case <-healed:
	case <-time.After(5 * time.Second):
		t.Fatal("OnHeal hook never fired")
	}
	if err := c0.Send(Message{From: 0, To: 1, Kind: proto.KindLockAcquire, Time: 4}); err != nil {
		t.Fatal(err)
	}
	if m := recv("post-heal message"); m.Time != 4 {
		t.Fatalf("post-heal delivery Time = %d, want 4", m.Time)
	}
}

// pendingToward inspects one in-flight envelope from node `from` toward
// peer `to`: its current backoff and attempt count.  White-box by design;
// the reset contract is about this internal state.
func pendingToward(r *ReliableNetwork, from, to int) (backoff time.Duration, attempts int, ok bool) {
	r.errMu.Lock()
	c := r.conns[from]
	r.errMu.Unlock()
	if c == nil {
		return 0, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, u := range c.unacked[to] {
		return u.backoff, u.attempts, true
	}
	return 0, 0, false
}

// TestReliableResetBackoffAfterHeal pins the heal-time recovery-latency
// contract: an envelope that spent a partition backing off toward
// RetransmitMax is rewound to RetransmitInitial by ResetBackoff — with
// its attempt count preserved, so GiveUp still protects against a peer
// that is genuinely gone — and the first post-heal retransmission goes
// out on the next timer tick instead of after the accumulated backoff.
func TestReliableResetBackoffAfterHeal(t *testing.T) {
	const initial = 2 * time.Millisecond
	fault := NewFaultNetwork(NewChannelNetwork(2), FaultConfig{})
	net := NewReliableNetwork(fault, ReliableOptions{
		RetransmitInitial: initial,
		RetransmitMax:     time.Second,
		GiveUp:            1 << 30, // never: this test is about latency, not failure
	})
	defer net.Close()

	delivered := make(chan time.Time, 1)
	go func() {
		c := net.Conn(1)
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
			delivered <- time.Now()
		}
	}()
	c0 := net.Conn(0)

	fault.Partition(0, 1)
	if err := c0.Send(Message{From: 0, To: 1, Kind: proto.KindLockAcquire}); err != nil {
		t.Fatal(err)
	}

	climb := func(floor time.Duration) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if b, _, ok := pendingToward(net, 0, 1); ok && b >= floor {
				return
			}
			if time.Now().After(deadline) {
				b, _, ok := pendingToward(net, 0, 1)
				t.Fatalf("backoff never reached %v (pending=%v backoff=%v)", floor, ok, b)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Let the outage drive the backoff well past the initial value.
	climb(128 * time.Millisecond)
	_, attemptsBefore, _ := pendingToward(net, 0, 1)

	// Reset while still cut: backoff rewinds, attempts do not.
	net.ResetBackoff()
	b, attemptsAfter, ok := pendingToward(net, 0, 1)
	if !ok {
		t.Fatal("pending envelope vanished across ResetBackoff")
	}
	if b >= 64*time.Millisecond {
		t.Fatalf("backoff after reset = %v, want rewound toward %v", b, initial)
	}
	if attemptsAfter < attemptsBefore {
		t.Fatalf("attempts rewound by ResetBackoff: %d -> %d (GiveUp would be defeated)", attemptsBefore, attemptsAfter)
	}

	// The cut is still up, so the backoff climbs again — the state an
	// envelope is really in when the heal notification arrives.
	climb(64 * time.Millisecond)

	fault.Heal(0, 1)
	start := time.Now()
	net.ResetBackoff()
	select {
	case <-delivered:
		if elapsed := time.Since(start); elapsed > 60*time.Millisecond {
			t.Errorf("post-heal delivery took %v, want the next %v tick", elapsed, initial)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never delivered after heal+reset")
	}
}
