package transport

import (
	"testing"
	"time"

	"midway/internal/proto"
)

func TestParseFaultSpec(t *testing.T) {
	c, err := ParseFaultSpec("drop=0.05,dup=0.02,reorder=0.1,delay=2ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if c.Drop != 0.05 || c.Dup != 0.02 || c.Reorder != 0.1 || c.Delay != 2*time.Millisecond || c.Seed != 7 {
		t.Errorf("parsed %+v", c)
	}
	if !c.Active() {
		t.Error("config with faults reports inactive")
	}
	if c, err := ParseFaultSpec(""); err != nil || c.Active() {
		t.Errorf("empty spec: %v, %+v", err, c)
	}
	for _, bad := range []string{
		"drop", "drop=x", "drop=1.5", "drop=-0.1", "delay=zz", "seed=x", "mystery=1",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestFaultNetworkDeterministicDrops sends a fixed message sequence over a
// drop-only fault network twice with the same seed and checks that the
// same subset is delivered, then that a different seed gives a different
// subset.
func TestFaultNetworkDeterministicDrops(t *testing.T) {
	const msgs = 200
	run := func(seed int64) []uint64 {
		f := NewFaultNetwork(NewChannelNetwork(2), FaultConfig{Seed: seed, Drop: 0.3})
		defer f.Close()
		src, dst := f.Conn(0), f.Conn(1)
		for i := 0; i < msgs; i++ {
			if err := src.Send(Message{From: 0, To: 1, Time: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		// Flush marker via node 1's own loopback (never dropped).
		if err := dst.Send(Message{From: 1, To: 1, Kind: proto.KindShutdown}); err != nil {
			t.Fatal(err)
		}
		var got []uint64
		for {
			m, err := dst.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if m.Kind == proto.KindShutdown {
				return got
			}
			got = append(got, m.Time)
		}
	}
	a, b := run(42), run(42)
	if len(a) == msgs || len(a) == 0 {
		t.Fatalf("drop=0.3 delivered %d/%d", len(a), msgs)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical delivery patterns")
	}
}

func TestFaultNetworkPartitionHeal(t *testing.T) {
	f := NewFaultNetwork(NewChannelNetwork(2), FaultConfig{})
	defer f.Close()
	f.Partition(0, 1)
	if err := f.Conn(0).Send(Message{From: 0, To: 1, Time: 1}); err != nil {
		t.Fatal(err)
	}
	// The partitioned message must not arrive; a post-heal message must.
	f.Heal(0, 1)
	if err := f.Conn(0).Send(Message{From: 0, To: 1, Time: 2}); err != nil {
		t.Fatal(err)
	}
	m, err := f.Conn(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Time != 2 {
		t.Errorf("received Time=%d, want 2 (partitioned message leaked)", m.Time)
	}
}

func TestFaultNetworkDuplicates(t *testing.T) {
	f := NewFaultNetwork(NewChannelNetwork(2), FaultConfig{Seed: 1, Dup: 0.5})
	defer f.Close()
	const msgs = 100
	for i := 0; i < msgs; i++ {
		if err := f.Conn(0).Send(Message{From: 0, To: 1, Time: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Conn(1).Send(Message{From: 1, To: 1, Kind: proto.KindShutdown}); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		m, err := f.Conn(1).Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind == proto.KindShutdown {
			break
		}
		seen++
	}
	if seen <= msgs {
		t.Errorf("dup=0.5 delivered %d messages for %d sends", seen, msgs)
	}
}
