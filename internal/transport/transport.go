// Package transport moves protocol messages between DSM nodes.
//
// Two implementations are provided.  The channel transport connects nodes
// within one process and is the default for simulation runs; the TCP
// transport connects nodes through real sockets (within one process or
// across processes) and demonstrates that the protocol is a genuine
// message-passing design with an explicit wire format.
//
// Transports carry the sender's simulated cycle clock in every message so
// the receiver can join clocks; they know nothing about costs themselves.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"midway/internal/proto"
)

// Message is one protocol message in flight.
type Message struct {
	From, To int
	Kind     proto.Kind
	// Time is the sender's simulated cycle clock at the moment of send.
	Time uint64
	// Payload is the proto-encoded message body.
	Payload []byte
}

// Size returns the message's wire size in bytes (header plus payload),
// used by the network cost model.
func (m Message) Size() int { return headerSize + len(m.Payload) }

// headerSize is the fixed per-message framing overhead: length (4),
// from (2), to (2), kind (1), pad (3), time (8).
const headerSize = 20

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is one node's endpoint: it can send to any node and receive
// messages addressed to it.  Send must be safe for concurrent use; Recv is
// called from a single protocol-handler goroutine.
type Conn interface {
	// Send enqueues a message for delivery.  m.From must be this node.
	Send(m Message) error
	// Recv blocks until a message arrives or the connection closes, in
	// which case it returns ErrClosed.
	Recv() (Message, error)
	// Close shuts the endpoint down, unblocking Recv.
	Close() error
}

// Network is a set of connected node endpoints.
type Network interface {
	// Nodes returns the number of nodes.
	Nodes() int
	// Conn returns node i's endpoint.
	Conn(i int) Conn
	// Close shuts down all endpoints.
	Close() error
}

// inboxCap bounds each node's pending-message queue.  The EC protocol is
// request-reply with small fan-out, so queues stay short; the bound exists
// to surface protocol bugs as deadlocks rather than unbounded growth.
const inboxCap = 4096

// chanConn is one endpoint of a channel network.
type chanConn struct {
	id  int
	net *ChannelNetwork
}

// ChannelNetwork connects n in-process nodes through buffered channels.
type ChannelNetwork struct {
	inboxes []chan Message
	mu      sync.Mutex
	closed  bool
}

// NewChannelNetwork returns a network of n connected in-process nodes.
func NewChannelNetwork(n int) *ChannelNetwork {
	if n <= 0 {
		panic(fmt.Sprintf("transport: invalid node count %d", n))
	}
	net := &ChannelNetwork{inboxes: make([]chan Message, n)}
	for i := range net.inboxes {
		net.inboxes[i] = make(chan Message, inboxCap)
	}
	return net
}

// Nodes returns the node count.
func (n *ChannelNetwork) Nodes() int { return len(n.inboxes) }

// Conn returns node i's endpoint.
func (n *ChannelNetwork) Conn(i int) Conn { return &chanConn{id: i, net: n} }

// Close closes every inbox, unblocking all receivers.
func (n *ChannelNetwork) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	n.closed = true
	for _, ch := range n.inboxes {
		close(ch)
	}
	return nil
}

func (c *chanConn) Send(m Message) (err error) {
	if m.From != c.id {
		return fmt.Errorf("transport: node %d sending as %d", c.id, m.From)
	}
	if m.To < 0 || m.To >= len(c.net.inboxes) {
		return fmt.Errorf("transport: destination %d out of range", m.To)
	}
	c.net.mu.Lock()
	closed := c.net.closed
	c.net.mu.Unlock()
	if closed {
		return ErrClosed
	}
	defer func() {
		// A send on a concurrently-closed channel panics; report it as
		// ErrClosed instead (shutdown is the only time this can happen).
		if recover() != nil {
			err = ErrClosed
		}
	}()
	c.net.inboxes[m.To] <- m
	return nil
}

func (c *chanConn) Recv() (Message, error) {
	m, ok := <-c.net.inboxes[c.id]
	if !ok {
		return Message{}, ErrClosed
	}
	return m, nil
}

func (c *chanConn) Close() error { return nil }
