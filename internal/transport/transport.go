// Package transport moves protocol messages between DSM nodes.
//
// Two base implementations are provided.  The channel transport connects
// nodes within one process and is the default for simulation runs; the TCP
// transport connects nodes through real sockets (within one process or
// across processes) and demonstrates that the protocol is a genuine
// message-passing design with an explicit wire format.
//
// Two wrappers compose over any Network.  FaultNetwork deterministically
// injects faults (drops, duplicates, delays, reorders, partitions) below
// the reliability layer, for chaos testing.  Reliable adds per-peer
// sequence numbers, acknowledgements, retransmission and duplicate
// suppression, so the protocol above it sees exactly-once in-order
// delivery even over a faulty base network.  The layering is
//
//	EC protocol -> Reliable -> FaultNetwork -> Channel/TCP
//
// Transports carry the sender's simulated cycle clock in every message so
// the receiver can join clocks; they know nothing about costs themselves.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"midway/internal/proto"
)

// Message is one protocol message in flight.
type Message struct {
	From, To int
	Kind     proto.Kind
	// Epoch is the sender's membership generation at the moment of send,
	// carried in the frame header's pad bytes.  Zero for fixed-membership
	// systems, so their wire bytes are unchanged.
	Epoch uint16
	// Time is the sender's simulated cycle clock at the moment of send.
	Time uint64
	// Payload is the proto-encoded message body.
	Payload []byte
}

// Size returns the message's wire size in bytes (header plus payload),
// used by the network cost model.
func (m Message) Size() int { return headerSize + len(m.Payload) }

// headerSize is the fixed per-message framing overhead: length (4),
// from (2), to (2), kind (1), pad (1), epoch (2), time (8).  The
// membership epoch occupies two former pad bytes, so carrying it costs
// nothing under the network cost model.
const headerSize = 20

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is one node's endpoint: it can send to any node and receive
// messages addressed to it.  Send must be safe for concurrent use; Recv is
// called from a single protocol-handler goroutine.
type Conn interface {
	// Send enqueues a message for delivery.  m.From must be this node.
	Send(m Message) error
	// Recv blocks until a message arrives or the connection closes, in
	// which case it returns ErrClosed (or, for a connection broken by a
	// transport failure, the recorded failure).
	Recv() (Message, error)
	// Close shuts the endpoint down, unblocking Recv.
	Close() error
}

// PayloadCopier is implemented by connections that copy (or fully
// consume) a message's payload before Send returns, for the given
// destination.  A sender holding a reusable payload buffer may recycle it
// immediately after Send when CopiesPayload reports true; otherwise the
// transport retains the slice (channel delivery, delayed fault injection)
// and the sender must pass an owned buffer.
type PayloadCopier interface {
	CopiesPayload(to int) bool
}

// Network is a set of connected node endpoints.
type Network interface {
	// Nodes returns the number of nodes.
	Nodes() int
	// Conn returns node i's endpoint.
	Conn(i int) Conn
	// Err returns the first transport failure recorded on any endpoint
	// (a broken socket, a corrupt frame, an unreachable peer), or nil.
	// A clean Close records no error.
	Err() error
	// Close shuts down all endpoints.
	Close() error
}

// inboxCap bounds each node's pending-message queue.  The EC protocol is
// request-reply with small fan-out, so queues stay short; the bound exists
// to surface protocol bugs as deadlocks rather than unbounded growth.
const inboxCap = 4096

// chanConn is one endpoint of a channel network.
type chanConn struct {
	id  int
	net *ChannelNetwork
}

// ChannelNetwork connects n in-process nodes through buffered channels.
type ChannelNetwork struct {
	inboxes []chan Message
	// closed is closed by Close.  The inbox channels themselves are never
	// closed: senders and receivers select against this signal instead, so
	// a Send racing a Close returns ErrClosed rather than panicking on a
	// closed channel.
	closed    chan struct{}
	closeOnce sync.Once
}

// NewChannelNetwork returns a network of n connected in-process nodes.
func NewChannelNetwork(n int) *ChannelNetwork {
	if n <= 0 {
		panic(fmt.Sprintf("transport: invalid node count %d", n))
	}
	net := &ChannelNetwork{
		inboxes: make([]chan Message, n),
		closed:  make(chan struct{}),
	}
	for i := range net.inboxes {
		net.inboxes[i] = make(chan Message, inboxCap)
	}
	return net
}

// Nodes returns the node count.
func (n *ChannelNetwork) Nodes() int { return len(n.inboxes) }

// Conn returns node i's endpoint.
func (n *ChannelNetwork) Conn(i int) Conn { return &chanConn{id: i, net: n} }

// Err reports no failures: an in-process channel cannot break.
func (n *ChannelNetwork) Err() error { return nil }

// Close signals shutdown, unblocking all senders and receivers.
func (n *ChannelNetwork) Close() error {
	n.closeOnce.Do(func() { close(n.closed) })
	return nil
}

func (c *chanConn) Send(m Message) error {
	if m.From != c.id {
		return fmt.Errorf("transport: node %d sending as %d", c.id, m.From)
	}
	if m.To < 0 || m.To >= len(c.net.inboxes) {
		return fmt.Errorf("transport: destination %d out of range", m.To)
	}
	select {
	case <-c.net.closed:
		return ErrClosed
	default:
	}
	select {
	case c.net.inboxes[m.To] <- m:
		return nil
	case <-c.net.closed:
		return ErrClosed
	}
}

func (c *chanConn) Recv() (Message, error) {
	select {
	case m := <-c.net.inboxes[c.id]:
		return m, nil
	case <-c.net.closed:
		// Drain messages that were enqueued before the close.
		select {
		case m := <-c.net.inboxes[c.id]:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (c *chanConn) Close() error { return nil }
