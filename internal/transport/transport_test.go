package transport

import (
	"fmt"
	"sync"
	"testing"

	"midway/internal/proto"
)

// exerciseNetwork checks basic delivery properties on any Network.
func exerciseNetwork(t *testing.T, net Network) {
	t.Helper()
	n := net.Nodes()

	// Pairwise delivery with payload integrity and FIFO per pair.
	var wg sync.WaitGroup
	const msgs = 50
	for to := 0; to < n; to++ {
		wg.Add(1)
		go func(to int) {
			defer wg.Done()
			conn := net.Conn(to)
			next := make([]int, n)
			for i := 0; i < msgs*(n-1); i++ {
				m, err := conn.Recv()
				if err != nil {
					t.Errorf("node %d recv: %v", to, err)
					return
				}
				if m.To != to {
					t.Errorf("node %d got message for %d", to, m.To)
				}
				seq := int(m.Time)
				if seq != next[m.From] {
					t.Errorf("node %d: out-of-order from %d: %d, want %d", to, m.From, seq, next[m.From])
				}
				next[m.From]++
				want := fmt.Sprintf("%d->%d #%d", m.From, to, seq)
				if string(m.Payload) != want {
					t.Errorf("payload %q, want %q", m.Payload, want)
				}
			}
		}(to)
	}
	for from := 0; from < n; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			conn := net.Conn(from)
			for seq := 0; seq < msgs; seq++ {
				for to := 0; to < n; to++ {
					if to == from {
						continue
					}
					err := conn.Send(Message{
						From:    from,
						To:      to,
						Kind:    proto.KindLockAcquire,
						Time:    uint64(seq),
						Payload: []byte(fmt.Sprintf("%d->%d #%d", from, to, seq)),
					})
					if err != nil {
						t.Errorf("send %d->%d: %v", from, to, err)
						return
					}
				}
			}
		}(from)
	}
	wg.Wait()
}

func TestChannelNetwork(t *testing.T) {
	net := NewChannelNetwork(4)
	defer net.Close()
	exerciseNetwork(t, net)
}

func TestChannelNetworkSelfSend(t *testing.T) {
	net := NewChannelNetwork(2)
	defer net.Close()
	c := net.Conn(0)
	if err := c.Send(Message{From: 0, To: 0, Payload: []byte("self")}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil || string(m.Payload) != "self" {
		t.Fatalf("self send: %v, %q", err, m.Payload)
	}
}

func TestChannelNetworkErrors(t *testing.T) {
	net := NewChannelNetwork(2)
	c := net.Conn(0)
	if err := c.Send(Message{From: 1, To: 0}); err == nil {
		t.Error("wrong From accepted")
	}
	if err := c.Send(Message{From: 0, To: 5}); err == nil {
		t.Error("out-of-range To accepted")
	}
	net.Close()
	if err := c.Send(Message{From: 0, To: 1}); err != ErrClosed {
		t.Errorf("send after close = %v, want ErrClosed", err)
	}
	if _, err := c.Recv(); err != ErrClosed {
		t.Errorf("recv after close = %v, want ErrClosed", err)
	}
	// Closing twice is fine.
	if err := net.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestChannelNetworkRecvUnblocksOnClose(t *testing.T) {
	net := NewChannelNetwork(2)
	done := make(chan error, 1)
	go func() {
		_, err := net.Conn(1).Recv()
		done <- err
	}()
	net.Close()
	if err := <-done; err != ErrClosed {
		t.Errorf("blocked recv returned %v", err)
	}
}

func TestLoopbackTCPNetwork(t *testing.T) {
	net, err := NewLoopbackTCPNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	exerciseNetwork(t, net)
}

func TestLoopbackTCPSelfSend(t *testing.T) {
	net, err := NewLoopbackTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	c := net.Conn(1)
	if err := c.Send(Message{From: 1, To: 1, Payload: []byte("loop")}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil || string(m.Payload) != "loop" {
		t.Fatalf("self send over TCP endpoint: %v, %q", err, m.Payload)
	}
}

func TestLoopbackTCPLargePayload(t *testing.T) {
	net, err := NewLoopbackTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := net.Conn(0).Send(Message{From: 0, To: 1, Kind: proto.KindLockGrant, Time: 42, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	m, err := net.Conn(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Time != 42 || m.Kind != proto.KindLockGrant || len(m.Payload) != len(payload) {
		t.Fatalf("large frame header corrupted: %+v", m)
	}
	for i := range payload {
		if m.Payload[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

// TestDialTCPNodeMesh brings up a multi-endpoint mesh the way separate
// processes would, with each node joining via DialTCPNode.
func TestDialTCPNodeMesh(t *testing.T) {
	const n = 3
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", 42345+i)
	}
	nets := make([]*TCPNetwork, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nets[i], errs[i] = DialTCPNode(i, n, addrs)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d join: %v", i, err)
		}
	}
	defer func() {
		for _, nt := range nets {
			nt.Close()
		}
	}()

	// Ring message: 0 -> 1 -> 2 -> 0.
	if err := nets[0].Conn(0).Send(Message{From: 0, To: 1, Payload: []byte("ring")}); err != nil {
		t.Fatal(err)
	}
	m, err := nets[1].Conn(1).Recv()
	if err != nil || string(m.Payload) != "ring" {
		t.Fatalf("hop 1: %v %q", err, m.Payload)
	}
	if err := nets[1].Conn(1).Send(Message{From: 1, To: 2, Payload: m.Payload}); err != nil {
		t.Fatal(err)
	}
	m, err = nets[2].Conn(2).Recv()
	if err != nil || string(m.Payload) != "ring" {
		t.Fatalf("hop 2: %v %q", err, m.Payload)
	}
	if err := nets[2].Conn(2).Send(Message{From: 2, To: 0, Payload: m.Payload}); err != nil {
		t.Fatal(err)
	}
	m, err = nets[0].Conn(0).Recv()
	if err != nil || string(m.Payload) != "ring" {
		t.Fatalf("hop 3: %v %q", err, m.Payload)
	}

	// A node cannot hand out endpoints it does not host.
	defer func() {
		if recover() == nil {
			t.Error("Conn for remote node did not panic")
		}
	}()
	nets[0].Conn(1)
}

func TestMessageSize(t *testing.T) {
	m := Message{Payload: make([]byte, 100)}
	if m.Size() != 120 {
		t.Errorf("Size = %d, want 120 (20-byte header + 100)", m.Size())
	}
}
