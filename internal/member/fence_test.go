package member

import "testing"

// TestFenceOverlay pins the partition-fence overlay's contract: fencing
// is reversible, never bumps the epoch, keeps the node a member, and is
// superseded by the terminal transitions (death clears it, a dead node
// cannot be unfenced).
func TestFenceOverlay(t *testing.T) {
	tb := New(3, 4)
	epoch := tb.Epoch()

	if tb.Fenced(1) {
		t.Fatal("fresh table reports node 1 fenced")
	}
	if !tb.MarkFenced(1) {
		t.Fatal("MarkFenced on a live member failed")
	}
	if tb.MarkFenced(1) {
		t.Fatal("double MarkFenced reported a second transition")
	}
	if !tb.Fenced(1) {
		t.Fatal("Fenced(1) = false after MarkFenced")
	}
	if !tb.IsMember(1) {
		t.Fatal("a fenced node must stay a member: its state is frozen, not reclaimed")
	}
	if tb.Epoch() != epoch {
		t.Fatalf("fence bumped the epoch %d -> %d; fences must stay invisible to epoch-keyed caches", epoch, tb.Epoch())
	}

	// A fenced node may be on the wrong side of the cut: it cannot
	// sponsor joins.  Fence node 0 too and the sponsor role skips to the
	// lowest unfenced live id.
	if !tb.MarkFenced(0) {
		t.Fatal("MarkFenced(0) failed")
	}
	if s, ok := tb.Sponsor(); !ok || s != 2 {
		t.Fatalf("sponsor = %d,%v with 0 and 1 fenced, want 2,true", s, ok)
	}
	if got := tb.FencedIDs(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("FencedIDs() = %v, want [0 1]", got)
	}

	// Heal: unfence is idempotent and restores the sponsor order.
	if !tb.Unfence(0) {
		t.Fatal("Unfence(0) failed")
	}
	if tb.Unfence(0) {
		t.Fatal("double Unfence reported a second transition")
	}
	if s, ok := tb.Sponsor(); !ok || s != 0 {
		t.Fatalf("sponsor = %d,%v after heal, want 0,true", s, ok)
	}
	if tb.Epoch() != epoch {
		t.Fatalf("unfence bumped the epoch to %d", tb.Epoch())
	}

	// Death supersedes the fence: the overlay clears with the terminal
	// transition, and a dead node can never be unfenced back to life.
	if !tb.MarkDead(1, 500) {
		t.Fatal("MarkDead on a fenced member failed")
	}
	if tb.Fenced(1) {
		t.Fatal("fence survived the death transition")
	}
	if tb.Unfence(1) {
		t.Fatal("Unfence resurrected a dead node")
	}
	if tb.MarkFenced(1) {
		t.Fatal("MarkFenced accepted a dead node")
	}

	// Out-of-range ids are rejected, not panicked on.
	if tb.MarkFenced(-1) || tb.MarkFenced(7) || tb.Unfence(-1) || tb.Unfence(7) {
		t.Fatal("fence ops accepted out-of-range ids")
	}
	// Never-joined capacity is not a member and cannot fence.
	if tb.MarkFenced(3) {
		t.Fatal("MarkFenced accepted never-joined capacity")
	}
}
