package member

import (
	"testing"
)

// TestLifecycle walks one id through join → drain → leave and checks
// the epoch advances once per committed transition.
func TestLifecycle(t *testing.T) {
	tb := New(2, 4)
	if got := tb.Count(); got != 2 {
		t.Fatalf("initial count = %d, want 2", got)
	}
	if s, ok := tb.Sponsor(); !ok || s != 0 {
		t.Fatalf("sponsor = %d,%v, want 0,true", s, ok)
	}
	if tb.Epoch() != 0 {
		t.Fatalf("fresh table epoch = %d, want 0", tb.Epoch())
	}

	if err := tb.BeginJoin(2); err != nil {
		t.Fatal(err)
	}
	if got := tb.Status(2); got != Joining {
		t.Fatalf("status after BeginJoin = %v", got)
	}
	if e := tb.CommitJoin(2, 100); e != 1 {
		t.Fatalf("epoch after join = %d, want 1", e)
	}
	if !tb.IsMember(2) || tb.Count() != 3 {
		t.Fatalf("join did not make node 2 a member (count %d)", tb.Count())
	}

	if !tb.BeginDrain(2) {
		t.Fatal("BeginDrain on a live member failed")
	}
	if got := tb.Status(2); got != Draining {
		t.Fatalf("status after BeginDrain = %v", got)
	}
	if !tb.IsMember(2) {
		t.Fatal("a draining node must still be a member")
	}
	if e := tb.CommitLeave(2, 200); e != 2 {
		t.Fatalf("epoch after leave = %d, want 2", e)
	}
	if !tb.Gone(2) || tb.Count() != 2 {
		t.Fatalf("leave did not retire node 2 (count %d)", tb.Count())
	}

	evs := tb.Events()
	if len(evs) != 2 || evs[0].Action != Joined || evs[1].Action != Departed {
		t.Fatalf("timeline = %+v, want join then leave", evs)
	}
}

// TestJoinValidation pins the admissibility rules: out-of-range,
// double-join, member ids and dead ids are all rejected; departed ids
// may rejoin.
func TestJoinValidation(t *testing.T) {
	tb := New(2, 4)
	if err := tb.BeginJoin(4); err == nil {
		t.Error("join beyond capacity accepted")
	}
	if err := tb.BeginJoin(0); err == nil {
		t.Error("join of a live member accepted")
	}
	if err := tb.BeginJoin(3); err != nil {
		t.Fatal(err)
	}
	if err := tb.BeginJoin(3); err == nil {
		t.Error("double join of the same id accepted")
	}
	tb.AbortJoin(3)
	if got := tb.Status(3); got != Absent {
		t.Errorf("status after AbortJoin = %v, want absent", got)
	}
	if err := tb.BeginJoin(3); err != nil {
		t.Errorf("rejoin after abort rejected: %v", err)
	}
	tb.CommitJoin(3, 0)
	tb.CommitLeave(3, 0)
	if err := tb.BeginJoin(3); err != nil {
		t.Errorf("rejoin of a departed id rejected: %v", err)
	}
	tb.AbortJoin(3)
	tb.MarkDead(1, 0)
	if err := tb.BeginJoin(1); err == nil {
		t.Error("join of a dead (fenced) id accepted")
	}
}

// TestDoubleReclamationFence pins the drain/crash interplay: once a
// leave commits, a crash declaration for the same id must be a no-op,
// and vice versa.
func TestDoubleReclamationFence(t *testing.T) {
	tb := New(3, 3)
	tb.BeginDrain(1)
	tb.CommitLeave(1, 50)
	if tb.MarkDead(1, 60) {
		t.Error("MarkDead succeeded on a node that already left")
	}
	if got := tb.Status(1); got != Left {
		t.Errorf("status = %v, want left", got)
	}

	if !tb.MarkDead(2, 70) {
		t.Error("MarkDead failed on a live member")
	}
	if tb.MarkDead(2, 80) {
		t.Error("MarkDead succeeded twice for the same node")
	}
	if tb.BeginDrain(2) {
		t.Error("BeginDrain succeeded on a dead node")
	}
}

// TestParseSchedule covers the CLI schedule grammar.
func TestParseSchedule(t *testing.T) {
	got, err := ParseSchedule("5@3,4@2")
	if err != nil {
		t.Fatal(err)
	}
	want := []ScheduleEntry{{Node: 4, Round: 2}, {Node: 5, Round: 3}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("ParseSchedule = %+v, want %+v (sorted by round)", got, want)
	}
	if es, err := ParseSchedule(""); err != nil || es != nil {
		t.Errorf("empty schedule = %v, %v", es, err)
	}
	for _, bad := range []string{"4", "x@2", "4@0", "-1@2", "4@x"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}
