// Package member tracks runtime cluster membership for elastic DSM
// topologies: which node ids are live, joining, draining, departed or
// dead, and the membership epoch — a generation counter bumped by every
// committed transition, used as the fence against stale traffic from
// former members.
//
// The table is written rarely (joins, leaves, deaths) and read on hot
// paths (barrier membership counts, stale-epoch checks), so reads go
// through an immutable copy-on-write snapshot behind an atomic pointer —
// the same discipline internal/core uses for its object and crash
// tables.  A system with no membership configuration never constructs a
// Table at all; every caller nil-checks, keeping fixed-membership runs
// byte-identical to before this layer existed.
package member

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Status is one node id's membership state.
type Status uint8

const (
	// Absent ids are provisioned capacity that has never joined.
	Absent Status = iota
	// Joining ids are mid-handshake: reserved, not yet announced.
	Joining
	// Live ids are full members.
	Live
	// Draining ids are members with a pending graceful leave: they take
	// no new work but still answer protocol traffic.
	Draining
	// Left ids departed gracefully; their state was handed off.
	Left
	// Dead ids crashed and were declared; their state was reclaimed.
	Dead
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Absent:
		return "absent"
	case Joining:
		return "joining"
	case Live:
		return "live"
	case Draining:
		return "draining"
	case Left:
		return "left"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Action is a committed membership transition kind, for the event log.
type Action uint8

const (
	// Joined records a committed join.
	Joined Action = iota
	// Departed records a completed graceful leave.
	Departed
	// Died records a crash declaration.
	Died
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Joined:
		return "joined"
	case Departed:
		return "left"
	case Died:
		return "died"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// Event is one committed transition in the membership timeline.
type Event struct {
	Epoch  uint64
	Node   int
	Action Action
	// Cycles is the coordinating node's simulated clock at the commit.
	Cycles uint64
}

// view is one immutable membership snapshot.  fenced is the reversible
// partition overlay: a fenced id is still a member (its tokens are
// frozen, not reclaimed) but takes no coordination roles until the
// partition heals.  Fencing deliberately does not bump the epoch —
// the node never stopped being a member, so its post-heal traffic must
// not be rejected as stale.
type view struct {
	epoch  uint64
	status []Status
	fenced []bool
}

// Table is the membership state of one system.
type Table struct {
	initial int
	max     int

	mu     sync.Mutex
	snap   atomic.Pointer[view]
	events []Event
}

// New returns a table over max provisioned ids with ids [0, initial)
// live at epoch zero.
func New(initial, max int) *Table {
	if initial <= 0 || max < initial {
		panic(fmt.Sprintf("member: invalid membership bounds initial=%d max=%d", initial, max))
	}
	st := make([]Status, max)
	for i := 0; i < initial; i++ {
		st[i] = Live
	}
	t := &Table{initial: initial, max: max}
	t.snap.Store(&view{status: st})
	return t
}

// Initial returns the founding member count.  Synchronization-object
// management stays homed on founding members, so joiners never become
// managers.
func (t *Table) Initial() int { return t.initial }

// Max returns the provisioned capacity.
func (t *Table) Max() int { return t.max }

// Epoch returns the current membership generation.
func (t *Table) Epoch() uint64 { return t.snap.Load().epoch }

// Status returns node i's membership state.
func (t *Table) Status(i int) Status {
	v := t.snap.Load()
	if i < 0 || i >= len(v.status) {
		return Absent
	}
	return v.status[i]
}

// IsMember reports whether node i currently answers protocol traffic
// (live or draining).
func (t *Table) IsMember(i int) bool {
	s := t.Status(i)
	return s == Live || s == Draining
}

// Gone reports whether node i was once a member and no longer is.
func (t *Table) Gone(i int) bool {
	s := t.Status(i)
	return s == Left || s == Dead
}

// Members returns the current member ids (live and draining), ascending.
func (t *Table) Members() []int {
	v := t.snap.Load()
	out := make([]int, 0, len(v.status))
	for i, s := range v.status {
		if s == Live || s == Draining {
			out = append(out, i)
		}
	}
	return out
}

// Count returns the current member count (live and draining).
func (t *Table) Count() int {
	v := t.snap.Load()
	n := 0
	for _, s := range v.status {
		if s == Live || s == Draining {
			n++
		}
	}
	return n
}

// Sponsor returns the lowest-numbered live, unfenced member — the node a
// joiner dials — and false if none exists.  A fenced node cannot sponsor:
// it may be on the wrong side of a partition and any state it transferred
// could be stale.
func (t *Table) Sponsor() (int, bool) {
	v := t.snap.Load()
	for i, s := range v.status {
		if s == Live && !v.isFenced(i) {
			return i, true
		}
	}
	return 0, false
}

// isFenced reports the fence overlay for id i within one snapshot.
func (v *view) isFenced(i int) bool {
	return i >= 0 && i < len(v.fenced) && v.fenced[i]
}

// Fenced reports whether node i is currently partition-fenced.
func (t *Table) Fenced(i int) bool {
	return t.snap.Load().isFenced(i)
}

// FencedIDs returns the currently fenced node ids, ascending.
func (t *Table) FencedIDs() []int {
	v := t.snap.Load()
	var out []int
	for i := range v.fenced {
		if v.fenced[i] {
			out = append(out, i)
		}
	}
	return out
}

// MarkFenced records that a current member lost its quorum and
// self-fenced.  The transition is reversible (see Unfence) and does not
// bump the epoch.  It reports false — and changes nothing — when the node
// is not currently a member or is already fenced.
func (t *Table) MarkFenced(id int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.snap.Load()
	if id < 0 || id >= t.max || v.isFenced(id) {
		return false
	}
	if s := v.status[id]; s != Live && s != Draining {
		return false
	}
	t.setFence(id, true)
	return true
}

// Unfence lifts a partition fence after heal.  It reports false when the
// node was not fenced (including when a concurrent crash declaration
// already moved it to Dead — a dead node stays dead).
func (t *Table) Unfence(id int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.snap.Load()
	if id < 0 || id >= t.max || !v.isFenced(id) {
		return false
	}
	t.setFence(id, false)
	return true
}

// setFence publishes a new snapshot with id's fence overlay set to on.
// Caller holds t.mu.
func (t *Table) setFence(id int, on bool) {
	old := t.snap.Load()
	fe := make([]bool, t.max)
	copy(fe, old.fenced)
	fe[id] = on
	t.snap.Store(&view{epoch: old.epoch, status: old.status, fenced: fe})
}

// mutate publishes a new snapshot with node i set to s, bumping the
// epoch when bump is set.  A terminal transition (Left, Dead) clears the
// fence overlay — the fence is a partition state, not an afterlife.
// Caller holds t.mu.
func (t *Table) mutate(i int, s Status, bump bool) *view {
	old := t.snap.Load()
	st := append([]Status(nil), old.status...)
	st[i] = s
	nv := &view{epoch: old.epoch, status: st, fenced: old.fenced}
	if (s == Left || s == Dead) && old.isFenced(i) {
		fe := make([]bool, t.max)
		copy(fe, old.fenced)
		fe[i] = false
		nv.fenced = fe
	}
	if bump {
		nv.epoch++
	}
	t.snap.Store(nv)
	return nv
}

// BeginJoin reserves node id for a join handshake.  Only absent and
// gracefully-departed ids are admissible: dead ids stay fenced (their
// ghost routing state is load-bearing) and current members cannot join
// twice.
func (t *Table) BeginJoin(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= t.max {
		return fmt.Errorf("member: join id %d outside provisioned capacity [0,%d)", id, t.max)
	}
	switch s := t.snap.Load().status[id]; s {
	case Absent, Left:
		t.mutate(id, Joining, false)
		return nil
	case Joining:
		return fmt.Errorf("member: node %d is already joining", id)
	case Live, Draining:
		return fmt.Errorf("member: node %d is already a member", id)
	default: // Dead
		return fmt.Errorf("member: node %d crashed and its id is fenced", id)
	}
}

// AbortJoin releases a reservation made by BeginJoin (a rejected
// handshake), returning the id to Absent.
func (t *Table) AbortJoin(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.snap.Load().status[id] == Joining {
		t.mutate(id, Absent, false)
	}
}

// CommitJoin makes a reserved id live, bumps the epoch and records the
// event.  It returns the new epoch.
func (t *Table) CommitJoin(id int, cycles uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	nv := t.mutate(id, Live, true)
	t.events = append(t.events, Event{Epoch: nv.epoch, Node: id, Action: Joined, Cycles: cycles})
	return nv.epoch
}

// BeginDrain marks a live member as draining.  It reports whether the
// transition happened (false when the node is not currently live, so a
// repeated request or a race with a crash declaration is a no-op).
func (t *Table) BeginDrain(id int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= t.max || t.snap.Load().status[id] != Live {
		return false
	}
	t.mutate(id, Draining, false)
	return true
}

// CommitLeave completes a graceful departure, bumps the epoch and
// records the event.  It returns the new epoch.
func (t *Table) CommitLeave(id int, cycles uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	nv := t.mutate(id, Left, true)
	t.events = append(t.events, Event{Epoch: nv.epoch, Node: id, Action: Departed, Cycles: cycles})
	return nv.epoch
}

// MarkDead records a crash declaration for a current member and bumps
// the epoch.  It reports false — and changes nothing — when the node has
// already left or died, which is the double-reclamation fence: a node
// whose graceful drain committed cannot also be reclaimed as a corpse.
func (t *Table) MarkDead(id int, cycles uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= t.max {
		return false
	}
	switch t.snap.Load().status[id] {
	case Live, Draining, Joining:
		nv := t.mutate(id, Dead, true)
		t.events = append(t.events, Event{Epoch: nv.epoch, Node: id, Action: Died, Cycles: cycles})
		return true
	default:
		return false
	}
}

// Events returns a copy of the membership timeline in commit order.
func (t *Table) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// ScheduleEntry is one planned membership change: node Node joins or
// drains when the workload reaches round Round.
type ScheduleEntry struct {
	Node  int
	Round int
}

// ParseSchedule parses a comma-separated churn schedule like "4@2,5@3"
// (node 4 at round 2, node 5 at round 3).  Entries are returned sorted
// by round, then node.
func ParseSchedule(spec string) ([]ScheduleEntry, error) {
	if spec == "" {
		return nil, nil
	}
	var out []ScheduleEntry
	for _, field := range strings.Split(spec, ",") {
		nodeStr, roundStr, ok := strings.Cut(strings.TrimSpace(field), "@")
		if !ok {
			return nil, fmt.Errorf("member: schedule %q: entry %q is not NODE@ROUND", spec, field)
		}
		node, err := strconv.Atoi(nodeStr)
		if err != nil || node < 0 {
			return nil, fmt.Errorf("member: schedule %q: node %q is not a non-negative integer", spec, nodeStr)
		}
		round, err := strconv.Atoi(roundStr)
		if err != nil || round < 1 {
			return nil, fmt.Errorf("member: schedule %q: round %q is not a positive integer", spec, roundStr)
		}
		out = append(out, ScheduleEntry{Node: node, Round: round})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Round != out[j].Round {
			return out[i].Round < out[j].Round
		}
		return out[i].Node < out[j].Node
	})
	return out, nil
}
