package stats

import (
	"sync"
	"testing"
)

func TestSnapshotCopiesAllCounters(t *testing.T) {
	var n Node
	n.DirtybitsSet.Store(1)
	n.DirtybitsMisclassified.Store(2)
	n.CleanDirtybitsRead.Store(3)
	n.DirtyDirtybitsRead.Store(4)
	n.DirtybitsUpdated.Store(5)
	n.WriteFaults.Store(6)
	n.PagesDiffed.Store(7)
	n.PagesWriteProtected.Store(8)
	n.TwinBytesUpdated.Store(9)
	n.DiffRuns.Store(10)
	n.BytesTransferred.Store(11)
	n.BytesScanned.Store(12)
	n.DirtyBytes.Store(13)
	n.Messages.Store(14)
	n.MessageBytes.Store(15)
	n.LockTransfers.Store(16)
	n.BarrierCrossings.Store(17)

	s := n.Snapshot()
	want := Snapshot{
		DirtybitsSet: 1, DirtybitsMisclassified: 2, CleanDirtybitsRead: 3,
		DirtyDirtybitsRead: 4, DirtybitsUpdated: 5, WriteFaults: 6,
		PagesDiffed: 7, PagesWriteProtected: 8, TwinBytesUpdated: 9,
		DiffRuns: 10, BytesTransferred: 11, BytesScanned: 12, DirtyBytes: 13,
		Messages: 14, MessageBytes: 15, LockTransfers: 16, BarrierCrossings: 17,
	}
	if s != want {
		t.Errorf("snapshot = %+v, want %+v", s, want)
	}
}

func TestAddAndScale(t *testing.T) {
	a := Snapshot{DirtybitsSet: 10, WriteFaults: 4, BytesTransferred: 100}
	b := Snapshot{DirtybitsSet: 6, WriteFaults: 2, BytesTransferred: 50}
	a.Add(b)
	if a.DirtybitsSet != 16 || a.WriteFaults != 6 || a.BytesTransferred != 150 {
		t.Errorf("Add produced %+v", a)
	}
	a.Scale(2)
	if a.DirtybitsSet != 8 || a.WriteFaults != 3 || a.BytesTransferred != 75 {
		t.Errorf("Scale produced %+v", a)
	}
	// Scaling by zero is a no-op, not a crash.
	a.Scale(0)
	if a.DirtybitsSet != 8 {
		t.Error("Scale(0) modified the snapshot")
	}
}

func TestPercentDirty(t *testing.T) {
	s := Snapshot{BytesScanned: 200, DirtyBytes: 50}
	if got := s.PercentDirty(); got != 25 {
		t.Errorf("PercentDirty = %g, want 25", got)
	}
	var empty Snapshot
	if got := empty.PercentDirty(); got != 0 {
		t.Errorf("PercentDirty on empty = %g, want 0", got)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	var n Node
	var wg sync.WaitGroup
	const workers = 8
	const each = 10000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				n.DirtybitsSet.Add(1)
				n.BytesTransferred.Add(3)
			}
		}()
	}
	wg.Wait()
	s := n.Snapshot()
	if s.DirtybitsSet != workers*each {
		t.Errorf("DirtybitsSet = %d, want %d", s.DirtybitsSet, workers*each)
	}
	if s.BytesTransferred != workers*each*3 {
		t.Errorf("BytesTransferred = %d, want %d", s.BytesTransferred, workers*each*3)
	}
}
