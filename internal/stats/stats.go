// Package stats collects per-node invocation counts of the primitive
// operations that make up write trapping and write collection.  The counter
// set mirrors the paper's Table 2 row for row, so that the evaluation
// harness can regenerate Tables 2–5 by combining these counts with the cost
// model, exactly as the paper does.
//
// All counters are updated with atomic operations: the application
// goroutine and the node's protocol handler charge them concurrently.
package stats

import "sync/atomic"

// Node holds the primitive-operation counters for one processor.
// The zero value is ready to use.
type Node struct {
	// RT-DSM counters.

	// DirtybitsSet counts stores to shared memory that set a dirtybit
	// (write trapping).
	DirtybitsSet atomic.Uint64
	// DirtybitsMisclassified counts stores the compiler instrumented that
	// turned out to hit private memory, paying the six-cycle null-template
	// penalty.
	DirtybitsMisclassified atomic.Uint64
	// CleanDirtybitsRead counts dirtybits scanned during write collection
	// whose line did not need to be sent.
	CleanDirtybitsRead atomic.Uint64
	// DirtyDirtybitsRead counts dirtybits scanned during write collection
	// whose line was sent (and whose timestamp was finalized).
	DirtyDirtybitsRead atomic.Uint64
	// DirtybitsUpdated counts dirtybits written with a new timestamp at
	// the requesting processor when incoming updates are applied.
	DirtybitsUpdated atomic.Uint64

	// VM-DSM counters.

	// WriteFaults counts page write faults fielded (first store to a clean
	// page: twin creation plus protection upgrade).
	WriteFaults atomic.Uint64
	// PagesDiffed counts pages compared against their twins during write
	// collection.
	PagesDiffed atomic.Uint64
	// PagesWriteProtected counts protection calls revoking write access
	// after a page's modifications have been shipped.
	PagesWriteProtected atomic.Uint64
	// TwinBytesUpdated counts bytes of incoming updates applied to local
	// twins (needed so a remote write is not mistaken for a local one).
	TwinBytesUpdated atomic.Uint64
	// DiffRuns accumulates the number of modified runs observed across all
	// page diffs; the harness uses it to charge interpolated diff costs.
	DiffRuns atomic.Uint64

	// Shared counters.

	// BytesTransferred counts application data bytes shipped to other
	// processors (updates only, excluding protocol headers, matching the
	// paper's "data transferred" row).
	BytesTransferred atomic.Uint64
	// BytesScanned counts bytes of bound data examined during collection;
	// together with DirtyBytes it yields the "percent dirty data" row.
	BytesScanned atomic.Uint64
	// DirtyBytes counts bytes of bound data found modified during
	// collection.
	DirtyBytes atomic.Uint64
	// Messages counts protocol messages sent by this node.
	Messages atomic.Uint64
	// MessageBytes counts total bytes (payload) of protocol messages sent.
	MessageBytes atomic.Uint64
	// LockTransfers counts lock acquisitions that required a remote
	// transfer.
	LockTransfers atomic.Uint64
	// BarrierCrossings counts barrier episodes completed.
	BarrierCrossings atomic.Uint64
}

// Snapshot is an immutable copy of a Node's counters, convenient for
// aggregation and reporting.
type Snapshot struct {
	DirtybitsSet           uint64
	DirtybitsMisclassified uint64
	CleanDirtybitsRead     uint64
	DirtyDirtybitsRead     uint64
	DirtybitsUpdated       uint64

	WriteFaults         uint64
	PagesDiffed         uint64
	PagesWriteProtected uint64
	TwinBytesUpdated    uint64
	DiffRuns            uint64

	BytesTransferred uint64
	BytesScanned     uint64
	DirtyBytes       uint64
	Messages         uint64
	MessageBytes     uint64
	LockTransfers    uint64
	BarrierCrossings uint64
}

// Snapshot returns a point-in-time copy of the counters.
func (n *Node) Snapshot() Snapshot {
	return Snapshot{
		DirtybitsSet:           n.DirtybitsSet.Load(),
		DirtybitsMisclassified: n.DirtybitsMisclassified.Load(),
		CleanDirtybitsRead:     n.CleanDirtybitsRead.Load(),
		DirtyDirtybitsRead:     n.DirtyDirtybitsRead.Load(),
		DirtybitsUpdated:       n.DirtybitsUpdated.Load(),

		WriteFaults:         n.WriteFaults.Load(),
		PagesDiffed:         n.PagesDiffed.Load(),
		PagesWriteProtected: n.PagesWriteProtected.Load(),
		TwinBytesUpdated:    n.TwinBytesUpdated.Load(),
		DiffRuns:            n.DiffRuns.Load(),

		BytesTransferred: n.BytesTransferred.Load(),
		BytesScanned:     n.BytesScanned.Load(),
		DirtyBytes:       n.DirtyBytes.Load(),
		Messages:         n.Messages.Load(),
		MessageBytes:     n.MessageBytes.Load(),
		LockTransfers:    n.LockTransfers.Load(),
		BarrierCrossings: n.BarrierCrossings.Load(),
	}
}

// Add accumulates another snapshot into s.
func (s *Snapshot) Add(o Snapshot) {
	s.DirtybitsSet += o.DirtybitsSet
	s.DirtybitsMisclassified += o.DirtybitsMisclassified
	s.CleanDirtybitsRead += o.CleanDirtybitsRead
	s.DirtyDirtybitsRead += o.DirtyDirtybitsRead
	s.DirtybitsUpdated += o.DirtybitsUpdated

	s.WriteFaults += o.WriteFaults
	s.PagesDiffed += o.PagesDiffed
	s.PagesWriteProtected += o.PagesWriteProtected
	s.TwinBytesUpdated += o.TwinBytesUpdated
	s.DiffRuns += o.DiffRuns

	s.BytesTransferred += o.BytesTransferred
	s.BytesScanned += o.BytesScanned
	s.DirtyBytes += o.DirtyBytes
	s.Messages += o.Messages
	s.MessageBytes += o.MessageBytes
	s.LockTransfers += o.LockTransfers
	s.BarrierCrossings += o.BarrierCrossings
}

// Scale divides every counter by n (integer division), producing the
// per-processor averages the paper reports in Table 2.
func (s *Snapshot) Scale(n uint64) {
	if n == 0 {
		return
	}
	s.DirtybitsSet /= n
	s.DirtybitsMisclassified /= n
	s.CleanDirtybitsRead /= n
	s.DirtyDirtybitsRead /= n
	s.DirtybitsUpdated /= n

	s.WriteFaults /= n
	s.PagesDiffed /= n
	s.PagesWriteProtected /= n
	s.TwinBytesUpdated /= n
	s.DiffRuns /= n

	s.BytesTransferred /= n
	s.BytesScanned /= n
	s.DirtyBytes /= n
	s.Messages /= n
	s.MessageBytes /= n
	s.LockTransfers /= n
	s.BarrierCrossings /= n
}

// PercentDirty returns the percentage of scanned bound data that was found
// modified during collection, matching the paper's "percent dirty data" row.
func (s Snapshot) PercentDirty() float64 {
	if s.BytesScanned == 0 {
		return 0
	}
	return 100 * float64(s.DirtyBytes) / float64(s.BytesScanned)
}
