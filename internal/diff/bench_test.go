package diff

import "testing"

// The benchmarks cover the three shapes that dominate VM-DSM collection:
// clean pages (no words changed), sparse modification (a line here and
// there), and the paper's worst case (every other word changed).

const benchPage = 4096

func benchPair(pattern string) (cur, twin []byte) {
	twin = make([]byte, benchPage)
	for i := range twin {
		twin[i] = byte(i * 7)
	}
	cur = append([]byte(nil), twin...)
	switch pattern {
	case "clean":
	case "sparse": // one word per 256 bytes
		for i := 0; i < benchPage; i += 256 {
			cur[i] ^= 0xFF
		}
	case "half": // every other word — the paper's diff worst case
		for i := 0; i < benchPage; i += 2 * WordSize {
			cur[i] ^= 0xFF
		}
	case "all":
		for i := range cur {
			cur[i] ^= 0xFF
		}
	default:
		panic(pattern)
	}
	return cur, twin
}

var sinkDiff Diff

func benchCompute(b *testing.B, pattern string) {
	cur, twin := benchPair(pattern)
	b.SetBytes(benchPage)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkDiff = Compute(cur, twin)
	}
}

func BenchmarkComputeClean(b *testing.B)  { benchCompute(b, "clean") }
func BenchmarkComputeSparse(b *testing.B) { benchCompute(b, "sparse") }
func BenchmarkComputeHalf(b *testing.B)   { benchCompute(b, "half") }
func BenchmarkComputeAll(b *testing.B)    { benchCompute(b, "all") }

func BenchmarkMerge(b *testing.B) {
	cura, twin := benchPair("sparse")
	older := Compute(cura, twin)
	curb := append([]byte(nil), twin...)
	for i := 128; i < benchPage; i += 256 {
		curb[i] ^= 0xFF
	}
	newer := Compute(curb, twin)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkDiff = Merge(older, newer)
	}
}

func BenchmarkApply(b *testing.B) {
	cur, twin := benchPair("sparse")
	d := Compute(cur, twin)
	buf := make([]byte, benchPage)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Apply(buf)
	}
}
