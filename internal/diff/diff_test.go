package diff

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeEmpty(t *testing.T) {
	buf := make([]byte, 64)
	d := Compute(buf, buf)
	if !d.Empty() {
		t.Errorf("identical buffers produced %d runs", len(d.Runs))
	}
	if d.Bytes() != 0 {
		t.Errorf("empty diff carries %d bytes", d.Bytes())
	}
}

func TestComputeSingleWord(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	cur[8] = 0xFF
	d := Compute(cur, twin)
	if len(d.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(d.Runs))
	}
	if d.Runs[0].Off != 8 || len(d.Runs[0].Data) != WordSize {
		t.Errorf("run = {off %d, len %d}, want {8, %d}", d.Runs[0].Off, len(d.Runs[0].Data), WordSize)
	}
}

func TestComputeAdjacentWordsCoalesce(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	cur[4], cur[9], cur[12] = 1, 2, 3 // words 1, 2, 3 modified
	d := Compute(cur, twin)
	if len(d.Runs) != 1 {
		t.Fatalf("adjacent modified words produced %d runs, want 1", len(d.Runs))
	}
	if d.Runs[0].Off != 4 || len(d.Runs[0].Data) != 12 {
		t.Errorf("run = {%d, %d}, want {4, 12}", d.Runs[0].Off, len(d.Runs[0].Data))
	}
}

func TestComputeAlternatingWorstCase(t *testing.T) {
	const n = 256
	twin := make([]byte, n)
	cur := make([]byte, n)
	for w := 0; w < n/WordSize; w += 2 {
		cur[w*WordSize] = 1
	}
	d := Compute(cur, twin)
	if len(d.Runs) != n/WordSize/2 {
		t.Errorf("alternating pattern: %d runs, want %d", len(d.Runs), n/WordSize/2)
	}
}

func TestApplyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := (rng.Intn(64) + 1) * WordSize
		twin := make([]byte, n)
		cur := make([]byte, n)
		rng.Read(twin)
		copy(cur, twin)
		// Random modifications.
		for k := 0; k < rng.Intn(20); k++ {
			cur[rng.Intn(n)] = byte(rng.Int())
		}
		d := Compute(cur, twin)
		got := append([]byte(nil), twin...)
		d.Apply(got)
		if !bytes.Equal(got, cur) {
			t.Fatalf("trial %d: apply(twin, diff) != cur", trial)
		}
	}
}

// TestDiffApplyIdentity is the core property: for any twin and current
// buffer, applying Compute(cur, twin) to the twin yields cur.
func TestDiffApplyIdentity(t *testing.T) {
	f := func(seed int64, words uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := (int(words)%64 + 1) * WordSize
		twin := make([]byte, n)
		cur := make([]byte, n)
		rng.Read(twin)
		rng.Read(cur)
		d := Compute(cur, twin)
		got := append([]byte(nil), twin...)
		d.Apply(got)
		return bytes.Equal(got, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDiffMinimality: the diff carries no unmodified words.
func TestDiffMinimality(t *testing.T) {
	f := func(seed int64, words uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := (int(words)%64 + 1) * WordSize
		twin := make([]byte, n)
		cur := make([]byte, n)
		rng.Read(twin)
		copy(cur, twin)
		for k := 0; k < rng.Intn(10); k++ {
			cur[rng.Intn(n)] ^= 0xFF
		}
		d := Compute(cur, twin)
		for _, run := range d.Runs {
			// Every word in a run must actually differ.
			for off := run.Off; off < run.End(); off += WordSize {
				if bytes.Equal(cur[off:off+WordSize], twin[off:off+WordSize]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	Compute(make([]byte, 8), make([]byte, 12))
}

func TestRestrict(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	for i := range cur {
		cur[i] = byte(i + 1)
	}
	d := Compute(cur, twin) // one run covering everything
	r := d.Restrict(16, 8)
	if len(r.Runs) != 1 {
		t.Fatalf("restrict produced %d runs", len(r.Runs))
	}
	if r.Runs[0].Off != 16 || len(r.Runs[0].Data) != 8 {
		t.Errorf("restricted run = {%d, %d}, want {16, 8}", r.Runs[0].Off, len(r.Runs[0].Data))
	}
	if r.Runs[0].Data[0] != 17 {
		t.Errorf("restricted data starts with %d, want 17", r.Runs[0].Data[0])
	}
	// Restricting outside the run yields nothing.
	if got := d.Restrict(64, 8); !got.Empty() {
		t.Error("restrict past end returned runs")
	}
}

func TestMergeNewerWins(t *testing.T) {
	older := Diff{Runs: []Run{{Off: 0, Data: []byte{1, 1, 1, 1}}}}
	newer := Diff{Runs: []Run{{Off: 2, Data: []byte{9, 9}}}}
	m := Merge(older, newer)
	buf := make([]byte, 4)
	m.Apply(buf)
	want := []byte{1, 1, 9, 9}
	if !bytes.Equal(buf, want) {
		t.Errorf("merged apply = %v, want %v", buf, want)
	}
}

func TestMergeDisjointSorted(t *testing.T) {
	a := Diff{Runs: []Run{{Off: 8, Data: []byte{2, 2}}}}
	b := Diff{Runs: []Run{{Off: 0, Data: []byte{1, 1}}}}
	m := Merge(a, b)
	if len(m.Runs) != 2 {
		t.Fatalf("merge produced %d runs, want 2", len(m.Runs))
	}
	if m.Runs[0].Off != 0 || m.Runs[1].Off != 8 {
		t.Errorf("merge not sorted: offsets %d, %d", m.Runs[0].Off, m.Runs[1].Off)
	}
}

// TestMergeEquivalence: merging diffs is equivalent to applying them in
// order.
func TestMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 128
		base := make([]byte, n)
		rng.Read(base)

		mkdiff := func() Diff {
			var d Diff
			used := 0
			for k := 0; k < rng.Intn(5); k++ {
				off := uint32(rng.Intn(n - 8))
				ln := rng.Intn(8) + 1
				data := make([]byte, ln)
				rng.Read(data)
				d.Runs = append(d.Runs, Run{Off: off, Data: data})
				used += ln
			}
			return d.Normalize()
		}
		d1, d2 := mkdiff(), mkdiff()

		sequential := append([]byte(nil), base...)
		d1.Apply(sequential)
		d2.Apply(sequential)

		merged := append([]byte(nil), base...)
		Merge(d1, d2).Apply(merged)

		return bytes.Equal(sequential, merged)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeOverlaps(t *testing.T) {
	d := Diff{Runs: []Run{
		{Off: 4, Data: []byte{1, 1, 1, 1}},
		{Off: 6, Data: []byte{2, 2, 2, 2}},
	}}
	nrm := d.Normalize()
	buf := make([]byte, 10)
	nrm.Apply(buf)
	want := []byte{0, 0, 0, 0, 1, 1, 2, 2, 2, 2}
	if !bytes.Equal(buf, want) {
		t.Errorf("normalized apply = %v, want %v", buf, want)
	}
	// Runs must be disjoint and sorted after normalization.
	for i := 1; i < len(nrm.Runs); i++ {
		if nrm.Runs[i].Off < nrm.Runs[i-1].End() {
			t.Error("normalized runs overlap")
		}
	}
}
