// Package diff implements the page twinning-and-differencing machinery used
// by VM-DSM write collection.
//
// When a write fault marks a page dirty, the runtime saves a copy (the
// "twin").  At a synchronization point the current page contents are
// compared word-by-word against the twin to produce a Diff: a succinct
// run-length description of all modifications to the page.  Diffs can be
// restricted to the sub-ranges bound to a synchronization object, merged,
// and applied at the requesting processor.
package diff

import (
	"fmt"
	"sort"
)

// WordSize is the comparison granularity in bytes.  The paper diffs 32-bit
// words on the MIPS R3000.
const WordSize = 4

// Run is one maximal contiguous span of modified bytes within a page (or
// any buffer), expressed as an offset from the buffer's start plus the new
// data.
type Run struct {
	Off  uint32
	Data []byte
}

// End returns the offset just past the run.
func (r Run) End() uint32 { return r.Off + uint32(len(r.Data)) }

// Diff is an ordered, non-overlapping set of modified runs.
type Diff struct {
	Runs []Run
}

// Compute compares cur against twin (equal-length buffers) at word
// granularity and returns the runs of cur that differ.  Buffer lengths must
// be multiples of WordSize.
func Compute(cur, twin []byte) Diff {
	if len(cur) != len(twin) {
		panic(fmt.Sprintf("diff: length mismatch %d vs %d", len(cur), len(twin)))
	}
	if len(cur)%WordSize != 0 {
		panic(fmt.Sprintf("diff: length %d not a multiple of word size", len(cur)))
	}
	var d Diff
	i := 0
	n := len(cur)
	for i < n {
		// Skip equal words.
		for i < n && wordsEqual(cur, twin, i) {
			i += WordSize
		}
		if i >= n {
			break
		}
		start := i
		for i < n && !wordsEqual(cur, twin, i) {
			i += WordSize
		}
		run := Run{Off: uint32(start), Data: append([]byte(nil), cur[start:i]...)}
		d.Runs = append(d.Runs, run)
	}
	return d
}

func wordsEqual(a, b []byte, i int) bool {
	return a[i] == b[i] && a[i+1] == b[i+1] && a[i+2] == b[i+2] && a[i+3] == b[i+3]
}

// Empty reports whether the diff describes no modifications.
func (d Diff) Empty() bool { return len(d.Runs) == 0 }

// Bytes returns the total number of modified data bytes the diff carries.
func (d Diff) Bytes() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Data)
	}
	return n
}

// Apply writes the diff's runs into buf, which must be at least as long as
// the highest run end.
func (d Diff) Apply(buf []byte) {
	for _, r := range d.Runs {
		copy(buf[r.Off:r.End()], r.Data)
	}
}

// Restrict returns the portion of the diff that falls within [off, off+len).
// Run offsets in the result remain relative to the original buffer start.
func (d Diff) Restrict(off, length uint32) Diff {
	var out Diff
	end := off + length
	for _, r := range d.Runs {
		if r.End() <= off || r.Off >= end {
			continue
		}
		lo := max(r.Off, off)
		hi := min(r.End(), end)
		out.Runs = append(out.Runs, Run{
			Off:  lo,
			Data: r.Data[lo-r.Off : hi-r.Off],
		})
	}
	return out
}

// Merge combines two diffs over the same buffer, with o taking precedence
// where runs overlap (o is the newer diff).  The result is normalized:
// sorted, non-overlapping, and with adjacent runs coalesced.
func Merge(older, newer Diff) Diff {
	type span struct {
		run   Run
		newer bool
	}
	spans := make([]span, 0, len(older.Runs)+len(newer.Runs))
	for _, r := range older.Runs {
		spans = append(spans, span{run: r})
	}
	for _, r := range newer.Runs {
		spans = append(spans, span{run: r, newer: true})
	}
	if len(spans) == 0 {
		return Diff{}
	}
	// Determine the covered extent.
	var maxEnd uint32
	for _, s := range spans {
		if s.run.End() > maxEnd {
			maxEnd = s.run.End()
		}
	}
	// Paint older runs first, then newer runs, into a sparse buffer.
	buf := make([]byte, maxEnd)
	covered := make([]bool, maxEnd)
	paint := func(r Run) {
		copy(buf[r.Off:r.End()], r.Data)
		for i := r.Off; i < r.End(); i++ {
			covered[i] = true
		}
	}
	for _, s := range spans {
		if !s.newer {
			paint(s.run)
		}
	}
	for _, s := range spans {
		if s.newer {
			paint(s.run)
		}
	}
	// Re-extract maximal runs.
	var out Diff
	i := uint32(0)
	for i < maxEnd {
		for i < maxEnd && !covered[i] {
			i++
		}
		if i >= maxEnd {
			break
		}
		start := i
		for i < maxEnd && covered[i] {
			i++
		}
		out.Runs = append(out.Runs, Run{Off: start, Data: append([]byte(nil), buf[start:i]...)})
	}
	return out
}

// Normalize sorts the runs and coalesces overlapping or adjacent ones
// (later runs win on overlap).  It returns the normalized diff.
func (d Diff) Normalize() Diff {
	if len(d.Runs) <= 1 {
		return d
	}
	sorted := sort.SliceIsSorted(d.Runs, func(i, j int) bool { return d.Runs[i].Off < d.Runs[j].Off })
	if sorted {
		disjoint := true
		for i := 1; i < len(d.Runs); i++ {
			if d.Runs[i].Off < d.Runs[i-1].End() {
				disjoint = false
				break
			}
		}
		if disjoint {
			return d
		}
	}
	return Merge(Diff{}, d)
}
