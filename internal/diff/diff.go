// Package diff implements the page twinning-and-differencing machinery used
// by VM-DSM write collection.
//
// When a write fault marks a page dirty, the runtime saves a copy (the
// "twin").  At a synchronization point the current page contents are
// compared word-by-word against the twin to produce a Diff: a succinct
// run-length description of all modifications to the page.  Diffs can be
// restricted to the sub-ranges bound to a synchronization object, merged,
// and applied at the requesting processor.
package diff

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// WordSize is the comparison granularity in bytes.  The paper diffs 32-bit
// words on the MIPS R3000.
const WordSize = 4

// Run is one maximal contiguous span of modified bytes within a page (or
// any buffer), expressed as an offset from the buffer's start plus the new
// data.
type Run struct {
	Off  uint32
	Data []byte
}

// End returns the offset just past the run.
func (r Run) End() uint32 { return r.Off + uint32(len(r.Data)) }

// Diff is an ordered, non-overlapping set of modified runs.
type Diff struct {
	Runs []Run
}

// Compute compares cur against twin (equal-length buffers) at word
// granularity and returns the runs of cur that differ.  Buffer lengths must
// be multiples of WordSize.
//
// The comparison walks eight bytes at a time (two words per load) and the
// result is assembled in two passes so the whole diff costs two
// allocations — one for the run headers, one backing array shared by
// every run's data — instead of one per run.
func Compute(cur, twin []byte) Diff {
	if len(cur) != len(twin) {
		panic(fmt.Sprintf("diff: length mismatch %d vs %d", len(cur), len(twin)))
	}
	if len(cur)%WordSize != 0 {
		panic(fmt.Sprintf("diff: length %d not a multiple of word size", len(cur)))
	}
	nruns, nbytes := 0, 0
	firstStart, firstEnd := 0, 0
	scanRuns(cur, twin, func(start, end int) {
		if nruns == 0 {
			firstStart, firstEnd = start, end
		}
		nruns++
		nbytes += end - start
	})
	if nruns == 0 {
		return Diff{}
	}
	if nruns == 1 {
		// One maximal run (the fully-dirty page, typically): no need to
		// rescan, just copy it out.
		data := append(make([]byte, 0, nbytes), cur[firstStart:firstEnd]...)
		return Diff{Runs: []Run{{Off: uint32(firstStart), Data: data}}}
	}
	d := Diff{Runs: make([]Run, 0, nruns)}
	data := make([]byte, 0, nbytes)
	scanRuns(cur, twin, func(start, end int) {
		off := len(data)
		data = append(data, cur[start:end]...)
		d.Runs = append(d.Runs, Run{Off: uint32(start), Data: data[off:len(data):len(data)]})
	})
	return d
}

// scanRuns calls fn(start, end) for each maximal word-granularity run of
// bytes where cur differs from twin.  It compares two words per step: a
// doubleword XOR finds both the presence and the position (low or high
// word) of a mismatch in one operation.
func scanRuns(cur, twin []byte, fn func(start, end int)) {
	i, n := 0, len(cur)
	for i < n {
		// Skip equal words, eight bytes at a time.
		for i+8 <= n && binary.LittleEndian.Uint64(cur[i:]) == binary.LittleEndian.Uint64(twin[i:]) {
			i += 8
		}
		if i+8 <= n {
			// Mismatch inside this doubleword; it may begin in the high word.
			x := binary.LittleEndian.Uint64(cur[i:]) ^ binary.LittleEndian.Uint64(twin[i:])
			if uint32(x) == 0 {
				i += WordSize
			}
		} else {
			// At most one word of tail remains.
			if i < n && wordsEqual(cur, twin, i) {
				i += WordSize
			}
		}
		if i >= n {
			break
		}
		// cur[i:i+4] differs; extend through differing words.
		start := i
		i += WordSize
		for i < n {
			if i+8 <= n {
				x := binary.LittleEndian.Uint64(cur[i:]) ^ binary.LittleEndian.Uint64(twin[i:])
				if uint32(x) == 0 {
					break // next word equal: the run ends here
				}
				if x>>32 == 0 {
					i += WordSize // next word differs, the one after is equal
					break
				}
				i += 8
				continue
			}
			if wordsEqual(cur, twin, i) {
				break
			}
			i += WordSize
		}
		fn(start, i)
	}
}

func wordsEqual(a, b []byte, i int) bool {
	return a[i] == b[i] && a[i+1] == b[i+1] && a[i+2] == b[i+2] && a[i+3] == b[i+3]
}

// Empty reports whether the diff describes no modifications.
func (d Diff) Empty() bool { return len(d.Runs) == 0 }

// Bytes returns the total number of modified data bytes the diff carries.
func (d Diff) Bytes() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Data)
	}
	return n
}

// Apply writes the diff's runs into buf, which must be at least as long as
// the highest run end.
func (d Diff) Apply(buf []byte) {
	for _, r := range d.Runs {
		copy(buf[r.Off:r.End()], r.Data)
	}
}

// Restrict returns the portion of the diff that falls within [off, off+len).
// Run offsets in the result remain relative to the original buffer start.
func (d Diff) Restrict(off, length uint32) Diff {
	var out Diff
	end := off + length
	for _, r := range d.Runs {
		if r.End() <= off || r.Off >= end {
			continue
		}
		lo := max(r.Off, off)
		hi := min(r.End(), end)
		out.Runs = append(out.Runs, Run{
			Off:  lo,
			Data: r.Data[lo-r.Off : hi-r.Off],
		})
	}
	return out
}

// Merge combines two diffs over the same buffer, with o taking precedence
// where runs overlap (o is the newer diff).  The result is normalized:
// sorted, non-overlapping, and with adjacent runs coalesced.
func Merge(older, newer Diff) Diff {
	type span struct {
		run   Run
		newer bool
	}
	spans := make([]span, 0, len(older.Runs)+len(newer.Runs))
	for _, r := range older.Runs {
		spans = append(spans, span{run: r})
	}
	for _, r := range newer.Runs {
		spans = append(spans, span{run: r, newer: true})
	}
	if len(spans) == 0 {
		return Diff{}
	}
	// Determine the covered extent.
	var maxEnd uint32
	for _, s := range spans {
		if s.run.End() > maxEnd {
			maxEnd = s.run.End()
		}
	}
	// Paint older runs first, then newer runs, into a sparse buffer.
	buf := make([]byte, maxEnd)
	covered := make([]bool, maxEnd)
	paint := func(r Run) {
		copy(buf[r.Off:r.End()], r.Data)
		for i := r.Off; i < r.End(); i++ {
			covered[i] = true
		}
	}
	for _, s := range spans {
		if !s.newer {
			paint(s.run)
		}
	}
	for _, s := range spans {
		if s.newer {
			paint(s.run)
		}
	}
	// Re-extract maximal runs.  buf is freshly built and owned by the
	// result, so runs subslice it instead of copying.
	nruns := 0
	for i := uint32(0); i < maxEnd; {
		for i < maxEnd && !covered[i] {
			i++
		}
		if i >= maxEnd {
			break
		}
		nruns++
		for i < maxEnd && covered[i] {
			i++
		}
	}
	out := Diff{Runs: make([]Run, 0, nruns)}
	for i := uint32(0); i < maxEnd; {
		for i < maxEnd && !covered[i] {
			i++
		}
		if i >= maxEnd {
			break
		}
		start := i
		for i < maxEnd && covered[i] {
			i++
		}
		out.Runs = append(out.Runs, Run{Off: start, Data: buf[start:i:i]})
	}
	return out
}

// Normalize sorts the runs and coalesces overlapping or adjacent ones
// (later runs win on overlap).  It returns the normalized diff.
func (d Diff) Normalize() Diff {
	if len(d.Runs) <= 1 {
		return d
	}
	sorted := sort.SliceIsSorted(d.Runs, func(i, j int) bool { return d.Runs[i].Off < d.Runs[j].Off })
	if sorted {
		disjoint := true
		for i := 1; i < len(d.Runs); i++ {
			if d.Runs[i].Off < d.Runs[i-1].End() {
				disjoint = false
				break
			}
		}
		if disjoint {
			return d
		}
	}
	return Merge(Diff{}, d)
}
