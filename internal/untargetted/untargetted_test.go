package untargetted

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"midway/internal/cost"
)

// trackers builds one of each scheme over n lines.
func trackers(n int) []Tracker {
	m := cost.Default()
	return []Tracker{NewFlat(m, n), NewQueue(m, n), NewTwoLevel(m, n, 64)}
}

// TestAllSchemesAgree: every tracker reports exactly the written line set.
func TestAllSchemesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 512
		writes := make([]int, rng.Intn(200))
		want := map[int]bool{}
		for i := range writes {
			writes[i] = rng.Intn(n)
			want[writes[i]] = true
		}
		var expect []int
		for line := range want {
			expect = append(expect, line)
		}
		sort.Ints(expect)
		if expect == nil {
			expect = []int{}
		}

		for _, tr := range trackers(n) {
			for _, w := range writes {
				tr.RecordWrite(w)
			}
			got, _ := tr.Collect()
			if got == nil {
				got = []int{}
			}
			if !reflect.DeepEqual(got, expect) {
				return false
			}
			// After collection the tracker is clean.
			again, _ := tr.Collect()
			if len(again) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestTrappingCostRatios checks the paper's claims: the queue roughly
// triples trapping cost, the two-level scheme adds about 10%.
func TestTrappingCostRatios(t *testing.T) {
	m := cost.Default()
	flat := NewFlat(m, 64).RecordWrite(0)
	queue := NewQueue(m, 64).RecordWrite(0)
	twol := NewTwoLevel(m, 64, 8).RecordWrite(0)

	if queue != 3*flat {
		t.Errorf("queue trap = %d, want 3x flat (%d)", queue, 3*flat)
	}
	ratio := float64(twol) / float64(flat)
	if ratio < 1.05 || ratio > 1.25 {
		t.Errorf("two-level trap ratio = %.2f, want about 1.1", ratio)
	}
}

// TestSequentialCoalescing: sequential writes collapse into one queue run.
func TestSequentialCoalescing(t *testing.T) {
	q := NewQueue(cost.Default(), 1024)
	for i := 100; i < 200; i++ {
		q.RecordWrite(i)
	}
	if q.QueueLen() != 1 {
		t.Errorf("100 sequential writes left %d runs, want 1", q.QueueLen())
	}
	// Rewrites within the current run add nothing.
	q.RecordWrite(150)
	if q.QueueLen() != 1 {
		t.Errorf("rewrite within run grew the queue to %d", q.QueueLen())
	}
	// A jump starts a new run.
	q.RecordWrite(500)
	if q.QueueLen() != 2 {
		t.Errorf("non-sequential write left %d runs, want 2", q.QueueLen())
	}
	dirty, _ := q.Collect()
	if len(dirty) != 101 {
		t.Errorf("collected %d lines, want 101", len(dirty))
	}
}

// TestCollectionCostProportionality is the section's central claim: with
// sparse writes, the queue's collection cost tracks the dirty data, the
// flat scan tracks the shared data, and the two-level scheme sits in
// between.
func TestCollectionCostProportionality(t *testing.T) {
	m := cost.Default()
	const n = 64 * 1024
	const dirtyLines = 32 // very sparse, clustered

	flat := NewFlat(m, n)
	queue := NewQueue(m, n)
	twol := NewTwoLevel(m, n, 64)
	for _, tr := range []Tracker{flat, queue, twol} {
		for i := 0; i < dirtyLines; i++ {
			tr.RecordWrite(1000 + i)
		}
	}
	_, flatC := flat.Collect()
	_, queueC := queue.Collect()
	_, twolC := twol.Collect()

	if queueC*100 > flatC {
		t.Errorf("sparse: queue collection (%d) not far below flat scan (%d)", queueC, flatC)
	}
	if twolC*10 > flatC {
		t.Errorf("sparse: two-level collection (%d) not far below flat scan (%d)", twolC, flatC)
	}
	if queueC > twolC {
		t.Errorf("sparse: queue (%d) costlier than two-level (%d)", queueC, twolC)
	}

	// Dense random writes erode the hierarchical advantage: the two-level
	// scheme approaches the flat scan (it reads both levels).
	flat2 := NewFlat(m, n)
	twol2 := NewTwoLevel(m, n, 64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n/2; i++ {
		line := rng.Intn(n)
		flat2.RecordWrite(line)
		twol2.RecordWrite(line)
	}
	_, flatC2 := flat2.Collect()
	_, twolC2 := twol2.Collect()
	if twolC2 < flatC2 {
		t.Errorf("dense: two-level (%d) below flat (%d); it must pay for both levels", twolC2, flatC2)
	}
}

// TestTwoLevelBlockEdge: the last partial block is handled correctly.
func TestTwoLevelBlockEdge(t *testing.T) {
	tl := NewTwoLevel(cost.Default(), 100, 64) // second block is partial
	tl.RecordWrite(99)
	dirty, _ := tl.Collect()
	if len(dirty) != 1 || dirty[0] != 99 {
		t.Errorf("partial-block collect = %v", dirty)
	}
}

func TestTwoLevelBadBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-positive block size")
		}
	}()
	NewTwoLevel(cost.Default(), 10, 0)
}
