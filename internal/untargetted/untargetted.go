// Package untargetted implements the paper's Section 3.5 extensions for
// untargetted memory consistency models.
//
// Entry consistency is targetted: only the data bound to a synchronization
// object is made consistent, so write collection scans just the bound
// dirtybits.  An untargetted model (release consistency, for example) must
// make the entire shared address space consistent at a synchronization
// point, and a flat dirtybit array then costs a scan proportional to the
// amount of *shared* data rather than the amount of *dirty* data.  The
// paper sketches two trapping-time/collection-time trade-offs:
//
//   - An update queue: each store appends the written location to a
//     queue, with a simple heuristic coalescing the common sequential
//     runs.  Trapping cost roughly triples, but collection touches only
//     dirty data.
//
//   - Two-level dirtybits: each first-level bit covers many second-level
//     bits; a store sets both (one extra store, about a 10% longer
//     trapping path), and collection skips whole clean blocks.
//
// The Tracker implementations here expose both the functional behaviour
// (which lines are dirty) and the cost model (cycles charged per
// operation), so the ablation bench can reproduce the section's claims.
package untargetted

import (
	"sort"

	"midway/internal/cost"
)

// Tracker detects writes for an untargetted model over a fixed set of
// cache lines.  Implementations are not safe for concurrent use: each
// processor owns its tracker, as it owns its dirtybits.
type Tracker interface {
	// Name identifies the scheme in reports.
	Name() string
	// Lines returns the tracked line count.
	Lines() int
	// RecordWrite notes a store to the given line and returns the
	// trapping cost in cycles.
	RecordWrite(line int) cost.Cycles
	// Collect returns the sorted set of lines written since the previous
	// Collect and the collection cost in cycles, and resets the tracker.
	Collect() ([]int, cost.Cycles)
}

// Flat is the baseline: one dirtybit per line, scanned in full at every
// collection — the structure RT-DSM uses, which is exactly right for a
// targetted model and exactly wrong for an untargetted one.
type Flat struct {
	m    cost.Model
	bits []bool
}

// NewFlat returns a flat dirtybit array over n lines.
func NewFlat(m cost.Model, n int) *Flat {
	return &Flat{m: m, bits: make([]bool, n)}
}

// Name implements Tracker.
func (f *Flat) Name() string { return "flat dirtybits" }

// Lines implements Tracker.
func (f *Flat) Lines() int { return len(f.bits) }

// RecordWrite implements Tracker: one dirtybit store.
func (f *Flat) RecordWrite(line int) cost.Cycles {
	f.bits[line] = true
	return f.m.DirtybitSetDouble
}

// Collect implements Tracker: scan every line.
func (f *Flat) Collect() ([]int, cost.Cycles) {
	var dirty []int
	var c cost.Cycles
	for i, b := range f.bits {
		if b {
			c += f.m.DirtybitReadDirty
			dirty = append(dirty, i)
			f.bits[i] = false
		} else {
			c += f.m.DirtybitReadClean
		}
	}
	return dirty, c
}

// Queue is the update-queue scheme: stores append to a queue of line
// runs, coalescing sequential writes.  Trapping costs three times the
// flat store; collection walks only the queue.
type Queue struct {
	m     cost.Model
	n     int
	runs  []lineRun
	seen  []bool // dedup at collection
	trapC cost.Cycles
}

type lineRun struct {
	start, end int // [start, end)
}

// NewQueue returns an update queue over n lines.
func NewQueue(m cost.Model, n int) *Queue {
	return &Queue{
		m:     m,
		n:     n,
		seen:  make([]bool, n),
		trapC: 3 * m.DirtybitSetDouble, // "roughly triples the cost"
	}
}

// Name implements Tracker.
func (q *Queue) Name() string { return "update queue" }

// Lines implements Tracker.
func (q *Queue) Lines() int { return q.n }

// RecordWrite implements Tracker: append, extending the previous run when
// the write is sequential (the paper's queue-shrinking heuristic).
func (q *Queue) RecordWrite(line int) cost.Cycles {
	if k := len(q.runs); k > 0 {
		last := &q.runs[k-1]
		switch {
		case line == last.end:
			last.end++
			return q.trapC
		case line >= last.start && line < last.end:
			// Rewrite within the current run: nothing to record.
			return q.trapC
		}
	}
	q.runs = append(q.runs, lineRun{start: line, end: line + 1})
	return q.trapC
}

// Collect implements Tracker: drain the queue, deduplicating lines that
// were enqueued more than once.  Cost is proportional to the queued
// entries, not the shared data size.
func (q *Queue) Collect() ([]int, cost.Cycles) {
	var dirty []int
	var c cost.Cycles
	for _, r := range q.runs {
		for line := r.start; line < r.end; line++ {
			c += q.m.DirtybitReadDirty
			if !q.seen[line] {
				q.seen[line] = true
				dirty = append(dirty, line)
			}
		}
	}
	for _, line := range dirty {
		q.seen[line] = false
	}
	q.runs = q.runs[:0]
	sort.Ints(dirty)
	return dirty, c
}

// QueueLen reports the current number of queued runs (exposed so tests
// can check the sequential-coalescing heuristic).
func (q *Queue) QueueLen() int { return len(q.runs) }

// TwoLevel is the hierarchical scheme: each first-level bit covers Block
// second-level bits.  A store sets both levels (one extra store, about
// 10% more trapping time); collection scans the first level and descends
// only into blocks with writes.  The paper notes the first level could
// even be implemented with page protection.
type TwoLevel struct {
	m     cost.Model
	block int
	l1    []bool
	l2    []bool
	trapC cost.Cycles
}

// NewTwoLevel returns a two-level tracker over n lines with the given
// block size (second-level bits per first-level bit).
func NewTwoLevel(m cost.Model, n, block int) *TwoLevel {
	if block <= 0 {
		panic("untargetted: block size must be positive")
	}
	return &TwoLevel{
		m:     m,
		block: block,
		l1:    make([]bool, (n+block-1)/block),
		l2:    make([]bool, n),
		// One additional store on the write-detection path, lengthening
		// it by about 10%.
		trapC: m.DirtybitSetDouble + m.DirtybitSetDouble/10 + 1,
	}
}

// Name implements Tracker.
func (t *TwoLevel) Name() string { return "two-level dirtybits" }

// Lines implements Tracker.
func (t *TwoLevel) Lines() int { return len(t.l2) }

// RecordWrite implements Tracker: set both levels.
func (t *TwoLevel) RecordWrite(line int) cost.Cycles {
	t.l2[line] = true
	t.l1[line/t.block] = true
	return t.trapC
}

// Collect implements Tracker: scan the first level, descending only into
// dirty blocks.
func (t *TwoLevel) Collect() ([]int, cost.Cycles) {
	var dirty []int
	var c cost.Cycles
	for b, set := range t.l1 {
		if !set {
			c += t.m.DirtybitReadClean
			continue
		}
		c += t.m.DirtybitReadDirty
		t.l1[b] = false
		lo := b * t.block
		hi := min(lo+t.block, len(t.l2))
		for line := lo; line < hi; line++ {
			if t.l2[line] {
				c += t.m.DirtybitReadDirty
				dirty = append(dirty, line)
				t.l2[line] = false
			} else {
				c += t.m.DirtybitReadClean
			}
		}
	}
	return dirty, c
}
