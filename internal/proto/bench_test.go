package proto

import (
	"testing"

	"midway/internal/memory"
)

// Benchmark fixtures sized like a busy medium-scale transfer: a grant
// carrying a few dozen coalesced line updates plus a little history.

func benchUpdates(n, bytes int) []Update {
	us := make([]Update, n)
	for i := range us {
		data := make([]byte, bytes)
		for j := range data {
			data[j] = byte(i + j)
		}
		us[i] = Update{Addr: memory.Addr(4096 * i), TS: int64(100 + i), Data: data}
	}
	return us
}

func benchGrant() *LockGrant {
	us := benchUpdates(32, 128)
	return &LockGrant{
		Lock: 7, Mode: Exclusive, Time: 12345, Incarnation: 9, Base: 3, BindGen: 2,
		Binding: []memory.Range{{Addr: 0, Size: 4096}, {Addr: 8192, Size: 4096}},
		Updates: us,
		History: []HistoryEntry{{Incarnation: 8, Updates: us[:4]}},
	}
}

var (
	sinkBytes   []byte
	sinkGrant   *LockGrant
	sinkEnter   *BarrierEnter
	sinkAcquire *LockAcquire
	sinkRel     *ReliableData
)

func BenchmarkEncodeLockAcquire(b *testing.B) {
	m := &LockAcquire{Lock: 3, Mode: Shared, Requester: 5, LastTime: 99, LastIncarnation: 7, BindGen: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkBytes = m.Encode()
	}
}

func BenchmarkDecodeLockAcquire(b *testing.B) {
	buf := (&LockAcquire{Lock: 3, Mode: Shared, Requester: 5, LastTime: 99, LastIncarnation: 7, BindGen: 1}).Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := DecodeLockAcquire(buf)
		if err != nil {
			b.Fatal(err)
		}
		sinkAcquire = m
	}
}

func BenchmarkEncodeLockGrant(b *testing.B) {
	m := benchGrant()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkBytes = m.Encode()
	}
}

func BenchmarkDecodeLockGrant(b *testing.B) {
	buf := benchGrant().Encode()
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := DecodeLockGrant(buf)
		if err != nil {
			b.Fatal(err)
		}
		sinkGrant = m
	}
}

func BenchmarkRoundTripLockGrant(b *testing.B) {
	m := benchGrant()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := DecodeLockGrant(m.Encode())
		if err != nil {
			b.Fatal(err)
		}
		sinkGrant = g
	}
}

func BenchmarkEncodeBarrierEnter(b *testing.B) {
	m := &BarrierEnter{Barrier: 2, Epoch: 40, Node: 3, Time: 77, Updates: benchUpdates(16, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkBytes = m.Encode()
	}
}

func BenchmarkDecodeBarrierEnter(b *testing.B) {
	buf := (&BarrierEnter{Barrier: 2, Epoch: 40, Node: 3, Time: 77, Updates: benchUpdates(16, 64)}).Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := DecodeBarrierEnter(buf)
		if err != nil {
			b.Fatal(err)
		}
		sinkEnter = m
	}
}

// The Pooled variants measure the hot send path the transports actually
// use: a recycled encoder buffer sized by EncodedSize, released after the
// (copying) transport has taken the frame. Steady state is zero allocs.

func BenchmarkEncodeLockAcquirePooled(b *testing.B) {
	m := &LockAcquire{Lock: 3, Mode: Shared, Requester: 5, LastTime: 99, LastIncarnation: 7, BindGen: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		m.EncodeInto(e)
		sinkBytes = e.Bytes()
		e.Release()
	}
}

func BenchmarkEncodeLockGrantPooled(b *testing.B) {
	m := benchGrant()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		m.EncodeInto(e)
		sinkBytes = e.Bytes()
		e.Release()
	}
}

func BenchmarkEncodeBarrierEnterPooled(b *testing.B) {
	m := &BarrierEnter{Barrier: 2, Epoch: 40, Node: 3, Time: 77, Updates: benchUpdates(16, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		m.EncodeInto(e)
		sinkBytes = e.Bytes()
		e.Release()
	}
}

func BenchmarkRoundTripLockGrantPooled(b *testing.B) {
	m := benchGrant()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		m.EncodeInto(e)
		g, err := DecodeLockGrant(e.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		sinkGrant = g
		e.Release()
	}
}

func BenchmarkRoundTripReliableData(b *testing.B) {
	inner := benchGrant().Encode()
	m := &ReliableData{Seq: 123, Kind: KindLockGrant, Payload: inner}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := DecodeReliableData(m.Encode())
		if err != nil {
			b.Fatal(err)
		}
		sinkRel = d
	}
}
