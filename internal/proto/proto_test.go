package proto

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"midway/internal/memory"
)

func TestEncoderPrimitives(t *testing.T) {
	var e Encoder
	e.U8(0xAB)
	e.U32(0x01020304)
	e.U64(0x0102030405060708)
	e.I64(-5)
	e.Blob([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if got := d.U32(); got != 0x01020304 {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0102030405060708 {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -5 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U32()
	if d.Err() != ErrShortBuffer {
		t.Errorf("short U32 error = %v", d.Err())
	}
	// Errors stick.
	_ = d.U8()
	if d.Err() != ErrShortBuffer {
		t.Error("error did not stick")
	}
}

func TestDecoderTrailing(t *testing.T) {
	var e Encoder
	e.U32(7)
	e.U8(9)
	d := NewDecoder(e.Bytes())
	_ = d.U32()
	if err := d.Finish(); err != ErrTrailing {
		t.Errorf("Finish with trailing byte = %v, want ErrTrailing", err)
	}
}

func TestHostileBlobLength(t *testing.T) {
	var e Encoder
	e.U32(0xFFFFFFF0) // claims a 4 GB blob
	d := NewDecoder(e.Bytes())
	if got := d.Blob(); got != nil {
		t.Error("hostile blob length returned data")
	}
	if d.Err() == nil {
		t.Error("hostile blob length not rejected")
	}
}

func TestHostileUpdateCount(t *testing.T) {
	var e Encoder
	e.U32(0xFFFFFFF0) // claims four billion updates
	d := NewDecoder(e.Bytes())
	_ = d.Updates()
	if d.Err() == nil {
		t.Error("hostile update count not rejected")
	}
}

func TestLockAcquireRoundTrip(t *testing.T) {
	m := &LockAcquire{
		Lock:            42,
		Mode:            Shared,
		Requester:       7,
		LastTime:        -12345,
		LastIncarnation: 99,
		BindGen:         3,
	}
	got, err := DecodeLockAcquire(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip: %+v != %+v", got, m)
	}
}

func TestLockGrantRoundTrip(t *testing.T) {
	m := &LockGrant{
		Lock:        5,
		Mode:        Exclusive,
		Time:        77,
		Incarnation: 8,
		Base:        6,
		BindGen:     2,
		Full:        true,
		Binding:     []memory.Range{{Addr: 0x1000, Size: 64}, {Addr: 0x2000, Size: 8}},
		Updates: []Update{
			{Addr: 0x1000, TS: 3, Data: []byte{1, 2, 3, 4}},
			{Addr: 0x1010, TS: 4, Data: []byte{5}},
		},
		History: []HistoryEntry{
			{Incarnation: 7, Updates: []Update{{Addr: 0x2000, TS: 7, Data: []byte{9, 9}}}},
			{Incarnation: 8, Updates: nil},
		},
	}
	got, err := DecodeLockGrant(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Lock != m.Lock || got.Mode != m.Mode || got.Time != m.Time ||
		got.Incarnation != m.Incarnation || got.Base != m.Base ||
		got.BindGen != m.BindGen || got.Full != m.Full {
		t.Errorf("scalar fields: %+v", got)
	}
	if !reflect.DeepEqual(got.Binding, m.Binding) {
		t.Errorf("binding: %+v", got.Binding)
	}
	if len(got.Updates) != 2 || !bytes.Equal(got.Updates[0].Data, m.Updates[0].Data) {
		t.Errorf("updates: %+v", got.Updates)
	}
	if len(got.History) != 2 || got.History[0].Incarnation != 7 {
		t.Errorf("history: %+v", got.History)
	}
}

func TestBarrierRoundTrips(t *testing.T) {
	e := &BarrierEnter{
		Barrier: 3, Epoch: 12, Node: 5, Time: 1000,
		Updates: []Update{{Addr: 0x500, TS: 2, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}},
	}
	gotE, err := DecodeBarrierEnter(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if gotE.Barrier != 3 || gotE.Epoch != 12 || gotE.Node != 5 || gotE.Time != 1000 ||
		len(gotE.Updates) != 1 {
		t.Errorf("barrier enter: %+v", gotE)
	}

	r := &BarrierRelease{Barrier: 3, Epoch: 12, Time: 1001}
	gotR, err := DecodeBarrierRelease(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if gotR.Barrier != 3 || gotR.Epoch != 12 || gotR.Time != 1001 || len(gotR.Updates) != 0 {
		t.Errorf("barrier release: %+v", gotR)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	m := &LockGrant{
		Lock:    5,
		Binding: []memory.Range{{Addr: 1, Size: 2}},
		Updates: []Update{{Addr: 9, TS: 1, Data: []byte{1, 2, 3, 4}}},
	}
	buf := m.Encode()
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeLockGrant(buf[:cut]); err == nil {
			t.Errorf("truncation at %d/%d accepted", cut, len(buf))
		}
	}
}

// TestGrantRoundTripProperty fuzzes grant round trips with random
// structure.
func TestGrantRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &LockGrant{
			Lock:        rng.Uint32(),
			Mode:        Mode(rng.Intn(2)),
			Time:        rng.Int63(),
			Incarnation: rng.Uint64(),
			Base:        rng.Uint64(),
			BindGen:     rng.Uint64(),
			Full:        rng.Intn(2) == 0,
		}
		for i := 0; i < rng.Intn(4); i++ {
			m.Binding = append(m.Binding, memory.Range{
				Addr: memory.Addr(rng.Uint32()), Size: rng.Uint32() % 1024,
			})
		}
		for i := 0; i < rng.Intn(4); i++ {
			data := make([]byte, rng.Intn(32))
			rng.Read(data)
			m.Updates = append(m.Updates, Update{
				Addr: memory.Addr(rng.Uint32()), TS: rng.Int63(), Data: data,
			})
		}
		for i := 0; i < rng.Intn(3); i++ {
			var ups []Update
			for j := 0; j < rng.Intn(3); j++ {
				data := make([]byte, rng.Intn(16)+1)
				rng.Read(data)
				ups = append(ups, Update{Addr: memory.Addr(rng.Uint32()), TS: rng.Int63(), Data: data})
			}
			m.History = append(m.History, HistoryEntry{Incarnation: uint64(i + 1), Updates: ups})
		}
		got, err := DecodeLockGrant(m.Encode())
		if err != nil {
			return false
		}
		if got.Lock != m.Lock || got.Time != m.Time || got.Full != m.Full {
			return false
		}
		if len(got.Updates) != len(m.Updates) || len(got.History) != len(m.History) {
			return false
		}
		for i := range m.Updates {
			if got.Updates[i].Addr != m.Updates[i].Addr ||
				got.Updates[i].TS != m.Updates[i].TS ||
				!bytes.Equal(got.Updates[i].Data, m.Updates[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUpdateHelpers(t *testing.T) {
	u := Update{Addr: 0x100, TS: 1, Data: make([]byte, 10)}
	if rg := u.Range(); rg.Addr != 0x100 || rg.Size != 10 {
		t.Errorf("Range = %+v", rg)
	}
	if got := UpdateBytes([]Update{u, u}); got != 20 {
		t.Errorf("UpdateBytes = %d", got)
	}
}

func TestKindAndModeStrings(t *testing.T) {
	if KindLockAcquire.String() != "LockAcquire" || KindShutdown.String() != "Shutdown" {
		t.Error("kind strings wrong")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind produced empty string")
	}
	if Exclusive.String() != "exclusive" || Shared.String() != "shared" {
		t.Error("mode strings wrong")
	}
}
