// Package proto defines the DSM wire protocol: the messages exchanged at
// synchronization points and a compact hand-rolled binary encoding for
// them.  The same encoding is used by the in-process channel transport
// (where it also provides realistic message sizes for the network cost
// model) and by the TCP transport (where it is the actual wire format).
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"midway/internal/memory"
)

// Kind identifies a protocol message type.
type Kind uint8

const (
	// KindInvalid is the zero Kind, never sent.
	KindInvalid Kind = iota
	// KindLockAcquire is sent by a requester to a lock's manager.
	KindLockAcquire
	// KindLockForward is sent by the manager to the current owner, asking
	// it to transfer the lock to the requester.
	KindLockForward
	// KindLockGrant is sent by the releasing owner directly to the
	// requester, carrying the lock, its binding, and the missing updates.
	KindLockGrant
	// KindBarrierEnter is sent by a node to the barrier manager, carrying
	// the node's updates to barrier-bound data.
	KindBarrierEnter
	// KindBarrierRelease is sent by the barrier manager to every waiting
	// node once all have entered, carrying merged updates.
	KindBarrierRelease
	// KindShutdown tells a node's protocol handler to exit.
	KindShutdown
	// KindReliableData is a transport-level envelope used by the Reliable
	// wrapper: a sequence-numbered carrier for one of the kinds above.  It
	// never reaches the protocol handler.
	KindReliableData
	// KindReliableAck is the transport-level cumulative acknowledgement for
	// KindReliableData envelopes.  It never reaches the protocol handler.
	KindReliableAck
	// KindHeartbeat is a transport-level liveness probe emitted by the
	// health monitor.  It carries no payload and never reaches the
	// protocol handler.
	KindHeartbeat
	// KindCrashNotice is a transport-level broadcast declaring a node
	// dead.  The health monitor consumes it before the protocol handler
	// sees it.
	KindCrashNotice
	// KindJoinRequest is the versioned membership handshake a joining
	// node sends to its sponsor (the lowest-numbered live member).
	KindJoinRequest
	// KindJoinAccept is the sponsor's reply: the membership epoch, the
	// lock/barrier directory, and full-data bindings for barrier-bound
	// memory.
	KindJoinAccept
	// KindMembershipChange is the broadcast announcing a committed
	// membership transition (join or leave) with its generation fence.
	KindMembershipChange
	// KindHomeChange is the broadcast announcing a committed lock-home
	// migration: the named lock's directory entry now points at its
	// dominant acquirer instead of its hashed home.
	KindHomeChange
	// KindPartitionFence announces that the sending node has lost its
	// quorum: it is self-fenced, casts no liveness votes, and holds its
	// tokens frozen until the partition heals.
	KindPartitionFence
	// KindPartitionHeal announces that a previously fenced node has
	// regained its quorum; receivers refresh liveness state and reset
	// retransmission backoff so recovery is not stalled by stale timers.
	KindPartitionHeal
)

// String returns the message kind's name.
func (k Kind) String() string {
	switch k {
	case KindLockAcquire:
		return "LockAcquire"
	case KindLockForward:
		return "LockForward"
	case KindLockGrant:
		return "LockGrant"
	case KindBarrierEnter:
		return "BarrierEnter"
	case KindBarrierRelease:
		return "BarrierRelease"
	case KindShutdown:
		return "Shutdown"
	case KindReliableData:
		return "ReliableData"
	case KindReliableAck:
		return "ReliableAck"
	case KindHeartbeat:
		return "Heartbeat"
	case KindCrashNotice:
		return "CrashNotice"
	case KindJoinRequest:
		return "JoinRequest"
	case KindJoinAccept:
		return "JoinAccept"
	case KindMembershipChange:
		return "MembershipChange"
	case KindHomeChange:
		return "HomeChange"
	case KindPartitionFence:
		return "PartitionFence"
	case KindPartitionHeal:
		return "PartitionHeal"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Mode is a lock acquisition mode.
type Mode uint8

const (
	// Exclusive mode admits one holder and permits writes.
	Exclusive Mode = iota
	// Shared mode admits concurrent readers.
	Shared
)

// String returns "exclusive" or "shared".
func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// Update carries new data for one contiguous span of shared memory,
// stamped with the logical time (RT-DSM: the line's Lamport timestamp;
// VM-DSM: the incarnation number) at which it was produced.
type Update struct {
	Addr memory.Addr
	TS   int64
	Data []byte
}

// Range returns the address range the update covers.
func (u Update) Range() memory.Range {
	return memory.Range{Addr: u.Addr, Size: uint32(len(u.Data))}
}

// UpdateBytes sums the data payload of a set of updates.
func UpdateBytes(us []Update) int {
	n := 0
	for _, u := range us {
		n += len(u.Data)
	}
	return n
}

// LockAcquire asks the manager (and, forwarded, the owner) for a lock.
type LockAcquire struct {
	Lock      uint32
	Mode      Mode
	Requester uint32
	// LastTime is the requester's RT-DSM consistency timestamp for the
	// lock's data: the logical time at which its cached copy was last
	// known consistent.
	LastTime int64
	// LastIncarnation is the VM-DSM analogue: the lock's incarnation
	// number when the requester last held it.
	LastIncarnation uint64
	// BindGen is the lock's binding generation as last seen by the
	// requester.  A releaser whose binding generation differs must treat
	// the requester's history as empty: its consistency timestamp
	// certifies the old binding's data, not the current one.
	BindGen uint64
}

// LockGrant transfers a lock to the requester.
type LockGrant struct {
	Lock uint32
	Mode Mode
	// Time is the releaser's Lamport time for this transfer; the
	// requester records it as the consistency time of the lock's data.
	Time int64
	// Incarnation is the lock's new incarnation number (VM-DSM).
	Incarnation uint64
	// Base is the incarnation preceding the oldest retained history
	// entry: a future requester whose last-seen incarnation is below Base
	// must receive full data (VM-DSM).
	Base uint64
	// BindGen is the lock's current binding generation.
	BindGen uint64
	// Binding is the lock's current data binding; bindings travel with
	// the lock so a rebinding by one holder is visible to the next.
	Binding []memory.Range
	// Updates carries the data the requester is missing.
	Updates []Update
	// Full indicates the updates replace all bound data (the VM-DSM
	// full-data fallback and the Blast strategy always set this).
	Full bool
	// History carries prior-incarnation updates the requester must retain
	// to serve future requesters (VM-DSM).  Nil under RT-DSM, where the
	// dirtybit timestamps subsume history.
	History []HistoryEntry
	// Tail is the dynamic-ownership extension, attached to exclusive
	// grants when lock-home migration is enabled and absent otherwise —
	// a grant without a tail encodes byte-identically to the pre-migration
	// wire format.
	Tail *GrantTail
}

// GrantTailVersion is the current version of the dynamic-ownership grant
// extension.
const GrantTailVersion = 1

// GrantTail is the dynamic-ownership extension an exclusive LockGrant
// carries when lock-home migration is enabled: the token's travelling
// acquire census, the waiter queue forwarded with the token
// (token-forwarding: the new holder serves them directly instead of each
// waiter re-chasing through the home), and an optional home-migration
// directive the receiver commits at grant time.
type GrantTail struct {
	Version uint8
	// NewHome directs the receiver to commit itself as the lock's new
	// home; -1 means no migration.
	NewHome int32
	// Counts is the decayed per-node acquire census travelling with the
	// token — the dominant-acquirer signal.  Only nodes with non-zero
	// counts are listed.
	Counts []NodeCount
	// Queue carries the granter's remaining waiters, in arrival order.
	Queue []QueuedWaiter
}

// NodeCount is one node's entry in the travelling acquire census.
type NodeCount struct {
	Node  uint32
	Count uint32
}

// QueuedWaiter is one queued lock request forwarded with the token, the
// fields of the waiter's original LockAcquire plus its queue-arrival time
// at the previous owner.
type QueuedWaiter struct {
	Requester       uint32
	Mode            Mode
	LastTime        int64
	LastIncarnation uint64
	BindGen         uint64
	Arrival         uint64
}

// HistoryEntry is one incarnation's worth of updates to a lock's bound
// data, retained so prior modifications can be forwarded without extra
// messages to third-party processors.
type HistoryEntry struct {
	Incarnation uint64
	Updates     []Update
}

// BarrierEnter reports a node's arrival at a barrier, carrying its updates
// to the barrier-bound data.
type BarrierEnter struct {
	Barrier uint32
	Epoch   uint64
	Node    uint32
	Time    int64
	Updates []Update
}

// BarrierRelease releases a waiting node from a barrier, carrying the
// merged updates from all other nodes.
type BarrierRelease struct {
	Barrier uint32
	Epoch   uint64
	Time    int64
	Updates []Update
}

// Errors returned by the decoder.
var (
	ErrShortBuffer = errors.New("proto: short buffer")
	ErrTrailing    = errors.New("proto: trailing bytes")
)

// Encoder serializes protocol values into a growing little-endian buffer.
// The zero value is ready to use.  Message Encode methods size the buffer
// exactly up front (Wire.EncodedSize), so a message costs one allocation —
// or none, when a pooled encoder (GetEncoder/Release) can be used because
// the transport copies the payload out before Send returns.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset empties the buffer, keeping its capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Grow ensures capacity for at least n more bytes.
func (e *Encoder) Grow(n int) {
	if cap(e.buf)-len(e.buf) < n {
		nb := make([]byte, len(e.buf), len(e.buf)+n)
		copy(nb, e.buf)
		e.buf = nb
	}
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian 32-bit value.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian 64-bit value.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a little-endian signed 64-bit value.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Ranges appends a length-prefixed list of address ranges.
func (e *Encoder) Ranges(rs []memory.Range) {
	e.U32(uint32(len(rs)))
	for _, r := range rs {
		e.U32(uint32(r.Addr))
		e.U32(r.Size)
	}
}

// Updates appends a length-prefixed list of updates.
func (e *Encoder) Updates(us []Update) {
	e.U32(uint32(len(us)))
	for _, u := range us {
		e.U32(uint32(u.Addr))
		e.I64(u.TS)
		e.Blob(u.Data)
	}
}

// Wire is any protocol message: it can report its exact encoded size and
// append itself to an encoder, which is what lets send paths pick between
// an exact-size owned buffer and a pooled one.
type Wire interface {
	EncodedSize() int
	EncodeInto(e *Encoder)
}

// Encode serializes any message into an exactly-sized owned buffer.
func Encode(m Wire) []byte {
	e := Encoder{buf: make([]byte, 0, m.EncodedSize())}
	m.EncodeInto(&e)
	return e.buf
}

// encPool recycles encoder buffers for send paths whose transport copies
// the payload out before Send returns (TCP frames to a remote peer,
// reliable envelopes).  Payloads that a transport retains — channel
// delivery, retransmission queues, local loopback — must use owned
// buffers (Encode) instead.
var encPool = sync.Pool{New: func() any { return new(Encoder) }}

// maxPooledBuf bounds the buffer capacity a released encoder may keep, so
// one huge grant does not pin a large buffer in the pool forever.
const maxPooledBuf = 1 << 20

// GetEncoder returns an empty pooled encoder.
func GetEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.Reset()
	return e
}

// Release returns the encoder — and the buffer behind Bytes — to the
// pool.  The caller must not retain e.Bytes() past this call.
func (e *Encoder) Release() {
	if cap(e.buf) > maxPooledBuf {
		e.buf = nil
	}
	encPool.Put(e)
}

// RecycleBytes returns a payload buffer to the encoder pool.  It is the
// deferred counterpart of Release for transports that retain the payload
// past Send (the lockstep engine's stepped queue): the sender encodes
// into a pooled encoder and hands the buffer off without releasing;
// whoever consumes the message recycles the buffer here once nothing —
// including zero-copy decoder views — references it anymore.
func RecycleBytes(buf []byte) {
	if buf == nil || cap(buf) > maxPooledBuf {
		return
	}
	encPool.Put(&Encoder{buf: buf[:0]})
}

// Encoded sizes of the primitive shapes.

func blobSize(b []byte) int { return 4 + len(b) }

func rangesSize(rs []memory.Range) int { return 4 + 8*len(rs) }

func updatesSize(us []Update) int {
	n := 4
	for _, u := range us {
		n += 4 + 8 + 4 + len(u.Data)
	}
	return n
}

// Decoder deserializes protocol values.  The first decoding error sticks;
// check Err (or use Finish) after decoding.
//
// A plain decoder (NewDecoder) returns zero-copy views into buf from Blob
// and Updates, so the caller must keep buf alive and unmodified as long as
// the decoded message is in use.  Every transport in this repository
// delivers each received frame in a freshly allocated, GC-owned buffer,
// so views are safe there; NewCopyingDecoder exists for callers that
// cannot guarantee that.
type Decoder struct {
	buf  []byte
	off  int
	err  error
	copy bool
}

// NewDecoder returns a zero-copy decoder over buf: Blob and Updates
// return views into buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// NewCopyingDecoder returns a decoder whose Blob and Updates copy data
// out of buf, so decoded messages do not alias it.
func NewCopyingDecoder(buf []byte) *Decoder { return &Decoder{buf: buf, copy: true} }

// Err returns the first error encountered.
func (d *Decoder) Err() error { return d.err }

// Finish returns an error if decoding failed or bytes remain.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return ErrTrailing
	}
	return nil
}

func (d *Decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = ErrShortBuffer
		return false
	}
	return true
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U32 reads a little-endian 32-bit value.
func (d *Decoder) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	b := d.buf[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian 64-bit value.
func (d *Decoder) U64() uint64 {
	lo := d.U32()
	hi := d.U32()
	return uint64(lo) | uint64(hi)<<32
}

// I64 reads a little-endian signed 64-bit value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Blob reads a length-prefixed byte slice: a capacity-clipped view into
// the buffer for a zero-copy decoder, a fresh copy for a copying one.
// Empty blobs decode as nil either way.
func (d *Decoder) Blob() []byte {
	n := int(d.U32())
	if !d.need(n) {
		return nil
	}
	var b []byte
	if n > 0 {
		if d.copy {
			b = append([]byte(nil), d.buf[d.off:d.off+n]...)
		} else {
			b = d.buf[d.off : d.off+n : d.off+n]
		}
	}
	d.off += n
	return b
}

// Ranges reads a length-prefixed list of address ranges.
func (d *Decoder) Ranges() []memory.Range {
	n := int(d.U32())
	if d.err != nil || n < 0 {
		return nil
	}
	// Each range is 8 bytes; reject counts the buffer cannot hold.
	if !d.need(0) || n > (len(d.buf)-d.off)/8 {
		if n != 0 {
			d.err = ErrShortBuffer
			return nil
		}
	}
	rs := make([]memory.Range, 0, n)
	for i := 0; i < n; i++ {
		a := d.U32()
		sz := d.U32()
		rs = append(rs, memory.Range{Addr: memory.Addr(a), Size: sz})
	}
	if d.err != nil {
		return nil
	}
	return rs
}

// Updates reads a length-prefixed list of updates.
func (d *Decoder) Updates() []Update {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	// Minimum 16 bytes per update; bound n to avoid hostile allocations.
	if n > (len(d.buf)-d.off)/16+1 {
		d.err = ErrShortBuffer
		return nil
	}
	us := make([]Update, 0, n)
	for i := 0; i < n; i++ {
		a := d.U32()
		ts := d.I64()
		data := d.Blob()
		if d.err != nil {
			return nil
		}
		us = append(us, Update{Addr: memory.Addr(a), TS: ts, Data: data})
	}
	return us
}

// Encode methods for each message type.  Every message implements Wire;
// Encode delegates to EncodeInto through an exactly-sized buffer.

// EncodedSize returns the exact encoded length.
func (m *LockAcquire) EncodedSize() int { return 4 + 1 + 4 + 8 + 8 + 8 }

// EncodeInto appends the message to e.
func (m *LockAcquire) EncodeInto(e *Encoder) {
	e.Grow(m.EncodedSize())
	e.U32(m.Lock)
	e.U8(uint8(m.Mode))
	e.U32(m.Requester)
	e.I64(m.LastTime)
	e.U64(m.LastIncarnation)
	e.U64(m.BindGen)
}

// Encode serializes the message.
func (m *LockAcquire) Encode() []byte { return Encode(m) }

// DecodeLockAcquire parses a LockAcquire payload.
func DecodeLockAcquire(buf []byte) (*LockAcquire, error) {
	d := NewDecoder(buf)
	m := &LockAcquire{
		Lock:      d.U32(),
		Mode:      Mode(d.U8()),
		Requester: d.U32(),
	}
	m.LastTime = d.I64()
	m.LastIncarnation = d.U64()
	m.BindGen = d.U64()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding LockAcquire: %w", err)
	}
	return m, nil
}

// EncodedSize returns the exact encoded length.
func (m *LockGrant) EncodedSize() int {
	n := 4 + 1 + 8 + 8 + 8 + 8 + 1 + rangesSize(m.Binding) + updatesSize(m.Updates) + 4
	for _, h := range m.History {
		n += 8 + updatesSize(h.Updates)
	}
	if t := m.Tail; t != nil {
		n += 1 + 4 + 4 + 8*len(t.Counts) + 4 + 33*len(t.Queue)
	}
	return n
}

// EncodeInto appends the message to e.
func (m *LockGrant) EncodeInto(e *Encoder) {
	e.Grow(m.EncodedSize())
	e.U32(m.Lock)
	e.U8(uint8(m.Mode))
	e.I64(m.Time)
	e.U64(m.Incarnation)
	e.U64(m.Base)
	e.U64(m.BindGen)
	if m.Full {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.Ranges(m.Binding)
	e.Updates(m.Updates)
	e.U32(uint32(len(m.History)))
	for _, h := range m.History {
		e.U64(h.Incarnation)
		e.Updates(h.Updates)
	}
	if t := m.Tail; t != nil {
		e.U8(t.Version)
		e.U32(uint32(t.NewHome))
		e.U32(uint32(len(t.Counts)))
		for _, c := range t.Counts {
			e.U32(c.Node)
			e.U32(c.Count)
		}
		e.U32(uint32(len(t.Queue)))
		for _, q := range t.Queue {
			e.U32(q.Requester)
			e.U8(uint8(q.Mode))
			e.I64(q.LastTime)
			e.U64(q.LastIncarnation)
			e.U64(q.BindGen)
			e.U64(q.Arrival)
		}
	}
}

// Encode serializes the message.
func (m *LockGrant) Encode() []byte { return Encode(m) }

func decodeLockGrant(d *Decoder, buf []byte) (*LockGrant, error) {
	m := &LockGrant{
		Lock: d.U32(),
		Mode: Mode(d.U8()),
	}
	m.Time = d.I64()
	m.Incarnation = d.U64()
	m.Base = d.U64()
	m.BindGen = d.U64()
	m.Full = d.U8() != 0
	m.Binding = d.Ranges()
	m.Updates = d.Updates()
	nh := int(d.U32())
	if d.Err() == nil && nh > 0 {
		if nh > len(buf) {
			return nil, fmt.Errorf("decoding LockGrant: %w", ErrShortBuffer)
		}
		m.History = make([]HistoryEntry, 0, nh)
		for i := 0; i < nh; i++ {
			inc := d.U64()
			us := d.Updates()
			m.History = append(m.History, HistoryEntry{Incarnation: inc, Updates: us})
		}
	}
	// The dynamic-ownership tail is optional: present iff bytes remain.
	if d.err == nil && d.off < len(d.buf) {
		t := &GrantTail{Version: d.U8(), NewHome: int32(d.U32())}
		nc := int(d.U32())
		if d.err == nil && nc > (len(d.buf)-d.off)/8 {
			return nil, fmt.Errorf("decoding LockGrant: %w", ErrShortBuffer)
		}
		for i := 0; i < nc && d.err == nil; i++ {
			c := NodeCount{Node: d.U32(), Count: d.U32()}
			t.Counts = append(t.Counts, c)
		}
		nq := int(d.U32())
		if d.err == nil && nq > (len(d.buf)-d.off)/33+1 {
			return nil, fmt.Errorf("decoding LockGrant: %w", ErrShortBuffer)
		}
		for i := 0; i < nq && d.err == nil; i++ {
			q := QueuedWaiter{Requester: d.U32(), Mode: Mode(d.U8())}
			q.LastTime = d.I64()
			q.LastIncarnation = d.U64()
			q.BindGen = d.U64()
			q.Arrival = d.U64()
			t.Queue = append(t.Queue, q)
		}
		m.Tail = t
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding LockGrant: %w", err)
	}
	return m, nil
}

// DecodeLockGrant parses a LockGrant payload; update data are zero-copy
// views into buf.
func DecodeLockGrant(buf []byte) (*LockGrant, error) {
	return decodeLockGrant(NewDecoder(buf), buf)
}

// DecodeLockGrantCopy parses a LockGrant payload, copying update data out
// of buf.
func DecodeLockGrantCopy(buf []byte) (*LockGrant, error) {
	return decodeLockGrant(NewCopyingDecoder(buf), buf)
}

// EncodedSize returns the exact encoded length.
func (m *BarrierEnter) EncodedSize() int {
	return 4 + 8 + 4 + 8 + updatesSize(m.Updates)
}

// EncodeInto appends the message to e.
func (m *BarrierEnter) EncodeInto(e *Encoder) {
	e.Grow(m.EncodedSize())
	e.U32(m.Barrier)
	e.U64(m.Epoch)
	e.U32(m.Node)
	e.I64(m.Time)
	e.Updates(m.Updates)
}

// Encode serializes the message.
func (m *BarrierEnter) Encode() []byte { return Encode(m) }

func decodeBarrierEnter(d *Decoder) (*BarrierEnter, error) {
	m := &BarrierEnter{
		Barrier: d.U32(),
		Epoch:   d.U64(),
		Node:    d.U32(),
	}
	m.Time = d.I64()
	m.Updates = d.Updates()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding BarrierEnter: %w", err)
	}
	return m, nil
}

// DecodeBarrierEnter parses a BarrierEnter payload; update data are
// zero-copy views into buf.
func DecodeBarrierEnter(buf []byte) (*BarrierEnter, error) {
	return decodeBarrierEnter(NewDecoder(buf))
}

// DecodeBarrierEnterCopy parses a BarrierEnter payload, copying update
// data out of buf.
func DecodeBarrierEnterCopy(buf []byte) (*BarrierEnter, error) {
	return decodeBarrierEnter(NewCopyingDecoder(buf))
}

// EncodedSize returns the exact encoded length.
func (m *BarrierRelease) EncodedSize() int {
	return 4 + 8 + 8 + updatesSize(m.Updates)
}

// EncodeInto appends the message to e.
func (m *BarrierRelease) EncodeInto(e *Encoder) {
	e.Grow(m.EncodedSize())
	e.U32(m.Barrier)
	e.U64(m.Epoch)
	e.I64(m.Time)
	e.Updates(m.Updates)
}

// Encode serializes the message.
func (m *BarrierRelease) Encode() []byte { return Encode(m) }

func decodeBarrierRelease(d *Decoder) (*BarrierRelease, error) {
	m := &BarrierRelease{
		Barrier: d.U32(),
		Epoch:   d.U64(),
	}
	m.Time = d.I64()
	m.Updates = d.Updates()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding BarrierRelease: %w", err)
	}
	return m, nil
}

// DecodeBarrierRelease parses a BarrierRelease payload; update data are
// zero-copy views into buf.
func DecodeBarrierRelease(buf []byte) (*BarrierRelease, error) {
	return decodeBarrierRelease(NewDecoder(buf))
}

// DecodeBarrierReleaseCopy parses a BarrierRelease payload, copying
// update data out of buf.
func DecodeBarrierReleaseCopy(buf []byte) (*BarrierRelease, error) {
	return decodeBarrierRelease(NewCopyingDecoder(buf))
}

// ReliableData is the sequence-numbered envelope the Reliable transport
// wrapper puts around every inter-node message.  Seq numbers one direction
// of one node pair; Kind and Payload are the wrapped message's.
type ReliableData struct {
	Seq     uint64
	Kind    Kind
	Payload []byte
}

// EncodedSize returns the exact encoded length.
func (m *ReliableData) EncodedSize() int { return 8 + 1 + blobSize(m.Payload) }

// EncodeInto appends the envelope to e.
func (m *ReliableData) EncodeInto(e *Encoder) {
	e.Grow(m.EncodedSize())
	e.U64(m.Seq)
	e.U8(uint8(m.Kind))
	e.Blob(m.Payload)
}

// Encode serializes the envelope.
func (m *ReliableData) Encode() []byte { return Encode(m) }

func decodeReliableData(d *Decoder) (*ReliableData, error) {
	m := &ReliableData{Seq: d.U64(), Kind: Kind(d.U8())}
	m.Payload = d.Blob()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding ReliableData: %w", err)
	}
	return m, nil
}

// DecodeReliableData parses a ReliableData payload; the inner payload is
// a zero-copy view into buf.
func DecodeReliableData(buf []byte) (*ReliableData, error) {
	return decodeReliableData(NewDecoder(buf))
}

// DecodeReliableDataCopy parses a ReliableData payload, copying the inner
// payload out of buf.
func DecodeReliableDataCopy(buf []byte) (*ReliableData, error) {
	return decodeReliableData(NewCopyingDecoder(buf))
}

// ReliableAck is the cumulative acknowledgement for ReliableData
// envelopes: every envelope with sequence number <= Seq has been
// delivered to the receiver's protocol handler.
type ReliableAck struct {
	Seq uint64
}

// EncodedSize returns the exact encoded length.
func (m *ReliableAck) EncodedSize() int { return 8 }

// EncodeInto appends the acknowledgement to e.
func (m *ReliableAck) EncodeInto(e *Encoder) {
	e.Grow(8)
	e.U64(m.Seq)
}

// Encode serializes the acknowledgement.
func (m *ReliableAck) Encode() []byte { return Encode(m) }

// DecodeReliableAck parses a ReliableAck payload.
func DecodeReliableAck(buf []byte) (*ReliableAck, error) {
	d := NewDecoder(buf)
	m := &ReliableAck{Seq: d.U64()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding ReliableAck: %w", err)
	}
	return m, nil
}

// CrashNotice declares a node dead.  Node is the crashed node; Cycles is
// the simulated cycle count at the declaring node when the crash was
// established (zero for purely real-time detection).
type CrashNotice struct {
	Node   uint32
	Cycles uint64
}

// EncodedSize returns the exact encoded length.
func (m *CrashNotice) EncodedSize() int { return 4 + 8 }

// EncodeInto appends the notice to e.
func (m *CrashNotice) EncodeInto(e *Encoder) {
	e.Grow(m.EncodedSize())
	e.U32(m.Node)
	e.U64(m.Cycles)
}

// Encode serializes the notice.
func (m *CrashNotice) Encode() []byte { return Encode(m) }

// DecodeCrashNotice parses a CrashNotice payload.
func DecodeCrashNotice(buf []byte) (*CrashNotice, error) {
	d := NewDecoder(buf)
	m := &CrashNotice{Node: d.U32(), Cycles: d.U64()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding CrashNotice: %w", err)
	}
	return m, nil
}

// JoinVersion is the current membership-handshake protocol version.  A
// sponsor rejects a JoinRequest whose version it does not speak.
const JoinVersion = 1

// JoinRequest is the handshake a joining node sends to its sponsor.
// Epoch is the joiner's last known membership epoch (zero for a node that
// has never been a member).
type JoinRequest struct {
	Version uint32
	Node    uint32
	Epoch   uint64
}

// EncodedSize returns the exact encoded length.
func (m *JoinRequest) EncodedSize() int { return 4 + 4 + 8 }

// EncodeInto appends the request to e.
func (m *JoinRequest) EncodeInto(e *Encoder) {
	e.Grow(m.EncodedSize())
	e.U32(m.Version)
	e.U32(m.Node)
	e.U64(m.Epoch)
}

// Encode serializes the request.
func (m *JoinRequest) Encode() []byte { return Encode(m) }

// DecodeJoinRequest parses a JoinRequest payload.
func DecodeJoinRequest(buf []byte) (*JoinRequest, error) {
	d := NewDecoder(buf)
	m := &JoinRequest{Version: d.U32(), Node: d.U32(), Epoch: d.U64()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding JoinRequest: %w", err)
	}
	return m, nil
}

// JoinDirEntry is one synchronization object's entry in the directory a
// sponsor transfers to a joiner.  For a lock, Gen is the binding
// generation after the join fence and Home the current token holder; for
// a barrier, Gen is the current episode number and Home the manager.
type JoinDirEntry struct {
	Obj     uint32
	Barrier bool
	Gen     uint64
	Home    uint32
}

// / JoinAccept is the sponsor's handshake reply: the committed epoch, the
// object directory, and the full contents of barrier-bound memory (lock
// data travels on the joiner's first acquire, forced full by the fence).
type JoinAccept struct {
	Epoch   uint64
	Sponsor uint32
	Dir     []JoinDirEntry
	Data    []Update
}

// EncodedSize returns the exact encoded length.
func (m *JoinAccept) EncodedSize() int {
	return 8 + 4 + 4 + len(m.Dir)*(4+1+8+4) + updatesSize(m.Data)
}

// EncodeInto appends the reply to e.
func (m *JoinAccept) EncodeInto(e *Encoder) {
	e.Grow(m.EncodedSize())
	e.U64(m.Epoch)
	e.U32(m.Sponsor)
	e.U32(uint32(len(m.Dir)))
	for _, ent := range m.Dir {
		e.U32(ent.Obj)
		b := uint8(0)
		if ent.Barrier {
			b = 1
		}
		e.U8(b)
		e.U64(ent.Gen)
		e.U32(ent.Home)
	}
	e.Updates(m.Data)
}

// Encode serializes the reply.
func (m *JoinAccept) Encode() []byte { return Encode(m) }

func decodeJoinAccept(d *Decoder) (*JoinAccept, error) {
	m := &JoinAccept{Epoch: d.U64(), Sponsor: d.U32()}
	n := int(d.U32())
	// Each entry is 17 bytes; reject counts the buffer cannot hold.
	if rest := len(d.buf) - d.off; d.err == nil && n > rest/17 {
		return nil, fmt.Errorf("decoding JoinAccept: %w", ErrShortBuffer)
	}
	for i := 0; i < n && d.err == nil; i++ {
		ent := JoinDirEntry{Obj: d.U32(), Barrier: d.U8() != 0}
		ent.Gen = d.U64()
		ent.Home = d.U32()
		m.Dir = append(m.Dir, ent)
	}
	m.Data = d.Updates()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding JoinAccept: %w", err)
	}
	return m, nil
}

// DecodeJoinAccept parses a JoinAccept payload; update data is a
// zero-copy view into buf.
func DecodeJoinAccept(buf []byte) (*JoinAccept, error) {
	return decodeJoinAccept(NewDecoder(buf))
}

// DecodeJoinAcceptCopy parses a JoinAccept payload, copying update data
// out of buf.
func DecodeJoinAcceptCopy(buf []byte) (*JoinAccept, error) {
	return decodeJoinAccept(NewCopyingDecoder(buf))
}

// Membership transition actions carried by a MembershipChange broadcast.
const (
	// MemberJoined announces a committed join.
	MemberJoined uint8 = iota
	// MemberLeft announces a completed graceful drain.
	MemberLeft
)

// MembershipChange announces one committed membership transition.  Epoch
// is the new membership generation — the fence against which stale
// traffic from departed members is rejected.  Cycles is the simulated
// clock at the coordinating node when the transition committed.
type MembershipChange struct {
	Epoch  uint64
	Node   uint32
	Action uint8
	Cycles uint64
}

// EncodedSize returns the exact encoded length.
func (m *MembershipChange) EncodedSize() int { return 8 + 4 + 1 + 8 }

// EncodeInto appends the announcement to e.
func (m *MembershipChange) EncodeInto(e *Encoder) {
	e.Grow(m.EncodedSize())
	e.U64(m.Epoch)
	e.U32(m.Node)
	e.U8(m.Action)
	e.U64(m.Cycles)
}

// Encode serializes the announcement.
func (m *MembershipChange) Encode() []byte { return Encode(m) }

// DecodeMembershipChange parses a MembershipChange payload.
func DecodeMembershipChange(buf []byte) (*MembershipChange, error) {
	d := NewDecoder(buf)
	m := &MembershipChange{Epoch: d.U64(), Node: d.U32(), Action: d.U8()}
	m.Cycles = d.U64()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding MembershipChange: %w", err)
	}
	return m, nil
}

// HomeChangeVersion is the current home-migration announcement version.
// A receiver rejects an announcement whose version it does not speak.
const HomeChangeVersion = 1

// HomeChange announces one committed lock-home migration: Lock's
// directory entry moved from OldHome to NewHome because NewHome's share
// of the lock's recent acquires crossed the migration threshold (Count of
// Total windowed acquires).  Epoch is the membership generation at the
// commit — receivers in a later epoch re-resolve the home against the
// live member set.  Cycles is the committing node's simulated clock.
type HomeChange struct {
	Version uint32
	Lock    uint32
	NewHome uint32
	OldHome uint32
	Epoch   uint64
	Count   uint32
	Total   uint32
	Cycles  uint64
}

// EncodedSize returns the exact encoded length.
func (m *HomeChange) EncodedSize() int { return 4 + 4 + 4 + 4 + 8 + 4 + 4 + 8 }

// EncodeInto appends the announcement to e.
func (m *HomeChange) EncodeInto(e *Encoder) {
	e.Grow(m.EncodedSize())
	e.U32(m.Version)
	e.U32(m.Lock)
	e.U32(m.NewHome)
	e.U32(m.OldHome)
	e.U64(m.Epoch)
	e.U32(m.Count)
	e.U32(m.Total)
	e.U64(m.Cycles)
}

// Encode serializes the announcement.
func (m *HomeChange) Encode() []byte { return Encode(m) }

// DecodeHomeChange parses a HomeChange payload.
func DecodeHomeChange(buf []byte) (*HomeChange, error) {
	d := NewDecoder(buf)
	m := &HomeChange{Version: d.U32(), Lock: d.U32(), NewHome: d.U32(), OldHome: d.U32()}
	m.Epoch = d.U64()
	m.Count = d.U32()
	m.Total = d.U32()
	m.Cycles = d.U64()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding HomeChange: %w", err)
	}
	return m, nil
}

// PartitionFence announces a self-fence: Node lost contact with a strict
// majority of the live membership and has parked itself rather than let
// liveness timeouts fork lock ownership.  Epoch is the fencing node's
// membership epoch and Cycles its simulated clock at the fence (zero for
// purely real-time detection).  The notice usually cannot cross the very
// cut that caused it; it documents the episode for peers once traffic
// flows again.
type PartitionFence struct {
	Node   uint32
	Epoch  uint64
	Cycles uint64
}

// EncodedSize returns the exact encoded length.
func (m *PartitionFence) EncodedSize() int { return 4 + 8 + 8 }

// EncodeInto appends the notice to e.
func (m *PartitionFence) EncodeInto(e *Encoder) {
	e.Grow(m.EncodedSize())
	e.U32(m.Node)
	e.U64(m.Epoch)
	e.U64(m.Cycles)
}

// Encode serializes the notice.
func (m *PartitionFence) Encode() []byte { return Encode(m) }

// DecodePartitionFence parses a PartitionFence payload.
func DecodePartitionFence(buf []byte) (*PartitionFence, error) {
	d := NewDecoder(buf)
	m := &PartitionFence{Node: d.U32(), Epoch: d.U64(), Cycles: d.U64()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding PartitionFence: %w", err)
	}
	return m, nil
}

// PartitionHeal announces that Node regained its quorum after a fence
// episode.  Receivers treat it as fresh liveness evidence and reset
// retransmission backoff so the first post-heal retransmit is not stuck
// behind a maxed-out timer.  Epoch and Cycles mirror PartitionFence.
type PartitionHeal struct {
	Node   uint32
	Epoch  uint64
	Cycles uint64
}

// EncodedSize returns the exact encoded length.
func (m *PartitionHeal) EncodedSize() int { return 4 + 8 + 8 }

// EncodeInto appends the notice to e.
func (m *PartitionHeal) EncodeInto(e *Encoder) {
	e.Grow(m.EncodedSize())
	e.U32(m.Node)
	e.U64(m.Epoch)
	e.U64(m.Cycles)
}

// Encode serializes the notice.
func (m *PartitionHeal) Encode() []byte { return Encode(m) }

// DecodePartitionHeal parses a PartitionHeal payload.
func DecodePartitionHeal(buf []byte) (*PartitionHeal, error) {
	d := NewDecoder(buf)
	m := &PartitionHeal{Node: d.U32(), Epoch: d.U64(), Cycles: d.U64()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding PartitionHeal: %w", err)
	}
	return m, nil
}

// checksumTable is the Castagnoli CRC-32 table used for frame checksums.
var checksumTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of b, the integrity check the TCP
// transport appends to every frame.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, checksumTable) }

// ChecksumAdd extends a running CRC-32C with b, for checksumming a frame
// assembled from several buffers.
func ChecksumAdd(crc uint32, b []byte) uint32 { return crc32.Update(crc, checksumTable, b) }
