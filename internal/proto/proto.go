// Package proto defines the DSM wire protocol: the messages exchanged at
// synchronization points and a compact hand-rolled binary encoding for
// them.  The same encoding is used by the in-process channel transport
// (where it also provides realistic message sizes for the network cost
// model) and by the TCP transport (where it is the actual wire format).
package proto

import (
	"errors"
	"fmt"
	"hash/crc32"

	"midway/internal/memory"
)

// Kind identifies a protocol message type.
type Kind uint8

const (
	// KindInvalid is the zero Kind, never sent.
	KindInvalid Kind = iota
	// KindLockAcquire is sent by a requester to a lock's manager.
	KindLockAcquire
	// KindLockForward is sent by the manager to the current owner, asking
	// it to transfer the lock to the requester.
	KindLockForward
	// KindLockGrant is sent by the releasing owner directly to the
	// requester, carrying the lock, its binding, and the missing updates.
	KindLockGrant
	// KindBarrierEnter is sent by a node to the barrier manager, carrying
	// the node's updates to barrier-bound data.
	KindBarrierEnter
	// KindBarrierRelease is sent by the barrier manager to every waiting
	// node once all have entered, carrying merged updates.
	KindBarrierRelease
	// KindShutdown tells a node's protocol handler to exit.
	KindShutdown
	// KindReliableData is a transport-level envelope used by the Reliable
	// wrapper: a sequence-numbered carrier for one of the kinds above.  It
	// never reaches the protocol handler.
	KindReliableData
	// KindReliableAck is the transport-level cumulative acknowledgement for
	// KindReliableData envelopes.  It never reaches the protocol handler.
	KindReliableAck
)

// String returns the message kind's name.
func (k Kind) String() string {
	switch k {
	case KindLockAcquire:
		return "LockAcquire"
	case KindLockForward:
		return "LockForward"
	case KindLockGrant:
		return "LockGrant"
	case KindBarrierEnter:
		return "BarrierEnter"
	case KindBarrierRelease:
		return "BarrierRelease"
	case KindShutdown:
		return "Shutdown"
	case KindReliableData:
		return "ReliableData"
	case KindReliableAck:
		return "ReliableAck"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Mode is a lock acquisition mode.
type Mode uint8

const (
	// Exclusive mode admits one holder and permits writes.
	Exclusive Mode = iota
	// Shared mode admits concurrent readers.
	Shared
)

// String returns "exclusive" or "shared".
func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// Update carries new data for one contiguous span of shared memory,
// stamped with the logical time (RT-DSM: the line's Lamport timestamp;
// VM-DSM: the incarnation number) at which it was produced.
type Update struct {
	Addr memory.Addr
	TS   int64
	Data []byte
}

// Range returns the address range the update covers.
func (u Update) Range() memory.Range {
	return memory.Range{Addr: u.Addr, Size: uint32(len(u.Data))}
}

// UpdateBytes sums the data payload of a set of updates.
func UpdateBytes(us []Update) int {
	n := 0
	for _, u := range us {
		n += len(u.Data)
	}
	return n
}

// LockAcquire asks the manager (and, forwarded, the owner) for a lock.
type LockAcquire struct {
	Lock      uint32
	Mode      Mode
	Requester uint32
	// LastTime is the requester's RT-DSM consistency timestamp for the
	// lock's data: the logical time at which its cached copy was last
	// known consistent.
	LastTime int64
	// LastIncarnation is the VM-DSM analogue: the lock's incarnation
	// number when the requester last held it.
	LastIncarnation uint64
	// BindGen is the lock's binding generation as last seen by the
	// requester.  A releaser whose binding generation differs must treat
	// the requester's history as empty: its consistency timestamp
	// certifies the old binding's data, not the current one.
	BindGen uint64
}

// LockGrant transfers a lock to the requester.
type LockGrant struct {
	Lock uint32
	Mode Mode
	// Time is the releaser's Lamport time for this transfer; the
	// requester records it as the consistency time of the lock's data.
	Time int64
	// Incarnation is the lock's new incarnation number (VM-DSM).
	Incarnation uint64
	// Base is the incarnation preceding the oldest retained history
	// entry: a future requester whose last-seen incarnation is below Base
	// must receive full data (VM-DSM).
	Base uint64
	// BindGen is the lock's current binding generation.
	BindGen uint64
	// Binding is the lock's current data binding; bindings travel with
	// the lock so a rebinding by one holder is visible to the next.
	Binding []memory.Range
	// Updates carries the data the requester is missing.
	Updates []Update
	// Full indicates the updates replace all bound data (the VM-DSM
	// full-data fallback and the Blast strategy always set this).
	Full bool
	// History carries prior-incarnation updates the requester must retain
	// to serve future requesters (VM-DSM).  Nil under RT-DSM, where the
	// dirtybit timestamps subsume history.
	History []HistoryEntry
}

// HistoryEntry is one incarnation's worth of updates to a lock's bound
// data, retained so prior modifications can be forwarded without extra
// messages to third-party processors.
type HistoryEntry struct {
	Incarnation uint64
	Updates     []Update
}

// BarrierEnter reports a node's arrival at a barrier, carrying its updates
// to the barrier-bound data.
type BarrierEnter struct {
	Barrier uint32
	Epoch   uint64
	Node    uint32
	Time    int64
	Updates []Update
}

// BarrierRelease releases a waiting node from a barrier, carrying the
// merged updates from all other nodes.
type BarrierRelease struct {
	Barrier uint32
	Epoch   uint64
	Time    int64
	Updates []Update
}

// Errors returned by the decoder.
var (
	ErrShortBuffer = errors.New("proto: short buffer")
	ErrTrailing    = errors.New("proto: trailing bytes")
)

// Encoder serializes protocol values into a growing little-endian buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian 32-bit value.
func (e *Encoder) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian 64-bit value.
func (e *Encoder) U64(v uint64) {
	e.U32(uint32(v))
	e.U32(uint32(v >> 32))
}

// I64 appends a little-endian signed 64-bit value.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Ranges appends a length-prefixed list of address ranges.
func (e *Encoder) Ranges(rs []memory.Range) {
	e.U32(uint32(len(rs)))
	for _, r := range rs {
		e.U32(uint32(r.Addr))
		e.U32(r.Size)
	}
}

// Updates appends a length-prefixed list of updates.
func (e *Encoder) Updates(us []Update) {
	e.U32(uint32(len(us)))
	for _, u := range us {
		e.U32(uint32(u.Addr))
		e.I64(u.TS)
		e.Blob(u.Data)
	}
}

// Decoder deserializes protocol values.  The first decoding error sticks;
// check Err (or use Finish) after decoding.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered.
func (d *Decoder) Err() error { return d.err }

// Finish returns an error if decoding failed or bytes remain.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return ErrTrailing
	}
	return nil
}

func (d *Decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = ErrShortBuffer
		return false
	}
	return true
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U32 reads a little-endian 32-bit value.
func (d *Decoder) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	b := d.buf[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian 64-bit value.
func (d *Decoder) U64() uint64 {
	lo := d.U32()
	hi := d.U32()
	return uint64(lo) | uint64(hi)<<32
}

// I64 reads a little-endian signed 64-bit value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Blob reads a length-prefixed byte slice (copied out of the buffer).
func (d *Decoder) Blob() []byte {
	n := int(d.U32())
	if !d.need(n) {
		return nil
	}
	b := append([]byte(nil), d.buf[d.off:d.off+n]...)
	d.off += n
	return b
}

// Ranges reads a length-prefixed list of address ranges.
func (d *Decoder) Ranges() []memory.Range {
	n := int(d.U32())
	if d.err != nil || n < 0 {
		return nil
	}
	// Each range is 8 bytes; reject counts the buffer cannot hold.
	if !d.need(0) || n > (len(d.buf)-d.off)/8 {
		if n != 0 {
			d.err = ErrShortBuffer
			return nil
		}
	}
	rs := make([]memory.Range, 0, n)
	for i := 0; i < n; i++ {
		a := d.U32()
		sz := d.U32()
		rs = append(rs, memory.Range{Addr: memory.Addr(a), Size: sz})
	}
	if d.err != nil {
		return nil
	}
	return rs
}

// Updates reads a length-prefixed list of updates.
func (d *Decoder) Updates() []Update {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	// Minimum 16 bytes per update; bound n to avoid hostile allocations.
	if n > (len(d.buf)-d.off)/16+1 {
		d.err = ErrShortBuffer
		return nil
	}
	us := make([]Update, 0, n)
	for i := 0; i < n; i++ {
		a := d.U32()
		ts := d.I64()
		data := d.Blob()
		if d.err != nil {
			return nil
		}
		us = append(us, Update{Addr: memory.Addr(a), TS: ts, Data: data})
	}
	return us
}

// Encode methods for each message type.

// Encode serializes the message.
func (m *LockAcquire) Encode() []byte {
	var e Encoder
	e.U32(m.Lock)
	e.U8(uint8(m.Mode))
	e.U32(m.Requester)
	e.I64(m.LastTime)
	e.U64(m.LastIncarnation)
	e.U64(m.BindGen)
	return e.Bytes()
}

// DecodeLockAcquire parses a LockAcquire payload.
func DecodeLockAcquire(buf []byte) (*LockAcquire, error) {
	d := NewDecoder(buf)
	m := &LockAcquire{
		Lock:      d.U32(),
		Mode:      Mode(d.U8()),
		Requester: d.U32(),
	}
	m.LastTime = d.I64()
	m.LastIncarnation = d.U64()
	m.BindGen = d.U64()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding LockAcquire: %w", err)
	}
	return m, nil
}

// Encode serializes the message.
func (m *LockGrant) Encode() []byte {
	var e Encoder
	e.U32(m.Lock)
	e.U8(uint8(m.Mode))
	e.I64(m.Time)
	e.U64(m.Incarnation)
	e.U64(m.Base)
	e.U64(m.BindGen)
	if m.Full {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.Ranges(m.Binding)
	e.Updates(m.Updates)
	e.U32(uint32(len(m.History)))
	for _, h := range m.History {
		e.U64(h.Incarnation)
		e.Updates(h.Updates)
	}
	return e.Bytes()
}

// DecodeLockGrant parses a LockGrant payload.
func DecodeLockGrant(buf []byte) (*LockGrant, error) {
	d := NewDecoder(buf)
	m := &LockGrant{
		Lock: d.U32(),
		Mode: Mode(d.U8()),
	}
	m.Time = d.I64()
	m.Incarnation = d.U64()
	m.Base = d.U64()
	m.BindGen = d.U64()
	m.Full = d.U8() != 0
	m.Binding = d.Ranges()
	m.Updates = d.Updates()
	nh := int(d.U32())
	if d.Err() == nil && nh > 0 {
		if nh > len(buf) {
			return nil, fmt.Errorf("decoding LockGrant: %w", ErrShortBuffer)
		}
		m.History = make([]HistoryEntry, 0, nh)
		for i := 0; i < nh; i++ {
			inc := d.U64()
			us := d.Updates()
			m.History = append(m.History, HistoryEntry{Incarnation: inc, Updates: us})
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding LockGrant: %w", err)
	}
	return m, nil
}

// Encode serializes the message.
func (m *BarrierEnter) Encode() []byte {
	var e Encoder
	e.U32(m.Barrier)
	e.U64(m.Epoch)
	e.U32(m.Node)
	e.I64(m.Time)
	e.Updates(m.Updates)
	return e.Bytes()
}

// DecodeBarrierEnter parses a BarrierEnter payload.
func DecodeBarrierEnter(buf []byte) (*BarrierEnter, error) {
	d := NewDecoder(buf)
	m := &BarrierEnter{
		Barrier: d.U32(),
		Epoch:   d.U64(),
		Node:    d.U32(),
	}
	m.Time = d.I64()
	m.Updates = d.Updates()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding BarrierEnter: %w", err)
	}
	return m, nil
}

// Encode serializes the message.
func (m *BarrierRelease) Encode() []byte {
	var e Encoder
	e.U32(m.Barrier)
	e.U64(m.Epoch)
	e.I64(m.Time)
	e.Updates(m.Updates)
	return e.Bytes()
}

// DecodeBarrierRelease parses a BarrierRelease payload.
func DecodeBarrierRelease(buf []byte) (*BarrierRelease, error) {
	d := NewDecoder(buf)
	m := &BarrierRelease{
		Barrier: d.U32(),
		Epoch:   d.U64(),
	}
	m.Time = d.I64()
	m.Updates = d.Updates()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding BarrierRelease: %w", err)
	}
	return m, nil
}

// ReliableData is the sequence-numbered envelope the Reliable transport
// wrapper puts around every inter-node message.  Seq numbers one direction
// of one node pair; Kind and Payload are the wrapped message's.
type ReliableData struct {
	Seq     uint64
	Kind    Kind
	Payload []byte
}

// Encode serializes the envelope.
func (m *ReliableData) Encode() []byte {
	var e Encoder
	e.U64(m.Seq)
	e.U8(uint8(m.Kind))
	e.Blob(m.Payload)
	return e.Bytes()
}

// DecodeReliableData parses a ReliableData payload.
func DecodeReliableData(buf []byte) (*ReliableData, error) {
	d := NewDecoder(buf)
	m := &ReliableData{Seq: d.U64(), Kind: Kind(d.U8())}
	m.Payload = d.Blob()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding ReliableData: %w", err)
	}
	return m, nil
}

// ReliableAck is the cumulative acknowledgement for ReliableData
// envelopes: every envelope with sequence number <= Seq has been
// delivered to the receiver's protocol handler.
type ReliableAck struct {
	Seq uint64
}

// Encode serializes the acknowledgement.
func (m *ReliableAck) Encode() []byte {
	var e Encoder
	e.U64(m.Seq)
	return e.Bytes()
}

// DecodeReliableAck parses a ReliableAck payload.
func DecodeReliableAck(buf []byte) (*ReliableAck, error) {
	d := NewDecoder(buf)
	m := &ReliableAck{Seq: d.U64()}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decoding ReliableAck: %w", err)
	}
	return m, nil
}

// checksumTable is the Castagnoli CRC-32 table used for frame checksums.
var checksumTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of b, the integrity check the TCP
// transport appends to every frame.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, checksumTable) }

// ChecksumAdd extends a running CRC-32C with b, for checksumming a frame
// assembled from several buffers.
func ChecksumAdd(crc uint32, b []byte) uint32 { return crc32.Update(crc, checksumTable, b) }
