package proto

import (
	"bytes"
	"testing"
)

// The decoders face bytes from the network; they must never panic and
// must round-trip what the encoders produce.  Seed corpora cover each
// message type; go test runs the seeds, `go test -fuzz` explores further.

func FuzzDecodeLockAcquire(f *testing.F) {
	f.Add((&LockAcquire{Lock: 1, Requester: 2, LastTime: 3}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeLockAcquire(data)
		if err != nil {
			return
		}
		// Valid decodes re-encode to the same bytes.
		if !bytes.Equal(m.Encode(), data) {
			t.Errorf("re-encode mismatch")
		}
	})
}

func FuzzDecodeLockGrant(f *testing.F) {
	f.Add((&LockGrant{
		Lock:    9,
		Updates: []Update{{Addr: 16, TS: 2, Data: []byte{1, 2, 3, 4}}},
		History: []HistoryEntry{{Incarnation: 1}},
	}).Encode())
	f.Add((&LockGrant{
		Lock: 3,
		Tail: &GrantTail{
			Version: GrantTailVersion,
			NewHome: 2,
			Counts:  []NodeCount{{Node: 2, Count: 9}, {Node: 0, Count: 1}},
			Queue:   []QueuedWaiter{{Requester: 1, Mode: Shared, LastTime: 5, Arrival: 77}},
		},
	}).Encode())
	f.Add((&LockGrant{Lock: 4, Tail: &GrantTail{Version: GrantTailVersion, NewHome: -1}}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeLockGrant(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Errorf("re-encode mismatch")
		}
	})
}

func FuzzDecodeBarrierEnter(f *testing.F) {
	f.Add((&BarrierEnter{Barrier: 1, Epoch: 2, Node: 3, Time: 4,
		Updates: []Update{{Addr: 8, TS: 1, Data: []byte{9}}}}).Encode())
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeBarrierEnter(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Errorf("re-encode mismatch")
		}
	})
}

func FuzzDecodeBarrierRelease(f *testing.F) {
	f.Add((&BarrierRelease{Barrier: 1, Epoch: 2, Time: 3}).Encode())
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeBarrierRelease(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Errorf("re-encode mismatch")
		}
	})
}

func FuzzDecodeReliableData(f *testing.F) {
	f.Add((&ReliableData{Seq: 7, Kind: KindLockGrant, Payload: []byte{1, 2, 3}}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeReliableData(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Errorf("re-encode mismatch")
		}
	})
}

func FuzzDecodeJoinRequest(f *testing.F) {
	f.Add((&JoinRequest{Version: JoinVersion, Node: 4, Epoch: 2}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeJoinRequest(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Errorf("re-encode mismatch")
		}
	})
}

func FuzzDecodeJoinAccept(f *testing.F) {
	f.Add((&JoinAccept{
		Epoch:   3,
		Sponsor: 0,
		Dir: []JoinDirEntry{
			{Obj: 1, Gen: 7, Home: 2},
			{Obj: 2, Barrier: true, Gen: 4, Home: 0},
		},
		Data: []Update{{Addr: 64, TS: 9, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}},
	}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeJoinAccept(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Errorf("re-encode mismatch")
		}
	})
}

func FuzzDecodeMembershipChange(f *testing.F) {
	f.Add((&MembershipChange{Epoch: 5, Node: 3, Action: MemberLeft, Cycles: 77}).Encode())
	f.Add([]byte{1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMembershipChange(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Errorf("re-encode mismatch")
		}
	})
}

func FuzzDecodeHomeChange(f *testing.F) {
	f.Add((&HomeChange{Version: HomeChangeVersion, Lock: 2, NewHome: 3, OldHome: 1,
		Epoch: 4, Count: 24, Total: 32, Cycles: 991}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeHomeChange(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Errorf("re-encode mismatch")
		}
	})
}

func FuzzDecodePartitionFence(f *testing.F) {
	f.Add((&PartitionFence{Node: 3, Epoch: 5, Cycles: 4242}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodePartitionFence(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Errorf("re-encode mismatch")
		}
	})
}

func FuzzDecodePartitionHeal(f *testing.F) {
	f.Add((&PartitionHeal{Node: 2, Epoch: 6, Cycles: 9001}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodePartitionHeal(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Errorf("re-encode mismatch")
		}
	})
}

func FuzzDecodeReliableAck(f *testing.F) {
	f.Add((&ReliableAck{Seq: 42}).Encode())
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeReliableAck(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Errorf("re-encode mismatch")
		}
	})
}
