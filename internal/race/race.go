// Package race is Midway's entry-consistency race detector
// (Config.RaceDetect).  Entry consistency makes data-race detection
// unusually cheap for a DSM: the programming model already names, for
// every shared datum, the synchronization object that guards it (the
// data↔lock binding), and the RT write-detection scheme already stamps
// every modified line with a Lamport timestamp.  Crossing the two gives
// two independent checks:
//
//   - Unguarded writes: every store is checked against the writer's
//     currently-held lock bindings and the barrier bindings.  A store to
//     lock-bound shared data whose guard is not held is a race by
//     definition under entry consistency — the protocol gives such a
//     write no consistency guarantee at all.
//
//   - Unordered conflicts: at transfer and barrier-merge time the
//     detector cross-checks incoming updates against local per-line
//     state.  An incoming update that lands on a line this node has
//     modified since its own last synchronization episode (an RT
//     "pending" line), or two nodes entering the same barrier epoch with
//     overlapping update ranges, is a pair of accesses with no
//     happens-before order between them.
//
// The pending-line cross-check needs the RT scheme's per-line timestamp
// sentinel, so it is live under rt and the rt-routed part of hybrid; VM
// pages fall back to the unguarded-store check plus the barrier-merge
// overlap check (VM diffs are byte-accurate, so merge overlap is exact).
// The merge check is disabled under the blast scheme, which ships whole
// bindings rather than modified bytes and would overlap spuriously.
//
// The detector is metadata-only: it charges no simulated cycles, so a
// detecting run's simulated results and statistics are identical to a
// non-detecting run's, and its findings (reported as obs events) sort
// deterministically under both engines.  When Config.RaceDetect is off
// no Checker exists and the hot paths cost one nil check.
package race

import (
	"sort"
	"sync"

	"midway/internal/memory"
	"midway/internal/obs"
	"midway/internal/proto"
)

// Guard describes one lock object's data binding for the diagnosis
// directory: when an unguarded store is flagged, the directory names the
// lock the writer should have held.
type Guard struct {
	Obj    int32
	Name   string
	Ranges []memory.Range
}

// Config assembles a per-node Checker.
type Config struct {
	// Node is the processor this checker observes.
	Node int
	// Layout and Inst give the checker read access to the node's memory
	// image (region metadata and RT dirtybit timestamps).
	Layout *memory.Layout
	Inst   *memory.Instance
	// Tracer receives findings as events; nil records findings only.
	Tracer *obs.Tracer
	// Rec collects findings across all nodes' checkers.
	Rec *Recorder
	// Guards is the static lock→binding directory used to name the
	// object a writer should have held.  Rebinds observed by this node
	// refresh its entries.
	Guards []Guard
	// Exempt is the union of all barrier bindings: barrier-bound data is
	// written between episodes by design (SPMD partitions), so stores to
	// it are checked at merge time instead of store time.
	Exempt []memory.Range
	// MergeCheck enables the barrier-merge overlap check (off for the
	// blast scheme, whose updates cover whole bindings).
	MergeCheck bool
	// IncomingCheck enables the grant-time pending-line cross-check.
	// Only the pure rt scheme keeps the DirtyPending sentinel accurate
	// for every shared region; hybrid can strand pending marks on
	// regions it later classifies as vm, so it (and vm itself) falls
	// back to unguarded-store and merge detection.
	IncomingCheck bool
}

// Finding is one recorded race, the Recorder-side mirror of the
// EvUnguardedWrite / EvUnorderedConflict events.
type Finding struct {
	// Kind is "unguarded-write" or "unordered-conflict".
	Kind string
	// Node is the writer (unguarded) or the lower-id party (conflict);
	// Peer is the other party, -1 for unguarded writes.
	Node int
	Peer int
	// Obj is the guarding or merging synchronization object, -1 when no
	// lock binds the address; Object its name when known.
	Obj    int32
	Object string
	// Region names the stored-to region for unguarded writes.
	Region string
	// Addr and Size locate the access (the overlap, for conflicts).
	Addr memory.Addr
	Size uint32
	// TS1 and TS2 are the two access timestamps: for unguarded writes
	// the writer's Lamport time and the line's last synchronized stamp;
	// for conflicts the two parties' times.
	TS1, TS2 int64
	// Cycles is the simulated time the finding surfaced.
	Cycles uint64
}

// Recorder collects findings from every node's checker.  Safe for
// concurrent use.
type Recorder struct {
	mu       sync.Mutex
	findings []Finding
}

// NewRecorder returns an empty shared findings recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) add(f Finding) {
	r.mu.Lock()
	r.findings = append(r.findings, f)
	r.mu.Unlock()
}

// Findings returns the recorded findings sorted into a deterministic
// order (by cycles, then node, kind, address).
func (r *Recorder) Findings() []Finding {
	r.mu.Lock()
	out := make([]Finding, len(r.findings))
	copy(out, r.findings)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Cycles != b.Cycles {
			return a.Cycles < b.Cycles
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.TS1 < b.TS1
	})
	return out
}

// heldGuard is one lock the node currently holds, with its binding as of
// the grant (bindings travel with the token, so this view is current).
type heldGuard struct {
	obj     uint32
	name    string
	binding []memory.Range
}

// Checker is one node's race detector.  Its held-guard state is mutated
// from the acquire/release/grant paths and read from the store path;
// these never run concurrently for a node (grants are applied while the
// node's application goroutine is blocked awaiting them), the same
// discipline the core relies on for the lock state itself.
type Checker struct {
	cfg  Config
	held []heldGuard
	// lastHit caches the last range that covered a store, so the common
	// tight-loop pattern (many stores into one guarded range) costs one
	// range test.
	lastHit memory.Range
	// guards is the mutable diagnosis directory seeded from cfg.Guards.
	guards []Guard
	// flagged dedups unguarded-write findings per (region, line), so a
	// racy store loop yields one finding per line instead of a flood.
	flagged map[uint64]struct{}
}

// NewChecker builds a node's checker.
func NewChecker(cfg Config) *Checker {
	guards := make([]Guard, len(cfg.Guards))
	for i, g := range cfg.Guards {
		guards[i] = Guard{Obj: g.Obj, Name: g.Name, Ranges: append([]memory.Range(nil), g.Ranges...)}
	}
	return &Checker{cfg: cfg, guards: guards, flagged: make(map[uint64]struct{})}
}

// NoteAcquire records that the node now holds obj with the given
// binding, refreshing the diagnosis directory with the travelled
// binding.
func (c *Checker) NoteAcquire(obj uint32, name string, binding []memory.Range) {
	b := append([]memory.Range(nil), binding...)
	found := false
	for i := range c.held {
		if c.held[i].obj == obj {
			c.held[i].binding = b
			found = true
			break
		}
	}
	if !found {
		c.held = append(c.held, heldGuard{obj: obj, name: name, binding: b})
	}
	c.noteBinding(obj, name, b)
}

// NoteRelease drops obj from the held set.
func (c *Checker) NoteRelease(obj uint32) {
	for i := range c.held {
		if c.held[i].obj == obj {
			c.held = append(c.held[:i], c.held[i+1:]...)
			c.lastHit = memory.Range{}
			return
		}
	}
}

// NoteRebind refreshes obj's binding in both the held set and the
// diagnosis directory (Rebind requires holding the lock exclusively).
func (c *Checker) NoteRebind(obj uint32, name string, binding []memory.Range) {
	b := append([]memory.Range(nil), binding...)
	for i := range c.held {
		if c.held[i].obj == obj {
			c.held[i].binding = b
			break
		}
	}
	c.lastHit = memory.Range{}
	c.noteBinding(obj, name, b)
}

func (c *Checker) noteBinding(obj uint32, name string, binding []memory.Range) {
	for i := range c.guards {
		if c.guards[i].Obj == int32(obj) {
			c.guards[i].Ranges = binding
			return
		}
	}
	c.guards = append(c.guards, Guard{Obj: int32(obj), Name: name, Ranges: binding})
}

// CheckStore flags a store to shared data whose guarding lock the node
// does not hold.  Called from the write fast path with the detector
// enabled; cycles is the node's simulated time and now its Lamport time.
func (c *Checker) CheckStore(a memory.Addr, size uint32, r *memory.Region, cycles uint64, now int64) {
	if r.Class != memory.Shared {
		return
	}
	rg := memory.Range{Addr: a, Size: size}
	if c.lastHit.Size != 0 && c.lastHit.Contains(a) && c.lastHit.Contains(a+memory.Addr(size)-1) {
		return
	}
	for i := range c.held {
		for _, hr := range c.held[i].binding {
			if hr.Contains(a) && hr.Contains(a+memory.Addr(size)-1) {
				c.lastHit = hr
				return
			}
		}
	}
	// Barrier-bound data is legitimately written between episodes; its
	// conflicts are caught pairwise at merge time instead.
	for _, er := range c.cfg.Exempt {
		if er.Contains(a) && er.Contains(a+memory.Addr(size)-1) {
			c.lastHit = er
			return
		}
	}
	// A race only exists when some synchronization object guards the
	// address; unbound shared data has no entry-consistency contract to
	// violate.
	guard := int32(-1)
	guardName := ""
	for i := range c.guards {
		for _, gr := range c.guards[i].Ranges {
			if gr.Overlaps(rg) {
				guard = c.guards[i].Obj
				guardName = c.guards[i].Name
				break
			}
		}
		if guard >= 0 {
			break
		}
	}
	if guard < 0 {
		return
	}
	line := r.LineIndex(a)
	key := uint64(r.Base)<<32 | uint64(uint32(line))
	if _, dup := c.flagged[key]; dup {
		return
	}
	c.flagged[key] = struct{}{}
	// The line's current stamp is the last synchronized write the node
	// has seen there (zero when the RT sentinel says this node already
	// dirtied the line, or when the scheme keeps no timestamps).
	var last int64
	if bits := c.cfg.Inst.Dirtybits(r); bits != nil {
		if ts := bits[line]; ts != memory.DirtyPending {
			last = ts
		}
	}
	// The event names the guard the writer should have held — the
	// actionable half of the diagnosis.  The region name stays in the
	// Finding only: small allocations share regions, so it can name a
	// co-resident allocation rather than the stored-to one.
	c.report(Finding{
		Kind: "unguarded-write", Node: c.cfg.Node, Peer: -1,
		Obj: guard, Object: guardName, Region: r.Name,
		Addr: a, Size: size, TS1: now, TS2: last, Cycles: cycles,
	}, obs.Event{
		Cycles: cycles, Node: int32(c.cfg.Node), Kind: obs.EvUnguardedWrite,
		Obj: guard, Peer: -1, Name: guardName,
		Addr: uint64(a), Bytes: uint64(size), A: now, B: last,
	})
}

// CheckIncoming cross-checks a lock grant's updates against this node's
// RT pending lines: an incoming update covering a line this node has
// modified since its last synchronization episode is a pair of unordered
// writes.  Inert for schemes that never mark lines pending (vm, blast,
// twindiff, eager-stamped rt).  from is the granting node, arrival the
// grant's simulated arrival time, now this node's Lamport time.
func (c *Checker) CheckIncoming(obj uint32, name string, from int, us []proto.Update, arrival uint64, now int64) {
	if !c.cfg.IncomingCheck {
		return
	}
	for _, u := range us {
		segs, err := c.cfg.Layout.Segments(u.Range())
		if err != nil {
			continue
		}
		for _, seg := range segs {
			r := seg.Region
			if r.Class != memory.Shared {
				continue
			}
			bits := c.cfg.Inst.Dirtybits(r)
			if bits == nil {
				continue
			}
			base := seg.Addr()
			lineSz := memory.Addr(r.LineSize())
			for off := memory.Addr(0); off < memory.Addr(seg.Len); off += lineSz {
				idx := r.LineIndex(base + off)
				if bits[idx] != memory.DirtyPending {
					continue
				}
				ov, _ := u.Range().Intersect(r.LineRange(idx))
				c.conflict(obj, name, c.cfg.Node, from, now, u.TS, ov, arrival)
				break // one finding per update is enough to flag the pair
			}
		}
	}
}

// CheckMerge cross-checks the update sets the barrier's parties brought
// to one epoch: two parties shipping overlapping byte ranges into the
// same merge wrote the same data with no order between them.  Runs on
// the barrier manager.  enters carries every party's updates; at is the
// epoch's release time.
func (c *Checker) CheckMerge(obj uint32, name string, enters []*proto.BarrierEnter, at uint64) {
	if !c.cfg.MergeCheck {
		return
	}
	for i := 0; i < len(enters); i++ {
		for j := i + 1; j < len(enters); j++ {
			a, b := enters[i], enters[j]
			if a.Node == b.Node {
				continue
			}
			for _, ua := range a.Updates {
				for _, ub := range b.Updates {
					if !ua.Range().Overlaps(ub.Range()) {
						continue
					}
					ov, _ := ua.Range().Intersect(ub.Range())
					n1, t1 := int(a.Node), ua.TS
					n2, t2 := int(b.Node), ub.TS
					c.conflict(obj, name, n1, n2, t1, t2, ov, at)
				}
			}
		}
	}
}

// conflict records one unordered pair, canonicalizing the party order
// (lower node id first) so the finding is identical regardless of
// arrival order under the goroutine engine.
func (c *Checker) conflict(obj uint32, name string, n1, n2 int, t1, t2 int64, ov memory.Range, at uint64) {
	if n2 < n1 {
		n1, n2 = n2, n1
		t1, t2 = t2, t1
	}
	c.report(Finding{
		Kind: "unordered-conflict", Node: n1, Peer: n2,
		Obj: int32(obj), Object: name,
		Addr: ov.Addr, Size: ov.Size, TS1: t1, TS2: t2, Cycles: at,
	}, obs.Event{
		Cycles: at, Node: int32(n1), Kind: obs.EvUnorderedConflict,
		Obj: int32(obj), Peer: int32(n2), Name: name,
		Addr: uint64(ov.Addr), Bytes: uint64(ov.Size), A: t1, B: t2,
	})
}

func (c *Checker) report(f Finding, e obs.Event) {
	c.cfg.Rec.add(f)
	if t := c.cfg.Tracer; t != nil {
		t.Emit(e)
	}
}
