package race

import (
	"testing"

	"midway/internal/memory"
	"midway/internal/proto"
)

// newTestChecker builds a single-node checker over one 256-byte shared
// region guarded by lock 1 on its first half, with the last 64 bytes
// barrier-exempt.
func newTestChecker(t *testing.T) (*Checker, memory.Addr, *memory.Region) {
	t.Helper()
	l := memory.NewLayout(memory.DefaultRegionShift)
	a, err := l.Alloc("data", 256, memory.Shared, 3)
	if err != nil {
		t.Fatal(err)
	}
	l.Freeze()
	inst := memory.NewInstance(l)
	r := l.RegionFor(a)
	if r == nil {
		t.Fatal("no region for the allocation")
	}
	c := NewChecker(Config{
		Node: 0, Layout: l, Inst: inst, Rec: NewRecorder(),
		Guards:        []Guard{{Obj: 1, Name: "lk", Ranges: []memory.Range{{Addr: a, Size: 128}}}},
		Exempt:        []memory.Range{{Addr: a + 192, Size: 64}},
		MergeCheck:    true,
		IncomingCheck: true,
	})
	return c, a, r
}

// TestCheckStoreUnguarded pins the core judgment: a store into a
// lock-bound range without the lock held is flagged once per line (the
// dedup), naming the guard; the same store with the lock held, a store
// to barrier-exempt bytes, and a store to unbound bytes are not flagged.
func TestCheckStoreUnguarded(t *testing.T) {
	c, a, r := newTestChecker(t)
	c.CheckStore(a, 8, r, 10, 1)
	c.CheckStore(a, 8, r, 11, 2) // same line: deduped
	c.CheckStore(a+64, 8, r, 12, 3)
	fs := c.cfg.Rec.Findings()
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2 (one per line): %+v", len(fs), fs)
	}
	for _, f := range fs {
		if f.Kind != "unguarded-write" || f.Obj != 1 || f.Object != "lk" {
			t.Errorf("finding %+v, want unguarded-write naming guard lk (obj 1)", f)
		}
	}

	cleanCfg := c.cfg
	cleanCfg.Rec = NewRecorder()
	clean := NewChecker(cleanCfg)
	clean.NoteAcquire(1, "lk", []memory.Range{{Addr: a, Size: 128}})
	clean.CheckStore(a, 8, r, 10, 1)     // guard held
	clean.CheckStore(a+192, 8, r, 11, 2) // barrier-exempt
	clean.CheckStore(a+128, 8, r, 12, 3) // unbound: no contract to violate
	clean.NoteRelease(1)
	clean.CheckStore(a+192, 8, r, 13, 4) // still exempt after release
	if fs := cleanCfg.Rec.Findings(); len(fs) != 0 {
		t.Errorf("clean access pattern flagged: %+v", fs)
	}
}

// TestCheckStoreAfterRelease pins that releasing the guard re-arms the
// check: the same store that was legal while held is flagged afterwards.
func TestCheckStoreAfterRelease(t *testing.T) {
	c, a, r := newTestChecker(t)
	c.NoteAcquire(1, "lk", []memory.Range{{Addr: a, Size: 128}})
	c.CheckStore(a, 8, r, 10, 1)
	c.NoteRelease(1)
	c.CheckStore(a, 8, r, 20, 2)
	fs := c.cfg.Rec.Findings()
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1 (the post-release store): %+v", len(fs), fs)
	}
	if fs[0].Cycles != 20 {
		t.Errorf("flagged the store at cycle %d, want the post-release one at 20", fs[0].Cycles)
	}
}

// TestCheckStoreRebind pins that a rebind observed by the checker moves
// both the held coverage and the diagnosis directory.
func TestCheckStoreRebind(t *testing.T) {
	c, a, r := newTestChecker(t)
	c.NoteAcquire(1, "lk", []memory.Range{{Addr: a, Size: 128}})
	c.NoteRebind(1, "lk", []memory.Range{{Addr: a + 128, Size: 64}})
	c.CheckStore(a+128, 8, r, 10, 1) // covered by the new binding, held
	if fs := c.cfg.Rec.Findings(); len(fs) != 0 {
		t.Errorf("store under rebound held lock flagged: %+v", fs)
	}
	c.NoteRelease(1)
	c.CheckStore(a+136, 8, r, 20, 2) // new binding, not held
	fs := c.cfg.Rec.Findings()
	if len(fs) != 1 || fs[0].Obj != 1 {
		t.Fatalf("rebound range store after release: got %+v, want one finding for obj 1", fs)
	}
}

// TestCheckIncomingPendingLine pins the grant-time cross-check: an
// incoming update covering a locally pending line is an unordered
// conflict with canonical (lower node first) party order, and the check
// is inert when disabled (the vm/hybrid fallback).
func TestCheckIncomingPendingLine(t *testing.T) {
	c, a, r := newTestChecker(t)
	bits := c.cfg.Inst.Dirtybits(r)
	bits[r.LineIndex(a)] = memory.DirtyPending
	us := []proto.Update{{Addr: a, TS: 7, Data: make([]byte, 16)}}

	offCfg := c.cfg
	offCfg.IncomingCheck = false
	offCfg.Rec = NewRecorder()
	off := NewChecker(offCfg)
	off.CheckIncoming(1, "lk", 2, us, 100, 9)
	if fs := offCfg.Rec.Findings(); len(fs) != 0 {
		t.Errorf("disabled incoming check flagged: %+v", fs)
	}

	c.CheckIncoming(1, "lk", 2, us, 100, 9)
	fs := c.cfg.Rec.Findings()
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(fs), fs)
	}
	f := fs[0]
	if f.Kind != "unordered-conflict" || f.Node != 0 || f.Peer != 2 {
		t.Errorf("finding %+v, want conflict with canonical parties 0/2", f)
	}
	if f.TS1 != 9 || f.TS2 != 7 {
		t.Errorf("timestamps (%d,%d) did not travel with the canonical swap, want (9,7)", f.TS1, f.TS2)
	}
}

// TestCheckMergeOverlap pins the barrier-merge check: two parties
// shipping overlapping ranges into one epoch conflict (parties
// canonicalized), disjoint parties do not, and the check is inert when
// disabled (the blast fallback).
func TestCheckMergeOverlap(t *testing.T) {
	c, a, _ := newTestChecker(t)
	mk := func(node uint32, addr memory.Addr, size uint32, ts int64) *proto.BarrierEnter {
		return &proto.BarrierEnter{
			Node:    node,
			Updates: []proto.Update{{Addr: addr, TS: ts, Data: make([]byte, size)}},
		}
	}
	// Disjoint: the SPMD partition pattern.
	c.CheckMerge(3, "bar", []*proto.BarrierEnter{mk(0, a, 64, 1), mk(1, a+64, 64, 2)}, 50)
	if fs := c.cfg.Rec.Findings(); len(fs) != 0 {
		t.Errorf("disjoint merge flagged: %+v", fs)
	}
	// Overlapping, listed higher-node first to exercise canonicalization.
	c.CheckMerge(3, "bar", []*proto.BarrierEnter{mk(2, a+32, 64, 5), mk(1, a, 64, 4)}, 60)
	fs := c.cfg.Rec.Findings()
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(fs), fs)
	}
	f := fs[0]
	if f.Node != 1 || f.Peer != 2 || f.TS1 != 4 || f.TS2 != 5 {
		t.Errorf("finding %+v, want parties 1/2 with ts 4/5", f)
	}
	if f.Addr != a+32 || f.Size != 32 {
		t.Errorf("overlap 0x%x+%d, want 0x%x+32", f.Addr, f.Size, a+32)
	}

	offCfg := c.cfg
	offCfg.MergeCheck = false
	offCfg.Rec = NewRecorder()
	off := NewChecker(offCfg)
	off.CheckMerge(3, "bar", []*proto.BarrierEnter{mk(2, a+32, 64, 5), mk(1, a, 64, 4)}, 60)
	if fs := offCfg.Rec.Findings(); len(fs) != 0 {
		t.Errorf("disabled merge check flagged: %+v", fs)
	}
}

// TestRecorderOrder pins the deterministic findings order regardless of
// arrival order.
func TestRecorderOrder(t *testing.T) {
	r := NewRecorder()
	r.add(Finding{Kind: "unguarded-write", Node: 2, Cycles: 30})
	r.add(Finding{Kind: "unordered-conflict", Node: 0, Cycles: 10})
	r.add(Finding{Kind: "unguarded-write", Node: 1, Cycles: 10})
	fs := r.Findings()
	if fs[0].Node != 0 || fs[1].Node != 1 || fs[2].Node != 2 {
		t.Errorf("findings not in (cycles, node) order: %+v", fs)
	}
}
