// Package health adds failure detection to a transport stack.
//
// A Monitor wraps a transport.Network and watches per-peer liveness: every
// endpoint emits a small KindHeartbeat probe to each peer on a fixed
// period, and any message arrival (heartbeat or protocol traffic) counts
// as evidence the sender is alive.  A peer silent past the suspicion
// timeout is declared crashed: the declaration is recorded, broadcast to
// the surviving peers as a KindCrashNotice, and reported through the
// OnDeath callback so the layers above can reclaim state.
//
// The monitor sits below the reliability layer,
//
//	EC protocol -> Reliable -> Monitor -> FaultNetwork -> Channel/TCP
//
// so heartbeats are never retransmitted to a dead peer, and the reliable
// envelopes flowing through it double as liveness evidence on busy links.
// Heartbeats and crash notices are consumed here and never reach the
// protocol handler; they carry no simulated timestamps and charge nothing
// to the cost model, so enabling the monitor leaves simulated results
// byte-identical.
//
// Declaration is quorum-gated.  Every endpoint maintains a reachability
// view — the set of live peers it has heard from within the suspicion
// timeout — and may escalate Suspect to Dead only while that view (plus
// itself) covers a strict majority of the live membership.  An exact 50/50
// split is broken in favor of the side containing the lowest live node id,
// so a two-node system has exactly one survivor instead of two mutual
// declarations.  An endpoint without quorum self-fences: it casts no
// votes, declares no one, and keeps heartbeating so the heal is observed;
// quorum regained lifts the fence.  Fence and heal transitions surface
// through OnFence/OnHeal and are broadcast as PartitionFence/PartitionHeal
// notices.
//
// Among quorum-holding endpoints declaration still requires agreement: a
// node is declared dead only when every quorum observer has lost it.  A
// single silent node is a crash and is declared; two or more silent nodes
// at once look like a partition, and the Options.Partition policy decides:
// Fence (default) declares no one and waits for the heal, Degrade declares
// the unreachable side dead and lets reclamation run, Abort reports the
// partition through OnPartition so the run can fail with a typed error.
package health

import (
	"sort"
	"sync"
	"time"

	"midway/internal/obs"
	"midway/internal/proto"
	"midway/internal/transport"
)

// PartitionPolicy selects how a quorum-holding observer reacts to a
// multi-node silence — the signature of a network partition rather than a
// single crash.  It mirrors the core layer's OnPartition configuration;
// this package keeps its own copy to stay import-cycle-free.
type PartitionPolicy int

const (
	// PartitionFence (the default) declares no one: the minority is
	// assumed fenced, tokens stay frozen, and recovery waits for the
	// heal.
	PartitionFence PartitionPolicy = iota
	// PartitionAbort reports the partition through OnPartition so the
	// system can fail the run with a typed error.
	PartitionAbort
	// PartitionDegrade declares the unreachable side dead, reclaiming its
	// tokens exactly as single-crash recovery would.
	PartitionDegrade
)

// Options tunes the failure detector.  The zero value selects the defaults
// noted on each field.
type Options struct {
	// Period is the heartbeat interval and the granularity of liveness
	// checks (default 20ms).
	Period time.Duration
	// SuspectAfter is the suspicion timeout: a peer silent this long is
	// suspected, and declared crashed once every live observer agrees
	// (default 6x Period).
	SuspectAfter time.Duration
	// Manual disables the background heartbeat and checker goroutines;
	// the test harness drives the monitor with Beat and CheckNow instead.
	Manual bool
	// Now substitutes a clock for deterministic tests (default time.Now).
	Now func() time.Time
	// Partition selects the reaction to a multi-node silence seen from a
	// quorum-holding observer (default PartitionFence).
	Partition PartitionPolicy
	// Trace, when non-nil, receives heartbeat-miss, suspect, declare-dead,
	// quorum-loss, fence and heal events.  Liveness is real-time
	// machinery, so these events carry no simulated timestamp.
	Trace *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.Period == 0 {
		o.Period = 20 * time.Millisecond
	}
	if o.SuspectAfter == 0 {
		o.SuspectAfter = 6 * o.Period
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Monitor is a failure-detecting transport.Network wrapper.
type Monitor struct {
	inner transport.Network
	opts  Options

	mu    sync.Mutex
	conns []*monConn
	dead  map[int]bool
	// inactive marks node ids outside the current membership — absent
	// capacity and gracefully-departed nodes.  They emit no heartbeats,
	// cast no votes, and are never declared dead: a planned leave must
	// not be double-reclaimed as a crash.
	inactive map[int]bool
	// fencedNodes is the monitor's view of which nodes are currently
	// partition-fenced — from its own endpoints' quorum checks and from
	// received PartitionFence/PartitionHeal notices.  It dedupes the
	// fence/heal callbacks and trace events.
	fencedNodes map[int]bool
	// partitionReported dedupes the OnPartition (abort-policy) callback.
	partitionReported bool
	onDeath           func(node int, cycles uint64)
	onFence           func(node int)
	onHeal            func(node int)
	onPartition       func(unreachable []int)

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewMonitor wraps inner with failure detection.
func NewMonitor(inner transport.Network, opts Options) *Monitor {
	m := &Monitor{
		inner:       inner,
		opts:        opts.withDefaults(),
		conns:       make([]*monConn, inner.Nodes()),
		dead:        make(map[int]bool),
		inactive:    make(map[int]bool),
		fencedNodes: make(map[int]bool),
		stop:        make(chan struct{}),
	}
	if !m.opts.Manual {
		m.wg.Add(1)
		go m.checkLoop()
	}
	return m
}

// OnDeath registers the callback invoked exactly once per declared-dead
// node, with the node id and the simulated cycle time carried by the
// triggering crash notice (zero for real-time detection).  The callback
// runs on a monitor goroutine and must not block for long.  Register
// before the system runs.
func (m *Monitor) OnDeath(fn func(node int, cycles uint64)) {
	m.mu.Lock()
	m.onDeath = fn
	m.mu.Unlock()
}

// OnFence registers the callback invoked once per fence episode when a
// node loses its quorum and self-fences (or a PartitionFence notice
// reports that it did).  Register before the system runs.
func (m *Monitor) OnFence(fn func(node int)) {
	m.mu.Lock()
	m.onFence = fn
	m.mu.Unlock()
}

// OnHeal registers the callback invoked once per fence episode when the
// node regains its quorum (or a PartitionHeal notice reports that it
// did).  The stack above resets retransmission backoff here.  Register
// before the system runs.
func (m *Monitor) OnHeal(fn func(node int)) {
	m.mu.Lock()
	m.onHeal = fn
	m.mu.Unlock()
}

// OnPartition registers the callback invoked (once) when a
// quorum-holding observer sees a multi-node silence under the
// PartitionAbort policy, with the unreachable node ids.  Register before
// the system runs.
func (m *Monitor) OnPartition(fn func(unreachable []int)) {
	m.mu.Lock()
	m.onPartition = fn
	m.mu.Unlock()
}

// Nodes returns the node count.
func (m *Monitor) Nodes() int { return m.inner.Nodes() }

// Err returns the underlying network's first recorded failure.
func (m *Monitor) Err() error { return m.inner.Err() }

// Conn returns node i's monitored endpoint.  Endpoints are created once
// and cached: the liveness state must be shared by every caller.
func (m *Monitor) Conn(i int) transport.Conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.conns[i] == nil {
		c := &monConn{
			id:        i,
			mon:       m,
			inner:     m.inner.Conn(i),
			lastHeard: make([]time.Time, m.inner.Nodes()),
			misses:    make([]int, m.inner.Nodes()),
			suspected: make([]bool, m.inner.Nodes()),
		}
		now := m.opts.Now()
		for p := range c.lastHeard {
			c.lastHeard[p] = now
		}
		m.conns[i] = c
		if !m.opts.Manual {
			m.wg.Add(1)
			go m.heartbeatLoop(c)
		}
	}
	return m.conns[i]
}

// SetActive includes or excludes node k from liveness monitoring.  An
// elastic-membership system excludes provisioned-but-absent capacity at
// startup, includes a node when its join commits, and excludes it again
// when its graceful leave commits.  Activation refreshes every
// endpoint's last-heard time for k, so a just-joined node is not
// instantly "silent since construction"; deactivation clears any standing
// suspicion so a later rejoin starts clean.
func (m *Monitor) SetActive(k int, active bool) {
	m.mu.Lock()
	if active {
		delete(m.inactive, k)
	} else {
		m.inactive[k] = true
		delete(m.fencedNodes, k) // departure supersedes a fence
	}
	conns := append([]*monConn(nil), m.conns...)
	m.mu.Unlock()
	now := m.opts.Now()
	for _, c := range conns {
		if c == nil {
			continue
		}
		c.mu.Lock()
		if k >= 0 && k < len(c.lastHeard) {
			c.lastHeard[k] = now
			c.misses[k] = 0
			c.suspected[k] = false
		}
		c.mu.Unlock()
	}
}

// isInactive reports whether node k is outside the current membership.
func (m *Monitor) isInactive(k int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inactive[k]
}

// IsDead reports whether node k has been declared crashed.
func (m *Monitor) IsDead(k int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead[k]
}

// Dead returns the declared-dead nodes in ascending order.
func (m *Monitor) Dead() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.dead))
	for k := range m.dead {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Quiesce stops the heartbeat and checker goroutines without closing the
// network, so system teardown (nodes going silent on purpose) does not
// trigger spurious declarations.  Message pass-through keeps working.
func (m *Monitor) Quiesce() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// Close quiesces the monitor and closes the inner network.
func (m *Monitor) Close() error {
	m.Quiesce()
	return m.inner.Close()
}

// checkLoop runs liveness checks on the monitor period.
func (m *Monitor) checkLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.opts.Period)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.CheckNow()
		}
	}
}

// heartbeatLoop emits probes from endpoint c to every live peer.
func (m *Monitor) heartbeatLoop(c *monConn) {
	defer m.wg.Done()
	tick := time.NewTicker(m.opts.Period)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.Beat(c.id)
		}
	}
}

// Beat sends one heartbeat from endpoint id to every live peer.  The
// background heartbeater calls it on the period; manual-mode tests call it
// directly.
func (m *Monitor) Beat(id int) {
	m.mu.Lock()
	c := m.conns[id]
	if c == nil || m.dead[id] || m.inactive[id] {
		m.mu.Unlock()
		return
	}
	var peers []int
	for p := 0; p < m.inner.Nodes(); p++ {
		if p != id && !m.dead[p] && !m.inactive[p] {
			peers = append(peers, p)
		}
	}
	m.mu.Unlock()
	for _, p := range peers {
		_ = c.inner.Send(transport.Message{From: id, To: p, Kind: proto.KindHeartbeat})
	}
}

// CheckNow runs one liveness pass over every created endpoint.  The
// background checker calls it on the period; manual-mode tests call it
// directly after advancing the injected clock.
//
// The pass has two phases.  First every created live endpoint computes
// its reachability view over the live membership and its quorum: itself
// plus the peers heard within the suspicion timeout must be a strict
// majority, with an exact 50/50 split awarded to the side containing the
// lowest live node id.  Endpoints without quorum fence themselves (and
// unfence when quorum returns).  Second, only quorum-holding endpoints
// vote; a target every one of them has lost is declarable.  One
// declarable node is a crash and is declared; several at once are a
// partition and go through the configured PartitionPolicy.
func (m *Monitor) CheckNow() {
	now := m.opts.Now()
	m.mu.Lock()
	n := m.inner.Nodes()
	conns := append([]*monConn(nil), m.conns...)
	// Declared-dead and inactive (never-joined or departed) nodes are
	// equally outside the check: neither observes nor is observed.
	gone := make(map[int]bool, len(m.dead)+len(m.inactive))
	for k := range m.dead {
		gone[k] = true
	}
	for k := range m.inactive {
		gone[k] = true
	}
	m.mu.Unlock()

	// The live membership as this monitor knows it.
	var live []int
	for k := 0; k < n; k++ {
		if !gone[k] {
			live = append(live, k)
		}
	}
	if len(live) == 0 {
		return
	}
	lowest := live[0]

	// Phase 1: reachability, quorum, fence transitions.
	var voters []*monConn
	for _, c := range conns {
		if c == nil || gone[c.id] {
			continue
		}
		reach := 1 // itself
		lowestReached := c.id == lowest
		for _, p := range live {
			if p == c.id {
				continue
			}
			if !c.silent(p, now, m.opts.SuspectAfter) {
				reach++
				if p == lowest {
					lowestReached = true
				}
			}
		}
		quorum := 2*reach > len(live)
		if !quorum && 2*reach == len(live) {
			// Even split: the side holding the lowest live id wins, so
			// exactly one side of a 50/50 partition keeps the quorum.
			quorum = lowestReached
		}
		m.setFenced(c, !quorum, reach, len(live))
		if quorum {
			voters = append(voters, c)
		}
	}
	if len(voters) == 0 {
		return
	}

	// Phase 2: declarations, from quorum holders only.
	var declarable []int
	for t := 0; t < n; t++ {
		if gone[t] {
			continue
		}
		agree := 0
		count := 0
		for _, c := range voters {
			if c.id == t {
				continue
			}
			count++
			if c.observe(m, t, now) {
				agree++
			}
		}
		if count > 0 && agree == count {
			declarable = append(declarable, t)
		}
	}
	switch {
	case len(declarable) == 0:
	case len(declarable) == 1:
		// A single unreachable node is indistinguishable from a crash;
		// quorum established, declare it.
		m.declare(declarable[0], 0, voters[0].id)
	default:
		// Several nodes unreachable at once: a partition, not a crash.
		switch m.opts.Partition {
		case PartitionDegrade:
			for _, t := range declarable {
				m.declare(t, 0, voters[0].id)
			}
		case PartitionAbort:
			m.mu.Lock()
			fn := m.onPartition
			fire := !m.partitionReported && fn != nil
			m.partitionReported = true
			m.mu.Unlock()
			if fire {
				fn(append([]int(nil), declarable...))
			}
		default: // PartitionFence
			// Declare no one: the minority self-fences, tokens stay
			// frozen, and the heal lifts the fence.
		}
	}
}

// setFenced applies one endpoint's quorum verdict, driving the fence
// state machine: quorum lost emits quorum-loss and fence events, fires
// OnFence, and broadcasts a PartitionFence notice; quorum regained emits
// heal, fires OnHeal, and broadcasts PartitionHeal.  Broadcasts that
// cannot cross the cut are simply dropped — peers on the same side still
// learn, and the post-heal notice is what matters for recovery.
func (m *Monitor) setFenced(c *monConn, fenced bool, reach, liveCount int) {
	c.mu.Lock()
	changed := c.fenced != fenced
	c.fenced = fenced
	c.mu.Unlock()
	if !changed {
		return
	}
	if fenced {
		if tr := m.opts.Trace; tr != nil {
			tr.Emit(obs.Event{
				Kind: obs.EvQuorumLoss, Node: int32(c.id),
				Obj: -1, A: int64(reach), B: int64(liveCount),
			})
		}
		m.noteFence(c.id, c.id, 0)
		m.broadcast(c, proto.KindPartitionFence,
			(&proto.PartitionFence{Node: uint32(c.id)}).Encode())
	} else {
		m.noteHeal(c.id, 0)
		m.broadcast(c, proto.KindPartitionHeal,
			(&proto.PartitionHeal{Node: uint32(c.id)}).Encode())
	}
}

// noteFence records node k as fenced (idempotently), traces it and fires
// OnFence.  via is the observer reporting it (k itself for a self-fence).
func (m *Monitor) noteFence(k, via int, cycles uint64) {
	m.mu.Lock()
	if m.fencedNodes[k] || m.dead[k] || m.inactive[k] {
		m.mu.Unlock()
		return
	}
	m.fencedNodes[k] = true
	fn := m.onFence
	m.mu.Unlock()
	if tr := m.opts.Trace; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvFence, Cycles: cycles, Node: int32(k),
			Obj: -1, Peer: int32(via),
		})
	}
	if fn != nil {
		fn(k)
	}
}

// noteHeal lifts node k's fence (idempotently), traces it and fires
// OnHeal.
func (m *Monitor) noteHeal(k int, cycles uint64) {
	m.mu.Lock()
	if !m.fencedNodes[k] {
		m.mu.Unlock()
		return
	}
	delete(m.fencedNodes, k)
	fn := m.onHeal
	m.mu.Unlock()
	if tr := m.opts.Trace; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvHeal, Cycles: cycles, Node: int32(k), Obj: -1,
		})
	}
	if fn != nil {
		fn(k)
	}
}

// Fenced reports whether node k is currently partition-fenced in this
// monitor's view.
func (m *Monitor) Fenced(k int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fencedNodes[k]
}

// ResetSilence refreshes every endpoint's last-heard time for every
// peer, re-arming heartbeat observation.  Call on a heal notification:
// silence accumulated across the outage must not fire a declaration in
// the instant before the first post-heal heartbeat lands.
func (m *Monitor) ResetSilence() {
	m.mu.Lock()
	conns := append([]*monConn(nil), m.conns...)
	m.mu.Unlock()
	now := m.opts.Now()
	for _, c := range conns {
		if c == nil {
			continue
		}
		c.mu.Lock()
		for p := range c.lastHeard {
			c.lastHeard[p] = now
			c.misses[p] = 0
			c.suspected[p] = false
		}
		c.mu.Unlock()
	}
}

// broadcast sends a liveness notice from endpoint c to every live peer.
func (m *Monitor) broadcast(c *monConn, kind proto.Kind, payload []byte) {
	m.mu.Lock()
	var peers []int
	for p := 0; p < m.inner.Nodes(); p++ {
		if p != c.id && !m.dead[p] && !m.inactive[p] {
			peers = append(peers, p)
		}
	}
	m.mu.Unlock()
	for _, p := range peers {
		_ = c.inner.Send(transport.Message{
			From: c.id, To: p, Kind: kind, Payload: payload,
		})
	}
}

// declare marks node t dead (idempotently), traces it, broadcasts a crash
// notice from endpoint via, and fires the OnDeath callback.  Inactive
// nodes are never declared: a gracefully-departed node's state was handed
// off at its last release boundary, and reclaiming it again would
// double-apply the recovery path.
func (m *Monitor) declare(t int, cycles uint64, via int) {
	m.mu.Lock()
	if m.dead[t] || m.inactive[t] {
		m.mu.Unlock()
		return
	}
	m.dead[t] = true
	delete(m.fencedNodes, t) // dead supersedes fenced
	fn := m.onDeath
	var c *monConn
	if via >= 0 && via < len(m.conns) {
		c = m.conns[via]
	}
	var peers []int
	for p := 0; p < m.inner.Nodes(); p++ {
		if p != via && p != t && !m.dead[p] && !m.inactive[p] {
			peers = append(peers, p)
		}
	}
	m.mu.Unlock()

	if tr := m.opts.Trace; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvDeclareDead, Cycles: cycles, Node: int32(via),
			Obj: -1, Peer: int32(t),
		})
	}
	if c != nil {
		notice := proto.CrashNotice{Node: uint32(t), Cycles: cycles}
		for _, p := range peers {
			_ = c.inner.Send(transport.Message{
				From: via, To: p, Kind: proto.KindCrashNotice, Payload: notice.Encode(),
			})
		}
	}
	if fn != nil {
		fn(t, cycles)
	}
}

// monConn is one node's monitored endpoint.
type monConn struct {
	id    int
	mon   *Monitor
	inner transport.Conn

	mu        sync.Mutex
	lastHeard []time.Time
	misses    []int  // consecutive missed windows already traced, per peer
	suspected []bool // suspicion already traced, per peer
	fenced    bool   // this endpoint has lost its quorum
}

// heard records liveness evidence from peer p.
func (c *monConn) heard(p int) {
	c.mu.Lock()
	c.lastHeard[p] = c.mon.opts.Now()
	c.misses[p] = 0
	c.suspected[p] = false
	c.mu.Unlock()
}

// silent reports whether peer p has been quiet past the suspicion
// timeout as seen from c — the reachability predicate behind the quorum
// check.
func (c *monConn) silent(p int, now time.Time, after time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return now.Sub(c.lastHeard[p]) >= after
}

// observe updates miss/suspect bookkeeping for target t as seen from c and
// reports whether c votes t dead (silent past the suspicion timeout).
func (c *monConn) observe(m *Monitor, t int, now time.Time) bool {
	c.mu.Lock()
	elapsed := now.Sub(c.lastHeard[t])
	windows := int(elapsed / m.opts.Period)
	missed := windows > c.misses[t] && windows >= 1
	if missed {
		c.misses[t] = windows
	}
	vote := elapsed >= m.opts.SuspectAfter
	newSuspect := vote && !c.suspected[t]
	if newSuspect {
		c.suspected[t] = true
	}
	c.mu.Unlock()

	if tr := m.opts.Trace; tr != nil {
		if missed {
			tr.Emit(obs.Event{
				Kind: obs.EvHeartbeatMiss, Node: int32(c.id),
				Obj: -1, Peer: int32(t), A: int64(windows),
			})
		}
		if newSuspect {
			tr.Emit(obs.Event{
				Kind: obs.EvSuspect, Node: int32(c.id),
				Obj: -1, Peer: int32(t),
			})
		}
	}
	return vote
}

func (c *monConn) Send(m transport.Message) error { return c.inner.Send(m) }
func (c *monConn) Close() error                   { return c.inner.Close() }

// CopiesPayload delegates to the inner endpoint, preserving the copying
// contract through the stack.
func (c *monConn) CopiesPayload(to int) bool {
	if pc, ok := c.inner.(transport.PayloadCopier); ok {
		return pc.CopiesPayload(to)
	}
	return false
}

// Recv filters liveness traffic out of the inbound stream.  Any arrival
// from a live peer refreshes its liveness; heartbeats and crash notices
// are consumed here, and traffic from an already-declared-dead peer (a
// straggling delayed delivery) is dropped rather than resurrecting it.
func (c *monConn) Recv() (transport.Message, error) {
	for {
		msg, err := c.inner.Recv()
		if err != nil {
			return msg, err
		}
		if msg.From != c.id && c.mon.IsDead(msg.From) {
			continue
		}
		if msg.From != c.id {
			c.heard(msg.From)
		}
		switch msg.Kind {
		case proto.KindHeartbeat:
			continue
		case proto.KindCrashNotice:
			if notice, err := proto.DecodeCrashNotice(msg.Payload); err == nil {
				c.mon.declare(int(notice.Node), notice.Cycles, c.id)
			}
			continue
		case proto.KindPartitionFence:
			if notice, err := proto.DecodePartitionFence(msg.Payload); err == nil {
				c.mon.noteFence(int(notice.Node), c.id, notice.Cycles)
			}
			continue
		case proto.KindPartitionHeal:
			if notice, err := proto.DecodePartitionHeal(msg.Payload); err == nil {
				c.mon.noteHeal(int(notice.Node), notice.Cycles)
			}
			continue
		}
		return msg, nil
	}
}
