// Package health adds failure detection to a transport stack.
//
// A Monitor wraps a transport.Network and watches per-peer liveness: every
// endpoint emits a small KindHeartbeat probe to each peer on a fixed
// period, and any message arrival (heartbeat or protocol traffic) counts
// as evidence the sender is alive.  A peer silent past the suspicion
// timeout is declared crashed: the declaration is recorded, broadcast to
// the surviving peers as a KindCrashNotice, and reported through the
// OnDeath callback so the layers above can reclaim state.
//
// The monitor sits below the reliability layer,
//
//	EC protocol -> Reliable -> Monitor -> FaultNetwork -> Channel/TCP
//
// so heartbeats are never retransmitted to a dead peer, and the reliable
// envelopes flowing through it double as liveness evidence on busy links.
// Heartbeats and crash notices are consumed here and never reach the
// protocol handler; they carry no simulated timestamps and charge nothing
// to the cost model, so enabling the monitor leaves simulated results
// byte-identical.
//
// When several endpoints of the same Monitor are in use (the all-hosted
// channel transport), declaration requires agreement: a node is declared
// dead only when every live endpoint has lost contact with it.  A fenced
// node — one whose own links were severed — therefore cannot declare the
// healthy majority dead, and is itself declared once everyone has lost it.
// A single-endpoint monitor (one process of a TCP deployment) has only its
// own observations; if it loses every peer at once in a system of three or
// more nodes it assumes it is the fenced one and declares no one.
package health

import (
	"sort"
	"sync"
	"time"

	"midway/internal/obs"
	"midway/internal/proto"
	"midway/internal/transport"
)

// Options tunes the failure detector.  The zero value selects the defaults
// noted on each field.
type Options struct {
	// Period is the heartbeat interval and the granularity of liveness
	// checks (default 20ms).
	Period time.Duration
	// SuspectAfter is the suspicion timeout: a peer silent this long is
	// suspected, and declared crashed once every live observer agrees
	// (default 6x Period).
	SuspectAfter time.Duration
	// Manual disables the background heartbeat and checker goroutines;
	// the test harness drives the monitor with Beat and CheckNow instead.
	Manual bool
	// Now substitutes a clock for deterministic tests (default time.Now).
	Now func() time.Time
	// Trace, when non-nil, receives heartbeat-miss, suspect and
	// declare-dead events.  Liveness is real-time machinery, so these
	// events carry no simulated timestamp.
	Trace *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.Period == 0 {
		o.Period = 20 * time.Millisecond
	}
	if o.SuspectAfter == 0 {
		o.SuspectAfter = 6 * o.Period
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Monitor is a failure-detecting transport.Network wrapper.
type Monitor struct {
	inner transport.Network
	opts  Options

	mu      sync.Mutex
	conns   []*monConn
	dead    map[int]bool
	// inactive marks node ids outside the current membership — absent
	// capacity and gracefully-departed nodes.  They emit no heartbeats,
	// cast no votes, and are never declared dead: a planned leave must
	// not be double-reclaimed as a crash.
	inactive map[int]bool
	onDeath  func(node int, cycles uint64)

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewMonitor wraps inner with failure detection.
func NewMonitor(inner transport.Network, opts Options) *Monitor {
	m := &Monitor{
		inner:    inner,
		opts:     opts.withDefaults(),
		conns:    make([]*monConn, inner.Nodes()),
		dead:     make(map[int]bool),
		inactive: make(map[int]bool),
		stop:     make(chan struct{}),
	}
	if !m.opts.Manual {
		m.wg.Add(1)
		go m.checkLoop()
	}
	return m
}

// OnDeath registers the callback invoked exactly once per declared-dead
// node, with the node id and the simulated cycle time carried by the
// triggering crash notice (zero for real-time detection).  The callback
// runs on a monitor goroutine and must not block for long.  Register
// before the system runs.
func (m *Monitor) OnDeath(fn func(node int, cycles uint64)) {
	m.mu.Lock()
	m.onDeath = fn
	m.mu.Unlock()
}

// Nodes returns the node count.
func (m *Monitor) Nodes() int { return m.inner.Nodes() }

// Err returns the underlying network's first recorded failure.
func (m *Monitor) Err() error { return m.inner.Err() }

// Conn returns node i's monitored endpoint.  Endpoints are created once
// and cached: the liveness state must be shared by every caller.
func (m *Monitor) Conn(i int) transport.Conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.conns[i] == nil {
		c := &monConn{
			id:        i,
			mon:       m,
			inner:     m.inner.Conn(i),
			lastHeard: make([]time.Time, m.inner.Nodes()),
			misses:    make([]int, m.inner.Nodes()),
			suspected: make([]bool, m.inner.Nodes()),
		}
		now := m.opts.Now()
		for p := range c.lastHeard {
			c.lastHeard[p] = now
		}
		m.conns[i] = c
		if !m.opts.Manual {
			m.wg.Add(1)
			go m.heartbeatLoop(c)
		}
	}
	return m.conns[i]
}

// SetActive includes or excludes node k from liveness monitoring.  An
// elastic-membership system excludes provisioned-but-absent capacity at
// startup, includes a node when its join commits, and excludes it again
// when its graceful leave commits.  Activation refreshes every
// endpoint's last-heard time for k, so a just-joined node is not
// instantly "silent since construction"; deactivation clears any standing
// suspicion so a later rejoin starts clean.
func (m *Monitor) SetActive(k int, active bool) {
	m.mu.Lock()
	if active {
		delete(m.inactive, k)
	} else {
		m.inactive[k] = true
	}
	conns := append([]*monConn(nil), m.conns...)
	m.mu.Unlock()
	now := m.opts.Now()
	for _, c := range conns {
		if c == nil {
			continue
		}
		c.mu.Lock()
		if k >= 0 && k < len(c.lastHeard) {
			c.lastHeard[k] = now
			c.misses[k] = 0
			c.suspected[k] = false
		}
		c.mu.Unlock()
	}
}

// isInactive reports whether node k is outside the current membership.
func (m *Monitor) isInactive(k int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inactive[k]
}

// IsDead reports whether node k has been declared crashed.
func (m *Monitor) IsDead(k int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead[k]
}

// Dead returns the declared-dead nodes in ascending order.
func (m *Monitor) Dead() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.dead))
	for k := range m.dead {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Quiesce stops the heartbeat and checker goroutines without closing the
// network, so system teardown (nodes going silent on purpose) does not
// trigger spurious declarations.  Message pass-through keeps working.
func (m *Monitor) Quiesce() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// Close quiesces the monitor and closes the inner network.
func (m *Monitor) Close() error {
	m.Quiesce()
	return m.inner.Close()
}

// checkLoop runs liveness checks on the monitor period.
func (m *Monitor) checkLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.opts.Period)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.CheckNow()
		}
	}
}

// heartbeatLoop emits probes from endpoint c to every live peer.
func (m *Monitor) heartbeatLoop(c *monConn) {
	defer m.wg.Done()
	tick := time.NewTicker(m.opts.Period)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.Beat(c.id)
		}
	}
}

// Beat sends one heartbeat from endpoint id to every live peer.  The
// background heartbeater calls it on the period; manual-mode tests call it
// directly.
func (m *Monitor) Beat(id int) {
	m.mu.Lock()
	c := m.conns[id]
	if c == nil || m.dead[id] || m.inactive[id] {
		m.mu.Unlock()
		return
	}
	var peers []int
	for p := 0; p < m.inner.Nodes(); p++ {
		if p != id && !m.dead[p] && !m.inactive[p] {
			peers = append(peers, p)
		}
	}
	m.mu.Unlock()
	for _, p := range peers {
		_ = c.inner.Send(transport.Message{From: id, To: p, Kind: proto.KindHeartbeat})
	}
}

// CheckNow runs one liveness pass over every created endpoint.  The
// background checker calls it on the period; manual-mode tests call it
// directly after advancing the injected clock.
func (m *Monitor) CheckNow() {
	now := m.opts.Now()
	m.mu.Lock()
	n := m.inner.Nodes()
	conns := append([]*monConn(nil), m.conns...)
	// Declared-dead and inactive (never-joined or departed) nodes are
	// equally outside the check: neither observes nor is observed.
	gone := make(map[int]bool, len(m.dead)+len(m.inactive))
	for k := range m.dead {
		gone[k] = true
	}
	for k := range m.inactive {
		gone[k] = true
	}
	m.mu.Unlock()

	// Live observers: created endpoints not themselves declared dead.  An
	// observer that has lost every single peer is fenced (its own links
	// are gone); with no other endpoint to consult it must not declare
	// anyone, or a healthy majority would be "dead" to it.
	var observers []*monConn
	for _, c := range conns {
		if c != nil && !gone[c.id] {
			observers = append(observers, c)
		}
	}
	if len(observers) == 0 {
		return
	}
	if len(observers) == 1 && n >= 3 && observers[0].allSilent(now, m.opts.SuspectAfter, gone) {
		return
	}

	for t := 0; t < n; t++ {
		if gone[t] {
			continue
		}
		agree := 0
		voters := 0
		for _, c := range observers {
			if c.id == t {
				continue
			}
			voters++
			if c.observe(m, t, now) {
				agree++
			}
		}
		if voters > 0 && agree == voters {
			m.declare(t, 0, observers[0].id)
		}
	}
}

// declare marks node t dead (idempotently), traces it, broadcasts a crash
// notice from endpoint via, and fires the OnDeath callback.  Inactive
// nodes are never declared: a gracefully-departed node's state was handed
// off at its last release boundary, and reclaiming it again would
// double-apply the recovery path.
func (m *Monitor) declare(t int, cycles uint64, via int) {
	m.mu.Lock()
	if m.dead[t] || m.inactive[t] {
		m.mu.Unlock()
		return
	}
	m.dead[t] = true
	fn := m.onDeath
	var c *monConn
	if via >= 0 && via < len(m.conns) {
		c = m.conns[via]
	}
	var peers []int
	for p := 0; p < m.inner.Nodes(); p++ {
		if p != via && p != t && !m.dead[p] && !m.inactive[p] {
			peers = append(peers, p)
		}
	}
	m.mu.Unlock()

	if tr := m.opts.Trace; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvDeclareDead, Cycles: cycles, Node: int32(via),
			Obj: -1, Peer: int32(t),
		})
	}
	if c != nil {
		notice := proto.CrashNotice{Node: uint32(t), Cycles: cycles}
		for _, p := range peers {
			_ = c.inner.Send(transport.Message{
				From: via, To: p, Kind: proto.KindCrashNotice, Payload: notice.Encode(),
			})
		}
	}
	if fn != nil {
		fn(t, cycles)
	}
}

// monConn is one node's monitored endpoint.
type monConn struct {
	id    int
	mon   *Monitor
	inner transport.Conn

	mu        sync.Mutex
	lastHeard []time.Time
	misses    []int  // consecutive missed windows already traced, per peer
	suspected []bool // suspicion already traced, per peer
}

// heard records liveness evidence from peer p.
func (c *monConn) heard(p int) {
	c.mu.Lock()
	c.lastHeard[p] = c.mon.opts.Now()
	c.misses[p] = 0
	c.suspected[p] = false
	c.mu.Unlock()
}

// allSilent reports whether every live peer of c is past the suspicion
// timeout — the signature of this endpoint's own links being severed.
func (c *monConn) allSilent(now time.Time, after time.Duration, dead map[int]bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for p := range c.lastHeard {
		if p == c.id || dead[p] {
			continue
		}
		if now.Sub(c.lastHeard[p]) < after {
			return false
		}
	}
	return true
}

// observe updates miss/suspect bookkeeping for target t as seen from c and
// reports whether c votes t dead (silent past the suspicion timeout).
func (c *monConn) observe(m *Monitor, t int, now time.Time) bool {
	c.mu.Lock()
	elapsed := now.Sub(c.lastHeard[t])
	windows := int(elapsed / m.opts.Period)
	missed := windows > c.misses[t] && windows >= 1
	if missed {
		c.misses[t] = windows
	}
	vote := elapsed >= m.opts.SuspectAfter
	newSuspect := vote && !c.suspected[t]
	if newSuspect {
		c.suspected[t] = true
	}
	c.mu.Unlock()

	if tr := m.opts.Trace; tr != nil {
		if missed {
			tr.Emit(obs.Event{
				Kind: obs.EvHeartbeatMiss, Node: int32(c.id),
				Obj: -1, Peer: int32(t), A: int64(windows),
			})
		}
		if newSuspect {
			tr.Emit(obs.Event{
				Kind: obs.EvSuspect, Node: int32(c.id),
				Obj: -1, Peer: int32(t),
			})
		}
	}
	return vote
}

func (c *monConn) Send(m transport.Message) error { return c.inner.Send(m) }
func (c *monConn) Close() error                   { return c.inner.Close() }

// CopiesPayload delegates to the inner endpoint, preserving the copying
// contract through the stack.
func (c *monConn) CopiesPayload(to int) bool {
	if pc, ok := c.inner.(transport.PayloadCopier); ok {
		return pc.CopiesPayload(to)
	}
	return false
}

// Recv filters liveness traffic out of the inbound stream.  Any arrival
// from a live peer refreshes its liveness; heartbeats and crash notices
// are consumed here, and traffic from an already-declared-dead peer (a
// straggling delayed delivery) is dropped rather than resurrecting it.
func (c *monConn) Recv() (transport.Message, error) {
	for {
		msg, err := c.inner.Recv()
		if err != nil {
			return msg, err
		}
		if msg.From != c.id && c.mon.IsDead(msg.From) {
			continue
		}
		if msg.From != c.id {
			c.heard(msg.From)
		}
		switch msg.Kind {
		case proto.KindHeartbeat:
			continue
		case proto.KindCrashNotice:
			if notice, err := proto.DecodeCrashNotice(msg.Payload); err == nil {
				c.mon.declare(int(notice.Node), notice.Cycles, c.id)
			}
			continue
		}
		return msg, nil
	}
}
