package health

import (
	"sync"
	"testing"
	"time"

	"midway/internal/proto"
	"midway/internal/transport"
)

// fakeClock is an injectable clock for deterministic liveness tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

type death struct {
	node   int
	cycles uint64
}

// drain pumps an endpoint's Recv loop, forwarding the protocol messages
// that survive the monitor's liveness filtering.
func drain(c transport.Conn, out chan<- transport.Message) {
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		out <- m
	}
}

// TestMonitorDetectsSilentPeer drives a manual-mode monitor with an
// injected clock: three nodes keep beating, the fourth goes silent, and
// after the suspicion timeout every live endpoint agrees and the silent
// node is declared dead exactly once.
func TestMonitorDetectsSilentPeer(t *testing.T) {
	const nodes = 4
	const period = 10 * time.Millisecond
	clk := &fakeClock{t: time.Unix(1000, 0)}
	net := transport.NewChannelNetwork(nodes)
	mon := NewMonitor(net, Options{
		Manual: true, Period: period, SuspectAfter: 5 * period, Now: clk.Now,
	})
	defer mon.Close()
	deaths := make(chan death, nodes)
	mon.OnDeath(func(n int, cyc uint64) { deaths <- death{n, cyc} })

	msgs := make(chan transport.Message, 64)
	conns := make([]transport.Conn, nodes)
	for i := 0; i < nodes; i++ {
		conns[i] = mon.Conn(i)
		go drain(conns[i], msgs)
	}

	live := []int{0, 1, 2} // node 3 never beats
	for step := 0; step < 8; step++ {
		clk.Advance(period)
		for _, i := range live {
			mon.Beat(i)
		}
		// Flush markers: each live pair's marker arrives after that
		// pair's heartbeat (per-endpoint FIFO), so once all markers are
		// back every heartbeat has been consumed and refreshed liveness.
		want := 0
		for _, i := range live {
			for _, j := range live {
				if i != j {
					if err := conns[i].Send(transport.Message{From: i, To: j, Kind: proto.KindBarrierEnter}); err != nil {
						t.Fatal(err)
					}
					want++
				}
			}
		}
		for k := 0; k < want; k++ {
			<-msgs
		}
		mon.CheckNow()
	}

	select {
	case d := <-deaths:
		if d.node != 3 {
			t.Fatalf("declared node %d dead, want 3", d.node)
		}
	default:
		t.Fatal("silent node was never declared dead")
	}
	select {
	case d := <-deaths:
		t.Fatalf("second death declared: %+v", d)
	default:
	}
	if !mon.IsDead(3) {
		t.Error("IsDead(3) = false after declaration")
	}
	if got := mon.Dead(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Dead() = %v, want [3]", got)
	}
}

// TestMonitorCrashNotice checks that a received KindCrashNotice declares
// the named node with the carried cycle stamp, is consumed before the
// protocol layer, and is idempotent.
func TestMonitorCrashNotice(t *testing.T) {
	net := transport.NewChannelNetwork(3)
	mon := NewMonitor(net, Options{Manual: true})
	defer mon.Close()
	deaths := make(chan death, 3)
	mon.OnDeath(func(n int, cyc uint64) { deaths <- death{n, cyc} })

	msgs := make(chan transport.Message, 8)
	c0, c1 := mon.Conn(0), mon.Conn(1)
	go drain(c0, msgs)
	go drain(c1, msgs)

	notice := proto.CrashNotice{Node: 2, Cycles: 777}
	for i := 0; i < 2; i++ { // duplicate notice must not redeclare
		if err := c0.Send(transport.Message{
			From: 0, To: 1, Kind: proto.KindCrashNotice, Payload: notice.Encode(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case d := <-deaths:
		if d.node != 2 || d.cycles != 777 {
			t.Fatalf("death = %+v, want node 2 at cycle 777", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("crash notice never declared the node")
	}
	time.Sleep(10 * time.Millisecond)
	select {
	case d := <-deaths:
		t.Fatalf("duplicate notice redeclared: %+v", d)
	default:
	}
	select {
	case m := <-msgs:
		t.Fatalf("liveness traffic leaked to the protocol layer: %+v", m)
	default:
	}
}

// TestMonitorPlannedLeave checks the elastic-membership interplay: an
// inactive node (draining/departed, or never-joined capacity) is never
// declared dead no matter how long it stays silent — not by the voting
// pass and not by a stray crash notice — and reactivating it (a join)
// restarts observation from "just heard" rather than from construction
// time.
func TestMonitorPlannedLeave(t *testing.T) {
	const nodes = 3
	const period = 10 * time.Millisecond
	clk := &fakeClock{t: time.Unix(1000, 0)}
	net := transport.NewChannelNetwork(nodes)
	mon := NewMonitor(net, Options{
		Manual: true, Period: period, SuspectAfter: 3 * period, Now: clk.Now,
	})
	defer mon.Close()
	deaths := make(chan death, nodes)
	mon.OnDeath(func(n int, cyc uint64) { deaths <- death{n, cyc} })

	msgs := make(chan transport.Message, 64)
	conns := make([]transport.Conn, nodes)
	for i := 0; i < nodes; i++ {
		conns[i] = mon.Conn(i)
		go drain(conns[i], msgs)
	}

	// Node 2's leave commits: it goes silent, on purpose.
	mon.SetActive(2, false)

	// exchange keeps nodes 0 and 1 mutually fresh and flushes in-flight
	// traffic (per-endpoint FIFO: once both markers return, everything
	// sent before them has been consumed).
	exchange := func() {
		t.Helper()
		for _, pair := range [][2]int{{0, 1}, {1, 0}} {
			if err := conns[pair[0]].Send(transport.Message{
				From: pair[0], To: pair[1], Kind: proto.KindBarrierEnter,
			}); err != nil {
				t.Fatal(err)
			}
		}
		<-msgs
		<-msgs
	}

	for step := 0; step < 8; step++ {
		clk.Advance(period)
		exchange()
		mon.CheckNow()
	}
	select {
	case d := <-deaths:
		t.Fatalf("silence of a departed node was declared a crash: %+v", d)
	default:
	}

	// A straggling crash notice naming the departed node must not revive
	// the reclamation path either.
	notice := proto.CrashNotice{Node: 2, Cycles: 42}
	if err := conns[0].Send(transport.Message{
		From: 0, To: 1, Kind: proto.KindCrashNotice, Payload: notice.Encode(),
	}); err != nil {
		t.Fatal(err)
	}
	exchange() // flush: the notice precedes the markers in endpoint 1's FIFO
	if mon.IsDead(2) {
		t.Fatal("crash notice declared a departed node dead")
	}

	// Node 2 rejoins: observation restarts fresh, then real silence is
	// once again a crash.
	mon.SetActive(2, true)
	clk.Advance(period)
	exchange()
	mon.CheckNow()
	select {
	case d := <-deaths:
		t.Fatalf("just-rejoined node instantly declared: %+v", d)
	default:
	}
	for step := 0; step < 8; step++ {
		clk.Advance(period)
		exchange()
		mon.CheckNow()
	}
	select {
	case d := <-deaths:
		if d.node != 2 {
			t.Fatalf("declared node %d, want 2", d.node)
		}
	default:
		t.Fatal("rejoined-then-silent node was never declared dead")
	}
}

// TestMonitorSelfFence checks the single-endpoint rule: an observer that
// has lost every peer at once in a three-node system assumes its own links
// are severed and declares no one; losing just one peer still declares it.
func TestMonitorSelfFence(t *testing.T) {
	const period = 10 * time.Millisecond
	clk := &fakeClock{t: time.Unix(1000, 0)}
	net := transport.NewChannelNetwork(3)
	mon := NewMonitor(net, Options{
		Manual: true, Period: period, SuspectAfter: 3 * period, Now: clk.Now,
	})
	defer mon.Close()
	deaths := make(chan death, 3)
	mon.OnDeath(func(n int, cyc uint64) { deaths <- death{n, cyc} })

	msgs := make(chan transport.Message, 8)
	c0 := mon.Conn(0) // the only monitored endpoint (one process of a TCP deployment)
	go drain(c0, msgs)

	// Everyone silent past the timeout: fenced, declare no one.
	clk.Advance(10 * period)
	mon.CheckNow()
	select {
	case d := <-deaths:
		t.Fatalf("fenced observer declared %+v", d)
	default:
	}

	// Fresh evidence from node 1 only: node 2's silence is now meaningful.
	if err := net.Conn(1).Send(transport.Message{From: 1, To: 0, Kind: proto.KindBarrierEnter}); err != nil {
		t.Fatal(err)
	}
	<-msgs
	clk.Advance(period)
	mon.CheckNow()
	select {
	case d := <-deaths:
		if d.node != 2 {
			t.Fatalf("declared node %d, want 2", d.node)
		}
	default:
		t.Fatal("silent peer not declared once the observer had live evidence")
	}
}
