package health

import (
	"sync"
	"testing"
	"time"

	"midway/internal/proto"
	"midway/internal/transport"
)

// partHarness drives a manual-mode monitor over a FaultNetwork whose
// programmatic cuts really sever links: fence/heal notices crossing a cut
// are dropped, exactly as on a partitioned wire, so a fake partition
// cannot leak liveness evidence to the far side between Beat and CheckNow.
type partHarness struct {
	t     *testing.T
	clk   *fakeClock
	fnet  *transport.FaultNetwork
	mon   *Monitor
	conns []transport.Conn
	msgs  chan transport.Message

	mu      sync.Mutex
	deaths  []death
	fences  []int
	heals   []int
	reports [][]int
}

func newPartHarness(t *testing.T, nodes int, period time.Duration, policy PartitionPolicy) *partHarness {
	h := &partHarness{
		t:    t,
		clk:  &fakeClock{t: time.Unix(1000, 0)},
		msgs: make(chan transport.Message, 256),
	}
	h.fnet = transport.NewFaultNetwork(transport.NewChannelNetwork(nodes), transport.FaultConfig{})
	h.mon = NewMonitor(h.fnet, Options{
		Manual: true, Period: period, SuspectAfter: 3 * period,
		Now: h.clk.Now, Partition: policy,
	})
	t.Cleanup(func() { h.mon.Close() })
	h.mon.OnDeath(func(n int, cyc uint64) {
		h.mu.Lock()
		h.deaths = append(h.deaths, death{n, cyc})
		h.mu.Unlock()
	})
	h.mon.OnFence(func(n int) {
		h.mu.Lock()
		h.fences = append(h.fences, n)
		h.mu.Unlock()
	})
	h.mon.OnHeal(func(n int) {
		h.mu.Lock()
		h.heals = append(h.heals, n)
		h.mu.Unlock()
	})
	h.mon.OnPartition(func(unreachable []int) {
		h.mu.Lock()
		h.reports = append(h.reports, append([]int(nil), unreachable...))
		h.mu.Unlock()
	})
	h.conns = make([]transport.Conn, nodes)
	for i := 0; i < nodes; i++ {
		h.conns[i] = h.mon.Conn(i)
		go drain(h.conns[i], h.msgs)
	}
	return h
}

// cut severs every link between the minority set and the rest.
func (h *partHarness) cut(minority ...int) {
	in := make(map[int]bool, len(minority))
	for _, k := range minority {
		in[k] = true
	}
	for a := 0; a < len(h.conns); a++ {
		for b := a + 1; b < len(h.conns); b++ {
			if in[a] != in[b] {
				h.fnet.Partition(a, b)
			}
		}
	}
}

// heal restores every link between the minority set and the rest.
func (h *partHarness) heal(minority ...int) {
	in := make(map[int]bool, len(minority))
	for _, k := range minority {
		in[k] = true
	}
	for a := 0; a < len(h.conns); a++ {
		for b := a + 1; b < len(h.conns); b++ {
			if in[a] != in[b] {
				h.fnet.Heal(a, b)
			}
		}
	}
}

// step advances one period, beats every endpoint, and flushes delivery:
// each connected pair exchanges a marker after the heartbeats, so once
// every marker that can arrive has arrived, every heartbeat that can
// arrive has been consumed (per-endpoint FIFO).  cut lists the currently
// partitioned minority so the flush only waits on same-side pairs.
func (h *partHarness) step(cut ...int) {
	h.t.Helper()
	in := make(map[int]bool, len(cut))
	for _, k := range cut {
		in[k] = true
	}
	h.clk.Advance(h.mon.opts.Period)
	for i := range h.conns {
		if !h.mon.IsDead(i) {
			h.mon.Beat(i)
		}
	}
	want := 0
	for i := range h.conns {
		for j := range h.conns {
			if i == j || in[i] != in[j] || h.mon.IsDead(i) || h.mon.IsDead(j) {
				continue
			}
			if err := h.conns[i].Send(transport.Message{From: i, To: j, Kind: proto.KindBarrierEnter}); err != nil {
				h.t.Fatal(err)
			}
			want++
		}
	}
	for k := 0; k < want; k++ {
		<-h.msgs
	}
	h.mon.CheckNow()
}

// settle runs enough steps for silence across the cut to pass the
// suspicion timeout and the quorum pass to react.
func (h *partHarness) settle(cut ...int) {
	h.t.Helper()
	for i := 0; i < 6; i++ {
		h.step(cut...)
	}
}

func (h *partHarness) snapshot() (deaths []death, fences, heals []int, reports [][]int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]death(nil), h.deaths...), append([]int(nil), h.fences...),
		append([]int(nil), h.heals...), append([][]int(nil), h.reports...)
}

// TestMonitorTieBreakTwoNodes pins the 50/50 tie-break at its smallest
// scale: in a two-node system each side reaches exactly half the
// membership, and the side holding the lowest live id (node 0) keeps the
// quorum.  Node 1 self-fences and is declared dead by node 0; the old
// mutual-declaration split brain must not reappear.
func TestMonitorTieBreakTwoNodes(t *testing.T) {
	const period = 10 * time.Millisecond
	h := newPartHarness(t, 2, period, PartitionFence)
	h.step() // one clean exchange so both sides have evidence
	h.cut(1)
	h.settle(1)

	deaths, fences, _, _ := h.snapshot()
	if len(deaths) != 1 || deaths[0].node != 1 {
		t.Fatalf("deaths = %+v, want exactly node 1", deaths)
	}
	if h.mon.IsDead(0) {
		t.Fatal("tie-break winner (node 0) was declared dead")
	}
	// Node 1 fenced itself before (or as) node 0 declared it.
	found := false
	for _, f := range fences {
		if f == 1 {
			found = true
		}
		if f == 0 {
			t.Fatal("quorum side fenced itself")
		}
	}
	if !found {
		t.Errorf("fences = %v, want node 1 self-fence", fences)
	}
	if h.mon.Fenced(1) {
		t.Error("declared-dead node still reads as fenced (dead supersedes fenced)")
	}
}

// TestMonitorEvenSplitFenceAndHeal runs a 4-node 50/50 split under the
// fence policy: the side with node 0 keeps quorum but declares no one
// (two nodes silent at once is a partition, not a crash), the far side
// self-fences, and the heal lifts both fences with no deaths ever.
func TestMonitorEvenSplitFenceAndHeal(t *testing.T) {
	const period = 10 * time.Millisecond
	h := newPartHarness(t, 4, period, PartitionFence)
	h.step()
	h.cut(2, 3)
	h.settle(2, 3)

	deaths, fences, _, _ := h.snapshot()
	if len(deaths) != 0 {
		t.Fatalf("fence policy declared deaths: %+v", deaths)
	}
	got := map[int]bool{}
	for _, f := range fences {
		got[f] = true
	}
	if got[0] || got[1] {
		t.Fatalf("majority-side node fenced: %v", fences)
	}
	if !h.mon.Fenced(2) || !h.mon.Fenced(3) {
		t.Fatalf("minority not fenced: Fenced(2)=%v Fenced(3)=%v fences=%v",
			h.mon.Fenced(2), h.mon.Fenced(3), fences)
	}

	// Heal: reset accumulated silence (the stack above does this from its
	// heal hook) and let one fresh round restore every quorum.
	h.heal(2, 3)
	h.mon.ResetSilence()
	h.step()

	deaths, _, heals, _ := h.snapshot()
	if len(deaths) != 0 {
		t.Fatalf("heal declared deaths: %+v", deaths)
	}
	healed := map[int]bool{}
	for _, n := range heals {
		healed[n] = true
	}
	if !healed[2] || !healed[3] {
		t.Fatalf("heals = %v, want nodes 2 and 3", heals)
	}
	if h.mon.Fenced(2) || h.mon.Fenced(3) {
		t.Fatal("fence outlived the heal")
	}
}

// TestMonitorPartitionAbort checks the abort policy: a quorum observer
// seeing two nodes silent at once reports the pair through OnPartition
// exactly once, and declares no one.
func TestMonitorPartitionAbort(t *testing.T) {
	const period = 10 * time.Millisecond
	h := newPartHarness(t, 4, period, PartitionAbort)
	h.step()
	h.cut(2, 3)
	h.settle(2, 3)
	h.settle(2, 3) // keep checking: the report must not re-fire

	deaths, _, _, reports := h.snapshot()
	if len(deaths) != 0 {
		t.Fatalf("abort policy declared deaths: %+v", deaths)
	}
	if len(reports) != 1 {
		t.Fatalf("OnPartition fired %d times, want exactly once: %v", len(reports), reports)
	}
	if r := reports[0]; len(r) != 2 || r[0] != 2 || r[1] != 3 {
		t.Fatalf("unreachable set = %v, want [2 3]", r)
	}
}

// TestMonitorPartitionDegrade checks the degrade policy: the quorum side
// declares the whole unreachable side dead, as single-crash recovery
// would, and the minority's own endpoints (fenced, no quorum) declare
// no one.
func TestMonitorPartitionDegrade(t *testing.T) {
	const period = 10 * time.Millisecond
	h := newPartHarness(t, 4, period, PartitionDegrade)
	h.step()
	h.cut(2, 3)
	h.settle(2, 3)

	if got := h.mon.Dead(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Dead() = %v, want [2 3]", got)
	}
	if h.mon.IsDead(0) || h.mon.IsDead(1) {
		t.Fatal("majority side declared dead")
	}
}

// TestMonitorResetSilenceClearsAccumulatedSilence pins the heal-time
// re-arm: silence accumulated across an outage is discarded by
// ResetSilence, so the check immediately after a heal declares no one;
// only silence accumulated after the reset counts again.
func TestMonitorResetSilenceClearsAccumulatedSilence(t *testing.T) {
	const period = 10 * time.Millisecond
	h := newPartHarness(t, 3, period, PartitionFence)
	h.step()
	// An outage with no intervening checks: node 2 goes silent far past
	// the suspicion timeout while the checker is not running (the exact
	// state at the instant a heal notification arrives).
	h.clk.Advance(10 * period)
	h.mon.ResetSilence()
	h.mon.CheckNow() // instant check: stale silence must not declare
	if h.mon.IsDead(2) {
		t.Fatal("declaration fired from pre-heal silence after ResetSilence")
	}

	// Fresh silence still works: node 2 stops beating for real.
	for i := 0; i < 6; i++ {
		h.clk.Advance(period)
		h.mon.Beat(0)
		h.mon.Beat(1)
		for _, pair := range [][2]int{{0, 1}, {1, 0}} {
			if err := h.conns[pair[0]].Send(transport.Message{
				From: pair[0], To: pair[1], Kind: proto.KindBarrierEnter,
			}); err != nil {
				t.Fatal(err)
			}
		}
		<-h.msgs
		<-h.msgs
		h.mon.CheckNow()
	}
	if !h.mon.IsDead(2) {
		t.Fatal("genuinely silent node was never declared after the reset")
	}
}
