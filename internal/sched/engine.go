// Package sched provides the conservative lockstep engine: a parallel
// discrete-event simulation core for the DSM's in-process topologies.
//
// Entry consistency is the enabling property.  A node's simulated
// execution interacts with other nodes only through synchronization
// messages (see the internal/clock package comment), so between two
// protocol messages every node runs a message-free stretch whose effect
// is independent of host scheduling.  The engine exploits this by
// alternating two phases:
//
//   - Parallel phase: every runnable node executes its application
//     goroutine concurrently, up to the configured thread budget.  Sends
//     do not deliver; they enqueue into a stepped network with a
//     simulated delivery timestamp.  A node leaves the phase by blocking
//     on a protocol reply (Block), by finishing, or by parking in a
//     Turns round scheduler.
//
//   - Delivery phase: once every node has parked, the engine — on a
//     single goroutine — pops queued messages in simulated-time order
//     and dispatches each synchronously to its destination's protocol
//     handler.  Handler-generated sends enqueue into the same queue and
//     are delivered within the same phase, in timestamp order.  Replies
//     mark their destination ready; ready nodes resume together when the
//     queue drains, opening the next parallel phase.
//
// Delivery order is the total order (arrival cycles, send-time cycles,
// sender id, per-sender sequence number).  Each component is a pure
// function of the simulation's inputs: arrival and send stamps come from
// the simulated clocks, and the per-sender sequence follows the sender's
// program order because each node's sends are program-ordered within a
// phase and dispatch-ordered across phases.  The result is byte-identical
// simulated output regardless of GOMAXPROCS or the host scheduler.
//
// The quiescence rule is the engine's conservative lookahead.  A
// classical conservative engine would deliver any message whose timestamp
// is below every node's next possible send time, but entry consistency's
// lazy release stamping defeats per-clock lower bounds: a lock grant is
// stamped at the holder's *release* time, which may be far in the past of
// the holder's current clock.  Full quiescence — no node can produce
// another message until it receives one — is the lookahead bound that
// remains sound, and it is exact here because parked nodes are exactly
// the nodes awaiting a message.  Within a delivery phase the engine
// additionally tracks a clock.Frontier watermark asserting that pops are
// monotone in the delivery order.
package sched

import (
	"sync"

	"midway/internal/clock"
	"midway/internal/transport"
)

// nodeState tracks where a node's application goroutine is.
type nodeState uint8

const (
	// stateReady: parked, has work, resumes when the next parallel phase
	// opens.
	stateReady nodeState = iota
	// stateRunning: executing application code (or unwinding toward
	// done).
	stateRunning
	// stateBlocked: parked in Block, waiting for a Wake.
	stateBlocked
	// stateDone: the application function returned.
	stateDone
)

// Hooks connects the engine to the protocol layer that owns messages.
type Hooks struct {
	// NextMessage pops the globally minimum pending message in delivery
	// order, returning ok=false when the queue is empty.
	NextMessage func() (m transport.Message, arrival uint64, ok bool)
	// Dispatch synchronously runs the destination node's handler for one
	// message.  It may enqueue further sends and may Wake nodes.
	Dispatch func(m transport.Message, arrival uint64)
	// OnDeadlock reports that no node is runnable, no message is queued
	// and no recovery is pending while some nodes are still blocked.  The
	// callee is expected to fail the run and call Abort; the engine then
	// unwinds the blocked nodes instead of hanging the process.
	OnDeadlock func(blocked []int)
}

// recovery is a callback to run at the next quiescence point (crash
// recovery needs the whole system stopped at a deterministic instant).
type recovery struct {
	fn     func()
	origin int // node whose goroutine requested it, or -1
	done   chan struct{}
	ran    bool
}

// Engine is the conservative lockstep core for one system.  Create with
// New, then call Run exactly once.
type Engine struct {
	n     int
	hooks Hooks
	// sem is the thread budget: a counting semaphore capping how many
	// node goroutines execute application code at once, so concurrent
	// benchmark cells can split GOMAXPROCS instead of multiplying it.
	sem chan struct{}
	// tok carries one resume token per node (binary semaphore: a Wake
	// before the next Block makes that Block return immediately).
	tok []chan struct{}
	// quiet is signalled when the running count drops to zero.
	quiet chan struct{}

	mu         sync.Mutex
	state      []nodeState
	pending    []bool // wake token for a node that is not blocked yet
	running    int
	doneCount  int
	delivering bool // engine-exclusive section: wakes defer to next phase
	aborted    bool
	recov      []*recovery

	frontier clock.Frontier
}

// New creates an engine for n nodes.  threads caps concurrently executing
// node goroutines; zero or negative means no cap beyond GOMAXPROCS.
func New(n, threads int, hooks Hooks) *Engine {
	if threads <= 0 || threads > n {
		threads = n
	}
	e := &Engine{
		n:       n,
		hooks:   hooks,
		sem:     make(chan struct{}, threads),
		tok:     make([]chan struct{}, n),
		quiet:   make(chan struct{}, 1),
		state:   make([]nodeState, n),
		pending: make([]bool, n),
	}
	for i := range e.tok {
		e.tok[i] = make(chan struct{}, 1)
	}
	return e
}

// SetDormant marks node i as initially absent: Run spawns no goroutine
// for it and does not wait on it.  A dormant node enters the simulation
// only through Launch.  Must be called before Run.
func (e *Engine) SetDormant(i int) {
	e.mu.Lock()
	if e.state[i] != stateDone {
		e.state[i] = stateDone
		e.doneCount++
	}
	e.mu.Unlock()
}

// / Launch activates a dormant (or previously finished) node mid-run: its
// goroutine is spawned ready and resumes when the next parallel phase
// opens, so an elastic join lands at a quiescence boundary like every
// other membership event.  Call only from the engine goroutine (a
// Dispatch handler or a RunAtQuiescence callback); launching from a
// parallel phase would race the quiescence accounting.  Returns false if
// the node is currently active or the run has aborted.
func (e *Engine) Launch(i int, fn func(node int)) bool {
	e.mu.Lock()
	if e.aborted || e.state[i] != stateDone {
		e.mu.Unlock()
		return false
	}
	e.state[i] = stateReady
	e.doneCount--
	e.mu.Unlock()
	go e.wrapper(i, fn)
	return true
}

// Run executes fn once per node under lockstep control and returns when
// every node is done.  It runs the delivery phases on the calling
// goroutine.
func (e *Engine) Run(fn func(node int)) {
	e.mu.Lock()
	dormant := append([]nodeState(nil), e.state...)
	e.mu.Unlock()
	for i := 0; i < e.n; i++ {
		if dormant[i] == stateDone {
			continue // absent until Launch
		}
		go e.wrapper(i, fn)
	}
	for {
		e.openPhase()
		e.awaitQuiescence()

		e.mu.Lock()
		e.delivering = true
		recovs := e.recov
		e.recov = nil
		aborted := e.aborted
		e.mu.Unlock()

		if !aborted {
			for _, r := range recovs {
				r.fn()
				r.ran = true
				if r.origin >= 0 {
					e.Wake(r.origin)
				}
				close(r.done)
			}
			e.frontier.Reset()
			for {
				m, at, ok := e.hooks.NextMessage()
				if !ok {
					break
				}
				if !e.frontier.Advance(at, m.Time, m.From) {
					panic("sched: delivery order regressed below the frontier")
				}
				e.hooks.Dispatch(m, at)
				if e.isAborted() {
					break
				}
			}
		}

		e.mu.Lock()
		e.delivering = false
		switch {
		case e.doneCount == e.n:
			e.mu.Unlock()
			return
		case e.aborted || e.anyReadyLocked() || len(e.recov) > 0:
			e.mu.Unlock()
		default:
			// Every live node is blocked, nothing is in flight and no
			// recovery is pending: the simulation can never progress.
			// The goroutine engine would hang here; fail fast instead.
			var blocked []int
			for i, st := range e.state {
				if st == stateBlocked {
					blocked = append(blocked, i)
				}
			}
			e.mu.Unlock()
			e.hooks.OnDeadlock(blocked)
		}
	}
}

func (e *Engine) wrapper(i int, fn func(node int)) {
	<-e.tok[i]
	e.sem <- struct{}{}
	defer func() {
		<-e.sem
		e.nodeDone(i)
	}()
	fn(i)
}

func (e *Engine) nodeDone(i int) {
	e.mu.Lock()
	e.state[i] = stateDone
	e.doneCount++
	e.running--
	if e.running == 0 {
		e.signalQuiet()
	}
	e.mu.Unlock()
}

// openPhase releases every ready node into a new parallel phase.
func (e *Engine) openPhase() {
	e.mu.Lock()
	for i, st := range e.state {
		if st == stateReady {
			e.state[i] = stateRunning
			e.running++
			e.tok[i] <- struct{}{}
		}
	}
	e.mu.Unlock()
}

// awaitQuiescence returns once every released node has parked, finished
// or blocked.
func (e *Engine) awaitQuiescence() {
	for {
		e.mu.Lock()
		if e.running == 0 {
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()
		<-e.quiet
	}
}

func (e *Engine) signalQuiet() {
	select {
	case e.quiet <- struct{}{}:
	default:
	}
}

func (e *Engine) isAborted() bool {
	e.mu.Lock()
	a := e.aborted
	e.mu.Unlock()
	return a
}

func (e *Engine) anyReadyLocked() bool {
	for _, st := range e.state {
		if st == stateReady {
			return true
		}
	}
	return false
}

// Block parks the calling node's goroutine until a Wake targets it.  A
// Wake that arrived while the node was still running (a pending token)
// makes Block return immediately.  The thread-budget slot is released
// while parked.  Block returns false when the run has been aborted; the
// caller is expected to unwind.
func (e *Engine) Block(node int) bool {
	e.mu.Lock()
	if e.aborted {
		e.mu.Unlock()
		return false
	}
	if e.pending[node] {
		e.pending[node] = false
		e.mu.Unlock()
		return true
	}
	e.state[node] = stateBlocked
	e.running--
	if e.running == 0 {
		e.signalQuiet()
	}
	e.mu.Unlock()

	<-e.sem // release the thread-budget slot while parked
	<-e.tok[node]
	e.sem <- struct{}{}

	e.mu.Lock()
	ok := !e.aborted
	e.mu.Unlock()
	return ok
}

// Wake marks a node runnable.  During a delivery phase the node resumes
// when the next parallel phase opens; during a parallel phase a blocked
// node resumes immediately.  Waking a node that has not blocked yet
// leaves a pending token so its next Block returns at once.
func (e *Engine) Wake(node int) {
	e.mu.Lock()
	switch e.state[node] {
	case stateBlocked:
		if e.delivering {
			e.state[node] = stateReady
		} else {
			e.state[node] = stateRunning
			e.running++
			e.tok[node] <- struct{}{}
		}
	case stateRunning:
		e.pending[node] = true
	case stateReady, stateDone:
		// Ready nodes resume anyway; done nodes have nothing to wake.
	}
	e.mu.Unlock()
}

// RunAtQuiescence schedules fn to run on the engine goroutine at the next
// point where every node is parked — the deterministic instant crash
// recovery needs.  origin names the node whose application goroutine is
// making the call (it is parked until fn has run and the next parallel
// phase opens), or -1 for an external caller (which blocks until fn has
// run).  Returns false if the run aborted before fn could run.
func (e *Engine) RunAtQuiescence(origin int, fn func()) bool {
	r := &recovery{fn: fn, origin: origin, done: make(chan struct{})}
	e.mu.Lock()
	if e.aborted {
		e.mu.Unlock()
		return false
	}
	e.recov = append(e.recov, r)
	e.mu.Unlock()
	if origin >= 0 {
		// A stale pending token (a broadcast that raced this call) can
		// make Block return early; park again until fn has actually run.
		for e.Block(origin) {
			select {
			case <-r.done:
				return r.ran
			default:
			}
		}
	} else {
		<-r.done
	}
	return r.ran
}

// QueueAtQuiescence schedules fn like RunAtQuiescence but without
// parking or blocking the caller, so it is safe from a Dispatch handler
// (which runs on the engine goroutine and could never wait out its own
// quiescence) as well as from a node goroutine mid-phase.  The partition
// trigger uses it: whichever context first crosses the trigger cycle
// enqueues the policy action, and it runs at the next quiescence point —
// a deterministic instant.  Returns false if the run has aborted.
func (e *Engine) QueueAtQuiescence(fn func()) bool {
	r := &recovery{fn: fn, origin: -1, done: make(chan struct{})}
	e.mu.Lock()
	if e.aborted {
		e.mu.Unlock()
		return false
	}
	e.recov = append(e.recov, r)
	e.mu.Unlock()
	return true
}

// Abort releases every parked node so the run can unwind after a
// failure.  Subsequent Block calls return false immediately; pending
// recoveries are abandoned.
func (e *Engine) Abort() {
	e.mu.Lock()
	if e.aborted {
		e.mu.Unlock()
		return
	}
	e.aborted = true
	for i, st := range e.state {
		if st == stateBlocked || st == stateReady {
			e.state[i] = stateRunning
			e.running++
			e.tok[i] <- struct{}{}
		}
	}
	recovs := e.recov
	e.recov = nil
	e.mu.Unlock()
	for _, r := range recovs {
		close(r.done)
	}
}

// Frontier returns the delivery-order watermark of the most recent
// delivery phase, for diagnostics and tests.
func (e *Engine) Frontier() clock.Frontier { return e.frontier }
