package sched

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"midway/internal/transport"
)

// ring builds a toy protocol over a SteppedNetwork: every node sends one
// message to its right neighbor and blocks until its own message arrives,
// repeated rounds times.  Dispatch records the delivery order, so tests
// can assert it is a pure function of the inputs.
type ring struct {
	t      *testing.T
	net    *transport.SteppedNetwork
	eng    *Engine
	clock  []uint64 // per-node simulated cycle clock
	mu     sync.Mutex
	order  []string
	rounds int
}

func newRing(t *testing.T, n, threads, rounds int) *ring {
	r := &ring{t: t, net: transport.NewSteppedNetwork(n), clock: make([]uint64, n), rounds: rounds}
	r.net.SetArrival(func(m transport.Message) uint64 { return m.Time + 100 })
	r.eng = New(n, threads, Hooks{
		NextMessage: r.net.PopMin,
		Dispatch: func(m transport.Message, at uint64) {
			r.mu.Lock()
			r.order = append(r.order, fmt.Sprintf("%d->%d@%d", m.From, m.To, at))
			r.mu.Unlock()
			if r.clock[m.To] < at {
				r.clock[m.To] = at
			}
			r.eng.Wake(m.To)
		},
		OnDeadlock: func(blocked []int) {
			t.Errorf("unexpected deadlock, blocked %v", blocked)
			r.eng.Abort()
		},
	})
	return r
}

func (r *ring) node(i int) {
	n := r.net.Nodes()
	conn := r.net.Conn(i)
	for round := 0; round < r.rounds; round++ {
		r.clock[i] += uint64(10 * (i + 1)) // unequal compute stretches
		if err := conn.Send(transport.Message{From: i, To: (i + 1) % n, Time: r.clock[i]}); err != nil {
			r.t.Errorf("node %d: %v", i, err)
			return
		}
		if !r.eng.Block(i) {
			return
		}
	}
}

func runRing(t *testing.T, n, threads, rounds int) []string {
	r := newRing(t, n, threads, rounds)
	r.eng.Run(r.node)
	return r.order
}

func TestEngineDeliveryOrderInvariant(t *testing.T) {
	// The delivery order must be identical whatever the thread budget:
	// it is derived from simulated stamps, not host scheduling.
	ref := runRing(t, 8, 1, 5)
	if len(ref) != 8*5 {
		t.Fatalf("got %d deliveries, want %d", len(ref), 8*5)
	}
	for _, threads := range []int{2, 4, 8} {
		got := runRing(t, 8, threads, 5)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("threads=%d delivery order diverged:\n got %v\nwant %v", threads, got, ref)
		}
	}
}

func TestEngineThreadBudget(t *testing.T) {
	// With threads=2, at most two node goroutines may execute
	// application code at once, even with 8 runnable nodes.  The budget
	// slot is held exactly from a Block return to the next Block call, so
	// the counter covers only that stretch.
	var cur, peak atomic.Int64
	n, rounds := 8, 4
	r := newRing(t, n, 2, rounds)
	r.eng.Run(func(i int) {
		conn := r.net.Conn(i)
		for round := 0; round < rounds; round++ {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			r.clock[i] += uint64(10 * (i + 1))
			err := conn.Send(transport.Message{From: i, To: (i + 1) % n, Time: r.clock[i]})
			cur.Add(-1)
			if err != nil {
				t.Errorf("node %d: %v", i, err)
				return
			}
			if !r.eng.Block(i) {
				return
			}
		}
	})
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeds thread budget 2", p)
	}
}

func TestEnginePendingWake(t *testing.T) {
	// A Wake targeting a node that has not blocked yet must leave a token
	// that satisfies the node's next Block — no lost wakeups.
	eng := New(1, 0, Hooks{
		NextMessage: func() (transport.Message, uint64, bool) { return transport.Message{}, 0, false },
		Dispatch:    func(transport.Message, uint64) {},
		OnDeadlock:  func(blocked []int) { t.Errorf("deadlock, blocked %v", blocked) },
	})
	eng.Run(func(i int) {
		eng.Wake(i) // self-wake while running: becomes a pending token
		if !eng.Block(i) {
			t.Error("Block returned false without an abort")
		}
	})
}

func TestEngineDeadlockDetection(t *testing.T) {
	// Every node blocks with nothing in flight: OnDeadlock must fire with
	// the full blocked set, and Abort must unwind the run.
	var got []int
	var eng *Engine
	eng = New(3, 0, Hooks{
		NextMessage: func() (transport.Message, uint64, bool) { return transport.Message{}, 0, false },
		Dispatch:    func(transport.Message, uint64) {},
		OnDeadlock: func(blocked []int) {
			got = append([]int(nil), blocked...)
			eng.Abort()
		},
	})
	eng.Run(func(i int) {
		if eng.Block(i) {
			t.Errorf("node %d: Block returned true after deadlock abort", i)
		}
	})
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("blocked set %v, want [0 1 2]", got)
	}
}

func TestEngineRunAtQuiescence(t *testing.T) {
	// A node-originated recovery callback runs on the engine goroutine at
	// full quiescence, and the origin resumes afterwards.
	n := 4
	net := transport.NewSteppedNetwork(n)
	net.SetArrival(func(m transport.Message) uint64 { return m.Time + 1 })
	var eng *Engine
	ran := false
	eng = New(n, 0, Hooks{
		NextMessage: net.PopMin,
		Dispatch:    func(m transport.Message, at uint64) { eng.Wake(m.To) },
		OnDeadlock:  func(blocked []int) { t.Errorf("deadlock, blocked %v", blocked); eng.Abort() },
	})
	eng.Run(func(i int) {
		if i != 0 {
			// Peers exchange one self-message so quiescence is reached
			// with real traffic in the queue.
			conn := net.Conn(i)
			if err := conn.Send(transport.Message{From: i, To: i, Time: uint64(i)}); err != nil {
				t.Errorf("node %d: %v", i, err)
			}
			eng.Block(i)
			return
		}
		if !eng.RunAtQuiescence(0, func() { ran = true }) {
			t.Error("RunAtQuiescence returned false")
		}
		if !ran {
			t.Error("origin resumed before the recovery callback ran")
		}
	})
	if !ran {
		t.Error("recovery callback never ran")
	}
}

func TestEngineDormantLaunch(t *testing.T) {
	// A dormant node takes no part in the run until Launch activates it
	// from a quiescence point; afterwards it participates like any other
	// node and the run terminates only when it too is done.
	n := 3
	net := transport.NewSteppedNetwork(n)
	net.SetArrival(func(m transport.Message) uint64 { return m.Time + 1 })
	var eng *Engine
	var joinedRounds atomic.Int64
	eng = New(n, 0, Hooks{
		NextMessage: net.PopMin,
		Dispatch:    func(m transport.Message, at uint64) { eng.Wake(m.To) },
		OnDeadlock:  func(blocked []int) { t.Errorf("deadlock, blocked %v", blocked); eng.Abort() },
	})
	eng.SetDormant(2)
	joiner := func(i int) {
		conn := net.Conn(i)
		for r := 0; r < 3; r++ {
			if err := conn.Send(transport.Message{From: i, To: i, Time: uint64(100 + r)}); err != nil {
				t.Errorf("joiner: %v", err)
				return
			}
			if !eng.Block(i) {
				return
			}
			joinedRounds.Add(1)
		}
	}
	eng.Run(func(i int) {
		conn := net.Conn(i)
		if err := conn.Send(transport.Message{From: i, To: i, Time: uint64(i)}); err != nil {
			t.Errorf("node %d: %v", i, err)
			return
		}
		if !eng.Block(i) {
			return
		}
		if i == 0 {
			if !eng.RunAtQuiescence(0, func() {
				if !eng.Launch(2, joiner) {
					t.Error("Launch of a dormant node failed")
				}
				if eng.Launch(2, joiner) {
					t.Error("double Launch of the same node succeeded")
				}
			}) {
				t.Error("RunAtQuiescence returned false")
			}
		}
	})
	if got := joinedRounds.Load(); got != 3 {
		t.Errorf("launched node completed %d rounds, want 3", got)
	}
}

func TestEngineAbortUnblocks(t *testing.T) {
	// Abort during a run makes every parked Block return false.
	n := 4
	var eng *Engine
	var falses atomic.Int64
	eng = New(n, 0, Hooks{
		NextMessage: func() (transport.Message, uint64, bool) { return transport.Message{}, 0, false },
		Dispatch:    func(transport.Message, uint64) {},
		OnDeadlock:  func([]int) { eng.Abort() },
	})
	eng.Run(func(i int) {
		if !eng.Block(i) {
			falses.Add(1)
		}
	})
	if falses.Load() != int64(n) {
		t.Errorf("%d nodes unwound, want %d", falses.Load(), n)
	}
}

// turnsTrace runs a Turns schedule with the given parking mode and
// records the serialized turn order across rounds.
func turnsTrace(t *testing.T, procs, rounds int, lockstep bool) []int {
	var trace []int
	var traceMu sync.Mutex
	body := func(tr *Turns) func(w int) {
		left := make([]int, procs)
		for i := range left {
			left[i] = rounds
		}
		return func(w int) {
			for tr.AwaitTurn(w) {
				traceMu.Lock()
				trace = append(trace, w)
				left[w]--
				traceMu.Unlock()
				tr.EndTurn(w)
				tr.FinishRound(w, func() bool {
					for _, l := range left {
						if l > 0 {
							return false
						}
					}
					return true
				})
			}
		}
	}
	if lockstep {
		var eng *Engine
		eng = New(procs, 0, Hooks{
			NextMessage: func() (transport.Message, uint64, bool) { return transport.Message{}, 0, false },
			Dispatch:    func(transport.Message, uint64) {},
			OnDeadlock:  func(blocked []int) { t.Errorf("deadlock, blocked %v", blocked); eng.Abort() },
		})
		tr := NewTurns(eng, procs, 42)
		eng.Run(body(tr))
	} else {
		tr := NewTurns(nil, procs, 42)
		var wg sync.WaitGroup
		run := body(tr)
		for w := 0; w < procs; w++ {
			wg.Add(1)
			go func(w int) { defer wg.Done(); run(w) }(w)
		}
		wg.Wait()
	}
	return trace
}

func TestTurnsSameScheduleBothEngines(t *testing.T) {
	// The Turns round schedule is a pure function of (seed, procs, the
	// workers' reports): cond-variable parking and engine parking must
	// produce the identical serialized turn order.
	cond := turnsTrace(t, 6, 4, false)
	lock := turnsTrace(t, 6, 4, true)
	if len(cond) != 6*4 { // procs turns per round
		t.Fatalf("got %d turns, want %d", len(cond), 6*4)
	}
	if !reflect.DeepEqual(cond, lock) {
		t.Errorf("turn order diverged:\ncond %v\nlock %v", cond, lock)
	}
	if again := turnsTrace(t, 6, 4, true); !reflect.DeepEqual(lock, again) {
		t.Errorf("lockstep turn order not reproducible:\n 1st %v\n 2nd %v", lock, again)
	}
}

// BenchmarkEnginePhase measures one full parallel-phase round trip per
// node: n nodes each send one self-delivering message and block; the
// delivery phase wakes them.  This is the engine's per-synchronization
// overhead floor.
func benchmarkEnginePhase(b *testing.B, n int) {
	net := transport.NewSteppedNetwork(n)
	net.SetArrival(func(m transport.Message) uint64 { return m.Time })
	var eng *Engine
	eng = New(n, 0, Hooks{
		NextMessage: net.PopMin,
		Dispatch:    func(m transport.Message, at uint64) { eng.Wake(m.To) },
		OnDeadlock:  func([]int) { eng.Abort() },
	})
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run(func(i int) {
		conn := net.Conn(i)
		for r := 0; r < b.N; r++ {
			if err := conn.Send(transport.Message{From: i, To: i, Time: uint64(r)}); err != nil {
				b.Errorf("node %d: %v", i, err)
				return
			}
			if !eng.Block(i) {
				return
			}
		}
	})
}

func BenchmarkEnginePhase8(b *testing.B)  { benchmarkEnginePhase(b, 8) }
func BenchmarkEnginePhase64(b *testing.B) { benchmarkEnginePhase(b, 64) }

// BenchmarkSteppedQueue measures the delivery queue alone: push and pop
// 64 stamped messages per iteration.
func BenchmarkSteppedQueue(b *testing.B) {
	net := transport.NewSteppedNetwork(64)
	net.SetArrival(func(m transport.Message) uint64 { return m.Time + 100 })
	conns := make([]transport.Conn, 64)
	for i := range conns {
		conns[i] = net.Conn(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for r := 0; r < b.N; r++ {
		for i, c := range conns {
			if err := c.Send(transport.Message{From: i, To: (i + 1) % 64, Time: uint64((r + i) % 7)}); err != nil {
				b.Fatal(err)
			}
		}
		for {
			if _, _, ok := net.PopMin(); !ok {
				break
			}
		}
	}
}
