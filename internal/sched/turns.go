package sched

import "sync"

// rand is a splitmix64 generator, bit-identical to internal/apps.Rand so
// the Turns scheduler draws the same permutation stream the quicksort
// app's bespoke scheduler drew (the apps package cannot be imported here
// without a cycle through the root package).
type rand struct {
	state uint64
}

func newRand(seed int64) *rand {
	return &rand{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x123456789ABCDEF}
}

func (r *rand) uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rand) intn(n int) int {
	if n <= 0 {
		panic("sched: intn on non-positive bound")
	}
	return int(r.uint64() % uint64(n))
}

// Turns is a deterministic round scheduler for task-queue applications:
// each round serializes one synchronization turn per worker in a seeded
// permutation order, then opens a concurrent work phase; the last worker
// to finish the phase either declares the whole computation done or draws
// the next round's permutation.  The schedule is a pure function of
// (seed, worker count, the workers' reports), independent of host timing.
//
// Turns parks workers at the host level — parking never advances a
// simulated clock.  Under the goroutine engine it parks on a condition
// variable; under the lockstep engine it parks through Engine.Block so
// waiting workers count toward the engine's quiescence (a condition
// variable would deadlock the delivery phase, which starts only when
// every node has parked through the engine).
type Turns struct {
	mu   sync.Mutex
	cond *sync.Cond // goroutine-engine parking; nil under lockstep
	eng  *Engine    // lockstep parking; nil under the goroutine engine
	rng  *rand

	procs   int
	phase   int // 0 = serialized sync turns, 1 = concurrent work
	order   []int
	pos     int
	sorted  int
	done    bool
	waiting []bool // lockstep only: workers parked in Engine.Block
}

// NewTurns creates a round scheduler for procs workers.  eng selects
// lockstep parking when non-nil.  The seed feeds the permutation stream
// directly; callers keep whatever seed derivation they used before.
func NewTurns(eng *Engine, procs int, seed int64) *Turns {
	t := &Turns{
		eng:     eng,
		rng:     newRand(seed),
		procs:   procs,
		waiting: make([]bool, procs),
	}
	if eng == nil {
		t.cond = sync.NewCond(&t.mu)
	}
	t.order = t.perm()
	return t
}

// perm draws a fresh seeded permutation of worker ids — the deterministic
// tie-break that replaces host-timing-dependent scheduling.
func (t *Turns) perm() []int {
	p := make([]int, t.procs)
	for i := range p {
		p[i] = i
	}
	for i := t.procs - 1; i > 0; i-- {
		j := t.rng.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// waitFor parks worker w until pred holds.  Called with t.mu held;
// returns with t.mu held and pred true.
func (t *Turns) waitFor(w int, pred func() bool) {
	if t.eng == nil {
		for !pred() {
			t.cond.Wait()
		}
		return
	}
	for !pred() {
		t.waiting[w] = true
		t.mu.Unlock()
		if !t.eng.Block(w) {
			t.mu.Lock()
			t.waiting[w] = false
			t.mu.Unlock()
			panic("sched: turns scheduler unwinding: run aborted")
		}
		t.mu.Lock()
		t.waiting[w] = false
	}
}

// broadcast wakes every parked worker to recheck its predicate.  Called
// with t.mu held.
func (t *Turns) broadcast() {
	if t.eng == nil {
		t.cond.Broadcast()
		return
	}
	for i, w := range t.waiting {
		if w {
			t.eng.Wake(i)
		}
	}
}

// AwaitTurn blocks until worker w's serialized sync turn starts, or
// returns false when the computation is complete.
func (t *Turns) AwaitTurn(w int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.waitFor(w, func() bool {
		return t.done || (t.phase == 0 && t.order[t.pos] == w)
	})
	return !t.done
}

// EndTurn passes the turn on; the last turn of a round opens the
// concurrent work phase.  The caller then blocks until every worker's
// turn has run, so no work overlaps a sync turn.  w is the calling
// worker (the current turn-holder).
func (t *Turns) EndTurn(w int) {
	t.mu.Lock()
	t.pos++
	if t.pos == t.procs {
		t.phase = 1
		t.sorted = 0
	}
	t.broadcast()
	t.waitFor(w, func() bool { return t.phase == 1 })
	t.mu.Unlock()
}

// FinishRound reports worker w's concurrent phase done.  The last
// reporter evaluates idle — with the scheduler lock held, after every
// worker's report — and either declares completion (idle true) or draws
// the next round's permutation.
func (t *Turns) FinishRound(w int, idle func() bool) {
	t.mu.Lock()
	t.sorted++
	if t.sorted == t.procs {
		t.done = idle()
		t.phase = 0
		t.pos = 0
		t.order = t.perm()
	}
	t.broadcast()
	t.mu.Unlock()
}
