package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// synthetic returns a small event multiset exercising every sink path:
// remote and local acquires, a contended transfer, a barrier epoch,
// detection events and a transport retransmission.
func synthetic() []Event {
	return []Event{
		{Cycles: 100, Node: 0, Kind: EvAcquire, Obj: 1, Peer: 1, Mode: ModeExclusive, A: 3, B: 2, Name: "lk"},
		{Cycles: 400, Node: 0, Kind: EvGrant, Obj: 1, Peer: -1, A: 5, B: 1, Bytes: 64, Name: "lk"},
		{Cycles: 500, Node: 0, Kind: EvRelease, Obj: 1, Peer: -1, Name: "lk"},
		{Cycles: 150, Node: 1, Kind: EvAcquire, Obj: 1, Peer: -1, Mode: ModeShared, Name: "lk"},
		{Cycles: 200, Node: 1, Kind: EvContend, Obj: 1, Peer: 0, Name: "lk"},
		{Cycles: 350, Node: 1, Kind: EvTransfer, Obj: 1, Peer: 0, Mode: ModeExclusive, A: 5, Full: true, Bytes: 64, Name: "lk"},
		{Cycles: 600, Node: 0, Kind: EvBarrierEnter, Obj: 2, Peer: -1, A: 1, Bytes: 32, Name: "bar"},
		{Cycles: 700, Node: 1, Kind: EvBarrierEnter, Obj: 2, Peer: -1, A: 1, Bytes: 16, Name: "bar"},
		{Cycles: 900, Node: 0, Kind: EvBarrierResume, Obj: 2, Peer: -1, A: 1, Bytes: 48, Name: "bar"},
		{Cycles: 900, Node: 1, Kind: EvBarrierResume, Obj: 2, Peer: -1, A: 1, Bytes: 48, Name: "bar"},
		{Cycles: 620, Node: 0, Kind: EvScan, Obj: -1, Peer: -1, Bytes: 1024, A: 96, Name: "region"},
		{Cycles: 640, Node: 1, Kind: EvDiff, Obj: -1, Peer: -1, A: 7, B: 3, Bytes: 40, Name: "region"},
		{Cycles: 660, Node: 1, Kind: EvFault, Obj: -1, Peer: -1, A: 2, Bytes: 8192, Name: "region"},
		{Cycles: 800, Node: 1, Kind: EvApply, Obj: -1, Peer: -1, Bytes: 48, Name: "region"},
		{Cycles: 820, Node: 0, Kind: EvRetransmit, Obj: -1, Peer: 1, A: 9, B: 2},
		{Cycles: 840, Node: 0, Kind: EvNetFault, Obj: -1, Peer: 1, Name: "drop"},
	}
}

func TestNewNilWhenDisabled(t *testing.T) {
	if tr := New(Config{}); tr != nil {
		t.Fatal("New with no sinks should return nil")
	}
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if tr.ObjectProfiles() != nil || tr.RegionProfiles() != nil {
		t.Error("nil tracer returned profiles")
	}
}

// TestJSONLRoundTrip: write → read recovers the exact events.
func TestJSONLRoundTrip(t *testing.T) {
	events := synthetic()
	var buf bytes.Buffer
	tr := New(Config{JSONL: &buf})
	for _, e := range events {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(events))
	}
	// Close sorts; compare as a sorted multiset.
	want := append([]Event(nil), events...)
	sortEvents(want)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func sortEvents(ev []Event) {
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && less(ev[j], ev[j-1]); j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

// TestJSONLDeterministicOrder: the same event multiset emitted in two
// different host interleavings yields byte-identical JSONL output.
func TestJSONLDeterministicOrder(t *testing.T) {
	events := synthetic()
	render := func(perm []Event) string {
		var buf bytes.Buffer
		tr := New(Config{JSONL: &buf})
		for _, e := range perm {
			tr.Emit(e)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	forward := render(events)
	reversed := make([]Event, len(events))
	for i, e := range events {
		reversed[len(events)-1-i] = e
	}
	if backward := render(reversed); forward != backward {
		t.Errorf("JSONL output depends on emission order:\n%s\nvs\n%s", forward, backward)
	}
}

// TestJSONLMalformed: the reader reports line numbers and fails rather
// than skipping.
func TestJSONLMalformed(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"ev\":\"acquire\",\"cyc\":1,\"node\":0}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 error, got %v", err)
	}
	_, err = ReadJSONL(strings.NewReader("{\"ev\":\"warp\",\"cyc\":1,\"node\":0}\n"))
	if err == nil || !strings.Contains(err.Error(), "unknown event kind") {
		t.Errorf("want unknown-kind error, got %v", err)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("kind %d (%s) does not round-trip", k, k)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Error("bogus kind resolved")
	}
}

// TestChromeExport: the export is valid JSON with balanced async spans
// and per-node metadata.
func TestChromeExport(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{Chrome: &buf})
	for _, e := range synthetic() {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int32   `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	open, meta, instants := 0, 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "b":
			open++
		case "e":
			open--
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unknown phase %q", e.Ph)
		}
	}
	if open != 0 {
		t.Errorf("%d unbalanced async spans", open)
	}
	if meta != 2 {
		t.Errorf("%d process metadata records, want one per node", meta)
	}
	if instants == 0 {
		t.Error("no instant events for detection/transport kinds")
	}
}

// TestTextFormat spot-checks the legacy line format.
func TestTextFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{Text: &buf})
	tr.Emit(Event{Cycles: 25_000, Node: 3, Kind: EvAcquire, Obj: 1, Peer: 2,
		Mode: ModeExclusive, A: 7, B: 4, Name: "lk"})
	tr.Emit(Event{Cycles: 50_000, Node: 3, Kind: EvRelease, Obj: 1, Peer: -1, Name: "lk"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"[     1.000ms n3] acquire lk exclusive -> manager n2 (lastTime=7 lastInc=4)",
		"[     2.000ms n3] release lk",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestProfiles checks the per-object and per-region aggregation and the
// table renderer.
func TestProfiles(t *testing.T) {
	tr := New(Config{Profile: true})
	for _, e := range synthetic() {
		tr.Emit(e)
	}
	objs := tr.ObjectProfiles()
	if len(objs) != 2 {
		t.Fatalf("%d object profiles, want 2", len(objs))
	}
	lk := objs[0] // hottest first: the contended lock ranks above the barrier
	if lk.Name != "lk" || lk.Acquires != 2 || lk.LocalAcquires != 1 ||
		lk.Contended != 1 || lk.Transfers != 1 || lk.BytesSent != 64 {
		t.Errorf("lock profile %+v", lk)
	}
	bar := objs[1]
	if bar.Name != "bar" || bar.BarrierEpochs != 2 || bar.BytesSent != 48 {
		t.Errorf("barrier profile %+v", bar)
	}
	regs := tr.RegionProfiles()
	if len(regs) != 1 {
		t.Fatalf("%d region profiles, want 1", len(regs))
	}
	r := regs[0]
	if r.Scans != 1 || r.BytesScanned != 1024 || r.DirtyBytes != 96 ||
		r.Diffs != 1 || r.DiffBytes != 40 || r.Faults != 2 {
		t.Errorf("region profile %+v", r)
	}
	if got := r.PercentDirty(); got < 13.2 || got > 13.4 { // (96+40)/1024
		t.Errorf("PercentDirty = %g", got)
	}
	var sb strings.Builder
	tr.WriteProfiles(&sb)
	for _, want := range []string{"hot objects:", "hot regions:", "lk", "region"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("profile tables missing %q", want)
		}
	}
}

// TestAnalyzeEvents checks the analyzer's wait attribution, contention
// ranking and barrier skew on the synthesized trace.
func TestAnalyzeEvents(t *testing.T) {
	events := append([]Event(nil), synthetic()...)
	sortEvents(events)
	a := AnalyzeEvents(events)
	if a.Events != len(events) {
		t.Errorf("Events = %d", a.Events)
	}
	if len(a.Locks) == 0 || a.Locks[0].Name != "lk" {
		t.Fatalf("lock ranking %+v", a.Locks)
	}
	lk := a.Locks[0]
	if lk.WaitCycles != 300 { // acquire at 100, grant at 400
		t.Errorf("WaitCycles = %d, want 300", lk.WaitCycles)
	}
	if lk.Contended != 1 || lk.Transfers != 1 {
		t.Errorf("lock report %+v", lk)
	}
	if len(a.Barriers) != 1 {
		t.Fatalf("%d barriers", len(a.Barriers))
	}
	b := a.Barriers[0]
	if len(b.Epochs) != 1 || b.Epochs[0].Skew != 100 || b.MaxSkew != 100 {
		t.Errorf("barrier skew %+v", b)
	}
	cn, ok := a.CriticalNode()
	if !ok || cn.Span != 900 {
		t.Errorf("critical node %+v ok=%v", cn, ok)
	}
	// Node 0 waited 300 on the lock and 300 in the barrier (600→900).
	for _, n := range a.Nodes {
		if n.Node == 0 && (n.LockWait != 300 || n.BarrierWait != 300) {
			t.Errorf("node 0 waits %+v", n)
		}
	}
	var sb strings.Builder
	a.WriteReport(&sb)
	for _, want := range []string{"lock contention", "critical path", "barrier bar"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}
