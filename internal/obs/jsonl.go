package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// The JSONL sink writes one JSON object per event with a fixed field
// order and deterministic omission rules (a field is present iff it is
// meaningful for the event), so a deterministic event multiset yields
// byte-identical output.  Lines are hand-rolled: the hot fields are
// integers and pre-escaped names, so no reflection is needed on the write
// side; the read side uses encoding/json for robustness.

// Record is the parsed form of one JSONL line, used by the analyzer.
type Record struct {
	Ev    string `json:"ev"`
	Cyc   uint64 `json:"cyc"`
	Node  int32  `json:"node"`
	Obj   *int32 `json:"obj,omitempty"`
	Name  string `json:"name,omitempty"`
	Peer  *int32 `json:"peer,omitempty"`
	Mode  string `json:"mode,omitempty"`
	Full  bool   `json:"full,omitempty"`
	Bytes uint64 `json:"bytes,omitempty"`
	A     int64  `json:"a,omitempty"`
	B     int64  `json:"b,omitempty"`
	Addr  uint64 `json:"addr,omitempty"`
}

// Event converts a parsed record back to an Event.  Unknown kinds fail.
func (r Record) Event() (Event, error) {
	k, ok := KindFromString(r.Ev)
	if !ok {
		return Event{}, fmt.Errorf("obs: unknown event kind %q", r.Ev)
	}
	e := Event{
		Cycles: r.Cyc, Node: r.Node, Kind: k, Obj: -1, Peer: -1,
		Full: r.Full, Bytes: r.Bytes, A: r.A, B: r.B, Name: r.Name,
		Addr: r.Addr,
	}
	if r.Obj != nil {
		e.Obj = *r.Obj
	}
	if r.Peer != nil {
		e.Peer = *r.Peer
	}
	switch r.Mode {
	case "exclusive":
		e.Mode = ModeExclusive
	case "shared":
		e.Mode = ModeShared
	}
	return e, nil
}

// writeJSONL renders the (already sorted) events.
func writeJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, e := range events {
		line = appendJSONLine(line[:0], e)
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendJSONLine renders one event as a JSON object with fixed field
// order.
func appendJSONLine(b []byte, e Event) []byte {
	b = append(b, `{"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","cyc":`...)
	b = strconv.AppendUint(b, e.Cycles, 10)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	if e.Obj >= 0 {
		b = append(b, `,"obj":`...)
		b = strconv.AppendInt(b, int64(e.Obj), 10)
	}
	if e.Name != "" {
		b = append(b, `,"name":`...)
		b = strconv.AppendQuote(b, e.Name)
	}
	if e.Peer >= 0 {
		b = append(b, `,"peer":`...)
		b = strconv.AppendInt(b, int64(e.Peer), 10)
	}
	if e.Mode != ModeNone {
		b = append(b, `,"mode":"`...)
		b = append(b, e.Mode.String()...)
		b = append(b, '"')
	}
	if e.Full {
		b = append(b, `,"full":true`...)
	}
	if e.Bytes != 0 {
		b = append(b, `,"bytes":`...)
		b = strconv.AppendUint(b, e.Bytes, 10)
	}
	if e.A != 0 {
		b = append(b, `,"a":`...)
		b = strconv.AppendInt(b, e.A, 10)
	}
	if e.B != 0 {
		b = append(b, `,"b":`...)
		b = strconv.AppendInt(b, e.B, 10)
	}
	if e.Addr != 0 {
		b = append(b, `,"addr":`...)
		b = strconv.AppendUint(b, e.Addr, 10)
	}
	b = append(b, "}\n"...)
	return b
}

// ReadJSONL parses a JSONL trace, failing on the first malformed line.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		e, err := rec.Event()
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: line %d: %w", lineNo+1, err)
	}
	return events, nil
}
