package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The Chrome sink exports the event stream as a Chrome trace_event JSON
// document (the "JSON Object Format" with a traceEvents array), so a run
// opens directly in chrome://tracing or Perfetto.  Each node is a process
// lane on the simulated-time axis (ts is microseconds = cycles / 25).
// Lock wait (acquire→grant), lock hold (acquire/grant→release) and
// barrier wait (enter→resume) become async spans; everything else is an
// instant event.

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Pid   int32          `json:"pid"`
	Tid   int32          `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeDoc is the document wrapper.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usOf converts simulated cycles to trace microseconds.
func usOf(cycles uint64) float64 { return float64(cycles) / 25.0 }

// spanKey identifies an open async span.
type spanKey struct {
	node int32
	obj  int32
	what string // "wait", "hold", "barrier"
}

// writeChrome renders the (already sorted) events.
func writeChrome(w io.Writer, events []Event) error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}

	// Per-node process metadata, in node order.
	nodes := map[int32]bool{}
	for _, e := range events {
		nodes[e.Node] = true
	}
	ids := make([]int32, 0, len(nodes))
	for n := range nodes {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, n := range ids {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: n,
			Args: map[string]any{"name": fmt.Sprintf("node %d", n)},
		})
	}

	open := map[spanKey]bool{}
	begin := func(e Event, what, name string, args map[string]any) {
		k := spanKey{e.Node, e.Obj, what}
		if open[k] {
			return // double begin: keep the first
		}
		open[k] = true
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Cat: what, Ph: "b", Ts: usOf(e.Cycles),
			Pid: e.Node, ID: fmt.Sprintf("n%d.o%d.%s", e.Node, e.Obj, what),
			Args: args,
		})
	}
	end := func(e Event, what, name string) {
		k := spanKey{e.Node, e.Obj, what}
		if !open[k] {
			return // end without begin (e.g. release of an initially owned lock)
		}
		delete(open, k)
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Cat: what, Ph: "e", Ts: usOf(e.Cycles),
			Pid: e.Node, ID: fmt.Sprintf("n%d.o%d.%s", e.Node, e.Obj, what),
		})
	}
	instant := func(e Event, name string, args map[string]any) {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Ph: "i", Ts: usOf(e.Cycles), Pid: e.Node, Scope: "t",
			Args: args,
		})
	}

	for _, e := range events {
		switch e.Kind {
		case EvAcquire:
			if e.Peer >= 0 {
				begin(e, "wait", "wait:"+e.Name, map[string]any{"mode": e.Mode.String()})
			} else {
				begin(e, "hold", "hold:"+e.Name, map[string]any{"mode": e.Mode.String()})
			}
		case EvGrant:
			end(e, "wait", "wait:"+e.Name)
			begin(e, "hold", "hold:"+e.Name, map[string]any{
				"incarnation": e.A, "full": e.Full, "updateBytes": e.Bytes,
			})
		case EvRelease:
			end(e, "hold", "hold:"+e.Name)
		case EvBarrierEnter:
			begin(e, "barrier", "barrier:"+e.Name, map[string]any{
				"epoch": e.A, "updateBytes": e.Bytes,
			})
		case EvBarrierResume:
			end(e, "barrier", "barrier:"+e.Name)
		default:
			instant(e, e.textBody(), nil)
		}
	}

	// Close any span left open (a lock still held at exit) at the last
	// timestamp so viewers do not render it to infinity.
	if len(open) > 0 {
		last := events[len(events)-1]
		keys := make([]spanKey, 0, len(open))
		for k := range open {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.node != b.node {
				return a.node < b.node
			}
			if a.obj != b.obj {
				return a.obj < b.obj
			}
			return a.what < b.what
		})
		for _, k := range keys {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: k.what, Cat: k.what, Ph: "e", Ts: usOf(last.Cycles),
				Pid: k.node, ID: fmt.Sprintf("n%d.o%d.%s", k.node, k.obj, k.what),
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
