package obs

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// ObjectProfile aggregates a synchronization object's protocol activity.
type ObjectProfile struct {
	// ID is the object id; Name its setup-time name.
	ID   int32
	Name string
	// Acquires counts application acquisitions; LocalAcquires the subset
	// served by the local-owner fast path.
	Acquires      uint64
	LocalAcquires uint64
	// Contended counts transfer requests that had to queue at a holder.
	Contended uint64
	// Transfers counts ownership/data transfers; BytesSent their total
	// update payload (including incarnation histories).
	Transfers uint64
	BytesSent uint64
	// Rebinds counts Rebind calls; BarrierEpochs completed crossings.
	Rebinds       uint64
	BarrierEpochs uint64
	// RecentAcquires and RecentContended are decayed counters: both halve
	// every profileWindow acquire/contend events on the object, so the
	// hot-objects signal tracks the current phase of the run instead of
	// averaging over its whole history.  (The migration policy inside
	// internal/core keeps its own per-node census travelling with the
	// token; these are the observational analogue.)
	RecentAcquires  uint64
	RecentContended uint64
	// HomeMoves counts committed lock-home migrations; TokenForwards the
	// contended handoffs that carried the waiter queue with the token.
	HomeMoves     uint64
	TokenForwards uint64

	// window counts events since the last decay.
	window uint64
}

// profileWindow is the decay period of the Recent* counters: after this
// many acquire/contend events on one object, both counters halve.
const profileWindow = 64

// decayTick advances the decay window by one event.
func (p *ObjectProfile) decayTick() {
	p.window++
	if p.window >= profileWindow {
		p.window = 0
		p.RecentAcquires /= 2
		p.RecentContended /= 2
	}
}

// RegionProfile aggregates a memory region's write-detection activity.
type RegionProfile struct {
	Name string
	// Scans counts RT dirtybit scans over the region; BytesScanned the
	// bytes walked and DirtyBytes the modified bytes found.
	Scans        uint64
	BytesScanned uint64
	DirtyBytes   uint64
	// Diffs counts VM page diffs attributed to the region; DiffBytes the
	// changed bytes they found; Faults the write faults trapped.
	Diffs     uint64
	DiffBytes uint64
	Faults    uint64
}

// PercentDirty is DirtyBytes+DiffBytes over the bytes examined.
func (r *RegionProfile) PercentDirty() float64 {
	den := r.BytesScanned
	if den == 0 {
		den = r.DiffBytes
	}
	if den == 0 {
		return 0
	}
	return 100 * float64(r.DirtyBytes+r.DiffBytes) / float64(den)
}

// profile folds one event into the aggregates.  Caller holds mu.
func (t *Tracer) profile(e Event) {
	switch e.Kind {
	case EvAcquire, EvGrant, EvRelease, EvContend, EvTransfer, EvRebind,
		EvBarrierEnter, EvBarrierResume, EvHomeMigrate, EvTokenForward:
		if e.Obj < 0 {
			return
		}
		p := t.objects[e.Obj]
		if p == nil {
			p = &ObjectProfile{ID: e.Obj, Name: e.Name}
			t.objects[e.Obj] = p
		}
		switch e.Kind {
		case EvAcquire:
			p.Acquires++
			if e.Peer < 0 {
				p.LocalAcquires++
			}
			p.RecentAcquires++
			p.decayTick()
		case EvContend:
			p.Contended++
			p.RecentContended++
			p.decayTick()
		case EvHomeMigrate:
			p.HomeMoves++
		case EvTokenForward:
			p.TokenForwards++
		case EvTransfer:
			p.Transfers++
			p.BytesSent += e.Bytes
		case EvRebind:
			p.Rebinds++
		case EvBarrierEnter:
			p.BytesSent += e.Bytes
		case EvBarrierResume:
			p.BarrierEpochs++
		}
	case EvScan, EvDiff, EvFault:
		r := t.regions[e.Name]
		if r == nil {
			r = &RegionProfile{Name: e.Name}
			t.regions[e.Name] = r
		}
		switch e.Kind {
		case EvScan:
			r.Scans++
			r.BytesScanned += e.Bytes
			r.DirtyBytes += uint64(e.A)
		case EvDiff:
			r.Diffs++
			r.DiffBytes += e.Bytes
		case EvFault:
			r.Faults += uint64(e.A)
		}
	}
}

// ObjectProfiles returns the aggregated per-object profiles, hottest
// first (by transfers+contention, then bytes, then id).  Nil-safe; nil
// when profiling is disabled.
func (t *Tracer) ObjectProfiles() []ObjectProfile {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ObjectProfile, 0, len(t.objects))
	for _, p := range t.objects {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		ha, hb := a.Transfers+a.Contended, b.Transfers+b.Contended
		if ha != hb {
			return ha > hb
		}
		if a.BytesSent != b.BytesSent {
			return a.BytesSent > b.BytesSent
		}
		return a.ID < b.ID
	})
	return out
}

// RegionProfiles returns the aggregated per-region profiles, hottest
// first (by bytes examined, then name).  Nil-safe.
func (t *Tracer) RegionProfiles() []RegionProfile {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RegionProfile, 0, len(t.regions))
	for _, r := range t.regions {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		ea, eb := a.BytesScanned+a.DiffBytes, b.BytesScanned+b.DiffBytes
		if ea != eb {
			return ea > eb
		}
		return a.Name < b.Name
	})
	return out
}

// WriteProfiles renders the hot-objects and hot-regions tables.
// Nil-safe; writes nothing when profiling is disabled or saw no events.
func (t *Tracer) WriteProfiles(w io.Writer) {
	WriteProfileTables(w, t.ObjectProfiles(), t.RegionProfiles())
}

// WriteProfileTables renders the hot-objects and hot-regions tables from
// already-extracted profiles (as carried by a benchmark result).  Writes
// nothing for empty inputs.
func WriteProfileTables(w io.Writer, objs []ObjectProfile, regs []RegionProfile) {
	if len(objs) > 0 {
		fmt.Fprintln(w, "hot objects:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  object\tacquires\tlocal\tcontended\ttransfers\tbytes sent\trebinds\tepochs\trecent\tmoves\tforwards")
		for _, p := range objs {
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				p.Name, p.Acquires, p.LocalAcquires, p.Contended,
				p.Transfers, p.BytesSent, p.Rebinds, p.BarrierEpochs,
				p.RecentAcquires+p.RecentContended, p.HomeMoves, p.TokenForwards)
		}
		tw.Flush()
	}
	if len(regs) > 0 {
		fmt.Fprintln(w, "hot regions:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  region\tscans\tscanned\tdirty\tdiffs\tdiff bytes\tfaults\tpct dirty")
		for _, r := range regs {
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\n",
				r.Name, r.Scans, r.BytesScanned, r.DirtyBytes,
				r.Diffs, r.DiffBytes, r.Faults, r.PercentDirty())
		}
		tw.Flush()
	}
}
