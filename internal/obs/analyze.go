package obs

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"midway/internal/cost"
)

// Analysis is the result of post-processing a JSONL trace: lock
// contention ranking, a critical-path estimate, and per-epoch barrier
// skew.  All times are simulated cycles.
type Analysis struct {
	// Events is the number of events analyzed.
	Events int
	// Locks ranks synchronization objects by how much serialized waiting
	// they induced, worst first.
	Locks []LockReport
	// Barriers reports per-epoch arrival skew per barrier.
	Barriers []BarrierReport
	// Nodes estimates each node's blocked-versus-running split.
	Nodes []NodeReport
	// Recovery summarizes failure detection and crash recovery, nil when
	// the trace has no liveness or recovery events.
	Recovery *RecoveryReport
	// Partition is the partition-tolerance timeline (quorum losses,
	// fences, heals), nil when the trace has no partition events.
	Partition *PartitionReport
	// Membership is the elastic-membership timeline, nil when the trace
	// has no join/drain/membership events.
	Membership *MembershipReport
	// Ownership is the dynamic-ownership timeline, nil when the trace has
	// no home-migration or token-forwarding events.
	Ownership *OwnershipReport
	// Races is the race-detector report, nil when the trace has no
	// race-detection events.
	Races *RaceReport
}

// RaceReport is the race-detector findings in trace order.
type RaceReport struct {
	// Unguarded are stores made without holding the guarding lock.
	Unguarded []UnguardedWriteReport
	// Conflicts are unordered same-line accesses caught at transfer or
	// barrier-merge time.
	Conflicts []ConflictReport
}

// UnguardedWriteReport is one store made without the guarding lock held.
type UnguardedWriteReport struct {
	// Node is the writer; Obj and Guard name the lock the writer should
	// have held.
	Node  int32
	Obj   int32
	Guard string
	// Addr and Size locate the store; TS is the writer's Lamport time and
	// LastSync the line's last synchronized timestamp.
	Addr     uint64
	Size     uint64
	TS       int64
	LastSync int64
	Cycles   uint64
}

// ConflictReport is one unordered pair of accesses to the same line.
type ConflictReport struct {
	// Node and Peer are the two writers (lower id first); Obj/Object the
	// synchronization object the conflict surfaced through.
	Node   int32
	Peer   int32
	Obj    int32
	Object string
	// Addr and Size span the overlap; TS1/TS2 are the two access
	// timestamps (TS1 for Node, TS2 for Peer).
	Addr     uint64
	Size     uint64
	TS1, TS2 int64
	Cycles   uint64
}

// OwnershipReport is the dynamic-ownership timeline: committed lock-home
// moves, token-forward chains, and the acquire-locality shift they caused.
type OwnershipReport struct {
	// Moves are the committed home migrations in trace order.
	Moves []HomeMoveReport
	// Objects summarizes, per migrated or forwarded object, how acquire
	// locality changed around the first home move.
	Objects []OwnershipObjectReport
}

// HomeMoveReport is one committed lock-home migration.
type HomeMoveReport struct {
	Obj  int32
	Name string
	// From is the previous home, To the new one (the dominant acquirer).
	From, To int32
	// Count of Total windowed acquires triggered the move.
	Count, Total int64
	Cycles       uint64
}

// OwnershipObjectReport is one object's dynamic-ownership summary.  The
// hop accounting follows the protocol: a local-owner acquire costs zero
// messages, a home-brokered remote acquire costs three
// (request→home→owner→grant), and a handoff served from a forwarded
// waiter queue costs one (the grant itself).
type OwnershipObjectReport struct {
	Obj  int32
	Name string
	// Moves counts committed home migrations; Forwards the token handoffs
	// that carried a waiter queue, and ForwardedWaiters the queue entries
	// they carried (each one a brokered round-trip avoided).
	Moves            uint64
	Forwards         uint64
	ForwardedWaiters uint64
	// Local/Remote acquire counts split at the first home move; for an
	// object that never migrated, everything lands in Before.
	BeforeLocal, BeforeRemote uint64
	AfterLocal, AfterRemote   uint64
}

// MembershipReport is the elastic-membership timeline.
type MembershipReport struct {
	// Joins are the join handshakes with their state-transfer costs.
	Joins []JoinReport
	// Drains are the graceful-leave milestones.
	Drains []DrainReport
	// Handoffs are per-object state transfers re-homing a departing
	// node's bound data to a successor (drain or crash reclamation).
	Handoffs []HandoffReport
	// Changes are the committed membership transitions in trace order.
	Changes []ChangeReport
}

// HandoffReport is one object's bound data re-homed to a successor when
// its owner departs.
type HandoffReport struct {
	// From departed; To inherited Name's token and data.
	From, To int32
	Name     string
	// BindGen is the rebind generation forcing full data on next use.
	BindGen int64
	Bytes   uint64
	Cycles  uint64
}

// JoinReport is one join handshake as seen at the sponsor.
type JoinReport struct {
	// Sponsor handled the handshake for Joiner.
	Sponsor int32
	Joiner  int32
	// DirEntries and Bytes are the state-transfer cost: directory size and
	// barrier-bound data shipped (lock data travels lazily on first
	// acquire).  Zero until the matching EvStateTransfer is seen.
	DirEntries int64
	Bytes      uint64
	Cycles     uint64
}

// DrainReport is one graceful-leave milestone.
type DrainReport struct {
	Node int32
	// HandoffDone distinguishes the request (false) from the completed
	// token/state handoff (true).
	HandoffDone bool
	Cycles      uint64
}

// ChangeReport is one committed membership transition.
type ChangeReport struct {
	// Node is the subject; Action is "joined", "left" or "died"; Epoch the
	// membership generation after the commit.
	Node   int32
	Action string
	Epoch  int64
	Cycles uint64
}

// PartitionReport is the partition-tolerance timeline.
type PartitionReport struct {
	// QuorumLosses records each endpoint's loss of a live-majority
	// reachability view.
	QuorumLosses []QuorumLossReport
	// Fences records nodes entering the fenced (parked) state.
	Fences []FenceReport
	// Heals records fenced nodes rejoining after connectivity returned.
	Heals []HealReport
}

// QuorumLossReport is one endpoint's quorum loss: it could reach only
// Reached of the Live current members.
type QuorumLossReport struct {
	Node    int32
	Reached int64
	Live    int64
	Cycles  uint64
}

// FenceReport is one node entering the fenced state; Via is the observer
// that reported it (the node itself for a self-fence).
type FenceReport struct {
	Node   int32
	Via    int32
	Cycles uint64
}

// HealReport is one fenced node rejoining.
type HealReport struct {
	Node   int32
	Cycles uint64
}

// RecoveryReport is the failure-detection and crash-recovery timeline.
type RecoveryReport struct {
	// HeartbeatMisses and Suspicions count the detector's real-time
	// observations (these events carry no simulated timestamp).
	HeartbeatMisses int
	Suspicions      int
	// Deaths, Reclaims and Reforms are the recovery timeline in trace
	// order, stamped with the simulated recovery clock.
	Deaths   []DeathReport
	Reclaims []ReclaimReport
	Reforms  []ReformReport
}

// DeathReport is one declared node death.
type DeathReport struct {
	// Node is the declared-dead node; Via the observing endpoint (-1 when
	// the declaration came from the program-point crash API).
	Node   int32
	Via    int32
	Cycles uint64
}

// ReclaimReport is one lock-token reclamation.
type ReclaimReport struct {
	Obj  int32
	Name string
	// From is the crashed holder, NewOwner the survivor that received the
	// token at its last-released state, BindGen the rebind generation that
	// forces the next transfer to carry full data.
	From     int32
	NewOwner int32
	BindGen  int64
	Cycles   uint64
}

// ReformReport is one barrier-membership reform.
type ReformReport struct {
	Obj  int32
	Name string
	// Parties is the surviving membership; Epoch the in-progress episode
	// at the crash.
	Parties int64
	Epoch   int64
	Cycles  uint64
}

// LockReport is one object's contention summary.
type LockReport struct {
	Obj  int32
	Name string
	// Acquires, Contended, Transfers and Bytes mirror the object profile.
	Acquires  uint64
	Contended uint64
	Transfers uint64
	Bytes     uint64
	// WaitCycles is the total simulated time nodes spent between sending
	// an acquire request and receiving the grant.
	WaitCycles uint64
	// SerializedCycles estimates the span this object serialized the
	// computation: last transfer time minus first, an upper bound on how
	// much critical path runs through the lock.
	SerializedCycles uint64
}

// BarrierReport is one barrier's skew summary.
type BarrierReport struct {
	Obj    int32
	Name   string
	Epochs []EpochSkew
	// MaxSkew and MeanSkew summarize arrival spread across epochs.
	MaxSkew  uint64
	MeanSkew float64
}

// EpochSkew is one epoch's arrival spread.
type EpochSkew struct {
	Epoch int64
	// First and Last are the earliest and latest enter times; Skew their
	// difference — how long the fastest node idled waiting for the
	// slowest.
	First, Last, Skew uint64
}

// NodeReport estimates one node's time breakdown.
type NodeReport struct {
	Node int32
	// Span is the node's last event time (its share of the execution).
	Span uint64
	// LockWait and BarrierWait are the simulated cycles the node spent
	// blocked in acquires and barriers; Running is the remainder.
	LockWait    uint64
	BarrierWait uint64
	Running     uint64
}

// pendingKey tracks an outstanding blocking operation per (node, object).
type pendingKey struct {
	node int32
	obj  int32
}

// Analyze post-processes a JSONL trace.  It fails on malformed input (bad
// JSON, unknown event kinds) rather than skipping lines.
func Analyze(r io.Reader) (*Analysis, error) {
	events, err := ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	return AnalyzeEvents(events), nil
}

// AnalyzeEvents post-processes an in-memory event list (already in a
// deterministic order if determinism of the report matters).
func AnalyzeEvents(events []Event) *Analysis {
	a := &Analysis{Events: len(events)}

	locks := map[int32]*LockReport{}
	lockOf := func(e Event) *LockReport {
		l := locks[e.Obj]
		if l == nil {
			l = &LockReport{Obj: e.Obj, Name: e.Name}
			locks[e.Obj] = l
		}
		return l
	}
	type barrierAgg struct {
		rep    *BarrierReport
		epochs map[int64]*EpochSkew
	}
	barriers := map[int32]*barrierAgg{}
	nodes := map[int32]*NodeReport{}
	nodeOf := func(id int32) *NodeReport {
		n := nodes[id]
		if n == nil {
			n = &NodeReport{Node: id}
			nodes[id] = n
		}
		return n
	}

	acquireAt := map[pendingKey]uint64{} // remote acquire send → grant
	enterAt := map[pendingKey]uint64{}   // barrier enter → resume
	firstXfer := map[int32]uint64{}      // per object
	lastXfer := map[int32]uint64{}

	// Dynamic-ownership accounting: per-object acquire locality indexed by
	// whether the object's first home move has happened yet.
	type locality struct{ local, remote [2]uint64 }
	acqLoc := map[int32]*locality{}
	moved := map[int32]bool{}
	ownObjs := map[int32]*OwnershipObjectReport{}
	ownObj := func(e Event) *OwnershipObjectReport {
		o := ownObjs[e.Obj]
		if o == nil {
			o = &OwnershipObjectReport{Obj: e.Obj, Name: e.Name}
			ownObjs[e.Obj] = o
		}
		return o
	}
	ownership := func() *OwnershipReport {
		if a.Ownership == nil {
			a.Ownership = &OwnershipReport{}
		}
		return a.Ownership
	}

	recovery := func() *RecoveryReport {
		if a.Recovery == nil {
			a.Recovery = &RecoveryReport{}
		}
		return a.Recovery
	}
	membership := func() *MembershipReport {
		if a.Membership == nil {
			a.Membership = &MembershipReport{}
		}
		return a.Membership
	}
	races := func() *RaceReport {
		if a.Races == nil {
			a.Races = &RaceReport{}
		}
		return a.Races
	}
	partition := func() *PartitionReport {
		if a.Partition == nil {
			a.Partition = &PartitionReport{}
		}
		return a.Partition
	}

	for _, e := range events {
		// Liveness and recovery events are accounted separately: they are
		// real-time (or recovery-clock) machinery, and their observer ids
		// (-1 for the runtime) must not seed the per-node breakdown.
		switch e.Kind {
		case EvHeartbeatMiss:
			recovery().HeartbeatMisses++
			continue
		case EvSuspect:
			recovery().Suspicions++
			continue
		case EvDeclareDead:
			recovery().Deaths = append(recovery().Deaths,
				DeathReport{Node: e.Peer, Via: e.Node, Cycles: e.Cycles})
			continue
		case EvReclaim:
			recovery().Reclaims = append(recovery().Reclaims, ReclaimReport{
				Obj: e.Obj, Name: e.Name, From: e.Peer, NewOwner: e.Node,
				BindGen: e.A, Cycles: e.Cycles,
			})
			continue
		case EvBarrierReform:
			recovery().Reforms = append(recovery().Reforms, ReformReport{
				Obj: e.Obj, Name: e.Name, Parties: e.A, Epoch: e.B, Cycles: e.Cycles,
			})
			continue
		case EvQuorumLoss:
			partition().QuorumLosses = append(partition().QuorumLosses, QuorumLossReport{
				Node: e.Node, Reached: e.A, Live: e.B, Cycles: e.Cycles,
			})
			continue
		case EvFence:
			partition().Fences = append(partition().Fences, FenceReport{
				Node: e.Node, Via: e.Peer, Cycles: e.Cycles,
			})
			continue
		case EvHeal:
			partition().Heals = append(partition().Heals, HealReport{
				Node: e.Node, Cycles: e.Cycles,
			})
			continue
		case EvJoinRequest:
			membership().Joins = append(membership().Joins, JoinReport{
				Sponsor: e.Node, Joiner: e.Peer, Cycles: e.Cycles,
			})
			continue
		case EvStateTransfer:
			m := membership()
			if e.Name != "" {
				// A named transfer re-homes one object's bound data to a
				// successor when its owner departs; only the join-time
				// snapshot (no object) belongs to a handshake.
				m.Handoffs = append(m.Handoffs, HandoffReport{
					From: e.Node, To: e.Peer, Name: e.Name,
					BindGen: e.A, Bytes: e.Bytes, Cycles: e.Cycles,
				})
				continue
			}
			// Fill the cost into the latest matching handshake; a transfer
			// with no recorded request (partial trace) gets its own row.
			filled := false
			for i := len(m.Joins) - 1; i >= 0; i-- {
				if m.Joins[i].Joiner == e.Peer && m.Joins[i].DirEntries == 0 && m.Joins[i].Bytes == 0 {
					m.Joins[i].DirEntries = e.A
					m.Joins[i].Bytes = e.Bytes
					filled = true
					break
				}
			}
			if !filled {
				m.Joins = append(m.Joins, JoinReport{
					Sponsor: e.Node, Joiner: e.Peer, DirEntries: e.A,
					Bytes: e.Bytes, Cycles: e.Cycles,
				})
			}
			continue
		case EvDrain:
			membership().Drains = append(membership().Drains, DrainReport{
				Node: e.Node, HandoffDone: e.A == 1, Cycles: e.Cycles,
			})
			continue
		case EvMembershipChange:
			membership().Changes = append(membership().Changes, ChangeReport{
				Node: e.Peer, Action: memberActionName(e.B), Epoch: e.A, Cycles: e.Cycles,
			})
			continue
		case EvUnguardedWrite:
			// Detector findings are metadata: they must not perturb the
			// per-node time breakdown of the run they observed.
			races().Unguarded = append(races().Unguarded, UnguardedWriteReport{
				Node: e.Node, Obj: e.Obj, Guard: e.Name, Addr: e.Addr,
				Size: e.Bytes, TS: e.A, LastSync: e.B, Cycles: e.Cycles,
			})
			continue
		case EvUnorderedConflict:
			races().Conflicts = append(races().Conflicts, ConflictReport{
				Node: e.Node, Peer: e.Peer, Obj: e.Obj, Object: e.Name,
				Addr: e.Addr, Size: e.Bytes, TS1: e.A, TS2: e.B, Cycles: e.Cycles,
			})
			continue
		}
		n := nodeOf(e.Node)
		if e.Cycles > n.Span {
			n.Span = e.Cycles
		}
		switch e.Kind {
		case EvAcquire:
			l := lockOf(e)
			l.Acquires++
			loc := acqLoc[e.Obj]
			if loc == nil {
				loc = &locality{}
				acqLoc[e.Obj] = loc
			}
			phase := 0
			if moved[e.Obj] {
				phase = 1
			}
			if e.Peer >= 0 {
				acquireAt[pendingKey{e.Node, e.Obj}] = e.Cycles
				loc.remote[phase]++
			} else {
				loc.local[phase]++
			}
		case EvGrant:
			k := pendingKey{e.Node, e.Obj}
			if at, ok := acquireAt[k]; ok && e.Cycles >= at {
				w := e.Cycles - at
				lockOf(e).WaitCycles += w
				n.LockWait += w
				delete(acquireAt, k)
			}
		case EvContend:
			lockOf(e).Contended++
		case EvTransfer:
			l := lockOf(e)
			l.Transfers++
			l.Bytes += e.Bytes
			if _, ok := firstXfer[e.Obj]; !ok {
				firstXfer[e.Obj] = e.Cycles
			}
			if e.Cycles > lastXfer[e.Obj] {
				lastXfer[e.Obj] = e.Cycles
			}
		case EvBarrierEnter:
			b := barriers[e.Obj]
			if b == nil {
				b = &barrierAgg{
					rep:    &BarrierReport{Obj: e.Obj, Name: e.Name},
					epochs: map[int64]*EpochSkew{},
				}
				barriers[e.Obj] = b
			}
			ep := b.epochs[e.A]
			if ep == nil {
				ep = &EpochSkew{Epoch: e.A, First: e.Cycles, Last: e.Cycles}
				b.epochs[e.A] = ep
			} else {
				if e.Cycles < ep.First {
					ep.First = e.Cycles
				}
				if e.Cycles > ep.Last {
					ep.Last = e.Cycles
				}
			}
			enterAt[pendingKey{e.Node, e.Obj}] = e.Cycles
		case EvBarrierResume:
			k := pendingKey{e.Node, e.Obj}
			if at, ok := enterAt[k]; ok && e.Cycles >= at {
				n.BarrierWait += e.Cycles - at
				delete(enterAt, k)
			}
		case EvHomeMigrate:
			ownership().Moves = append(ownership().Moves, HomeMoveReport{
				Obj: e.Obj, Name: e.Name, From: e.Peer, To: e.Node,
				Count: e.A, Total: e.B, Cycles: e.Cycles,
			})
			ownObj(e).Moves++
			moved[e.Obj] = true
		case EvTokenForward:
			o := ownObj(e)
			o.Forwards++
			o.ForwardedWaiters += uint64(e.A)
		}
	}

	for obj, o := range ownObjs {
		if loc := acqLoc[obj]; loc != nil {
			o.BeforeLocal, o.BeforeRemote = loc.local[0], loc.remote[0]
			o.AfterLocal, o.AfterRemote = loc.local[1], loc.remote[1]
		}
		ownership().Objects = append(ownership().Objects, *o)
	}
	if a.Ownership != nil {
		sort.Slice(a.Ownership.Objects, func(i, j int) bool {
			return a.Ownership.Objects[i].Obj < a.Ownership.Objects[j].Obj
		})
	}

	for obj, l := range locks {
		if last, ok := lastXfer[obj]; ok {
			l.SerializedCycles = last - firstXfer[obj]
		}
		a.Locks = append(a.Locks, *l)
	}
	sort.Slice(a.Locks, func(i, j int) bool {
		x, y := a.Locks[i], a.Locks[j]
		if x.WaitCycles != y.WaitCycles {
			return x.WaitCycles > y.WaitCycles
		}
		if x.Contended != y.Contended {
			return x.Contended > y.Contended
		}
		return x.Obj < y.Obj
	})

	for _, b := range barriers {
		rep := b.rep
		for _, ep := range b.epochs {
			ep.Skew = ep.Last - ep.First
			rep.Epochs = append(rep.Epochs, *ep)
		}
		sort.Slice(rep.Epochs, func(i, j int) bool { return rep.Epochs[i].Epoch < rep.Epochs[j].Epoch })
		var sum uint64
		for _, ep := range rep.Epochs {
			sum += ep.Skew
			if ep.Skew > rep.MaxSkew {
				rep.MaxSkew = ep.Skew
			}
		}
		if len(rep.Epochs) > 0 {
			rep.MeanSkew = float64(sum) / float64(len(rep.Epochs))
		}
		a.Barriers = append(a.Barriers, *rep)
	}
	sort.Slice(a.Barriers, func(i, j int) bool { return a.Barriers[i].Obj < a.Barriers[j].Obj })

	for _, n := range nodes {
		wait := n.LockWait + n.BarrierWait
		if n.Span > wait {
			n.Running = n.Span - wait
		}
		a.Nodes = append(a.Nodes, *n)
	}
	sort.Slice(a.Nodes, func(i, j int) bool { return a.Nodes[i].Node < a.Nodes[j].Node })
	return a
}

// CriticalNode returns the node with the largest span — the execution's
// critical-path endpoint — and false if the trace was empty.
func (a *Analysis) CriticalNode() (NodeReport, bool) {
	var best NodeReport
	found := false
	for _, n := range a.Nodes {
		if !found || n.Span > best.Span {
			best = n
			found = true
		}
	}
	return best, found
}

// ms renders cycles as milliseconds.
func ms(c uint64) string { return fmt.Sprintf("%.3fms", cost.Millis(cost.Cycles(c))) }

// WriteReport renders the analysis as text.
func (a *Analysis) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events\n\n", a.Events)

	fmt.Fprintln(w, "lock contention (worst first):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  object\tacquires\tcontended\ttransfers\tbytes\twait\tserialized")
	for _, l := range a.Locks {
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%s\t%s\n",
			l.Name, l.Acquires, l.Contended, l.Transfers, l.Bytes,
			ms(l.WaitCycles), ms(l.SerializedCycles))
	}
	tw.Flush()

	if cn, ok := a.CriticalNode(); ok {
		fmt.Fprintf(w, "\ncritical path: node %d, %s simulated", cn.Node, ms(cn.Span))
		fmt.Fprintf(w, " (lock wait %s, barrier wait %s, running %s)\n",
			ms(cn.LockWait), ms(cn.BarrierWait), ms(cn.Running))
	}
	fmt.Fprintln(w, "\nper-node breakdown:")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  node\tspan\tlock wait\tbarrier wait\trunning")
	for _, n := range a.Nodes {
		fmt.Fprintf(tw, "  n%d\t%s\t%s\t%s\t%s\n",
			n.Node, ms(n.Span), ms(n.LockWait), ms(n.BarrierWait), ms(n.Running))
	}
	tw.Flush()

	if r := a.Recovery; r != nil {
		fmt.Fprintln(w, "\ncrash recovery timeline:")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, d := range r.Deaths {
			via := "the runtime"
			if d.Via >= 0 {
				via = fmt.Sprintf("n%d", d.Via)
			}
			fmt.Fprintf(tw, "  %s\tnode %d declared dead\tobserved by %s\n", ms(d.Cycles), d.Node, via)
		}
		for _, rc := range r.Reclaims {
			fmt.Fprintf(tw, "  %s\tlock %s reclaimed from n%d by n%d\trebind gen %d\n",
				ms(rc.Cycles), rc.Name, rc.From, rc.NewOwner, rc.BindGen)
		}
		for _, rf := range r.Reforms {
			fmt.Fprintf(tw, "  %s\tbarrier %s re-formed over %d parties\tepoch %d\n",
				ms(rf.Cycles), rf.Name, rf.Parties, rf.Epoch)
		}
		tw.Flush()
		if r.HeartbeatMisses > 0 || r.Suspicions > 0 {
			fmt.Fprintf(w, "  detector: %d heartbeat windows missed, %d suspicions raised\n",
				r.HeartbeatMisses, r.Suspicions)
		}
	}

	if p := a.Partition; p != nil {
		fmt.Fprintln(w, "\npartition timeline:")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, q := range p.QuorumLosses {
			fmt.Fprintf(tw, "  %s\tnode %d lost quorum\treached %d of %d live\n",
				ms(q.Cycles), q.Node, q.Reached, q.Live)
		}
		for _, f := range p.Fences {
			via := "self-fenced"
			if f.Via != f.Node {
				via = fmt.Sprintf("reported by n%d", f.Via)
			}
			fmt.Fprintf(tw, "  %s\tnode %d fenced\t%s\n", ms(f.Cycles), f.Node, via)
		}
		for _, h := range p.Heals {
			fmt.Fprintf(tw, "  %s\tnode %d healed\trejoined the membership\n", ms(h.Cycles), h.Node)
		}
		tw.Flush()
	}

	if m := a.Membership; m != nil {
		fmt.Fprintln(w, "\nmembership timeline:")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, j := range m.Joins {
			fmt.Fprintf(tw, "  %s\tnode %d joined via sponsor n%d\tdirectory %d entries, %dB transferred\n",
				ms(j.Cycles), j.Joiner, j.Sponsor, j.DirEntries, j.Bytes)
		}
		for _, d := range m.Drains {
			phase := "drain requested"
			if d.HandoffDone {
				phase = "drain handoff complete"
			}
			fmt.Fprintf(tw, "  %s\tnode %d\t%s\n", ms(d.Cycles), d.Node, phase)
		}
		for _, h := range m.Handoffs {
			fmt.Fprintf(tw, "  %s\t%s handed off n%d -> n%d\trebind gen %d, %dB\n",
				ms(h.Cycles), h.Name, h.From, h.To, h.BindGen, h.Bytes)
		}
		for _, c := range m.Changes {
			fmt.Fprintf(tw, "  %s\tnode %d %s\tepoch %d\n", ms(c.Cycles), c.Node, c.Action, c.Epoch)
		}
		tw.Flush()
	}

	if o := a.Ownership; o != nil {
		fmt.Fprintln(w, "\nownership timeline:")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, mv := range o.Moves {
			fmt.Fprintf(tw, "  %s\tlock %s home n%d -> n%d\ttrigger %d/%d windowed acquires\n",
				ms(mv.Cycles), mv.Name, mv.From, mv.To, mv.Count, mv.Total)
		}
		tw.Flush()
		fmt.Fprintln(w, "\nacquire hops (0 = local owner, 1 = forwarded token, 3 = home-brokered),")
		fmt.Fprintln(w, "split at each object's first home move:")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  object\tmoves\tfwd handoffs\tfwd waiters\tlocal/remote before\tlocal/remote after")
		var hop0, hop1, hop3 uint64
		for _, ob := range o.Objects {
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d / %d\t%d / %d\n",
				ob.Name, ob.Moves, ob.Forwards, ob.ForwardedWaiters,
				ob.BeforeLocal, ob.BeforeRemote, ob.AfterLocal, ob.AfterRemote)
			hop0 += ob.BeforeLocal + ob.AfterLocal
			remote := ob.BeforeRemote + ob.AfterRemote
			fw := ob.ForwardedWaiters
			if fw > remote {
				fw = remote
			}
			hop1 += fw
			hop3 += remote - fw
		}
		tw.Flush()
		fmt.Fprintf(w, "  hop histogram over these objects: 0-hop %d, 1-hop %d, 3-hop %d\n", hop0, hop1, hop3)
	}

	if r := a.Races; r != nil {
		fmt.Fprintf(w, "\nrace report: %d unguarded writes, %d unordered conflicts\n",
			len(r.Unguarded), len(r.Conflicts))
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, u := range r.Unguarded {
			fmt.Fprintf(tw, "  %s\tn%d wrote 0x%x (%dB)\tguard %s (obj %d) not held\tts=%d last-sync=%d\n",
				ms(u.Cycles), u.Node, u.Addr, u.Size, u.Guard, u.Obj, u.TS, u.LastSync)
		}
		for _, c := range r.Conflicts {
			fmt.Fprintf(tw, "  %s\tn%d/n%d unordered at 0x%x (%dB)\tvia %s\tts=%d vs ts=%d\n",
				ms(c.Cycles), c.Node, c.Peer, c.Addr, c.Size, c.Object, c.TS1, c.TS2)
		}
		tw.Flush()
	}

	for _, b := range a.Barriers {
		fmt.Fprintf(w, "\nbarrier %s: %d epochs, max skew %s, mean skew %s\n",
			b.Name, len(b.Epochs), ms(b.MaxSkew), ms(uint64(b.MeanSkew)))
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  epoch\tfirst\tlast\tskew")
		for _, ep := range b.Epochs {
			fmt.Fprintf(tw, "  %d\t%s\t%s\t%s\n", ep.Epoch, ms(ep.First), ms(ep.Last), ms(ep.Skew))
		}
		tw.Flush()
	}
}
