// Package obs is Midway's observability layer: a structured event model
// for the consistency protocol, the write-detection mechanisms and the
// transport, with pluggable sinks (human-readable text, JSONL, Chrome
// trace_event JSON) and per-object/per-region profile aggregation.
//
// The contract that makes it safe to wire through the hot path is
// zero-cost-when-disabled: a nil *Tracer means tracing is off, and every
// emission site guards with a nil check BEFORE constructing the Event, so
// no argument is evaluated, no name is resolved and nothing is allocated
// on an untraced run.  Timestamps are simulated cycles taken from the
// deterministic protocol times (arrival, grant, release), never from the
// host clock, so a trace is reproducible byte-for-byte and a traced run's
// simulated statistics are identical to an untraced run's.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"midway/internal/cost"
)

// Kind identifies a protocol, detection or transport event.
type Kind uint8

const (
	// EvAcquire is an application lock acquisition.  Peer < 0 marks the
	// local-owner fast path; otherwise Peer is the manager the request was
	// sent to, A the requester's last-seen timestamp and B its last-seen
	// incarnation.
	EvAcquire Kind = iota
	// EvGrant is the arrival of a lock grant at the requester.  A is the
	// incarnation, B the history length, Bytes the update payload.
	EvGrant
	// EvRelease is an application lock release (local under the lazy
	// protocol).
	EvRelease
	// EvContend is a transfer request queued at the owner because the lock
	// is held (or its grant is still in flight).  Peer is the requester.
	EvContend
	// EvTransfer is an ownership/data transfer sent by the owner.  Peer is
	// the requester, A the incarnation, Bytes the total update payload
	// including history.
	EvTransfer
	// EvRebind is a Rebind call.  A is the new binding generation, B the
	// number of ranges.
	EvRebind
	// EvBarrierEnter is a barrier entry.  A is the epoch, Bytes the
	// collected update payload.
	EvBarrierEnter
	// EvBarrierResume is a barrier release arriving back at a waiter.  A is
	// the epoch, Bytes the merged update payload.
	EvBarrierResume
	// EvScan is one region's dirtybit scan during RT collection.  Bytes is
	// the bytes scanned, A the dirty bytes found.
	EvScan
	// EvDiff is one page diffed during VM collection.  A is the page
	// number, B the number of runs, Bytes the changed bytes.
	EvDiff
	// EvFault is a write fault (or a batch of them) trapping pages
	// writable.  A is the number of faults, Bytes the span that faulted.
	EvFault
	// EvApply is the application of received updates to local memory.
	// Bytes is the applied payload.
	EvApply
	// EvRetransmit is a reliable-transport retransmission.  Peer is the
	// destination, A the sequence number, B the attempt count.
	EvRetransmit
	// EvNetFault is an injected network fault.  Name is the fault kind
	// (drop, dup, reorder, delay, partition, crash); Peer is the
	// destination.
	EvNetFault
	// EvHeartbeatMiss is a liveness window a peer failed to refresh.  Node
	// is the observer, Peer the silent node, A the consecutive miss count.
	// Heartbeats are real-time machinery, so Cycles is zero.
	EvHeartbeatMiss
	// EvSuspect marks a peer as suspected dead by a node's failure
	// detector.  Node is the observer, Peer the suspect.
	EvSuspect
	// EvDeclareDead marks a node declared crashed.  Node is the declarer
	// (-1 for a system-level injection), Peer the dead node.  Cycles is
	// the simulated declaration time when the crash was injected at a
	// protocol point, zero when detected in real time.
	EvDeclareDead
	// EvReclaim is a lock token reclaimed from a crashed holder at its
	// last release boundary.  Node is the new owner, Peer the crashed
	// node, Obj the lock, A the new binding generation.
	EvReclaim
	// EvBarrierReform is a barrier membership recomputation after a
	// crash.  Node is the manager, Obj the barrier, A the new effective
	// party count, B the epoch in progress.
	EvBarrierReform
	// EvJoinRequest is a join handshake arriving at the sponsor.  Node is
	// the sponsor, Peer the joiner, A the membership epoch it saw.
	EvJoinRequest
	// EvStateTransfer is the join-time state snapshot sent to a joiner.
	// Node is the sponsor, Peer the joiner, A the directory entry count,
	// Bytes the barrier-bound data payload.
	EvStateTransfer
	// EvDrain is a graceful-leave milestone.  Node is the draining node;
	// A distinguishes the phase (0 drain requested, 1 handoff complete).
	EvDrain
	// EvMembershipChange is a committed membership transition.  Node is
	// the coordinator, Peer the subject node, A the new epoch, B the
	// action (0 joined, 1 left, 2 died).
	EvMembershipChange
	// EvHomeMigrate is a committed lock-home migration.  Node is the new
	// home (the dominant acquirer), Peer the previous home, Obj the lock,
	// A the dominant acquirer's windowed acquire count and B the window
	// total that triggered the move.
	EvHomeMigrate
	// EvTokenForward is a contended token handoff forwarding the waiter
	// queue with the grant, so the new holder serves the queue directly
	// instead of each waiter re-chasing through the home.  Node is the
	// granter, Peer the receiver, Obj the lock, A the number of queued
	// waiters travelling with the token.
	EvTokenForward
	// EvUnguardedWrite is a race-detector finding: a store to shared data
	// whose guarding synchronization object the writer does not hold.
	// Node is the writer, Obj and Name the guarding lock the writer should
	// have held, Addr/Bytes the store, A the writer's Lamport time and B
	// the stored-to line's last synchronized timestamp.
	EvUnguardedWrite
	// EvUnorderedConflict is a race-detector finding: two accesses to the
	// same line with no synchronization order between them, visible in the
	// RT timestamp history at transfer or barrier-merge time.  Node and
	// Peer are the two writers (lower id first), Obj the synchronization
	// object the conflict surfaced through, Addr/Bytes the overlap, A and
	// B the two access timestamps.
	EvUnorderedConflict
	// EvQuorumLoss is a node observing that it can no longer reach a
	// strict majority of the live membership.  Node is the observer, A
	// the number of live peers it can still reach, B the live member
	// count.  Cycles is the simulated trigger time for an injected
	// partition, zero for real-time detection.
	EvQuorumLoss
	// EvFence is a node self-fencing after quorum loss: it parks, stops
	// issuing grants, and freezes its held tokens.  Node is the fenced
	// node (Peer the reporting observer when learned from a notice).
	EvFence
	// EvHeal is a fence lifting: the partition healed and the node
	// regained its quorum.  Node is the healed node, Cycles the simulated
	// heal time for an injected partition, zero for real-time detection.
	EvHeal

	kindCount
)

var kindNames = [kindCount]string{
	EvAcquire:          "acquire",
	EvGrant:            "grant",
	EvRelease:          "release",
	EvContend:          "contend",
	EvTransfer:         "transfer",
	EvRebind:           "rebind",
	EvBarrierEnter:     "barrier-enter",
	EvBarrierResume:    "barrier-resume",
	EvScan:             "scan",
	EvDiff:             "diff",
	EvFault:            "fault",
	EvApply:            "apply",
	EvRetransmit:       "retransmit",
	EvNetFault:         "netfault",
	EvHeartbeatMiss:    "heartbeat-miss",
	EvSuspect:          "suspect",
	EvDeclareDead:      "declare-dead",
	EvReclaim:          "reclaim",
	EvBarrierReform:    "barrier-reform",
	EvJoinRequest:      "join-request",
	EvStateTransfer:    "state-transfer",
	EvDrain:            "drain",
	EvMembershipChange: "membership-change",
	EvHomeMigrate:      "home-migrate",
	EvTokenForward:     "token-forward",

	EvUnguardedWrite:    "unguarded-write",
	EvUnorderedConflict: "unordered-conflict",

	EvQuorumLoss: "quorum-loss",
	EvFence:      "fence",
	EvHeal:       "heal",
}

// String returns the kind's wire name as used in JSONL output.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", int(k))
}

// KindFromString resolves a JSONL kind name; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Mode mirrors the protocol's lock acquisition mode without importing the
// proto package (obs is a leaf dependency of core, detect and transport).
type Mode uint8

const (
	// ModeNone marks events with no acquisition mode.
	ModeNone Mode = iota
	// ModeExclusive is a write-mode acquisition.
	ModeExclusive
	// ModeShared is a read-mode acquisition.
	ModeShared
)

// String matches proto.Mode's rendering so text traces keep their format.
func (m Mode) String() string {
	switch m {
	case ModeExclusive:
		return "exclusive"
	case ModeShared:
		return "shared"
	default:
		return ""
	}
}

// Event is one structured observation.  Fields not meaningful for a kind
// are left at their zero value (Obj and Peer use -1 for "none").
type Event struct {
	// Cycles is the event's simulated time.  It comes from the
	// deterministic protocol times, not from the host clock.
	Cycles uint64
	// Node is the processor the event happened on.
	Node int32
	// Kind identifies the event.
	Kind Kind
	// Obj is the synchronization object id, or -1.
	Obj int32
	// Peer is the other processor involved, or -1.
	Peer int32
	// Mode is the lock mode for acquire/transfer events.
	Mode Mode
	// Full marks a full-data (non-diffed) transfer or grant.
	Full bool
	// Bytes is the event's payload size.
	Bytes uint64
	// A and B are kind-specific scalars (see the Kind constants).
	A, B int64
	// Name is the object or region name, or the fault kind for EvNetFault.
	Name string
	// Addr is the memory address for race-detector events, 0 otherwise.
	Addr uint64
}

// Config selects the sinks a Tracer drives.  All writers are optional; a
// Config that enables nothing yields a nil Tracer from New.
type Config struct {
	// Text receives one human-readable line per event, streamed live in
	// emission order (the legacy trace format).
	Text io.Writer
	// JSONL receives one JSON object per event.  Events are buffered and
	// sorted by simulated time at Close, so the output is deterministic
	// for a deterministic run.
	JSONL io.Writer
	// Chrome receives a Chrome trace_event JSON document at Close, with
	// per-node simulated-time timelines for chrome://tracing / Perfetto.
	Chrome io.Writer
	// Profile enables per-object and per-region profile aggregation.
	Profile bool
}

// Tracer fans events out to the configured sinks.  A nil Tracer is
// disabled; callers must nil-check before constructing an Event.
type Tracer struct {
	mu      sync.Mutex
	text    io.Writer
	jsonl   io.Writer
	chrome  io.Writer
	buf     []Event // buffered for the sorting sinks
	objects map[int32]*ObjectProfile
	regions map[string]*RegionProfile
	closed  bool
}

// New returns a Tracer for the config, or nil when no sink is enabled.
func New(cfg Config) *Tracer {
	if cfg.Text == nil && cfg.JSONL == nil && cfg.Chrome == nil && !cfg.Profile {
		return nil
	}
	t := &Tracer{text: cfg.Text, jsonl: cfg.JSONL, chrome: cfg.Chrome}
	if cfg.Profile {
		t.objects = make(map[int32]*ObjectProfile)
		t.regions = make(map[string]*RegionProfile)
	}
	return t
}

// Enabled reports whether the tracer exists.  It is nil-safe.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one event.  Safe for concurrent use; the caller must have
// nil-checked the tracer.
func (t *Tracer) Emit(e Event) {
	t.mu.Lock()
	if t.text != nil {
		t.writeText(e)
	}
	if t.jsonl != nil || t.chrome != nil {
		t.buf = append(t.buf, e)
	}
	if t.objects != nil {
		t.profile(e)
	}
	t.mu.Unlock()
}

// writeText renders the legacy one-line-per-event format.  Caller holds mu.
func (t *Tracer) writeText(e Event) {
	fmt.Fprintf(t.text, "[%10.3fms n%d] %s\n",
		cost.Millis(cost.Cycles(e.Cycles)), e.Node, e.textBody())
}

// textBody renders the event description.  The acquire, grant, transfer,
// rebind and barrier lines reproduce the pre-obs tracer's format exactly.
func (e Event) textBody() string {
	switch e.Kind {
	case EvAcquire:
		if e.Peer < 0 {
			return fmt.Sprintf("acquire %s %v (local owner)", e.Name, e.Mode)
		}
		return fmt.Sprintf("acquire %s %v -> manager n%d (lastTime=%d lastInc=%d)",
			e.Name, e.Mode, e.Peer, e.A, e.B)
	case EvGrant:
		return fmt.Sprintf("granted %s inc=%d full=%v updates=%dB history=%d",
			e.Name, e.A, e.Full, e.Bytes, e.B)
	case EvRelease:
		return fmt.Sprintf("release %s", e.Name)
	case EvContend:
		return fmt.Sprintf("contend %s n%d waits", e.Name, e.Peer)
	case EvTransfer:
		return fmt.Sprintf("transfer %s %v -> n%d (inc=%d full=%v)",
			e.Name, e.Mode, e.Peer, e.A, e.Full)
	case EvRebind:
		return fmt.Sprintf("rebind %s gen=%d ranges=%d", e.Name, e.A, e.B)
	case EvBarrierEnter:
		return fmt.Sprintf("barrier %s enter epoch=%d updates=%dB", e.Name, e.A, e.Bytes)
	case EvBarrierResume:
		return fmt.Sprintf("barrier %s resume epoch=%d merged=%dB", e.Name, e.A, e.Bytes)
	case EvScan:
		return fmt.Sprintf("scan %s scanned=%dB dirty=%dB", e.Name, e.Bytes, e.A)
	case EvDiff:
		return fmt.Sprintf("diff %s page=%d runs=%d changed=%dB", e.Name, e.A, e.B, e.Bytes)
	case EvFault:
		return fmt.Sprintf("fault %s count=%d span=%dB", e.Name, e.A, e.Bytes)
	case EvApply:
		return fmt.Sprintf("apply %s updates=%dB", e.Name, e.Bytes)
	case EvRetransmit:
		return fmt.Sprintf("retransmit -> n%d seq=%d attempt=%d", e.Peer, e.A, e.B)
	case EvNetFault:
		return fmt.Sprintf("netfault %s -> n%d", e.Name, e.Peer)
	case EvHeartbeatMiss:
		return fmt.Sprintf("heartbeat-miss n%d misses=%d", e.Peer, e.A)
	case EvSuspect:
		return fmt.Sprintf("suspect n%d", e.Peer)
	case EvDeclareDead:
		return fmt.Sprintf("declare-dead n%d", e.Peer)
	case EvReclaim:
		return fmt.Sprintf("reclaim %s from n%d gen=%d", e.Name, e.Peer, e.A)
	case EvBarrierReform:
		return fmt.Sprintf("barrier-reform %s parties=%d epoch=%d", e.Name, e.A, e.B)
	case EvJoinRequest:
		return fmt.Sprintf("join-request n%d epoch=%d", e.Peer, e.A)
	case EvStateTransfer:
		return fmt.Sprintf("state-transfer -> n%d dir=%d data=%dB", e.Peer, e.A, e.Bytes)
	case EvDrain:
		if e.A == 0 {
			return "drain requested"
		}
		return "drain handoff complete"
	case EvMembershipChange:
		return fmt.Sprintf("membership n%d %s epoch=%d", e.Peer, memberActionName(e.B), e.A)
	case EvHomeMigrate:
		return fmt.Sprintf("home-migrate %s n%d -> n%d (%d/%d acquires)", e.Name, e.Peer, e.Node, e.A, e.B)
	case EvTokenForward:
		return fmt.Sprintf("token-forward %s -> n%d queue=%d", e.Name, e.Peer, e.A)
	case EvUnguardedWrite:
		return fmt.Sprintf("RACE unguarded write addr=0x%x %dB guard %s not held ts=%d last-sync=%d",
			e.Addr, e.Bytes, e.Name, e.A, e.B)
	case EvUnorderedConflict:
		return fmt.Sprintf("RACE unordered conflict %s addr=0x%x %dB n%d ts=%d vs n%d ts=%d",
			e.Name, e.Addr, e.Bytes, e.Node, e.A, e.Peer, e.B)
	case EvQuorumLoss:
		return fmt.Sprintf("quorum-loss reach=%d/%d", e.A, e.B)
	case EvFence:
		return "fence"
	case EvHeal:
		return "heal"
	default:
		return e.Kind.String()
	}
}

// memberActionName renders EvMembershipChange's B scalar.  The values
// mirror member.Action without importing the member package (obs is a
// leaf dependency).
func memberActionName(b int64) string {
	switch b {
	case 0:
		return "joined"
	case 1:
		return "left"
	case 2:
		return "died"
	default:
		return fmt.Sprintf("action%d", b)
	}
}

// less is a total order over full event content: events differing in any
// field are ordered deterministically, and identical events compare equal,
// so sorting yields deterministic output for a deterministic event
// multiset regardless of host-goroutine emission interleaving.
func less(a, b Event) bool {
	if a.Cycles != b.Cycles {
		return a.Cycles < b.Cycles
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Obj != b.Obj {
		return a.Obj < b.Obj
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Peer != b.Peer {
		return a.Peer < b.Peer
	}
	if a.Mode != b.Mode {
		return a.Mode < b.Mode
	}
	if a.Full != b.Full {
		return !a.Full
	}
	if a.Bytes != b.Bytes {
		return a.Bytes < b.Bytes
	}
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	return a.Addr < b.Addr
}

// Close flushes the buffering sinks (JSONL, Chrome).  It is idempotent and
// nil-safe; the text sink needs no flushing.  Close does not close the
// underlying writers — their opener does.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	sort.SliceStable(t.buf, func(i, j int) bool { return less(t.buf[i], t.buf[j]) })
	var err error
	if t.jsonl != nil {
		err = writeJSONL(t.jsonl, t.buf)
	}
	if t.chrome != nil {
		if cerr := writeChrome(t.chrome, t.buf); err == nil {
			err = cerr
		}
	}
	t.buf = nil
	return err
}
