// Package apps holds the five benchmark applications of the paper's
// evaluation (water, quicksort, matrix-multiply, sor, cholesky), each
// implemented against the public midway API in a sub-package, plus shared
// support: deterministic input generation, result assembly, and
// verification helpers.
//
// Every application provides:
//
//   - a Config with Default() (seconds-scale) and Paper() (the paper's
//     input sizes) constructors,
//   - Run(midway.Config, Config), which builds the shared data, executes
//     the parallel program, verifies the result against a sequential
//     oracle, and returns measurements, and
//   - Sequential(Config), the uninstrumented oracle.
package apps

import (
	"fmt"
	"io"
	"math"

	"midway"
	"midway/internal/obs"
	"midway/internal/stats"
)

// Result is one application run's measurements.
type Result struct {
	// App names the application; System names the strategy.
	App    string
	System string
	// Procs is the processor count.
	Procs int
	// Seconds is the simulated execution time on the reference hardware.
	Seconds float64
	// Mean holds per-processor average primitive-operation counts (the
	// paper's Table 2 form).
	Mean stats.Snapshot
	// Total holds summed counts across processors.
	Total stats.Snapshot
	// Checksum is an application-defined digest of the output, equal
	// across strategies and processor counts (within floating-point
	// tolerance where noted).
	Checksum float64
	// ObjectProfiles and RegionProfiles carry the per-object and
	// per-region aggregates from a run with Config.ProfileObjects, nil
	// otherwise.  They are observational only — never part of the
	// simulated results a run must reproduce.
	ObjectProfiles []midway.ObjectProfile
	RegionProfiles []midway.RegionProfile
}

// KBTransferredMean returns the mean per-processor application data
// transferred, in KB, the unit of the paper's Table 2 row.
func (r Result) KBTransferredMean() float64 {
	return float64(r.Mean.BytesTransferred) / 1024
}

// KBTransferredTotal returns total data transferred across processors.
func (r Result) KBTransferredTotal() float64 {
	return float64(r.Total.BytesTransferred) / 1024
}

// Collect assembles a Result from a finished system.
func Collect(app string, sys *midway.System, cfg midway.Config, checksum float64) Result {
	return Result{
		App:            app,
		System:         cfg.Strategy.String(),
		Procs:          cfg.Nodes,
		Seconds:        sys.ExecutionSeconds(),
		Mean:           sys.MeanStats(),
		Total:          sys.TotalStats(),
		Checksum:       checksum,
		ObjectProfiles: sys.ObjectProfiles(),
		RegionProfiles: sys.RegionProfiles(),
	}
}

// WriteProfiles renders the run's hot-objects and hot-regions tables.
// Writes nothing when the run was not profiled.
func (r Result) WriteProfiles(w io.Writer) {
	obs.WriteProfileTables(w, r.ObjectProfiles, r.RegionProfiles)
}

// Rand is a small deterministic PRNG (splitmix64) used to generate
// identical inputs in every process of a deployment.
type Rand struct {
	state uint64
}

// NewRand seeds a generator; the same seed yields the same sequence on
// every platform.
func NewRand(seed int64) *Rand {
	return &Rand{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x123456789ABCDEF}
}

// Uint64 returns the next pseudo-random value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("apps: Intn on non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// CloseEnough reports whether two floating-point values agree to within a
// relative tolerance (absolute near zero), loose enough to absorb the
// reassociation differences of parallel summation.
func CloseEnough(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff < tol
	}
	return diff/scale < tol
}

// CheckClose returns an error when two values disagree beyond tolerance.
func CheckClose(what string, got, want, tol float64) error {
	if !CloseEnough(got, want, tol) {
		return fmt.Errorf("%s: got %g, want %g (tolerance %g)", what, got, want, tol)
	}
	return nil
}

// Partition splits n items among p processors as evenly as possible,
// returning the half-open range of items owned by proc.
func Partition(n, p, proc int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = proc*base + min(proc, rem)
	size := base
	if proc < rem {
		size++
	}
	return lo, lo + size
}
