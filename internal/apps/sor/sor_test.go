package sor

import (
	"fmt"
	"testing"

	"midway"
)

func TestSequentialConverges(t *testing.T) {
	cfg := Config{M: 32, Iters: 200, Omega: 1.2, EdgeTemp: 100, CyclesPerCell: 100, Seed: 1}
	g := Sequential(cfg)
	// After many iterations every interior cell approaches the edge
	// temperature.
	mid := g[(cfg.M/2)*cfg.M+cfg.M/2]
	if mid < 95 || mid > 105 {
		t.Errorf("center cell %g has not converged toward edge temperature 100", mid)
	}
}

func TestRunAllStrategies(t *testing.T) {
	cfg := Config{M: 48, Iters: 3, Omega: 1.2, EdgeTemp: 100, CyclesPerCell: 100, Seed: 5}
	want := Checksum(Sequential(cfg))
	for _, strat := range []midway.Strategy{midway.RT, midway.VM, midway.Blast, midway.TwinDiff} {
		for _, procs := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%v/%dp", strat, procs), func(t *testing.T) {
				res, err := Run(midway.Config{Nodes: procs, Strategy: strat}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Checksum != want {
					t.Errorf("checksum %g, want %g", res.Checksum, want)
				}
			})
		}
	}
}

func TestOnlyEdgesTransferred(t *testing.T) {
	// Under RT, the per-phase data shipped should be in the order of the
	// partition-edge rows, far below the whole grid.
	cfg := Config{M: 64, Iters: 2, Omega: 1.2, EdgeTemp: 100, CyclesPerCell: 100, Seed: 5}
	res, err := Run(midway.Config{Nodes: 4, Strategy: midway.RT}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gridBytes := uint64(cfg.M * cfg.M * 8)
	// Total transfer: phase barriers move edge rows, the final barrier
	// moves the grid once (to node 0 via the manager).  Anything beyond
	// ~4 grids would indicate whole-partition shipping per phase.
	if res.Total.BytesTransferred > 4*gridBytes {
		t.Errorf("transferred %d bytes; expected edge-row traffic only (grid is %d bytes)",
			res.Total.BytesTransferred, gridBytes)
	}
}

// TestEdgePagesRefaultPerIteration: under VM-DSM the partition-edge pages
// are diffed and re-protected at every phase barrier, so faults grow with
// the iteration count (the paper's sor shows more diffs than pages).
func TestEdgePagesRefaultPerIteration(t *testing.T) {
	base := Config{M: 64, Omega: 1.2, EdgeTemp: 100, CyclesPerCell: 100, Seed: 5}
	short := base
	short.Iters = 2
	long := base
	long.Iters = 6
	a, err := Run(midway.Config{Nodes: 4, Strategy: midway.VM}, short)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(midway.Config{Nodes: 4, Strategy: midway.VM}, long)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total.WriteFaults <= a.Total.WriteFaults {
		t.Errorf("faults did not grow with iterations: %d (2 iters) vs %d (6 iters)",
			a.Total.WriteFaults, b.Total.WriteFaults)
	}
	if b.Total.PagesDiffed <= a.Total.PagesDiffed {
		t.Errorf("diffs did not grow with iterations: %d vs %d",
			a.Total.PagesDiffed, b.Total.PagesDiffed)
	}
}
