// Package sor implements the paper's red-black successive over-relaxation
// application: the steady-state temperature of a rectangular plate with
// fixed edge temperatures, iterated over an M×M float64 grid.
//
// The grid is laid out row-major with red and black elements adjacent in
// memory — deliberately not partitioned to match the memory system.  Rows
// are divided contiguously among processors; only the rows at partition
// edges are shared, exchanged through a bound barrier after every
// half-iteration.  Interior elements start from random values to maximize
// the changed elements per iteration.  The program exhibits medium-grain
// sharing.
package sor

import (
	"fmt"

	"midway"
	"midway/internal/apps"
)

// Config sizes the computation.
type Config struct {
	// M is the grid dimension (M×M cells including the fixed border).
	M int
	// Iters is the number of full red+black iterations.
	Iters int
	// Omega is the over-relaxation factor.
	Omega float64
	// EdgeTemp is the fixed border temperature.
	EdgeTemp float64
	// CyclesPerCell is the simulated arithmetic cost of one cell update.
	CyclesPerCell uint64
	// Seed generates the random interior.
	Seed int64
	// PlantRace deliberately plants an entry-consistency violation: a
	// lock-bound scratch word is initialized correctly under its lock,
	// then the last processor stores to it WITHOUT acquiring the lock
	// after the first phase barrier.  The store touches nothing the
	// verification reads, so results stay correct; it exists as a
	// true-positive oracle for the race detector (Config.RaceDetect),
	// which must flag exactly one unguarded write deterministically.
	PlantRace bool
}

// Default returns a seconds-scale configuration.
func Default() Config {
	return Config{M: 128, Iters: 6, Omega: 1.2, EdgeTemp: 100, CyclesPerCell: 100, Seed: 42}
}

// Paper returns the paper's input size (1000×1000, 25 iterations).
func Paper() Config {
	return Config{M: 1000, Iters: 25, Omega: 1.2, EdgeTemp: 100, CyclesPerCell: 100, Seed: 42}
}

// initial builds the starting grid: fixed border, random interior.
func initial(cfg Config) []float64 {
	m := cfg.M
	g := make([]float64, m*m)
	rng := apps.NewRand(cfg.Seed)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == 0 || j == 0 || i == m-1 || j == m-1 {
				g[i*m+j] = cfg.EdgeTemp
			} else {
				g[i*m+j] = rng.Float64() * 200
			}
		}
	}
	return g
}

// relax computes one red-black update of cell (i,j) given its neighbors.
func relax(cfg Config, self, up, down, left, right float64) float64 {
	return self + cfg.Omega*((up+down+left+right)/4-self)
}

// Sequential iterates the relaxation without the DSM and returns the final
// grid.  Red-black ordering makes the result independent of traversal
// order within a phase, so the parallel result matches bit-for-bit.
func Sequential(cfg Config) []float64 {
	m := cfg.M
	g := initial(cfg)
	for it := 0; it < cfg.Iters; it++ {
		for phase := 0; phase < 2; phase++ {
			for i := 1; i < m-1; i++ {
				for j := 1; j < m-1; j++ {
					if (i+j)%2 != phase {
						continue
					}
					g[i*m+j] = relax(cfg, g[i*m+j], g[(i-1)*m+j], g[(i+1)*m+j], g[i*m+j-1], g[i*m+j+1])
				}
			}
		}
	}
	return g
}

// Checksum digests a grid.
func Checksum(g []float64) float64 {
	var sum float64
	for i, v := range g {
		sum += v * float64(i%31+1)
	}
	return sum
}

// Run executes the parallel SOR under the given DSM configuration,
// verifies against the oracle, and returns measurements.
func Run(mcfg midway.Config, cfg Config) (apps.Result, error) {
	sys, err := midway.NewSystem(mcfg)
	if err != nil {
		return apps.Result{}, err
	}
	m := cfg.M
	procs := mcfg.Nodes
	// 16-byte cache lines: red and black elements are adjacent in memory
	// (the paper's layout, "not partitioned to match the peculiarities of
	// the memory system"), so every line in a written row is dirtied in
	// every phase.
	grid := sys.AllocF64("sor.grid", m*m, 16, midway.WithGranularity(midway.GranFine))
	for i, v := range initial(cfg) {
		grid.Preset(sys, i, v)
	}

	// Writable rows are 1..m-2, split contiguously.  The rows a processor
	// writes that its neighbors read are its first and last owned rows;
	// bind exactly those to the phase barrier.
	inner := m - 2
	var edges []midway.Range
	parts := make([][]midway.Range, procs)
	rowRange := func(i int) midway.Range { return grid.Slice(i*m, (i+1)*m) }
	for pr := 0; pr < procs; pr++ {
		lo, hi := apps.Partition(inner, procs, pr)
		lo, hi = lo+1, hi+1 // shift past the fixed border row
		if lo >= hi {
			continue
		}
		added := make(map[int]bool)
		addRow := func(i int) {
			if added[i] {
				return
			}
			added[i] = true
			edges = append(edges, rowRange(i))
			parts[pr] = append(parts[pr], rowRange(i))
		}
		if pr > 0 {
			addRow(lo) // read by pr-1
		}
		if pr < procs-1 {
			addRow(hi - 1) // read by pr+1
		}
	}
	phaseBar := sys.NewBarrier("sor.phase", edges...)
	sys.SetBarrierParts(phaseBar, parts)
	// The planted-race scratch word and its guarding lock exist only in
	// PlantRace mode, so clean runs stay byte-identical.
	var scratch midway.F64Array
	var scratchLock midway.LockID
	if cfg.PlantRace {
		scratch = sys.AllocF64("sor.scratch", 2, 16, midway.WithGranularity(midway.GranFine))
		scratchLock = sys.NewLock("sor.scratch.lock", scratch.Range())
	}
	// The final barrier collects the whole grid so results can be read at
	// processor 0.
	done := sys.NewBarrier("sor.done", grid.Range())
	doneParts := make([][]midway.Range, procs)
	for pr := 0; pr < procs; pr++ {
		lo, hi := apps.Partition(inner, procs, pr)
		if lo < hi {
			doneParts[pr] = []midway.Range{grid.Slice((lo+1)*m, (hi+1)*m)}
		}
	}
	sys.SetBarrierParts(done, doneParts)

	err = sys.Run(func(p *midway.Proc) {
		lo, hi := apps.Partition(inner, procs, p.ID())
		lo, hi = lo+1, hi+1
		if cfg.PlantRace && p.ID() == 0 {
			// The correct access pattern: initialize under the lock.
			p.Acquire(scratchLock)
			scratch.Set(p, 0, 1)
			p.Release(scratchLock)
		}
		for it := 0; it < cfg.Iters; it++ {
			for phase := 0; phase < 2; phase++ {
				for i := lo; i < hi; i++ {
					for j := 1; j < m-1; j++ {
						if (i+j)%2 != phase {
							continue
						}
						v := relax(cfg,
							grid.Get(p, i*m+j),
							grid.Get(p, (i-1)*m+j),
							grid.Get(p, (i+1)*m+j),
							grid.Get(p, i*m+j-1),
							grid.Get(p, i*m+j+1))
						p.Compute(cfg.CyclesPerCell)
						grid.Set(p, i*m+j, v)
					}
				}
				p.Barrier(phaseBar)
				if cfg.PlantRace && it == 0 && phase == 0 && p.ID() == procs-1 {
					// The planted violation: a store to lock-bound data
					// without holding sor.scratch.lock.
					scratch.Set(p, 1, 2)
				}
			}
		}
		p.Barrier(done)
	})
	if err != nil {
		return apps.Result{}, err
	}

	got := make([]float64, m*m)
	for i := range got {
		got[i] = sys.ReadFinalF64(grid.At(i))
	}
	want := Sequential(cfg)
	for i := range want {
		if got[i] != want[i] {
			return apps.Result{}, fmt.Errorf("sor: cell %d = %g, want %g", i, got[i], want[i])
		}
	}
	return apps.Collect("sor", sys, mcfg, Checksum(got)), nil
}
