package qsort

import (
	"fmt"
	"testing"

	"midway"
)

func TestRunAllStrategies(t *testing.T) {
	cfg := Config{N: 1024, Threshold: 48, LockPool: 32, CyclesPerOp: 10, Seed: 11}
	want := Checksum(Sequential(cfg))
	for _, strat := range []midway.Strategy{midway.RT, midway.VM, midway.Blast, midway.TwinDiff} {
		for _, procs := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%v/%dp", strat, procs), func(t *testing.T) {
				res, err := Run(midway.Config{Nodes: procs, Strategy: strat}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Checksum != want {
					t.Errorf("checksum %g, want %g", res.Checksum, want)
				}
			})
		}
	}
}

func TestRebindingHappens(t *testing.T) {
	// Every spawned task rebinds a lock; with multiple workers there must
	// be lock transfers carrying rebound task data.
	cfg := Config{N: 2048, Threshold: 64, LockPool: 32, CyclesPerOp: 10, Seed: 3}
	res, err := Run(midway.Config{Nodes: 4, Strategy: midway.VM}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.LockTransfers == 0 {
		t.Error("expected lock transfers")
	}
	// The VM fast path on rebinding means quicksort should diff very few
	// pages relative to its fault count (the paper's Table 2 shows 27
	// diffs vs 156 faults).
	if res.Total.PagesDiffed > res.Total.WriteFaults {
		t.Errorf("expected diffs (%d) below faults (%d) due to rebinding fast path",
			res.Total.PagesDiffed, res.Total.WriteFaults)
	}
}

// TestPrivateLeafSort: the buffered leaf sort produces the same result
// with far fewer instrumented writes (the paper's count regime).
func TestPrivateLeafSort(t *testing.T) {
	base := Config{N: 4096, Threshold: 128, LockPool: 32, CyclesPerOp: 10, Seed: 11}
	want := Checksum(Sequential(base))

	inPlace, err := Run(midway.Config{Nodes: 4, Strategy: midway.RT}, base)
	if err != nil {
		t.Fatal(err)
	}
	buffered := base
	buffered.PrivateLeafSort = true
	priv, err := Run(midway.Config{Nodes: 4, Strategy: midway.RT}, buffered)
	if err != nil {
		t.Fatal(err)
	}
	if inPlace.Checksum != want || priv.Checksum != want {
		t.Fatal("results differ between leaf-sort variants")
	}
	// Buffered leaves write each element once; in-place swaps write it
	// many times.
	if priv.Total.DirtybitsSet*3 > inPlace.Total.DirtybitsSet {
		t.Errorf("buffered sort set %d dirtybits vs in-place %d; expected a large reduction",
			priv.Total.DirtybitsSet, inPlace.Total.DirtybitsSet)
	}
}
