// Package qsort implements the paper's quicksort application (from the
// TreadMarks suite): a parallel quicksort over a shared integer array,
// partitioning until a threshold and then sorting locally with bubblesort.
//
// Work is distributed through a shared task queue.  The array subrange of
// every task is guarded by a lock drawn from a fixed pool, and — exactly
// as the paper describes — the lock is rebound to a new range of addresses
// for every task created.  Under VM-DSM each rebinding invalidates the
// incarnation history and ships the bound data without diffing, which is
// why quicksort is the one application where VM-DSM beats RT-DSM.
//
// The program exhibits medium to coarse-grain sharing but does little
// computation between writes to shared memory: the bubblesort inner loop
// is a compare and swap of adjacent elements.
package qsort

import (
	"fmt"
	"sort"
	"sync"

	"midway"
	"midway/internal/apps"
)

// Config sizes the sort.
type Config struct {
	// N is the array length.
	N int
	// Threshold is the partition size below which tasks sort locally
	// with bubblesort.
	Threshold int
	// LockPool is the number of task locks cycled through the queue.
	LockPool int
	// CyclesPerOp is the simulated cost of one compare/swap step beyond
	// its loads and stores.
	CyclesPerOp uint64
	// PrivateLeafSort makes the leaf bubblesort run in private memory
	// with a single write-back pass, instead of swapping in shared memory.
	// The paper's Table 2 counts (220k dirtybit sets for a 250k-element
	// sort) imply its leaf sort was buffered this way; the default
	// in-place variant maximizes the "little computation between writes"
	// behaviour the paper's text describes.
	PrivateLeafSort bool
	// Seed generates the input.
	Seed int64
}

// Default returns a seconds-scale configuration.
func Default() Config {
	return Config{N: 4096, Threshold: 64, LockPool: 64, CyclesPerOp: 10, Seed: 42}
}

// Paper returns the paper's input size: 250,000 integers with a
// bubblesort threshold of 1,000.
func Paper() Config {
	return Config{N: 250000, Threshold: 1000, LockPool: 64, CyclesPerOp: 10, Seed: 42}
}

// input generates the array to sort.
func input(cfg Config) []uint32 {
	rng := apps.NewRand(cfg.Seed)
	a := make([]uint32, cfg.N)
	for i := range a {
		a[i] = uint32(rng.Uint64())
	}
	return a
}

// Sequential returns the sorted input, the correctness oracle.
func Sequential(cfg Config) []uint32 {
	a := input(cfg)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	return a
}

// Checksum digests an integer array.
func Checksum(a []uint32) float64 {
	var sum float64
	for i, v := range a {
		sum += float64(v%1021) * float64(i%97+1)
	}
	return sum
}

// Queue slot layout within the shared queue array (all uint32):
//
//	q[0]              task count (stack top)
//	q[1]              active workers
//	q[2]              free-lock count
//	q[3 : 3+K]        free lock indices
//	q[3+K : 3+K+3*K]  task stack entries (lo, hi, lockIdx)
const qHeader = 3

// leaf records a subrange whose final contents live at a worker.
type leaf struct {
	node   int
	lo, hi int
}

// Run executes the parallel sort under the given DSM configuration,
// verifies against the oracle, and returns measurements.
func Run(mcfg midway.Config, cfg Config) (apps.Result, error) {
	sys, err := midway.NewSystem(mcfg)
	if err != nil {
		return apps.Result{}, err
	}
	n := cfg.N
	k := cfg.LockPool
	arr := sys.AllocU32("qsort.data", n, 4, midway.WithGranularity(midway.GranCoarse))
	queue := sys.AllocU32("qsort.queue", qHeader+k+3*k, 4, midway.WithGranularity(midway.GranFine))

	for i, v := range input(cfg) {
		arr.Preset(sys, i, v)
	}
	// Initial queue: all locks free except lock 0, which is pre-bound to
	// the whole array as the root task.
	queue.Preset(sys, 0, 1) // one task
	queue.Preset(sys, 1, 0) // no active workers
	queue.Preset(sys, 2, uint32(k-1))
	for i := 0; i < k-1; i++ {
		queue.Preset(sys, qHeader+i, uint32(i+1))
	}
	queue.Preset(sys, qHeader+k+0, 0)
	queue.Preset(sys, qHeader+k+1, uint32(n))
	queue.Preset(sys, qHeader+k+2, 0)

	qlock := sys.NewLock("qsort.queue", queue.Range())
	taskLock := make([]midway.LockID, k)
	for i := 0; i < k; i++ {
		var bind []midway.Range
		if i == 0 {
			bind = []midway.Range{arr.Range()}
		}
		taskLock[i] = sys.NewLock(fmt.Sprintf("qsort.task%d", i), bind...)
	}
	done := sys.NewBarrier("qsort.done")

	var leafMu sync.Mutex
	var leaves []leaf

	// Host-level work-availability coordinator.  Work distribution and
	// all task data flow through the DSM queue; this only replaces idle
	// polling (whose simulated cost would depend on host speed) with a
	// blocking wait, the role the threads package plays in Midway.
	co := newCoord(1) // the root task is queued

	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		var myLeaves []leaf
		recordLeaf := func(lo, hi int) {
			if lo < hi {
				myLeaves = append(myLeaves, leaf{node: me, lo: lo, hi: hi})
			}
		}

		var privBuf []uint32
		if cfg.PrivateLeafSort {
			privBuf = make([]uint32, cfg.Threshold+1)
		}
		bubblesort := func(lo, hi int) {
			if cfg.PrivateLeafSort {
				// Buffered variant: one read pass, a private sort, one
				// instrumented write-back pass.
				buf := privBuf[:hi-lo]
				for i := lo; i < hi; i++ {
					buf[i-lo] = arr.Get(p, i)
				}
				for i := len(buf) - 1; i > 0; i-- {
					for j := 0; j < i; j++ {
						p.Compute(cfg.CyclesPerOp)
						if buf[j] > buf[j+1] {
							buf[j], buf[j+1] = buf[j+1], buf[j]
						}
					}
				}
				for i := lo; i < hi; i++ {
					arr.Set(p, i, buf[i-lo])
				}
				return
			}
			for i := hi - 1; i > lo; i-- {
				for j := lo; j < i; j++ {
					a := arr.Get(p, j)
					b := arr.Get(p, j+1)
					p.Compute(cfg.CyclesPerOp)
					if a > b {
						arr.Set(p, j, b)
						arr.Set(p, j+1, a)
					}
				}
			}
		}

		partition := func(lo, hi int) int {
			pivot := arr.Get(p, hi-1)
			i := lo
			for j := lo; j < hi-1; j++ {
				v := arr.Get(p, j)
				p.Compute(cfg.CyclesPerOp)
				if v < pivot {
					if i != j {
						w := arr.Get(p, i)
						arr.Set(p, i, v)
						arr.Set(p, j, w)
					}
					i++
				}
			}
			arr.Set(p, hi-1, arr.Get(p, i))
			arr.Set(p, i, pivot)
			return i
		}

		// allocLock pops a free task lock index, or returns -1.
		allocLock := func() int {
			p.Acquire(qlock)
			nf := queue.Get(p, 2)
			idx := -1
			if nf > 0 {
				idx = int(queue.Get(p, qHeader+int(nf)-1))
				queue.Set(p, 2, nf-1)
			}
			p.Release(qlock)
			return idx
		}

		// pushTask publishes a task whose lock has been rebound to
		// [lo, hi) and released by the caller.
		pushTask := func(lo, hi, li int) {
			p.Acquire(qlock)
			cnt := queue.Get(p, 0)
			base := qHeader + k + 3*int(cnt)
			queue.Set(p, base+0, uint32(lo))
			queue.Set(p, base+1, uint32(hi))
			queue.Set(p, base+2, uint32(li))
			queue.Set(p, 0, cnt+1)
			p.Release(qlock)
			co.pushed()
		}

		// spawn tries to hand half a partition to the queue: it binds a
		// fresh lock to the range (the rebinding the paper highlights)
		// and publishes the task.  It reports whether it succeeded.
		spawn := func(lo, hi int) bool {
			li := allocLock()
			if li < 0 {
				return false
			}
			p.Acquire(taskLock[li])
			p.Rebind(taskLock[li], arr.Slice(lo, hi))
			p.Release(taskLock[li])
			pushTask(lo, hi, li)
			return true
		}

		// process sorts [lo, hi); the caller holds lock li, whose binding
		// covers the range.  Whenever half a partition is handed to
		// another worker, li is rebound to the remaining half — the
		// paper's "rebound to a new range of addresses for every task
		// created" — so a recycled lock never carries ranges whose
		// authoritative copy lives elsewhere.
		var process func(lo, hi, li int)
		process = func(lo, hi, li int) {
			if hi-lo <= cfg.Threshold {
				bubblesort(lo, hi)
				recordLeaf(lo, hi)
				return
			}
			mid := partition(lo, hi)
			recordLeaf(mid, mid+1) // the pivot's final position
			if spawn(lo, mid) {
				p.Rebind(taskLock[li], arr.Slice(mid+1, hi))
			} else {
				process(lo, mid, li)
			}
			process(mid+1, hi, li)
		}

		for co.reserve() {
			p.Acquire(qlock)
			cnt := queue.Get(p, 0)
			base := qHeader + k + 3*int(cnt-1)
			lo := int(queue.Get(p, base+0))
			hi := int(queue.Get(p, base+1))
			li := int(queue.Get(p, base+2))
			queue.Set(p, 0, cnt-1)
			queue.Set(p, 1, queue.Get(p, 1)+1)
			p.Release(qlock)

			p.Acquire(taskLock[li])
			process(lo, hi, li)
			p.Release(taskLock[li])

			p.Acquire(qlock)
			nf := queue.Get(p, 2)
			queue.Set(p, qHeader+int(nf), uint32(li))
			queue.Set(p, 2, nf+1)
			queue.Set(p, 1, queue.Get(p, 1)-1)
			p.Release(qlock)
			co.finished()
		}
		p.Barrier(done)

		leafMu.Lock()
		leaves = append(leaves, myLeaves...)
		leafMu.Unlock()
	})
	if err != nil {
		return apps.Result{}, err
	}

	// Assemble the result: each leaf's final contents are authoritative
	// at the worker that sorted it.
	got := make([]uint32, n)
	covered := make([]bool, n)
	for _, lf := range leaves {
		buf := make([]byte, 4*(lf.hi-lf.lo))
		sys.ReadFinalAt(lf.node, arr.Slice(lf.lo, lf.hi), buf)
		for i := lf.lo; i < lf.hi; i++ {
			got[i] = leU32(buf[4*(i-lf.lo):])
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			return apps.Result{}, fmt.Errorf("qsort: element %d not covered by any leaf", i)
		}
	}
	want := Sequential(cfg)
	for i := range want {
		if got[i] != want[i] {
			return apps.Result{}, fmt.Errorf("qsort: element %d = %d, want %d", i, got[i], want[i])
		}
	}
	return apps.Collect("quicksort", sys, mcfg, Checksum(got)), nil
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// coord tracks queued and in-flight task counts at the host level so idle
// workers block instead of polling the shared queue.
type coord struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queued int
	active int
}

func newCoord(initial int) *coord {
	c := &coord{queued: initial}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// pushed announces one more task in the shared queue.
func (c *coord) pushed() {
	c.mu.Lock()
	c.queued++
	c.mu.Unlock()
	c.cond.Broadcast()
}

// reserve claims one queued task, blocking while the queue is empty but
// work is still in flight.  It returns false when the sort is complete.
func (c *coord) reserve() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.queued == 0 && c.active > 0 {
		c.cond.Wait()
	}
	if c.queued == 0 {
		return false
	}
	c.queued--
	c.active++
	return true
}

// finished retires one in-flight task.
func (c *coord) finished() {
	c.mu.Lock()
	c.active--
	done := c.active == 0 && c.queued == 0
	c.mu.Unlock()
	if done {
		c.cond.Broadcast()
	}
}
