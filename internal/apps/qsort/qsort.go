// Package qsort implements the paper's quicksort application (from the
// TreadMarks suite): a parallel quicksort over a shared integer array,
// partitioning until a threshold and then sorting locally with bubblesort.
//
// Work is distributed through a shared task queue.  The array subrange of
// every task is guarded by a lock drawn from a fixed pool, and — exactly
// as the paper describes — the lock is rebound to a new range of addresses
// for every task created.  Under VM-DSM each rebinding invalidates the
// incarnation history and ships the bound data without diffing, which is
// why quicksort is the one application where VM-DSM beats RT-DSM.
//
// The program exhibits medium to coarse-grain sharing but does little
// computation between writes to shared memory: the bubblesort inner loop
// is a compare and swap of adjacent elements.
//
// # Deterministic scheduling
//
// A task queue naively polled by racing workers makes the protocol's
// operation order — and with it every simulated statistic — depend on host
// thread timing.  This implementation instead drives the workers on the
// engine-level round scheduler (midway.Turns — the role Midway's threads
// package plays, extended to a deterministic discipline):
//
//   - Each round starts with a serialized sync phase: workers take turns
//     in a seeded per-round permutation order, and only the turn-holder
//     performs DSM synchronization (publishing spawned tasks, returning
//     and dequeuing task locks).  Everyone else is host-parked, so every
//     protocol interaction observes frozen, deterministic simulated
//     clocks.
//   - The rest of the round is a concurrent sort phase that is message
//     free: partitioning and bubblesorting touch only data bound to the
//     worker's held lock, and task spawns are buffered as host-level
//     "offers" published at the worker's next turn.
//
// Host parking never advances a simulated clock, so the rounds are free in
// simulated time; they only fix the order of the protocol's decisions.
// The schedule is a function of (seed, processor count, input) alone —
// identical across write-detection schemes and across runs — which is what
// makes cross-scheme comparisons (for example plain versus combined
// incarnation histories) meaningful for quicksort.
package qsort

import (
	"fmt"
	"sort"
	"sync"

	"midway"
	"midway/internal/apps"
)

// Config sizes the sort.
type Config struct {
	// N is the array length.
	N int
	// Threshold is the partition size below which tasks sort locally
	// with bubblesort.
	Threshold int
	// LockPool is the number of task locks cycled through the queue.
	LockPool int
	// CyclesPerOp is the simulated cost of one compare/swap step beyond
	// its loads and stores.
	CyclesPerOp uint64
	// PrivateLeafSort makes the leaf bubblesort run in private memory
	// with a single write-back pass, instead of swapping in shared memory.
	// The paper's Table 2 counts (220k dirtybit sets for a 250k-element
	// sort) imply its leaf sort was buffered this way; the default
	// in-place variant maximizes the "little computation between writes"
	// behaviour the paper's text describes.
	PrivateLeafSort bool
	// Seed generates the input and the scheduler's tie-break order.
	Seed int64
}

// Default returns a seconds-scale configuration.
func Default() Config {
	return Config{N: 4096, Threshold: 64, LockPool: 64, CyclesPerOp: 10, Seed: 42}
}

// Paper returns the paper's input size: 250,000 integers with a
// bubblesort threshold of 1,000.
func Paper() Config {
	return Config{N: 250000, Threshold: 1000, LockPool: 64, CyclesPerOp: 10, Seed: 42}
}

// input generates the array to sort.
func input(cfg Config) []uint32 {
	rng := apps.NewRand(cfg.Seed)
	a := make([]uint32, cfg.N)
	for i := range a {
		a[i] = uint32(rng.Uint64())
	}
	return a
}

// Sequential returns the sorted input, the correctness oracle.
func Sequential(cfg Config) []uint32 {
	a := input(cfg)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	return a
}

// Checksum digests an integer array.
func Checksum(a []uint32) float64 {
	var sum float64
	for i, v := range a {
		sum += float64(v%1021) * float64(i%97+1)
	}
	return sum
}

// Queue slot layout within the shared queue array (all uint32):
//
//	q[0]              task count (stack top)
//	q[1]              active workers
//	q[2]              free-lock count
//	q[3 : 3+K]        free lock indices
//	q[3+K : 3+K+3*K]  task stack entries (lo, hi, lockIdx)
const qHeader = 3

// span is a half-open subrange of the array.
type span struct {
	lo, hi int
}

// leaf records a subrange whose final contents live at a worker.
type leaf struct {
	node   int
	lo, hi int
}

// Run executes the parallel sort under the given DSM configuration,
// verifies against the oracle, and returns measurements.
func Run(mcfg midway.Config, cfg Config) (apps.Result, error) {
	sys, err := midway.NewSystem(mcfg)
	if err != nil {
		return apps.Result{}, err
	}
	n := cfg.N
	k := cfg.LockPool
	arr := sys.AllocU32("qsort.data", n, 4, midway.WithGranularity(midway.GranCoarse))
	queue := sys.AllocU32("qsort.queue", qHeader+k+3*k, 4, midway.WithGranularity(midway.GranFine))

	for i, v := range input(cfg) {
		arr.Preset(sys, i, v)
	}
	// Initial queue: all locks free except lock 0, which is pre-bound to
	// the whole array as the root task.
	queue.Preset(sys, 0, 1) // one task
	queue.Preset(sys, 1, 0) // no active workers
	queue.Preset(sys, 2, uint32(k-1))
	for i := 0; i < k-1; i++ {
		queue.Preset(sys, qHeader+i, uint32(i+1))
	}
	queue.Preset(sys, qHeader+k+0, 0)
	queue.Preset(sys, qHeader+k+1, uint32(n))
	queue.Preset(sys, qHeader+k+2, 0)

	qlock := sys.NewLock("qsort.queue", queue.Range())
	taskLock := make([]midway.LockID, k)
	for i := 0; i < k; i++ {
		var bind []midway.Range
		if i == 0 {
			bind = []midway.Range{arr.Range()}
		}
		taskLock[i] = sys.NewLock(fmt.Sprintf("qsort.task%d", i), bind...)
	}
	done := sys.NewBarrier("qsort.done")

	var leafMu sync.Mutex
	var leaves []leaf

	sc := newSched(sys, mcfg.Nodes, k, cfg.Seed)

	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		var myLeaves []leaf
		recordLeaf := func(lo, hi int) {
			if lo < hi {
				myLeaves = append(myLeaves, leaf{node: me, lo: lo, hi: hi})
			}
		}

		var privBuf []uint32
		if cfg.PrivateLeafSort {
			privBuf = make([]uint32, cfg.Threshold+1)
		}
		bubblesort := func(lo, hi int) {
			if cfg.PrivateLeafSort {
				// Buffered variant: one read pass, a private sort, one
				// instrumented write-back pass.
				buf := privBuf[:hi-lo]
				for i := lo; i < hi; i++ {
					buf[i-lo] = arr.Get(p, i)
				}
				for i := len(buf) - 1; i > 0; i-- {
					for j := 0; j < i; j++ {
						p.Compute(cfg.CyclesPerOp)
						if buf[j] > buf[j+1] {
							buf[j], buf[j+1] = buf[j+1], buf[j]
						}
					}
				}
				for i := lo; i < hi; i++ {
					arr.Set(p, i, buf[i-lo])
				}
				return
			}
			for i := hi - 1; i > lo; i-- {
				for j := lo; j < i; j++ {
					a := arr.Get(p, j)
					b := arr.Get(p, j+1)
					p.Compute(cfg.CyclesPerOp)
					if a > b {
						arr.Set(p, j, b)
						arr.Set(p, j+1, a)
					}
				}
			}
		}

		partition := func(lo, hi int) int {
			pivot := arr.Get(p, hi-1)
			i := lo
			for j := lo; j < hi-1; j++ {
				v := arr.Get(p, j)
				p.Compute(cfg.CyclesPerOp)
				if v < pivot {
					if i != j {
						w := arr.Get(p, i)
						arr.Set(p, i, v)
						arr.Set(p, j, w)
					}
					i++
				}
			}
			arr.Set(p, hi-1, arr.Get(p, i))
			arr.Set(p, i, pivot)
			return i
		}

		// allocLock pops a free task lock index; the caller checked the
		// scheduler's free-count mirror, so one is available.
		allocLock := func() int {
			p.Acquire(qlock)
			nf := queue.Get(p, 2)
			idx := int(queue.Get(p, qHeader+int(nf)-1))
			queue.Set(p, 2, nf-1)
			p.Release(qlock)
			return idx
		}

		// pushTask publishes a task whose lock has been rebound to
		// [lo, hi) and released by the caller.
		pushTask := func(lo, hi, li int) {
			p.Acquire(qlock)
			cnt := queue.Get(p, 0)
			base := qHeader + k + 3*int(cnt)
			queue.Set(p, base+0, uint32(lo))
			queue.Set(p, base+1, uint32(hi))
			queue.Set(p, base+2, uint32(li))
			queue.Set(p, 0, cnt+1)
			p.Release(qlock)
		}

		// returnLock pushes a finished task's lock back on the free list
		// and retires the worker from the active count.
		returnLock := func(li int) {
			p.Acquire(qlock)
			nf := queue.Get(p, 2)
			queue.Set(p, qHeader+int(nf), uint32(li))
			queue.Set(p, 2, nf+1)
			queue.Set(p, 1, queue.Get(p, 1)-1)
			p.Release(qlock)
		}

		// dequeueTask pops the top task; the scheduler's queued-count
		// mirror guaranteed one is present.
		dequeueTask := func() (lo, hi, li int) {
			p.Acquire(qlock)
			cnt := queue.Get(p, 0)
			base := qHeader + k + 3*int(cnt-1)
			lo = int(queue.Get(p, base+0))
			hi = int(queue.Get(p, base+1))
			li = int(queue.Get(p, base+2))
			queue.Set(p, 0, cnt-1)
			queue.Set(p, 1, queue.Get(p, 1)+1)
			p.Release(qlock)
			return lo, hi, li
		}

		li := -1 // held task lock, or -1
		var pending []span
		var offers []span

		// sortPending drains the pending spans: partition above the
		// threshold — offering each left half to the queue and continuing
		// with the right — and bubblesort at the leaves.  Message free:
		// every access is covered by the held task lock's binding.
		sortPending := func() {
			for len(pending) > 0 {
				s := pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				for s.hi-s.lo > cfg.Threshold {
					mid := partition(s.lo, s.hi)
					recordLeaf(mid, mid+1) // the pivot's final position
					if mid > s.lo {
						offers = append(offers, span{s.lo, mid})
					}
					s.lo = mid + 1
				}
				bubblesort(s.lo, s.hi)
				recordLeaf(s.lo, s.hi)
			}
		}

		for sc.awaitTurn(me) {
			// Serialized sync turn: publish offers while the lock pool
			// lasts — binding a fresh lock to each offered range, the
			// rebinding the paper highlights — and keep the rest to sort
			// locally.
			if li >= 0 {
				var retained []span
				for _, s := range offers {
					if !sc.claimFreeLock() {
						retained = append(retained, s)
						continue
					}
					l2 := allocLock()
					p.Acquire(taskLock[l2])
					p.Rebind(taskLock[l2], arr.Slice(s.lo, s.hi))
					p.Release(taskLock[l2])
					pushTask(s.lo, s.hi, l2)
					sc.pushedTask()
				}
				offers = offers[:0]
				pending = retained
				if len(pending) == 0 {
					// Task complete.  Shrink the binding to nothing before
					// recycling: every range this worker sorted stays
					// authoritative in its local memory, and the next
					// spawner rebinds the lock before use.
					p.Rebind(taskLock[li])
					p.Release(taskLock[li])
					returnLock(li)
					sc.freedLock()
					li = -1
				} else {
					// Still working: the binding shrinks to exactly the
					// retained ranges, excluding everything published.
					rs := make([]midway.Range, len(pending))
					for i, s := range pending {
						rs[i] = arr.Slice(s.lo, s.hi)
					}
					p.Rebind(taskLock[li], rs...)
				}
			}
			if li < 0 && sc.claimQueuedTask() {
				var lo, hi int
				lo, hi, li = dequeueTask()
				p.Acquire(taskLock[li])
				pending = append(pending[:0], span{lo, hi})
			}
			sc.endTurn(me)
			sortPending()
			sc.finishSort(me, li >= 0, len(offers))
		}
		p.Barrier(done)

		leafMu.Lock()
		leaves = append(leaves, myLeaves...)
		leafMu.Unlock()
	})
	if err != nil {
		return apps.Result{}, err
	}

	// Assemble the result: each leaf's final contents are authoritative
	// at the worker that sorted it.
	got := make([]uint32, n)
	covered := make([]bool, n)
	for _, lf := range leaves {
		buf := make([]byte, 4*(lf.hi-lf.lo))
		sys.ReadFinalAt(lf.node, arr.Slice(lf.lo, lf.hi), buf)
		for i := lf.lo; i < lf.hi; i++ {
			got[i] = leU32(buf[4*(i-lf.lo):])
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			return apps.Result{}, fmt.Errorf("qsort: element %d not covered by any leaf", i)
		}
	}
	want := Sequential(cfg)
	for i := range want {
		if got[i] != want[i] {
			return apps.Result{}, fmt.Errorf("qsort: element %d = %d, want %d", i, got[i], want[i])
		}
	}
	return apps.Collect("quicksort", sys, mcfg, Checksum(got)), nil
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// sched wraps the engine-level round scheduler (midway.Turns) with
// quicksort's queue mirrors: the task and free-lock counts are shadowed at
// the host level so that scheduling decisions never require reading shared
// memory outside a worker's serialized turn.
//
// The mirrors need no lock of their own.  free and queued are touched only
// by the current turn-holder, and turn hand-offs are mediated by the Turns
// scheduler's internal mutex; holds[w] and offerN[w] are written only by
// worker w immediately before its FinishRound call and read only by the
// round's last reporter inside idle(), which Turns runs under that same
// mutex after every report.
type sched struct {
	turns *midway.Turns

	free   int // mirror of q[2], the free-lock count
	queued int // mirror of q[0], the queued-task count
	holds  []bool
	offerN []int
}

// newSched seeds the scheduler for a pool of k task locks whose queue
// starts with the root task.  Under Sched=lockstep the Turns scheduler
// parks waiting workers through the engine; either way the permutation
// stream — and with it the whole schedule — is the same.
func newSched(sys *midway.System, procs, k int, seed int64) *sched {
	return &sched{
		turns:  sys.NewTurns(procs, seed^0x5ced),
		free:   k - 1,
		queued: 1,
		holds:  make([]bool, procs),
		offerN: make([]int, procs),
	}
}

// awaitTurn blocks until worker w's serialized sync turn starts, or
// returns false when the sort is complete.
func (s *sched) awaitTurn(w int) bool { return s.turns.AwaitTurn(w) }

// endTurn passes worker w's turn on and blocks until every worker's turn
// has run, so no compute overlaps a sync turn.
func (s *sched) endTurn(w int) { s.turns.EndTurn(w) }

// finishSort reports a worker's sort phase done, carrying whether it still
// holds a task lock and how many spans it will offer next turn.  The last
// reporter either declares completion or opens the next round.
func (s *sched) finishSort(w int, holding bool, offers int) {
	s.holds[w] = holding
	s.offerN[w] = offers
	s.turns.FinishRound(w, func() bool {
		idle := s.queued == 0
		for i := 0; i < len(s.holds) && idle; i++ {
			idle = !s.holds[i] && s.offerN[i] == 0
		}
		return idle
	})
}

// claimFreeLock reserves one pool lock from the mirror; the DSM free list
// holds its index.  Called only by the turn-holder.
func (s *sched) claimFreeLock() bool {
	if s.free == 0 {
		return false
	}
	s.free--
	return true
}

// freedLock mirrors a lock returning to the pool.
func (s *sched) freedLock() { s.free++ }

// pushedTask mirrors a task publication.
func (s *sched) pushedTask() { s.queued++ }

// claimQueuedTask reserves the top queued task for the turn-holder.
func (s *sched) claimQueuedTask() bool {
	if s.queued == 0 {
		return false
	}
	s.queued--
	return true
}
