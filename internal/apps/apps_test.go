package apps

import (
	"testing"
	"testing/quick"
)

func TestPartitionProperties(t *testing.T) {
	f := func(n16, p8 uint8) bool {
		n := int(n16)
		p := int(p8)%8 + 1
		// Concatenating all partitions tiles [0, n) exactly.
		next := 0
		for proc := 0; proc < p; proc++ {
			lo, hi := Partition(n, p, proc)
			if lo != next || hi < lo {
				return false
			}
			next = hi
			// Balance: sizes differ by at most one.
			base := n / p
			if sz := hi - lo; sz != base && sz != base+1 {
				return false
			}
		}
		return next == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(8)
	same := true
	a2 := NewRand(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced the same stream")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestCloseEnough(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-9, 1e-6, true},
		{1, 1.1, 1e-6, false},
		{0, 1e-9, 1e-6, true},                 // absolute near zero
		{1e12, 1e12 * (1 + 1e-8), 1e-6, true}, // relative at scale
		{-5, 5, 1e-6, false},
	}
	for _, c := range cases {
		if got := CloseEnough(c.a, c.b, c.tol); got != c.want {
			t.Errorf("CloseEnough(%g, %g, %g) = %v", c.a, c.b, c.tol, got)
		}
	}
	if err := CheckClose("x", 1, 2, 1e-6); err == nil {
		t.Error("CheckClose accepted a mismatch")
	}
	if err := CheckClose("x", 1, 1, 1e-6); err != nil {
		t.Errorf("CheckClose rejected equality: %v", err)
	}
}

func TestResultHelpers(t *testing.T) {
	var r Result
	r.Mean.BytesTransferred = 2048
	r.Total.BytesTransferred = 8192
	if r.KBTransferredMean() != 2 || r.KBTransferredTotal() != 8 {
		t.Errorf("KB helpers: %g, %g", r.KBTransferredMean(), r.KBTransferredTotal())
	}
}
