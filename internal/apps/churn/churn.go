// Package churn implements the elastic-membership workload: a
// lock-distributed work queue whose final memory contents are independent
// of the membership trajectory.  A fixed total of tasks is drawn from a
// shared counter; every task deterministically fills its own result slot,
// so any schedule of runtime joins and graceful drains that still finishes
// the queue produces byte-identical results — the property the membership
// acceptance tests pin down.
//
// The counter and the result array are bound to a single queue lock.  A
// worker claims a task in one short critical section, computes outside the
// lock so the token circulates while others work, and writes the result in
// a second short critical section.  Entry consistency guarantees the
// release of that second section propagates the slot with the token; Run
// reads the assembled array only after every worker has returned, so all
// result writes are release-ordered before the final read.
//
// Membership changes are driven from the workload itself, which keeps
// lockstep runs deterministic: the worker that claims task number R
// sponsors the joins scheduled at round R after releasing the lock, and a
// node scheduled to drain at round R departs at its next release boundary
// once the counter has passed R (or as soon as an external
// System.DrainNode request is observed).
package churn

import (
	"fmt"
	"sync"

	"midway"
	"midway/internal/apps"
	"midway/internal/member"
)

// Config sizes the workload and schedules the churn.
type Config struct {
	// Tasks is the fixed total number of work items.
	Tasks int
	// WorkCycles is the simulated computation charged per task.
	WorkCycles uint64
	// Joins schedules runtime admissions: entry {Node, Round} admits Node
	// when task number Round is claimed.  Node must be in
	// [midway.Config.Nodes, midway.Config.MaxNodes).
	Joins []member.ScheduleEntry
	// Drains schedules graceful departures: entry {Node, Round} makes
	// Node leave at its first release boundary after the task counter
	// passes Round.  Node 0 must not be drained (it assembles the
	// result).
	Drains []member.ScheduleEntry
}

// Default returns a seconds-scale configuration with no churn; callers add
// schedules (or drive System.DrainNode externally).
func Default() Config {
	return Config{Tasks: 512, WorkCycles: 2000}
}

// task computes result slot t: a splitmix-style mix of the task number, so
// slots are distinct, order-insensitive and cheap to verify.
func task(t int) uint64 {
	z := uint64(t)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	z ^= z >> 31
	return z
}

// Sequential returns the oracle result array.
func Sequential(cfg Config) []uint64 {
	out := make([]uint64, cfg.Tasks)
	for t := range out {
		out[t] = task(t)
	}
	return out
}

// Checksum digests a result array.
func Checksum(res []uint64) float64 {
	var sum float64
	for i, v := range res {
		sum += float64(v%1000003) * float64(i%31+1)
	}
	return sum
}

// validate rejects schedules the workload cannot enact.
func validate(mcfg midway.Config, cfg Config) error {
	if cfg.Tasks <= 0 {
		return fmt.Errorf("churn: Tasks must be positive")
	}
	maxNodes := mcfg.MaxNodes
	if maxNodes == 0 {
		maxNodes = mcfg.Nodes
	}
	for _, j := range cfg.Joins {
		if j.Node < mcfg.Nodes || j.Node >= maxNodes {
			return fmt.Errorf("churn: join of node %d outside the provisioned range [%d, %d)", j.Node, mcfg.Nodes, maxNodes)
		}
		if j.Round >= cfg.Tasks {
			return fmt.Errorf("churn: join of node %d at round %d is after the queue empties (%d tasks)", j.Node, j.Round, cfg.Tasks)
		}
	}
	for _, d := range cfg.Drains {
		if d.Node == 0 {
			return fmt.Errorf("churn: node 0 assembles the result and cannot drain")
		}
		if d.Node < 0 || d.Node >= maxNodes {
			return fmt.Errorf("churn: drain of node %d outside the provisioned range [0, %d)", d.Node, maxNodes)
		}
	}
	if (len(cfg.Joins) > 0 || len(cfg.Drains) > 0) && mcfg.MaxNodes == 0 {
		return fmt.Errorf("churn: a join/drain schedule requires elastic membership (MaxNodes)")
	}
	return nil
}

// Metrics reports membership-operation measurements from a run.
type Metrics struct {
	// JoinLatencies holds, per completed scheduled join, the
	// sponsor-observed simulated cycles from the Join call to the
	// committed admission (Join blocks until the membership change
	// commits, so the sponsor's clock delta is exactly the join latency).
	JoinLatencies []uint64
}

// Run executes the churn work queue under the given DSM configuration,
// verifies the result array against the oracle, and returns measurements.
func Run(mcfg midway.Config, cfg Config) (apps.Result, error) {
	res, _, err := RunWithMetrics(mcfg, cfg)
	return res, err
}

// RunWithMetrics is Run plus membership-operation measurements.
func RunWithMetrics(mcfg midway.Config, cfg Config) (apps.Result, Metrics, error) {
	if err := validate(mcfg, cfg); err != nil {
		return apps.Result{}, Metrics{}, err
	}
	sys, err := midway.NewSystem(mcfg)
	if err != nil {
		return apps.Result{}, Metrics{}, err
	}
	next := sys.MustAlloc("churn.next", 8, 8)
	results := sys.MustAlloc("churn.results", uint32(cfg.Tasks)*8, 64)
	resRange := midway.RangeAt(results, uint32(cfg.Tasks)*8)
	queue := sys.NewLock("churn.queue", midway.RangeAt(next, 8), resRange)
	done := sys.NewBarrier("churn.done")

	// Joins indexed by triggering round; drains indexed by node.
	joinAt := make(map[int][]int)
	for _, j := range cfg.Joins {
		joinAt[j.Round] = append(joinAt[j.Round], j.Node)
	}
	drainRound := make(map[int]int)
	for _, d := range cfg.Drains {
		drainRound[d.Node] = d.Round
	}
	var (
		metMu sync.Mutex
		met   Metrics
	)

	err = sys.Run(func(p *midway.Proc) {
		id := p.ID()
		dr, hasDrain := drainRound[id]
		for {
			p.Acquire(queue)
			t := int(p.ReadU64(next))
			if t >= cfg.Tasks {
				p.Release(queue)
				// Result writes happen in their own critical section, so
				// seeing the queue empty does not mean every slot is
				// filled yet.  Rendezvous with the other survivors, then
				// have node 0 pull the queue token once more: every write
				// is release-ordered before the barrier, so that final
				// acquire lands the complete array in node 0's copy for
				// ReadFinal.
				// A scheduled drainer departs here even if the queue
				// emptied before its round arrived: the run still
				// exercises (and its measurements still include) the
				// drain handoff.
				if hasDrain || p.Draining() {
					p.Leave()
				}
				p.Barrier(done)
				if id == 0 {
					p.Acquire(queue)
					p.Release(queue)
				}
				return
			}
			p.WriteU64(next, uint64(t)+1)
			p.Release(queue)

			// Compute outside the critical section so the queue token
			// circulates while this worker is busy.
			p.Compute(cfg.WorkCycles)
			v := task(t)

			p.Acquire(queue)
			p.WriteU64(results+midway.Addr(t*8), v)
			p.Release(queue)
			for _, j := range joinAt[t] {
				c0 := p.Cycles()
				if err := p.Join(j); err != nil {
					panic(fmt.Sprintf("churn: node %d sponsoring join of %d: %v", id, j, err))
				}
				metMu.Lock()
				met.JoinLatencies = append(met.JoinLatencies, p.Cycles()-c0)
				metMu.Unlock()
			}
			if (hasDrain && t >= dr) || p.Draining() {
				p.Leave()
			}
		}
	})
	if err != nil {
		return apps.Result{}, Metrics{}, err
	}

	got := make([]uint64, cfg.Tasks)
	for t := range got {
		got[t] = sys.ReadFinalU64(results + midway.Addr(t*8))
	}
	want := Sequential(cfg)
	for t := range want {
		if got[t] != want[t] {
			return apps.Result{}, Metrics{}, fmt.Errorf("churn: task %d result = %#x, want %#x", t, got[t], want[t])
		}
	}
	return apps.Collect("churn", sys, mcfg, Checksum(got)), met, nil
}
