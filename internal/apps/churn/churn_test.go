package churn

import (
	"testing"

	"midway"
	"midway/internal/member"
)

// TestFixedMembership runs the queue with no churn under every strategy.
func TestFixedMembership(t *testing.T) {
	for _, strat := range []midway.Strategy{midway.RT, midway.VM, midway.Blast, midway.TwinDiff} {
		r, err := Run(midway.Config{Nodes: 3, Strategy: strat}, Config{Tasks: 96, WorkCycles: 500})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if r.Checksum == 0 {
			t.Fatalf("%v: zero checksum", strat)
		}
	}
}

// TestChurnMatchesFixed checks the headline property: a run with mid-run
// joins and drains produces the same checksum as a fixed-membership run.
func TestChurnMatchesFixed(t *testing.T) {
	for _, sched := range []string{"goroutine", "lockstep"} {
		fixed, err := Run(midway.Config{Nodes: 2, Strategy: midway.RT, Sched: sched},
			Config{Tasks: 96, WorkCycles: 500})
		if err != nil {
			t.Fatalf("fixed/%s: %v", sched, err)
		}
		elastic, err := Run(
			midway.Config{Nodes: 2, MaxNodes: 4, Strategy: midway.RT, Sched: sched},
			Config{
				Tasks:      96,
				WorkCycles: 500,
				Joins:      []member.ScheduleEntry{{Node: 2, Round: 10}, {Node: 3, Round: 20}},
				Drains:     []member.ScheduleEntry{{Node: 1, Round: 40}, {Node: 2, Round: 60}},
			})
		if err != nil {
			t.Fatalf("elastic/%s: %v", sched, err)
		}
		if elastic.Checksum != fixed.Checksum {
			t.Fatalf("%s: churn checksum %g != fixed checksum %g", sched, elastic.Checksum, fixed.Checksum)
		}
	}
}

// TestLockstepChurnDeterminism runs an identical churn schedule twice
// under lockstep and demands byte-identical simulated results.
func TestLockstepChurnDeterminism(t *testing.T) {
	run := func() (float64, float64, uint64) {
		r, err := Run(
			midway.Config{Nodes: 2, MaxNodes: 4, Strategy: midway.VM, Sched: "lockstep"},
			Config{
				Tasks:      80,
				WorkCycles: 300,
				Joins:      []member.ScheduleEntry{{Node: 2, Round: 8}, {Node: 3, Round: 16}},
				Drains:     []member.ScheduleEntry{{Node: 2, Round: 48}},
			})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return r.Checksum, r.Seconds, r.Total.BytesTransferred
	}
	c1, s1, b1 := run()
	c2, s2, b2 := run()
	if c1 != c2 || s1 != s2 || b1 != b2 {
		t.Fatalf("churn not deterministic: (%g,%g,%d) vs (%g,%g,%d)", c1, s1, b1, c2, s2, b2)
	}
}

// TestScheduleValidation rejects schedules the workload cannot enact.
func TestScheduleValidation(t *testing.T) {
	base := midway.Config{Nodes: 2, MaxNodes: 3, Strategy: midway.RT}
	cases := []Config{
		{Tasks: 10, Joins: []member.ScheduleEntry{{Node: 1, Round: 2}}},  // already a member
		{Tasks: 10, Joins: []member.ScheduleEntry{{Node: 5, Round: 2}}},  // beyond capacity
		{Tasks: 10, Joins: []member.ScheduleEntry{{Node: 2, Round: 50}}}, // after the queue empties
		{Tasks: 10, Drains: []member.ScheduleEntry{{Node: 0, Round: 2}}}, // node 0 assembles results
	}
	for i, cfg := range cases {
		if _, err := Run(base, cfg); err == nil {
			t.Errorf("case %d: invalid schedule accepted", i)
		}
	}
	if _, err := Run(midway.Config{Nodes: 2, Strategy: midway.RT},
		Config{Tasks: 10, Drains: []member.ScheduleEntry{{Node: 1, Round: 2}}}); err == nil {
		t.Errorf("drain schedule without MaxNodes accepted")
	}
}
