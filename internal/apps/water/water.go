// Package water implements the paper's water application: an N-body
// molecular dynamics simulation (from the SPLASH suite) evaluating
// pairwise forces and potentials over a liquid of N molecules for a fixed
// number of time steps.  It exhibits medium-grained sharing.
//
// The implementation includes the optimization the paper adopts from
// [Singh et al. 92]: force contributions are accumulated in private memory
// during a time step and flushed into the shared per-molecule force
// accumulators — each guarded by its own lock — only at the end of the
// step.  Positions are distributed through a bound barrier once per step.
package water

import (
	"fmt"
	"math"

	"midway"
	"midway/internal/apps"
)

// Molecule record layout, mirroring the SPLASH water per-molecule
// structure: a small, frequently-rewritten accumulator section inside a
// larger record.  Offsets are in doubles within the record.
const (
	// RecordDoubles is the record size (512 bytes).
	RecordDoubles = 64
	// offForce is the force accumulator (3 doubles), written by every
	// processor's flush phase.
	offForce = 0
	// offVirial is the virial accumulator (1 double), written alongside
	// the forces.
	offVirial = 3
	// offDerivs is the derivative history (16 doubles), written by the
	// owner when advancing the molecule.
	offDerivs = 4
	// offParams starts the static parameter block (initialized once,
	// never rewritten).
	offParams = 20
)

// Config sizes the simulation.
type Config struct {
	// N is the number of molecules.
	N int
	// Steps is the number of time steps.
	Steps int
	// Dt is the integration step.
	Dt float64
	// CyclesPerPair is the simulated arithmetic cost of one pairwise
	// force evaluation on the reference processor.
	CyclesPerPair uint64
	// CyclesPerUpdate is the cost of one molecule's state advance.
	CyclesPerUpdate uint64
	// Seed generates the initial configuration.
	Seed int64
}

// Default returns a seconds-scale configuration.
func Default() Config {
	return Config{N: 64, Steps: 3, Dt: 1e-3, CyclesPerPair: 4400, CyclesPerUpdate: 400, Seed: 42}
}

// Paper returns the paper's input size: 343 molecules for 5 steps.  The
// per-pair cycle cost is calibrated so the standalone run lands near the
// paper's 104.2 seconds.
func Paper() Config {
	return Config{N: 343, Steps: 5, Dt: 1e-3, CyclesPerPair: 4400, CyclesPerUpdate: 400, Seed: 42}
}

// state is the sequential oracle's molecule state.
type state struct {
	pos, vel []float64 // 3N each
}

// initialState places molecules on a jittered cubic lattice with small
// random velocities.
func initialState(cfg Config) state {
	rng := apps.NewRand(cfg.Seed)
	n := cfg.N
	side := int(math.Ceil(math.Cbrt(float64(n))))
	st := state{pos: make([]float64, 3*n), vel: make([]float64, 3*n)}
	for m := 0; m < n; m++ {
		x := m % side
		y := (m / side) % side
		z := m / (side * side)
		st.pos[3*m+0] = float64(x) + 0.1*rng.Float64()
		st.pos[3*m+1] = float64(y) + 0.1*rng.Float64()
		st.pos[3*m+2] = float64(z) + 0.1*rng.Float64()
		for c := 0; c < 3; c++ {
			st.vel[3*m+c] = 0.01 * (rng.Float64() - 0.5)
		}
	}
	return st
}

// pairForce evaluates the force on molecule i due to molecule j (softened
// inverse-square attraction), writing it into f.
func pairForce(pos []float64, i, j int, f *[3]float64) {
	const eps = 0.01
	dx := pos[3*j+0] - pos[3*i+0]
	dy := pos[3*j+1] - pos[3*i+1]
	dz := pos[3*j+2] - pos[3*i+2]
	r2 := dx*dx + dy*dy + dz*dz + eps
	inv := 1 / (r2 * math.Sqrt(r2))
	f[0] = dx * inv
	f[1] = dy * inv
	f[2] = dz * inv
}

// Sequential advances the system without the DSM and returns the final
// positions.
func Sequential(cfg Config) []float64 {
	st := initialState(cfg)
	n := cfg.N
	force := make([]float64, 3*n)
	for s := 0; s < cfg.Steps; s++ {
		for i := range force {
			force[i] = 0
		}
		var f [3]float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairForce(st.pos, i, j, &f)
				for c := 0; c < 3; c++ {
					force[3*i+c] += f[c]
					force[3*j+c] -= f[c]
				}
			}
		}
		for m := 0; m < n; m++ {
			for c := 0; c < 3; c++ {
				st.vel[3*m+c] += force[3*m+c] * cfg.Dt
				st.pos[3*m+c] += st.vel[3*m+c] * cfg.Dt
			}
		}
	}
	return st.pos
}

// Checksum digests a position vector.
func Checksum(pos []float64) float64 {
	var sum float64
	for i, v := range pos {
		sum += v * float64(i%13+1)
	}
	return sum
}

// Run executes the parallel simulation under the given DSM configuration,
// verifies the final positions against the oracle (to floating-point
// reassociation tolerance), and returns measurements.
func Run(mcfg midway.Config, cfg Config) (apps.Result, error) {
	sys, err := midway.NewSystem(mcfg)
	if err != nil {
		return apps.Result{}, err
	}
	n := cfg.N
	procs := mcfg.Nodes

	pos := sys.AllocF64("water.pos", 3*n, 8, midway.WithGranularity(midway.GranFine))
	// Each molecule has a SPLASH-style record of RecordDoubles doubles:
	// the force accumulator and virial that the flush phase writes, the
	// derivative fields the owner writes when advancing the state, and
	// the static parameter block that is initialized once and never
	// rewritten.  The per-molecule lock guards the whole record, so — as
	// in the paper's water — each incarnation modifies only a small part
	// of the bound data.
	mol := sys.AllocF64("water.mol", RecordDoubles*n, 8, midway.WithGranularity(midway.GranFine))

	init := initialState(cfg)
	for i, v := range init.pos {
		pos.Preset(sys, i, v)
	}
	rng := apps.NewRand(cfg.Seed + 1)
	for m := 0; m < n; m++ {
		for i := offParams; i < RecordDoubles; i++ {
			mol.Preset(sys, m*RecordDoubles+i, rng.Float64())
		}
	}

	// One lock per molecule guards its shared record.  Positions travel
	// through the step barrier instead, so force-phase reads need no
	// locks.
	molLock := make([]midway.LockID, n)
	for m := 0; m < n; m++ {
		molLock[m] = sys.NewLock(fmt.Sprintf("water.mol%d", m),
			mol.Slice(m*RecordDoubles, (m+1)*RecordDoubles))
	}
	// Phase barrier (unbound): separates force flushing from state
	// advance.  Step barrier distributes the new positions.
	phase := sys.NewBarrier("water.phase")
	step := sys.NewBarrier("water.step", pos.Range())
	parts := make([][]midway.Range, procs)
	for pr := 0; pr < procs; pr++ {
		lo, hi := apps.Partition(n, procs, pr)
		if lo < hi {
			parts[pr] = []midway.Range{pos.Slice(3*lo, 3*hi)}
		}
	}
	sys.SetBarrierParts(step, parts)

	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		lo, hi := apps.Partition(n, procs, me)
		vel := make([]float64, 3*n)   // private: only the owner's slots used
		local := make([]float64, 3*n) // private force accumulation
		copy(vel, init.vel)
		myPos := make([]float64, 3*n) // private cache of positions
		var f [3]float64

		for s := 0; s < cfg.Steps; s++ {
			// Read the consistent positions once into private memory.
			for i := 0; i < 3*n; i++ {
				myPos[i] = pos.Get(p, i)
			}
			for i := range local {
				local[i] = 0
			}
			// Force evaluation over this processor's pair slice,
			// accumulating into private memory.
			for i := lo; i < hi; i++ {
				for j := i + 1; j < n; j++ {
					pairForce(myPos, i, j, &f)
					p.Compute(cfg.CyclesPerPair)
					for c := 0; c < 3; c++ {
						local[3*i+c] += f[c]
						local[3*j+c] -= f[c]
					}
				}
			}
			// Flush private contributions into the shared accumulators,
			// one molecule lock at a time (the end-of-step update of the
			// Singh et al. optimization).  Each flush dirties only the
			// force/virial words of the record.
			for m := 0; m < n; m++ {
				if local[3*m] == 0 && local[3*m+1] == 0 && local[3*m+2] == 0 {
					continue
				}
				p.Acquire(molLock[m])
				rec := m * RecordDoubles
				for c := 0; c < 3; c++ {
					a := mol.At(rec + offForce + c)
					p.WriteF64(a, p.ReadF64(a)+local[3*m+c])
				}
				vir := mol.At(rec + offVirial)
				p.WriteF64(vir, p.ReadF64(vir)+
					local[3*m]*myPos[3*m]+local[3*m+1]*myPos[3*m+1]+local[3*m+2]*myPos[3*m+2])
				p.Release(molLock[m])
			}
			p.Barrier(phase)
			// Advance owned molecules: consume and reset the force
			// accumulator, record the derivative history, write the new
			// positions.
			for m := lo; m < hi; m++ {
				p.Acquire(molLock[m])
				p.Compute(cfg.CyclesPerUpdate)
				rec := m * RecordDoubles
				for c := 0; c < 3; c++ {
					fm := p.ReadF64(mol.At(rec + offForce + c))
					p.WriteF64(mol.At(rec+offForce+c), 0)
					vel[3*m+c] += fm * cfg.Dt
					p.WriteF64(pos.At(3*m+c), myPos[3*m+c]+vel[3*m+c]*cfg.Dt)
					// Derivative history, as in the SPLASH record: the
					// last few force and velocity values.
					p.WriteF64(mol.At(rec+offDerivs+c), fm)
					p.WriteF64(mol.At(rec+offDerivs+3+c), vel[3*m+c])
				}
				p.WriteF64(mol.At(rec+offVirial), 0)
				p.Release(molLock[m])
			}
			p.Barrier(step)
		}
	})
	if err != nil {
		return apps.Result{}, err
	}

	got := make([]float64, 3*n)
	for i := range got {
		got[i] = sys.ReadFinalF64(pos.At(i))
	}
	want := Sequential(cfg)
	for i := range want {
		if !apps.CloseEnough(got[i], want[i], 1e-6) {
			return apps.Result{}, fmt.Errorf("water: pos[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	return apps.Collect("water", sys, mcfg, Checksum(got)), nil
}
