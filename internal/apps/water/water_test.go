package water

import (
	"fmt"
	"testing"

	"midway"
	"midway/internal/apps"
)

func TestSequentialDeterministic(t *testing.T) {
	cfg := Config{N: 27, Steps: 2, Dt: 1e-3, CyclesPerPair: 100, CyclesPerUpdate: 10, Seed: 9}
	if Checksum(Sequential(cfg)) != Checksum(Sequential(cfg)) {
		t.Fatal("oracle not deterministic")
	}
}

func TestRunAllStrategies(t *testing.T) {
	cfg := Config{N: 32, Steps: 2, Dt: 1e-3, CyclesPerPair: 100, CyclesPerUpdate: 10, Seed: 4}
	want := Checksum(Sequential(cfg))
	for _, strat := range []midway.Strategy{midway.RT, midway.VM, midway.Blast, midway.TwinDiff} {
		for _, procs := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%v/%dp", strat, procs), func(t *testing.T) {
				res, err := Run(midway.Config{Nodes: procs, Strategy: strat}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := apps.CheckClose("checksum", res.Checksum, want, 1e-6); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

func TestMediumGrainSharing(t *testing.T) {
	// Water's flush phase acquires a lock per molecule: with 2 processors
	// and N molecules over S steps, expect substantial lock transfer
	// traffic and dirtybit activity under RT.
	cfg := Config{N: 32, Steps: 2, Dt: 1e-3, CyclesPerPair: 100, CyclesPerUpdate: 10, Seed: 4}
	res, err := Run(midway.Config{Nodes: 2, Strategy: midway.RT}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.LockTransfers == 0 {
		t.Error("expected lock transfers between processors")
	}
	if res.Total.DirtybitsSet == 0 {
		t.Error("expected dirtybits to be set")
	}
}

// TestVMRedundantData reproduces the paper's water observation in
// miniature: the uncombined incarnation history makes VM-DSM ship
// substantially more data than RT-DSM's exact dirtybit history.
func TestVMRedundantData(t *testing.T) {
	cfg := Config{N: 48, Steps: 3, Dt: 1e-3, CyclesPerPair: 100, CyclesPerUpdate: 10, Seed: 4}
	rt, err := Run(midway.Config{Nodes: 4, Strategy: midway.RT}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := Run(midway.Config{Nodes: 4, Strategy: midway.VM}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Total.BytesTransferred < rt.Total.BytesTransferred*13/10 {
		t.Errorf("expected >=30%% VM data redundancy (paper: 40%%); RT %d vs VM %d bytes",
			rt.Total.BytesTransferred, vm.Total.BytesTransferred)
	}
}

// TestPrivateAccumulationKeepsTrapsLow: the Singh et al. optimization
// accumulates forces privately, so shared stores scale with molecules per
// step, not with pair interactions.
func TestPrivateAccumulationKeepsTrapsLow(t *testing.T) {
	cfg := Config{N: 48, Steps: 2, Dt: 1e-3, CyclesPerPair: 100, CyclesPerUpdate: 10, Seed: 4}
	res, err := Run(midway.Config{Nodes: 2, Strategy: midway.RT}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := uint64(cfg.N*(cfg.N-1)/2) * uint64(cfg.Steps)
	if res.Total.DirtybitsSet >= pairs {
		t.Errorf("dirtybits set (%d) should be far below pair count (%d): forces must accumulate privately",
			res.Total.DirtybitsSet, pairs)
	}
}
