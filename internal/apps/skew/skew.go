// Package skew implements the skewed-lock microworkload used to measure
// dynamic lock-home migration: a bank of per-counter locks whose
// popularity follows a seeded zipfian distribution, with each lock's
// acquires dominated by one node.  Under the static hashed directory
// every steady-state acquire of a remote-homed lock costs a
// three-message brokered round trip; with migration on, each lock's home
// moves to its dominant acquirer and the steady state becomes local, so
// the per-node protocol message counts flatten and shrink.
//
// Every operation adds a deterministic per-(node, op) delta to one
// counter.  Addition commutes, so the final counter values — and the
// checksum over them — depend only on the seeded operation streams, not
// on the interleaving or on whether migration ran: the invariance the
// migration acceptance tests pin down.
package skew

import (
	"fmt"
	"math"

	"midway"
	"midway/internal/apps"
	"midway/internal/stats"
)

// Config sizes the workload.
type Config struct {
	// Locks is the number of counters, each bound to its own lock.
	Locks int
	// Ops is the number of operations each node performs.
	Ops int
	// WorkCycles is the simulated computation charged per operation,
	// outside the critical section.
	WorkCycles uint64
	// HotMillis is the per-mille probability that an operation targets a
	// lock from the node's own partition (the locks it dominates); the
	// rest go to a zipfian draw over all locks.  Zero selects 900.
	HotMillis int
	// Seed seeds the per-node operation streams.
	Seed uint64
}

// Default returns the standard cell: enough distinct locks that every
// node dominates several, with a 90% own-partition bias.
func Default() Config {
	return Config{Locks: 32, Ops: 256, WorkCycles: 2000, HotMillis: 900, Seed: 1}
}

// zipfTable is a cumulative-weight table for rank-biased draws:
// rank r has weight 1/(r+1)^1.2, so low ranks dominate.
type zipfTable []float64

func newZipfTable(n int) zipfTable {
	t := make(zipfTable, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += 1 / math.Pow(float64(r+1), 1.2)
		t[r] = sum
	}
	return t
}

// draw maps a uniform u in [0,1) to a rank by inverse CDF.
func (t zipfTable) draw(u float64) int {
	x := u * t[len(t)-1]
	lo, hi := 0, len(t)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// delta is the commutative per-operation increment: a splitmix-style mix
// of the node, operation number and lock, so each counter's final value
// is a distinct order-insensitive sum.
func delta(node, op, lock int) uint64 {
	z := (uint64(node)<<40 + uint64(op)<<16 + uint64(lock)) * 0x9e3779b97f4a7c15
	z ^= z >> 31
	z = z * 0xbf58476d1ce4e5b9
	z ^= z >> 29
	return z
}

// dominant assigns each lock the node that dominates its acquires.  The
// assignment is a hash so it aligns with neither directory layout — not
// the static round-robin homes nor the migrate-mode hashed shards —
// which is the realistic case: an application's access pattern does not
// know where the runtime happened to home its locks.
func dominant(l, nodes int) int {
	z := uint64(l)*0xd6e8feb86659fd93 + 0x2545f4914f6cdd1d
	z ^= z >> 32
	z *= 0xd6e8feb86659fd93
	z ^= z >> 29
	return int(z % uint64(nodes))
}

// plan holds one node's precomputed operation stream: the lock each
// operation targets.  Streams depend only on (Seed, node, partition
// layout), never on timing, so the oracle replays them exactly.
func plan(cfg Config, nodes, node int) []int {
	hot := cfg.HotMillis
	if hot == 0 {
		hot = 900
	}
	// The locks this node dominates, in lock order.
	var own []int
	for l := 0; l < cfg.Locks; l++ {
		if dominant(l, nodes) == node {
			own = append(own, l)
		}
	}
	ownZipf := newZipfTable(len(own))
	allZipf := newZipfTable(cfg.Locks)
	rnd := apps.NewRand(int64(cfg.Seed*0x51ed2701 + uint64(node)))
	out := make([]int, cfg.Ops)
	for i := range out {
		if len(own) > 0 && rnd.Intn(1000) < hot {
			out[i] = own[ownZipf.draw(rnd.Float64())]
		} else {
			out[i] = allZipf.draw(rnd.Float64())
		}
	}
	return out
}

// Sequential returns the oracle counter values for a run with the given
// node count.
func Sequential(cfg Config, nodes int) []uint64 {
	out := make([]uint64, cfg.Locks)
	for node := 0; node < nodes; node++ {
		for op, l := range plan(cfg, nodes, node) {
			out[l] += delta(node, op, l)
		}
	}
	return out
}

// Checksum digests a counter array.
func Checksum(res []uint64) float64 {
	var sum float64
	for i, v := range res {
		sum += float64(v%1000003) * float64(i%31+1)
	}
	return sum
}

// Run executes the workload and verifies the counters against the
// oracle.
func Run(mcfg midway.Config, cfg Config) (apps.Result, error) {
	res, _, err := RunDetail(mcfg, cfg)
	return res, err
}

// RunDetail is Run plus the per-node statistics snapshots, from which
// the benchmark derives per-node protocol message loads.
func RunDetail(mcfg midway.Config, cfg Config) (apps.Result, []stats.Snapshot, error) {
	if cfg.Locks <= 0 || cfg.Ops <= 0 {
		return apps.Result{}, nil, fmt.Errorf("skew: Locks and Ops must be positive")
	}
	sys, err := midway.NewSystem(mcfg)
	if err != nil {
		return apps.Result{}, nil, err
	}
	counters := sys.MustAlloc("skew.counters", uint32(cfg.Locks)*8, 8)
	locks := make([]midway.LockID, cfg.Locks)
	for l := range locks {
		locks[l] = sys.NewLock(fmt.Sprintf("skew.c%d", l),
			midway.RangeAt(counters+midway.Addr(l*8), 8))
	}
	done := sys.NewBarrier("skew.done")

	err = sys.Run(func(p *midway.Proc) {
		id := p.ID()
		for op, l := range plan(cfg, mcfg.Nodes, id) {
			p.Compute(cfg.WorkCycles)
			p.Acquire(locks[l])
			a := counters + midway.Addr(l*8)
			p.WriteU64(a, p.ReadU64(a)+delta(id, op, l))
			p.Release(locks[l])
		}
		// Counter writes are release-ordered before the barrier; node 0
		// then pulls every token once so ReadFinal sees the complete
		// array (the churn idiom).
		p.Barrier(done)
		if id == 0 {
			for _, lk := range locks {
				p.Acquire(lk)
				p.Release(lk)
			}
		}
	})
	if err != nil {
		return apps.Result{}, nil, err
	}

	got := make([]uint64, cfg.Locks)
	for l := range got {
		got[l] = sys.ReadFinalU64(counters + midway.Addr(l*8))
	}
	want := Sequential(cfg, mcfg.Nodes)
	for l := range want {
		if got[l] != want[l] {
			return apps.Result{}, nil, fmt.Errorf("skew: counter %d = %#x, want %#x", l, got[l], want[l])
		}
	}
	return apps.Collect("skew", sys, mcfg, Checksum(got)), sys.Stats(), nil
}
