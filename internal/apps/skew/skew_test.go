package skew

import (
	"testing"

	"midway"
)

// TestPlanDeterministic pins the operation streams: same config, same
// streams, and a different seed moves them.
func TestPlanDeterministic(t *testing.T) {
	cfg := Default()
	a := plan(cfg, 4, 1)
	b := plan(cfg, 4, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: %d != %d", i, a[i], b[i])
		}
	}
	cfg2 := cfg
	cfg2.Seed = 2
	c := plan(cfg2, 4, 1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not move the stream")
	}
}

// TestDominantBias checks the workload's defining property: each node's
// stream is dominated by the locks it dominates.
func TestDominantBias(t *testing.T) {
	cfg := Default()
	const nodes = 4
	for node := 0; node < nodes; node++ {
		own := 0
		ops := plan(cfg, nodes, node)
		for _, l := range ops {
			if dominant(l, nodes) == node {
				own++
			}
		}
		if frac := float64(own) / float64(len(ops)); frac < 0.7 {
			t.Errorf("node %d: only %.0f%% of ops target its own partition", node, frac*100)
		}
	}
}

// TestSequentialMatchesRun verifies the oracle against a real run.
func TestSequentialMatchesRun(t *testing.T) {
	cfg := Config{Locks: 8, Ops: 32, WorkCycles: 1000, HotMillis: 900, Seed: 3}
	if _, err := Run(midway.Config{Nodes: 2, Strategy: midway.RT}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestZipfDraw checks the inverse-CDF draw covers the full rank range
// and is rank-biased.
func TestZipfDraw(t *testing.T) {
	tab := newZipfTable(16)
	if got := tab.draw(0); got != 0 {
		t.Errorf("draw(0) = %d, want 0", got)
	}
	if got := tab.draw(0.999999); got != 15 {
		t.Errorf("draw(~1) = %d, want 15", got)
	}
	if tab.draw(0.1) > tab.draw(0.9) {
		t.Error("draw is not monotone in u")
	}
}
