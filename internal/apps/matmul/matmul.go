// Package matmul implements the paper's matrix-multiply application:
// C = A·B over dense square float64 matrices, with the result partitioned
// by row block across processors.
//
// The program exhibits coarse-grain sharing with a high computation to
// communication ratio.  Its data is partitioned to minimize sharing, and
// it writes every word on every page of the result matrix — the expected
// best case for VM-DSM (one amortized fault per result page) and the
// worst case for RT-DSM (a dirtybit set on every result store).
package matmul

import (
	"fmt"

	"midway"
	"midway/internal/apps"
)

// Config sizes the computation.
type Config struct {
	// N is the matrix dimension.
	N int
	// CyclesPerInner is the simulated cost of one multiply-add plus its
	// loads on the reference processor.
	CyclesPerInner uint64
	// Seed generates the input matrices.
	Seed int64
}

// Default returns a seconds-scale configuration.
func Default() Config { return Config{N: 96, CyclesPerInner: 20, Seed: 42} }

// Paper returns the paper's input size (512×512).
func Paper() Config { return Config{N: 512, CyclesPerInner: 20, Seed: 42} }

// Sequential computes the product without the DSM, returning the result
// matrix in row-major order.  It is both the correctness oracle and the
// standalone-version reference.
func Sequential(cfg Config) []float64 {
	a, b := inputs(cfg)
	n := cfg.N
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = sum
		}
	}
	return c
}

// inputs generates the A and B matrices deterministically from the seed.
func inputs(cfg Config) (a, b []float64) {
	rng := apps.NewRand(cfg.Seed)
	n := cfg.N
	a = make([]float64, n*n)
	b = make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()*2 - 1
	}
	for i := range b {
		b[i] = rng.Float64()*2 - 1
	}
	return a, b
}

// Checksum digests a result matrix into a single float: a weighted sum
// that is independent of summation order across processors (each element
// is produced by exactly one processor with a fixed-order inner loop).
func Checksum(c []float64) float64 {
	var sum float64
	for i, v := range c {
		sum += v * float64(i%97+1)
	}
	return sum
}

// Run builds the shared matrices, executes the parallel multiply under the
// given DSM configuration, verifies against the sequential oracle, and
// returns the measurements.
func Run(mcfg midway.Config, cfg Config) (apps.Result, error) {
	sys, err := midway.NewSystem(mcfg)
	if err != nil {
		return apps.Result{}, err
	}
	n := cfg.N
	procs := mcfg.Nodes

	// A and B are read-only inputs, loaded identically by every process
	// at startup; C is written through the DSM.  Doubleword lines match
	// the floating-point common case of Section 3.1.
	aArr := sys.AllocF64("matmul.A", n*n, 8, midway.WithGranularity(midway.GranCoarse))
	bArr := sys.AllocF64("matmul.B", n*n, 8, midway.WithGranularity(midway.GranCoarse))
	cArr := sys.AllocF64("matmul.C", n*n, 8, midway.WithGranularity(midway.GranCoarse))

	aIn, bIn := inputs(cfg)
	presetF64s(sys, aArr, aIn)
	presetF64s(sys, bArr, bIn)

	// Each processor's block of C rows is bound to a per-processor lock;
	// a final bound barrier makes the whole result consistent everywhere.
	locks := make([]midway.LockID, procs)
	for pr := 0; pr < procs; pr++ {
		lo, hi := apps.Partition(n, procs, pr)
		locks[pr] = sys.NewLock(fmt.Sprintf("matmul.rows%d", pr), cArr.Slice(lo*n, hi*n))
	}
	done := sys.NewBarrier("matmul.done", cArr.Range())
	parts := make([][]midway.Range, procs)
	for pr := 0; pr < procs; pr++ {
		lo, hi := apps.Partition(n, procs, pr)
		parts[pr] = []midway.Range{cArr.Slice(lo*n, hi*n)}
	}
	sys.SetBarrierParts(done, parts)

	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		lo, hi := apps.Partition(n, procs, me)
		p.Acquire(locks[me])
		row := make([]float64, n)
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				var sum float64
				for k := 0; k < n; k++ {
					sum += aArr.Get(p, i*n+k) * bArr.Get(p, k*n+j)
				}
				// Arithmetic cost of the inner loop; the loads and the
				// result store charge themselves.
				p.Compute(cfg.CyclesPerInner * uint64(n))
				row[j] = sum
			}
			// One fused instrumented store per result row: identical
			// simulated costs to element-wise stores, one trap dispatch.
			cArr.SetRange(p, i*n, row)
		}
		p.Release(locks[me])
		p.Barrier(done)
	})
	if err != nil {
		return apps.Result{}, err
	}

	got := make([]float64, n*n)
	readF64s(sys, cArr, got)
	want := Sequential(cfg)
	for i := range want {
		if !apps.CloseEnough(got[i], want[i], 1e-9) {
			return apps.Result{}, fmt.Errorf("matmul: C[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	return apps.Collect("matrix", sys, mcfg, Checksum(got)), nil
}

func presetF64s(sys *midway.System, arr midway.F64Array, vals []float64) {
	for i, v := range vals {
		arr.Preset(sys, i, v)
	}
}

func readF64s(sys *midway.System, arr midway.F64Array, dst []float64) {
	for i := range dst {
		dst[i] = sys.ReadFinalF64(arr.At(i))
	}
}
