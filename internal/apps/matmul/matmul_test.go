package matmul

import (
	"fmt"
	"testing"

	"midway"
	"midway/internal/apps"
)

func TestSequentialDeterministic(t *testing.T) {
	cfg := Config{N: 16, CyclesPerInner: 20, Seed: 7}
	a := Checksum(Sequential(cfg))
	b := Checksum(Sequential(cfg))
	if a != b {
		t.Fatalf("oracle not deterministic: %g vs %g", a, b)
	}
}

func TestRunAllStrategies(t *testing.T) {
	cfg := Config{N: 32, CyclesPerInner: 20, Seed: 3}
	want := Checksum(Sequential(cfg))
	for _, strat := range []midway.Strategy{midway.RT, midway.VM, midway.Blast, midway.TwinDiff} {
		for _, procs := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%v/%dp", strat, procs), func(t *testing.T) {
				res, err := Run(midway.Config{Nodes: procs, Strategy: strat}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := apps.CheckClose("checksum", res.Checksum, want, 1e-9); err != nil {
					t.Error(err)
				}
				if res.Seconds <= 0 {
					t.Errorf("no simulated time accumulated")
				}
			})
		}
	}
}

func TestStandalone(t *testing.T) {
	cfg := Config{N: 24, CyclesPerInner: 20, Seed: 3}
	res, err := Run(midway.Config{Nodes: 1, Strategy: midway.Standalone}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.DirtybitsSet != 0 || res.Mean.WriteFaults != 0 {
		t.Errorf("standalone run performed write detection: %+v", res.Mean)
	}
}

func TestTrappingShape(t *testing.T) {
	// VM-DSM should amortize: far fewer faults than RT dirtybit sets.
	cfg := Config{N: 64, CyclesPerInner: 20, Seed: 3}
	rt, err := Run(midway.Config{Nodes: 2, Strategy: midway.RT}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := Run(midway.Config{Nodes: 2, Strategy: midway.VM}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Mean.DirtybitsSet == 0 {
		t.Fatal("RT run set no dirtybits")
	}
	if vm.Mean.WriteFaults == 0 {
		t.Fatal("VM run took no write faults")
	}
	if vm.Mean.WriteFaults*10 > rt.Mean.DirtybitsSet {
		t.Errorf("expected faults << dirtybit sets; got %d faults vs %d sets",
			vm.Mean.WriteFaults, rt.Mean.DirtybitsSet)
	}
}

// TestWriteOncePattern: matrix-multiply writes every result word exactly
// once — the amortization best case the paper selects it for.
func TestWriteOncePattern(t *testing.T) {
	cfg := Config{N: 32, CyclesPerInner: 20, Seed: 3}
	res, err := Run(midway.Config{Nodes: 2, Strategy: midway.RT}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(cfg.N * cfg.N); res.Total.DirtybitsSet != want {
		t.Errorf("dirtybits set = %d, want exactly %d (one store per result element)",
			res.Total.DirtybitsSet, want)
	}
}
