package cholesky

import (
	"fmt"
	"math"
	"testing"

	"midway"
	"midway/internal/apps"
)

func TestSequentialFactors(t *testing.T) {
	cfg := Config{N: 24, Band: 6, CyclesPerElem: 15, Seed: 2}
	a := matrix(cfg)
	l := Sequential(cfg)
	n := cfg.N
	// Check A = L·Lᵀ on the lower triangle.
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			var sum float64
			for k := 0; k <= j; k++ {
				sum += l[k*n+i] * l[k*n+j]
			}
			if math.Abs(sum-a[j*n+i]) > 1e-9 {
				t.Fatalf("L·Lᵀ[%d,%d] = %g, want %g", i, j, sum, a[j*n+i])
			}
		}
	}
}

func TestRunAllStrategies(t *testing.T) {
	cfg := Config{N: 48, Band: 8, CyclesPerElem: 15, Seed: 6}
	want := Checksum(cfg, Sequential(cfg))
	for _, strat := range []midway.Strategy{midway.RT, midway.VM, midway.Blast, midway.TwinDiff} {
		for _, procs := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%v/%dp", strat, procs), func(t *testing.T) {
				res, err := Run(midway.Config{Nodes: procs, Strategy: strat}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := apps.CheckClose("checksum", res.Checksum, want, 1e-8); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

func TestFineGrainSharing(t *testing.T) {
	// Cholesky's per-column locks should generate the most lock traffic
	// per unit of data among the applications.
	cfg := Config{N: 64, Band: 12, CyclesPerElem: 15, Seed: 6}
	res, err := Run(midway.Config{Nodes: 4, Strategy: midway.RT}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.LockTransfers < uint64(cfg.N) {
		t.Errorf("expected at least %d lock transfers, got %d", cfg.N, res.Total.LockTransfers)
	}
}

// TestPipelinedDependencyWaits: the fan-in design acquires each dependency
// column in shared mode, so lock transfers scale with the dependency count
// (roughly n×min(band, procs-1) reads plus the final collection pass).
func TestPipelinedDependencyWaits(t *testing.T) {
	cfg := Config{N: 64, Band: 12, CyclesPerElem: 15, Seed: 6}
	res, err := Run(midway.Config{Nodes: 4, Strategy: midway.RT}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	minTransfers := uint64(cfg.N) // at least the final collection pass
	if res.Total.LockTransfers < minTransfers {
		t.Errorf("lock transfers = %d, want >= %d", res.Total.LockTransfers, minTransfers)
	}
	// Dependency reads dominate: far more transfers than columns.
	if res.Total.LockTransfers < 2*uint64(cfg.N) {
		t.Errorf("expected dependency-read traffic beyond the collection pass; got %d transfers",
			res.Total.LockTransfers)
	}
}
