// Package cholesky implements the paper's cholesky application (from the
// SPLASH suite): a parallel Cholesky factorization of a sparse symmetric
// positive-definite matrix.  Given positive-definite A, it finds lower
// triangular L with A = L·Lᵀ.
//
// The matrix is banded (the sparse structure), stored by column, and
// factored left-looking in a pipelined fan-in: every column is guarded by
// its own lock, held exclusively by the column's owner from program start
// until the column is factored.  To factor column j, its owner acquires
// each dependency column k < j in shared mode — blocking until k's owner
// has factored and released it — and applies k's update to j.  The
// per-column locks guard small segments and are requested constantly: the
// program exhibits fine-grain sharing and moves the most data per unit of
// computation of the five applications.
package cholesky

import (
	"fmt"
	"math"

	"midway"
	"midway/internal/apps"
)

// Config sizes the factorization.
type Config struct {
	// N is the matrix dimension.
	N int
	// Band is the half-bandwidth: A[i][j] may be nonzero only when
	// |i-j| <= Band.  Banded Cholesky produces no fill outside the band.
	Band int
	// CyclesPerElem is the simulated cost of one multiply-subtract in the
	// column update, beyond its loads and stores.
	CyclesPerElem uint64
	// Seed generates the matrix.
	Seed int64
}

// Default returns a seconds-scale configuration.
func Default() Config { return Config{N: 96, Band: 12, CyclesPerElem: 15, Seed: 42} }

// Paper returns a configuration of comparable relative weight to the
// paper's sparse input (the heaviest of the five applications).
func Paper() Config { return Config{N: 600, Band: 32, CyclesPerElem: 15, Seed: 42} }

// matrix generates the banded SPD input in column-major order: column j
// occupies [j*n, (j+1)*n), rows outside the band are zero.  Diagonal
// dominance guarantees positive definiteness.
func matrix(cfg Config) []float64 {
	n, b := cfg.N, cfg.Band
	rng := apps.NewRand(cfg.Seed)
	a := make([]float64, n*n)
	// Symmetric band: generate below-diagonal entries, mirror to keep the
	// oracle simple (only the lower triangle is factored).
	for j := 0; j < n; j++ {
		for i := j + 1; i <= j+b && i < n; i++ {
			v := rng.Float64()*2 - 1
			a[j*n+i] = v
			a[i*n+j] = v
		}
	}
	for j := 0; j < n; j++ {
		var rowSum float64
		for i := max(0, j-b); i <= j+b && i < n; i++ {
			if i != j {
				rowSum += math.Abs(a[j*n+i])
			}
		}
		a[j*n+j] = rowSum + 1
	}
	return a
}

// Sequential factors the matrix without the DSM, returning the lower
// triangle L in column-major order (band only).  It applies updates
// left-looking in ascending dependency order — the same expression order
// as the parallel version, so results match exactly.
func Sequential(cfg Config) []float64 {
	n, b := cfg.N, cfg.Band
	a := matrix(cfg)
	for j := 0; j < n; j++ {
		segEnd := min(j+b+1, n)
		for k := max(0, j-b); k < j; k++ {
			ljk := a[k*n+j]
			if ljk == 0 {
				continue
			}
			depEnd := min(k+b+1, n)
			for i := j; i < depEnd; i++ {
				a[j*n+i] -= a[k*n+i] * ljk
			}
		}
		d := math.Sqrt(a[j*n+j])
		a[j*n+j] = d
		for i := j + 1; i < segEnd; i++ {
			a[j*n+i] /= d
		}
	}
	// Zero the strict upper triangle for a clean digest.
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a[j*n+i] = 0
		}
	}
	return a
}

// Checksum digests the factor's band.
func Checksum(cfg Config, l []float64) float64 {
	n, b := cfg.N, cfg.Band
	var sum float64
	for j := 0; j < n; j++ {
		for i := j; i <= j+b && i < n; i++ {
			sum += l[j*n+i] * float64((i+j)%41+1)
		}
	}
	return sum
}

// Run executes the parallel factorization under the given DSM
// configuration, verifies against the oracle, and returns measurements.
func Run(mcfg midway.Config, cfg Config) (apps.Result, error) {
	sys, err := midway.NewSystem(mcfg)
	if err != nil {
		return apps.Result{}, err
	}
	n, b := cfg.N, cfg.Band
	procs := mcfg.Nodes

	cols := sys.AllocF64("cholesky.A", n*n, 8, midway.WithGranularity(midway.GranFine))
	for i, v := range matrix(cfg) {
		cols.Preset(sys, i, v)
	}

	// colLock[j] guards column j's band segment.  Creating the column
	// locks first makes lock j's manager — and therefore its initial
	// owner — processor j mod procs, which is exactly the column's owner.
	colLock := make([]midway.LockID, n)
	for j := 0; j < n; j++ {
		segEnd := min(j+b+1, n)
		colLock[j] = sys.NewLock(fmt.Sprintf("cholesky.col%d", j),
			cols.Slice(j*n+j, j*n+segEnd))
	}
	start := sys.NewBarrier("cholesky.start")
	done := sys.NewBarrier("cholesky.done")

	err = sys.Run(func(p *midway.Proc) {
		me := p.ID()
		depBuf := make([]float64, b+1) // private copy of a dependency column

		// Hold every owned column before anyone can request it, so a
		// shared acquisition blocks until the column is factored.
		for j := me; j < n; j += procs {
			p.Acquire(colLock[j])
		}
		p.Barrier(start)

		for j := me; j < n; j += procs {
			segEnd := min(j+b+1, n)
			// Pull in each dependency as it completes and apply its
			// update to our column.
			for k := max(0, j-b); k < j; k++ {
				p.AcquireShared(colLock[k])
				depEnd := min(k+b+1, n)
				ljk := cols.Get(p, k*n+j)
				for i := j; i < depEnd; i++ {
					depBuf[i-j] = cols.Get(p, k*n+i)
				}
				p.Release(colLock[k])
				if ljk == 0 {
					continue
				}
				for i := j; i < depEnd; i++ {
					a := cols.At(j*n + i)
					p.Compute(cfg.CyclesPerElem)
					p.WriteF64(a, p.ReadF64(a)-depBuf[i-j]*ljk)
				}
			}
			// Factor and publish the column.
			d := math.Sqrt(cols.Get(p, j*n+j))
			cols.Set(p, j*n+j, d)
			for i := j + 1; i < segEnd; i++ {
				p.Compute(cfg.CyclesPerElem)
				cols.Set(p, j*n+i, cols.Get(p, j*n+i)/d)
			}
			p.Release(colLock[j])
		}
		p.Barrier(done)

		// Leave the final factor consistent at processor 0.
		if me == 0 {
			for j := 0; j < n; j++ {
				p.AcquireShared(colLock[j])
				p.Release(colLock[j])
			}
		}
		p.Barrier(done)
	})
	if err != nil {
		return apps.Result{}, err
	}

	got := make([]float64, n*n)
	for j := 0; j < n; j++ {
		segEnd := min(j+b+1, n)
		for i := j; i < segEnd; i++ {
			got[j*n+i] = sys.ReadFinalF64(cols.At(j*n + i))
		}
	}
	want := Sequential(cfg)
	for j := 0; j < n; j++ {
		segEnd := min(j+b+1, n)
		for i := j; i < segEnd; i++ {
			if !apps.CloseEnough(got[j*n+i], want[j*n+i], 1e-9) {
				return apps.Result{}, fmt.Errorf("cholesky: L[%d,%d] = %g, want %g",
					i, j, got[j*n+i], want[j*n+i])
			}
		}
	}
	return apps.Collect("cholesky", sys, mcfg, Checksum(cfg, got)), nil
}
