package core

import (
	"fmt"

	"midway/internal/cost"
	"midway/internal/diff"
	"midway/internal/memory"
	"midway/internal/proto"
	"midway/internal/vmem"
)

// blastDetector implements the paper's simplest alternative (Section 3.5):
// no write detection at all.  Every transfer "blasts" all data bound to
// the synchronization object.  Writes are free, but sparse writers pay for
// shipping untouched data at every synchronization point — the redundancy
// the dirtybit history exists to eliminate.
type blastDetector struct {
	n *Node
}

func (d *blastDetector) trapWrite(memory.Addr, uint32, *memory.Region) {}

func (d *blastDetector) collectLock(lk *lockState, req *proto.LockAcquire, exclusive bool) (*proto.LockGrant, cost.Cycles) {
	n := d.n
	t := n.lamport.Tick()
	if exclusive {
		lk.inc++
	}
	ups := n.readBoundUpdates(lk.binding, int64(lk.inc))
	cycles := cost.CopyCost(n.cost.CopyWarmPerKB, int(rangesBytes(lk.binding)))
	lk.rebound = false
	return &proto.LockGrant{
		Time:        t,
		Incarnation: lk.inc,
		Base:        lk.inc,
		Updates:     ups,
		Full:        true,
	}, cycles
}

func (d *blastDetector) applyLock(lk *lockState, g *proto.LockGrant) cost.Cycles {
	n := d.n
	n.lamport.Witness(g.Time)
	var cycles cost.Cycles
	for _, u := range g.Updates {
		n.inst.WriteBytes(u.Range(), u.Data)
		cycles += cost.CopyCost(n.cost.CopyWarmPerKB, len(u.Data))
	}
	lk.inc = g.Incarnation
	lk.lastInc = g.Incarnation
	return cycles
}

func (d *blastDetector) collectBarrier(b *barrierState) ([]proto.Update, cost.Cycles) {
	n := d.n
	if len(b.binding) == 0 {
		return nil, 0
	}
	// With no detection, a node cannot know which bound data it modified.
	// The program must declare each node's write partition with
	// SetBarrierParts; the node then blasts exactly its own part.
	parts := b.obj.parts
	if parts == nil {
		panic(fmt.Sprintf("core: Blast strategy requires SetBarrierParts for bound barrier %s", b.obj.name))
	}
	if n.id >= len(parts) {
		return nil, 0
	}
	ups := n.readBoundUpdates(parts[n.id], int64(b.epoch+1))
	cycles := cost.CopyCost(n.cost.CopyWarmPerKB, int(rangesBytes(parts[n.id])))
	return ups, cycles
}

func (d *blastDetector) applyBarrier(b *barrierState, rel *proto.BarrierRelease) cost.Cycles {
	n := d.n
	var cycles cost.Cycles
	for _, u := range rel.Updates {
		n.inst.WriteBytes(u.Range(), u.Data)
		cycles += cost.CopyCost(n.cost.CopyWarmPerKB, len(u.Data))
	}
	return cycles
}

// twinDetector implements the paper's second alternative (Section 3.5):
// twinning and differencing without write detection.  Every shared datum
// bound to a synchronization object is twinned on the processor that
// writes it; at each synchronization point all bound data is compared
// against its twin, modified and unmodified alike.  Writes are free and
// only modified data is shipped, but collection cost is proportional to
// the amount of bound data rather than the amount of dirty data, and the
// twins double the storage requirement.  Incarnation histories are still
// required to propagate chains of updates, exactly as the paper notes.
type twinDetector struct {
	n *Node
}

func (d *twinDetector) trapWrite(memory.Addr, uint32, *memory.Region) {}

// diffBound compares the current bound data against the twin (a zero
// buffer stands in when no twin exists yet, matching the all-zero initial
// contents of shared memory) and returns the modified spans as updates.
func (d *twinDetector) diffBound(binding []memory.Range, twin []byte, ts int64) ([]proto.Update, []byte, cost.Cycles) {
	n := d.n
	cur := n.concatBound(binding)
	if twin == nil {
		// First synchronization over this binding: the last-synchronized
		// state is the pristine pre-run image every node started from.
		twin = n.sys.pristineBound(binding)
	}
	if len(twin) != len(cur) {
		panic(fmt.Sprintf("core: twin size %d does not match bound data size %d", len(twin), len(cur)))
	}
	df := diff.Compute(cur, twin)

	// Cost: one diffing pass over the bound data (charged at the page
	// diff rate, interpolated by run count as for VM-DSM) plus twin
	// maintenance for the modified bytes.
	pages := (len(cur) + vmem.PageSize - 1) / vmem.PageSize
	var cycles cost.Cycles
	if pages > 0 {
		perPage := n.cost.DiffCost(len(df.Runs)/pages+1, vmem.WordsPerPage)
		cycles = cost.Cycles(pages) * perPage
		cycles += cost.CopyCost(n.cost.CopyWarmPerKB, df.Bytes())
	}
	n.st.PagesDiffed.Add(uint64(pages))
	n.st.DiffRuns.Add(uint64(len(df.Runs)))
	n.st.BytesScanned.Add(uint64(len(cur)))
	n.st.DirtyBytes.Add(uint64(df.Bytes()))

	// Translate buffer-relative runs back to addresses.
	var ups []proto.Update
	for _, run := range df.Runs {
		off := run.Off
		// A run may straddle consecutive binding ranges in the
		// concatenated buffer; split it per range.
		rem := run.Data
		base := uint32(0)
		for _, rg := range binding {
			if len(rem) == 0 {
				break
			}
			if off >= base+rg.Size {
				base += rg.Size
				continue
			}
			inRange := min(uint32(len(rem)), base+rg.Size-off)
			ups = append(ups, proto.Update{
				Addr: rg.Addr + memory.Addr(off-base),
				TS:   ts,
				Data: rem[:inRange],
			})
			rem = rem[inRange:]
			off += inRange
			base += rg.Size
		}
	}
	return ups, cur, cycles
}

func (d *twinDetector) collectLock(lk *lockState, req *proto.LockAcquire, exclusive bool) (*proto.LockGrant, cost.Cycles) {
	n := d.n
	t := n.lamport.Tick()
	boundBytes := rangesBytes(lk.binding)

	if lk.rebound {
		// A rebinding invalidates the twin (Rebind already dropped it)
		// and the history: ship full data.
		newInc := lk.inc + 1
		lk.inc = newInc
		lk.history = nil
		lk.baseInc = newInc
		lk.lastInc = newInc
		lk.rebound = false
		lk.twin = n.concatBound(lk.binding)
		ups := n.readBoundUpdates(lk.binding, int64(newInc))
		cycles := cost.CopyCost(n.cost.CopyWarmPerKB, int(boundBytes))
		return &proto.LockGrant{
			Time:        t,
			Incarnation: newInc,
			Base:        newInc,
			Updates:     ups,
			Full:        true,
		}, cycles
	}

	// Shared and exclusive grants share the twinning machinery; every
	// exclusive transfer increments the incarnation, while a shared grant
	// advances it only when the diff found fresh modifications.
	ups, cur, cycles := d.diffBound(lk.binding, lk.twin, 0)
	lk.twin = cur
	newInc := lk.inc
	if exclusive {
		newInc++
	}
	if len(ups) > 0 {
		if !exclusive {
			newInc++
		}
		for i := range ups {
			ups[i].TS = int64(newInc)
		}
		lk.history = append(lk.history, proto.HistoryEntry{Incarnation: newInc, Updates: ups})
	}
	lk.inc = newInc
	lk.lastInc = newInc

	full := req.LastIncarnation < lk.baseInc
	var entries []proto.HistoryEntry
	if !full {
		total := 0
		for _, h := range lk.history {
			if h.Incarnation > req.LastIncarnation {
				entries = append(entries, h)
				total += proto.UpdateBytes(h.Updates)
			}
		}
		if n.sys.cfg.CombineIncarnations && len(entries) > 1 {
			combined, c := combineEntries(entries, n.cost)
			cycles += c
			g := &proto.LockGrant{
				Time:        t,
				Incarnation: newInc,
				Base:        lk.baseInc,
				Updates:     combined,
			}
			d.trimHistory(lk, boundBytes)
			return g, cycles
		}
		if uint32(total) > boundBytes {
			full = true
		}
	}
	if full {
		fullUps := n.readBoundUpdates(lk.binding, int64(newInc))
		cycles += cost.CopyCost(n.cost.CopyWarmPerKB, int(boundBytes))
		lk.history = nil
		lk.baseInc = newInc
		return &proto.LockGrant{
			Time:        t,
			Incarnation: newInc,
			Base:        newInc,
			Updates:     fullUps,
			Full:        true,
		}, cycles
	}
	g := &proto.LockGrant{
		Time:        t,
		Incarnation: newInc,
		Base:        lk.baseInc,
		History:     entries,
	}
	d.trimHistory(lk, boundBytes)
	return g, cycles
}

func (d *twinDetector) trimHistory(lk *lockState, boundBytes uint32) {
	total := 0
	for _, h := range lk.history {
		total += proto.UpdateBytes(h.Updates)
	}
	for len(lk.history) > 0 && uint32(total) > boundBytes {
		total -= proto.UpdateBytes(lk.history[0].Updates)
		lk.baseInc = lk.history[0].Incarnation
		lk.history = lk.history[1:]
	}
}

func (d *twinDetector) applyLock(lk *lockState, g *proto.LockGrant) cost.Cycles {
	n := d.n
	n.lamport.Witness(g.Time)
	var cycles cost.Cycles
	if g.Full {
		for _, u := range g.Updates {
			n.inst.WriteBytes(u.Range(), u.Data)
			cycles += cost.CopyCost(n.cost.CopyWarmPerKB, len(u.Data))
		}
		lk.history = nil
		lk.baseInc = g.Base
	} else {
		if len(g.Updates) > 0 { // combined incremental grant
			for _, u := range g.Updates {
				n.inst.WriteBytes(u.Range(), u.Data)
				cycles += cost.CopyCost(n.cost.CopyWarmPerKB, len(u.Data))
			}
			lk.history = append(lk.history,
				proto.HistoryEntry{Incarnation: g.Incarnation, Updates: g.Updates})
		}
		for _, h := range g.History {
			for _, u := range h.Updates {
				n.inst.WriteBytes(u.Range(), u.Data)
				cycles += cost.CopyCost(n.cost.CopyWarmPerKB, len(u.Data))
			}
		}
		lk.history = append(lk.history, g.History...)
		d.trimHistory(lk, rangesBytes(g.Binding))
	}
	// The local copy now matches the synchronized state: refresh the twin
	// so the next diff reports only genuinely local modifications.
	lk.twin = n.concatBound(g.Binding)
	cycles += cost.CopyCost(n.cost.CopyWarmPerKB, len(lk.twin))
	lk.inc = g.Incarnation
	lk.lastInc = g.Incarnation
	return cycles
}

func (d *twinDetector) collectBarrier(b *barrierState) ([]proto.Update, cost.Cycles) {
	if len(b.binding) == 0 {
		return nil, 0
	}
	ups, cur, cycles := d.diffBound(b.binding, b.twin, int64(b.epoch+1))
	b.twin = cur
	return ups, cycles
}

func (d *twinDetector) applyBarrier(b *barrierState, rel *proto.BarrierRelease) cost.Cycles {
	n := d.n
	var cycles cost.Cycles
	for _, u := range rel.Updates {
		n.inst.WriteBytes(u.Range(), u.Data)
		cycles += cost.CopyCost(n.cost.CopyWarmPerKB, len(u.Data))
	}
	if len(b.binding) > 0 {
		b.twin = n.concatBound(b.binding)
		cycles += cost.CopyCost(n.cost.CopyWarmPerKB, len(b.twin))
	}
	return cycles
}
