package core

import (
	"testing"

	"midway/internal/memory"
)

// Detector-level white-box tests (dirtybit scans, history trimming, diff
// distribution) live in internal/detect with the mechanisms themselves.

func TestPristineBound(t *testing.T) {
	s := newTestSystem(t, 1, TwinDiff)
	addr := s.MustAlloc("data", 4096, 3)
	s.Preset(addr+8, []byte{1, 2, 3, 4})
	buf := s.pristineBound([]memory.Range{{Addr: addr, Size: 16}})
	want := []byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 0, 0, 0, 0}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("pristine[%d] = %d, want %d", i, buf[i], want[i])
		}
	}
}
