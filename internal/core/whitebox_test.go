package core

import (
	"testing"

	"midway/internal/memory"
	"midway/internal/proto"
)

// buildNode returns a started single-node system plus its node, for poking
// at detector internals directly.
func buildNode(t *testing.T, strat Strategy) (*System, *Node, memory.Addr) {
	t.Helper()
	s := newTestSystem(t, 1, strat)
	addr := s.MustAlloc("data", 4096, 3)
	return s, s.nodes[0], addr
}

func TestRangesBytes(t *testing.T) {
	rs := []memory.Range{{Addr: 0, Size: 10}, {Addr: 100, Size: 22}}
	if got := rangesBytes(rs); got != 32 {
		t.Errorf("rangesBytes = %d", got)
	}
	if got := rangesBytes(nil); got != 0 {
		t.Errorf("rangesBytes(nil) = %d", got)
	}
}

func TestFilterUpdates(t *testing.T) {
	us := []proto.Update{
		{Addr: 100, TS: 1, Data: make([]byte, 20)}, // spans [100,120)
		{Addr: 200, TS: 2, Data: make([]byte, 8)},  // outside
	}
	binding := []memory.Range{{Addr: 110, Size: 50}}
	out := filterUpdates(us, binding)
	if len(out) != 1 {
		t.Fatalf("filtered to %d updates, want 1", len(out))
	}
	if out[0].Addr != 110 || len(out[0].Data) != 10 || out[0].TS != 1 {
		t.Errorf("clipped update = %+v", out[0])
	}
}

func TestReadBoundUpdates(t *testing.T) {
	s, n, addr := buildNode(t, RT)
	_ = s
	n.inst.WriteU64(addr+16, 0xAABB)
	ups := n.readBoundUpdates([]memory.Range{
		{Addr: addr, Size: 32},
		{Addr: addr + 64, Size: 0}, // empty ranges are skipped
	}, 7)
	if len(ups) != 1 {
		t.Fatalf("%d updates", len(ups))
	}
	if ups[0].TS != 7 || len(ups[0].Data) != 32 {
		t.Errorf("update = %+v", ups[0])
	}
	if ups[0].Data[16] != 0xBB {
		t.Errorf("data not read from instance: %x", ups[0].Data[16])
	}
}

func TestPristineBound(t *testing.T) {
	s, _, addr := buildNode(t, TwinDiff)
	s.Preset(addr+8, []byte{1, 2, 3, 4})
	buf := s.pristineBound([]memory.Range{{Addr: addr, Size: 16}})
	want := []byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 0, 0, 0, 0}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("pristine[%d] = %d, want %d", i, buf[i], want[i])
		}
	}
}

// TestScanBindingStampsPending checks the lazy-timestamp mechanics at the
// dirtybit level: pending lines get the transfer's stamp and are shipped;
// already-stamped lines older than the requester's time are skipped.
func TestScanBindingStampsPending(t *testing.T) {
	_, n, addr := buildNode(t, RT)
	det := n.det.(*rtDetector)
	r := n.sys.layout.RegionFor(addr)
	bits := n.inst.Dirtybits(r)

	// Three lines: one pending, one stamped at time 5, one clean.
	bits[r.LineIndex(addr)] = memory.DirtyPending
	bits[r.LineIndex(addr+8)] = 5
	binding := []memory.Range{{Addr: addr, Size: 24}}

	// Requester last saw time 5: only the pending line ships.
	sc := det.scanBinding(binding, 5, 9)
	if len(sc.updates) != 1 {
		t.Fatalf("%d updates, want 1", len(sc.updates))
	}
	if sc.updates[0].Addr != addr || sc.updates[0].TS != 9 {
		t.Errorf("update = %+v", sc.updates[0])
	}
	if bits[r.LineIndex(addr)] != 9 {
		t.Errorf("pending line not stamped: %d", bits[r.LineIndex(addr)])
	}

	// Requester last saw time 2: the stamped line (5 > 2) ships too, and
	// contiguity does not merge across differing timestamps.
	bits[r.LineIndex(addr)] = memory.DirtyPending
	sc = det.scanBinding(binding, 2, 11)
	if len(sc.updates) != 2 {
		t.Fatalf("%d updates, want 2 (differing stamps must not merge)", len(sc.updates))
	}
}

// TestScanBindingCoalesces: contiguous lines with equal stamps pack into
// one update record.
func TestScanBindingCoalesces(t *testing.T) {
	_, n, addr := buildNode(t, RT)
	det := n.det.(*rtDetector)
	r := n.sys.layout.RegionFor(addr)
	bits := n.inst.Dirtybits(r)
	for i := 0; i < 8; i++ {
		bits[r.LineIndex(addr+memory.Addr(8*i))] = memory.DirtyPending
	}
	sc := det.scanBinding([]memory.Range{{Addr: addr, Size: 64}}, 0, 3)
	if len(sc.updates) != 1 {
		t.Fatalf("8 contiguous pending lines produced %d updates, want 1", len(sc.updates))
	}
	if len(sc.updates[0].Data) != 64 {
		t.Errorf("coalesced update carries %d bytes, want 64", len(sc.updates[0].Data))
	}
}

// TestVMTrimHistory: the owner's retained history honors the full-data
// bound and advances baseInc past dropped entries.
func TestVMTrimHistory(t *testing.T) {
	_, n, addr := buildNode(t, VM)
	det := n.det.(*vmDetector)
	lk := &lockState{binding: []memory.Range{{Addr: addr, Size: 64}}}
	mk := func(inc uint64, bytes int) proto.HistoryEntry {
		return proto.HistoryEntry{Incarnation: inc,
			Updates: []proto.Update{{Addr: addr, TS: int64(inc), Data: make([]byte, bytes)}}}
	}
	lk.history = []proto.HistoryEntry{mk(1, 40), mk(2, 40), mk(3, 40)}
	det.trimHistory(lk, 64)
	if len(lk.history) != 1 || lk.history[0].Incarnation != 3 {
		t.Fatalf("history after trim: %d entries", len(lk.history))
	}
	if lk.baseInc != 2 {
		t.Errorf("baseInc = %d, want 2 (the newest dropped incarnation)", lk.baseInc)
	}
}

// TestVMDistributeAcrossObjects: a page diff's runs land in the
// accumulator of every object whose binding overlaps them — the false
// sharing case of two locks on one page.
func TestVMDistributeAcrossObjects(t *testing.T) {
	s := newTestSystem(t, 1, VM)
	addr := s.MustAlloc("page", 4096, 3)
	lockA := s.NewLock("A", memory.Range{Addr: addr, Size: 64})
	lockB := s.NewLock("B", memory.Range{Addr: addr + 64, Size: 64})
	err := s.Run(func(p *Proc) {
		// Dirty both locks' data on the same page, under their locks.
		p.Acquire(LockID(lockA))
		p.WriteU64(addr, 1)
		p.Release(LockID(lockA))
		p.Acquire(LockID(lockB))
		p.WriteU64(addr+64, 2)
		p.Release(LockID(lockB))
	})
	if err != nil {
		t.Fatal(err)
	}
	n := s.nodes[0]
	det := n.det.(*vmDetector)
	n.mu.Lock()
	defer n.mu.Unlock()
	// Collect for lock A only: the diff of the shared page must deposit
	// B's modification into B's accumulator rather than dropping it.
	det.diffAndDistribute(n.lockState(uint32(lockA)).binding)
	a := n.lockState(uint32(lockA))
	b := n.lockState(uint32(lockB))
	if len(a.accum) != 1 || a.accum[0].Addr != addr {
		t.Errorf("lock A accumulated %+v", a.accum)
	}
	if len(b.accum) != 1 || b.accum[0].Addr != addr+64 {
		t.Errorf("lock B accumulated %+v (diff reuse lost the false-sharing data)", b.accum)
	}
	// The page is clean afterwards.
	if n.vm.DirtyPageCount() != 0 {
		t.Error("page not cleaned after diff")
	}
}
