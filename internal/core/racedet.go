package core

import (
	"midway/internal/memory"
	"midway/internal/race"
)

// Race-detector wiring (Config.RaceDetect).  The checker state is
// per-node and nil when the detector is off, so the store and
// synchronization hot paths pay one nil check — the same
// zero-cost-when-disabled contract the tracer honors.  The detector
// charges no simulated cycles and emits findings as obs events, so a
// detecting run's simulated results, statistics and (detector events
// aside) trace are identical to a non-detecting run's.

// setupRaceDetect builds the shared findings recorder and one checker
// per hosted node.  Called from Run after the layout and object table
// freeze, so the guard directory and barrier exemptions are complete.
func (s *System) setupRaceDetect() {
	rec := race.NewRecorder()
	s.raceRec = rec
	var guards []race.Guard
	var exempt []memory.Range
	for _, o := range s.objectsSnapshot() {
		switch o.kind {
		case ObjLock:
			guards = append(guards, race.Guard{Obj: int32(o.id), Name: o.name, Ranges: o.binding})
		case ObjBarrier:
			exempt = append(exempt, o.binding...)
		}
	}
	scheme := s.cfg.Scheme
	// Blast ships whole bindings rather than modified bytes, so every
	// barrier merge would overlap spuriously; "none" detects nothing.
	merge := scheme != "blast" && scheme != "none"
	// Only the pure lazy-stamped rt scheme keeps the per-line pending
	// sentinel accurate for every shared region (hybrid can strand
	// pending marks on regions it classifies as vm).
	incoming := scheme == "rt" && !s.cfg.EagerTimestamps
	for _, n := range s.nodes {
		if n == nil {
			continue
		}
		n.race = race.NewChecker(race.Config{
			Node:          n.id,
			Layout:        s.layout,
			Inst:          n.inst,
			Tracer:        s.obs,
			Rec:           rec,
			Guards:        guards,
			Exempt:        exempt,
			MergeCheck:    merge,
			IncomingCheck: incoming,
		})
	}
}

// RaceFindings returns the race detector's findings in a deterministic
// order, or nil when Config.RaceDetect is off.  Valid after Run.
func (s *System) RaceFindings() []race.Finding {
	if s.raceRec == nil {
		return nil
	}
	return s.raceRec.Findings()
}
