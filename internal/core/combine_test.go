package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"midway/internal/cost"
	"midway/internal/memory"
	"midway/internal/proto"
)

func TestCombineEntriesBasics(t *testing.T) {
	m := cost.Default()
	// Empty and singleton pass through.
	if ups, c := combineEntries(nil, m); ups != nil || c != 0 {
		t.Error("empty combine not a no-op")
	}
	one := []proto.HistoryEntry{{Incarnation: 3, Updates: []proto.Update{{Addr: 8, TS: 3, Data: []byte{1}}}}}
	if ups, _ := combineEntries(one, m); len(ups) != 1 {
		t.Error("singleton combine changed the entry")
	}

	// Overlapping incarnations: the newer value wins, adjacent spans
	// coalesce.
	entries := []proto.HistoryEntry{
		{Incarnation: 1, Updates: []proto.Update{{Addr: 100, TS: 1, Data: []byte{1, 1, 1, 1}}}},
		{Incarnation: 2, Updates: []proto.Update{{Addr: 102, TS: 2, Data: []byte{2, 2, 2, 2}}}},
	}
	ups, cycles := combineEntries(entries, m)
	if len(ups) != 1 {
		t.Fatalf("combined into %d updates, want 1", len(ups))
	}
	if ups[0].Addr != 100 || !bytes.Equal(ups[0].Data, []byte{1, 1, 2, 2, 2, 2}) {
		t.Errorf("combined update = %+v", ups[0])
	}
	if ups[0].TS != 2 {
		t.Errorf("combined TS = %d, want newest incarnation 2", ups[0].TS)
	}
	if cycles == 0 {
		t.Error("combining charged nothing")
	}
}

// TestCombineEquivalence: applying the combined set yields the same memory
// as applying the entries in incarnation order.
func TestCombineEquivalence(t *testing.T) {
	m := cost.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const base = 1000
		const size = 256
		var entries []proto.HistoryEntry
		for inc := 1; inc <= rng.Intn(5)+2; inc++ {
			var ups []proto.Update
			for k := 0; k < rng.Intn(4); k++ {
				off := rng.Intn(size - 8)
				ln := rng.Intn(8) + 1
				data := make([]byte, ln)
				rng.Read(data)
				ups = append(ups, proto.Update{Addr: memory.Addr(base + off), TS: int64(inc), Data: data})
			}
			entries = append(entries, proto.HistoryEntry{Incarnation: uint64(inc), Updates: ups})
		}

		sequential := make([]byte, size)
		for _, e := range entries {
			for _, u := range e.Updates {
				copy(sequential[int(u.Addr)-base:], u.Data)
			}
		}
		combined := make([]byte, size)
		ups, _ := combineEntries(entries, m)
		for _, u := range ups {
			copy(combined[int(u.Addr)-base:], u.Data)
		}
		if !bytes.Equal(sequential, combined) {
			return false
		}
		// Combined updates are disjoint and sorted.
		for i := 1; i < len(ups); i++ {
			if ups[i].Addr < ups[i-1].Range().End() {
				return false
			}
		}
		// Combined size never exceeds the union of addresses written.
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCombiningReducesTransfer builds the paper's redundancy scenario —
// the same small accumulator written in several incarnations before a
// stale requester returns — and checks that combining removes the
// redundant resends while preserving the result.
func TestCombiningReducesTransfer(t *testing.T) {
	run := func(combine bool) (uint64, uint64) {
		s, err := NewSystem(Config{Nodes: 4, Strategy: VM, CombineIncarnations: combine})
		if err != nil {
			t.Fatal(err)
		}
		// A 512-byte object whose first 32 bytes are rewritten by three
		// writers between visits of a fourth node.
		addr := s.MustAlloc("obj", 512, 3)
		lock := s.NewLock("obj", memory.Range{Addr: addr, Size: 512})
		bar := s.NewBarrier("round", 0)
		const rounds = 6
		err = s.Run(func(p *Proc) {
			for r := 0; r < rounds; r++ {
				if p.ID() != 3 {
					p.Acquire(lock)
					for w := 0; w < 4; w++ {
						p.WriteU64(addr+memory.Addr(8*w), uint64(r*10+p.ID()))
					}
					p.Release(lock)
				}
				p.Barrier(bar)
			}
			// The stale node returns once at the end.
			if p.ID() == 3 {
				p.Acquire(lock)
				if got := p.ReadU64(addr); got == 0 {
					panic("no data arrived")
				}
				p.Release(lock)
			}
			p.Barrier(bar)
		})
		if err != nil {
			t.Fatal(err)
		}
		total := s.TotalStats()
		return total.BytesTransferred, total.LockTransfers
	}
	plain, plainTransfers := run(false)
	combined, combinedTransfers := run(true)
	if plainTransfers != combinedTransfers {
		t.Logf("transfer counts differ (%d vs %d); comparing bytes anyway", plainTransfers, combinedTransfers)
	}
	if combined >= plain {
		t.Errorf("combining did not reduce transfer: %d vs %d bytes", combined, plain)
	}
}

// TestCombiningCorrectAcrossApps: the shared-counter and exchange
// workloads behave identically with combining on.
func TestCombiningCorrectAcrossApps(t *testing.T) {
	for _, strat := range []Strategy{VM, TwinDiff} {
		s, err := NewSystem(Config{Nodes: 4, Strategy: strat, CombineIncarnations: true})
		if err != nil {
			t.Fatal(err)
		}
		addr := s.MustAlloc("counter", 8, 3)
		lock := s.NewLock("counter", memory.Range{Addr: addr, Size: 8})
		const perNode = 25
		err = s.Run(func(p *Proc) {
			for i := 0; i < perNode; i++ {
				p.Acquire(lock)
				p.WriteU64(addr, p.ReadU64(addr)+1)
				p.Release(lock)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		for i := 0; i < 4; i++ {
			n := s.Node(i)
			n.mu.Lock()
			if n.lockState(uint32(lock)).owner {
				got = n.inst.ReadU64(addr)
			}
			n.mu.Unlock()
		}
		if got != 4*perNode {
			t.Errorf("%v: counter = %d, want %d", strat, got, 4*perNode)
		}
	}
}
