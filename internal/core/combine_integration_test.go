package core

import (
	"testing"

	"midway/internal/memory"
)

// TestCombiningReducesTransfer builds the paper's redundancy scenario —
// the same small accumulator written in several incarnations before a
// stale requester returns — and checks that combining removes the
// redundant resends while preserving the result.
func TestCombiningReducesTransfer(t *testing.T) {
	run := func(combine bool) (uint64, uint64) {
		s, err := NewSystem(Config{Nodes: 4, Strategy: VM, CombineIncarnations: combine})
		if err != nil {
			t.Fatal(err)
		}
		// A 512-byte object whose first 32 bytes are rewritten by three
		// writers between visits of a fourth node.
		addr := s.MustAlloc("obj", 512, 3)
		lock := s.NewLock("obj", memory.Range{Addr: addr, Size: 512})
		bar := s.NewBarrier("round", 0)
		const rounds = 6
		err = s.Run(func(p *Proc) {
			for r := 0; r < rounds; r++ {
				if p.ID() != 3 {
					p.Acquire(lock)
					for w := 0; w < 4; w++ {
						p.WriteU64(addr+memory.Addr(8*w), uint64(r*10+p.ID()))
					}
					p.Release(lock)
				}
				p.Barrier(bar)
			}
			// The stale node returns once at the end.
			if p.ID() == 3 {
				p.Acquire(lock)
				if got := p.ReadU64(addr); got == 0 {
					panic("no data arrived")
				}
				p.Release(lock)
			}
			p.Barrier(bar)
		})
		if err != nil {
			t.Fatal(err)
		}
		total := s.TotalStats()
		return total.BytesTransferred, total.LockTransfers
	}
	plain, plainTransfers := run(false)
	combined, combinedTransfers := run(true)
	if plainTransfers != combinedTransfers {
		t.Logf("transfer counts differ (%d vs %d); comparing bytes anyway", plainTransfers, combinedTransfers)
	}
	if combined >= plain {
		t.Errorf("combining did not reduce transfer: %d vs %d bytes", combined, plain)
	}
}

// TestCombiningCorrectAcrossApps: the shared-counter and exchange
// workloads behave identically with combining on.
func TestCombiningCorrectAcrossApps(t *testing.T) {
	for _, strat := range []Strategy{VM, TwinDiff} {
		s, err := NewSystem(Config{Nodes: 4, Strategy: strat, CombineIncarnations: true})
		if err != nil {
			t.Fatal(err)
		}
		addr := s.MustAlloc("counter", 8, 3)
		lock := s.NewLock("counter", memory.Range{Addr: addr, Size: 8})
		const perNode = 25
		err = s.Run(func(p *Proc) {
			for i := 0; i < perNode; i++ {
				p.Acquire(lock)
				p.WriteU64(addr, p.ReadU64(addr)+1)
				p.Release(lock)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		for i := 0; i < 4; i++ {
			n := s.Node(i)
			n.mu.Lock()
			if n.lockState(uint32(lock)).owner {
				got = n.inst.ReadU64(addr)
			}
			n.mu.Unlock()
		}
		if got != 4*perNode {
			t.Errorf("%v: counter = %d, want %d", strat, got, 4*perNode)
		}
	}
}
