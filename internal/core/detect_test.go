package core

import (
	"fmt"
	"math/rand"
	"testing"

	"midway/internal/detect"
	"midway/internal/memory"
)

// TestMisclassifiedWrites checks the six-cycle private-template path: an
// instrumented store that reaches a private region is counted but has no
// other effect.
func TestMisclassifiedWrites(t *testing.T) {
	s := newTestSystem(t, 1, RT)
	priv, err := s.AllocPrivate("scratch", 64)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.WriteU64(priv+memory.Addr(8*i%64), uint64(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Node(0).Stats()
	if st.DirtybitsMisclassified != 10 {
		t.Errorf("misclassified = %d, want 10", st.DirtybitsMisclassified)
	}
	if st.DirtybitsSet != 0 {
		t.Errorf("private writes set %d dirtybits", st.DirtybitsSet)
	}
}

// TestAreaWriteMarksAllLines checks that a structure-assignment store marks
// every covered cache line.
func TestAreaWriteMarksAllLines(t *testing.T) {
	s := newTestSystem(t, 1, RT)
	addr := s.MustAlloc("block", 256, 3) // 8-byte lines
	err := s.Run(func(p *Proc) {
		p.WriteBytes(memory.Range{Addr: addr, Size: 64}, make([]byte, 64))
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Node(0).Stats()
	if st.DirtybitsSet != 8 {
		t.Errorf("area write over 8 lines set %d dirtybits", st.DirtybitsSet)
	}
}

// TestVMFaultAmortization: many writes to one page take exactly one fault.
func TestVMFaultAmortization(t *testing.T) {
	s := newTestSystem(t, 1, VM)
	addr := s.MustAlloc("page", 4096, 3)
	err := s.Run(func(p *Proc) {
		for i := 0; i < 512; i++ {
			p.WriteU64(addr+memory.Addr(8*i), uint64(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Node(0).Stats()
	if st.WriteFaults != 1 {
		t.Errorf("512 writes to one page took %d faults, want 1", st.WriteFaults)
	}
}

// TestRTExactlyOnce: a value relayed through two different paths (lock and
// barrier) is applied at most once, never regressing to stale data.
func TestRTExactlyOnce(t *testing.T) {
	s := newTestSystem(t, 2, RT)
	addr := s.MustAlloc("cell", 8, 3)
	rg := memory.Range{Addr: addr, Size: 8}
	lock := s.NewLock("cell", rg)
	bar := s.NewBarrier("sync", 0, rg)
	err := s.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Acquire(lock)
			p.WriteU64(addr, 111)
			p.Release(lock)
		}
		p.Barrier(bar) // distributes 111 to node 1
		if p.ID() == 1 {
			// Node 1 now also pulls the lock: the grant must not clobber
			// anything and the value stays 111.
			p.Acquire(lock)
			if got := p.ReadU64(addr); got != 111 {
				panic(fmt.Sprintf("after lock: %d", got))
			}
			p.WriteU64(addr, 222)
			p.Release(lock)
		}
		p.Barrier(bar)
		if got := p.ReadU64(addr); got != 222 {
			panic(fmt.Sprintf("node %d final: %d", p.ID(), got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestVMFullDataRule: when a requester misses more incarnations than the
// bound data's size can justify, the releaser ships full data instead of
// history.
func TestVMFullDataRule(t *testing.T) {
	s := newTestSystem(t, 2, VM)
	addr := s.MustAlloc("obj", 64, 3)
	lock := s.NewLock("obj", memory.Range{Addr: addr, Size: 64})
	bar := s.NewBarrier("sync", 0)
	err := s.Run(func(p *Proc) {
		if p.ID() == 1 {
			// Build a long history: many incarnations each touching the
			// whole object (node 0 and 1 alternate via the manager).
			for i := 0; i < 10; i++ {
				p.Acquire(lock)
				for w := 0; w < 8; w++ {
					p.WriteU64(addr+memory.Addr(8*w), uint64(i*100+w))
				}
				p.Release(lock)
				p.Barrier(bar)
				p.Barrier(bar)
			}
		} else {
			for i := 0; i < 10; i++ {
				p.Barrier(bar)
				if i == 9 {
					// One late acquisition after ten incarnations: the
					// history (10 × 64 bytes) exceeds the bound 64 bytes,
					// so this must be a full-data grant with current
					// values.
					p.Acquire(lock)
					for w := 0; w < 8; w++ {
						if got := p.ReadU64(addr + memory.Addr(8*w)); got != uint64(900+w) {
							panic(fmt.Sprintf("word %d = %d", w, got))
						}
					}
					p.Release(lock)
				}
				p.Barrier(bar)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// History trimming keeps the releaser's memory bounded: whatever node
	// currently owns the lock must retain at most 64 bytes of history.
	for i := 0; i < 2; i++ {
		n := s.Node(i)
		n.mu.Lock()
		total := detect.RetainedHistoryBytes(n.lockState(uint32(lock)))
		n.mu.Unlock()
		if total > 64 {
			t.Errorf("node %d retains %d bytes of history for a 64-byte binding", i, total)
		}
	}
}

// TestEagerTimestamps runs the shared-counter and barrier workloads under
// the eager dirtybit scheme.
func TestEagerTimestamps(t *testing.T) {
	s, err := NewSystem(Config{Nodes: 4, Strategy: RT, EagerTimestamps: true})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.MustAlloc("counter", 8, 3)
	slots := s.MustAlloc("slots", 8*4, 3)
	lock := s.NewLock("counter", memory.Range{Addr: addr, Size: 8})
	bar := s.NewBarrier("xch", 0, memory.Range{Addr: slots, Size: 32})
	const rounds = 10
	err = s.Run(func(p *Proc) {
		me := p.ID()
		for r := 1; r <= rounds; r++ {
			p.Acquire(lock)
			p.WriteU64(addr, p.ReadU64(addr)+1)
			p.Release(lock)
			p.WriteU64(slots+memory.Addr(8*me), uint64(me*1000+r))
			p.Barrier(bar)
			for j := 0; j < 4; j++ {
				if got := p.ReadU64(slots + memory.Addr(8*j)); got != uint64(j*1000+r) {
					panic(fmt.Sprintf("node %d: slot %d = %d", me, j, got))
				}
			}
			p.Barrier(bar)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	for i := 0; i < 4; i++ {
		n := s.Node(i)
		n.mu.Lock()
		owner := n.lockState(uint32(lock)).owner
		n.mu.Unlock()
		if owner {
			got = n.inst.ReadU64(addr)
		}
	}
	if got != 4*rounds {
		t.Errorf("eager counter = %d, want %d", got, 4*rounds)
	}
}

// TestRandomizedCommutativeOps hammers the protocol with a random schedule
// of lock-guarded increments on random cells under every strategy; because
// addition commutes, the final per-cell totals are schedule-independent.
func TestRandomizedCommutativeOps(t *testing.T) {
	for _, strat := range allStrategies {
		t.Run(strat.String(), func(t *testing.T) {
			const (
				nodes = 4
				cells = 16
				ops   = 200
			)
			s := newTestSystem(t, nodes, strat)
			arr := s.MustAlloc("cells", 8*cells, 3)
			locks := make([]LockID, cells)
			for c := 0; c < cells; c++ {
				locks[c] = s.NewLock(fmt.Sprintf("cell%d", c),
					memory.Range{Addr: arr + memory.Addr(8*c), Size: 8})
			}
			done := s.NewBarrier("done", 0)

			// Deterministic per-node op streams.
			want := make([]uint64, cells)
			streams := make([][]int, nodes)
			rng := rand.New(rand.NewSource(99))
			for n := 0; n < nodes; n++ {
				streams[n] = make([]int, ops)
				for i := range streams[n] {
					c := rng.Intn(cells)
					streams[n][i] = c
					want[c] += uint64(n + 1)
				}
			}

			err := s.Run(func(p *Proc) {
				me := p.ID()
				for _, c := range streams[me] {
					a := arr + memory.Addr(8*c)
					p.Acquire(locks[c])
					p.WriteU64(a, p.ReadU64(a)+uint64(me+1))
					p.Release(locks[c])
				}
				p.Barrier(done)
				// Everyone verifies every cell by acquiring its lock.
				for c := 0; c < cells; c++ {
					p.AcquireShared(locks[c])
					if got := p.ReadU64(arr + memory.Addr(8*c)); got != want[c] {
						panic(fmt.Sprintf("node %d: cell %d = %d, want %d", me, c, got, want[c]))
					}
					p.Release(locks[c])
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAppPanicsPropagate: a panic in the application function surfaces as
// a Run error rather than crashing the process.
func TestAppPanicsPropagate(t *testing.T) {
	s := newTestSystem(t, 2, RT)
	err := s.Run(func(p *Proc) {
		if p.ID() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("Run returned nil after panic")
	}
}

// TestMisuseDetection: recursive acquire, stray release, and rebinding
// without an exclusive hold are all programming errors that panic.
func TestMisuseDetection(t *testing.T) {
	run := func(name string, fn func(p *Proc, l LockID)) {
		t.Run(name, func(t *testing.T) {
			s := newTestSystem(t, 1, RT)
			addr := s.MustAlloc("x", 8, 3)
			l := s.NewLock("x", memory.Range{Addr: addr, Size: 8})
			if err := s.Run(func(p *Proc) { fn(p, l) }); err == nil {
				t.Error("misuse not detected")
			}
		})
	}
	run("recursive acquire", func(p *Proc, l LockID) {
		p.Acquire(l)
		p.Acquire(l)
	})
	run("stray release", func(p *Proc, l LockID) {
		p.Release(l)
	})
	run("rebind without hold", func(p *Proc, l LockID) {
		p.Rebind(l)
	})
	run("rebind under shared hold", func(p *Proc, l LockID) {
		p.AcquireShared(l)
		p.Rebind(l)
	})
}

// TestSimulatedTimeAdvances: communication costs show up on the simulated
// clock, and a remote acquisition costs at least a round trip.
func TestSimulatedTimeAdvances(t *testing.T) {
	s := newTestSystem(t, 2, RT)
	addr := s.MustAlloc("x", 8, 3)
	l := s.NewLock("x", memory.Range{Addr: addr, Size: 8})
	bar := s.NewBarrier("done", 0)
	err := s.Run(func(p *Proc) {
		if p.ID() == 1 {
			p.Acquire(l) // remote: manager on node 0
			p.Release(l)
		}
		p.Barrier(bar)
	})
	if err != nil {
		t.Fatal(err)
	}
	// One-way latency is 12,500 cycles by default; an acquire is at least
	// two messages.
	if c := s.Node(1).Cycles(); c < 25000 {
		t.Errorf("node 1 simulated only %d cycles after a remote acquire", c)
	}
	// The barrier joins clocks: both nodes end within a message cost of
	// each other.
	c0, c1 := s.Node(0).Cycles(), s.Node(1).Cycles()
	diff := int64(c0) - int64(c1)
	if diff < 0 {
		diff = -diff
	}
	if diff > 100000 {
		t.Errorf("clocks diverged by %d cycles across a barrier", diff)
	}
}

// TestRunTwiceFails: a System is single-use.
func TestRunTwiceFails(t *testing.T) {
	s := newTestSystem(t, 1, RT)
	if err := s.Run(func(p *Proc) {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(func(p *Proc) {}); err == nil {
		t.Error("second Run succeeded")
	}
}
