package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"midway/internal/obs"
)

// PartitionPolicy selects how the system reacts when a network partition
// is declared — by the deterministic schedule (Config.Partition) or by
// the wall-clock quorum detector (the health monitor, wired at the
// system layer).
type PartitionPolicy int

const (
	// PartitionFence (the default) keeps every node alive: the minority
	// side parks at its next release boundary — it stops issuing grants
	// and its held tokens are frozen in place — while the majority makes
	// progress on everything it can reach.  On heal the fenced nodes
	// rejoin and the delayed traffic flows; nothing is discarded, so a
	// healed run's final contents equal the partition-free run's.
	PartitionFence PartitionPolicy = iota
	// PartitionAbort fails the run with a *PartitionError as soon as the
	// partition is declared.
	PartitionAbort
	// PartitionDegrade declares the minority side dead and runs the
	// crash-recovery protocol for each of its nodes (requires
	// Config.OnCrash == CrashDegrade): tokens held by the minority are
	// reclaimed at their last-released state and the run finishes with
	// the majority.  The cut never heals — a degraded minority does not
	// rejoin.
	PartitionDegrade
)

// ParsePartitionPolicy converts a name ("fence", "abort", "degrade") to a
// PartitionPolicy.
func ParsePartitionPolicy(s string) (PartitionPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "fence":
		return PartitionFence, nil
	case "abort":
		return PartitionAbort, nil
	case "degrade":
		return PartitionDegrade, nil
	}
	return 0, fmt.Errorf("core: unknown partition policy %q (want fence, abort or degrade)", s)
}

// String returns the policy's flag-value name.
func (p PartitionPolicy) String() string {
	switch p {
	case PartitionFence:
		return "fence"
	case PartitionAbort:
		return "abort"
	case PartitionDegrade:
		return "degrade"
	}
	return fmt.Sprintf("PartitionPolicy(%d)", int(p))
}

// PartitionError is the run error reported under PartitionAbort when a
// partition is declared: the minority side that lost quorum and, for the
// deterministic schedule, the simulated instant of the cut (zero when the
// wall-clock detector declared it).
type PartitionError struct {
	Minority []int
	Cycles   uint64
}

func (e *PartitionError) Error() string {
	return fmt.Sprintf("core: network partition: minority side %v lost quorum", e.Minority)
}

// PartitionSpec is a deterministic partition schedule: at simulated time
// At the listed minority side is cut from the rest of the membership in
// both directions, and (under PartitionFence) the cut heals at HealAt.
// The schedule is expressed purely in simulated time, so it composes with
// the lockstep engine and replays byte-identically.
type PartitionSpec struct {
	// Minority is the side of the cut that loses quorum, as node ids.
	Minority []int
	// At is the simulated instant the cut appears.
	At uint64
	// HealAt is the simulated instant the cut disappears.  Required for
	// (and only meaningful under) PartitionFence.
	HealAt uint64
}

// ParsePartitionSpec parses a deterministic partition schedule of the
// form "minority=2+3,at=40000,healat=90000": the minority node list is
// +-separated, at is the cut instant in cycles, and healat (optional in
// the grammar; the fence policy requires it) is the heal instant.
func ParsePartitionSpec(spec string) (PartitionSpec, error) {
	var ps PartitionSpec
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return ps, fmt.Errorf("core: partition spec %q: field %q is not key=value", spec, field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if seen[key] {
			return ps, fmt.Errorf("core: partition spec %q: duplicate key %q", spec, key)
		}
		seen[key] = true
		switch key {
		case "minority":
			dup := map[int]bool{}
			for _, f := range strings.Split(val, "+") {
				id, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil || id < 0 {
					return ps, fmt.Errorf("core: partition spec %q: bad minority node %q", spec, f)
				}
				if dup[id] {
					return ps, fmt.Errorf("core: partition spec %q: duplicate minority node %d", spec, id)
				}
				dup[id] = true
				ps.Minority = append(ps.Minority, id)
			}
		case "at":
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return ps, fmt.Errorf("core: partition spec %q: bad at value %q", spec, val)
			}
			ps.At = v
		case "healat":
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return ps, fmt.Errorf("core: partition spec %q: bad healat value %q", spec, val)
			}
			ps.HealAt = v
		default:
			return ps, fmt.Errorf("core: partition spec %q: unknown key %q", spec, key)
		}
	}
	if len(ps.Minority) == 0 {
		return ps, fmt.Errorf("core: partition spec %q: minority node list is required", spec)
	}
	if ps.At == 0 {
		return ps, fmt.Errorf("core: partition spec %q: at (cut instant in cycles) is required", spec)
	}
	if ps.HealAt != 0 && ps.HealAt <= ps.At {
		return ps, fmt.Errorf("core: partition spec %q: healat %d must be after at %d", spec, ps.HealAt, ps.At)
	}
	sort.Ints(ps.Minority)
	return ps, nil
}

// partitionState is the deterministic partition schedule's runtime state.
// The cut itself is stateless — a message crosses it iff its endpoints
// straddle the minority and its send time falls inside [At, HealAt), a
// pure function of the spec — so arrival computation needs no
// synchronization.  The fence and heal transitions (events, member
// overlay, policy actions) each fire exactly once, triggered by the first
// send whose timestamp crosses the boundary.
type partitionState struct {
	spec   PartitionSpec
	policy PartitionPolicy
	// minority is the cut side as a node-id bitset, sized to the
	// provisioned node count.
	minority []bool
	// fenced/healed short-circuit the per-send trigger checks once the
	// transition has fired.
	fenced    atomic.Bool
	healed    atomic.Bool
	fenceOnce sync.Once
	healOnce  sync.Once
}

func newPartitionState(spec PartitionSpec, policy PartitionPolicy, total int) (*partitionState, error) {
	ps := &partitionState{spec: spec, policy: policy, minority: make([]bool, total)}
	for _, id := range spec.Minority {
		if id >= total {
			return nil, fmt.Errorf("core: partition minority node %d outside the provisioned range [0, %d)", id, total)
		}
		ps.minority[id] = true
	}
	if len(spec.Minority) == total {
		return nil, fmt.Errorf("core: partition minority %v is the whole membership; a nonempty majority side must remain", spec.Minority)
	}
	if 2*len(spec.Minority) > total {
		return nil, fmt.Errorf("core: partition minority %v is a majority of %d nodes; name the losing side", spec.Minority, total)
	}
	if 2*len(spec.Minority) == total && spec.Minority[0] == 0 {
		// The quorum tie-break: on an exact 50/50 split the side holding
		// the lowest live id wins.  A "minority" containing node 0 would
		// be the winning side.
		return nil, fmt.Errorf("core: partition minority %v holds the lowest node id in an even split; the tie-break makes it the majority side", spec.Minority)
	}
	switch policy {
	case PartitionFence:
		if spec.HealAt == 0 {
			return nil, fmt.Errorf("core: the fence partition policy requires healat in the partition spec (the minority parks until the cut heals)")
		}
	case PartitionAbort, PartitionDegrade:
		if spec.HealAt != 0 {
			return nil, fmt.Errorf("core: healat is only meaningful under the fence partition policy (%v never heals)", policy)
		}
	default:
		return nil, fmt.Errorf("core: unknown partition policy %d", int(policy))
	}
	return ps, nil
}

// crossesCut reports whether a from→to message sent at sendTime crosses
// the partition: the endpoints straddle the cut and the send falls inside
// the partition window.  Under Abort and Degrade the window never closes.
func (ps *partitionState) crossesCut(from, to int, sendTime uint64) bool {
	if ps.minority[from] == ps.minority[to] {
		return false
	}
	if sendTime < ps.spec.At {
		return false
	}
	return ps.spec.HealAt == 0 || sendTime < ps.spec.HealAt
}

// delayedArrival returns the simulated arrival time of a cross-cut
// message under the fence policy: the message is neither lost nor
// reordered against the heal — it arrives one transit after the cut
// heals, exactly as a link-layer retransmission would deliver it.  The
// second return is false when the message is unaffected (same side,
// outside the window, or a non-fence policy, where the minority is dead
// or the run aborted and arrival no longer matters).
func (ps *partitionState) delayedArrival(from, to int, sendTime, transit uint64) (uint64, bool) {
	if ps.policy != PartitionFence || !ps.crossesCut(from, to, sendTime) {
		return 0, false
	}
	return ps.spec.HealAt + transit, true
}

// noteSend is the per-send trigger hook: the first send stamped at or
// after At fires the fence transition, and (under the fence policy) the
// first send stamped at or after HealAt fires the heal.  Under the
// lockstep engine the set of sends in each parallel phase is
// deterministic, so the phase in which each transition fires — and
// therefore every downstream effect — is too, regardless of which racing
// goroutine wins the Once.
func (ps *partitionState) noteSend(s *System, at uint64) {
	if !ps.fenced.Load() && at >= ps.spec.At {
		ps.fenceOnce.Do(func() {
			ps.fenced.Store(true)
			s.partitionFence()
		})
	}
	if ps.policy == PartitionFence && !ps.healed.Load() && at >= ps.spec.HealAt {
		ps.healOnce.Do(func() {
			ps.healed.Store(true)
			s.partitionHeal()
		})
	}
}

// partitionFence runs the policy's cut-time action exactly once.
func (s *System) partitionFence() {
	ps := s.part
	at := ps.spec.At
	minority := append([]int(nil), ps.spec.Minority...)
	switch ps.policy {
	case PartitionAbort:
		s.fail(&PartitionError{Minority: minority, Cycles: at})
	case PartitionDegrade:
		// Declare the minority dead through the ordinary crash path; PR
		// 5's release-boundary recovery reclaims its tokens.  Under the
		// lockstep engine the kills must run at a quiescence point, but
		// this trigger fires from send context (possibly the engine's own
		// dispatch goroutine), where waiting out quiescence would
		// deadlock — enqueue without waiting instead.  Under the
		// goroutine engine a fresh goroutine kills them sequentially,
		// like the heartbeat monitor's death callback would.
		if e := s.eng; e != nil {
			e.QueueAtQuiescence(func() {
				for _, k := range minority {
					s.killNodeBody(k, true)
				}
			})
		} else {
			go func() {
				for _, k := range minority {
					s.killNodeFrom(k, true, -1)
				}
			}()
		}
	case PartitionFence:
		live := s.partitionLiveCount()
		for _, k := range minority {
			if tr := s.obs; tr != nil {
				tr.Emit(obs.Event{
					Kind: obs.EvQuorumLoss, Cycles: at, Node: int32(k),
					A: int64(len(minority)), B: int64(live),
				})
				tr.Emit(obs.Event{Kind: obs.EvFence, Cycles: at, Node: int32(k), Peer: int32(k)})
			}
			if mt := s.members; mt != nil {
				mt.MarkFenced(k)
			}
		}
	}
}

// partitionHeal runs the fence policy's heal-time action exactly once:
// the fenced minority rejoins and its delayed traffic flows.
func (s *System) partitionHeal() {
	ps := s.part
	at := ps.spec.HealAt
	for _, k := range ps.spec.Minority {
		if tr := s.obs; tr != nil {
			tr.Emit(obs.Event{Kind: obs.EvHeal, Cycles: at, Node: int32(k)})
		}
		if mt := s.members; mt != nil {
			mt.Unfence(k)
		}
	}
}

// partitionLiveCount is the membership size the quorum denominator would
// use at the cut: live members under elastic membership, the full node
// count otherwise.
func (s *System) partitionLiveCount() int {
	if mt := s.members; mt != nil {
		return mt.Count()
	}
	return s.cfg.Nodes
}

// FenceNode marks node k fenced in the member table (minority side of a
// wall-clock partition, reported by the health monitor).  A no-op for
// fixed-membership systems.
func (s *System) FenceNode(k int) {
	if mt := s.members; mt != nil {
		mt.MarkFenced(k)
	}
}

// UnfenceNode clears node k's fence after a wall-clock partition heals.
// A no-op for fixed-membership systems.
func (s *System) UnfenceNode(k int) {
	if mt := s.members; mt != nil {
		mt.Unfence(k)
	}
}

// PartitionDetected is the hook for the wall-clock quorum detector under
// the abort policy: the run fails with a *PartitionError naming the
// unreachable side.
func (s *System) PartitionDetected(minority []int) {
	sorted := append([]int(nil), minority...)
	sort.Ints(sorted)
	s.fail(&PartitionError{Minority: sorted})
}

// ownerCensus is the split-brain oracle: it tracks, per lock, the set of
// nodes currently holding the token in exclusive mode, and the high-water
// mark of that set's size.  In any correct execution the mark never
// exceeds one — two concurrent exclusive holders is exactly the
// split-brain failure quorum fencing exists to prevent.  The census is
// built only when a partition schedule is configured, so fault-free runs
// pay a single nil check per transition site.
type ownerCensus struct {
	mu  sync.Mutex
	cur map[uint32]map[int]bool
	max map[uint32]int
}

func newOwnerCensus() *ownerCensus {
	return &ownerCensus{cur: map[uint32]map[int]bool{}, max: map[uint32]int{}}
}

// set records that node holds (or no longer holds) the lock in exclusive
// mode.  Idempotent per (lock, node), so transition sites need not track
// prior state.
func (c *ownerCensus) set(lock uint32, node int, held bool) {
	c.mu.Lock()
	holders := c.cur[lock]
	if held {
		if holders == nil {
			holders = map[int]bool{}
			c.cur[lock] = holders
		}
		holders[node] = true
		if n := len(holders); n > c.max[lock] {
			c.max[lock] = n
		}
	} else if holders != nil {
		delete(holders, node)
	}
	c.mu.Unlock()
}

// clearNode drops node k from every lock's holder set (crash declaration:
// the corpse's unreleased holds are discarded with it).
func (c *ownerCensus) clearNode(k int) {
	c.mu.Lock()
	for _, holders := range c.cur {
		delete(holders, k)
	}
	c.mu.Unlock()
}

// MaxExclusiveHolders returns the high-water mark of concurrent exclusive
// holders observed for the lock — the split-brain oracle's verdict; any
// value above one is a protocol failure.  Zero when the lock was never
// held exclusively, or when no partition schedule was configured (the
// census only runs then).
func (s *System) MaxExclusiveHolders(l LockID) int {
	c := s.census
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.max[uint32(l)]
}
