package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"midway/internal/member"
	"midway/internal/memory"
)

// TestJoinMidRunCounter admits a third node mid-run and checks that every
// increment — the joiner's included — survives on the final owner's copy,
// under every detection scheme and both engines.  The join-time full-data
// fence is what makes this pass: the joiner's first acquire must ship the
// complete counter state, not a diff against history it never saw.
func TestJoinMidRunCounter(t *testing.T) {
	for _, strat := range allStrategies {
		for _, lockstep := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/lockstep=%v", strat, lockstep), func(t *testing.T) {
				s, err := NewSystem(Config{Nodes: 2, MaxNodes: 3, Strategy: strat, Lockstep: lockstep})
				if err != nil {
					t.Fatalf("NewSystem: %v", err)
				}
				addr := s.MustAlloc("counter", 8, 3)
				lock := s.NewLock("counter", memory.Range{Addr: addr, Size: 8})
				const perNode = 10
				err = s.Run(func(p *Proc) {
					if p.ID() == 0 {
						// Sponsor the join from a release boundary, after a
						// little warm-up contention.
						for i := 0; i < 3; i++ {
							p.Acquire(lock)
							p.WriteU64(addr, p.ReadU64(addr)+1)
							p.Release(lock)
						}
						if err := p.Join(2); err != nil {
							t.Errorf("Join(2): %v", err)
						}
					}
					for i := 0; i < perNode; i++ {
						p.Acquire(lock)
						p.WriteU64(addr, p.ReadU64(addr)+1)
						p.Release(lock)
					}
				})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				want := uint64(3*perNode + 3)
				got := ownerCopyU64(t, s, lock, addr)
				if got != want {
					t.Fatalf("counter = %d, want %d", got, want)
				}
				evs := s.MembershipEvents()
				if len(evs) != 1 || evs[0].Node != 2 || evs[0].Action != member.Joined || evs[0].Epoch != 1 {
					t.Fatalf("membership events = %+v, want one Joined(2) at epoch 1", evs)
				}
			})
		}
	}
}

// ownerCopyU64 reads the counter from whichever node owns the lock after
// the run: the authoritative copy.
func ownerCopyU64(t *testing.T, s *System, lock LockID, addr memory.Addr) uint64 {
	t.Helper()
	for i := range s.nodes {
		n := s.nodes[i]
		if n == nil {
			continue
		}
		n.mu.Lock()
		lk := n.lockState(uint32(lock))
		owner := lk.owner
		n.mu.Unlock()
		if owner {
			return n.inst.ReadU64(addr)
		}
	}
	t.Fatalf("no node owns the lock")
	return 0
}

// TestJoinBarrierMembership checks that an all-member barrier rendezvouses
// the post-join membership: the joiner is counted from its commit epoch
// onward, receives the barrier-bound data transferred at admission, and
// contributes its own slot to the next release.
func TestJoinBarrierMembership(t *testing.T) {
	for _, lockstep := range []bool{false, true} {
		t.Run(fmt.Sprintf("lockstep=%v", lockstep), func(t *testing.T) {
			s, err := NewSystem(Config{Nodes: 2, MaxNodes: 3, Strategy: RT, Lockstep: lockstep})
			if err != nil {
				t.Fatalf("NewSystem: %v", err)
			}
			addr := s.MustAlloc("slots", 3*8, 3)
			slot := func(i int) memory.Addr { return addr + memory.Addr(8*i) }
			bar := s.NewBarrier("sync", 0, memory.Range{Addr: addr, Size: 3 * 8})
			err = s.Run(func(p *Proc) {
				id := p.ID()
				if id == 2 {
					// Joiner: lands at the manager's current epoch with the
					// sponsor's copy of the bound data already installed.
					if got := p.ReadU64(slot(0)); got != 1 {
						t.Errorf("joiner slot0 = %d before barrier, want 1 (state transfer)", got)
					}
					p.WriteU64(slot(2), 3)
					p.Barrier(bar)
					if g0, g1 := p.ReadU64(slot(0)), p.ReadU64(slot(1)); g0 != 1 || g1 != 2 {
						t.Errorf("joiner slots = %d,%d after barrier, want 1,2", g0, g1)
					}
					return
				}
				p.WriteU64(slot(id), uint64(id+1))
				p.Barrier(bar) // epoch 0: founders only
				if id == 0 {
					if err := p.Join(2); err != nil {
						t.Errorf("Join(2): %v", err)
					}
				}
				p.Barrier(bar) // epoch 1: all three
				if got := p.ReadU64(slot(2)); got != 3 {
					t.Errorf("node %d slot2 = %d after join barrier, want 3", id, got)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// TestGracefulLeaveHandsOffCounter drains one node mid-run: its released
// copy of the lock-bound counter must move to a successor, so no
// increment is lost, and the member table must record a Departed — not a
// Died — transition.  The drain request is issued by another node's app
// (deterministic under lockstep) and honoured at a release boundary.
func TestGracefulLeaveHandsOffCounter(t *testing.T) {
	for _, strat := range allStrategies {
		for _, lockstep := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/lockstep=%v", strat, lockstep), func(t *testing.T) {
				s, err := NewSystem(Config{Nodes: 3, MaxNodes: 3, Strategy: strat, Lockstep: lockstep})
				if err != nil {
					t.Fatalf("NewSystem: %v", err)
				}
				addr := s.MustAlloc("counter", 8, 3)
				lock := s.NewLock("counter", memory.Range{Addr: addr, Size: 8})
				const perNode = 10
				const leaverExtra = 4
				err = s.Run(func(p *Proc) {
					if p.ID() == 2 {
						// Work until the drain request lands, then depart at
						// the next release boundary.  The run cannot finish
						// until this node leaves, so the loop is bounded by
						// node 0 issuing the drain.
						for i := 0; ; i++ {
							p.Acquire(lock)
							p.WriteU64(addr, p.ReadU64(addr)+1)
							p.Release(lock)
							if i+1 >= leaverExtra && p.Draining() {
								p.Leave()
							}
						}
					}
					for i := 0; i < perNode; i++ {
						p.Acquire(lock)
						p.WriteU64(addr, p.ReadU64(addr)+1)
						p.Release(lock)
						if p.ID() == 0 && i == 1 {
							s.DrainNode(2)
						}
					}
				})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				got := ownerCopyU64(t, s, lock, addr)
				// The leaver departs somewhere in [leaverExtra, leaverExtra+perNode]
				// increments depending on when the drain request lands; every
				// increment it performed must survive the handoff.
				evs := s.MembershipEvents()
				if len(evs) != 1 || evs[0].Node != 2 || evs[0].Action != member.Departed {
					t.Fatalf("membership events = %+v, want one Departed(2)", evs)
				}
				if got < uint64(2*perNode+leaverExtra) {
					t.Fatalf("counter = %d, want >= %d", got, 2*perNode+leaverExtra)
				}
				if s.MemberStatus(2) != member.Left {
					t.Fatalf("node 2 status = %v, want left", s.MemberStatus(2))
				}
				if cr := s.CrashReport(); cr != nil {
					t.Fatalf("graceful leave produced a crash report: %+v", cr)
				}
			})
		}
	}
}

// TestLockstepChurnDeterminism runs an identical join+drain schedule twice
// under the lockstep engine and demands byte-identical results: final
// memory, total statistics, execution cycles and the membership timeline.
func TestLockstepChurnDeterminism(t *testing.T) {
	type outcome struct {
		counter uint64
		cycles  uint64
		events  string
		stats   string
	}
	run := func() outcome {
		s, err := NewSystem(Config{Nodes: 2, MaxNodes: 4, Strategy: VM, Lockstep: true})
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		addr := s.MustAlloc("counter", 8, 3)
		lock := s.NewLock("counter", memory.Range{Addr: addr, Size: 8})
		err = s.Run(func(p *Proc) {
			id := p.ID()
			for i := 0; i < 8; i++ {
				p.Acquire(lock)
				p.WriteU64(addr, p.ReadU64(addr)+1)
				p.Release(lock)
				if id == 0 && i == 2 {
					if err := p.Join(2); err != nil {
						t.Errorf("Join(2): %v", err)
					}
				}
				if id == 1 && i == 4 {
					if err := p.Join(3); err != nil {
						t.Errorf("Join(3): %v", err)
					}
				}
				if id == 2 && i == 6 {
					p.Leave()
				}
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return outcome{
			counter: ownerCopyU64(t, s, lock, addr),
			cycles:  s.ExecutionCycles(),
			events:  fmt.Sprintf("%+v", s.MembershipEvents()),
			stats:   fmt.Sprintf("%+v", s.TotalStats()),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("churn schedule not deterministic:\n  run1: %+v\n  run2: %+v", a, b)
	}
}

// TestElasticMatchesFixedMembership checks the headline equivalence: a run
// with a mid-run join and a mid-run graceful drain leaves the same final
// counter value as a fixed-membership run performing the same work.
func TestElasticMatchesFixedMembership(t *testing.T) {
	const perNode = 12
	counterAfter := func(elastic bool) uint64 {
		cfg := Config{Nodes: 3, Strategy: RT, Lockstep: true}
		work := map[int]int{0: perNode, 1: perNode, 2: perNode}
		if elastic {
			cfg = Config{Nodes: 2, MaxNodes: 3, Strategy: RT, Lockstep: true}
		}
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		addr := s.MustAlloc("counter", 8, 3)
		lock := s.NewLock("counter", memory.Range{Addr: addr, Size: 8})
		err = s.Run(func(p *Proc) {
			id := p.ID()
			for i := 0; i < work[id]; i++ {
				p.Acquire(lock)
				p.WriteU64(addr, p.ReadU64(addr)+1)
				p.Release(lock)
				if elastic && id == 0 && i == 3 {
					if err := p.Join(2); err != nil {
						t.Errorf("Join(2): %v", err)
					}
				}
			}
			if elastic && id == 1 {
				p.Leave()
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return ownerCopyU64(t, s, lock, addr)
	}
	fixed := counterAfter(false)
	elastic := counterAfter(true)
	if fixed != elastic {
		t.Fatalf("elastic run counter = %d, fixed run = %d", elastic, fixed)
	}
}

// TestJoinRejections covers the error paths: joining a current member,
// joining while a join is in flight is already covered by the table test;
// here the protocol-level double-join and capacity cases.
func TestJoinRejections(t *testing.T) {
	s, err := NewSystem(Config{Nodes: 2, MaxNodes: 3, Strategy: RT})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	addr := s.MustAlloc("x", 8, 3)
	lock := s.NewLock("x", memory.Range{Addr: addr, Size: 8})
	err = s.Run(func(p *Proc) {
		if p.ID() != 0 {
			p.Acquire(lock)
			p.Release(lock)
			return
		}
		if err := p.Join(1); err == nil {
			t.Errorf("Join(1) of a current member succeeded")
		}
		if err := p.Join(7); err == nil {
			t.Errorf("Join(7) beyond capacity succeeded")
		}
		if err := p.Join(2); err != nil {
			t.Errorf("Join(2): %v", err)
		}
		if err := p.Join(2); err == nil {
			t.Errorf("second Join(2) of the now-member succeeded")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestCrashDuringDrainFallsBack marks a node draining and then crashes it
// before it reaches its release boundary: the membership must record a
// death (not a departure), crash reclamation must run exactly once, and
// the survivors must finish.
func TestCrashDuringDrainFallsBack(t *testing.T) {
	for _, lockstep := range []bool{false, true} {
		t.Run(fmt.Sprintf("lockstep=%v", lockstep), func(t *testing.T) {
			s, err := NewSystem(Config{
				Nodes: 3, MaxNodes: 3, Strategy: RT, Lockstep: lockstep,
				OnCrash: CrashDegrade, LocalNode: -1,
			})
			if err != nil {
				t.Fatalf("NewSystem: %v", err)
			}
			addr := s.MustAlloc("counter", 8, 3)
			lock := s.NewLock("counter", memory.Range{Addr: addr, Size: 8})
			const perNode = 8
			err = s.Run(func(p *Proc) {
				if p.ID() == 2 {
					p.Acquire(lock)
					p.WriteU64(addr, p.ReadU64(addr)+1)
					p.Release(lock)
					s.DrainNode(2) // drain requested...
					p.Acquire(lock)
					p.WriteU64(addr, p.ReadU64(addr)+100) // unreleased: must roll back
					p.Crash()                             // ...but the node dies mid-critical-section
				}
				for i := 0; i < perNode; i++ {
					p.Acquire(lock)
					p.WriteU64(addr, p.ReadU64(addr)+1)
					p.Release(lock)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			got := ownerCopyU64(t, s, lock, addr)
			// The crashed node's unreleased +100 must always roll back.  Its
			// released +1 survives only if another node acquired (and thus
			// replicated) the counter between that release and the crash;
			// reclamation restores the last live predecessor's copy.
			if got != 2*perNode && got != 2*perNode+1 {
				t.Fatalf("counter = %d, want %d or %d (crashed writes rolled back)", got, 2*perNode, 2*perNode+1)
			}
			if s.MemberStatus(2) != member.Dead {
				t.Fatalf("node 2 status = %v, want dead", s.MemberStatus(2))
			}
			evs := s.MembershipEvents()
			if len(evs) != 1 || evs[0].Action != member.Died {
				t.Fatalf("membership events = %+v, want exactly one Died(2)", evs)
			}
			cr := s.CrashReport()
			if cr == nil || len(cr.Nodes) != 1 || cr.Nodes[0] != 2 {
				t.Fatalf("crash report = %+v, want node 2 reclaimed once", cr)
			}
		})
	}
}

// TestRejoinAfterLeave departs a node and then re-admits the same id: the
// second incarnation must start from a blank slate, resynchronize through
// the full-data fence, and contribute work.  Goroutine engine only — the
// rejoin trigger polls the member table, which has no lockstep-safe
// expression at this layer.
func TestRejoinAfterLeave(t *testing.T) {
	s, err := NewSystem(Config{Nodes: 3, MaxNodes: 3, Strategy: VM})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	addr := s.MustAlloc("counter", 8, 3)
	lock := s.NewLock("counter", memory.Range{Addr: addr, Size: 8})
	const target = 60
	var incarnation2 atomic.Int32
	err = s.Run(func(p *Proc) {
		if p.ID() == 2 && incarnation2.Add(1) == 1 {
			// Guarded like the main loop: if this goroutine is scheduled
			// late the others may already have finished the count, and an
			// unconditional increment would overshoot the target.  Exactly
			// target increments happen system-wide either way, which is
			// what pins the final value: a lost update (e.g. a drain
			// handoff dropping this incarnation's writes) shows up as a
			// wrong counter.
			for i := 0; i < 5; i++ {
				p.Acquire(lock)
				if v := p.ReadU64(addr); v < target {
					p.WriteU64(addr, v+1)
				}
				p.Release(lock)
			}
			p.Leave()
		}
		// Node 0 sponsors the rejoin and therefore must not return before it
		// happens: it keeps cycling the lock — without incrementing past the
		// target — until it has observed the departure and committed the
		// rejoin, even when node 2's whole first incarnation is scheduled
		// after the others finished the count.
		rejoined := false
		for {
			p.Acquire(lock)
			v := p.ReadU64(addr)
			if v < target {
				p.WriteU64(addr, v+1)
			}
			p.Release(lock)
			if p.ID() == 0 && !rejoined && s.MemberStatus(2) == member.Left {
				if err := p.Join(2); err != nil {
					t.Errorf("rejoin of node 2: %v", err)
					return
				}
				rejoined = true
			}
			if v >= target && (p.ID() != 0 || rejoined) {
				return
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := ownerCopyU64(t, s, lock, addr); got != target {
		t.Fatalf("counter = %d, want %d", got, target)
	}
	if incarnation2.Load() != 2 {
		t.Fatalf("node 2 ran %d incarnations, want 2", incarnation2.Load())
	}
	evs := s.MembershipEvents()
	if len(evs) != 2 || evs[0].Action != member.Departed || evs[1].Action != member.Joined {
		t.Fatalf("membership events = %+v, want Departed(2) then Joined(2)", evs)
	}
}
