package core

import (
	"fmt"
	"testing"

	"midway/internal/memory"
)

// allStrategies lists every detecting strategy (None is single-node only).
var allStrategies = []Strategy{RT, VM, Blast, TwinDiff, Hybrid}

func newTestSystem(t *testing.T, nodes int, strat Strategy) *System {
	t.Helper()
	s, err := NewSystem(Config{Nodes: nodes, Strategy: strat})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

// TestSharedCounter bounces a lock-guarded counter between nodes and checks
// that every increment survives every transfer.
func TestSharedCounter(t *testing.T) {
	for _, strat := range allStrategies {
		for _, nodes := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%v/%dp", strat, nodes), func(t *testing.T) {
				s := newTestSystem(t, nodes, strat)
				addr := s.MustAlloc("counter", 8, 3)
				lock := s.NewLock("counter", memory.Range{Addr: addr, Size: 8})
				const perNode = 25
				err := s.Run(func(p *Proc) {
					for i := 0; i < perNode; i++ {
						p.Acquire(lock)
						p.WriteU64(addr, p.ReadU64(addr)+1)
						p.Release(lock)
					}
				})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				// Read directly from whichever node owns the lock: the
				// owner's copy is authoritative and must show the total.
				var got uint64
				want := uint64(nodes * perNode)
				for i := 0; i < nodes; i++ {
					n := s.Node(i)
					n.mu.Lock()
					lk := n.lockState(uint32(lock))
					owner := lk.owner
					n.mu.Unlock()
					if owner {
						got = n.inst.ReadU64(addr)
					}
				}
				if got != want {
					t.Fatalf("counter = %d, want %d", got, want)
				}
			})
		}
	}
}

// TestBarrierExchange has each node publish a value in its own slot and
// read everyone else's after the barrier.
func TestBarrierExchange(t *testing.T) {
	for _, strat := range allStrategies {
		t.Run(strat.String(), func(t *testing.T) {
			const nodes = 4
			s := newTestSystem(t, nodes, strat)
			base := s.MustAlloc("slots", 8*nodes, 3)
			binding := memory.Range{Addr: base, Size: 8 * nodes}
			bar := s.NewBarrier("exchange", 0, binding)
			if strat == Blast {
				parts := make([][]memory.Range, nodes)
				for i := range parts {
					parts[i] = []memory.Range{{Addr: base + memory.Addr(8*i), Size: 8}}
				}
				s.SetBarrierParts(bar, parts)
			}
			const rounds = 5
			err := s.Run(func(p *Proc) {
				me := p.ID()
				for r := 1; r <= rounds; r++ {
					p.WriteU64(base+memory.Addr(8*me), uint64(me*1000+r))
					p.Barrier(bar)
					for j := 0; j < nodes; j++ {
						got := p.ReadU64(base + memory.Addr(8*j))
						if got != uint64(j*1000+r) {
							panic(fmt.Sprintf("node %d round %d: slot %d = %d, want %d",
								me, r, j, got, j*1000+r))
						}
					}
					p.Barrier(bar)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// TestRebinding moves a lock's binding across a shared array, quicksort
// style, and checks the data follows the lock.
func TestRebinding(t *testing.T) {
	for _, strat := range allStrategies {
		t.Run(strat.String(), func(t *testing.T) {
			const nodes = 2
			s := newTestSystem(t, nodes, strat)
			base := s.MustAlloc("array", 1024, 3)
			task := s.NewLock("task", memory.Range{Addr: base, Size: 64})
			done := s.NewBarrier("done", 0)
			const chunks = 8
			err := s.Run(func(p *Proc) {
				for c := 0; c < chunks; c++ {
					writer := c % nodes
					if p.ID() == writer {
						p.Acquire(task)
						chunk := memory.Range{Addr: base + memory.Addr(64*c), Size: 64}
						p.Rebind(task, chunk)
						for i := 0; i < 8; i++ {
							p.WriteU64(chunk.Addr+memory.Addr(8*i), uint64(c*100+i))
						}
						p.Release(task)
					}
					p.Barrier(done)
					// The next writer acquires the (rebound) lock and sees
					// the previous chunk contents through its own copy
					// once it takes over.
				}
				// Reader pass: node 0 acquires the lock (bound to the
				// final chunk) and verifies it.
				p.Barrier(done)
				if p.ID() == 0 {
					p.Acquire(task)
					last := chunks - 1
					for i := 0; i < 8; i++ {
						got := p.ReadU64(base + memory.Addr(64*last+8*i))
						if got != uint64(last*100+i) {
							panic(fmt.Sprintf("chunk %d word %d = %d, want %d", last, i, got, last*100+i))
						}
					}
					p.Release(task)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}
