package core

import (
	"testing"

	"midway/internal/memory"
)

// newBenchSystem builds a single-node RT system with one bound lock and one
// bound barrier, tracing disabled.  Node 0 manages (and initially owns)
// object 0, so Acquire takes the local-owner fast path.
func newBenchSystem(tb testing.TB) (*System, LockID, BarrierID, memory.Addr) {
	tb.Helper()
	s, err := NewSystem(Config{Nodes: 1, Strategy: RT})
	if err != nil {
		tb.Fatal(err)
	}
	a, err := s.Alloc("x", 256, 4)
	if err != nil {
		tb.Fatal(err)
	}
	rg := memory.Range{Addr: a, Size: 256}
	l := s.NewLock("x", rg)
	b := s.NewBarrier("done", 0, rg)
	return s, l, b, a
}

// BenchmarkUntracedAcquireRelease measures the local-owner lock
// acquire/release pair with tracing disabled — the hot path every
// application leans on.  With tracing off this path must not allocate and
// must not take the System mutex (see TestUntracedAcquireReleaseZeroAlloc).
func BenchmarkUntracedAcquireRelease(b *testing.B) {
	s, l, _, _ := newBenchSystem(b)
	err := s.Run(func(p *Proc) {
		p.Acquire(l)
		p.Release(l)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Acquire(l)
			p.Release(l)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// TestUntracedAcquireReleaseZeroAlloc pins the zero-cost-when-disabled
// contract: with tracing off, the local-owner acquire/release pair takes
// no allocation — so no trace Event was constructed, no object name was
// resolved, and no System-mutex objName lookup ran on the hot path.
// The same contract covers the race detector (Config.RaceDetect, off
// here and off by default): a guarded acquire/release/store sequence must
// not construct detector state, findings, or events when the detector is
// disabled — the hot paths pay one nil check and nothing else.
func TestUntracedAcquireReleaseZeroAlloc(t *testing.T) {
	s, l, _, a := newBenchSystem(t)
	err := s.Run(func(p *Proc) {
		p.Acquire(l)
		p.WriteU64(a, 1)
		p.Release(l)
		allocs := testing.AllocsPerRun(100, func() {
			p.Acquire(l)
			p.WriteU64(a, 2)
			p.WriteU32(a+8, 3)
			p.Release(l)
		})
		if allocs != 0 {
			t.Errorf("detector-off acquire/store/release allocates %.1f objects per op, want 0", allocs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// BenchmarkDetectorDisabledStore measures the instrumented store with the
// race detector disabled — the path every production run takes, which the
// zero-cost contract says must be indistinguishable from the pre-detector
// store (one nil/bool check).
func BenchmarkDetectorDisabledStore(b *testing.B) {
	s, l, _, a := newBenchSystem(b)
	err := s.Run(func(p *Proc) {
		p.Acquire(l)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.WriteU64(a, uint64(i))
		}
		b.StopTimer()
		p.Release(l)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkUntracedBarrier measures a single-party barrier crossing with
// tracing disabled.  The protocol messages themselves allocate, but no
// trace argument may be materialized and no System-mutex name lookup may
// run.
func BenchmarkUntracedBarrier(b *testing.B) {
	s, _, bar, _ := newBenchSystem(b)
	err := s.Run(func(p *Proc) {
		p.Barrier(bar)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Barrier(bar)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
