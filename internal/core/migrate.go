package core

import (
	"fmt"

	"midway/internal/obs"
	"midway/internal/proto"
)

// Dynamic lock-home migration (Config.Migrate).
//
// The static directory answers "who brokers lock L?" with a hash of the
// object id.  That is the wrong node whenever one process dominates the
// lock's acquires: every steady-state acquire then costs a three-message
// round trip through an uninvolved broker.  Migration fixes this with a
// per-lock acquire census that travels with the token.  When one node's
// share of the recent acquires crosses MigrateThreshold, the lock's home
// moves to that node at a release boundary, after which the dominant
// acquirer's steady-state acquire is a purely local operation.
//
// The census is a decayed counter vector: when the total reaches
// MigrateWindow it halves, so the dominance signal tracks the current
// phase of the run instead of averaging over its whole history.  The
// commit is a broadcast HomeChange envelope; every node routes by its
// OWN view of the directory, updated only when it commits a move itself
// or receives the broadcast — a deterministic event under the lockstep
// engine, which keeps migrating runs byte-identical.  A stale view is
// harmless: the old home's manager entry still points down the
// forwarding chase, so a misrouted acquire costs a hop, never the token.

// homeLive reports whether node k can serve as a lock home right now: it
// must not be crashed, departed, or absent.  Routing consults this so a
// stale override pointing at a dead node falls back to the hashed home
// even before crash/drain repair rewrites the views.
func (s *System) homeLive(k int) bool {
	if k < 0 || k >= len(s.nodes) {
		return false
	}
	return s.liveMember(k)
}

// homeOverrideLocked returns this node's view of object id's migrated
// home, or -1 when none is in effect.  Caller holds n.mu (or every node
// mutex, in the crash/drain repair paths).
func (n *Node) homeOverrideLocked(id uint32) int {
	if int(id) >= len(n.homes) {
		return -1
	}
	return int(n.homes[id])
}

// homeForLocked resolves this node's current route to obj's home
// (broker): the migrated home when this node has witnessed one and it is
// live, else the static hashed manager.  Caller holds n.mu.
func (n *Node) homeForLocked(o *object) int {
	if h := n.homeOverrideLocked(o.id); h >= 0 && n.sys.homeLive(h) {
		return h
	}
	return n.sys.managerFor(o)
}

// setHomeLocked records object id's migrated home in this node's view,
// unless a newer move (larger commit stamp) was already applied — the
// guard that keeps reordered HomeChange broadcasts from rolling a lock's
// routing back.  Caller holds n.mu.
func (n *Node) setHomeLocked(id uint32, home int, stamp uint64) {
	if int(id) >= len(n.homes) {
		sz := len(n.sys.objectsSnapshot())
		if sz <= int(id) {
			sz = int(id) + 1
		}
		next := make([]int32, sz)
		for i := range next {
			next[i] = -1
		}
		copy(next, n.homes)
		n.homes = next
		st := make([]uint64, sz)
		copy(st, n.homesStamp)
		n.homesStamp = st
	}
	if stamp < n.homesStamp[id] {
		return
	}
	n.homes[id] = int32(home)
	n.homesStamp[id] = stamp
}

// repointHomeLocked force-rewrites this node's view during crash or
// drain repair, bumping the stamp past what the view had applied so a
// straggler broadcast sent before the departure cannot roll the repair
// back.  (A straggler stamped later than the repair may still land; it
// can only name the departed node — then liveness routing ignores it —
// or a live former holder, whose manager entry chases to the token.)
// Caller holds every node mutex.
func (n *Node) repointHomeLocked(id uint32, home int) {
	var stamp uint64
	if int(id) < len(n.homesStamp) {
		stamp = n.homesStamp[id]
	}
	n.setHomeLocked(id, home, stamp+1)
}

// migrateWindow returns the census decay window (total acquires before
// the per-node counts halve).
func (s *System) migrateWindow() uint32 {
	if s.cfg.MigrateWindow > 0 {
		return uint32(s.cfg.MigrateWindow)
	}
	return DefaultMigrateWindow
}

// migrateThresholdMillis returns the dominance threshold in thousandths,
// so the policy check stays in integer arithmetic (node*1000 >= t*total).
func (s *System) migrateThresholdMillis() uint32 {
	t := s.cfg.MigrateThreshold
	if t == 0 {
		t = DefaultMigrateThreshold
	}
	return uint32(t * 1000)
}

// --- per-lock census (fields live in lockState, owned by the token) ---------

// countAcquire folds one acquire by node into lk's travelling census and
// halves it at the decay window.  Caller holds the owning node's mu and
// has checked cfg.Migrate.
func (n *Node) countAcquire(lk *lockState, node int) {
	if lk.acqCount == nil {
		lk.acqCount = make([]uint32, len(n.sys.nodes))
	}
	if node < 0 || node >= len(lk.acqCount) {
		return
	}
	lk.acqCount[node]++
	lk.acqTotal++
	if lk.acqTotal >= n.sys.migrateWindow() {
		var total uint32
		for i := range lk.acqCount {
			lk.acqCount[i] /= 2
			total += lk.acqCount[i]
		}
		lk.acqTotal = total
	}
}

// dominantAcquirer returns the node whose share of lk's recent acquires
// crosses the migration threshold, or -1.  Caller holds the owning
// node's mu.
func (n *Node) dominantAcquirer(lk *lockState) int {
	if lk.acqTotal < migrateMinSamples {
		return -1
	}
	t := n.sys.migrateThresholdMillis()
	for i, c := range lk.acqCount {
		if uint64(c)*1000 >= uint64(t)*uint64(lk.acqTotal) {
			return i
		}
	}
	return -1
}

// censusTail encodes lk's census as grant-tail node counts, dropping
// zero entries.  Caller holds the owning node's mu.
func censusTail(lk *lockState) []proto.NodeCount {
	var out []proto.NodeCount
	for i, c := range lk.acqCount {
		if c > 0 {
			out = append(out, proto.NodeCount{Node: uint32(i), Count: c})
		}
	}
	return out
}

// installCensus replaces lk's census with the counts carried by a grant
// tail.  Caller holds the owning node's mu.
func (n *Node) installCensus(lk *lockState, counts []proto.NodeCount) {
	if lk.acqCount == nil {
		lk.acqCount = make([]uint32, len(n.sys.nodes))
	} else {
		for i := range lk.acqCount {
			lk.acqCount[i] = 0
		}
	}
	var total uint32
	for _, c := range counts {
		if int(c.Node) < len(lk.acqCount) {
			lk.acqCount[c.Node] = c.Count
			total += c.Count
		}
	}
	lk.acqTotal = total
}

// commitHome installs obj's new home in the committer's own view and
// broadcasts the change to every other participant, who update their
// views on receipt.  The caller is the new home and must already hold
// n.mu with the token resident, so an acquire routed by any updated view
// finds seeded manager state here.  count/total are the census figures
// that triggered the move, carried in the envelope for tracing.  at is
// the simulated commit time, which doubles as the move's stamp.
func (n *Node) commitHome(obj *object, oldHome, newHome int, count, total uint32, at uint64) {
	n.setHomeLocked(obj.id, newHome, at)
	var epoch uint64
	if mt := n.sys.members; mt != nil {
		epoch = mt.Epoch()
	}
	hc := &proto.HomeChange{
		Version: proto.HomeChangeVersion,
		Lock:    obj.id,
		NewHome: uint32(newHome),
		OldHome: uint32(oldHome),
		Epoch:   epoch,
		Count:   count,
		Total:   total,
		Cycles:  at,
	}
	for _, peer := range n.sys.nodes {
		if peer.id == n.id || !n.sys.liveMember(peer.id) {
			continue
		}
		n.sendAt(peer.id, proto.KindHomeChange, hc, at)
	}
	if t := n.sys.obs; t != nil {
		t.Emit(obs.Event{
			Cycles: at, Kind: obs.EvHomeMigrate, Node: int32(newHome),
			Peer: int32(oldHome), Obj: int32(obj.id), Name: obj.name,
			A: int64(count), B: int64(total),
		})
	}
}

// noteHomeChange witnesses a broadcast home-migration commit and updates
// this node's routing view, keyed on the commit stamp so a reordered
// older broadcast cannot overwrite a newer move.  Version skew fails the
// run: a mixed-version fleet must not silently disagree about lock
// routing.
func (n *Node) noteHomeChange(hc *proto.HomeChange, arrival uint64) {
	_ = arrival
	if hc.Version != proto.HomeChangeVersion {
		n.sys.fail(fmt.Errorf("core: node %d: home-change version %d for lock %d (want %d)",
			n.id, hc.Version, hc.Lock, proto.HomeChangeVersion))
		return
	}
	n.mu.Lock()
	n.setHomeLocked(hc.Lock, int(hc.NewHome), hc.Cycles)
	n.mu.Unlock()
}
