package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"midway/internal/memory"
)

// TestLockContentionStorm has every node fight over a single lock,
// exercising the manager's optimistic forwarding and the owner-chase path
// under maximal contention.
func TestLockContentionStorm(t *testing.T) {
	for _, strat := range allStrategies {
		t.Run(strat.String(), func(t *testing.T) {
			const nodes = 8
			const perNode = 50
			s := newTestSystem(t, nodes, strat)
			addr := s.MustAlloc("hot", 8, 3)
			lock := s.NewLock("hot", memory.Range{Addr: addr, Size: 8})
			err := s.Run(func(p *Proc) {
				for i := 0; i < perNode; i++ {
					p.Acquire(lock)
					p.WriteU64(addr, p.ReadU64(addr)+1)
					p.Release(lock)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			var got uint64
			for i := 0; i < nodes; i++ {
				n := s.Node(i)
				n.mu.Lock()
				if n.lockState(uint32(lock)).owner {
					got = n.inst.ReadU64(addr)
				}
				n.mu.Unlock()
			}
			if got != nodes*perNode {
				t.Errorf("counter = %d, want %d", got, nodes*perNode)
			}
		})
	}
}

// TestConcurrentSharedReaders has many readers pull snapshots while a
// writer updates under barrier separation, checking reader grants never
// disturb ownership.
func TestConcurrentSharedReaders(t *testing.T) {
	const nodes = 6
	const rounds = 10
	s := newTestSystem(t, nodes, RT)
	addr := s.MustAlloc("data", 64, 3)
	rg := memory.Range{Addr: addr, Size: 64}
	lock := s.NewLock("data", rg)
	bar := s.NewBarrier("round", 0)
	var readerChecks atomic.Uint64
	err := s.Run(func(p *Proc) {
		for r := 1; r <= rounds; r++ {
			if p.ID() == 0 {
				p.Acquire(lock)
				for w := 0; w < 8; w++ {
					p.WriteU64(addr+memory.Addr(8*w), uint64(r*10+w))
				}
				p.Release(lock)
			}
			p.Barrier(bar)
			// All nodes (including the writer) read the snapshot
			// concurrently.
			p.AcquireShared(lock)
			for w := 0; w < 8; w++ {
				if got := p.ReadU64(addr + memory.Addr(8*w)); got != uint64(r*10+w) {
					panic(fmt.Sprintf("node %d round %d word %d = %d", p.ID(), r, w, got))
				}
			}
			readerChecks.Add(1)
			p.Release(lock)
			p.Barrier(bar)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if readerChecks.Load() != nodes*rounds {
		t.Errorf("reader checks = %d, want %d", readerChecks.Load(), nodes*rounds)
	}
	// Ownership must still be with node 0, the only exclusive holder.
	n := s.Node(0)
	n.mu.Lock()
	owner := n.lockState(uint32(lock)).owner
	n.mu.Unlock()
	if !owner {
		t.Error("shared grants moved ownership away from the writer")
	}
}

// TestManyObjects allocates hundreds of synchronization objects to check
// the manager distribution and the object table at scale.
func TestManyObjects(t *testing.T) {
	const nodes = 4
	const objects = 300
	s := newTestSystem(t, nodes, VM)
	arr := s.MustAlloc("cells", 8*objects, 3)
	locks := make([]LockID, objects)
	for i := range locks {
		locks[i] = s.NewLock(fmt.Sprintf("o%d", i),
			memory.Range{Addr: arr + memory.Addr(8*i), Size: 8})
	}
	err := s.Run(func(p *Proc) {
		// Each node touches every object once, striped to force manager
		// traffic on most of them.
		for i := p.ID(); i < objects; i += nodes {
			p.Acquire(locks[i])
			p.WriteU64(arr+memory.Addr(8*i), uint64(i))
			p.Release(locks[i])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSingleNodeDegenerate: every strategy collapses gracefully to one
// processor (no communication, everything local).
func TestSingleNodeDegenerate(t *testing.T) {
	for _, strat := range append(allStrategies, None) {
		t.Run(strat.String(), func(t *testing.T) {
			s := newTestSystem(t, 1, strat)
			addr := s.MustAlloc("x", 32, 3)
			lock := s.NewLock("x", memory.Range{Addr: addr, Size: 32})
			bar := s.NewBarrier("b", 0, memory.Range{Addr: addr, Size: 32})
			if strat == Blast {
				s.SetBarrierParts(bar, [][]memory.Range{{{Addr: addr, Size: 32}}})
			}
			err := s.Run(func(p *Proc) {
				p.Acquire(lock)
				p.WriteU64(addr, 42)
				p.Release(lock)
				p.Barrier(bar)
				if got := p.ReadU64(addr); got != 42 {
					panic(got)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			// No remote messages on a single node.
			if msgs := s.Node(0).Stats().Messages; msgs != 0 {
				t.Errorf("single node sent %d remote messages", msgs)
			}
		})
	}
}
