package core

// Elastic membership: runtime node join and leave, coordinated at release
// boundaries.
//
// Entry consistency makes membership change cheap for the same reason it
// makes crash recovery cheap (see crash.go): all shared data is bound to
// synchronization objects, and writes only become visible across a
// release/acquire pair.  A joiner therefore needs no coherent global
// snapshot — it needs the lock/barrier directory, the barrier-bound data
// (anything torn in it is re-shipped at the joiner's first enter), and a
// guarantee that its first acquire of every lock ships full data.  That
// guarantee is the same binding-generation fence crash reclamation uses:
// the admission bumps every lock's generation past anything any node has
// seen, and seeds the joiner at generation zero, so the releaser ignores
// the joiner's (empty or stale) consistency record under every detection
// scheme.
//
// A leaver drains gracefully at its last release boundary: owned lock
// tokens move — with the leaver's released copy, which is authoritative —
// to a successor under the same fence; queued requests are re-driven at
// the new home; barrier management moves off the leaver and the smaller
// membership may immediately complete an in-progress epoch.  The leaver
// then fences itself exactly like a recovered corpse (ghost routing), so
// stragglers chase the new token homes.  A crash during the drain falls
// back to ordinary reclamation: member.Table.MarkDead accepts a draining
// node, and the double-commit fence makes whichever transition commits
// first the only one that acts.
//
// The join handshake rides real protocol messages (JoinRequest from the
// joiner's endpoint, JoinAccept and a MembershipChange broadcast from the
// sponsor), so under the lockstep engine the admission happens inside a
// delivery phase — a deterministic simulated instant — and a repeated
// churn schedule is byte-identical run to run.  The sponsor is the member
// whose application called Proc.Join: it parks for the handshake, which
// pins it at a release boundary and makes its copy of the barrier-bound
// data safe to hand over.

import (
	"errors"
	"fmt"

	"midway/internal/member"
	"midway/internal/memory"
	"midway/internal/obs"
	"midway/internal/proto"
)

// errLeft terminates the proc hosted on a gracefully departed node.  Run
// treats it like errCrashed: the goroutine unwinds silently.
var errLeft = errors.New("core: proc departed by graceful leave")

// --- Accessors ---------------------------------------------------------------

// Members returns the node ids currently participating in the protocol:
// the live and draining members of an elastic system, or every hosted
// non-crashed node of a fixed one.
func (s *System) Members() []int {
	if s.members != nil {
		return s.members.Members()
	}
	out := make([]int, 0, len(s.nodes))
	for i, n := range s.nodes {
		if n != nil && !s.isCrashed(i) {
			out = append(out, i)
		}
	}
	return out
}

// MembershipEpoch returns the current membership generation (zero for a
// fixed-membership system, whose epoch never moves).
func (s *System) MembershipEpoch() uint64 {
	if s.members != nil {
		return s.members.Epoch()
	}
	return 0
}

// MembershipEvents returns the committed membership timeline, or nil for
// a fixed-membership system.
func (s *System) MembershipEvents() []member.Event {
	if s.members != nil {
		return s.members.Events()
	}
	return nil
}

// MemberStatus returns node i's membership state.  Fixed-membership
// systems report hosted nodes as live and everything else as absent.
func (s *System) MemberStatus(i int) member.Status {
	if s.members != nil {
		return s.members.Status(i)
	}
	if i >= 0 && i < len(s.nodes) && s.nodes[i] != nil && !s.isCrashed(i) {
		return member.Live
	}
	return member.Absent
}

// --- Join --------------------------------------------------------------------

// joinFrom runs the sponsor side of a join: reserve the id, send the
// handshake from the joiner's endpoint, and park the calling application
// goroutine (node origin) until the joiner's proc is launched.  Parking
// the sponsor is load-bearing twice over: it pins the sponsor at a
// release boundary while its memory is copied (no torn reads of data it
// might otherwise be writing), and under the goroutine engine it keeps
// the run's WaitGroup nonzero while the joiner is added.
func (s *System) joinFrom(id, origin int) error {
	mt := s.members
	if mt == nil {
		return fmt.Errorf("core: Join requires elastic membership (Config.MaxNodes)")
	}
	s.mu.Lock()
	running := s.frozen && !s.finished
	s.mu.Unlock()
	if !running {
		return fmt.Errorf("core: Join(%d) outside a run", id)
	}
	if !mt.IsMember(origin) {
		return fmt.Errorf("core: node %d cannot sponsor a join: not a member", origin)
	}
	if err := mt.BeginJoin(id); err != nil {
		return err
	}
	jn, on := s.nodes[id], s.nodes[origin]
	ready := make(chan struct{})
	jn.mu.Lock()
	jn.joinedCh = ready
	jn.joinSponsor = origin
	jn.mu.Unlock()

	// The request is charged to the joiner (it dials the mesh); its clock
	// has not joined the simulation yet, so the message is stamped with
	// the sponsor's current time.
	req := &proto.JoinRequest{Version: proto.JoinVersion, Node: uint32(id), Epoch: mt.Epoch()}
	jn.sendAt(origin, proto.KindJoinRequest, req, on.cycles.Now())

	finish := func() error {
		// The handshake's completion time is a synchronization point the
		// sponsor blocked for: its clock joins it, exactly as a lock
		// grant's arrival.
		jn.mu.Lock()
		doneAt, ok := jn.joinDoneAt, jn.joinOK
		jn.mu.Unlock()
		on.cycles.Join(doneAt)
		if !ok {
			return fmt.Errorf("core: join of node %d failed (status %s)", id, mt.Status(id))
		}
		return nil
	}
	if e := s.eng; e != nil {
		for {
			select {
			case <-ready:
				return finish()
			case <-s.failCh:
				panic(errAborted)
			case <-on.crashCh:
				panic(errCrashed)
			default:
			}
			if !e.Block(origin) {
				break // aborted: the blocking select below resolves it
			}
		}
	}
	select {
	case <-ready:
		return finish()
	case <-s.failCh:
		panic(errAborted)
	case <-on.crashCh:
		panic(errCrashed)
	}
}

// signalJoinDone releases a sponsor parked in joinFrom on node k's
// handshake, if one is pending.  The success and failure paths share it;
// ok tells them apart, captured here rather than left for the sponsor to
// infer from the member table: the sponsor's goroutine may not be
// scheduled until long after the handshake — late enough that the joiner
// has already drained away — and a committed join must still report
// success.  at is the simulated completion time the sponsor's clock
// joins on resume, so the measured join latency covers the whole
// handshake.
func (s *System) signalJoinDone(k int, at uint64, ok bool) {
	jn := s.nodes[k]
	jn.mu.Lock()
	ready := jn.joinedCh
	sponsor := jn.joinSponsor
	jn.joinedCh = nil
	jn.joinSponsor = -1
	jn.joinDoneAt = at
	jn.joinOK = ok
	jn.mu.Unlock()
	if ready == nil {
		return
	}
	close(ready)
	if e := s.eng; e != nil && sponsor >= 0 {
		e.Wake(sponsor)
	}
}

// sponsorAdmit runs on the sponsor when a JoinRequest arrives: it splices
// the joiner into every synchronization object's protocol state under a
// full-system freeze (every node mutex, id order — the crash-recovery
// discipline), commits the membership transition, and answers with the
// directory, the barrier-bound data and a MembershipChange broadcast.
func (n *Node) sponsorAdmit(req *proto.JoinRequest, arrival uint64) {
	s := n.sys
	mt := s.members
	if mt == nil {
		s.fail(fmt.Errorf("core: node %d: join request without elastic membership", n.id))
		return
	}
	k := int(req.Node)
	if req.Version != proto.JoinVersion {
		s.fail(fmt.Errorf("core: node %d: join request version %d from node %d (want %d)",
			n.id, req.Version, k, proto.JoinVersion))
		return
	}
	if k < 0 || k >= len(s.nodes) || mt.Status(k) != member.Joining {
		return // a stale or duplicate handshake; nothing was reserved for it
	}
	if tr := s.obs; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvJoinRequest, Cycles: arrival, Node: int32(n.id),
			Peer: int32(k), A: int64(req.Epoch),
		})
	}
	jn := s.nodes[k]

	for _, nd := range s.nodes {
		nd.mu.Lock()
	}
	if mt.Status(k) != member.Joining {
		// A crash declaration raced the handshake and fenced the id.
		for _, nd := range s.nodes {
			nd.mu.Unlock()
		}
		return
	}

	// Blank-slate the joiner: a rejoining id has the ghost state of its
	// previous incarnation behind it, all of it superseded at departure.
	jn.locks = make(map[uint32]*lockState)
	jn.mgr = make(map[uint32]*mgrLock)
	jn.barriers = make(map[uint32]*barrierState)
	jn.bmgr = make(map[uint32]*bmgrBarrier)
	jn.ghost.Store(false)

	epoch := mt.CommitJoin(k, arrival)

	var dir []proto.JoinDirEntry
	var data []proto.Update
	var dataBytes uint64
	for _, o := range s.objectsSnapshot() {
		switch o.kind {
		case ObjLock:
			home, gen := s.admitLockLocked(o, k)
			dir = append(dir, proto.JoinDirEntry{Obj: o.id, Gen: gen, Home: uint32(home)})
		case ObjBarrier:
			home, ep := s.admitBarrierLocked(o, k)
			dir = append(dir, proto.JoinDirEntry{Obj: o.id, Barrier: true, Gen: ep, Home: uint32(home)})
			// The sponsor's copy of the barrier-bound data rides the
			// accept.  It is safe even though other members may be
			// mid-interval: whatever they are writing is re-shipped to the
			// joiner at its first enter, and the sponsor itself is parked
			// in joinFrom, so its own copy is not being written.
			for _, rg := range o.binding {
				buf := make([]byte, rg.Size)
				n.inst.ReadBytes(rg, buf)
				data = append(data, proto.Update{Addr: rg.Addr, Data: buf})
				dataBytes += uint64(rg.Size)
			}
		}
	}
	for _, nd := range s.nodes {
		nd.mu.Unlock()
	}

	n.st.BytesTransferred.Add(dataBytes)
	if tr := s.obs; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvStateTransfer, Cycles: arrival, Node: int32(n.id),
			Peer: int32(k), A: int64(len(dir)), Bytes: dataBytes,
		})
		tr.Emit(obs.Event{
			Kind: obs.EvMembershipChange, Cycles: arrival, Node: int32(n.id),
			Peer: int32(k), A: int64(epoch), B: int64(member.Joined),
		})
	}
	if cb := s.cfg.OnMembership; cb != nil {
		cb(k, member.Joined, epoch)
	}

	acc := &proto.JoinAccept{Epoch: epoch, Sponsor: uint32(n.id), Dir: dir, Data: data}
	n.sendAt(k, proto.KindJoinAccept, acc, arrival)
	mc := &proto.MembershipChange{Epoch: epoch, Node: uint32(k), Action: proto.MemberJoined, Cycles: arrival}
	for _, m := range mt.Members() {
		if m == n.id || m == k {
			continue
		}
		n.sendAt(m, proto.KindMembershipChange, mc, arrival)
	}
}

// admitLockLocked splices joiner k into one lock's protocol state and
// returns the token's home plus the fence generation recorded in the join
// directory.  Caller holds every node mutex, with the joiner's maps
// freshly reset.
func (s *System) admitLockLocked(o *object, k int) (home int, gen uint64) {
	jn := s.nodes[k]
	// Seed the joiner's view before materializing the others: blank,
	// non-owner, generation zero — so its first acquire's consistency
	// record mismatches every post-fence generation and the releaser
	// ships full data under every scheme.  (The lazy constructor would
	// mark a rejoining founding manager as owner, which is exactly wrong:
	// ownership stayed with the members when it left.)
	jl := jn.lockState(o.id)
	jl.owner = false
	jl.held = false
	jl.forwardedTo = -1
	jl.forwardedAt = 0
	jl.bindGen = 0
	jl.pendingFence = 0
	jl.inflight = nil
	jl.redriveGen = 0
	jl.det = nil

	views := make([]*lockState, len(s.nodes))
	for i, nd := range s.nodes {
		views[i] = nd.lockState(o.id)
	}
	var maxGen uint64
	for _, v := range views {
		if v.bindGen > maxGen {
			maxGen = v.bindGen
		}
		if v.pendingFence > maxGen {
			maxGen = v.pendingFence
		}
	}
	gen = maxGen + 1

	owner := -1
	for i, v := range views {
		if i != k && v.owner {
			owner = i
			break
		}
	}
	if owner >= 0 {
		// Fence at the authority: the next transfer from it ships full
		// data, resynchronizing the joiner no matter which scheme runs.
		v := views[owner]
		v.rebound = true
		v.bindGen = gen
		s.nodes[owner].det.NotifyRebind(v)
		home = owner
	} else {
		// The token is in flight.  Park the fence on the latest grant's
		// target; applyGrant installs it the moment the grant lands
		// (lockState.pendingFence), before any transfer to the joiner can
		// be served.
		target, latestAt := s.managerFor(o), int64(-1)
		for i, v := range views {
			if i != k && v.forwardedTo >= 0 && v.forwardedAt > latestAt {
				latestAt = v.forwardedAt
				target = v.forwardedTo
			}
		}
		if views[target].pendingFence < gen {
			views[target].pendingFence = gen
		}
		home = target
	}

	// A rejoining founding manager resumes its routing role at the
	// token's current location.
	if o.manager == k {
		jn.mgr[o.id] = &mgrLock{owner: home}
	}
	// The binding travels with the lock; seed the joiner from the home's
	// view (refined anyway by its first grant).
	jl.binding = append([]memory.Range(nil), views[home].binding...)
	return home, gen
}

// admitBarrierLocked splices joiner k into one barrier and returns the
// barrier's manager plus the epoch the joiner enters at.  Caller holds
// every node mutex.
func (s *System) admitBarrierLocked(o *object, k int) (home int, epoch uint64) {
	jn := s.nodes[k]
	// managerFor reflects the post-commit membership, so a rejoining
	// founding manager reclaims the role here; the epoch state moves with
	// it (bmgr is moved, never copied, so at most one node holds it).
	mgr := s.managerFor(o)
	mgrNode := s.nodes[mgr]
	cur := -1
	for i, nd := range s.nodes {
		if nd.bmgr[o.id] != nil {
			cur = i
			break
		}
	}
	if cur >= 0 && cur != mgr {
		st := s.nodes[cur].bmgr[o.id]
		st.bufs = nil // re-homed enters outlive the deferred-recycle contract
		if mgrNode.bmgr[o.id] == nil {
			mgrNode.bmgr[o.id] = st
		}
		delete(s.nodes[cur].bmgr, o.id)
	}
	if mb := mgrNode.bmgr[o.id]; mb != nil {
		epoch = mb.epoch
	}

	// The joiner starts at the manager's current epoch.  The sponsor is
	// parked at a release boundary, so its applied epoch equals the
	// manager's for every all-member barrier (a completed epoch's release
	// cannot still be in flight toward it), which makes the data it hands
	// over consistent with this seed.
	jb := jn.barrierState(o.id)
	jb.epoch = epoch
	jb.nextRelease = epoch
	jb.det = nil
	jb.lastEnter, jb.prevEnter = nil, nil
	jb.pending = false
	return mgr, epoch
}

// completeJoin runs on the joiner when the sponsor's JoinAccept arrives:
// install the transferred data raw (the analogue of the startup preset —
// no trapping, no counting), join the simulated clock, launch the proc
// and release the parked sponsor.
func (n *Node) completeJoin(acc *proto.JoinAccept, arrival uint64) {
	s := n.sys
	if s.members == nil {
		return
	}
	for _, u := range acc.Data {
		n.inst.WriteBytes(memory.Range{Addr: u.Addr, Size: uint32(len(u.Data))}, u.Data)
	}
	n.cycles.Join(arrival)
	// A rejoining id reuses its Node: clear the previous incarnation's
	// Leave flag before the relaunch, or the new proc's first store is
	// misflagged as a write-after-Leave.  The old goroutine unwound
	// before the departure was announced, and the relaunch below orders
	// this write before the new goroutine's first read.
	n.left = false

	if e := s.eng; e != nil {
		// Lockstep: completeJoin runs in a delivery phase (the engine
		// goroutine), exactly where Launch is legal; the proc resumes when
		// the next parallel phase opens.
		if !e.Launch(n.id, func(i int) { s.runFn(i, s.nodes[i]) }) {
			s.fail(fmt.Errorf("core: node %d: join launch rejected by engine", n.id))
			return
		}
	} else {
		s.runWG.Add(1)
		go func() {
			defer s.runWG.Done()
			s.runFn(n.id, n)
		}()
	}
	s.signalJoinDone(n.id, arrival, true)
}

// noteMembership witnesses a MembershipChange announcement.  The shared
// member table was already updated by the coordinator (this process hosts
// every node), so the broadcast's role is wire-level: it carries the new
// epoch to every member's endpoint — the cost a real deployment would pay,
// and the fence generation a multi-process one would synchronize on.
func (n *Node) noteMembership(mc *proto.MembershipChange, arrival uint64) {
	_, _ = mc, arrival
}

// --- Leave -------------------------------------------------------------------

// DrainNode requests a graceful departure: Proc.Draining starts reporting
// true on node k, whose application is expected to finish its current
// unit of work and call Proc.Leave at its next release boundary.  The
// transition itself is protocol-invisible (draining members still answer
// all traffic and count toward barriers), so external callers — signal
// handlers, churn schedules — do not perturb determinism.  Reports
// whether the node was live.
func (s *System) DrainNode(k int) bool {
	mt := s.members
	if mt == nil || k < 0 || k >= len(s.nodes) {
		return false
	}
	if !mt.BeginDrain(k) {
		return false
	}
	if tr := s.obs; tr != nil {
		var at uint64
		if n := s.nodes[k]; n != nil {
			at = n.cycles.Now()
		}
		tr.Emit(obs.Event{Kind: obs.EvDrain, Cycles: at, Node: int32(k), A: 0})
	}
	return true
}

// leaveNodeFrom is the graceful-departure analogue of killNodeFrom:
// under the lockstep engine the drain is deferred to the next quiescence
// point, making the handoff — and therefore the whole churn schedule —
// byte-deterministic.
func (s *System) leaveNodeFrom(k, origin int) {
	if e := s.eng; e != nil {
		s.mu.Lock()
		engineLive := s.frozen && !s.finished
		s.mu.Unlock()
		if engineLive {
			e.RunAtQuiescence(origin, func() { s.leaveNodeBody(k) })
			return
		}
	}
	s.leaveNodeBody(k)
}

// leaveNodeBody performs the drain: under a full-system freeze, every
// owned lock token (with the leaver's released copy, which is
// authoritative) moves to a successor behind a full-data fence, queued
// requests are collected for re-drive, barrier management moves off the
// leaver, and the departure commits and is announced.  The leaver then
// fences itself like a recovered corpse — except its crash channel stays
// open (the proc unwinds through errLeft, not errCrashed) and its id
// stays rejoinable.
func (s *System) leaveNodeBody(k int) {
	mt := s.members
	kn := s.nodes[k]
	at := kn.cycles.Now()

	if tr := s.obs; tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvDrain, Cycles: at, Node: int32(k), A: 1})
	}

	for _, nd := range s.nodes {
		nd.mu.Lock()
	}
	if !mt.IsMember(k) {
		// A crash declaration won the race; reclamation already ran and
		// the double-commit fence forbids a second handoff.
		for _, nd := range s.nodes {
			nd.mu.Unlock()
		}
		return
	}

	var acts recoveryActions
	for _, o := range s.objectsSnapshot() {
		switch o.kind {
		case ObjLock:
			s.leaveLockLocked(o, k, at, &acts)
		case ObjBarrier:
			s.leaveBarrierLocked(o, k, &acts)
		}
	}

	epoch := mt.CommitLeave(k, at)

	kn.ghost.Store(true)
	select {
	case <-kn.unghosted:
		// Already closed by a previous departure of this id (it rejoined
		// in between); the channel is closed exactly once and never
		// replaced, so ghost routing re-checks the flag instead.
	default:
		close(kn.unghosted)
	}
	for _, nd := range s.nodes {
		nd.mu.Unlock()
	}

	if tr := s.obs; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvMembershipChange, Cycles: at, Node: int32(k),
			Peer: int32(k), A: int64(epoch), B: int64(member.Departed),
		})
	}
	if cb := s.cfg.OnMembership; cb != nil {
		cb(k, member.Departed, epoch)
	}

	// The departure announcement is the leaver's final protocol act.  It
	// is stamped with the committed epoch, so the receivers' stale-epoch
	// fence passes it.
	mc := &proto.MembershipChange{Epoch: epoch, Node: uint32(k), Action: proto.MemberLeft, Cycles: at}
	for _, m := range mt.Members() {
		kn.sendAt(m, proto.KindMembershipChange, mc, at)
	}

	// Hand the leaver's queued work to the new token homes, and close out
	// any barrier epoch the smaller membership completed.
	for _, a := range acts.lockRedrives {
		a.holder.ownerForward(a.req, a.at)
	}
	for _, o := range acts.completions {
		s.nodes[s.managerFor(o)].maybeCompleteBarrier(o)
	}
}

// managerExcluding resolves the managing node for obj as if node k had
// already departed: the next remaining founding member in ring order, or
// the lowest remaining member, or -1 when k is the last member.
func (s *System) managerExcluding(o *object, k int) int {
	nf := s.cfg.Nodes
	for d := 0; d < nf; d++ {
		c := (o.manager + d) % nf
		if c != k && s.liveMember(c) {
			return c
		}
	}
	for i := range s.nodes {
		if i != k && s.liveMember(i) {
			return i
		}
	}
	return -1
}

// leaveLockLocked hands one lock's state off the departing node k.
// Unlike crash reclamation, the leaver's last released copy is the
// newest consistent state and moves verbatim to the successor — under
// the same full-data fence a reclaim installs, so the next transfer
// resynchronizes every scheme.  Caller holds every node mutex.
func (s *System) leaveLockLocked(o *object, k int, at uint64, acts *recoveryActions) {
	views := make([]*lockState, len(s.nodes))
	for i, nd := range s.nodes {
		views[i] = nd.lockState(o.id)
	}
	kv := views[k]

	// Locate the token: the same grant-chain walk crash recovery uses.
	latestTarget, latestAt := -1, int64(-1)
	for _, v := range views {
		if v.forwardedTo >= 0 && v.forwardedAt > latestAt {
			latestAt = v.forwardedAt
			latestTarget = v.forwardedTo
		}
	}
	tokenAt := o.manager
	if latestTarget >= 0 {
		tokenAt = latestTarget
	}

	final := tokenAt
	if tokenAt == k {
		succ := s.managerExcluding(o, k)
		if succ < 0 {
			// Last member out: the token retires with the membership.
			kv.owner = false
			kv.held = false
			kv.forwardedTo = -1
			kv.waiting, kv.inflight = nil, nil
			return
		}
		var maxGen uint64
		for _, v := range views {
			if v.bindGen > maxGen {
				maxGen = v.bindGen
			}
			if v.pendingFence > maxGen {
				maxGen = v.pendingFence
			}
		}
		sv := views[succ]
		var moved uint64
		for _, rg := range kv.binding {
			buf := make([]byte, rg.Size)
			s.nodes[k].inst.ReadBytes(rg, buf)
			s.nodes[succ].inst.WriteBytes(rg, buf)
			moved += uint64(rg.Size)
		}
		sv.owner = true
		sv.held = false
		sv.forwardedTo = -1
		sv.binding = append([]memory.Range(nil), kv.binding...)
		sv.rebound = true
		sv.bindGen = maxGen + 1
		sv.pendingFence = 0
		// The handoff is a synchronization edge like any grant: the
		// successor must witness the leaver's clock, or the stamps on its
		// rebind full-resync could lose to stamps other nodes obtained
		// through the leaver and the resync would be discarded as stale.
		s.nodes[succ].lamport.Witness(s.nodes[k].lamport.Now())
		s.nodes[succ].det.NotifyRebind(sv)
		s.nodes[k].st.BytesTransferred.Add(moved)
		if tr := s.obs; tr != nil {
			tr.Emit(obs.Event{
				Kind: obs.EvStateTransfer, Cycles: at, Node: int32(k),
				Obj: int32(o.id), Peer: int32(succ), Name: o.name,
				A: int64(sv.bindGen), Bytes: moved,
			})
		}
		final = succ
	}

	// The leaver's own view becomes a ghost bounce toward the token.
	kv.owner = false
	kv.held = false
	kv.forwardedTo = final
	for _, p := range kv.waiting {
		if !s.liveMember(int(p.req.Requester)) {
			continue
		}
		acts.lockRedrives = append(acts.lockRedrives, lockRedrive{
			holder: s.nodes[final],
			req:    p.req,
			at:     max(p.arrival, at),
		})
	}
	kv.waiting = nil
	kv.inflight = nil

	// Redirect pointers that end at the leaver.
	for i, v := range views {
		if i == k {
			continue
		}
		if v.forwardedTo == k {
			if i == final {
				v.forwardedTo = -1
			} else {
				v.forwardedTo = final
			}
		}
	}

	// Reseed lock routing at the post-departure manager (and the founding
	// manager, whose routing stays authoritative while it is a member).
	seedMgr := func(nd *Node) {
		if ml := nd.mgr[o.id]; ml != nil {
			ml.owner = final
		} else {
			nd.mgr[o.id] = &mgrLock{owner: final}
		}
	}
	if mgr := s.managerExcluding(o, k); mgr >= 0 {
		seedMgr(s.nodes[mgr])
		if o.manager != mgr && o.manager != k && s.liveMember(o.manager) {
			seedMgr(s.nodes[o.manager])
		}
	}
	if s.cfg.Migrate {
		// Repair every remaining node's routing view: an override naming
		// the leaver (or any departed node) hands the brokering role to
		// the token's new location along with the token.
		repointed := false
		for _, peer := range s.nodes {
			if peer.id == k || !s.liveMember(peer.id) {
				continue
			}
			h := peer.homeOverrideLocked(o.id)
			if h < 0 {
				continue
			}
			if h == k || !s.homeLive(h) {
				peer.repointHomeLocked(o.id, final)
				repointed = true
			} else {
				seedMgr(s.nodes[h])
			}
		}
		if repointed {
			seedMgr(s.nodes[final])
		}
	}
}

// leaveBarrierLocked removes departing node k from one all-member
// barrier: the manager role (with its in-progress epoch state) moves off
// the leaver, and the smaller membership may already complete the current
// epoch — the leaver "synthesizes its departure" simply by leaving the
// count barrierNeeded recomputes from the member table.  The leaver
// cannot have an enter recorded in the current epoch (it is at a release
// boundary), so no entry needs dropping.  Caller holds every node mutex.
func (s *System) leaveBarrierLocked(o *object, k int, acts *recoveryActions) {
	if o.parties != s.cfg.Nodes {
		return // custom-parties barriers have no membership mapping
	}
	mgr := s.managerExcluding(o, k)
	if mgr < 0 {
		return // last member out
	}
	mgrNode := s.nodes[mgr]
	if kb := s.nodes[k].bmgr[o.id]; kb != nil {
		kb.bufs = nil
		if mgrNode.bmgr[o.id] == nil {
			mgrNode.bmgr[o.id] = kb
		}
		delete(s.nodes[k].bmgr, o.id)
	}
	acts.completions = append(acts.completions, o)
}
