package core

import (
	"fmt"
	"testing"

	"midway/internal/memory"
)

// TestBarrierEpochDiscipline: repeated crossings advance epochs in
// lockstep and updates from episode k never leak into episode k+1.
func TestBarrierEpochDiscipline(t *testing.T) {
	const nodes = 4
	const rounds = 20
	s := newTestSystem(t, nodes, RT)
	slots := s.MustAlloc("slots", 8*nodes, 3)
	bar := s.NewBarrier("b", 0, memory.Range{Addr: slots, Size: 8 * nodes})
	err := s.Run(func(p *Proc) {
		me := p.ID()
		for r := 1; r <= rounds; r++ {
			p.WriteU64(slots+memory.Addr(8*me), uint64(r))
			p.Barrier(bar)
			for j := 0; j < nodes; j++ {
				if got := p.ReadU64(slots + memory.Addr(8*j)); got != uint64(r) {
					panic(fmt.Sprintf("node %d round %d: slot %d = %d", me, r, j, got))
				}
			}
			p.Barrier(bar)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if got := s.Node(i).Stats().BarrierCrossings; got != 2*rounds {
			t.Errorf("node %d crossed %d barriers, want %d", i, got, 2*rounds)
		}
	}
}

// TestMultipleBarriers: interleaved use of several barriers with
// different managers keeps their epochs independent.
func TestMultipleBarriers(t *testing.T) {
	const nodes = 3
	s := newTestSystem(t, nodes, VM)
	a := s.MustAlloc("a", 8*nodes, 3)
	b := s.MustAlloc("b", 8*nodes, 3)
	barA := s.NewBarrier("A", 0, memory.Range{Addr: a, Size: 8 * nodes})
	barB := s.NewBarrier("B", 0, memory.Range{Addr: b, Size: 8 * nodes})
	err := s.Run(func(p *Proc) {
		me := p.ID()
		for r := 1; r <= 5; r++ {
			p.WriteU64(a+memory.Addr(8*me), uint64(100*r))
			p.Barrier(barA)
			p.WriteU64(b+memory.Addr(8*me), uint64(200*r))
			p.Barrier(barB)
			for j := 0; j < nodes; j++ {
				if p.ReadU64(a+memory.Addr(8*j)) != uint64(100*r) {
					panic("barrier A data wrong")
				}
				if p.ReadU64(b+memory.Addr(8*j)) != uint64(200*r) {
					panic("barrier B data wrong")
				}
			}
			p.Barrier(barA)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPartialBarrier: a barrier over a subset of the processors releases
// as soon as its parties arrive.
func TestPartialBarrier(t *testing.T) {
	const nodes = 4
	s := newTestSystem(t, nodes, RT)
	x := s.MustAlloc("x", 8, 3)
	pair := s.NewBarrier("pair", 2, memory.Range{Addr: x, Size: 8})
	all := s.NewBarrier("all", 0)
	err := s.Run(func(p *Proc) {
		// Only nodes 0 and 1 participate in the pair barrier; the others
		// would deadlock it if parties were miscounted.
		if p.ID() == 0 {
			p.WriteU64(x, 77)
			p.Barrier(pair)
		}
		if p.ID() == 1 {
			p.Barrier(pair)
			if got := p.ReadU64(x); got != 77 {
				panic(fmt.Sprintf("pair barrier data = %d", got))
			}
		}
		p.Barrier(all)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBlastBarrierRequiresParts: a bound barrier under Blast without
// declared parts is a detectable configuration error.
func TestBlastBarrierRequiresParts(t *testing.T) {
	s := newTestSystem(t, 2, Blast)
	x := s.MustAlloc("x", 8, 3)
	bar := s.NewBarrier("b", 0, memory.Range{Addr: x, Size: 8})
	err := s.Run(func(p *Proc) {
		p.Barrier(bar)
	})
	if err == nil {
		t.Fatal("Blast bound barrier without parts did not fail")
	}
}

// TestUnboundBarrierPureSync: barriers with no binding move no data.
func TestUnboundBarrierPureSync(t *testing.T) {
	s := newTestSystem(t, 4, RT)
	bar := s.NewBarrier("sync", 0)
	err := s.Run(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Barrier(bar)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalStats().BytesTransferred; got != 0 {
		t.Errorf("unbound barrier moved %d bytes", got)
	}
}

// TestWriteBytesAcrossRegions: an area store spanning a region boundary is
// trapped in every touched region under each strategy.
func TestWriteBytesAcrossRegions(t *testing.T) {
	for _, strat := range allStrategies {
		t.Run(strat.String(), func(t *testing.T) {
			s, err := NewSystem(Config{Nodes: 2, Strategy: strat, RegionShift: 12})
			if err != nil {
				t.Fatal(err)
			}
			// > one region forces a multi-region span.
			addr := s.MustAlloc("big", 3*4096, 3)
			rg := memory.Range{Addr: addr + 4000, Size: 200} // straddles a boundary
			lock := s.NewLock("big", rg)
			bar := s.NewBarrier("done", 0)
			src := make([]byte, 200)
			for i := range src {
				src[i] = byte(i)
			}
			err = s.Run(func(p *Proc) {
				if p.ID() == 0 {
					p.Acquire(lock)
					p.WriteBytes(rg, src)
					p.Release(lock)
				}
				p.Barrier(bar)
				if p.ID() == 1 {
					p.Acquire(lock)
					dst := make([]byte, 200)
					p.ReadBytes(rg, dst)
					for i := range src {
						if dst[i] != src[i] {
							panic(fmt.Sprintf("byte %d = %d, want %d", i, dst[i], src[i]))
						}
					}
					p.Release(lock)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
