package core

import (
	"fmt"

	"midway/internal/cost"
	"midway/internal/diff"
	"midway/internal/memory"
	"midway/internal/proto"
	"midway/internal/vmem"
)

// vmDetector implements the conventional page-protection write detection
// (Sections 3.3–3.4).
//
// Write trapping: shared pages start read-only; the first store to a page
// write-faults, the handler saves a twin, marks the page dirty and grants
// write access.  Subsequent stores are free.
//
// Write collection: at a transfer, pages containing bound data are diffed
// against their twins.  A page's diff is distributed to the pending-update
// accumulator of every synchronization object whose binding overlaps it
// (the paper's diff reuse), after which the page is cleaned and
// write-protected again.  Each transfer increments the lock's incarnation
// number and folds the lock's accumulated updates into a per-incarnation
// history entry; a requester receives every entry newer than its last-seen
// incarnation.  If the concatenated entries would exceed the size of the
// bound data, or the requester predates the retained history, full data is
// sent instead.  A rebinding invalidates the history and forces a full
// send without diffing, exactly the quicksort fast path the paper
// describes.
type vmDetector struct {
	n *Node
}

func (d *vmDetector) trapWrite(a memory.Addr, size uint32, r *memory.Region) {
	if r.Class == memory.Private {
		return // private pages are not managed by the external pager
	}
	n := d.n
	faults := n.vm.EnsureWritable(a, size)
	if faults > 0 {
		n.st.WriteFaults.Add(uint64(faults))
		n.cycles.Charge(uint64(faults) * n.cost.PageWriteFault)
	}
}

// diffAndDistribute diffs every dirty page holding data of the given
// binding, distributes the discovered modifications to the accumulator of
// every object whose binding overlaps them, and cleans the pages.  Caller
// holds n.mu.
func (d *vmDetector) diffAndDistribute(binding []memory.Range) cost.Cycles {
	n := d.n
	var cycles cost.Cycles
	seen := make(map[int]bool)
	for _, rg := range binding {
		for _, pg := range n.vm.DirtyPagesIn(rg) {
			if seen[pg] {
				continue
			}
			seen[pg] = true
			cur, twin := n.vm.Snapshot(pg)
			df := diff.Compute(cur, twin)
			n.st.PagesDiffed.Add(1)
			n.st.DiffRuns.Add(uint64(len(df.Runs)))
			cycles += n.cost.DiffCost(len(df.Runs), vmem.WordsPerPage)
			if !df.Empty() {
				d.distribute(pg, df)
			}
			if n.vm.Clean(pg) {
				n.st.PagesWriteProtected.Add(1)
				cycles += n.cost.PageProtectRO
			}
		}
	}
	return cycles
}

// distribute appends the page diff's runs to the pending-update
// accumulator of every synchronization object whose binding they
// intersect.  Caller holds n.mu.
func (d *vmDetector) distribute(pg int, df diff.Diff) {
	n := d.n
	base := vmem.PageBase(pg)
	n.sys.mu.Lock()
	objs := n.sys.objects
	n.sys.mu.Unlock()
	for _, run := range df.Runs {
		runRg := memory.Range{Addr: base + memory.Addr(run.Off), Size: uint32(len(run.Data))}
		for _, obj := range objs {
			var bind []memory.Range
			var appendTo *[]proto.Update
			switch obj.kind {
			case ObjLock:
				lk := n.lockState(obj.id)
				bind = lk.binding
				appendTo = &lk.accum
			case ObjBarrier:
				b := n.barrierState(obj.id)
				bind = b.binding
				appendTo = &b.accum
			}
			for _, brg := range bind {
				inter, ok := runRg.Intersect(brg)
				if !ok {
					continue
				}
				lo := inter.Addr - runRg.Addr
				*appendTo = append(*appendTo, proto.Update{
					Addr: inter.Addr,
					Data: run.Data[lo : uint32(lo)+inter.Size],
				})
			}
		}
	}
}

func (d *vmDetector) collectLock(lk *lockState, req *proto.LockAcquire, exclusive bool) (*proto.LockGrant, cost.Cycles) {
	n := d.n
	t := n.lamport.Tick()
	boundBytes := rangesBytes(lk.binding)

	if lk.rebound {
		// Rebinding: the incarnation history describes the old binding;
		// increment the incarnation and ship all (new) bound data without
		// performing a diff.  Pages stay dirty for the benefit of other
		// objects sharing them.
		newInc := lk.inc + 1
		lk.inc = newInc
		lk.history = nil
		lk.baseInc = newInc
		lk.accum = filterUpdates(lk.accum, lk.binding)
		lk.lastInc = newInc
		lk.rebound = false
		ups := n.readBoundUpdates(lk.binding, int64(newInc))
		cycles := cost.CopyCost(n.cost.CopyWarmPerKB, int(boundBytes))
		return &proto.LockGrant{
			Time:        t,
			Incarnation: newInc,
			Base:        newInc,
			Updates:     ups,
			Full:        true,
		}, cycles
	}

	// Shared and exclusive grants share the diff/incarnation machinery;
	// only ownership (handled by the caller) differs.  Every exclusive
	// transfer increments the incarnation number, as in the paper; a
	// shared grant advances it only when it folds in fresh modifications,
	// so a train of readers does not inflate the history.
	cycles := d.diffAndDistribute(lk.binding)
	newInc := lk.inc
	if exclusive {
		newInc++
	}
	if len(lk.accum) > 0 {
		if !exclusive {
			newInc++
		}
		ups := lk.accum
		lk.accum = nil
		for i := range ups {
			ups[i].TS = int64(newInc)
		}
		lk.history = append(lk.history, proto.HistoryEntry{Incarnation: newInc, Updates: ups})
	}
	lk.inc = newInc
	lk.lastInc = newInc

	// Assemble the reply: history entries newer than the requester's
	// last-seen incarnation, or full data if the history does not reach
	// back far enough or would exceed the bound data's size.
	full := req.LastIncarnation < lk.baseInc
	var entries []proto.HistoryEntry
	if !full {
		total := 0
		for _, h := range lk.history {
			if h.Incarnation > req.LastIncarnation {
				entries = append(entries, h)
				total += proto.UpdateBytes(h.Updates)
			}
		}
		if n.sys.cfg.CombineIncarnations && len(entries) > 1 {
			// §3.4 alternative: merge the entries so each address
			// reflects its most recent incarnation.  The combined set
			// never exceeds the bound data, so the full-data rule cannot
			// trigger.
			combined, c := combineEntries(entries, n.cost)
			cycles += c
			g := &proto.LockGrant{
				Time:        t,
				Incarnation: newInc,
				Base:        lk.baseInc,
				Updates:     combined,
			}
			d.trimHistory(lk, boundBytes)
			return g, cycles
		}
		if uint32(total) > boundBytes {
			full = true
		}
	}
	if full {
		ups := n.readBoundUpdates(lk.binding, int64(newInc))
		cycles += cost.CopyCost(n.cost.CopyWarmPerKB, int(boundBytes))
		lk.history = nil
		lk.baseInc = newInc
		return &proto.LockGrant{
			Time:        t,
			Incarnation: newInc,
			Base:        newInc,
			Updates:     ups,
			Full:        true,
		}, cycles
	}
	g := &proto.LockGrant{
		Time:        t,
		Incarnation: newInc,
		Base:        lk.baseInc,
		History:     entries,
	}
	d.trimHistory(lk, boundBytes)
	return g, cycles
}

// trimHistory enforces the full-data rule's memory bound: once the
// retained history exceeds the bound data's size, the oldest entries are
// dropped — any requester that would have needed them receives full data
// instead.
func (d *vmDetector) trimHistory(lk *lockState, boundBytes uint32) {
	total := 0
	for _, h := range lk.history {
		total += proto.UpdateBytes(h.Updates)
	}
	for len(lk.history) > 0 && uint32(total) > boundBytes {
		total -= proto.UpdateBytes(lk.history[0].Updates)
		lk.baseInc = lk.history[0].Incarnation
		lk.history = lk.history[1:]
	}
}

// applyUpdates installs incoming updates into the local pages and, where
// pages are dirty, into their twins, so remote data is never mistaken for
// a local modification.
func (d *vmDetector) applyUpdates(us []proto.Update) cost.Cycles {
	n := d.n
	var cycles cost.Cycles
	for _, u := range us {
		n.inst.WriteBytes(u.Range(), u.Data)
		tb := n.vm.ApplyToTwin(u.Addr, u.Data)
		if tb > 0 {
			n.st.TwinBytesUpdated.Add(uint64(tb))
			cycles += cost.CopyCost(n.cost.CopyWarmPerKB, tb)
		}
	}
	return cycles
}

func (d *vmDetector) applyLock(lk *lockState, g *proto.LockGrant) cost.Cycles {
	n := d.n
	n.lamport.Witness(g.Time)
	var cycles cost.Cycles
	switch {
	case g.Full:
		cycles = d.applyUpdates(g.Updates)
		// Full data subsumes any retained history; future requesters
		// older than Base get a fresh full read.
		lk.history = nil
		lk.baseInc = g.Base
	default:
		// A combined incremental grant carries its merged updates in
		// Updates; retained as a single history entry they remain a
		// valid (superset) answer for future requesters.
		if len(g.Updates) > 0 {
			cycles += d.applyUpdates(g.Updates)
			lk.history = append(lk.history,
				proto.HistoryEntry{Incarnation: g.Incarnation, Updates: g.Updates})
		}
		for i, h := range g.History {
			if i > 0 && h.Incarnation <= g.History[i-1].Incarnation {
				panic(fmt.Sprintf("core: node %d: history out of order for lock %d", n.id, g.Lock))
			}
			cycles += d.applyUpdates(h.Updates)
		}
		// Retain the new entries so we can serve future requesters; our
		// own older entries remain valid and contiguous below them.
		lk.history = append(lk.history, g.History...)
		d.trimHistory(lk, rangesBytes(g.Binding))
	}
	lk.inc = g.Incarnation
	lk.lastInc = g.Incarnation
	return cycles
}

func (d *vmDetector) collectBarrier(b *barrierState) ([]proto.Update, cost.Cycles) {
	if len(b.binding) == 0 {
		return nil, 0
	}
	cycles := d.diffAndDistribute(b.binding)
	ups := b.accum
	b.accum = nil
	for i := range ups {
		ups[i].TS = int64(b.epoch + 1)
	}
	return ups, cycles
}

func (d *vmDetector) applyBarrier(b *barrierState, rel *proto.BarrierRelease) cost.Cycles {
	return d.applyUpdates(rel.Updates)
}
