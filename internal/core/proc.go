package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"midway/internal/detect"
	"midway/internal/member"
	"midway/internal/memory"
	"midway/internal/obs"
	"midway/internal/proto"
)

// Proc is the per-processor handle passed to the application function by
// System.Run.  All shared-memory access and synchronization goes through
// it: the Write methods are the software analogue of compiler-instrumented
// stores, and the synchronization methods are the entry-consistency API.
//
// A Proc is owned by one application goroutine and must not be shared.
type Proc struct {
	node *Node

	// One-entry region cache for the instrumented access fast path: most
	// accesses hit the same array's region as the previous one, and a
	// region's base, size and backing slice are immutable once
	// materialized, so the cache needs no invalidation.  Proc is owned by
	// a single goroutine, so no locking either.
	rcRegion *memory.Region
	rcBase   memory.Addr
	rcSize   uint32
	rcData   []byte
}

// dataFor returns the backing bytes and region for a scalar (or dense
// batched) access, validating that it is mapped and does not cross a
// region boundary — the same checks as layout.CheckScalar, resolved
// through the cache on the fast path.
func (p *Proc) dataFor(a memory.Addr, size uint32) ([]byte, *memory.Region) {
	if p.rcRegion != nil && a >= p.rcBase {
		if off := uint32(a - p.rcBase); off+size <= p.rcSize && off+size >= off {
			return p.rcData[off : off+size], p.rcRegion
		}
	}
	n := p.node
	r, err := n.sys.layout.CheckScalar(a, size)
	if err != nil {
		panic(err)
	}
	d := n.inst.Data(r)
	p.rcRegion, p.rcBase, p.rcSize, p.rcData = r, r.Base, r.Size, d
	off := uint32(a - r.Base)
	return d[off : off+size], r
}

// ID returns the processor number, in [0, Nodes).
func (p *Proc) ID() int { return p.node.id }

// Nodes returns the number of processors in the system.
func (p *Proc) Nodes() int { return p.node.sys.cfg.Nodes }

// Cycles returns the processor's current simulated time in cycles.
func (p *Proc) Cycles() uint64 { return p.node.cycles.Now() }

// Compute charges n cycles of local computation to the simulated clock.
// Applications use it to model the work between shared-memory operations.
func (p *Proc) Compute(n uint64) { p.node.cycles.Charge(n) }

// ReadU32 loads a 32-bit word from shared (or private) memory.
func (p *Proc) ReadU32(a memory.Addr) uint32 {
	p.node.cycles.Charge(p.node.cost.Load)
	b, _ := p.dataFor(a, 4)
	return binary.LittleEndian.Uint32(b)
}

// ReadU64 loads a 64-bit doubleword.
func (p *Proc) ReadU64(a memory.Addr) uint64 {
	p.node.cycles.Charge(p.node.cost.Load)
	b, _ := p.dataFor(a, 8)
	return binary.LittleEndian.Uint64(b)
}

// ReadF64 loads a float64.
func (p *Proc) ReadF64(a memory.Addr) float64 {
	p.node.cycles.Charge(p.node.cost.Load)
	b, _ := p.dataFor(a, 8)
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// The scalar Write methods trap before storing: under VM-DSM the write
// fault twins the page's pre-store contents (under RT-DSM the template
// runs after the store, but the order is not observable).

// WriteU32 stores a 32-bit word, trapping the write per the configured
// strategy.
func (p *Proc) WriteU32(a memory.Addr, v uint32) {
	n := p.node
	b, r := p.dataFor(a, 4)
	if n.race != nil || n.left {
		n.checkStore(a, 4, r)
	}
	n.det.TrapWrite(a, 4, r)
	n.cycles.Charge(n.cost.Store)
	binary.LittleEndian.PutUint32(b, v)
}

// WriteU64 stores a 64-bit doubleword, trapping the write.
func (p *Proc) WriteU64(a memory.Addr, v uint64) {
	n := p.node
	b, r := p.dataFor(a, 8)
	if n.race != nil || n.left {
		n.checkStore(a, 8, r)
	}
	n.det.TrapWrite(a, 8, r)
	n.cycles.Charge(n.cost.Store)
	binary.LittleEndian.PutUint64(b, v)
}

// checkStore is the write path's slow-path guard, reached only with the
// race detector on or after a Leave: it flags write-after-leave misuse
// and hands the store to the detector BEFORE the detector trap marks the
// line, so the line's last synchronized timestamp is still readable.  It
// charges no simulated cycles.
func (n *Node) checkStore(a memory.Addr, size uint32, r *memory.Region) {
	if n.left {
		n.protocolViolation("write", r.Name, "store to shared memory after Leave")
	}
	if n.race != nil {
		n.race.CheckStore(a, size, r, n.cycles.Now(), n.lamport.Now())
	}
}

// WriteF64 stores a float64, trapping the write.
func (p *Proc) WriteF64(a memory.Addr, v float64) {
	p.WriteU64(a, math.Float64bits(v))
}

// writeBatch runs write trapping for count consecutive elem-sized scalar
// stores starting at a and returns the span's backing bytes: one bounds
// check over the whole span (scalar allocations never cross region
// boundaries, so the per-element checks it replaces could only ever
// resolve to the same region), one batched detector dispatch, one cost
// charge.  All three are exactly the sums the per-element path would
// produce.
func (p *Proc) writeBatch(a memory.Addr, elem uint32, count int) []byte {
	n := p.node
	b, r := p.dataFor(a, elem*uint32(count))
	if n.race != nil || n.left {
		n.checkStore(a, elem*uint32(count), r)
	}
	detect.TrapWrites(n.det, a, elem, count, r)
	n.cycles.Charge(n.cost.Store * uint64(count))
	return b
}

// WriteU32s stores len(vs) consecutive 32-bit words starting at a —
// the instrumented form of a dense typed-array store loop.  Semantics and
// simulated costs are identical to len(vs) WriteU32 calls; only the
// dispatch overhead is fused.
func (p *Proc) WriteU32s(a memory.Addr, vs []uint32) {
	if len(vs) == 0 {
		return
	}
	b := p.writeBatch(a, 4, len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[4*i:], v)
	}
}

// WriteU64s stores len(vs) consecutive doublewords starting at a.
func (p *Proc) WriteU64s(a memory.Addr, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	b := p.writeBatch(a, 8, len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[8*i:], v)
	}
}

// WriteF64s stores len(vs) consecutive float64s starting at a.
func (p *Proc) WriteF64s(a memory.Addr, vs []float64) {
	if len(vs) == 0 {
		return
	}
	b := p.writeBatch(a, 8, len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
}

// ReadBytes copies rg.Size bytes of shared memory into dst.
func (p *Proc) ReadBytes(rg memory.Range, dst []byte) {
	p.node.cycles.Charge(p.node.cost.Load * uint64((rg.Size+7)/8))
	p.node.inst.ReadBytes(rg, dst)
}

// WriteBytes performs an "area" store (the analogue of a structure
// assignment or bcopy into shared memory), trapping it through the area
// entry point of each touched region's template.
func (p *Proc) WriteBytes(rg memory.Range, src []byte) {
	n := p.node
	if uint32(len(src)) != rg.Size {
		panic(fmt.Sprintf("core: WriteBytes size mismatch: %d bytes into %d-byte range", len(src), rg.Size))
	}
	segs, err := n.sys.layout.Segments(rg)
	if err != nil {
		panic(err)
	}
	for _, s := range segs {
		if n.race != nil || n.left {
			n.checkStore(s.Addr(), s.Len, s.Region)
		}
		n.det.TrapWrite(s.Addr(), s.Len, s.Region)
	}
	n.cycles.Charge(n.cost.Store * uint64((rg.Size+7)/8))
	n.inst.WriteBytes(rg, src)
}

// Acquire obtains the lock in exclusive (write) mode, making the data
// bound to it consistent at this processor.
func (p *Proc) Acquire(l LockID) { p.node.acquire(uint32(l), proto.Exclusive) }

// AcquireShared obtains the lock in non-exclusive (read) mode.  The caller
// receives a consistent snapshot of the bound data; exclusion between
// readers and the writer is established by the program's synchronization
// structure, as in the paper's applications.
func (p *Proc) AcquireShared(l LockID) { p.node.acquire(uint32(l), proto.Shared) }

// Release releases the lock.  Under Midway's lazy protocol no message is
// sent: ownership remains here until another processor asks for it.
func (p *Proc) Release(l LockID) { p.node.release(uint32(l)) }

// Rebind replaces the lock's data binding.  The caller must hold the lock
// in exclusive mode.  The new binding travels with the lock; under VM-DSM
// a rebinding invalidates the incarnation history, so the next transfer
// ships all bound data without diffing (the behaviour the paper's
// quicksort exploits).
func (p *Proc) Rebind(l LockID, ranges ...memory.Range) {
	n := p.node
	n.mu.Lock()
	defer n.mu.Unlock()
	lk := n.lockState(uint32(l))
	if !lk.held || lk.mode != proto.Exclusive {
		n.protocolViolation("rebind", lk.obj.name, "requires holding the lock exclusively")
	}
	lk.binding = append([]memory.Range(nil), ranges...)
	lk.rebound = true
	lk.bindGen++
	if rc := n.race; rc != nil {
		rc.NoteRebind(lk.id, lk.obj.name, lk.binding)
	}
	if tr := n.sys.obs; tr != nil {
		n.obsAt = n.cycles.Now()
		tr.Emit(obs.Event{
			Kind: obs.EvRebind, Cycles: n.obsAt, Node: int32(n.id),
			Obj: int32(lk.id), Peer: -1, Name: lk.obj.name,
			A: int64(lk.bindGen), B: int64(len(ranges)),
		})
	}
	n.det.NotifyRebind(lk) // binding-shaped bookkeeping (twins) is now stale
}

// Binding returns the lock's current data binding as known at this node.
func (p *Proc) Binding(l LockID) []memory.Range {
	n := p.node
	n.mu.Lock()
	defer n.mu.Unlock()
	lk := n.lockState(uint32(l))
	return append([]memory.Range(nil), lk.binding...)
}

// Barrier enters the barrier and blocks until all parties arrive.  Data
// bound to the barrier is made consistent across all parties.
func (p *Proc) Barrier(b BarrierID) { p.node.barrier(uint32(b)) }

// Crash simulates this node's process dying at the current program point,
// as if SIGKILLed between two instructions: no messages are lost, the
// proc's goroutine stops here, and the rest of the system reacts per
// Config.OnCrash (abort the run, or recover and degrade).  Chaos tests use
// it to crash a node at a chosen protocol point — holding a lock, between
// barrier episodes, or idle.  Crash does not return.
func (p *Proc) Crash() {
	p.node.sys.killNodeFrom(p.node.id, false, p.node.id)
	panic(errCrashed)
}

// Join sponsors the runtime admission of node id into an elastic
// membership (Config.MaxNodes): the joiner receives the synchronization
// directory and the barrier-bound data, a full-data fence guarantees its
// first acquire of every lock resynchronizes it, and its proc — the same
// SPMD function every node runs — is launched.  The caller is the
// sponsor: it must be at a release boundary (no locks held) and blocks
// until the joiner is running.  Returns an error if the id cannot join
// (already a member, crashed and fenced, out of capacity, or the
// handshake raced a crash).
func (p *Proc) Join(id int) error {
	n := p.node
	n.mu.Lock()
	for _, lk := range n.locks {
		if lk.held {
			name := lk.obj.name
			n.mu.Unlock()
			n.protocolViolation("join", name, "sponsor holds the lock (must be at a release boundary)")
		}
	}
	n.mu.Unlock()
	return n.sys.joinFrom(id, n.id)
}

// Leave departs the membership gracefully at the current release
// boundary: owned lock tokens (with this node's released copies, which
// are authoritative) move to successors, barrier management moves on, the
// departure is announced, and this proc terminates.  The caller must hold
// no locks.  Leave does not return; the node's id may rejoin later.
func (p *Proc) Leave() {
	n := p.node
	if n.sys.members == nil {
		panic("core: Leave requires elastic membership (Config.MaxNodes)")
	}
	n.mu.Lock()
	for _, lk := range n.locks {
		if lk.held {
			name := lk.obj.name
			n.mu.Unlock()
			n.protocolViolation("leave", name, "departing node holds the lock (must be at a release boundary)")
		}
	}
	n.mu.Unlock()
	n.sys.members.BeginDrain(n.id) // a direct Leave implies the drain request
	n.left = true                  // a store after this point is a protocol misuse
	n.sys.leaveNodeFrom(n.id, n.id)
	panic(errLeft)
}

// Draining reports whether a graceful departure has been requested for
// this node (System.DrainNode): the application should finish its current
// unit of work and call Leave at its next release boundary.
func (p *Proc) Draining() bool {
	mt := p.node.sys.members
	return mt != nil && mt.Status(p.node.id) == member.Draining
}

// Members returns the node ids currently in the membership (this node
// included).  Fixed-membership systems report every hosted node.
func (p *Proc) Members() []int { return p.node.sys.Members() }

// waitReply blocks for the protocol handler's grant or barrier release,
// aborting (with the sentinel Run recognizes) if the run fails while the
// application is parked — the message it is waiting for may never arrive.
func (n *Node) waitReply() reply {
	n.abortIfCrashed() // prefer the crash over a reply that raced in
	if e := n.sys.eng; e != nil {
		// Lockstep: park through the engine so the delivery phase can
		// start once every node has.  A wake can be stale — an application
		// scheduler's broadcast racing the node's transitions leaves a
		// pending token behind — so park again until the select below
		// genuinely cannot block.
		for {
			select {
			case r := <-n.replyCh:
				return r
			case <-n.sys.failCh:
				panic(errAborted)
			case <-n.crashCh:
				panic(errCrashed)
			default:
			}
			if !e.Block(n.id) {
				break // aborted: the blocking select sees failCh
			}
		}
	}
	select {
	case r := <-n.replyCh:
		return r
	case <-n.sys.failCh:
		panic(errAborted)
	case <-n.crashCh:
		panic(errCrashed)
	}
}

// acquire implements lock acquisition for both modes.
func (n *Node) acquire(id uint32, mode proto.Mode) {
	n.sys.abortIfFailed()
	n.abortIfCrashed()
	n.mu.Lock()
	lk := n.lockState(id)
	if lk.held {
		n.mu.Unlock()
		n.protocolViolation("acquire", lk.obj.name, "recursive acquire (already held)")
	}
	if lk.owner {
		// Fast path: we are the data authority; the local copy is fresh.
		lk.held = true
		lk.mode = mode
		if c := n.sys.census; c != nil && mode == proto.Exclusive {
			c.set(lk.id, n.id, true)
		}
		if rc := n.race; rc != nil {
			rc.NoteAcquire(lk.id, lk.obj.name, lk.binding)
		}
		if n.sys.cfg.Migrate {
			// The zero-message acquire is exactly what migration optimizes
			// for; it still feeds the census so dominance is measured over
			// all acquires, not only the brokered ones.
			n.countAcquire(lk, n.id)
		}
		n.mu.Unlock()
		if tr := n.sys.obs; tr != nil {
			tr.Emit(obs.Event{
				Kind: obs.EvAcquire, Cycles: n.cycles.Now(), Node: int32(n.id),
				Obj: int32(lk.id), Peer: -1, Name: lk.obj.name, Mode: obsMode(mode),
			})
		}
		return
	}
	req := &proto.LockAcquire{
		Lock:      id,
		Mode:      mode,
		Requester: uint32(n.id),
		BindGen:   lk.bindGen,
	}
	// The detector records the requester's consistency point (timestamp,
	// incarnation) in whichever fields its scheme uses.
	n.det.FillAcquire(lk, req)
	lk.inflight = req
	// The broker is the migrated home when this node has witnessed one,
	// else the static hashed manager (homeForLocked is exactly managerFor
	// until the first migration commit reaches this node).
	manager := n.homeForLocked(lk.obj)
	n.mu.Unlock()

	if tr := n.sys.obs; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvAcquire, Cycles: n.cycles.Now(), Node: int32(n.id),
			Obj: int32(id), Peer: int32(manager), Name: n.sys.objName(id),
			Mode: obsMode(mode), A: req.LastTime, B: int64(req.LastIncarnation),
		})
	}
	n.send(manager, proto.KindLockAcquire, req)
	r := n.waitReply()
	if r.grant == nil || r.grant.Lock != id {
		panic(fmt.Sprintf("core: node %d: unexpected reply while acquiring %d", n.id, id))
	}
	// State updates were performed by the protocol handler in applyGrant
	// before the reply was delivered, so forwards chasing the new owner
	// cannot observe a stale state.
}

// applyGrant runs on the protocol handler when a grant arrives, applying
// the updates and installing ownership before the waiting application is
// released.  The application was blocked for this message, so its clock
// joins the arrival time before the application costs are charged.
// It returns false, without applying anything, when the grant is a stale
// duplicate: either no request is outstanding (a crash-recovery re-drive
// was answered already) or the grant predates a recovery reclaim whose
// binding generation superseded it.  Fault-free runs never take either
// branch.
func (n *Node) applyGrant(g *proto.LockGrant, arrival uint64, from int) bool {
	n.mu.Lock()
	lk := n.lockState(g.Lock)
	if lk.inflight == nil || (lk.redriveGen != 0 && g.BindGen < lk.redriveGen) {
		n.mu.Unlock()
		return false
	}
	lk.inflight = nil
	lk.redriveGen = 0
	n.cycles.Join(arrival)
	// The grant's transfer time is a synchronization point: witness it
	// here, uniformly for every scheme.
	n.lamport.Witness(g.Time)
	if n.sys.obs != nil {
		n.obsAt = arrival // detector events during apply carry the arrival time
	}
	if rc := n.race; rc != nil {
		// Cross-check the incoming updates against locally pending lines
		// before ApplyLock consumes them and restamps the dirtybits.
		rc.CheckIncoming(lk.id, lk.obj.name, from, g.Updates, arrival, n.lamport.Now())
	}
	cycles := n.det.ApplyLock(lk, g)
	lk.bindGen = g.BindGen
	lk.binding = append([]memory.Range(nil), g.Binding...)
	lk.held = true
	lk.mode = g.Mode
	if rc := n.race; rc != nil {
		rc.NoteAcquire(lk.id, lk.obj.name, lk.binding)
	}
	if g.Mode == proto.Exclusive {
		lk.owner = true
		if c := n.sys.census; c != nil {
			c.set(lk.id, n.id, true)
		}
	}
	lk.rebound = false
	if t := g.Tail; t != nil && g.Mode == proto.Exclusive {
		n.applyTailLocked(lk, t, arrival)
	}
	if lk.pendingFence != 0 {
		// A join admission ran while this grant was in flight and parked
		// its full-data fence here; install it now, before any transfer
		// from this node can be served, so the joiner's first acquire
		// still ships full data.
		if lk.pendingFence > lk.bindGen {
			lk.bindGen = lk.pendingFence
			lk.rebound = true
			n.det.NotifyRebind(lk)
		}
		lk.pendingFence = 0
	}
	n.mu.Unlock()
	n.cycles.Charge(cycles)
	if tr := n.sys.obs; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvGrant, Cycles: arrival, Node: int32(n.id),
			Obj: int32(lk.id), Peer: -1, Name: lk.obj.name, Mode: obsMode(g.Mode),
			Full: g.Full, Bytes: uint64(proto.UpdateBytes(g.Updates)),
			A: int64(g.Incarnation), B: int64(len(g.History)),
		})
	}
	return true
}

// release implements lock release: local under the lazy protocol, plus
// servicing of any transfer requests that queued while the lock was held.
func (n *Node) release(id uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	lk := n.lockState(id)
	if !lk.held {
		// The deferred unlock runs as the violation panic unwinds.
		// Distinguish the double release from the never-acquired case in
		// the diagnostic; both unwind with the same typed error.
		reason := "released without a matching acquire"
		if lk.released {
			reason = "double release (already released)"
		}
		n.protocolViolation("release", lk.obj.name, reason)
	}
	lk.held = false
	lk.released = true
	if c := n.sys.census; c != nil {
		c.set(lk.id, n.id, false)
	}
	if rc := n.race; rc != nil {
		rc.NoteRelease(lk.id)
	}
	lk.releaseCycles = n.cycles.Now()
	if tr := n.sys.obs; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvRelease, Cycles: lk.releaseCycles, Node: int32(n.id),
			Obj: int32(lk.id), Peer: -1, Name: lk.obj.name,
		})
	}
	for lk.owner && len(lk.waiting) > 0 {
		p := lk.waiting[0]
		lk.waiting = lk.waiting[1:]
		exclusive := p.req.Mode == proto.Exclusive
		n.transferLocked(lk, p.req, max(p.arrival, lk.releaseCycles))
		if exclusive {
			// Ownership moved; transferLocked re-forwarded the rest.
			break
		}
	}
	if n.sys.cfg.Migrate && lk.owner && !lk.held {
		// Release-boundary self-migration: the token stayed here and our
		// own share of the recent acquires crossed the threshold, so make
		// this node the lock's home — the steady-state acquire becomes a
		// purely local operation with zero protocol messages.
		if dom := n.dominantAcquirer(lk); dom == n.id {
			if home := n.homeForLocked(lk.obj); home != n.id {
				st := n.mgr[id]
				if st == nil {
					st = &mgrLock{}
					n.mgr[id] = st
				}
				st.owner = n.id
				n.commitHome(lk.obj, home, n.id, lk.acqCount[n.id], lk.acqTotal, lk.releaseCycles)
			}
		}
	}
}

// applyTailLocked processes an exclusive grant's migration tail: the
// travelling acquire census is installed, inherited waiters are queued
// ahead of any that raced here directly (they were waiting first), and a
// piggybacked home-migration proposal naming this node is committed.
// Caller holds n.mu.
func (n *Node) applyTailLocked(lk *lockState, t *proto.GrantTail, arrival uint64) {
	n.installCensus(lk, t.Counts)
	if len(t.Queue) > 0 {
		inherited := make([]*pendingReq, 0, len(t.Queue))
		for _, q := range t.Queue {
			if int(q.Requester) == n.id || n.sys.gone(int(q.Requester)) {
				continue
			}
			dup := false
			for _, p := range lk.waiting {
				if p.req.Requester == q.Requester {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			inherited = append(inherited, &pendingReq{
				req: &proto.LockAcquire{
					Lock:            lk.id,
					Mode:            q.Mode,
					Requester:       q.Requester,
					LastTime:        q.LastTime,
					LastIncarnation: q.LastIncarnation,
					BindGen:         q.BindGen,
				},
				arrival: q.Arrival,
			})
		}
		lk.waiting = append(inherited, lk.waiting...)
	}
	if t.NewHome == int32(n.id) {
		if home := n.homeForLocked(lk.obj); home != n.id {
			// Seed our manager state before publishing the new table, so
			// an acquire routed by it always finds a broker here.
			st := n.mgr[lk.id]
			if st == nil {
				st = &mgrLock{}
				n.mgr[lk.id] = st
			}
			st.owner = n.id
			n.commitHome(lk.obj, home, n.id, lk.acqCount[n.id], lk.acqTotal, arrival)
		}
	}
}

// barrier implements barrier crossing: collect local modifications, enter,
// wait for release, apply everyone else's updates.
func (n *Node) barrier(id uint32) {
	n.sys.abortIfFailed()
	n.abortIfCrashed()
	n.mu.Lock()
	b := n.barrierState(id)
	if n.sys.obs != nil {
		n.obsAt = n.cycles.Now() // detector events during collection
	}
	updates, cycles := n.det.CollectBarrier(b)
	epoch := b.epoch
	manager := n.sys.managerFor(b.obj)
	n.mu.Unlock()
	n.cycles.Charge(cycles)
	updateBytes := uint64(proto.UpdateBytes(updates))
	n.st.BytesTransferred.Add(updateBytes)
	if tr := n.sys.obs; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvBarrierEnter, Cycles: n.cycles.Now(), Node: int32(n.id),
			Obj: int32(id), Peer: -1, Name: b.obj.name,
			A: int64(epoch), Bytes: updateBytes,
		})
	}

	e := &proto.BarrierEnter{
		Barrier: id,
		Epoch:   epoch,
		Node:    uint32(n.id),
		Time:    n.lamport.Now(),
		Updates: updates,
	}
	// Retain the enter so crash recovery can synthesize a lost release on
	// our behalf (or re-drive this enter if it was lost in transit).
	n.mu.Lock()
	b.prevEnter = b.lastEnter
	b.lastEnter = e
	b.pending = true
	n.mu.Unlock()
	n.send(manager, proto.KindBarrierEnter, e)

	r := n.waitReply()
	rel := r.release
	if rel == nil || rel.Barrier != id || rel.Epoch != epoch {
		panic(fmt.Sprintf("core: node %d: unexpected reply at barrier %d", n.id, id))
	}
	n.cycles.Join(r.arrival)
	n.lamport.Witness(rel.Time)
	n.mu.Lock()
	if n.sys.obs != nil {
		n.obsAt = r.arrival // detector events during apply
	}
	cycles = n.det.ApplyBarrier(b, rel)
	b.epoch++
	n.mu.Unlock()
	n.cycles.Charge(cycles)
	n.st.BarrierCrossings.Add(1)
	if tr := n.sys.obs; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvBarrierResume, Cycles: r.arrival, Node: int32(n.id),
			Obj: int32(id), Peer: -1, Name: b.obj.name,
			A: int64(epoch), Bytes: uint64(proto.UpdateBytes(rel.Updates)),
		})
	}
	// ApplyBarrier copied the release's updates into memory and no
	// detector retains them; a pooled payload (lockstep deferred recycle)
	// goes back to the encoder pool now.
	proto.RecycleBytes(r.buf)
}
