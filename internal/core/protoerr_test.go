package core

import (
	"errors"
	"strings"
	"testing"

	"midway/internal/memory"
)

// expectProtocolError runs fn on a fresh system and asserts the run fails
// with a *ProtocolError whose Op and Reason match.  Misuse must surface as
// the typed error through System.Run — never as a raw panic string — so
// callers can errors.As for it.
func expectProtocolError(t *testing.T, s *System, fn func(p *Proc), op, reasonPart string) {
	t.Helper()
	err := s.Run(fn)
	if err == nil {
		t.Fatalf("Run succeeded, want a protocol error (%s)", op)
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("Run error %v (%T), want *ProtocolError", err, err)
	}
	if pe.Op != op {
		t.Errorf("ProtocolError.Op = %q, want %q", pe.Op, op)
	}
	if !strings.Contains(pe.Reason, reasonPart) {
		t.Errorf("ProtocolError.Reason = %q, want it to mention %q", pe.Reason, reasonPart)
	}
	if !strings.Contains(pe.Error(), "protocol misuse") {
		t.Errorf("ProtocolError.Error() = %q, want it to mention the misuse", pe.Error())
	}
}

// TestProtocolErrorDoubleRelease pins that releasing a lock twice fails
// typed: the second release finds the lock not held with a recorded
// release, and reports the double release (not a missing acquire).
func TestProtocolErrorDoubleRelease(t *testing.T) {
	s := newTestSystem(t, 1, RT)
	addr := s.MustAlloc("x", 64, 3)
	l := s.NewLock("x", memory.Range{Addr: addr, Size: 64})
	expectProtocolError(t, s, func(p *Proc) {
		p.Acquire(l)
		p.Release(l)
		p.Release(l)
	}, "release", "double release")
}

// TestProtocolErrorReleaseWithoutAcquire pins the never-acquired variant:
// a release with no acquire on record is distinguished from the double
// release in the diagnostic.
func TestProtocolErrorReleaseWithoutAcquire(t *testing.T) {
	s := newTestSystem(t, 1, RT)
	addr := s.MustAlloc("x", 64, 3)
	l := s.NewLock("x", memory.Range{Addr: addr, Size: 64})
	expectProtocolError(t, s, func(p *Proc) {
		p.Release(l)
	}, "release", "without a matching acquire")
}

// TestProtocolErrorRecursiveAcquire pins that re-acquiring a held lock
// fails typed instead of deadlocking or panicking raw.
func TestProtocolErrorRecursiveAcquire(t *testing.T) {
	s := newTestSystem(t, 1, RT)
	addr := s.MustAlloc("x", 64, 3)
	l := s.NewLock("x", memory.Range{Addr: addr, Size: 64})
	expectProtocolError(t, s, func(p *Proc) {
		p.Acquire(l)
		p.Acquire(l)
	}, "acquire", "recursive")
}

// TestProtocolErrorRebindWithoutLock pins that rebinding a lock the caller
// does not hold exclusively fails typed.
func TestProtocolErrorRebindWithoutLock(t *testing.T) {
	s := newTestSystem(t, 1, RT)
	addr := s.MustAlloc("x", 128, 3)
	l := s.NewLock("x", memory.Range{Addr: addr, Size: 64})
	expectProtocolError(t, s, func(p *Proc) {
		p.Rebind(l, memory.Range{Addr: addr + 64, Size: 64})
	}, "rebind", "exclusively")
}

// TestProtocolErrorWriteAfterLeave pins that a store to shared memory
// after a graceful Leave fails typed.  Leave unwinds the proc, so the
// only way application code can run afterwards is a deferred function —
// exactly the misuse the `left` flag exists to catch.
func TestProtocolErrorWriteAfterLeave(t *testing.T) {
	s, err := NewSystem(Config{Nodes: 2, MaxNodes: 3, Strategy: RT})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	addr := s.MustAlloc("shared", 64, 3)
	expectProtocolError(t, s, func(p *Proc) {
		if p.ID() != 1 {
			return
		}
		defer p.WriteU64(addr, 1) // runs during the Leave unwind
		p.Leave()
	}, "write", "after Leave")
}

// TestProtocolErrorHoldingLockOnLeave pins that leaving while holding a
// lock fails typed at the departing node.
func TestProtocolErrorHoldingLockOnLeave(t *testing.T) {
	s, err := NewSystem(Config{Nodes: 2, MaxNodes: 3, Strategy: RT})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	addr := s.MustAlloc("x", 64, 3)
	l := s.NewLock("x", memory.Range{Addr: addr, Size: 64})
	expectProtocolError(t, s, func(p *Proc) {
		if p.ID() != 1 {
			return
		}
		p.Acquire(l)
		p.Leave()
	}, "leave", "release boundary")
}
