package core

import (
	"fmt"
	"io"
	"sync"

	"midway/internal/cost"
)

// tracer serializes protocol-event logging across node goroutines.  A nil
// tracer is disabled and costs one predictable branch per event.
type tracer struct {
	mu sync.Mutex
	w  io.Writer
}

// newTracer returns a tracer writing to w, or nil when w is nil.
func newTracer(w io.Writer) *tracer {
	if w == nil {
		return nil
	}
	return &tracer{w: w}
}

// eventf logs one protocol event with the node's simulated time.
func (t *tracer) eventf(n *Node, format string, args ...any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "[%10.3fms n%d] %s\n",
		cost.Millis(n.cycles.Now()), n.id, fmt.Sprintf(format, args...))
}

// objName resolves a synchronization object's name for trace output.
func (s *System) objName(id uint32) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) < len(s.objects) {
		return s.objects[id].name
	}
	return fmt.Sprintf("obj%d", id)
}
