package core

import (
	"fmt"

	"midway/internal/obs"
	"midway/internal/proto"
)

// Tracing plumbs through internal/obs.  The zero-cost-when-disabled
// contract: System.obs is nil on an untraced run, and every emission site
// guards with a nil check BEFORE building the event, so no argument is
// evaluated, no name resolved and nothing allocated on the hot path.
// Event timestamps come from the deterministic protocol times (arrival,
// grant, release), never from wall clocks, so tracing cannot perturb the
// simulated statistics.

// objName resolves a synchronization object's name for trace output.  It
// reads the lock-free object-table snapshot: no System mutex, so it is
// safe to call with a node mutex held (the trace path) without ordering
// hazards.
func (s *System) objName(id uint32) string {
	objects := s.objectsSnapshot()
	if int(id) < len(objects) {
		return objects[id].name
	}
	return fmt.Sprintf("obj%d", id)
}

// obsMode converts a protocol lock mode to its obs rendering.
func obsMode(m proto.Mode) obs.Mode {
	if m == proto.Exclusive {
		return obs.ModeExclusive
	}
	return obs.ModeShared
}
