package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"midway/internal/clock"
	"midway/internal/cost"
	"midway/internal/detect"
	"midway/internal/memory"
	"midway/internal/obs"
	"midway/internal/proto"
	"midway/internal/race"
	"midway/internal/stats"
	"midway/internal/transport"
	"midway/internal/vmem"
)

// lockState is one node's view of a lock.  It implements detect.LockView;
// detector-specific bookkeeping (timestamps, incarnation histories, twins)
// lives behind the opaque det slot.
type lockState struct {
	id  uint32
	obj *object
	// owner marks this node as the lock's data authority (the most recent
	// exclusive holder, or the initial owner).
	owner bool
	// held marks the lock as currently acquired by this node's
	// application.
	held bool
	mode proto.Mode
	// binding is the lock's current data binding (travels with the lock).
	binding []memory.Range
	// rebound marks the binding as changed since the last transfer; the
	// next transfer of a history-keeping scheme ships full data without
	// diffing.
	rebound bool
	// bindGen counts rebindings over the lock's lifetime; it travels with
	// grants so a releaser can tell that a requester's consistency record
	// describes an older binding and must be ignored.
	bindGen uint64
	// det is the write-detection scheme's per-lock state slot.
	det any

	// forwardedTo records where ownership went when this node granted the
	// lock away, so late-arriving forwards can chase the new owner.
	forwardedTo int
	// forwardedAt is the Lamport timestamp of the grant recorded in
	// forwardedTo.  The receiver witnesses each grant's timestamp before it
	// can re-grant, so these are strictly increasing along the true grant
	// chain; crash recovery uses the global max to locate the token.
	forwardedAt int64
	// inflight is this node's own outstanding acquire request, set when the
	// request is sent and cleared when its grant is applied.  A grant
	// arriving with no request in flight is a duplicate (possible only
	// after crash-recovery re-drives) and is dropped.
	inflight *proto.LockAcquire
	// redriveGen, when nonzero, is the binding generation of a
	// crash-recovery reclaim that superseded a possibly-lost grant to this
	// node: grants carrying an older generation are stale and dropped.
	redriveGen uint64
	// pendingFence, when nonzero, is a join-time full-data fence that
	// could not be applied immediately because this node's grant was still
	// in flight: applyGrant installs it (bindGen bump + rebind) right
	// after the grant lands, so the joiner's first transfer still ships
	// full data.  Fixed-membership runs never set it.
	pendingFence uint64
	// waiting queues transfer requests that arrived while the lock was
	// held.
	waiting []*pendingReq
	// acqCount/acqTotal are the migration policy's travelling acquire
	// census (Config.Migrate only): per-node counts of recent acquires,
	// halved whenever acqTotal reaches the migrate window so the
	// dominance signal tracks the current phase.  The census moves with
	// the token — an exclusive grant ships it in the tail and clears it
	// here.  Nil/zero when migration is off.
	acqCount []uint32
	acqTotal uint32
	// releaseCycles records the simulated time of the last local release,
	// so a grant performed later by the protocol handler is stamped with
	// the time the lock actually became free.
	releaseCycles uint64
	// released marks that this node's application has released the lock at
	// least once; it distinguishes a double release from a release without
	// any acquire in the misuse diagnostic (releaseCycles cannot — a
	// release at simulated time zero is legal).
	released bool
}

// detect.LockView implementation.

func (lk *lockState) Name() string            { return lk.obj.name }
func (lk *lockState) Binding() []memory.Range { return lk.binding }
func (lk *lockState) State() any              { return lk.det }
func (lk *lockState) SetState(s any)          { lk.det = s }
func (lk *lockState) Rebound() bool           { return lk.rebound }
func (lk *lockState) ClearRebound()           { lk.rebound = false }
func (lk *lockState) BindGen() uint64         { return lk.bindGen }

// pendingReq is a queued transfer request plus its simulated arrival time.
type pendingReq struct {
	req     *proto.LockAcquire
	arrival uint64
}

// mgrLock is the manager-side state of a lock: which node currently holds
// ownership (optimistically updated as transfers are brokered).
type mgrLock struct {
	owner int
}

// barrierState is one node's view of a barrier.  It implements
// detect.BarrierView; detector-specific bookkeeping lives behind det.
type barrierState struct {
	id      uint32
	obj     *object
	epoch   uint64
	binding []memory.Range
	// det is the write-detection scheme's per-barrier state slot.
	det any

	// lastEnter and prevEnter retain this node's two most recent enter
	// messages, and pending marks an enter whose release has not yet been
	// delivered.  Crash recovery uses them to synthesize the release a dead
	// manager failed to send (stragglers are at most one epoch behind, so
	// two retained enters suffice).
	lastEnter *proto.BarrierEnter
	prevEnter *proto.BarrierEnter
	pending   bool
	// nextRelease is the next epoch whose release should be handed to the
	// application; releases below it were superseded by a synthesized
	// recovery release and are dropped.
	nextRelease uint64
}

// detect.BarrierView implementation.

func (b *barrierState) Name() string            { return b.obj.name }
func (b *barrierState) Binding() []memory.Range { return b.binding }
func (b *barrierState) State() any              { return b.det }
func (b *barrierState) SetState(s any)          { b.det = s }
func (b *barrierState) Epoch() uint64           { return b.epoch }

// Parts returns the declared per-node write partition, and whether one was
// declared at all.
func (b *barrierState) Parts(node int) ([]memory.Range, bool) {
	if b.obj.parts == nil {
		return nil, false
	}
	if node >= len(b.obj.parts) {
		return nil, true
	}
	return b.obj.parts[node], true
}

// bmgrBarrier is the barrier manager's per-barrier state.
type bmgrBarrier struct {
	epoch   uint64
	entered []*proto.BarrierEnter
	// arrivals records the simulated arrival time of each enter message.
	arrivals []uint64
	// bufs holds pooled payload buffers backing the decoded enters
	// (lockstep deferred recycle); they return to the encoder pool when
	// the epoch completes.  Crash recovery drops them instead (the GC
	// reclaims them) because re-homed enters outlive this manager.
	bufs [][]byte
}

// reply carries a grant or barrier release from the protocol handler to
// the waiting application goroutine, together with the message's
// simulated arrival time.
type reply struct {
	grant   *proto.LockGrant
	release *proto.BarrierRelease
	arrival uint64
	// buf, when non-nil, is the pooled payload buffer backing release's
	// zero-copy views; the application recycles it after ApplyBarrier
	// (lockstep deferred recycle).
	buf []byte
}

// Node is one processor of the DSM system.
type Node struct {
	id   int
	sys  *System
	inst *memory.Instance
	conn transport.Conn
	// copier is conn's PayloadCopier view, nil when the transport retains
	// payload slices (in which case sends always use owned buffers).
	copier transport.PayloadCopier
	// compat forces owned-buffer encoding and copying decoders
	// (Config.CompatCodec).
	compat bool
	cost   cost.Model
	netp   cost.NetworkParams

	// vm is the page table for fault-based detection, created lazily on
	// the first detector request so page-oblivious schemes never pay for
	// one.
	vm     *vmem.Table
	vmOnce sync.Once

	cycles  clock.Cycle
	lamport clock.Lamport
	st      stats.Node
	det     detect.Detector

	// race is this node's race-detector checker, nil when
	// Config.RaceDetect is off — the store and synchronization hot
	// paths pay exactly one nil check for it.
	race *race.Checker

	// left is set by Leave before the proc's goroutine unwinds, so a
	// store attempted afterwards (an application recovering the Leave
	// unwind and continuing) is flagged as a protocol misuse.  Written
	// by the node's own application goroutine (and by completeJoin,
	// which clears it before relaunching the proc for a rejoined
	// incarnation — ordered before the new goroutine's first read by
	// the launch itself), read only by the application goroutine.
	left bool

	// obsAt is the simulated timestamp detector-side trace events carry:
	// the protocol sets it (under mu) to the deterministic time of the
	// collection or apply in progress before calling into the detector.
	// Only maintained when tracing is enabled.
	obsAt uint64

	mu       sync.Mutex
	locks    map[uint32]*lockState
	mgr      map[uint32]*mgrLock
	barriers map[uint32]*barrierState
	bmgr     map[uint32]*bmgrBarrier

	// homes is this node's view of the dynamic lock-home directory
	// (Config.Migrate): entry [id] overrides the object's hashed home,
	// -1 meaning no override.  Each node's view changes only at its own
	// deterministic events — committing a migration or receiving the
	// HomeChange broadcast — so routing decisions replay exactly under
	// the lockstep engine.  homesStamp carries each entry's commit
	// cycles, so reordered broadcasts cannot roll a newer move back.
	// Both nil until this node first learns of a migration; under mu.
	homes      []int32
	homesStamp []uint64

	replyCh chan reply
	done    chan struct{}

	// ghost is set when this node is declared crashed in a degraded run:
	// the handler stops acting on messages (it only routes strays after
	// recovery completes, gated on unghosted) and the proc aborts at its
	// next synchronization point via crashCh.
	ghost     atomic.Bool
	crashCh   chan struct{}
	unghosted chan struct{}

	// joinedCh, when non-nil, is the channel a sponsor parked in
	// System.joinFrom is waiting on for this node's join handshake to
	// resolve; joinSponsor is that sponsor's id (for the lockstep wake)
	// and joinDoneAt the simulated completion time the sponsor's clock
	// joins on resume.  joinOK records whether the handshake committed,
	// captured at signal time: the sponsor may be scheduled so late that
	// the joiner has already drained or crashed again, so re-reading the
	// member table on wake would misreport a committed join as failed.
	// All under mu.
	joinedCh    chan struct{}
	joinSponsor int
	joinDoneAt  uint64
	joinOK      bool
}

func newNode(s *System, id int) *Node {
	inst := memory.NewInstance(s.layout)
	n := &Node{
		id:        id,
		sys:       s,
		inst:      inst,
		conn:      s.net.Conn(id),
		cost:      s.cfg.Cost,
		netp:      s.cfg.Network,
		locks:     make(map[uint32]*lockState),
		mgr:       make(map[uint32]*mgrLock),
		barriers:  make(map[uint32]*barrierState),
		bmgr:      make(map[uint32]*bmgrBarrier),
		replyCh:   make(chan reply, 1),
		done:      make(chan struct{}),
		crashCh:   make(chan struct{}),
		unghosted: make(chan struct{}),
	}
	n.compat = s.cfg.CompatCodec
	if !n.compat {
		n.copier, _ = n.conn.(transport.PayloadCopier)
	}
	det, err := detect.New(s.cfg.Scheme, engine{n: n}, detect.Options{
		EagerTimestamps:     s.cfg.EagerTimestamps,
		CombineIncarnations: s.cfg.CombineIncarnations,
	})
	if err != nil {
		// NewSystem validated the scheme name against the registry.
		panic(fmt.Sprintf("core: %v", err))
	}
	n.det = det
	return n
}

// vmTable returns the node's page table, creating it on first use.
func (n *Node) vmTable() *vmem.Table {
	n.vmOnce.Do(func() { n.vm = vmem.NewTable(n.inst) })
	return n.vm
}

// engine adapts a Node to the detect.Engine facade.
type engine struct{ n *Node }

func (e engine) NodeID() int            { return e.n.id }
func (e engine) Inst() *memory.Instance { return e.n.inst }
func (e engine) Layout() *memory.Layout { return e.n.sys.layout }
func (e engine) VM() *vmem.Table        { return e.n.vmTable() }
func (e engine) Stats() *stats.Node     { return &e.n.st }
func (e engine) Cost() cost.Model       { return e.n.cost }
func (e engine) Charge(c cost.Cycles)   { e.n.cycles.Charge(c) }
func (e engine) Tick() int64            { return e.n.lamport.Tick() }
func (e engine) Now() int64             { return e.n.lamport.Now() }

// Trace returns the system tracer (nil when tracing is disabled);
// TraceAt the deterministic timestamp for events emitted from inside a
// collection or apply; CycleNow the node's live cycle clock (for events
// on the application's trap path).
func (e engine) Trace() *obs.Tracer { return e.n.sys.obs }
func (e engine) TraceAt() uint64    { return e.n.obsAt }
func (e engine) CycleNow() uint64   { return e.n.cycles.Now() }

func (e engine) PristineBound(binding []memory.Range) []byte {
	return e.n.sys.pristineBound(binding)
}

// ForEachObject visits every synchronization object's view at this node.
// Caller holds n.mu (true inside collection entry points).
func (e engine) ForEachObject(fn func(detect.ObjectView)) {
	for _, obj := range e.n.sys.objectsSnapshot() {
		switch obj.kind {
		case ObjLock:
			fn(e.n.lockState(obj.id))
		case ObjBarrier:
			fn(e.n.barrierState(obj.id))
		}
	}
}

// ID returns the node's processor number.
func (n *Node) ID() int { return n.id }

// Cycles returns the node's current simulated time.
func (n *Node) Cycles() uint64 { return n.cycles.Now() }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() stats.Snapshot { return n.st.Snapshot() }

// start launches the protocol handler.
func (n *Node) start() {
	go n.handlerLoop()
}

// stop shuts the protocol handler down.
func (n *Node) stop() {
	// A self-addressed shutdown unblocks the handler even on transports
	// that do not support Close-driven unblocking.
	_ = n.conn.Send(transport.Message{From: n.id, To: n.id, Kind: proto.KindShutdown})
	<-n.done
	n.conn.Close()
}

// send transmits a protocol message, stamping it with the node's simulated
// clock and charging the statistics counters.  A transport failure fails
// the run with a diagnostic instead of panicking.
func (n *Node) send(to int, kind proto.Kind, w proto.Wire) {
	n.sendAt(to, kind, w, n.cycles.Now())
}

// sendAt is send with an explicit simulated timestamp, used when the
// logical send time differs from the node's current clock (e.g. a grant
// performed by the protocol handler for a lock that was released earlier).
// When the transport copies payloads out before Send returns, the message
// is encoded into a pooled buffer that is recycled immediately;
// otherwise (channel delivery, self-sends, CompatCodec) it gets an owned
// exactly-sized buffer.  The wire bytes are identical either way.
func (n *Node) sendAt(to int, kind proto.Kind, w proto.Wire, at uint64) {
	if ps := n.sys.part; ps != nil {
		// The deterministic partition's fence/heal transitions are
		// triggered by the first send whose timestamp crosses them.
		ps.noteSend(n.sys, at)
	}
	m := transport.Message{From: n.id, To: to, Kind: kind, Time: at}
	if mt := n.sys.members; mt != nil {
		// Membership epoch fence: every envelope carries the sender's view
		// of the current epoch (zero for fixed-membership runs, keeping
		// their wire bytes identical).
		m.Epoch = uint16(mt.Epoch())
	}
	var enc *proto.Encoder
	switch {
	case n.copier != nil && n.copier.CopiesPayload(to):
		enc = proto.GetEncoder()
		w.EncodeInto(enc)
		m.Payload = enc.Bytes()
	case n.sys.eng != nil && !n.compat &&
		(kind == proto.KindBarrierEnter || kind == proto.KindBarrierRelease):
		// Lockstep deferred recycle: the stepped queue retains the
		// payload, so it cannot be released here, but barrier payloads
		// have a single well-defined consumption point (the manager's
		// completion for enters, ApplyBarrier for releases) after which
		// the receiver returns the buffer to the pool via RecycleBytes.
		// Grants are excluded: VM-family receivers retain decoded
		// history views indefinitely.
		p := proto.GetEncoder()
		w.EncodeInto(p)
		m.Payload = p.Bytes()
	default:
		m.Payload = proto.Encode(w)
	}
	if to != n.id {
		n.st.Messages.Add(1)
		n.st.MessageBytes.Add(uint64(m.Size()))
	}
	err := n.conn.Send(m)
	if enc != nil {
		enc.Release()
	}
	if err != nil && !n.sys.isCrashed(n.id) && !n.sys.isCrashed(to) {
		n.sys.fail(fmt.Errorf("core: node %d: send %v to peer %d: %w", n.id, kind, to, err))
	}
}

// arrivalTime computes the simulated arrival time of a message.  It does
// NOT advance the node's cycle clock: protocol work performed by the
// runtime thread on behalf of other processors must not inflate the local
// application's time.  The clock joins an arrival only when the
// application itself blocks for the message (grants and barrier
// releases).
func (n *Node) arrivalTime(m transport.Message) uint64 {
	t := m.Time
	if m.From != m.To {
		transit := n.netp.MessageCycles(m.Size())
		if ps := n.sys.part; ps != nil {
			// A cross-cut message under the fence policy is held at the
			// cut and arrives one transit after the heal; in simulated
			// time the minority stalls until then.
			if at, ok := ps.delayedArrival(m.From, m.To, m.Time, transit); ok {
				return at
			}
		}
		t += transit
	}
	return t
}

// deliverReply hands a grant or barrier release to the waiting application
// goroutine, bailing out if the run has failed (the application side may
// already have aborted and will never drain replyCh).  Under the lockstep
// engine the waiter is parked in Engine.Block and must additionally be
// marked runnable.
func (n *Node) deliverReply(r reply) {
	select {
	case n.replyCh <- r:
		if e := n.sys.eng; e != nil {
			e.Wake(n.id)
		}
	case <-n.sys.failCh:
	}
}

// handlerLoop is the node's protocol-handler goroutine: the analogue of
// the Midway runtime thread that services paging and lock requests while
// the application computes.  Undecodable or unexpected messages and
// transport breaks fail the run with a diagnostic naming the node, the
// message kind and the peer, instead of panicking.
func (n *Node) handlerLoop() {
	defer close(n.done)
	for {
		m, err := n.conn.Recv()
		if err != nil {
			if !errors.Is(err, transport.ErrClosed) {
				n.sys.fail(fmt.Errorf("core: node %d: receive: %w", n.id, err))
			}
			return
		}
		arrival := n.arrivalTime(m)
		if n.ghost.Load() {
			// This node crashed (or gracefully departed) in a degraded run.
			// Wait for recovery to finish fixing the survivors' routing
			// state, then bounce routing messages toward their new
			// destinations and drop everything else.  Shutdown still
			// terminates the handler.  Re-check the flag after the gate: a
			// departed node that rejoined was un-ghosted (the channel stays
			// closed) and resumes normal dispatch.
			if m.Kind == proto.KindShutdown {
				return
			}
			<-n.unghosted
			if n.ghost.Load() {
				n.ghostRoute(m, arrival)
				continue
			}
		}
		if !n.dispatch(m, arrival) {
			return
		}
	}
}

// dispatch runs the protocol handler for one delivered message.  It is
// the body shared by the goroutine engine (handlerLoop calls it from the
// per-node handler goroutine) and the lockstep engine (the delivery phase
// calls it synchronously on the engine goroutine).  The return value is
// false when the handler must stop: a shutdown message or a protocol
// failure that already failed the run.
func (n *Node) dispatch(m transport.Message, arrival uint64) bool {
	if mt := n.sys.members; mt != nil && m.From != n.id &&
		uint64(m.Epoch) < mt.Epoch() && mt.Gone(m.From) {
		// Stale-epoch rejection: a request stamped before its sender's
		// departure committed.  The sender's tokens and barrier slots were
		// already handed off or reclaimed, so serving the request would
		// resurrect a former member.  Only requests are fenced — a grant or
		// release sent moments before a graceful leave still carries valid
		// released data and must be delivered.  Lock forwards and barrier
		// enters can be RELAYED by a node that departs while the message
		// is in flight: the fence keys on the semantic originator inside
		// the payload, not the relaying hop, so a live requester's chase
		// is never dropped with its forwarder.
		switch m.Kind {
		case proto.KindLockAcquire, proto.KindLockForward:
			if req, err := proto.DecodeLockAcquire(m.Payload); err != nil || mt.Gone(int(req.Requester)) {
				return true
			}
		case proto.KindBarrierEnter:
			if e, err := n.decodeEnter(m.Payload); err != nil || mt.Gone(int(e.Node)) {
				if buf := n.recyclable(m.Payload); buf != nil {
					proto.RecycleBytes(buf)
				}
				return true
			}
		}
	}
	switch m.Kind {
	case proto.KindShutdown:
		return false
	case proto.KindLockAcquire:
		req, err := proto.DecodeLockAcquire(m.Payload)
		if err != nil {
			n.failDecode(m, err)
			return false
		}
		n.managerAcquire(req, arrival)
	case proto.KindLockForward:
		req, err := proto.DecodeLockAcquire(m.Payload)
		if err != nil {
			n.failDecode(m, err)
			return false
		}
		n.ownerForward(req, arrival)
	case proto.KindLockGrant:
		g, err := n.decodeGrant(m.Payload)
		if err != nil {
			n.failDecode(m, err)
			return false
		}
		// Apply before releasing the waiting application, so a
		// forward chasing the new owner never observes stale state.
		// A false return means the grant was a stale duplicate
		// (possible only after crash-recovery re-drives) and was
		// dropped without waking the application.
		if n.applyGrant(g, arrival, m.From) {
			n.deliverReply(reply{grant: g, arrival: arrival})
		}
	case proto.KindBarrierEnter:
		e, err := n.decodeEnter(m.Payload)
		if err != nil {
			n.failDecode(m, err)
			return false
		}
		n.managerBarrierEnter(e, arrival, n.recyclable(m.Payload))
	case proto.KindBarrierRelease:
		r, err := n.decodeRelease(m.Payload)
		if err != nil {
			n.failDecode(m, err)
			return false
		}
		n.mu.Lock()
		b := n.barrierState(r.Barrier)
		if r.Epoch < b.nextRelease {
			// Superseded by a release crash recovery synthesized for
			// this epoch; delivering it again would desynchronize the
			// application's epoch counter.
			n.mu.Unlock()
			return true
		}
		b.nextRelease = r.Epoch + 1
		b.pending = false
		n.mu.Unlock()
		n.deliverReply(reply{release: r, arrival: arrival, buf: n.recyclable(m.Payload)})
	case proto.KindJoinRequest:
		req, err := proto.DecodeJoinRequest(m.Payload)
		if err != nil {
			n.failDecode(m, err)
			return false
		}
		n.sponsorAdmit(req, arrival)
	case proto.KindJoinAccept:
		acc, err := proto.DecodeJoinAccept(m.Payload)
		if err != nil {
			n.failDecode(m, err)
			return false
		}
		n.completeJoin(acc, arrival)
	case proto.KindMembershipChange:
		mc, err := proto.DecodeMembershipChange(m.Payload)
		if err != nil {
			n.failDecode(m, err)
			return false
		}
		n.noteMembership(mc, arrival)
	case proto.KindHomeChange:
		hc, err := proto.DecodeHomeChange(m.Payload)
		if err != nil {
			n.failDecode(m, err)
			return false
		}
		n.noteHomeChange(hc, arrival)
	default:
		n.sys.fail(fmt.Errorf("core: node %d: unexpected message kind %v from peer %d",
			n.id, m.Kind, m.From))
		return false
	}
	return true
}

// recyclable returns the payload buffer when it came from the encoder
// pool and may be recycled after the decoded views die — true only under
// the lockstep engine's deferred-recycle contract (sendAt pools barrier
// payloads there) with the zero-copy codec.  Nil means the buffer is
// owned by the GC.
func (n *Node) recyclable(payload []byte) []byte {
	if n.sys.eng != nil && !n.compat {
		return payload
	}
	return nil
}

// decodeGrant, decodeEnter and decodeRelease pick between the zero-copy
// view decoders (safe because every transport delivers each frame in a
// fresh GC-owned buffer that is never written again) and the copying ones
// (Config.CompatCodec).
func (n *Node) decodeGrant(buf []byte) (*proto.LockGrant, error) {
	if n.compat {
		return proto.DecodeLockGrantCopy(buf)
	}
	return proto.DecodeLockGrant(buf)
}

func (n *Node) decodeEnter(buf []byte) (*proto.BarrierEnter, error) {
	if n.compat {
		return proto.DecodeBarrierEnterCopy(buf)
	}
	return proto.DecodeBarrierEnter(buf)
}

func (n *Node) decodeRelease(buf []byte) (*proto.BarrierRelease, error) {
	if n.compat {
		return proto.DecodeBarrierReleaseCopy(buf)
	}
	return proto.DecodeBarrierRelease(buf)
}

// failDecode fails the run over an undecodable protocol message.
func (n *Node) failDecode(m transport.Message, err error) {
	n.sys.fail(fmt.Errorf("core: node %d: decode %v from peer %d: %w", n.id, m.Kind, m.From, err))
}

// lockState returns (creating on first touch) the node's state for a lock.
// Caller holds n.mu.
func (n *Node) lockState(id uint32) *lockState {
	lk := n.locks[id]
	if lk == nil {
		obj := n.sys.objectByID(id)
		if obj.kind != ObjLock {
			panic(fmt.Sprintf("core: object %d (%s) is not a lock", id, obj.name))
		}
		lk = &lockState{
			id:          id,
			obj:         obj,
			owner:       n.id == obj.manager,
			binding:     append([]memory.Range(nil), obj.binding...),
			forwardedTo: -1,
		}
		n.locks[id] = lk
	}
	return lk
}

// barrierState returns (creating on first touch) the node's state for a
// barrier.  Caller holds n.mu.
func (n *Node) barrierState(id uint32) *barrierState {
	b := n.barriers[id]
	if b == nil {
		obj := n.sys.objectByID(id)
		if obj.kind != ObjBarrier {
			panic(fmt.Sprintf("core: object %d (%s) is not a barrier", id, obj.name))
		}
		b = &barrierState{
			id:      id,
			obj:     obj,
			binding: append([]memory.Range(nil), obj.binding...),
		}
		n.barriers[id] = b
	}
	return b
}

// managerAcquire runs on the lock's manager: it brokers the transfer by
// forwarding the request to the current owner.
func (n *Node) managerAcquire(req *proto.LockAcquire, arrival uint64) {
	if n.sys.gone(int(req.Requester)) {
		return // a corpse (or departed member) must never be granted the token
	}
	obj := n.sys.objectByID(req.Lock)
	n.mu.Lock()
	st := n.mgr[req.Lock]
	if st == nil {
		st = &mgrLock{owner: obj.manager}
		n.mgr[req.Lock] = st
	}
	owner := st.owner
	if req.Mode == proto.Exclusive {
		// Optimistic ownership transfer: the grant is guaranteed to
		// reach the requester, so future requests route to it.
		st.owner = int(req.Requester)
	}
	n.mu.Unlock()

	if owner == n.id {
		// The manager itself owns the lock: handle the forward locally.
		n.ownerForward(req, arrival)
		return
	}
	n.sendAt(owner, proto.KindLockForward, req, arrival)
}

// ownerForward runs on the lock's owner: transfer now if the lock is free,
// or queue the request until release.
func (n *Node) ownerForward(req *proto.LockAcquire, arrival uint64) {
	if n.sys.gone(int(req.Requester)) {
		return // a corpse (or departed member) must never be granted the token
	}
	n.mu.Lock()
	lk := n.lockState(req.Lock)
	if n.sys.anyCrashed() {
		// Crash-recovery re-drives can duplicate a request that survived
		// in transit.  A node's own request arriving back at itself while
		// it holds the lock, or owns it with no acquire outstanding, or a
		// requester already queued here, is such a duplicate: drop it.
		// An owner with its own request still in flight is different:
		// reclamation made a parked waiter the owner, and the re-drive is
		// the only thing that will wake it — fall through and self-grant.
		if int(req.Requester) == n.id && (lk.held || (lk.owner && lk.inflight == nil)) {
			n.mu.Unlock()
			return
		}
		for _, p := range lk.waiting {
			if p.req.Requester == req.Requester {
				n.mu.Unlock()
				return
			}
		}
	}
	if !lk.owner {
		if lk.forwardedTo >= 0 {
			// Ownership moved on before this forward arrived: re-forward
			// to wherever we sent it.  The manager's optimistic update
			// makes this a rare, bounded chase.
			next := lk.forwardedTo
			n.mu.Unlock()
			n.sendAt(next, proto.KindLockForward, req, arrival)
			return
		}
		// Our own grant is still in flight (the manager routed this
		// request to us optimistically): queue until we hold the lock.
		lk.waiting = append(lk.waiting, &pendingReq{req: req, arrival: arrival})
		n.mu.Unlock()
		n.emitContend(lk, req, arrival)
		return
	}
	if lk.held && !(lk.mode == proto.Shared && req.Mode == proto.Shared) {
		lk.waiting = append(lk.waiting, &pendingReq{req: req, arrival: arrival})
		n.mu.Unlock()
		n.emitContend(lk, req, arrival)
		return
	}
	// The lock is free (or shared-compatible): the logical grant time is
	// when the request arrived or the lock was released, whichever is
	// later.
	at := max(arrival, lk.releaseCycles)
	n.transferLocked(lk, req, at)
	n.mu.Unlock()
}

// emitContend traces a transfer request queueing at a busy holder.
func (n *Node) emitContend(lk *lockState, req *proto.LockAcquire, arrival uint64) {
	if tr := n.sys.obs; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvContend, Cycles: arrival, Node: int32(n.id),
			Obj: int32(lk.id), Peer: int32(req.Requester), Name: lk.obj.name,
			Mode: obsMode(req.Mode),
		})
	}
}

// transferLocked collects updates and sends a grant to the requester.
// Caller holds n.mu.  at is the simulated time the transfer begins.
func (n *Node) transferLocked(lk *lockState, req *proto.LockAcquire, at uint64) {
	exclusive := req.Mode == proto.Exclusive
	if n.sys.obs != nil {
		n.obsAt = at // detector events during collection
	}
	grant, cycles := n.det.CollectLock(lk, req, exclusive)
	grant.Lock = lk.id
	grant.Mode = req.Mode
	grant.BindGen = lk.bindGen
	grant.Binding = append([]memory.Range(nil), lk.binding...)
	n.cycles.Charge(cycles) // the runtime thread steals this time locally
	n.st.LockTransfers.Add(1)

	if n.sys.cfg.Migrate {
		n.countAcquire(lk, int(req.Requester))
	}
	if exclusive {
		lk.owner = false
		lk.forwardedTo = int(req.Requester)
		lk.forwardedAt = grant.Time
		if n.sys.cfg.Migrate {
			// The acquire census travels with the token, a migration
			// proposal rides along when the requester's share crossed the
			// threshold, and the remaining waiter queue is forwarded with
			// the grant instead of re-driven as per-waiter chases: the new
			// owner serves the queue directly, turning each contended
			// handoff from a manager bounce into a single message.
			tail := &proto.GrantTail{Version: proto.GrantTailVersion, NewHome: -1}
			if dom := n.dominantAcquirer(lk); dom == int(req.Requester) &&
				dom != n.homeForLocked(lk.obj) && n.sys.homeLive(dom) {
				tail.NewHome = int32(dom)
			}
			tail.Counts = censusTail(lk)
			lk.acqCount, lk.acqTotal = nil, 0
			if len(lk.waiting) > 0 {
				pending := lk.waiting
				lk.waiting = nil
				for _, p := range pending {
					tail.Queue = append(tail.Queue, proto.QueuedWaiter{
						Requester:       p.req.Requester,
						Mode:            p.req.Mode,
						LastTime:        p.req.LastTime,
						LastIncarnation: p.req.LastIncarnation,
						BindGen:         p.req.BindGen,
						Arrival:         p.arrival,
					})
				}
				if tr := n.sys.obs; tr != nil {
					tr.Emit(obs.Event{
						Kind: obs.EvTokenForward, Cycles: at, Node: int32(n.id),
						Obj: int32(lk.id), Peer: int32(req.Requester), Name: lk.obj.name,
						A: int64(len(tail.Queue)),
					})
				}
			}
			grant.Tail = tail
		} else if len(lk.waiting) > 0 {
			// Remaining queued requests chase the new owner.
			pending := lk.waiting
			lk.waiting = nil
			for _, p := range pending {
				n.sendAt(int(req.Requester), proto.KindLockForward, p.req, max(at, p.arrival))
			}
		}
	}
	sent := uint64(proto.UpdateBytes(grant.Updates))
	for _, h := range grant.History {
		sent += uint64(proto.UpdateBytes(h.Updates))
	}
	n.st.BytesTransferred.Add(sent)
	if tr := n.sys.obs; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvTransfer, Cycles: at + cycles, Node: int32(n.id),
			Obj: int32(lk.id), Peer: int32(req.Requester), Name: lk.obj.name,
			Mode: obsMode(req.Mode), Full: grant.Full, Bytes: sent,
			A: int64(grant.Incarnation),
		})
	}
	n.sendAt(int(req.Requester), proto.KindLockGrant, grant, at+cycles)
}

// managerBarrierEnter runs on the barrier's manager.  buf, when non-nil,
// is the pooled payload buffer backing e's decoded views, recycled at
// epoch completion (lockstep deferred recycle); recovery re-drives pass
// nil because their enters are sender-owned.
func (n *Node) managerBarrierEnter(e *proto.BarrierEnter, arrival uint64, buf []byte) {
	if n.sys.gone(int(e.Node)) {
		return // release-boundary rollback discards a corpse's enter
	}
	obj := n.sys.objectByID(e.Barrier)
	n.mu.Lock()
	st := n.bmgr[e.Barrier]
	if st == nil {
		if mt := n.sys.members; mt != nil {
			if mgr := n.sys.managerFor(obj); mgr != n.id {
				// A membership change moved the manager role (and its
				// epoch state, which travels with it) after this enter was
				// addressed: chase the new manager.  Only a node holding
				// no bmgr state can be stale — role and state move
				// together under the all-mutex freeze.
				n.mu.Unlock()
				n.sendAt(mgr, proto.KindBarrierEnter, e, arrival)
				if buf != nil {
					proto.RecycleBytes(buf)
				}
				return
			}
		}
		st = &bmgrBarrier{}
		n.bmgr[e.Barrier] = st
	}
	if e.Epoch != st.epoch {
		if n.sys.anyCrashed() && e.Epoch < st.epoch {
			// A straggler from before a crash: recovery already completed
			// this epoch on the sender's behalf.
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		n.sys.fail(fmt.Errorf("core: node %d: barrier %d epoch mismatch from peer %d: got %d want %d",
			n.id, e.Barrier, e.Node, e.Epoch, st.epoch))
		return
	}
	if n.sys.anyCrashed() {
		for _, prev := range st.entered {
			if prev.Node == e.Node {
				n.mu.Unlock()
				return // recovery re-drove an enter that had arrived after all
			}
		}
	}
	st.entered = append(st.entered, e)
	st.arrivals = append(st.arrivals, arrival)
	if buf != nil {
		st.bufs = append(st.bufs, buf)
	}
	if len(st.entered) < n.barrierNeeded(obj, st.entered) {
		n.mu.Unlock()
		return
	}
	n.completeBarrierLocked(obj, st)
}

// barrierNeeded returns how many enters complete the barrier's current
// epoch.  Fault-free this is the static party count; after a crash, an
// all-nodes barrier no longer waits for dead nodes (unless a pre-crash
// enter from one is already recorded, in which case its data is merged for
// the survivors and only its release is skipped).  Under elastic
// membership an all-nodes barrier rendezvouses the *current* membership:
// joiners are counted from their commit epoch onward, and departed or
// dead nodes leave the count (again keeping a recorded enter's data).
func (n *Node) barrierNeeded(obj *object, entered []*proto.BarrierEnter) int {
	need := obj.parties
	if obj.parties != n.sys.cfg.Nodes {
		return need
	}
	if mt := n.sys.members; mt != nil {
		need = mt.Count()
		for _, e := range entered {
			if mt.Gone(int(e.Node)) {
				need++ // a corpse's pre-crash enter still occupies a slot
			}
		}
		return need
	}
	snap := n.sys.crashSnap.Load()
	if snap == nil {
		return need
	}
	for dead, isDead := range *snap {
		if !isDead {
			continue
		}
		present := false
		for _, e := range entered {
			if int(e.Node) == dead {
				present = true
				break
			}
		}
		if !present {
			need--
		}
	}
	return need
}

// maybeCompleteBarrier re-checks a barrier for completion after crash
// recovery shrank its membership.
func (n *Node) maybeCompleteBarrier(obj *object) {
	n.mu.Lock()
	st := n.bmgr[obj.id]
	if st == nil || len(st.entered) == 0 || len(st.entered) < n.barrierNeeded(obj, st.entered) {
		n.mu.Unlock()
		return
	}
	n.completeBarrierLocked(obj, st)
}

// completeBarrierLocked merges the epoch's enters and sends the releases.
// Caller holds n.mu, which is released before the sends.
func (n *Node) completeBarrierLocked(obj *object, st *bmgrBarrier) {
	entered := st.entered
	arrivals := st.arrivals
	bufs := st.bufs
	epoch := st.epoch
	st.entered = nil
	st.arrivals = nil
	st.bufs = nil
	st.epoch++
	n.mu.Unlock()

	releaseAt := uint64(0)
	var newTime int64
	for i, ent := range entered {
		if arrivals[i] > releaseAt {
			releaseAt = arrivals[i]
		}
		newTime = n.lamport.Witness(ent.Time)
	}
	if rc := n.race; rc != nil {
		// Two parties shipping overlapping byte ranges into the same
		// epoch's merge wrote the same data with no order between them.
		rc.CheckMerge(obj.id, obj.name, entered, releaseAt)
	}
	for _, ent := range entered {
		if n.sys.gone(int(ent.Node)) {
			continue // its data was merged above; the corpse gets no release
		}
		var merged []proto.Update
		for _, other := range entered {
			if other.Node == ent.Node {
				continue
			}
			merged = append(merged, other.Updates...)
		}
		rel := &proto.BarrierRelease{
			Barrier: obj.id,
			Epoch:   epoch,
			Time:    newTime,
			Updates: merged,
		}
		if int(ent.Node) != n.id {
			n.st.BytesTransferred.Add(uint64(proto.UpdateBytes(merged)))
		}
		n.sendAt(int(ent.Node), proto.KindBarrierRelease, rel, releaseAt)
	}
	// Every release is encoded (copying the merged views out), so the
	// enters' pooled payload buffers are dead now.
	for _, b := range bufs {
		proto.RecycleBytes(b)
	}
}

// abortIfCrashed terminates the calling proc if its node has been declared
// dead (by System.KillNode or the failure detector).
func (n *Node) abortIfCrashed() {
	select {
	case <-n.crashCh:
		panic(errCrashed)
	default:
	}
}
