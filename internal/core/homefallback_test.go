package core

import (
	"testing"

	"midway/internal/memory"
)

// TestHomeForDeadNodeFallback pins the liveness guard in lock-home
// routing: a node's migrated-home override that names a node since
// declared dead must NOT be routed to — homeForLocked falls back to the
// static hashed manager, even before crash repair rewrites the views.
// The resolution is a pure function of (override view, liveness), taken
// under the node mutex, so both execution engines route identically.
func TestHomeForDeadNodeFallback(t *testing.T) {
	s, err := NewSystem(Config{Nodes: 3, Strategy: RT, Migrate: true})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	addr := s.MustAlloc("x", 64, 3)
	l := s.NewLock("x", memory.Range{Addr: addr, Size: 64})
	obj := s.objectByID(uint32(l))
	if obj == nil {
		t.Fatal("lock object not in the snapshot")
	}
	// Pick an override target distinct from the static manager, so the
	// fallback is observable.
	target := (obj.manager + 1) % 3

	n := s.Node(0)
	n.mu.Lock()
	defer n.mu.Unlock()

	if got := n.homeForLocked(obj); got != obj.manager {
		t.Fatalf("homeForLocked with no override = %d, want static manager %d", got, obj.manager)
	}
	n.setHomeLocked(obj.id, target, 1)
	if got := n.homeForLocked(obj); got != target {
		t.Fatalf("homeForLocked with live override = %d, want %d", got, target)
	}

	// Declare the override target dead the way crash detection does (the
	// lock-free snapshot) and require the route to fall back.
	snap := make([]bool, 3)
	snap[target] = true
	s.crashSnap.Store(&snap)
	if got := n.homeForLocked(obj); got != obj.manager {
		t.Errorf("homeForLocked with dead override = %d, want fallback to static manager %d",
			got, obj.manager)
	}

	// A later, newer override naming a live node takes effect again.
	live := (obj.manager + 2) % 3
	n.setHomeLocked(obj.id, live, 2)
	if got := n.homeForLocked(obj); got != live {
		t.Errorf("homeForLocked with newer live override = %d, want %d", got, live)
	}
}

// TestHomeForAbsentNodeFallback pins the same guard under elastic
// membership: an override naming provisioned-but-never-joined capacity
// (status Absent, so not a member) must fall back to the static manager.
func TestHomeForAbsentNodeFallback(t *testing.T) {
	s, err := NewSystem(Config{Nodes: 2, MaxNodes: 4, Strategy: RT, Migrate: true})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	addr := s.MustAlloc("x", 64, 3)
	l := s.NewLock("x", memory.Range{Addr: addr, Size: 64})
	obj := s.objectByID(uint32(l))
	if obj == nil {
		t.Fatal("lock object not in the snapshot")
	}

	n := s.Node(0)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.setHomeLocked(obj.id, 3, 1) // node 3 is provisioned but absent
	if got := n.homeForLocked(obj); got != obj.manager {
		t.Errorf("homeForLocked naming absent node = %d, want static manager %d", got, obj.manager)
	}

	// Out-of-range overrides (a view sized before a capacity change) are
	// equally unroutable.
	n.setHomeLocked(obj.id, 7, 2)
	if got := n.homeForLocked(obj); got != obj.manager {
		t.Errorf("homeForLocked naming out-of-range node = %d, want static manager %d", got, obj.manager)
	}
}
