// Package core implements Midway, an entry-consistency distributed shared
// memory system, with pluggable write-detection strategies.
//
// The paper's two contributions are implemented as interchangeable
// strategies over the same consistency protocol:
//
//   - RT: compiler/runtime write detection.  Every store to shared memory
//     sets a per-cache-line dirtybit, which is really a Lamport timestamp;
//     write collection scans the dirtybits bound to a synchronization
//     object and ships exactly the lines the requester has not seen.
//
//   - VM: virtual-memory write detection.  The first store to a clean page
//     write-faults; the fault handler twins the page; write collection
//     diffs dirty pages against their twins and manages per-lock
//     incarnation-numbered update histories.
//
// Two further strategies from the paper's Section 3.5 round out the design
// space: Blast (no detection; all bound data is shipped at every transfer)
// and TwinDiff (no detection; all bound data is twinned and diffed at every
// transfer).  A Hybrid strategy dispatches between the RT and VM mechanisms
// per region, following the paper's observation that neither scheme
// dominates across sharing granularities.
//
// The detection mechanisms themselves live in internal/detect and are
// resolved by registry name; core implements the consistency protocol
// (ownership transfer, forwarding, barrier management) against the
// detect.Detector interface.
//
// Under entry consistency, processes synchronize through locks and
// barriers, each of which the programmer binds to the data it protects.
// Data is made consistent at a processor only when that processor acquires
// the guarding object, which is when write collection runs.
package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"midway/internal/cost"
	"midway/internal/detect"
	"midway/internal/member"
	"midway/internal/memory"
	"midway/internal/obs"
	"midway/internal/race"
	"midway/internal/sched"
	"midway/internal/stats"
	"midway/internal/transport"
)

// Strategy selects a write-detection mechanism.
type Strategy int

const (
	// RT is compiler/runtime write detection with dirtybit timestamps.
	RT Strategy = iota
	// VM is virtual-memory write detection with twins, diffs and
	// incarnation numbers.
	VM
	// Blast performs no write detection: every transfer ships all data
	// bound to the synchronization object (Section 3.5).
	Blast
	// TwinDiff performs no write detection: all bound data is twinned on
	// arrival and diffed at every transfer (Section 3.5).
	TwinDiff
	// None disables both detection and collection.  It exists for the
	// standalone (uninstrumented, single-node) baseline of Figure 2.
	None
	// Hybrid dispatches between the RT and VM mechanisms per region,
	// selected by the allocation's granularity class (or measured write
	// density for untagged regions).
	Hybrid
)

// String returns the strategy's name as used in reports.
func (s Strategy) String() string {
	switch s {
	case RT:
		return "RT-DSM"
	case VM:
		return "VM-DSM"
	case Blast:
		return "Blast"
	case TwinDiff:
		return "TwinDiff"
	case None:
		return "standalone"
	case Hybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Scheme returns the detect registry name the strategy resolves to.
func (s Strategy) Scheme() string {
	switch s {
	case RT:
		return "rt"
	case VM:
		return "vm"
	case Blast:
		return "blast"
	case TwinDiff:
		return "twindiff"
	case None:
		return "none"
	case Hybrid:
		return "hybrid"
	default:
		return ""
	}
}

// ParseStrategy converts a name ("rt", "vm", "blast", "twin", "none",
// "hybrid") to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "rt", "RT", "rt-dsm":
		return RT, nil
	case "vm", "VM", "vm-dsm":
		return VM, nil
	case "blast":
		return Blast, nil
	case "twin", "twindiff":
		return TwinDiff, nil
	case "none", "standalone":
		return None, nil
	case "hybrid", "Hybrid":
		return Hybrid, nil
	}
	return 0, fmt.Errorf("core: unknown strategy %q", s)
}

// Config describes a DSM system instance.
type Config struct {
	// Nodes is the number of processors.
	Nodes int
	// Strategy selects the write-detection mechanism.
	Strategy Strategy
	// Scheme optionally selects the write-detection scheme by its detect
	// registry name, overriding Strategy.  Empty means Strategy.Scheme().
	// This is the hook for externally registered detectors.
	Scheme string
	// Cost is the primitive-operation cost model; zero value means
	// cost.Default().
	Cost cost.Model
	// Network is the interconnect cost model; zero value means
	// cost.DefaultNetwork().
	Network cost.NetworkParams
	// RegionShift is log2 of the region size; zero means
	// memory.DefaultRegionShift.
	RegionShift uint
	// Transport supplies the message network.  Nil means an in-process
	// channel network.
	Transport transport.Network
	// LocalNode restricts this System to hosting a single node of a
	// multi-process deployment (used with a TCP transport).  -1 (or zero
	// value via NewSystem) hosts all nodes.
	LocalNode int
	// EagerTimestamps selects the eager dirtybit scheme, in which every
	// store records the current Lamport time instead of the cheap pending
	// marker (the paper's footnote 1 describes the lazy default).
	EagerTimestamps bool
	// CombineIncarnations enables the §3.4 alternative Midway chose not
	// to implement: when a VM-DSM (or TwinDiff) releaser replies with
	// several incarnations' updates, it first combines them so each
	// address reflects only the most recent incarnation that wrote it,
	// eliminating the redundant resends of uncombined histories at the
	// cost of a merge pass.
	CombineIncarnations bool
	// Trace, when non-nil, receives one line per protocol event
	// (acquisitions, transfers, barrier crossings) stamped with the
	// node's simulated time.  It is a convenience for the text sink; Obs
	// supersedes it when set.
	Trace io.Writer
	// Obs, when non-nil, receives structured events from the protocol,
	// the write-detection mechanisms and the transport.  Run closes it
	// (flushing buffered sinks) before returning.  When nil and Trace is
	// set, a text-sink tracer is built from Trace.
	Obs *obs.Tracer
	// CompatCodec disables the codec fast paths (pooled encoders,
	// zero-copy decoders): every message is encoded into a fresh owned
	// buffer and decoded by copying.  Wire bytes and simulated results
	// are identical either way.
	CompatCodec bool
	// OnCrash selects how the run reacts when a node is declared dead
	// (System.KillNode, Proc.Crash, or the transport-level failure
	// detector): CrashAbort (default) fails the run with a *CrashError;
	// CrashDegrade runs the recovery protocol and finishes with the
	// survivors, itemizing the losses in System.CrashReport.
	OnCrash CrashPolicy
	// CrashDetectCycles is the simulated detection latency charged between
	// a crash and the survivors' recovery actions.  Zero means
	// DefaultCrashDetectCycles.
	CrashDetectCycles uint64
	// PreStop, when non-nil, runs after the application goroutines finish
	// and before the protocol handlers are stopped.  The transport wiring
	// uses it to quiesce the heartbeat monitor so teardown silence is not
	// mistaken for node death.
	PreStop func()
	// Lockstep selects the conservative lockstep engine (internal/sched):
	// nodes run message-free stretches in parallel and messages deliver
	// at quiescence points in a deterministic simulated-time order, so
	// the whole run is byte-reproducible regardless of GOMAXPROCS.  It
	// requires the built-in stepped transport (Transport must be nil) and
	// composes with neither wall-clock-driven layers (fault injection,
	// reliability, heartbeats) nor multi-process deployments; the system
	// layer validates those combinations.
	Lockstep bool
	// SchedThreads caps how many node goroutines the lockstep engine
	// executes concurrently, so several engines sharing a process (the
	// benchmark worker pool) split GOMAXPROCS instead of multiplying it.
	// Zero means no cap beyond GOMAXPROCS.
	SchedThreads int
	// MaxNodes enables elastic membership: the system provisions MaxNodes
	// node ids, of which [0, Nodes) are founding members and the rest start
	// absent, joining at runtime through Proc.Join and departing through
	// Proc.Leave.  Zero (or Nodes) means fixed membership: no member table
	// is constructed and every run is byte-identical to before the
	// membership layer existed.  Requires the built-in transport (all
	// nodes hosted in this process).
	MaxNodes int
	// OnMembership, when non-nil, is called after every committed
	// membership transition with the subject node, the action and the new
	// epoch.  The system layer uses it to keep the heartbeat monitor's
	// active set and the reliable layer's per-peer state in sync.  It is
	// called outside all protocol mutexes.
	OnMembership func(node int, action member.Action, epoch uint64)
	// Migrate enables dynamic lock ownership: lock and barrier homes are
	// sharded by a splitmix hash of the object id instead of round-robin,
	// a lock's home migrates to its dominant acquirer when that node's
	// share of a sliding acquire window crosses MigrateThreshold, and
	// contended handoffs forward the waiter queue with the token instead
	// of re-chasing each waiter through the home.  Off (the default),
	// every run is byte-identical to the pre-migration protocol.
	Migrate bool
	// MigrateThreshold is the acquire share in (0, 1] one node must reach
	// over the sliding window before the lock's home migrates to it.
	// Zero means DefaultMigrateThreshold.
	MigrateThreshold float64
	// MigrateWindow is the sliding acquire window: the travelling census
	// halves when its total reaches this many acquires.  Zero means
	// DefaultMigrateWindow.
	MigrateWindow int
	// Partition, when non-empty, injects a deterministic network
	// partition in ParsePartitionSpec format, e.g.
	// "minority=2+3,at=40000,healat=90000": at simulated time at, the
	// minority side is cut from the rest of the membership in both
	// directions; under the fence policy the cut heals at healat and the
	// delayed traffic flows.  The schedule is expressed purely in
	// simulated time, so it composes with the lockstep engine and
	// replays byte-identically; it also arms the split-brain oracle
	// (MaxExclusiveHolders).  Empty (the default), no partition state is
	// built and runs are byte-identical to pre-partition builds.
	Partition string
	// OnPartition selects the reaction when the partition is declared:
	// PartitionFence (default) parks the minority until heal,
	// PartitionAbort fails the run with a *PartitionError, and
	// PartitionDegrade declares the minority dead (requires
	// OnCrash == CrashDegrade).
	OnPartition PartitionPolicy
	// RaceDetect enables the entry-consistency race detector
	// (internal/race): stores to lock-bound shared data are checked
	// against the writer's held locks, and transfer/merge-time update
	// sets are cross-checked for unordered conflicts.  Findings are
	// recorded (System.RaceFindings) and, when tracing is on, emitted as
	// EvUnguardedWrite / EvUnorderedConflict events.  The detector
	// charges no simulated cycles; off (the default), the hot paths pay
	// one nil check and runs are byte-identical to pre-detector builds.
	RaceDetect bool
}

// Migration policy defaults.
const (
	// DefaultMigrateThreshold is the acquire share that triggers a
	// lock-home migration.
	DefaultMigrateThreshold = 0.6
	// DefaultMigrateWindow is the sliding acquire window size.
	DefaultMigrateWindow = 32
	// migrateMinSamples is the minimum windowed acquire total before the
	// dominance test may fire, so a lock does not migrate on its first
	// couple of acquires.
	migrateMinSamples = 8
)

// ObjKind distinguishes locks from barriers in the object table.
type ObjKind uint8

const (
	// ObjLock is a mutual-exclusion synchronization object.
	ObjLock ObjKind = iota
	// ObjBarrier is an all-processor synchronization object.
	ObjBarrier
)

// object is the static description of a synchronization object, identical
// on every node (SPMD setup).
type object struct {
	id      uint32
	kind    ObjKind
	name    string
	manager int
	parties int            // barriers only
	binding []memory.Range // initial binding
	// parts optionally records, per node, the sub-ranges that node writes
	// between barrier episodes.  Only the Blast strategy needs it (it has
	// no way to detect what changed); detection-based strategies ignore
	// it.
	parts [][]memory.Range
}

// LockID names a lock created by NewLock.
type LockID uint32

// BarrierID names a barrier created by NewBarrier.
type BarrierID uint32

// System is one DSM instance: the shared layout, the synchronization
// object table, and the hosted nodes.
type System struct {
	cfg    Config
	layout *memory.Layout
	net    transport.Network
	ownNet bool // we created the network and must close it
	// obs is the structured-event tracer; nil means tracing is disabled
	// and every emission site short-circuits before evaluating arguments.
	obs *obs.Tracer
	// raceRec collects race-detector findings across every node's
	// checker; nil when Config.RaceDetect is off.
	raceRec *race.Recorder

	// failErr records the first transport/protocol failure; failCh is
	// closed alongside it so every blocked application goroutine aborts
	// instead of waiting for a message that will never arrive.
	failOnce sync.Once
	failErr  error
	failCh   chan struct{}

	mu      sync.Mutex
	objects []*object
	// objSnap is the lock-free view of the object table.  The table is
	// append-only: every mutation (under mu) publishes a fresh slice
	// header here, so readers — including the trace path, which runs with
	// a node mutex held — never touch the System mutex.
	objSnap  atomic.Pointer[[]*object]
	frozen   bool
	finished bool // Run has returned; Abort becomes a no-op
	// presets records initial-content installations so strategies that
	// twin data lazily (TwinDiff) can reconstruct the pristine image any
	// node started from.
	presets []preset

	// crashedSet (under mu) records nodes declared dead; crashSnap is its
	// lock-free snapshot, nil until the first crash so fault-free hot
	// paths pay one atomic nil check.  report accumulates what recovery
	// had to discard or rebuild.
	crashedSet map[int]bool
	crashSnap  atomic.Pointer[[]bool]
	report     CrashReport

	nodes []*Node // nil entries for nodes hosted elsewhere

	// members is the elastic-membership table (Config.MaxNodes), nil for
	// fixed-membership systems — every membership code path nil-checks it
	// first, so fixed runs stay byte-identical.
	members *member.Table
	// runFn and runWG are the SPMD application function and the goroutine
	// engine's completion group, retained during Run so a joiner's proc
	// can be launched mid-run.
	runFn func(i int, n *Node)
	runWG sync.WaitGroup

	// eng and stepped are the lockstep engine and its message queue, nil
	// under the goroutine engine.
	eng     *sched.Engine
	stepped *transport.SteppedNetwork

	// part is the deterministic partition schedule (Config.Partition) and
	// census the split-brain oracle armed alongside it; both nil when no
	// partition is configured, so fault-free hot paths pay one nil check.
	part   *partitionState
	census *ownerCensus
}

// NewSystem creates a DSM system.  Shared memory allocation and
// synchronization object creation must happen before Run.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("core: invalid node count %d", cfg.Nodes)
	}
	zero := cost.Model{}
	if cfg.Cost == zero {
		cfg.Cost = cost.Default()
	}
	if cfg.Network == (cost.NetworkParams{}) {
		cfg.Network = cost.DefaultNetwork()
	}
	if cfg.RegionShift == 0 {
		cfg.RegionShift = memory.DefaultRegionShift
	}
	if cfg.Scheme == "" {
		cfg.Scheme = cfg.Strategy.Scheme()
	}
	if !detect.Registered(cfg.Scheme) {
		return nil, fmt.Errorf("core: unknown detection scheme %q (registered: %v)",
			cfg.Scheme, detect.Names())
	}
	if cfg.Obs == nil && cfg.Trace != nil {
		cfg.Obs = obs.New(obs.Config{Text: cfg.Trace})
	}
	if cfg.Migrate {
		if cfg.MigrateThreshold == 0 {
			cfg.MigrateThreshold = DefaultMigrateThreshold
		}
		if cfg.MigrateThreshold <= 0 || cfg.MigrateThreshold > 1 {
			return nil, fmt.Errorf("core: MigrateThreshold %g outside (0, 1]", cfg.MigrateThreshold)
		}
		if cfg.MigrateWindow == 0 {
			cfg.MigrateWindow = DefaultMigrateWindow
		}
		if cfg.MigrateWindow < migrateMinSamples {
			return nil, fmt.Errorf("core: MigrateWindow %d below the minimum sample count %d", cfg.MigrateWindow, migrateMinSamples)
		}
	}
	total := cfg.Nodes
	if cfg.MaxNodes > 0 {
		if cfg.MaxNodes < cfg.Nodes {
			return nil, fmt.Errorf("core: MaxNodes %d below founding node count %d", cfg.MaxNodes, cfg.Nodes)
		}
		if cfg.Transport != nil && cfg.LocalNode >= 0 {
			// A caller-supplied transport is fine as long as it hosts every
			// node in this process and is sized for MaxNodes endpoints (the
			// root package's fault-injection and reliability stacks are);
			// per-process hosting is not: admission splices protocol state
			// under a global freeze.
			return nil, fmt.Errorf("core: elastic membership requires the all-hosted configuration (every node in one process)")
		}
		total = cfg.MaxNodes
	}
	s := &System{
		cfg:    cfg,
		layout: memory.NewLayout(cfg.RegionShift),
		obs:    cfg.Obs,
		failCh: make(chan struct{}),
	}
	if cfg.MaxNodes > 0 {
		s.members = member.New(cfg.Nodes, total)
	}
	switch {
	case cfg.Transport != nil:
		if cfg.Lockstep {
			return nil, fmt.Errorf("core: the lockstep engine requires the built-in stepped transport (Transport must be nil)")
		}
		// An elastic system needs an endpoint per provisioned slot, not
		// per founding node.
		if cfg.Transport.Nodes() != total {
			return nil, fmt.Errorf("core: transport has %d nodes, config has %d",
				cfg.Transport.Nodes(), total)
		}
		s.net = cfg.Transport
	case cfg.Lockstep:
		s.stepped = transport.NewSteppedNetwork(total)
		s.net = s.stepped
		s.ownNet = true
	default:
		s.net = transport.NewChannelNetwork(total)
		s.ownNet = true
	}
	if cfg.Partition != "" {
		spec, err := ParsePartitionSpec(cfg.Partition)
		if err != nil {
			return nil, err
		}
		if cfg.OnPartition == PartitionDegrade && cfg.OnCrash != CrashDegrade {
			return nil, fmt.Errorf("core: the degrade partition policy declares the minority dead and needs OnCrash=CrashDegrade to recover")
		}
		if cfg.Transport != nil && cfg.LocalNode >= 0 {
			return nil, fmt.Errorf("core: the deterministic partition schedule requires the all-hosted configuration (every node in one process)")
		}
		s.part, err = newPartitionState(spec, cfg.OnPartition, total)
		if err != nil {
			return nil, err
		}
		s.census = newOwnerCensus()
	}
	s.nodes = make([]*Node, total)
	local := cfg.LocalNode
	for i := 0; i < total; i++ {
		if cfg.Transport != nil && local >= 0 && i != local {
			continue // hosted by another process
		}
		s.nodes[i] = newNode(s, i)
	}
	if cfg.Lockstep {
		// Arrival uses the same formula as Node.arrivalTime: transit cost
		// for cross-node messages, instantaneous self-sends.
		netp := cfg.Network
		s.stepped.SetArrival(func(m transport.Message) uint64 {
			if m.From == m.To {
				return m.Time
			}
			transit := netp.MessageCycles(m.Size())
			if ps := s.part; ps != nil {
				// A cross-cut message under the fence policy is held at
				// the cut and delivered one transit after the heal.
				if at, ok := ps.delayedArrival(m.From, m.To, m.Time, transit); ok {
					return at
				}
			}
			return m.Time + transit
		})
		s.eng = sched.New(total, cfg.SchedThreads, sched.Hooks{
			NextMessage: s.stepped.PopMin,
			Dispatch:    s.dispatchStepped,
			OnDeadlock: func(blocked []int) {
				s.fail(fmt.Errorf("core: lockstep deadlock: nodes %v are blocked with no message in flight", blocked))
			},
		})
	}
	return s, nil
}

// dispatchStepped is the lockstep engine's delivery callback: it runs one
// message's handler synchronously on the engine goroutine, mirroring
// handlerLoop's ghost routing.
func (s *System) dispatchStepped(m transport.Message, arrival uint64) {
	n := s.nodes[m.To]
	if n.ghost.Load() {
		// Ghosting happens only inside a quiescence section (killNodeFrom
		// and leaveNodeFrom defer to RunAtQuiescence), which also closes
		// unghosted before any later delivery, so this wait never blocks;
		// it is kept for symmetry with handlerLoop.  Re-check the flag
		// afterwards: a gracefully-departed node that rejoined has been
		// un-ghosted (the channel stays closed) and dispatches normally.
		<-n.unghosted
		if n.ghost.Load() {
			n.ghostRoute(m, arrival)
			return
		}
	}
	n.dispatch(m, arrival)
}

// Engine returns the lockstep engine, or nil under the goroutine engine.
// The root package uses it to construct engine-aware host schedulers
// (sched.Turns).
func (s *System) Engine() *sched.Engine { return s.eng }

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Layout returns the shared memory layout.
func (s *System) Layout() *memory.Layout { return s.layout }

// Alloc reserves shared memory with the given cache line size
// (1<<lineShift bytes).
func (s *System) Alloc(name string, size uint32, lineShift uint) (memory.Addr, error) {
	return s.layout.Alloc(name, size, memory.Shared, lineShift)
}

// AllocTagged is Alloc with an explicit granularity class, which the
// hybrid scheme uses to route the allocation's regions to the rt or vm
// mechanism.  Other schemes ignore the tag.
func (s *System) AllocTagged(name string, size uint32, lineShift uint, gran memory.Gran) (memory.Addr, error) {
	return s.layout.AllocTagged(name, size, memory.Shared, lineShift, gran)
}

// MustAlloc is Alloc, panicking on error (setup-time convenience).
func (s *System) MustAlloc(name string, size uint32, lineShift uint) memory.Addr {
	a, err := s.Alloc(name, size, lineShift)
	if err != nil {
		panic(err)
	}
	return a
}

// MustAllocTagged is AllocTagged, panicking on error.
func (s *System) MustAllocTagged(name string, size uint32, lineShift uint, gran memory.Gran) memory.Addr {
	a, err := s.AllocTagged(name, size, lineShift, gran)
	if err != nil {
		panic(err)
	}
	return a
}

// AllocPrivate reserves private memory.  Instrumented stores reaching it
// pay only the misclassification penalty.
func (s *System) AllocPrivate(name string, size uint32) (memory.Addr, error) {
	return s.layout.Alloc(name, size, memory.Private, 0)
}

// objectHome assigns an object's static directory home.  Migration-off
// systems keep the historical round-robin assignment so their runs stay
// byte-identical to the pre-migration protocol; migration-on systems
// shard by a splitmix hash of the id, so consecutively created objects
// (typically the hottest) do not concentrate on the low-numbered nodes.
func (s *System) objectHome(id uint32) int {
	if !s.cfg.Migrate {
		return int(id) % s.cfg.Nodes
	}
	z := uint64(id)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(s.cfg.Nodes))
}

// NewLock creates a lock.  The manager node is chosen by hashing the
// object id across nodes, as in a static distributed directory.
func (s *System) NewLock(name string, binding ...memory.Range) LockID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		panic("core: NewLock after Run")
	}
	id := uint32(len(s.objects))
	s.objects = append(s.objects, &object{
		id:      id,
		kind:    ObjLock,
		name:    name,
		manager: s.objectHome(id),
		binding: append([]memory.Range(nil), binding...),
	})
	s.publishObjects()
	return LockID(id)
}

// publishObjects refreshes the lock-free object-table snapshot.  Caller
// holds s.mu.  Elements below the published length are never rewritten,
// so readers of an older snapshot stay consistent.
func (s *System) publishObjects() {
	snap := s.objects
	s.objSnap.Store(&snap)
}

// NewBarrier creates a barrier for parties processors (0 means all nodes)
// over the optionally bound data.
func (s *System) NewBarrier(name string, parties int, binding ...memory.Range) BarrierID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		panic("core: NewBarrier after Run")
	}
	if parties <= 0 {
		parties = s.cfg.Nodes
	}
	id := uint32(len(s.objects))
	s.objects = append(s.objects, &object{
		id:      id,
		kind:    ObjBarrier,
		name:    name,
		manager: s.objectHome(id),
		parties: parties,
		binding: append([]memory.Range(nil), binding...),
	})
	s.publishObjects()
	return BarrierID(id)
}

// SetBarrierParts records, per node, the sub-ranges of the barrier's bound
// data that the node writes between episodes.  Only the Blast strategy
// uses this information; the detecting strategies discover it at runtime.
func (s *System) SetBarrierParts(b BarrierID, parts [][]memory.Range) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj := s.objects[uint32(b)]
	if obj.kind != ObjBarrier {
		panic("core: SetBarrierParts on a lock")
	}
	obj.parts = parts
}

// objectsSnapshot returns the immutable object-table snapshot without
// taking the System mutex (safe for the trace path and detector-side
// iteration while a node mutex is held).  The returned slice must not be
// mutated.
func (s *System) objectsSnapshot() []*object {
	if p := s.objSnap.Load(); p != nil {
		return *p
	}
	return nil
}

// objectByID returns the object table entry, lock-free.
func (s *System) objectByID(id uint32) *object {
	objects := s.objectsSnapshot()
	if int(id) >= len(objects) {
		panic(fmt.Sprintf("core: unknown object %d", id))
	}
	return objects[id]
}

// Preset installs initial contents into every hosted node's copy of the
// given range before the run starts, without trapping or counting the
// writes.  It models program input that each process loads identically at
// startup (as the paper's applications read their input files); in a
// multi-process deployment every process must perform the same presets.
// Preset panics if called after Run.
func (s *System) Preset(a memory.Addr, data []byte) {
	s.mu.Lock()
	frozen := s.frozen
	s.mu.Unlock()
	if frozen {
		panic("core: Preset after Run")
	}
	rg := memory.Range{Addr: a, Size: uint32(len(data))}
	for _, n := range s.nodes {
		if n != nil {
			n.inst.WriteBytes(rg, data)
		}
	}
	s.mu.Lock()
	// Applications preset arrays element by element; coalescing contiguous
	// installations keeps the recorded list (and every pristine-image
	// reconstruction walking it) proportional to the number of arrays, not
	// elements.
	if n := len(s.presets); n > 0 {
		last := &s.presets[n-1]
		if last.rg.Addr+memory.Addr(last.rg.Size) == rg.Addr {
			last.data = append(last.data, data...)
			last.rg.Size += rg.Size
			s.mu.Unlock()
			return
		}
	}
	s.presets = append(s.presets, preset{rg: rg, data: append([]byte(nil), data...)})
	s.mu.Unlock()
}

// preset is one recorded initial-content installation.
type preset struct {
	rg   memory.Range
	data []byte
}

// pristineBound reconstructs the pre-run contents of the bound ranges as a
// contiguous buffer: zeros overlaid with any presets.
func (s *System) pristineBound(binding []memory.Range) []byte {
	buf := make([]byte, detect.RangesBytes(binding))
	s.mu.Lock()
	presets := s.presets
	s.mu.Unlock()
	off := uint32(0)
	for _, rg := range binding {
		for _, p := range presets {
			inter, ok := rg.Intersect(p.rg)
			if !ok {
				continue
			}
			copy(buf[off+uint32(inter.Addr-rg.Addr):], p.data[inter.Addr-p.rg.Addr:][:inter.Size])
		}
		off += rg.Size
	}
	return buf
}

// errAborted is the sentinel an application goroutine panics with when
// the run has already failed and it must unwind; Run's recovery treats it
// as "see System.Err()", not as an application panic.
var errAborted = errors.New("core: run aborted by transport failure")

// fail records the first transport/protocol failure and releases every
// blocked application goroutine.  Safe for concurrent use.
func (s *System) fail(err error) {
	s.failOnce.Do(func() {
		s.failErr = err
		close(s.failCh)
		if s.eng != nil {
			// Release every node parked in the lockstep engine so the
			// run unwinds instead of waiting for deliveries that will
			// never happen.
			s.eng.Abort()
		}
	})
}

// Abort fails an in-progress run from outside: every blocked application
// goroutine unwinds and Run returns err.  The operator-shutdown path
// (closing the system while Run is live, e.g. on SIGINT) uses it before
// tearing down the transport, so application goroutines parked on a
// reply that will never arrive are released instead of stranded.  Before
// Run starts or after it returns, Abort is a no-op.
func (s *System) Abort(err error) {
	s.mu.Lock()
	running := s.frozen && !s.finished
	s.mu.Unlock()
	if running {
		s.fail(err)
	}
}

// Err returns the first transport/protocol failure recorded during the
// run, or nil.  Run returns the same error; Err remains available for
// inspection afterwards.
func (s *System) Err() error {
	select {
	case <-s.failCh:
		return s.failErr
	default:
		return nil
	}
}

// abortIfFailed panics with the abort sentinel if the run has failed.
func (s *System) abortIfFailed() {
	select {
	case <-s.failCh:
		panic(errAborted)
	default:
	}
}

// Run executes fn once per hosted node, concurrently, each invocation
// receiving that node's Proc handle.  It returns after every instance
// finishes; a panic in any instance is recovered and returned as an error.
// A transport failure (broken socket, undecodable message, unreachable
// peer) aborts every instance and is returned with a diagnostic naming
// the node, peer and message kind; it is also available from Err.
// Run may be called once per System.
func (s *System) Run(fn func(p *Proc)) error {
	s.mu.Lock()
	if s.frozen {
		s.mu.Unlock()
		return fmt.Errorf("core: Run called twice")
	}
	s.frozen = true
	s.mu.Unlock()
	s.layout.Freeze()
	if s.cfg.RaceDetect {
		s.setupRaceDetect()
	}

	errs := make([]error, len(s.nodes))
	runNode := func(i int, n *Node) {
		defer func() {
			if r := recover(); r != nil && r != errAborted && r != errCrashed && r != errLeft {
				if pe, ok := r.(*ProtocolError); ok {
					// An API misuse surfaces typed, not as a wrapped
					// panic, so callers can errors.As for it.
					errs[i] = pe
				} else {
					errs[i] = fmt.Errorf("core: node %d panicked: %v", i, r)
				}
				// A dead proc is still a live member: every other node
				// would wait forever at the next barrier for its entry.
				// Abort the run so the panic surfaces instead of a hang.
				s.fail(errs[i])
			}
		}()
		fn(&Proc{node: n})
	}
	s.runFn = runNode
	// absent reports a provisioned-but-not-yet-joined node: its protocol
	// handler runs (so a later join can reach it) but no proc is launched
	// until the join commits.
	absent := func(i int) bool {
		return s.members != nil && s.members.Status(i) == member.Absent
	}
	if s.eng != nil {
		// Lockstep: no handler goroutines — the engine delivers messages
		// synchronously at quiescence points on this goroutine.
		for i := range s.nodes {
			if absent(i) {
				s.eng.SetDormant(i)
			}
		}
		s.eng.Run(func(i int) { runNode(i, s.nodes[i]) })
	} else {
		for _, n := range s.nodes {
			if n != nil {
				n.start()
			}
		}
		for i, n := range s.nodes {
			if n == nil || absent(i) {
				continue
			}
			s.runWG.Add(1)
			go func(i int, n *Node) {
				defer s.runWG.Done()
				runNode(i, n)
			}(i, n)
		}
		s.runWG.Wait()
	}

	if s.cfg.PreStop != nil {
		s.cfg.PreStop()
	}
	for _, n := range s.nodes {
		if n == nil {
			continue
		}
		if s.eng != nil {
			n.conn.Close() // no handler to shut down
		} else {
			n.stop()
		}
	}
	if s.ownNet {
		s.net.Close()
	}
	// Flush the buffering trace sinks now that every node (and the
	// transport's retransmit loops, which Close above stopped) is done.
	if err := s.obs.Close(); err != nil {
		s.fail(fmt.Errorf("core: trace flush: %w", err))
	}
	s.mu.Lock()
	s.finished = true
	s.mu.Unlock()
	if err := s.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Node returns the hosted node with the given id, or nil.
func (s *System) Node(i int) *Node { return s.nodes[i] }

// ReadFinal copies node 0's copy of the range into dst after a run has
// completed.  It is the standard way to extract results: end the program
// with a barrier (or lock acquisition) that makes the result consistent at
// node 0, then read it here.
func (s *System) ReadFinal(rg memory.Range, dst []byte) {
	n := s.nodes[0]
	if n == nil {
		panic("core: ReadFinal requires node 0 to be hosted locally")
	}
	n.inst.ReadBytes(rg, dst)
}

// ReadFinalAt is ReadFinal against an arbitrary hosted node's copy.
func (s *System) ReadFinalAt(node int, rg memory.Range, dst []byte) {
	n := s.nodes[node]
	if n == nil {
		panic(fmt.Sprintf("core: node %d is not hosted locally", node))
	}
	n.inst.ReadBytes(rg, dst)
}

// Stats returns a snapshot of each hosted node's counters.  Provisioned
// ids that never joined an elastic run are excluded.
func (s *System) Stats() []stats.Snapshot {
	out := make([]stats.Snapshot, 0, len(s.nodes))
	for i, n := range s.nodes {
		if n == nil {
			continue
		}
		if s.members != nil && s.members.Status(i) == member.Absent {
			continue
		}
		out = append(out, n.st.Snapshot())
	}
	return out
}

// TotalStats returns the sum of all hosted nodes' counters.
func (s *System) TotalStats() stats.Snapshot {
	var t stats.Snapshot
	for _, sn := range s.Stats() {
		t.Add(sn)
	}
	return t
}

// MeanStats returns the per-processor average of all hosted nodes'
// counters, the form the paper's Table 2 reports.
func (s *System) MeanStats() stats.Snapshot {
	t := s.TotalStats()
	n := uint64(len(s.Stats()))
	t.Scale(n)
	return t
}

// ExecutionCycles returns the simulated execution time: the maximum final
// cycle clock across hosted nodes.
func (s *System) ExecutionCycles() uint64 {
	var maxC uint64
	for _, n := range s.nodes {
		if n != nil && n.cycles.Now() > maxC {
			maxC = n.cycles.Now()
		}
	}
	return maxC
}

// ExecutionSeconds returns the simulated execution time in seconds on the
// reference 25 MHz processor.
func (s *System) ExecutionSeconds() float64 {
	return cost.Seconds(s.ExecutionCycles())
}
