package core

import "fmt"

// ProtocolError reports an application's misuse of the entry-consistency
// API: releasing a lock it does not hold (double release or
// release-without-acquire), acquiring a lock it already holds, rebinding
// without exclusive ownership, joining or leaving while holding a lock,
// or storing to shared memory after leaving the membership.  The
// offending proc's goroutine unwinds with the error, the run aborts, and
// Run/Err return it, so tests and callers can errors.As for it instead
// of fishing diagnostics out of a panic string.
type ProtocolError struct {
	// Node is the misbehaving processor.
	Node int
	// Op is the misused operation: "acquire", "release", "rebind",
	// "join", "leave" or "write".
	Op string
	// Object names the synchronization object involved, or the written
	// region for a write-after-leave.
	Object string
	// Reason describes the misuse.
	Reason string
}

func (e *ProtocolError) Error() string {
	if e.Object == "" {
		return fmt.Sprintf("core: node %d: protocol misuse: %s: %s", e.Node, e.Op, e.Reason)
	}
	return fmt.Sprintf("core: node %d: protocol misuse: %s %s: %s", e.Node, e.Op, e.Object, e.Reason)
}

// protocolViolation panics with a typed *ProtocolError; Run's recovery
// recognizes the type and surfaces it unwrapped through Run and Err.
func (n *Node) protocolViolation(op, object, reason string) {
	panic(&ProtocolError{Node: n.id, Op: op, Object: object, Reason: reason})
}
