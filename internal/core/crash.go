package core

// Node crash recovery: release-boundary rollback.
//
// Entry consistency makes crash recovery unusually cheap: all shared data is
// bound to synchronization objects, and a write only becomes visible to
// another processor when that processor acquires the binding lock (or
// crosses the binding barrier) AFTER the writer released it.  A node that
// crashes while holding a lock has, by definition, not released it — so no
// survivor can have observed its in-critical-section writes.  Discarding
// them and handing the lock token back at the *last released* state is
// therefore indistinguishable, to any EC-legal program, from the crashed
// node never having entered the critical section at all.
//
// The recovery protocol implemented here:
//
//   - Lock tokens held by (or in flight toward) the crashed node are
//     reclaimed by the most recent live node on the grant chain.  The
//     reclaim bumps the lock's binding generation past every generation any
//     node has seen (a forced rebind), which makes the next transfer carry
//     full data under every detection scheme — survivors resynchronize from
//     the reclaimer's last-consistent copy and stale diff state is ignored.
//   - Barriers recompute membership: the crashed node's proc leaves the
//     party count, a stranded epoch is completed on the survivors' behalf
//     (synthesizing the release a dead manager failed to send), and
//     management moves to the next live node when the manager died.
//   - The proc hosted on the crashed node is terminated; System.Run either
//     aborts with a *CrashError (OnCrash == CrashAbort, the default) or
//     degrades to a survivor-only run whose losses are itemized in a
//     CrashReport (OnCrash == CrashDegrade).
//
// Two crash flavors share this machinery:
//
//   - Program-point crashes (Proc.Crash, System.KillNode): the node stops
//     at a deterministic point in its own program and no messages are lost.
//     Recovery is exact and survivor results are fully deterministic.
//   - Transport-loss crashes (fault-layer injection, detected by the
//     heartbeat monitor): messages to and from the node vanish at a
//     wall-clock-dependent point.  Recovery additionally re-drives
//     survivors' possibly-lost requests and guards against stale or
//     duplicate grants; survivor *memory* is deterministic (the repo's
//     standing guarantee for wall-clock-ordered lock contention) while
//     per-node statistics may vary run to run.

import (
	"errors"
	"fmt"

	"midway/internal/member"
	"midway/internal/obs"
	"midway/internal/proto"
	"midway/internal/transport"
)

// CrashPolicy selects how System.Run reacts when a node is declared dead.
type CrashPolicy int

const (
	// CrashAbort (the default) fails the whole run with a *CrashError.
	CrashAbort CrashPolicy = iota
	// CrashDegrade recovers: surviving nodes finish the run and the losses
	// are reported through System.CrashReport.
	CrashDegrade
)

// DefaultCrashDetectCycles is the simulated detection latency charged
// between a crash and the survivors' recovery actions when
// Config.CrashDetectCycles is zero: 25 000 cycles = 1 ms on the reference
// 25 MHz processor the cost model is calibrated for.
const DefaultCrashDetectCycles = 25_000

// errCrashed terminates the proc hosted on a crashed node.  Run treats it
// like errAborted: the goroutine unwinds silently instead of surfacing a
// run error.
var errCrashed = errors.New("core: proc terminated by node crash")

// CrashError is the run error produced under CrashAbort.
type CrashError struct {
	Node   int
	Reason string
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("core: node %d crashed (%s)", e.Node, e.Reason)
}

// ReclaimedLock records one lock token recovered from a crashed node.
type ReclaimedLock struct {
	Lock     LockID
	Name     string
	From     int // crashed node the token was reclaimed from
	NewOwner int // live node now holding the token
}

// ReformedBarrier records one barrier whose membership was recomputed.
type ReformedBarrier struct {
	Barrier BarrierID
	Name    string
	Parties int    // effective party count after reform
	Epoch   uint64 // epoch in progress at reform time
}

// CrashReport itemizes everything lost to node crashes in a degraded run.
type CrashReport struct {
	Nodes            []int // crashed nodes, in death order
	LostProcs        []int // proc indices terminated by the crashes
	ReclaimedLocks   []ReclaimedLock
	ReformedBarriers []ReformedBarrier
	DetectCycles     uint64 // simulated detection latency charged per crash
}

// --- System-side crash state -------------------------------------------------

// isCrashed reports whether node k has been declared dead.  Lock-free.
func (s *System) isCrashed(k int) bool {
	snap := s.crashSnap.Load()
	if snap == nil || k < 0 || k >= len(*snap) {
		return false
	}
	return (*snap)[k]
}

// anyCrashed reports whether any node has been declared dead.  Lock-free;
// this is the guard on every recovery-only code path, so fault-free runs
// pay a single nil check.
func (s *System) anyCrashed() bool {
	return s.crashSnap.Load() != nil
}

// gone reports whether node i was once a member of the run and no longer
// is: crashed (any mode), or gracefully departed (elastic membership).
func (s *System) gone(i int) bool {
	if s.members != nil {
		return s.members.Gone(i)
	}
	return s.isCrashed(i)
}

// liveMember reports whether node i currently participates in the
// protocol: a live or draining member under elastic membership, any
// non-crashed node otherwise.  Recovery uses it to pick reclaim targets
// and enumerate survivors, so absent capacity is never chosen.
func (s *System) liveMember(i int) bool {
	if s.members != nil {
		return s.members.IsMember(i)
	}
	return !s.isCrashed(i)
}

// managerFor resolves the managing node for obj, skipping crashed and
// departed nodes.  While every founding node is live this is exactly
// obj.manager; after a crash or graceful leave the role moves to the next
// remaining founding node in ring order (and moves back if a departed
// founding member rejoins).
func (s *System) managerFor(o *object) int {
	if mt := s.members; mt != nil {
		n := s.cfg.Nodes
		for d := 0; d < n; d++ {
			c := (o.manager + d) % n
			if !mt.Gone(c) {
				return c
			}
		}
		return o.manager
	}
	snap := s.crashSnap.Load()
	if snap == nil {
		return o.manager
	}
	n := s.cfg.Nodes
	for d := 0; d < n; d++ {
		c := (o.manager + d) % n
		if !(*snap)[c] {
			return c
		}
	}
	return o.manager
}

func (s *System) detectCycles() uint64 {
	if s.cfg.CrashDetectCycles > 0 {
		return s.cfg.CrashDetectCycles
	}
	return DefaultCrashDetectCycles
}

// CrashReport returns the losses recorded by crash recovery, or nil if no
// node has crashed.  The returned value is a copy.
func (s *System) CrashReport() *CrashReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.report.Nodes) == 0 {
		return nil
	}
	r := CrashReport{
		Nodes:            append([]int(nil), s.report.Nodes...),
		LostProcs:        append([]int(nil), s.report.LostProcs...),
		ReclaimedLocks:   append([]ReclaimedLock(nil), s.report.ReclaimedLocks...),
		ReformedBarriers: append([]ReformedBarrier(nil), s.report.ReformedBarriers...),
		DetectCycles:     s.report.DetectCycles,
	}
	return &r
}

// KillNode declares node k dead at its current point in the program, as if
// its process had been SIGKILLed between two instructions.  No messages are
// lost.  Chaos tests use this (directly or through Proc.Crash) to crash a
// node at a chosen protocol point.  Must be called after Run has started.
func (s *System) KillNode(k int) {
	s.killNode(k, false)
}

// PeerDead is the hook for real-time failure detection (the heartbeat
// monitor): node k has stopped responding and its in-flight messages must
// be presumed lost.  cycles, when nonzero, pins the failure to a simulated
// instant; zero lets recovery pick the latest live clock.
func (s *System) PeerDead(k int, cycles uint64) {
	_ = cycles
	s.killNode(k, true)
}

func (s *System) killNode(k int, transportLoss bool) {
	s.killNodeFrom(k, transportLoss, -1)
}

// killNodeFrom is killNode with the calling context made explicit: origin
// is the node whose application goroutine is making the call (Proc.Crash)
// or -1 for an external caller.  Under the lockstep engine a degraded
// crash is deferred to the next quiescence point, where the whole system
// is parked: the crash instant, the recovery decisions and every
// synthesized message then depend only on simulated state, making
// degraded-mode recovery as deterministic as the fault-free run — a
// property the goroutine engine cannot offer.
func (s *System) killNodeFrom(k int, transportLoss bool, origin int) {
	if e := s.eng; e != nil && s.cfg.OnCrash == CrashDegrade {
		s.mu.Lock()
		engineLive := s.frozen && !s.finished
		s.mu.Unlock()
		if engineLive {
			e.RunAtQuiescence(origin, func() { s.killNodeBody(k, transportLoss) })
			return
		}
	}
	s.killNodeBody(k, transportLoss)
}

func (s *System) killNodeBody(k int, transportLoss bool) {
	s.mu.Lock()
	if !s.frozen {
		s.mu.Unlock()
		if transportLoss {
			// A failure detector can in principle fire before Run (a peer
			// process that never came up); record it as a run failure
			// rather than panicking the monitor goroutine.
			s.fail(&CrashError{Node: k, Reason: "peer unresponsive before run"})
			return
		}
		panic("core: KillNode before Run")
	}
	if k < 0 || k >= len(s.nodes) {
		s.mu.Unlock()
		panic(fmt.Sprintf("core: KillNode(%d) out of range", k))
	}
	if s.crashedSet[k] {
		s.mu.Unlock()
		return
	}
	if mt := s.members; mt != nil {
		var at uint64
		if kn := s.nodes[k]; kn != nil {
			at = kn.cycles.Now()
		}
		if !mt.MarkDead(k, at) {
			// Double-reclamation fence: the node already left gracefully
			// (its state was handed off), already died, or never joined.
			// A late suspicion or stray crash notice must not reclaim it
			// a second time.
			s.mu.Unlock()
			return
		}
	}
	if s.crashedSet == nil {
		s.crashedSet = make(map[int]bool)
	}
	s.crashedSet[k] = true
	snap := make([]bool, len(s.nodes))
	for i := range snap {
		snap[i] = s.crashedSet[i]
	}
	s.crashSnap.Store(&snap)
	s.report.Nodes = append(s.report.Nodes, k)
	s.report.LostProcs = append(s.report.LostProcs, k) // one proc per node under Run
	s.report.DetectCycles = s.detectCycles()
	policy := s.cfg.OnCrash
	local := s.cfg.LocalNode
	s.mu.Unlock()

	at := s.crashTime(k, transportLoss)
	if tr := s.obs; tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvDeclareDead, Cycles: at, Node: -1, Peer: int32(k)})
	}
	if mt := s.members; mt != nil {
		if tr := s.obs; tr != nil {
			tr.Emit(obs.Event{
				Kind: obs.EvMembershipChange, Cycles: at, Node: -1, Peer: int32(k),
				A: int64(mt.Epoch()), B: int64(member.Died),
			})
		}
		if cb := s.cfg.OnMembership; cb != nil {
			cb(k, member.Died, mt.Epoch())
		}
	}

	if policy != CrashDegrade || local >= 0 || s.nodes[k] == nil {
		// Abort path.  Multi-process deployments always abort: recovery
		// needs a global view of every node's lock state, which only the
		// all-hosted (single-process) configuration has.
		s.fail(&CrashError{Node: k, Reason: s.crashReason(transportLoss)})
		return
	}

	kn := s.nodes[k]
	recoveryAt := at + s.detectCycles()

	// Ghost the crashed node: its proc aborts at the next synchronization
	// point, and its handler stops acting on messages (it will only route
	// strays once recovery has fixed the forwarding pointers).
	kn.ghost.Store(true)
	close(kn.crashCh)
	if e := s.eng; e != nil {
		// The corpse may be parked in Engine.Block awaiting a reply that
		// will never come; wake it so it observes crashCh and unwinds.
		e.Wake(k)
	}
	if s.members != nil {
		// A sponsor may be parked on this node's join handshake, which can
		// now never complete; release it with the failure recorded (a
		// no-op if the handshake already signaled success).
		s.signalJoinDone(k, recoveryAt, false)
	}

	s.recoverFrom(k, recoveryAt, transportLoss)

	close(kn.unghosted)
}

func (s *System) crashReason(transportLoss bool) string {
	if transportLoss {
		return "heartbeat timeout"
	}
	return "killed at program point"
}

// crashTime pins the crash to a simulated instant: the crashed node's own
// clock for program-point crashes, or the max over live nodes' clocks for
// transport-loss crashes (the dead node's clock may be arbitrarily stale).
func (s *System) crashTime(k int, transportLoss bool) uint64 {
	if !transportLoss {
		if kn := s.nodes[k]; kn != nil {
			return kn.cycles.Now()
		}
		return 0
	}
	var at uint64
	for i, n := range s.nodes {
		if n == nil || s.isCrashed(i) {
			continue
		}
		if t := n.cycles.Now(); t > at {
			at = t
		}
	}
	return at
}

// --- Recovery ----------------------------------------------------------------

// recoveryActions collects the protocol actions decided during phase 1
// (every node mutex held) for execution in phase 2 (mutexes released):
// re-driven lock requests, synthesized barrier releases, re-driven barrier
// enters, and completion checks for barriers whose membership shrank.
type recoveryActions struct {
	lockRedrives  []lockRedrive
	synths        []barrierSynth
	enterRedrives []enterRedrive
	completions   []*object
}

type lockRedrive struct {
	holder *Node
	req    *proto.LockAcquire
	at     uint64
}

type barrierSynth struct {
	node *Node
	rel  *proto.BarrierRelease
	at   uint64
}

type enterRedrive struct {
	mgr *Node
	e   *proto.BarrierEnter
	at  uint64
}

// recoverFrom runs the recovery protocol for crashed node k.
//
// Phase 1 locks every node's mutex (in id order, so concurrent crashes
// cannot deadlock) and, with the whole system frozen, relocates each lock
// token, fixes forwarding pointers, reforms barrier membership, and
// collects the messages that must be re-driven.  Phase 2 releases the
// mutexes and performs those sends and deliveries through the normal
// protocol paths.
func (s *System) recoverFrom(k int, recoveryAt uint64, transportLoss bool) {
	if c := s.census; c != nil {
		// The corpse's unreleased exclusive holds die with it; the
		// split-brain oracle must not count them against the reclaimed
		// token's next holder.
		c.clearNode(k)
	}
	live := make([]*Node, 0, len(s.nodes))
	for i, n := range s.nodes {
		if i != k && s.liveMember(i) {
			live = append(live, n)
		}
	}

	for _, n := range s.nodes {
		n.mu.Lock()
	}

	var acts recoveryActions
	var reclaims []ReclaimedLock
	var reforms []ReformedBarrier

	for _, o := range s.objectsSnapshot() {
		switch o.kind {
		case ObjLock:
			s.recoverLockLocked(o, k, recoveryAt, transportLoss, live, &acts, &reclaims)
		case ObjBarrier:
			s.recoverBarrierLocked(o, k, recoveryAt, transportLoss, &acts, &reforms)
		}
	}

	for _, n := range s.nodes {
		n.mu.Unlock()
	}

	s.mu.Lock()
	s.report.ReclaimedLocks = append(s.report.ReclaimedLocks, reclaims...)
	s.report.ReformedBarriers = append(s.report.ReformedBarriers, reforms...)
	s.mu.Unlock()

	// Phase 2: perform the collected actions through the normal code paths.
	for _, a := range acts.synths {
		a.node.deliverReply(reply{release: a.rel, arrival: a.at})
	}
	for _, a := range acts.lockRedrives {
		a.holder.ownerForward(a.req, a.at)
	}
	for _, a := range acts.enterRedrives {
		a.mgr.managerBarrierEnter(a.e, a.at, nil)
	}
	for _, o := range acts.completions {
		s.nodes[s.managerFor(o)].maybeCompleteBarrier(o)
	}
}

// recoverLockLocked relocates one lock's token away from crashed node k.
// Caller holds every node's mutex.
func (s *System) recoverLockLocked(o *object, k int, recoveryAt uint64, transportLoss bool, live []*Node, acts *recoveryActions, reclaims *[]ReclaimedLock) {
	// Materialize the lock's state on every node so the scans below see a
	// uniform view.  Cheap for nodes that never touched the lock.
	views := make([]*lockState, len(s.nodes))
	for i, n := range s.nodes {
		views[i] = n.lockState(o.id)
	}

	// Locate the token.  Each exclusive transfer records the grant's
	// Lamport timestamp in forwardedAt on the granter; the receiver
	// witnesses that timestamp before it can re-grant, so the timestamps
	// are strictly increasing along the true grant chain and the global
	// max identifies the latest transfer.  Its target holds (or is about
	// to hold) the token.
	latestGranter, latestTarget := -1, -1
	var latestAt int64 = -1
	for i, v := range views {
		if v.forwardedTo >= 0 && v.forwardedAt > latestAt {
			latestAt = v.forwardedAt
			latestGranter = i
			latestTarget = v.forwardedTo
		}
	}
	tokenAt := o.manager
	if latestTarget >= 0 {
		tokenAt = latestTarget
	}

	lost := tokenAt == k
	lostTo := -1
	if !lost && transportLoss && latestGranter == k && !views[tokenAt].owner {
		// k granted the token to a live node but the grant may have been
		// lost with k's endpoints.  Treat it as lost and regrant; the
		// generation guard installed below makes the original grant, if it
		// did survive, arrive as a harmless stale duplicate.
		lost = true
		lostTo = tokenAt
	}

	final := tokenAt
	if lost {
		// Reclaim at the most recent live predecessor on the grant chain:
		// the live node that last forwarded toward k holds the newest
		// consistent (released) copy of the binding.
		pred, predAt := -1, int64(-1)
		for i, v := range views {
			if i == k || !s.liveMember(i) {
				continue
			}
			if v.forwardedTo == k && v.forwardedAt > predAt {
				predAt = v.forwardedAt
				pred = i
			}
		}
		if pred < 0 {
			// No live node ever granted to k: only k ever held the token,
			// so every survivor's copy is the same pristine state.  Reclaim
			// at the lowest live id for determinism.
			pred = live[0].id
		}
		final = pred

		flk := views[final]
		var maxGen uint64
		for _, v := range views {
			if v.bindGen > maxGen {
				maxGen = v.bindGen
			}
		}
		flk.owner = true
		flk.held = false
		flk.forwardedTo = -1
		flk.rebound = true
		flk.bindGen = maxGen + 1
		// Witness the newest grant timestamp any surviving metadata
		// records, so the rebind full-resync's stamps dominate stamps that
		// reached other nodes through the crashed holder.
		if latestAt >= 0 {
			s.nodes[final].lamport.Witness(latestAt)
		}
		s.nodes[final].det.NotifyRebind(flk)
		if tr := s.obs; tr != nil {
			tr.Emit(obs.Event{
				Kind: obs.EvReclaim, Cycles: recoveryAt, Node: int32(final),
				Obj: int32(o.id), Peer: int32(k), Name: o.name, A: int64(flk.bindGen),
			})
		}
		*reclaims = append(*reclaims, ReclaimedLock{Lock: LockID(o.id), Name: o.name, From: k, NewOwner: final})

		if lostTo >= 0 {
			// The intended receiver never got its grant: tell it to drop
			// the stale one if it ever arrives, and re-drive its request.
			v := views[lostTo]
			v.redriveGen = flk.bindGen
			if v.inflight != nil {
				acts.lockRedrives = append(acts.lockRedrives, lockRedrive{holder: s.nodes[final], req: v.inflight, at: recoveryAt})
			}
		}
	}

	// Fix forwarding pointers and requeue the crashed node's waiters.
	for i, v := range views {
		if i == k {
			v.owner = false
			v.held = false
			v.forwardedTo = final
			for _, p := range v.waiting {
				if !s.liveMember(int(p.req.Requester)) {
					continue
				}
				acts.lockRedrives = append(acts.lockRedrives, lockRedrive{
					holder: s.nodes[final],
					req:    p.req,
					at:     max(p.arrival, recoveryAt),
				})
			}
			v.waiting = nil
			v.inflight = nil
			continue
		}
		if v.forwardedTo == k {
			if i == final {
				v.forwardedTo = -1
			} else {
				v.forwardedTo = final
			}
		}
		if len(v.waiting) > 0 {
			kept := v.waiting[:0]
			for _, p := range v.waiting {
				if s.liveMember(int(p.req.Requester)) {
					kept = append(kept, p)
				}
			}
			v.waiting = kept
		}
	}

	// Point lock management at the token's new location, on both the
	// original manager (if live its routing stays authoritative) and the
	// failover manager (which serves new acquires if the original died).
	seedMgr := func(n *Node) {
		if ml := n.mgr[o.id]; ml != nil {
			ml.owner = final
		} else {
			n.mgr[o.id] = &mgrLock{owner: final}
		}
	}
	mgrNode := s.nodes[s.managerFor(o)]
	seedMgr(mgrNode)
	if o.manager != mgrNode.id {
		seedMgr(s.nodes[o.manager])
	}
	if s.cfg.Migrate {
		// Repair every live node's routing view: an override naming the
		// corpse (or any dead node) is re-pointed at the token's final
		// location, so post-recovery acquires go straight to the holder
		// instead of bouncing off a corpse; a live migrated home keeps
		// brokering, with its routing refreshed to where recovery put the
		// token.
		repointed := false
		for _, peer := range s.nodes {
			if peer.id == k || !s.liveMember(peer.id) {
				continue
			}
			h := peer.homeOverrideLocked(o.id)
			if h < 0 {
				continue
			}
			if h == k || !s.homeLive(h) {
				peer.repointHomeLocked(o.id, final)
				repointed = true
			} else {
				seedMgr(s.nodes[h])
			}
		}
		if repointed {
			seedMgr(s.nodes[final])
		}
	}

	if transportLoss {
		// A live node's request routed *through* k may have been lost.
		// Re-drive any live requester with an unanswered in-flight request
		// that is not represented anywhere in the live system.  If the
		// request does survive somewhere in transit, the duplicate-grant
		// guards (inflight bookkeeping plus redriveGen) neutralize the
		// extra grant.
		for i, v := range views {
			if i == k || !s.liveMember(i) || i == final {
				continue
			}
			if v.inflight == nil || v.owner || v.held {
				continue
			}
			if s.requestVisibleLocked(views, k, i) {
				continue
			}
			already := false
			for _, a := range acts.lockRedrives {
				if int(a.req.Requester) == i && a.req.Lock == o.id {
					already = true
					break
				}
			}
			if already {
				continue
			}
			acts.lockRedrives = append(acts.lockRedrives, lockRedrive{holder: s.nodes[final], req: v.inflight, at: recoveryAt})
		}
	}
}

// requestVisibleLocked reports whether live node i's outstanding request is
// still represented in the live system: queued at a live node, or the
// target of a live node's forwarding pointer (a grant is on its way).
func (s *System) requestVisibleLocked(views []*lockState, k, i int) bool {
	for j, v := range views {
		if j == k || !s.liveMember(j) {
			continue
		}
		if v.forwardedTo == i {
			return true
		}
		for _, p := range v.waiting {
			if int(p.req.Requester) == i {
				return true
			}
		}
	}
	return false
}

// recoverBarrierLocked reforms one barrier's membership after node k's
// crash.  Caller holds every node's mutex.
//
// Only barriers whose party count equals the node count are reformed:
// those are the all-nodes rendezvous barriers whose membership shrinks
// naturally with the node set.  A custom-parties barrier has no principled
// mapping from dead nodes to dead parties, so it is left untouched; if the
// survivors still need the crashed node's arrivals they will block, which
// surfaces as a hang rather than silent corruption (documented limitation).
func (s *System) recoverBarrierLocked(o *object, k int, recoveryAt uint64, transportLoss bool, acts *recoveryActions, reforms *[]ReformedBarrier) {
	if o.parties != s.cfg.Nodes {
		return
	}
	views := make([]*barrierState, len(s.nodes))
	for i, n := range s.nodes {
		views[i] = n.barrierState(o.id)
	}

	// Move barrier management off the crashed node.  bmgr state is moved
	// (not copied) on every failover, so at most one node has it.
	mgrNode := s.nodes[s.managerFor(o)]
	if kb := s.nodes[k].bmgr[o.id]; kb != nil {
		if mgrNode.bmgr[o.id] == nil {
			mgrNode.bmgr[o.id] = kb
		}
		delete(s.nodes[k].bmgr, o.id)
	}
	mb := mgrNode.bmgr[o.id]
	if mb == nil {
		mb = &bmgrBarrier{}
		mgrNode.bmgr[o.id] = mb
	}
	// Forfeit any deferred-recycle payload buffers: re-homed or filtered
	// enters can outlive this epoch's completion, so ownership reverts to
	// the garbage collector.
	mb.bufs = nil
	mgrEpoch := mb.epoch

	// Drop the crashed node's entry from the in-progress epoch: it never
	// crossed the barrier, so release-boundary rollback discards the
	// updates it shipped with its enter.
	kept := mb.entered[:0]
	keptArr := mb.arrivals[:0]
	for i, e := range mb.entered {
		if s.gone(int(e.Node)) {
			continue
		}
		kept = append(kept, e)
		keptArr = append(keptArr, mb.arrivals[i])
	}
	mb.entered = kept
	mb.arrivals = keptArr

	// Survivors stranded on an epoch the manager has already completed
	// lost their release with k (it was sent by k, or routed through it):
	// synthesize the release from the other parties' recorded enters.
	// Survivors pending on the manager's current epoch may have lost the
	// enter itself when the loss is transport-level: re-drive it (the
	// manager dedups if it did arrive).
	for i, v := range views {
		if i == k || !s.liveMember(i) || !v.pending || v.lastEnter == nil {
			continue
		}
		ei := v.lastEnter.Epoch
		if ei < mgrEpoch {
			rel := s.synthesizeReleaseLocked(o, views, k, i, ei)
			v.pending = false
			v.nextRelease = ei + 1 // drop the real release if it surfaces later
			acts.synths = append(acts.synths, barrierSynth{node: s.nodes[i], rel: rel, at: recoveryAt})
			continue
		}
		if ei == mgrEpoch && transportLoss {
			found := false
			for _, e := range mb.entered {
				if int(e.Node) == i {
					found = true
					break
				}
			}
			if !found {
				acts.enterRedrives = append(acts.enterRedrives, enterRedrive{mgr: mgrNode, e: v.lastEnter, at: recoveryAt})
			}
		}
	}

	// The shrunken membership may already be complete.
	acts.completions = append(acts.completions, o)

	parties := o.parties
	if mt := s.members; mt != nil {
		parties = mt.Count()
	} else if snap := s.crashSnap.Load(); snap != nil {
		for _, dead := range *snap {
			if dead {
				parties--
			}
		}
	}
	if tr := s.obs; tr != nil {
		tr.Emit(obs.Event{
			Kind: obs.EvBarrierReform, Cycles: recoveryAt, Node: int32(mgrNode.id),
			Obj: int32(o.id), Peer: int32(k), Name: o.name,
			A: int64(parties), B: int64(mgrEpoch),
		})
	}
	*reforms = append(*reforms, ReformedBarrier{Barrier: BarrierID(o.id), Name: o.name, Parties: parties, Epoch: mgrEpoch})
}

// synthesizeReleaseLocked rebuilds the BarrierRelease that stranded node i
// should have received for epoch ei: the merged updates of every *other*
// live party's enter at that epoch, in node-id order, with a release
// timestamp past every contributing enter.
func (s *System) synthesizeReleaseLocked(o *object, views []*barrierState, k, i int, ei uint64) *proto.BarrierRelease {
	var updates []proto.Update
	var maxTime int64
	for j, v := range views {
		if j == i || j == k || !s.liveMember(j) {
			continue
		}
		var e *proto.BarrierEnter
		if v.lastEnter != nil && v.lastEnter.Epoch == ei {
			e = v.lastEnter
		} else if v.prevEnter != nil && v.prevEnter.Epoch == ei {
			e = v.prevEnter
		}
		if e == nil {
			continue
		}
		updates = append(updates, e.Updates...)
		if e.Time > maxTime {
			maxTime = e.Time
		}
	}
	if t := views[i].lastEnter.Time; t > maxTime {
		maxTime = t
	}
	return &proto.BarrierRelease{
		Barrier: o.id,
		Epoch:   ei,
		Time:    maxTime + 1,
		Updates: updates,
	}
}

// --- Crashed-node ghost routing ----------------------------------------------

// ghostRoute handles a message delivered to a crashed node after recovery.
// The ghost never acts on the protocol — it only bounces routing messages
// (requests sent to the corpse under a stale view of who manages or owns
// an object) toward the live node recovery designated.  Grants, releases
// and anything else addressed to the corpse are dropped: their senders'
// state was already repaired by recovery.
func (n *Node) ghostRoute(m transport.Message, arrival uint64) {
	switch m.Kind {
	case proto.KindLockAcquire, proto.KindLockForward:
		req, err := proto.DecodeLockAcquire(m.Payload)
		if err != nil {
			return
		}
		if n.sys.gone(int(req.Requester)) {
			return
		}
		n.mu.Lock()
		next := n.lockState(req.Lock).forwardedTo
		n.mu.Unlock()
		if next < 0 || next == n.id || n.sys.gone(next) {
			return
		}
		n.sendAt(next, proto.KindLockForward, req, arrival)
	case proto.KindBarrierEnter:
		e, err := n.decodeEnter(m.Payload)
		if err != nil || n.sys.gone(int(e.Node)) {
			return
		}
		mgr := n.sys.managerFor(n.sys.objectByID(e.Barrier))
		if mgr == n.id || n.sys.gone(mgr) {
			return
		}
		n.sendAt(mgr, proto.KindBarrierEnter, e, arrival)
	}
}
