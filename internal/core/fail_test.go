package core

import (
	"strings"
	"testing"
	"time"

	"midway/internal/memory"
	"midway/internal/proto"
	"midway/internal/transport"
)

// TestRunSurfacesTransportFailure partitions the two nodes permanently
// under a reliable transport and checks that Run returns the retransmit
// give-up diagnostic instead of hanging or panicking, and that every
// application goroutine unwinds.
func TestRunSurfacesTransportFailure(t *testing.T) {
	fault := transport.NewFaultNetwork(transport.NewChannelNetwork(2), transport.FaultConfig{})
	fault.Partition(0, 1)
	net := transport.NewReliableNetwork(fault, transport.ReliableOptions{
		RetransmitInitial: time.Millisecond,
		RetransmitMax:     2 * time.Millisecond,
		GiveUp:            5,
	})
	defer net.Close()

	s, err := NewSystem(Config{Nodes: 2, Strategy: RT, Transport: net, LocalNode: -1})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.MustAlloc("x", 8, 3)
	lock := s.NewLock("x", memory.Range{Addr: addr, Size: 8})

	done := make(chan error, 1)
	go func() {
		done <- s.Run(func(p *Proc) {
			p.Acquire(lock)
			p.WriteU64(addr, uint64(p.ID())+1)
			p.Release(lock)
		})
	}()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after transport failure")
	}
	if err == nil {
		t.Fatal("Run returned nil despite unreachable peer")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("error %q does not identify the unreachable peer", err)
	}
	if s.Err() == nil {
		t.Error("System.Err() is nil after failed run")
	}
}

// TestRunSurfacesProcPanic checks that an application panic on one node
// aborts the whole run: the panic's node is named in the error and the
// other node — parked at a barrier the dead proc will never enter — is
// released instead of stranded.  (A recovered proc is still a live
// member; without the abort, every peer waits on it forever.)
func TestRunSurfacesProcPanic(t *testing.T) {
	s, err := NewSystem(Config{Nodes: 2, Strategy: RT, LocalNode: -1})
	if err != nil {
		t.Fatal(err)
	}
	bar := s.NewBarrier("done", 0)

	done := make(chan error, 1)
	go func() {
		done <- s.Run(func(p *Proc) {
			if p.ID() == 1 {
				panic("application bug")
			}
			p.Barrier(bar)
		})
	}()
	var runErr error
	select {
	case runErr = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after a proc panic (peers stranded at the barrier)")
	}
	if runErr == nil {
		t.Fatal("Run returned nil despite a panicking proc")
	}
	for _, want := range []string{"node 1", "application bug"} {
		if !strings.Contains(runErr.Error(), want) {
			t.Errorf("diagnostic %q missing %q", runErr, want)
		}
	}
}

// TestRunSurfacesDecodeFailure injects an undecodable protocol message and
// checks Run fails with a diagnostic naming the node, kind and peer.
func TestRunSurfacesDecodeFailure(t *testing.T) {
	net := transport.NewChannelNetwork(2)
	s, err := NewSystem(Config{Nodes: 2, Strategy: RT, Transport: net, LocalNode: -1})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.MustAlloc("x", 8, 3)
	lock := s.NewLock("x", memory.Range{Addr: addr, Size: 8})
	_ = addr

	done := make(chan error, 1)
	go func() {
		done <- s.Run(func(p *Proc) {
			if p.ID() == 0 {
				// Corrupt "grant" straight to node 1's protocol handler.
				conn := net.Conn(0)
				_ = conn.Send(transport.Message{
					From: 0, To: 1, Kind: proto.KindLockGrant,
					Payload: []byte{0xFF},
				})
			} else {
				// Node 1 blocks on an acquire that can never be granted once
				// its handler dies; the failure must still unwind it.
				p.Acquire(lock)
				p.Release(lock)
			}
		})
	}()
	var runErr error
	select {
	case runErr = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after decode failure")
	}
	if runErr == nil {
		t.Fatal("Run returned nil despite undecodable message")
	}
	for _, want := range []string{"node 1", "peer 0", "decode"} {
		if !strings.Contains(runErr.Error(), want) {
			t.Errorf("diagnostic %q missing %q", runErr, want)
		}
	}
}
