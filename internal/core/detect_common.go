package core

import (
	"midway/internal/cost"
	"midway/internal/memory"
	"midway/internal/proto"
)

// rangesBytes returns the total size of a binding in bytes.
func rangesBytes(rs []memory.Range) uint32 {
	var n uint32
	for _, r := range rs {
		n += r.Size
	}
	return n
}

// readBoundUpdates reads the current contents of every bound range into
// one update per range, stamped with ts.
func (n *Node) readBoundUpdates(binding []memory.Range, ts int64) []proto.Update {
	ups := make([]proto.Update, 0, len(binding))
	for _, rg := range binding {
		if rg.Size == 0 {
			continue
		}
		buf := make([]byte, rg.Size)
		n.inst.ReadBytes(rg, buf)
		ups = append(ups, proto.Update{Addr: rg.Addr, TS: ts, Data: buf})
	}
	return ups
}

// filterUpdates keeps only the portions of the updates that intersect the
// binding.
func filterUpdates(us []proto.Update, binding []memory.Range) []proto.Update {
	var out []proto.Update
	for _, u := range us {
		urg := u.Range()
		for _, brg := range binding {
			inter, ok := urg.Intersect(brg)
			if !ok {
				continue
			}
			lo := inter.Addr - urg.Addr
			out = append(out, proto.Update{
				Addr: inter.Addr,
				TS:   u.TS,
				Data: u.Data[lo : uint32(lo)+inter.Size],
			})
		}
	}
	return out
}

// concatBound copies the current contents of the bound ranges into one
// contiguous buffer (the TwinDiff strategy's twin layout).
func (n *Node) concatBound(binding []memory.Range) []byte {
	buf := make([]byte, rangesBytes(binding))
	off := uint32(0)
	for _, rg := range binding {
		n.inst.ReadBytes(rg, buf[off:off+rg.Size])
		off += rg.Size
	}
	return buf
}

// noneDetector disables detection and collection entirely; it backs the
// standalone (uninstrumented, single-node) baseline configuration.
type noneDetector struct{}

func (noneDetector) trapWrite(memory.Addr, uint32, *memory.Region) {}

func (noneDetector) collectLock(lk *lockState, req *proto.LockAcquire, exclusive bool) (*proto.LockGrant, cost.Cycles) {
	return &proto.LockGrant{}, 0
}

func (noneDetector) applyLock(*lockState, *proto.LockGrant) cost.Cycles { return 0 }

func (noneDetector) collectBarrier(*barrierState) ([]proto.Update, cost.Cycles) {
	return nil, 0
}

func (noneDetector) applyBarrier(*barrierState, *proto.BarrierRelease) cost.Cycles { return 0 }
